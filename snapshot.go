package darknight

import (
	"errors"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/obs"
)

// CaptureSnapshot captures a versioned state snapshot of the running
// server: coding geometry, serving occupancy, fleet health and lane
// state, model identity (weight hash, or full weights when
// Observability.SnapshotWeights is set), cluster composition, the
// completed-batch replay log and the flight-recorder window. The result
// serializes to JSON (StateSnapshot.WriteJSON / SaveSnapshot) and replays
// deterministically (Replay / `darknight replay`). Requires the
// observability stack.
func (s *Server) CaptureSnapshot() (*StateSnapshot, error) {
	if s.obs == nil {
		return nil, errors.New("darknight: snapshots need ServerConfig.Observability enabled")
	}
	snap := s.inner.CaptureSnapshot()
	w := (&Model{m: s.ref}).Weights()
	snap.Model = obs.ModelInfo{
		Arch:       s.cfg.Arch,
		Name:       s.ref.Name,
		InShape:    append([]int(nil), s.ref.InShape...),
		Classes:    s.ref.Classes,
		Seed:       s.cfg.Seed,
		WeightHash: obs.HashWeights(w),
	}
	if s.cfg.Observability.SnapshotWeights {
		snap.Model.Weights = w
	}
	snap.Cluster = clusterInfo(s.cfg.Config)
	return snap, nil
}

// SaveSnapshot captures a snapshot and writes it to path.
func (s *Server) SaveSnapshot(path string) error {
	snap, err := s.CaptureSnapshot()
	if err != nil {
		return err
	}
	return obs.SaveSnapshot(snap, path)
}

// SLO returns the server's burn-rate tracker (nil unless
// Observability.SLO declares objectives).
func (s *Server) SLO() *SLOTracker { return s.inner.SLO() }

// clusterInfo records the device composition a Config builds — the same
// defaulting rules as buildCluster, so replay reconstructs an identical
// cluster. SlowAll has already been expanded into SlowGPUs by NewServer.
func clusterInfo(cfg Config) obs.ClusterInfo {
	ci := obs.ClusterInfo{Size: cfg.GPUs, SlowAll: cfg.SlowAll}
	policy := cfg.FaultPolicy
	if policy.EveryNth == 0 && policy.Probability == 0 {
		policy = gpu.FaultPolicy{EveryNth: 1}
	}
	for _, idx := range cfg.MaliciousGPUs {
		ci.Malicious = append(ci.Malicious, obs.MaliciousDevice{
			Index:       idx,
			EveryNth:    policy.EveryNth,
			Offset:      policy.Offset,
			Probability: policy.Probability,
			Seed:        policy.Seed,
		})
	}
	delay := cfg.SlowDelay
	if delay == 0 {
		delay = 5 * time.Millisecond
	}
	for _, idx := range cfg.SlowGPUs {
		ci.Slow = append(ci.Slow, obs.SlowDevice{Index: idx, DelayNs: int64(delay)})
	}
	return ci
}
