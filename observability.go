package darknight

import (
	"io"

	"darknight/internal/obs"
)

// Observability bundles the three observability pillars — tracer, metrics
// registry, flight recorder. Obtain one from Server.Observability or
// System.Observability; nil disables everything.
type Observability = obs.Observability

// TraceSpan is one node of a request's span tree: name, wall-clock
// interval, annotations, children. Render/RenderBreakdown pretty-print a
// completed tree and its critical-path breakdown.
type TraceSpan = obs.Span

// FlightEvent is one structured entry of the chaos flight recorder:
// grants, quarantine transitions, straggler re-dispatch, cache refills,
// integrity verdicts.
type FlightEvent = obs.Event

// SLOConfig declares per-tenant service-level objectives and the sliding
// windows / burn threshold they are evaluated over.
type SLOConfig = obs.SLOConfig

// SLOObjective is one tenant's objective: a latency target at a goal
// fraction, and an error budget. Tenant "*" applies to all tenants.
type SLOObjective = obs.SLOObjective

// SLOBreach is one burn-rate threshold crossing (or clearing).
type SLOBreach = obs.Breach

// BurnRate is one tenant's budget burn over one window.
type BurnRate = obs.BurnRate

// SLOTracker evaluates objectives over sliding windows; obtain one from
// Server.SLO.
type SLOTracker = obs.SLOTracker

// StateSnapshot is a versioned, serializable capture of a running
// deployment — config, fleet health, tenant occupancy, the completed-batch
// log and the flight-recorder window — sufficient for deterministic replay.
type StateSnapshot = obs.Snapshot

// ObservabilityConfig switches on the unified observability layer for a
// Server (ServerConfig.Observability) or a System (Config.Observability).
// The zero value disables everything and keeps the hot path at its
// untraced cost — nil-span pointer checks only.
type ObservabilityConfig struct {
	// Enabled turns the stack on (registry + flight recorder + tracer at
	// TraceSample) even when every other field is zero. Any non-zero field
	// below implies it.
	Enabled bool
	// MetricsAddr starts an HTTP listener (e.g. ":9090", or "127.0.0.1:0"
	// for an ephemeral port) exporting /metrics (Prometheus text),
	// /metrics.json, /traces and /flightrecorder.
	MetricsAddr string
	// TraceSample is the fraction of requests traced: 0 none, 1 all.
	// Sampling draws are seeded from the deployment's Seed, so traced runs
	// are reproducible.
	TraceSample float64
	// TraceKeep bounds the ring of completed traces kept for dumps
	// (default 16).
	TraceKeep int
	// FlightRecorderSize bounds the structured-event ring (default 1024).
	FlightRecorderSize int
	// SLO declares per-tenant objectives; when any are set, the server
	// tracks burn rates (exported as darknight_slo_burn_rate) and records
	// threshold crossings in the flight recorder.
	SLO SLOConfig
	// SnapshotBatchLog bounds the completed-batch replay log (default
	// 256 batches). Snapshots can only replay what the log retains.
	SnapshotBatchLog int
	// SnapshotWeights embeds the full model weights in captured snapshots
	// (instead of just their hash), making them self-contained — replay
	// does not need to rebuild the exact model. Costly for large models.
	SnapshotWeights bool
	// NoHistograms suppresses the live per-request and per-phase latency
	// histogram instruments while keeping every scrape-time series — the
	// A/B knob the histogram overhead gate pairs against. Leave it off in
	// production.
	NoHistograms bool
}

// enabled reports whether any knob asks for the observability stack.
func (o ObservabilityConfig) enabled() bool {
	return o.Enabled || o.MetricsAddr != "" || o.TraceSample > 0 ||
		o.TraceKeep > 0 || o.FlightRecorderSize > 0 || len(o.SLO.Objectives) > 0
}

// build assembles the bundle (nil when disabled).
func (o ObservabilityConfig) build(seed int64) *obs.Observability {
	if !o.enabled() {
		return nil
	}
	return obs.New(obs.Options{
		TraceSample:  o.TraceSample,
		TraceKeep:    o.TraceKeep,
		RecorderSize: o.FlightRecorderSize,
		Seed:         seed,
	})
}

// Observability returns the server's bundle (nil when not configured).
func (s *Server) Observability() *Observability { return s.obs }

// MetricsAddr returns the bound address of the metrics listener — useful
// with an ephemeral ":0" configuration — or "" when none is serving.
func (s *Server) MetricsAddr() string { return s.msrv.Addr() }

// WriteMetrics writes the Prometheus text exposition of every registered
// series (serving counters, fleet health, noise-pool stats).
func (s *Server) WriteMetrics(w io.Writer) error { return s.obs.WriteMetrics(w) }

// RecentTraces returns the most recent completed request span trees, oldest
// first (empty when tracing is off or nothing sampled yet).
func (s *Server) RecentTraces() []*TraceSpan {
	if s.obs == nil {
		return nil
	}
	return s.obs.Tracer.Recent()
}

// FlightRecorderDump returns the recorded chaos events, oldest first.
func (s *Server) FlightRecorderDump() []FlightEvent {
	if s.obs == nil {
		return nil
	}
	return s.obs.Recorder.Dump()
}

// Observability returns the system's bundle (nil when not configured).
func (s *System) Observability() *Observability { return s.obs }

// MetricsAddr returns the bound address of the system's metrics listener,
// or "" when none is serving.
func (s *System) MetricsAddr() string { return s.msrv.Addr() }

// Trace returns the most recent completed training/inference span tree, or
// nil when tracing is off or nothing has completed yet.
func (s *System) Trace() *TraceSpan {
	if s.obs == nil {
		return nil
	}
	recent := s.obs.Tracer.Recent()
	if len(recent) == 0 {
		return nil
	}
	return recent[len(recent)-1]
}

// WriteMetrics writes the Prometheus text exposition of the system's
// registered series.
func (s *System) WriteMetrics(w io.Writer) error { return s.obs.WriteMetrics(w) }

// FlightRecorderDump returns the recorded chaos events, oldest first.
func (s *System) FlightRecorderDump() []FlightEvent {
	if s.obs == nil {
		return nil
	}
	return s.obs.Recorder.Dump()
}
