package darknight

import (
	"context"
	"testing"
	"time"
)

// TestServeSLOBurnRiseAndRecover is the end-to-end burn-rate acceptance:
// real serving traffic through a uniformly slow cluster must push the
// tenant's latency burn rate over 1.0 and fire the breach hook into the
// fleet; once the incident slides out of the evaluation window the burn
// rate must recover below 1.0. The obs-level SLO tests pin the arithmetic
// under a fake clock — this one pins the wiring: serve feeds the tracker,
// the tracker feeds the fleet, and the window actually slides.
func TestServeSLOBurnRiseAndRecover(t *testing.T) {
	const window = 400 * time.Millisecond
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 3) }, ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			Seed:         3,
			EnclaveBytes: -1,
			SlowAll:      true, // every request rides a straggling device
			SlowDelay:    3 * time.Millisecond,
		},
		Workers: 1,
		MaxWait: time.Millisecond,
		Observability: ObservabilityConfig{
			Enabled: true,
			SLO: SLOConfig{
				Objectives: []SLOObjective{{
					Tenant:        "*",
					LatencyTarget: 500 * time.Microsecond,
					LatencyGoal:   0.5,
				}},
				Windows: []time.Duration{window},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	data := SyntheticDataset(8, 4, 1, 8, 8, 4)
	for i := 0; i < 16; i++ {
		if _, err := srv.Infer(context.Background(), data[i%len(data)].Image); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	// Every request spent >= 3ms against a 500µs target with a 0.5 goal:
	// burn = 1/(1-0.5) = 2.
	tracker := srv.SLO()
	burning := false
	for _, br := range tracker.BurnRates() {
		if br.SLO == "latency" && br.Burn >= 1 {
			burning = true
		}
	}
	if !burning {
		t.Fatalf("no latency burn under injected 3ms straggle: %+v", tracker.BurnRates())
	}
	if tracker.Breaches() == 0 {
		t.Fatal("burn crossed the threshold but no breach was recorded")
	}
	if srv.FleetStats().SLOBreaches == 0 {
		t.Fatal("breach did not reach the fleet via SubscribeSLO")
	}

	// Recovery: with the incident outside the sliding window, the burn
	// rate computed at read time must drop below threshold.
	time.Sleep(window + 100*time.Millisecond)
	for _, br := range tracker.BurnRates() {
		if br.Burn >= 1 {
			t.Fatalf("burn rate did not recover after the window slid: %+v", br)
		}
	}
}
