package darknight

import (
	"context"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosOutcome tallies one load run's client-visible results by class.
type chaosOutcome struct {
	OK, Integrity, Deadline, Shed, Other int64
	lastOther                            atomic.Value
}

func (o *chaosOutcome) classify(err error) {
	switch {
	case err == nil:
		atomic.AddInt64(&o.OK, 1)
	case IsShed(err):
		atomic.AddInt64(&o.Shed, 1)
	case IsDeadline(err):
		atomic.AddInt64(&o.Deadline, 1)
	case IsIntegrityError(err):
		atomic.AddInt64(&o.Integrity, 1)
	default:
		atomic.AddInt64(&o.Other, 1)
		o.lastOther.Store(err.Error())
	}
}

// driveChaosLoad runs `clients` sequential-loop clients against srv for d.
func driveChaosLoad(srv *Server, images []Example, clients int, d time.Duration) *chaosOutcome {
	out := &chaosOutcome{}
	var wg sync.WaitGroup
	stop := time.Now().Add(d)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(stop); i += clients {
				_, err := srv.Infer(context.Background(), images[i%len(images)].Image)
				out.classify(err)
			}
		}(c)
	}
	wg.Wait()
	return out
}

// TestChaosSchedulesZeroUnexplainedErrors is the chaos acceptance suite:
// every canned fault schedule (device crashes, latency spikes, tamper
// bursts, flapping, partitions) is played in real time against a serving
// stack with recovery and retry enabled, and every client must see either
// a clean answer or a typed resilience outcome — never an unexplained
// error. Quarantine, recovery decode and fresh-gang retry together absorb
// the injected faults.
func TestChaosSchedulesZeroUnexplainedErrors(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "chaos", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no canned chaos schedules: %v", err)
	}
	images := SyntheticDataset(32, 4, 1, 8, 8, 41)

	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			sched, err := LoadChaosSchedule(path)
			if err != nil {
				t.Fatal(err)
			}
			srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 41) }, ServerConfig{
				Config: Config{
					VirtualBatch: 2,
					Redundancy:   2, // E=2: attribute the culprit on the first bad batch
					Seed:         41,
					EnclaveBytes: -1,
					Chaos:        true,
				},
				Workers:    2,
				SpareGPUs:  4, // quarantine headroom: the pool survives losing devices
				MaxWait:    time.Millisecond,
				Recover:    true,
				Resilience: ResilienceConfig{RetryMax: 3},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()

			stopChaos, err := srv.StartChaos(sched)
			if err != nil {
				t.Fatal(err)
			}
			runFor := sched.Duration() + 300*time.Millisecond
			if runFor < 500*time.Millisecond {
				runFor = 500 * time.Millisecond
			}
			out := driveChaosLoad(srv, images, 4, runFor)
			stopChaos()

			if out.OK == 0 {
				t.Fatalf("no request succeeded under schedule %q", name)
			}
			if out.Other != 0 {
				t.Fatalf("schedule %q: %d unexplained client errors (last: %v); ok=%d integrity=%d",
					name, out.Other, out.lastOther.Load(), out.OK, out.Integrity)
			}
			// With Recover + retry the injected faults must be absorbed
			// before the client sees them.
			if out.Integrity != 0 {
				t.Fatalf("schedule %q: %d client-visible integrity errors, want 0 (retries=%d)",
					name, out.Integrity, srv.ResilStats().Retries)
			}
			rs := srv.ResilStats()
			if len(sched.Events) > 0 && rs.ChaosActions == 0 {
				t.Fatalf("schedule %q played but no chaos actions were recorded", name)
			}
			t.Logf("%s: ok=%d retries=%d retry-success=%d chaos-actions=%d quarantined=%d",
				name, out.OK, rs.Retries, rs.RetrySuccess, rs.ChaosActions,
				srv.FleetStats().Quarantined)
		})
	}
}

// TestChaosTamperRetryWithoutRecovery re-runs the tamper schedule with
// recovery off: the poisoned batches are rejected outright, so only the
// retry path (fresh gang after quarantine) stands between the fault and
// the client. Clients must still see zero errors and the retry counters
// must move.
func TestChaosTamperRetryWithoutRecovery(t *testing.T) {
	sched, err := LoadChaosSchedule(filepath.Join("testdata", "chaos", "tamper.json"))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 53) }, ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			Redundancy:   2,
			Seed:         53,
			EnclaveBytes: -1,
			Chaos:        true,
		},
		Workers:    2,
		SpareGPUs:  4,
		MaxWait:    time.Millisecond,
		Resilience: ResilienceConfig{RetryMax: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop, err := srv.StartChaos(sched)
	if err != nil {
		t.Fatal(err)
	}
	out := driveChaosLoad(srv, SyntheticDataset(32, 4, 1, 8, 8, 54), 4,
		sched.Duration()+300*time.Millisecond)
	stop()

	if out.OK == 0 || out.Other != 0 || out.Integrity != 0 {
		t.Fatalf("retry-only run: ok=%d integrity=%d other=%d (last: %v), want clean",
			out.OK, out.Integrity, out.Other, out.lastOther.Load())
	}
	rs := srv.ResilStats()
	if rs.Retries == 0 || rs.RetrySuccess == 0 {
		t.Fatalf("tamper bursts with recovery off must exercise retry: %+v", rs)
	}
}

// TestBrownoutEngagesAndRestores closes the SLO loop end to end: a
// scripted latency storm pushes the tenant's burn rate over threshold, the
// brownout controller degrades (visible in the counters, the level gauge
// and the flight recorder), and once the storm passes and the window
// slides the controller restores full service — edge-triggered both ways.
func TestBrownoutEngagesAndRestores(t *testing.T) {
	const window = 300 * time.Millisecond
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 43) }, ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			Seed:         43,
			EnclaveBytes: -1,
			Chaos:        true,
		},
		Workers: 1,
		MaxWait: time.Millisecond,
		Observability: ObservabilityConfig{
			Enabled: true,
			SLO: SLOConfig{
				// The target sits between healthy latency (~1-2ms: the 1ms
				// flush window plus a sub-ms dispatch) and the storm
				// (12ms of injected delay per offload), so the burn rises
				// during the storm and actually falls once it passes.
				Objectives: []SLOObjective{{
					Tenant:        "*",
					LatencyTarget: 10 * time.Millisecond,
					LatencyGoal:   0.5,
				}},
				Windows: []time.Duration{window},
			},
		},
		Resilience: ResilienceConfig{Brownout: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Storm: every gang device gains 12ms per offload against a 10ms
	// end-to-end target.
	var events []ChaosEvent
	for dev := 0; dev < 3; dev++ {
		events = append(events, ChaosEvent{Kind: "latency", Device: dev, DelayMS: 12})
	}
	storm := &ChaosSchedule{Name: "latency-storm", Events: events}
	if err := srv.PlayChaos(context.Background(), storm); err != nil {
		t.Fatal(err)
	}

	images := SyntheticDataset(16, 4, 1, 8, 8, 44)
	infer := func(i int) {
		// Errors are irrelevant here; the SLO tracker observes them all.
		srv.Infer(context.Background(), images[i%len(images)].Image)
	}

	// Phase 1: drive slow traffic until the controller degrades.
	engaged := false
	for i := 0; i < 200 && !engaged; i++ {
		infer(i)
		engaged = srv.BrownoutLevel() > 0
	}
	if !engaged {
		t.Fatalf("brownout never engaged under a 5ms storm (burn rates: %+v)",
			srv.SLO().BurnRates())
	}

	// Phase 2: heal the fleet, keep serving clean traffic until the storm
	// slides out of the window and the controller restores.
	srv.ResetChaos()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; srv.BrownoutLevel() != 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("brownout never restored: still level %d", srv.BrownoutLevel())
		}
		infer(i)
		time.Sleep(5 * time.Millisecond)
	}

	rs := srv.ResilStats()
	if rs.BrownoutShifts < 2 {
		t.Errorf("brownout shifts = %d, want >= 2 (degrade + restore)", rs.BrownoutShifts)
	}
	if rs.BrownoutLevel != 0 {
		t.Errorf("final brownout level gauge = %d, want 0", rs.BrownoutLevel)
	}
	var degraded, restored bool
	for _, ev := range srv.FlightRecorderDump() {
		if ev.Kind != "brownout" {
			continue
		}
		if strings.HasPrefix(ev.Detail, "degraded") {
			degraded = true
		}
		if strings.HasPrefix(ev.Detail, "restored") {
			restored = true
		}
	}
	if !degraded || !restored {
		t.Errorf("flight recorder transitions: degraded=%v restored=%v, want both", degraded, restored)
	}
}

// rotatingStragglerSchedule injects short latency bursts, one device at a
// time, hopping across the fleet. Each burst is much shorter than the
// period: it catches the flights dispatched onto that device in a narrow
// window and is over before the fleet's straggle-rate branding (which only
// lands when the slow flight is released) can route around it. That is the
// transient, unpredictable straggler that health-aware gang picking cannot
// defend against — and exactly what hedged dispatch exists for.
func rotatingStragglerSchedule(devices, bursts int, period, burst, delay time.Duration) *ChaosSchedule {
	s := &ChaosSchedule{Name: "rotating-straggler"}
	pms := period.Milliseconds()
	for i := 0; i < bursts; i++ {
		s.Events = append(s.Events, ChaosEvent{
			Kind:       "latency",
			Device:     i % devices,
			AtMS:       int64(i) * pms,
			DelayMS:    delay.Milliseconds(),
			DurationMS: burst.Milliseconds(),
		})
	}
	return s
}

// stragglerTail serves concurrent requests under the rotating-straggler
// schedule and returns the observed p99 latency plus the hedge count.
// Two workers with hedge headroom matter: a hedge answers its riders
// early but the worker still drains the losing 40ms flight before its
// next batch, so with a single worker the stall would simply shift onto
// the following request. A second worker absorbs traffic while the first
// drains — which is exactly how hedging is meant to be provisioned.
func stragglerTail(t *testing.T, hedge bool) (time.Duration, int64) {
	t.Helper()
	const clients = 4
	cfg := ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			GPUs:         9, // 2 worker gangs of 3, plus one spare gang for hedges
			Seed:         47,
			EnclaveBytes: -1,
			Chaos:        true,
		},
		Workers: 2,
		MaxWait: time.Millisecond,
	}
	if hedge {
		// Median trigger: with a twelfth of the fleet delayed at any
		// moment the slow fraction of primary flights can exceed 10%, so a
		// p90 trigger would learn the straggler latency itself. p50 stays
		// at the healthy latency and arms the hedge as soon as a flight
		// falls behind the typical batch.
		cfg.Resilience = ResilienceConfig{HedgeQuantile: 0.5}
	}
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 47) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Short bursts (25ms of a 45ms period) strike flights after gang
	// selection and end before the release-time straggle branding can
	// steer leases away, so the unhedged tail stays slow no matter how
	// good the routing is. Only one device is delayed at a time, so the
	// free pool the hedge draws from is always healthy.
	sched := rotatingStragglerSchedule(9, 64, 45*time.Millisecond,
		25*time.Millisecond, 20*time.Millisecond)
	stop, err := srv.StartChaos(sched)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	images := SyntheticDataset(32, 4, 1, 8, 8, 48)
	var mu sync.Mutex
	var lats []time.Duration
	var wg sync.WaitGroup
	end := time.Now().Add(sched.Duration())
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(end); i += clients {
				s := time.Now()
				if _, err := srv.Infer(context.Background(), images[i%len(images)].Image); err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				el := time.Since(s)
				mu.Lock()
				lats = append(lats, el)
				mu.Unlock()
				// Pace the load: an unthrottled loop would bury the burst
				// victims under tens of thousands of sub-millisecond
				// requests and push them past the 99th percentile.
				time.Sleep(3 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	slow := 0
	for _, l := range lats {
		if l > 10*time.Millisecond {
			slow++
		}
	}
	t.Logf("hedge=%v: %d requests, %d over 10ms, p99 %v, %d hedges",
		hedge, len(lats), slow, p99, srv.ResilStats().Hedges)
	return p99, srv.ResilStats().Hedges
}

// TestHedgeStragglerP99 is the hedging acceptance gate: under a rotating
// straggler schedule, hedged dispatch must improve p99 latency by at least
// 2x over the unhedged baseline (measured far higher; the gate is
// conservative for CI). Wall-clock sensitive, so skipped under the race
// detector and -short.
func TestHedgeStragglerP99(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("timing-sensitive")
	}
	base, _ := stragglerTail(t, false)
	hedged, hedges := stragglerTail(t, true)
	if hedges == 0 {
		t.Fatal("hedged run never hedged")
	}
	ratio := float64(base) / float64(hedged)
	t.Logf("p99 unhedged %v, hedged %v (%.1fx, %d hedges)", base, hedged, ratio, hedges)
	if ratio < 2 {
		t.Fatalf("hedging improved p99 only %.2fx (unhedged %v, hedged %v), want >= 2x",
			ratio, base, hedged)
	}
}
