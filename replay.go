package darknight

import (
	"fmt"

	"darknight/internal/obs"
	"darknight/internal/obs/replay"
)

// ReplayReport is the outcome of a deterministic snapshot replay: batch
// match counts, any divergences, and the event projections compared.
type ReplayReport = replay.Report

// ReplayOptions tunes a replay run.
type ReplayOptions = replay.Options

// LoadSnapshot reads a state snapshot from a JSON file, checking its
// schema version and internal consistency.
func LoadSnapshot(path string) (*StateSnapshot, error) { return obs.LoadSnapshot(path) }

// SaveSnapshot writes a state snapshot to a JSON file.
func SaveSnapshot(snap *StateSnapshot, path string) error { return obs.SaveSnapshot(snap, path) }

// Replay reconstructs the snapshot's cluster and fleet and re-runs its
// captured batch window through a fresh inference engine, comparing
// decoded classes, culprit attributions, and event projections against
// the capture. The model must match the snapshot: pass nil to rebuild it
// from the recorded arch + seed (BuildModel registry names only), or pass
// a model whose weights match the recorded hash (snapshots captured with
// SnapshotWeights restore the weights into it first).
func Replay(snap *StateSnapshot, model *Model, opts ReplayOptions) (*ReplayReport, error) {
	if model == nil {
		var err error
		model, err = modelFromSnapshot(snap)
		if err != nil {
			return nil, err
		}
	}
	return replay.Run(snap, model.m, opts)
}

// ReplaySnapshot loads a snapshot file and replays it, failing the test
// on any divergence — the test-harness entry point. A nil model is
// rebuilt from the snapshot's recorded arch + seed.
func ReplaySnapshot(t replay.TB, path string, model *Model) *ReplayReport {
	t.Helper()
	if model == nil {
		snap, err := obs.LoadSnapshot(path)
		if err != nil {
			t.Fatalf("replay: loading snapshot %s: %v", path, err)
		}
		model, err = modelFromSnapshot(snap)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	return replay.ReplaySnapshot(t, path, model.m)
}

// modelFromSnapshot rebuilds the served model from a snapshot's recorded
// identity. Snapshots with embedded weights only need the architecture
// shape; hash-only snapshots additionally rely on the recorded seed
// reproducing the exact initialization.
func modelFromSnapshot(snap *StateSnapshot) (*Model, error) {
	if snap.Model.Arch == "" {
		return nil, fmt.Errorf("darknight: snapshot names no model arch (custom model %q) — pass the model explicitly", snap.Model.Name)
	}
	m, err := BuildModel(snap.Model.Arch, snap.Model.Seed)
	if err != nil {
		return nil, fmt.Errorf("darknight: rebuilding snapshot model: %w", err)
	}
	return m, nil
}

// BuildModel constructs a model by registry name — the architectures the
// CLI serves and state snapshots record: "tiny", "vgg", "resnet",
// "mobilenet", "deep". All are sized for the 1×8×8 4-class synthetic
// workload; the seed fixes the weight initialization.
func BuildModel(arch string, seed int64) (*Model, error) {
	switch arch {
	case "tiny":
		return TinyCNN(1, 8, 8, 4, seed), nil
	case "vgg":
		return VGG16(1, 8, 8, 4, 1, seed), nil
	case "resnet":
		return ResNet50(1, 8, 8, 4, 1, seed), nil
	case "mobilenet":
		return MobileNetV2(1, 8, 8, 4, 1, seed), nil
	case "deep":
		return DeepMLP(1, 8, 8, 4, 16, seed), nil
	}
	return nil, fmt.Errorf("darknight: unknown model %q (want tiny|vgg|resnet|mobilenet|deep)", arch)
}
