module darknight

go 1.21
