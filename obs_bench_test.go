package darknight

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateRequests sizes each overhead-gate measurement run. 192 requests
// finish in single-digit milliseconds and made the paired gates flake
// tens of percent either way on shared CI; ~1k requests keeps each run
// past the scheduler-noise floor while the whole gate stays under a
// second.
const gateRequests = 960

// pairedOverhead measures two serving configurations and returns the
// median of the per-round throughput ratios b/a (1.0 = no overhead,
// 0.9 = b ten percent slower). One unmeasured warm-up of each side runs
// first (frequency scaling and page-cache warm-up systematically favor
// whichever side runs later); each round then measures the pair
// back-to-back in order alternated between rounds, so slow machine
// phases hit both sides of a ratio and residual drift alternates sign
// instead of biasing one side. The median over rounds discards the
// outlier rounds a best-of cannot.
func pairedOverhead(t *testing.T, rounds int, a, b ObservabilityConfig) float64 {
	t.Helper()
	obsServeThroughput(t, a, 16, gateRequests)
	obsServeThroughput(t, b, 16, gateRequests)
	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		var va, vb float64
		if i%2 == 0 {
			va = obsServeThroughput(t, a, 16, gateRequests)
			vb = obsServeThroughput(t, b, 16, gateRequests)
		} else {
			vb = obsServeThroughput(t, b, 16, gateRequests)
			va = obsServeThroughput(t, a, 16, gateRequests)
		}
		ratios = append(ratios, vb/va)
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 0 {
		return (ratios[mid-1] + ratios[mid]) / 2
	}
	return ratios[mid]
}

// obsServeThroughput drives n closed-loop requests through a pipelined
// K=4 server carrying the given observability configuration and returns
// requests/second — the BenchmarkServing harness with the obs knob
// exposed.
func obsServeThroughput(tb testing.TB, oc ObservabilityConfig, clients, n int) float64 {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config:        Config{VirtualBatch: 4, Seed: 1, EnclaveBytes: -1},
		Workers:       1,
		MaxWait:       5 * time.Millisecond,
		Observability: oc,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkTracingOverhead measures serving throughput across the
// observability operating points: stack absent (the pre-observability
// hot path — nil spans everywhere), stack attached with tracing disabled
// (the production scrape-only configuration), and 1%/100% sampling. The
// disabled-path delta is the number the ≤1% overhead budget in ISSUE/
// DESIGN refers to; BENCH_PR6.json records it.
func BenchmarkTracingOverhead(b *testing.B) {
	modes := []struct {
		name string
		oc   ObservabilityConfig
	}{
		{"disabled", ObservabilityConfig{}},
		{"attached-unsampled", ObservabilityConfig{Enabled: true}},
		{"sampled-1pct", ObservabilityConfig{TraceSample: 0.01}},
		{"sampled-100pct", ObservabilityConfig{TraceSample: 1}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				tp = obsServeThroughput(b, mode.oc, 16, 192)
			}
			b.ReportMetric(tp, "req/s")
		})
	}
}

// TestTracingDisabledOverheadGate enforces the zero-overhead claim for
// the disabled path: attaching the observability stack with tracing off
// (metrics are scrape-time closures, the recorder only sees rare fleet
// events) must not measurably slow serving. The design budget is <= 1%;
// the test gate allows 10% because sub-second throughput runs on shared
// CI carry ±15% of scheduler noise — the median-of-paired-ratios
// protocol (pairedOverhead) keeps even that loose gate meaningful. The
// exact measured delta ships in BENCH_PR6.json via
// BenchmarkTracingOverhead.
func TestTracingDisabledOverheadGate(t *testing.T) {
	ratio := pairedOverhead(t, 9, ObservabilityConfig{}, ObservabilityConfig{Enabled: true})
	t.Logf("attached-unsampled vs obs absent: median paired throughput ratio %.3f (%.2f%% delta)", ratio, 100*(1-ratio))
	if ratio < 0.90 {
		t.Fatalf("attached-but-disabled observability costs %.1f%% throughput (median paired ratio %.3f)", 100*(1-ratio), ratio)
	}
}

// BenchmarkHistogramOverhead measures serving throughput with the live
// latency histogram instruments on versus suppressed (NoHistograms), the
// rest of the observability stack identical. The on/off delta is the
// number the ≤2% histogram budget in ISSUE/DESIGN refers to;
// BENCH_PR8.json records it.
func BenchmarkHistogramOverhead(b *testing.B) {
	modes := []struct {
		name string
		oc   ObservabilityConfig
	}{
		{"histograms-off", ObservabilityConfig{Enabled: true, NoHistograms: true}},
		{"histograms-on", ObservabilityConfig{Enabled: true}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				tp = obsServeThroughput(b, mode.oc, 16, 192)
			}
			b.ReportMetric(tp, "req/s")
		})
	}
}

// TestHistogramOverheadGate enforces the histogram recording budget: the
// per-request latency vec and per-phase vec cost one atomic bucket
// increment plus a short ring append per observation, which must not
// measurably dent serving throughput. The design budget is <= 2%; the
// gate allows 10% for shared-CI scheduler noise, median-of-paired-ratios
// so both sides of every ratio see the same machine state (the PR 6
// tracing gate's protocol). The pair isolates the per-request instruments; the
// per-grant fleet flight histogram (K-fold rarer) stays on in both sides
// and is bounded with everything else by TestTracingDisabledOverheadGate.
func TestHistogramOverheadGate(t *testing.T) {
	ratio := pairedOverhead(t, 9,
		ObservabilityConfig{Enabled: true, NoHistograms: true},
		ObservabilityConfig{Enabled: true})
	t.Logf("histograms on vs off: median paired throughput ratio %.3f (%.2f%% delta)", ratio, 100*(1-ratio))
	if ratio < 0.90 {
		t.Fatalf("histogram recording costs %.1f%% throughput (median paired ratio %.3f)", 100*(1-ratio), ratio)
	}
}
