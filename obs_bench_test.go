package darknight

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// obsServeThroughput drives n closed-loop requests through a pipelined
// K=4 server carrying the given observability configuration and returns
// requests/second — the BenchmarkServing harness with the obs knob
// exposed.
func obsServeThroughput(tb testing.TB, oc ObservabilityConfig, clients, n int) float64 {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config:        Config{VirtualBatch: 4, Seed: 1, EnclaveBytes: -1},
		Workers:       1,
		MaxWait:       5 * time.Millisecond,
		Observability: oc,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkTracingOverhead measures serving throughput across the
// observability operating points: stack absent (the pre-observability
// hot path — nil spans everywhere), stack attached with tracing disabled
// (the production scrape-only configuration), and 1%/100% sampling. The
// disabled-path delta is the number the ≤1% overhead budget in ISSUE/
// DESIGN refers to; BENCH_PR6.json records it.
func BenchmarkTracingOverhead(b *testing.B) {
	modes := []struct {
		name string
		oc   ObservabilityConfig
	}{
		{"disabled", ObservabilityConfig{}},
		{"attached-unsampled", ObservabilityConfig{Enabled: true}},
		{"sampled-1pct", ObservabilityConfig{TraceSample: 0.01}},
		{"sampled-100pct", ObservabilityConfig{TraceSample: 1}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var tp float64
			for i := 0; i < b.N; i++ {
				tp = obsServeThroughput(b, mode.oc, 16, 192)
			}
			b.ReportMetric(tp, "req/s")
		})
	}
}

// TestTracingDisabledOverheadGate enforces the zero-overhead claim for
// the disabled path: attaching the observability stack with tracing off
// (metrics are scrape-time closures, the recorder only sees rare fleet
// events) must not measurably slow serving. The design budget is <= 1%;
// the test gate allows 10% because sub-second throughput runs on shared
// CI carry several percent of scheduler noise — paired best-of-N keeps
// even that loose gate meaningful. The exact measured delta ships in
// BENCH_PR6.json via BenchmarkTracingOverhead.
func TestTracingDisabledOverheadGate(t *testing.T) {
	const rounds = 4
	var off, on float64
	for i := 0; i < rounds; i++ { // interleaved: both sides see the same machine state
		if v := obsServeThroughput(t, ObservabilityConfig{}, 16, 192); v > off {
			off = v
		}
		if v := obsServeThroughput(t, ObservabilityConfig{Enabled: true}, 16, 192); v > on {
			on = v
		}
	}
	delta := 100 * (off - on) / off
	t.Logf("best throughput: obs absent %.0f req/s, attached-unsampled %.0f req/s (%.2f%% delta)", off, on, delta)
	if on < 0.90*off {
		t.Fatalf("attached-but-disabled observability costs %.1f%% throughput (%.0f vs %.0f req/s)", delta, on, off)
	}
}
