package darknight

// PR9 benchmarks: what the resilience layer costs when nothing goes wrong.
// Deadline budgets, retry bookkeeping, hedge arming and admission control
// all sit on the hot path, so the clean-schedule throughput with the full
// stack enabled must stay within a few percent of the resilience-off
// baseline. Measured numbers are recorded in BENCH_PR9.json; the CI gate
// (TestResilienceOverheadGate) bounds the paired-median slowdown at 10% to
// stay meaningful under shared-runner noise, with the design budget at 5%.

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// resilGateRequests is the closed-loop run length of one overhead sample.
const resilGateRequests = 960

// fullResilience is the clean-path configuration under test: retries armed
// (never taken on a healthy fleet), hedging at a high percentile trigger,
// admission control with headroom, and a generous deadline budget.
func fullResilience() ResilienceConfig {
	return ResilienceConfig{
		Budget:        2 * time.Second,
		RetryMax:      2,
		HedgeQuantile: 0.99,
		ShedQueue:     4096,
	}
}

// resilServeThroughput drives n closed-loop requests through a one-worker
// K=4 server (hedging requires serial workers) with extra fleet headroom
// for hedge gangs, and returns requests/second.
func resilServeThroughput(tb testing.TB, rc ResilienceConfig, clients, n int) float64 {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config: Config{
			VirtualBatch: 4,
			Seed:         1,
			EnclaveBytes: -1,
			SpareGPUs:    6,
		},
		Workers:    1,
		MaxWait:    5 * time.Millisecond,
		Resilience: rc,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// resilPairedRatio returns the median paired throughput ratio (resilience
// on / resilience off) over `rounds` back-to-back runs in alternating
// order, after one warm-up pass per side. Pairing cancels the machine's
// slow drift; the median discards outlier rounds.
func resilPairedRatio(t *testing.T, rounds int) float64 {
	t.Helper()
	off, on := ResilienceConfig{}, fullResilience()
	resilServeThroughput(t, off, 16, resilGateRequests)
	resilServeThroughput(t, on, 16, resilGateRequests)
	ratios := make([]float64, 0, rounds)
	for i := 0; i < rounds; i++ {
		var vOff, vOn float64
		if i%2 == 0 {
			vOff = resilServeThroughput(t, off, 16, resilGateRequests)
			vOn = resilServeThroughput(t, on, 16, resilGateRequests)
		} else {
			vOn = resilServeThroughput(t, on, 16, resilGateRequests)
			vOff = resilServeThroughput(t, off, 16, resilGateRequests)
		}
		ratios = append(ratios, vOn/vOff)
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	if len(ratios)%2 == 0 {
		return (ratios[mid-1] + ratios[mid]) / 2
	}
	return ratios[mid]
}

// TestResilienceOverheadGate bounds the clean-path cost of the full
// resilience stack: the paired-median throughput with budgets, retries,
// hedging and admission control enabled must stay within 10% of the
// resilience-off baseline (design budget 5%; the CI gate leaves room for
// shared-runner noise). Wall-clock sensitive, so skipped under the race
// detector and -short.
func TestResilienceOverheadGate(t *testing.T) {
	if raceEnabled || testing.Short() {
		t.Skip("timing-sensitive")
	}
	ratio := resilPairedRatio(t, 9)
	t.Logf("resilience-on vs resilience-off paired-median throughput ratio: %.3f", ratio)
	if ratio < 0.90 {
		t.Fatalf("resilience stack costs %.1f%% clean-path throughput, budget 10%%",
			100*(1-ratio))
	}
}

// BenchmarkResilientServing records both sides for the BENCH_PR9 artifact.
func BenchmarkResilientServing(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = resilServeThroughput(b, ResilienceConfig{}, 16, resilGateRequests)
		on = resilServeThroughput(b, fullResilience(), 16, resilGateRequests)
	}
	b.ReportMetric(off, "resil-off-req/s")
	b.ReportMetric(on, "resil-on-req/s")
	b.ReportMetric(on/off, "on-vs-off-x")
}
