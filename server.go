package darknight

import (
	"context"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/sched"
	"darknight/internal/serve"
)

// Tenant names a traffic source and its fair-share weight.
type Tenant = fleet.TenantConfig

// FleetStats is a snapshot of device health, quarantine events and
// per-tenant share accounting.
type FleetStats = fleet.Stats

// ServerConfig selects the operating point of an inference server: the
// privacy/integrity knobs of Config plus the serving-layer and
// fleet-management shape.
type ServerConfig struct {
	// Config carries K, M, E, cluster size, malicious markings, enclave
	// budget and seed. GPUs = 0 sizes the cluster for full worker
	// parallelism (Workers gangs of K+M+E devices each) plus SpareGPUs.
	Config
	// Workers is the number of concurrent inference pipelines, each with a
	// private model replica (default 2).
	Workers int
	// PipelineDepth >= 2 switches every worker to overlapped execution:
	// up to that many virtual batches in flight per worker — while batch i
	// is on the GPUs, the TEE decodes batch i−1 and encodes batch i+1, with
	// noise pre-drawn offline by a background pool. Each in-flight batch
	// holds its own gang, so full overlap wants GPUs ≈ Workers ×
	// PipelineDepth × gang (0 sizes the cluster that way automatically).
	// <= 1 keeps the serial engine. Outputs are bit-identical either way.
	PipelineDepth int
	// QueueDepth bounds the admission queue (0 = 4·K).
	QueueDepth int
	// MaxWait bounds how long a request waits for K-1 peers before its
	// batch is flushed padded with uniform-noise dummy rows. 0 picks the
	// default of 2ms; negative flushes immediately (every batch carries
	// one real row — the unbatched baseline).
	MaxWait time.Duration
	// Tenants pre-registers named tenants with fair-share weights; unknown
	// tenants are auto-registered at weight 1. Use Server.InferAs to tag
	// requests.
	Tenants []Tenant
	// SpareGPUs adds devices beyond the Workers×gang sizing — headroom for
	// quarantine survival and speculative straggler re-dispatch.
	SpareGPUs int
	// SlowAll marks every device in the cluster slow by SlowDelay — the
	// uniform per-dispatch device-latency regime that pipelined execution
	// hides. Resolved after the cluster is sized, so it always covers the
	// whole fleet (unlike a hand-built SlowGPUs list).
	SlowAll bool
	// Recover enables audit-and-recover: a tampered batch is decoded from
	// the clean equations instead of failing, and the attributed culprit
	// device is quarantined. Requires Redundancy >= 2.
	Recover bool
	// StragglerSlack lets a dispatch decode after all but this many coded
	// responses arrive (needs Redundancy >= 2; one redundant equation is
	// always kept for verification).
	StragglerSlack int
	// Fuse enables the fused-offload compile pass: maximal runs of directly
	// consecutive bilinear layers ride one gang flight per block instead of
	// one flight per layer. Outputs are bit-identical to the per-layer path;
	// only the per-flight machinery (lease handles, fan-out goroutines,
	// device launch latency) is amortized across the block.
	Fuse bool
	// Continuous enables continuous batching: a flushed padded batch keeps
	// accepting same-tenant riders in place of its pad rows until a worker
	// picks it up (the batch seals at pickup, not at flush).
	Continuous bool
	// SpeculateAfter re-dispatches a coded share that has not answered
	// within this window to a spare device. 0 disables. Speculation rides
	// the straggler quorum path, so it only engages when StragglerSlack
	// >= 1 and Redundancy >= 2 (and a spare device is free).
	SpeculateAfter time.Duration
	// Fleet tunes quarantine thresholds and probation; zero values pick
	// the fleet defaults. Tenants/SpeculateAfter/Seed above take
	// precedence over their Fleet counterparts.
	Fleet fleet.Config
	// Observability switches on request tracing, the exportable metrics
	// registry, and the chaos flight recorder. Zero value = off, and the
	// hot path stays at its untraced cost.
	Observability ObservabilityConfig
	// Arch optionally names the model architecture (a BuildModel registry
	// name such as "tiny" or "vgg"). It is recorded in state snapshots so
	// `darknight replay` can rebuild the model from arch + seed alone.
	Arch string
}

// ServerMetrics is a snapshot of the serving counters.
type ServerMetrics = serve.Snapshot

// Server is a concurrent private-inference service: independent clients'
// single-image requests are coalesced into per-tenant virtual batches of
// exactly K, coded in the TEE, and gang-dispatched onto K+M+E devices
// granted by a self-healing fair-share fleet manager.
type Server struct {
	inner   *serve.Server
	fleet   *fleet.Manager
	cluster *gpu.Cluster
	encl    *enclave.Enclave
	obs     *obs.Observability
	msrv    *obs.MetricsServer
	// cfg is the fully defaulted configuration (cluster sized, SlowAll
	// expanded) and ref one worker's model replica — together the model
	// and cluster sections of a state snapshot.
	cfg ServerConfig
	ref *nn.Model
}

// NewServer stands up a serving deployment. newModel is called once per
// worker to build that worker's private model replica — return
// weight-identical models (same constructor and seed, or
// CopyWeightsFrom a trained reference).
func NewServer(newModel func() *Model, cfg ServerConfig) (*Server, error) {
	if cfg.VirtualBatch == 0 {
		cfg.VirtualBatch = 2
	}
	if cfg.Collusion == 0 {
		cfg.Collusion = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	gang := cfg.VirtualBatch + cfg.Collusion + cfg.Redundancy
	if cfg.GPUs == 0 {
		// Pipelined workers hold one gang per in-flight batch; size the
		// default cluster so the overlap is not starved of devices.
		gangsPerWorker := 1
		if cfg.PipelineDepth >= 2 {
			gangsPerWorker = cfg.PipelineDepth
		}
		cfg.GPUs = cfg.Workers*gangsPerWorker*gang + cfg.SpareGPUs
	}
	if cfg.SlowAll {
		cfg.SlowGPUs = make([]int, cfg.GPUs)
		for i := range cfg.SlowGPUs {
			cfg.SlowGPUs[i] = i
		}
	}
	cluster, err := buildCluster(cfg.Config)
	if err != nil {
		return nil, err
	}
	encl, err := buildEnclave(cfg.Config)
	if err != nil {
		return nil, err
	}
	replicas := make([]*nn.Model, cfg.Workers)
	for i := range replicas {
		replicas[i] = newModel().m
	}
	fcfg := cfg.Fleet
	fcfg.Tenants = cfg.Tenants
	fcfg.SpeculateAfter = cfg.SpeculateAfter
	fcfg.Seed = cfg.Seed
	fm := fleet.NewManager(cluster, fcfg)
	ob := cfg.Observability.build(cfg.Seed)
	srv, err := serve.New(serve.Config{
		Sched: sched.Config{
			VirtualBatch:   cfg.VirtualBatch,
			Collusion:      cfg.Collusion,
			Redundancy:     cfg.Redundancy,
			StragglerSlack: cfg.StragglerSlack,
			FuseBlocks:     cfg.Fuse,
			Seed:           cfg.Seed,
		},
		QueueDepth:    cfg.QueueDepth,
		MaxWait:       cfg.MaxWait,
		Recover:       cfg.Recover,
		PipelineDepth: cfg.PipelineDepth,
		Continuous:    cfg.Continuous,
		Obs:           ob,
		SLO:           cfg.Observability.SLO,
		BatchLog:      cfg.Observability.SnapshotBatchLog,
		NoHistograms:  cfg.Observability.NoHistograms,
	}, replicas, fm, encl)
	if err != nil {
		return nil, err
	}
	s := &Server{inner: srv, fleet: fm, cluster: cluster, encl: encl, obs: ob,
		cfg: cfg, ref: replicas[0]}
	if ob != nil {
		ob.SetSnapshotProvider(s.CaptureSnapshot)
	}
	if addr := cfg.Observability.MetricsAddr; addr != "" {
		s.msrv, err = ob.Serve(addr)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	return s, nil
}

// Infer privately classifies one image for the default tenant, blocking
// until its virtual batch is dispatched and decoded (or ctx is done).
// Tampered GPU results on the request's batch surface as an error
// satisfying IsIntegrityError.
func (s *Server) Infer(ctx context.Context, image []float64) (int, error) {
	return s.inner.Infer(ctx, image)
}

// InferAs privately classifies one image on behalf of a named tenant. The
// request is only ever batched with rows of the same tenant and its device
// time is charged to that tenant's fair-share account.
func (s *Server) InferAs(ctx context.Context, tenant string, image []float64) (int, error) {
	return s.inner.InferTenant(ctx, tenant, image)
}

// Metrics returns the serving counters: throughput, latency quantiles,
// queue depth, batch occupancy, integrity failures, per-tenant usage and
// the fleet health snapshot.
func (s *Server) Metrics() ServerMetrics { return s.inner.Metrics() }

// FleetStats returns the fleet health snapshot: per-device health and
// quarantine state, the quarantine event log, straggler/speculation
// counters and per-tenant share accounting.
func (s *Server) FleetStats() FleetStats { return s.fleet.Stats() }

// GPUTraffic returns the fleet's total TEE<->GPU channel usage.
func (s *Server) GPUTraffic() gpu.Traffic { return s.cluster.TotalTraffic() }

// EnclaveStats returns the shared enclave's counters (zero value if
// accounting is disabled).
func (s *Server) EnclaveStats() enclave.Stats {
	if s.encl == nil {
		return enclave.Stats{}
	}
	return s.encl.Stats()
}

// Close drains in-flight requests, stops the workers, and shuts down the
// metrics listener if one is serving.
func (s *Server) Close() {
	s.msrv.Close()
	s.inner.Close()
}

// IsIntegrityError reports whether a serving error was caused by tampered
// GPU results.
func IsIntegrityError(err error) bool { return serve.IsIntegrityError(err) }
