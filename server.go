package darknight

import (
	"context"
	"errors"
	"fmt"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/resil"
	"darknight/internal/sched"
	"darknight/internal/serve"
)

// Typed resilience outcomes a client can observe. ErrDeadline additionally
// matches errors.Is(err, context.DeadlineExceeded).
var (
	// ErrDeadline reports a request whose end-to-end deadline budget
	// expired before (or during) dispatch.
	ErrDeadline = resil.ErrDeadline
	// ErrShed reports a request rejected by admission control before any
	// work was done; clients should back off and retry.
	ErrShed = resil.ErrShed
	// ErrRetriesExhausted reports a request whose batch failed on its
	// original gang and on every permitted retry gang.
	ErrRetriesExhausted = resil.ErrRetriesExhausted
)

// ChaosSchedule is a deterministic fault script playable against a
// chaos-enabled server: timed device crashes, latency spikes, tamper
// bursts, flapping and partitions (see internal/resil for the format).
type ChaosSchedule = resil.Schedule

// ChaosEvent is one scripted fault of a ChaosSchedule.
type ChaosEvent = resil.ChaosEvent

// ResilSnapshot is the resilience accounting: sheds, deadline expiries,
// retries, hedges, brownout transitions, chaos actions.
type ResilSnapshot = resil.Snapshot

// LoadChaosSchedule reads and validates a chaos schedule file.
func LoadChaosSchedule(path string) (*ChaosSchedule, error) {
	return resil.LoadSchedule(path)
}

// ResilienceConfig selects the adaptive resilience layer of a Server: the
// zero value disables all of it and the serving hot path stays at its
// previous cost.
type ResilienceConfig struct {
	// Budget is the default end-to-end deadline applied to requests whose
	// context carries none (0 = unbounded). A caller deadline always wins
	// when earlier. At most half the budget (BatchFraction) is spent
	// batching; the offload layer re-checks the deadline before every gang
	// dispatch.
	Budget time.Duration
	// BatchFraction overrides the batching share of the budget (0 picks
	// the 0.5 default).
	BatchFraction float64
	// RetryMax re-dispatches a failed or integrity-rejected virtual batch
	// onto a fresh gang up to this many times, under capped exponential
	// backoff (0 disables retry).
	RetryMax int
	// HedgeQuantile > 0 enables hedged dispatch: a batch whose primary
	// gang has not answered within this observed latency percentile (e.g.
	// 0.95) is speculatively duplicated on spare capacity, and the first
	// answer wins. Requires serial workers (PipelineDepth <= 1).
	HedgeQuantile float64
	// ShedQueue > 0 enables admission control: a tenant's request is shed
	// with ErrShed when the queue holds at least this many requests
	// (scaled by its ShedPriorities share).
	ShedQueue int
	// ShedPriorities maps tenant names to their share of ShedQueue in
	// (0, 1]; "*" sets the default (1 when absent). High-priority tenants
	// keep admitting while lower ones shed.
	ShedPriorities map[string]float64
	// Brownout enables the SLO-driven degradation controller: sustained
	// burn-rate breaches shrink the flush window, disable hedging, tighten
	// shedding and cap pipeline depth — stepwise, and stepwise restored
	// when the burn recovers. Requires SLO objectives
	// (Observability.SLO); enabling it implies the observability stack.
	Brownout bool
}

// toResil lowers the facade knobs onto the internal policy set.
func (rc ResilienceConfig) toResil() resil.Config {
	c := resil.Config{
		Budget:   resil.BudgetPolicy{Default: rc.Budget, BatchFraction: rc.BatchFraction},
		Retry:    resil.RetryPolicy{Max: rc.RetryMax},
		Shed:     resil.ShedPolicy{MaxQueue: rc.ShedQueue, Priorities: rc.ShedPriorities},
		Brownout: resil.BrownoutPolicy{Enabled: rc.Brownout},
	}
	if rc.HedgeQuantile > 0 {
		c.Hedge = resil.HedgePolicy{Enabled: true, Quantile: rc.HedgeQuantile}
	}
	return c
}

// Tenant names a traffic source and its fair-share weight.
type Tenant = fleet.TenantConfig

// FleetStats is a snapshot of device health, quarantine events and
// per-tenant share accounting.
type FleetStats = fleet.Stats

// ServerConfig selects the operating point of an inference server: the
// privacy/integrity knobs of Config plus the serving-layer and
// fleet-management shape.
type ServerConfig struct {
	// Config carries K, M, E, cluster size, malicious markings, enclave
	// budget and seed. GPUs = 0 sizes the cluster for full worker
	// parallelism (Workers gangs of K+M+E devices each) plus SpareGPUs.
	Config
	// Workers is the number of concurrent inference pipelines, each with a
	// private model replica (default 2).
	Workers int
	// PipelineDepth >= 2 switches every worker to overlapped execution:
	// up to that many virtual batches in flight per worker — while batch i
	// is on the GPUs, the TEE decodes batch i−1 and encodes batch i+1, with
	// noise pre-drawn offline by a background pool. Each in-flight batch
	// holds its own gang, so full overlap wants GPUs ≈ Workers ×
	// PipelineDepth × gang (0 sizes the cluster that way automatically).
	// <= 1 keeps the serial engine. Outputs are bit-identical either way.
	PipelineDepth int
	// QueueDepth bounds the admission queue (0 = 4·K).
	QueueDepth int
	// MaxWait bounds how long a request waits for K-1 peers before its
	// batch is flushed padded with uniform-noise dummy rows. 0 picks the
	// default of 2ms; negative flushes immediately (every batch carries
	// one real row — the unbatched baseline).
	MaxWait time.Duration
	// Tenants pre-registers named tenants with fair-share weights; unknown
	// tenants are auto-registered at weight 1. Use Server.InferAs to tag
	// requests.
	Tenants []Tenant
	// SpareGPUs adds devices beyond the Workers×gang sizing — headroom for
	// quarantine survival and speculative straggler re-dispatch.
	SpareGPUs int
	// SlowAll marks every device in the cluster slow by SlowDelay — the
	// uniform per-dispatch device-latency regime that pipelined execution
	// hides. Resolved after the cluster is sized, so it always covers the
	// whole fleet (unlike a hand-built SlowGPUs list).
	SlowAll bool
	// Recover enables audit-and-recover: a tampered batch is decoded from
	// the clean equations instead of failing, and the attributed culprit
	// device is quarantined. Requires Redundancy >= 2.
	Recover bool
	// StragglerSlack lets a dispatch decode after all but this many coded
	// responses arrive (needs Redundancy >= 2; one redundant equation is
	// always kept for verification).
	StragglerSlack int
	// Fuse enables the fused-offload compile pass: maximal runs of directly
	// consecutive bilinear layers ride one gang flight per block instead of
	// one flight per layer. Outputs are bit-identical to the per-layer path;
	// only the per-flight machinery (lease handles, fan-out goroutines,
	// device launch latency) is amortized across the block.
	Fuse bool
	// Continuous enables continuous batching: a flushed padded batch keeps
	// accepting same-tenant riders in place of its pad rows until a worker
	// picks it up (the batch seals at pickup, not at flush).
	Continuous bool
	// SpeculateAfter re-dispatches a coded share that has not answered
	// within this window to a spare device. 0 disables. Speculation rides
	// the straggler quorum path, so it only engages when StragglerSlack
	// >= 1 and Redundancy >= 2 (and a spare device is free).
	SpeculateAfter time.Duration
	// Fleet tunes quarantine thresholds and probation; zero values pick
	// the fleet defaults. Tenants/SpeculateAfter/Seed above take
	// precedence over their Fleet counterparts.
	Fleet fleet.Config
	// Observability switches on request tracing, the exportable metrics
	// registry, and the chaos flight recorder. Zero value = off, and the
	// hot path stays at its untraced cost.
	Observability ObservabilityConfig
	// Resilience selects the adaptive resilience layer: deadline budgets,
	// retry onto fresh gangs, hedged dispatch, load shedding and brownout
	// degradation. Zero value = off.
	Resilience ResilienceConfig
	// Arch optionally names the model architecture (a BuildModel registry
	// name such as "tiny" or "vgg"). It is recorded in state snapshots so
	// `darknight replay` can rebuild the model from arch + seed alone.
	Arch string
}

// ServerMetrics is a snapshot of the serving counters.
type ServerMetrics = serve.Snapshot

// Server is a concurrent private-inference service: independent clients'
// single-image requests are coalesced into per-tenant virtual batches of
// exactly K, coded in the TEE, and gang-dispatched onto K+M+E devices
// granted by a self-healing fair-share fleet manager.
type Server struct {
	inner   *serve.Server
	fleet   *fleet.Manager
	cluster *gpu.Cluster
	encl    *enclave.Enclave
	obs     *obs.Observability
	msrv    *obs.MetricsServer
	// chaos holds the per-device fault actuators (Config.Chaos) and runner
	// the schedule player over them; both nil on a chaos-free server.
	chaos  []*gpu.ChaosDevice
	runner *resil.Runner
	// cfg is the fully defaulted configuration (cluster sized, SlowAll
	// expanded) and ref one worker's model replica — together the model
	// and cluster sections of a state snapshot.
	cfg ServerConfig
	ref *nn.Model
}

// NewServer stands up a serving deployment. newModel is called once per
// worker to build that worker's private model replica — return
// weight-identical models (same constructor and seed, or
// CopyWeightsFrom a trained reference).
func NewServer(newModel func() *Model, cfg ServerConfig) (*Server, error) {
	if cfg.VirtualBatch == 0 {
		cfg.VirtualBatch = 2
	}
	if cfg.Collusion == 0 {
		cfg.Collusion = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	gang := cfg.VirtualBatch + cfg.Collusion + cfg.Redundancy
	if cfg.GPUs == 0 {
		// Pipelined workers hold one gang per in-flight batch; size the
		// default cluster so the overlap is not starved of devices.
		gangsPerWorker := 1
		if cfg.PipelineDepth >= 2 {
			gangsPerWorker = cfg.PipelineDepth
		}
		cfg.GPUs = cfg.Workers*gangsPerWorker*gang + cfg.SpareGPUs
	}
	if cfg.SlowAll {
		cfg.SlowGPUs = make([]int, cfg.GPUs)
		for i := range cfg.SlowGPUs {
			cfg.SlowGPUs[i] = i
		}
	}
	cluster, chaosDevs, err := buildCluster(cfg.Config)
	if err != nil {
		return nil, err
	}
	encl, err := buildEnclave(cfg.Config)
	if err != nil {
		return nil, err
	}
	replicas := make([]*nn.Model, cfg.Workers)
	for i := range replicas {
		replicas[i] = newModel().m
	}
	rcfg := cfg.Resilience.toResil()
	var hedgeModels []*nn.Model
	if rcfg.Hedge.Enabled {
		// One extra private replica per worker: a hedge flight re-runs the
		// batch concurrently with the primary, and nn layers cache forward
		// state, so the flights cannot share a model.
		hedgeModels = make([]*nn.Model, cfg.Workers)
		for i := range hedgeModels {
			hedgeModels[i] = newModel().m
		}
	}
	fcfg := cfg.Fleet
	fcfg.Tenants = cfg.Tenants
	fcfg.SpeculateAfter = cfg.SpeculateAfter
	fcfg.Seed = cfg.Seed
	fm := fleet.NewManager(cluster, fcfg)
	ob := cfg.Observability.build(cfg.Seed)
	srv, err := serve.New(serve.Config{
		Sched: sched.Config{
			VirtualBatch:   cfg.VirtualBatch,
			Collusion:      cfg.Collusion,
			Redundancy:     cfg.Redundancy,
			StragglerSlack: cfg.StragglerSlack,
			FuseBlocks:     cfg.Fuse,
			Seed:           cfg.Seed,
		},
		QueueDepth:    cfg.QueueDepth,
		MaxWait:       cfg.MaxWait,
		Recover:       cfg.Recover,
		PipelineDepth: cfg.PipelineDepth,
		Continuous:    cfg.Continuous,
		Obs:           ob,
		SLO:           cfg.Observability.SLO,
		BatchLog:      cfg.Observability.SnapshotBatchLog,
		NoHistograms:  cfg.Observability.NoHistograms,
		Resil:         rcfg,
		HedgeModels:   hedgeModels,
	}, replicas, fm, encl)
	if err != nil {
		return nil, err
	}
	s := &Server{inner: srv, fleet: fm, cluster: cluster, encl: encl, obs: ob,
		chaos: chaosDevs, cfg: cfg, ref: replicas[0]}
	if len(chaosDevs) > 0 {
		var rec *obs.FlightRecorder
		if ob != nil {
			rec = ob.Recorder
		}
		s.runner = resil.NewRunner(chaosDevs, rec, srv.ResilCounters())
	}
	if ob != nil {
		ob.SetSnapshotProvider(s.CaptureSnapshot)
	}
	if addr := cfg.Observability.MetricsAddr; addr != "" {
		s.msrv, err = ob.Serve(addr)
		if err != nil {
			srv.Close()
			return nil, err
		}
	}
	return s, nil
}

// Infer privately classifies one image for the default tenant, blocking
// until its virtual batch is dispatched and decoded (or ctx is done).
// Tampered GPU results on the request's batch surface as an error
// satisfying IsIntegrityError.
func (s *Server) Infer(ctx context.Context, image []float64) (int, error) {
	return s.inner.Infer(ctx, image)
}

// InferAs privately classifies one image on behalf of a named tenant. The
// request is only ever batched with rows of the same tenant and its device
// time is charged to that tenant's fair-share account.
func (s *Server) InferAs(ctx context.Context, tenant string, image []float64) (int, error) {
	return s.inner.InferTenant(ctx, tenant, image)
}

// Metrics returns the serving counters: throughput, latency quantiles,
// queue depth, batch occupancy, integrity failures, per-tenant usage and
// the fleet health snapshot.
func (s *Server) Metrics() ServerMetrics { return s.inner.Metrics() }

// FleetStats returns the fleet health snapshot: per-device health and
// quarantine state, the quarantine event log, straggler/speculation
// counters and per-tenant share accounting.
func (s *Server) FleetStats() FleetStats { return s.fleet.Stats() }

// GPUTraffic returns the fleet's total TEE<->GPU channel usage.
func (s *Server) GPUTraffic() gpu.Traffic { return s.cluster.TotalTraffic() }

// EnclaveStats returns the shared enclave's counters (zero value if
// accounting is disabled).
func (s *Server) EnclaveStats() enclave.Stats {
	if s.encl == nil {
		return enclave.Stats{}
	}
	return s.encl.Stats()
}

// Close drains in-flight requests, stops the workers, and shuts down the
// metrics listener if one is serving.
func (s *Server) Close() {
	s.msrv.Close()
	s.inner.Close()
}

// IsIntegrityError reports whether a serving error was caused by tampered
// GPU results.
func IsIntegrityError(err error) bool { return serve.IsIntegrityError(err) }

// IsShed reports whether a serving error is an admission-control shed —
// the client did no work and should back off and retry.
func IsShed(err error) bool { return errors.Is(err, ErrShed) }

// IsDeadline reports whether a serving error is a deadline-budget expiry
// (it also matches plain context.DeadlineExceeded checks).
func IsDeadline(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// ErrNoChaos is returned by the chaos methods of a server built without
// Config.Chaos.
var ErrNoChaos = errors.New("darknight: server built without Config.Chaos")

// PlayChaos applies a fault schedule to the live fleet in real time,
// blocking until the last scripted action fires or ctx is done (on
// cancellation every actuator resets to clean). Requires Config.Chaos.
func (s *Server) PlayChaos(ctx context.Context, sched *ChaosSchedule) error {
	if s.runner == nil {
		return ErrNoChaos
	}
	if err := sched.Validate(); err != nil {
		return fmt.Errorf("darknight: bad chaos schedule: %w", err)
	}
	return s.runner.Play(ctx, sched)
}

// StartChaos plays a fault schedule on a background goroutine; the
// returned stop function cancels it (resetting the actuators) and waits
// for exit. Requires Config.Chaos.
func (s *Server) StartChaos(sched *ChaosSchedule) (stop func(), err error) {
	if s.runner == nil {
		return nil, ErrNoChaos
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("darknight: bad chaos schedule: %w", err)
	}
	return s.runner.Start(sched), nil
}

// ResetChaos returns every fault actuator to the clean state (no-op
// without Config.Chaos).
func (s *Server) ResetChaos() {
	if s.runner != nil {
		s.runner.Reset()
	}
}

// ResilStats returns the resilience accounting: sheds, deadline expiries,
// retries, hedges, brownout transitions and chaos actions.
func (s *Server) ResilStats() ResilSnapshot { return s.Metrics().Resil }

// BrownoutLevel returns the current degradation level (0 = full service).
func (s *Server) BrownoutLevel() int { return s.inner.BrownoutLevel() }
