package darknight

import (
	"context"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
	"darknight/internal/serve"
)

// ServerConfig selects the operating point of an inference server: the
// privacy/integrity knobs of Config plus the serving-layer shape.
type ServerConfig struct {
	// Config carries K, M, E, cluster size, malicious markings, enclave
	// budget and seed. GPUs = 0 sizes the cluster for full worker
	// parallelism (Workers gangs of K+M+E devices each).
	Config
	// Workers is the number of concurrent inference pipelines, each with a
	// private model replica (default 2).
	Workers int
	// QueueDepth bounds the admission queue (0 = 4·K).
	QueueDepth int
	// MaxWait bounds how long a request waits for K-1 peers before its
	// batch is flushed padded with uniform-noise dummy rows. 0 picks the
	// default of 2ms; negative flushes immediately (every batch carries
	// one real row — the unbatched baseline).
	MaxWait time.Duration
}

// ServerMetrics is a snapshot of the serving counters.
type ServerMetrics = serve.Snapshot

// Server is a concurrent private-inference service: independent clients'
// single-image requests are coalesced into virtual batches of exactly K,
// coded in the TEE, and gang-dispatched onto K+M+E leased GPUs per batch.
type Server struct {
	inner   *serve.Server
	cluster *gpu.Cluster
	encl    *enclave.Enclave
}

// NewServer stands up a serving deployment. newModel is called once per
// worker to build that worker's private model replica — return
// weight-identical models (same constructor and seed, or
// CopyWeightsFrom a trained reference).
func NewServer(newModel func() *Model, cfg ServerConfig) (*Server, error) {
	if cfg.VirtualBatch == 0 {
		cfg.VirtualBatch = 2
	}
	if cfg.Collusion == 0 {
		cfg.Collusion = 1
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	gang := cfg.VirtualBatch + cfg.Collusion + cfg.Redundancy
	if cfg.GPUs == 0 {
		cfg.GPUs = cfg.Workers * gang
	}
	cluster, err := buildCluster(cfg.Config)
	if err != nil {
		return nil, err
	}
	encl, err := buildEnclave(cfg.Config)
	if err != nil {
		return nil, err
	}
	replicas := make([]*nn.Model, cfg.Workers)
	for i := range replicas {
		replicas[i] = newModel().m
	}
	srv, err := serve.New(serve.Config{
		Sched: sched.Config{
			VirtualBatch: cfg.VirtualBatch,
			Collusion:    cfg.Collusion,
			Redundancy:   cfg.Redundancy,
			Seed:         cfg.Seed,
		},
		QueueDepth: cfg.QueueDepth,
		MaxWait:    cfg.MaxWait,
	}, replicas, gpu.NewLeaseManager(cluster), encl)
	if err != nil {
		return nil, err
	}
	return &Server{inner: srv, cluster: cluster, encl: encl}, nil
}

// Infer privately classifies one image, blocking until its virtual batch
// is dispatched and decoded (or ctx is done). Tampered GPU results on the
// request's batch surface as an error satisfying IsIntegrityError.
func (s *Server) Infer(ctx context.Context, image []float64) (int, error) {
	return s.inner.Infer(ctx, image)
}

// Metrics returns the serving counters: throughput, latency quantiles,
// queue depth, batch occupancy and integrity failures.
func (s *Server) Metrics() ServerMetrics { return s.inner.Metrics() }

// GPUTraffic returns the fleet's total TEE<->GPU channel usage.
func (s *Server) GPUTraffic() gpu.Traffic { return s.cluster.TotalTraffic() }

// EnclaveStats returns the shared enclave's counters (zero value if
// accounting is disabled).
func (s *Server) EnclaveStats() enclave.Stats {
	if s.encl == nil {
		return enclave.Stats{}
	}
	return s.encl.Stats()
}

// Close drains in-flight requests and stops the workers.
func (s *Server) Close() { s.inner.Close() }

// IsIntegrityError reports whether a serving error was caused by tampered
// GPU results.
func IsIntegrityError(err error) bool { return serve.IsIntegrityError(err) }
