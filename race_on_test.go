//go:build race

package darknight

// raceEnabled reports whether the race detector instruments this build;
// wall-clock speedup assertions are skipped under it.
const raceEnabled = true
