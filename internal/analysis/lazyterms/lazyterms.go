// Package lazyterms flags loops that accumulate lazy field products
// without a reachable term-budget guard.
//
// The invariant: field.LazyAXPY and field.LazyAXPY2 add products as large
// as (P-1)^2 into uint64 accumulators without reducing mod P. A uint64
// absorbs at most field.MaxLazyTerms such products before the next
// addition can wrap, which silently corrupts every value decoded from the
// accumulator — no panic, no error, just wrong ciphertext. Any loop that
// issues lazy kernels must therefore also count terms and reduce: either
// through a field.Budget (Tick1/Tick2), an explicit ReduceAcc /
// ReduceAccInto call, or an open-coded comparison against
// field.MaxLazyTerms.
//
// The analyzer looks at the innermost loop enclosing each lazy kernel
// call and reports the call when none of those guard forms appears in the
// loop body. Loops whose trip count is provably below the budget may
// suppress the finding with //lint:ignore lazyterms <why the bound holds>.
package lazyterms

import (
	"go/ast"

	"darknight/internal/analysis"
)

// Analyzer is the lazyterms checker.
var Analyzer = &analysis.Analyzer{
	Name: "lazyterms",
	Doc:  "flag loops issuing field.LazyAXPY/LazyAXPY2 without a MaxLazyTerms guard (Budget.Tick, ReduceAcc, or explicit comparison) in the same loop",
	Run:  run,
}

const fieldPkg = "internal/field"

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range analysis.FuncBodies(file) {
			checkBody(pass, fb.Body)
		}
	}
	return nil, nil
}

// loopOf returns the innermost loop in loops whose body strictly contains
// pos.
func loopOf(loops []ast.Stmt, pos ast.Node) ast.Stmt {
	var best ast.Stmt
	for _, l := range loops {
		if l.Pos() <= pos.Pos() && pos.End() <= l.End() {
			if best == nil || (best.Pos() <= l.Pos() && l.End() <= best.End()) {
				best = l
			}
		}
	}
	return best
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var loops []ast.Stmt
	var lazyCalls []*ast.CallExpr
	analysis.InspectOwn(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
		case *ast.CallExpr:
			if analysis.IsPkgFunc(pass.TypesInfo, n, fieldPkg, "LazyAXPY", "LazyAXPY2") {
				lazyCalls = append(lazyCalls, n)
			}
		}
		return true
	})
	for _, call := range lazyCalls {
		loop := loopOf(loops, call)
		if loop == nil {
			// A single un-looped lazy call cannot exceed the budget.
			continue
		}
		if !hasGuard(pass, loop) {
			pass.Reportf(call.Pos(),
				"loop accumulates lazy field products without a MaxLazyTerms guard: add a field.Budget Tick, a ReduceAcc/ReduceAccInto call, or an explicit terms == field.MaxLazyTerms check inside the loop")
		}
	}
}

// hasGuard reports whether the loop body contains any accepted guard
// form: a Budget.Tick1/Tick2 call, a ReduceAcc/ReduceAccInto call, or a
// reference to the field.MaxLazyTerms constant (the open-coded
// comparison idiom).
func hasGuard(pass *analysis.Pass, loop ast.Stmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsPkgFunc(pass.TypesInfo, n, fieldPkg, "ReduceAcc", "ReduceAccInto") ||
				analysis.IsMethod(pass.TypesInfo, n, fieldPkg, "Budget", "Tick1", "Tick2") {
				found = true
				return false
			}
		case *ast.Ident:
			if analysis.UsesConst(pass.TypesInfo, n, fieldPkg, "MaxLazyTerms") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
