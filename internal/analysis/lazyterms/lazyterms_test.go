package lazyterms_test

import (
	"testing"

	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/lazyterms"
)

func TestCorpus(t *testing.T) {
	atest.Run(t, lazyterms.Analyzer, "lazyterms", "darknightlint/corpus/lazyterms")
}

// TestBlessedCaseStillFires pins that the //lint:ignore in the corpus is
// suppressing a real finding, not papering over a check that never ran.
func TestBlessedCaseStillFires(t *testing.T) {
	atest.MustSuppress(t, lazyterms.Analyzer, "lazyterms", "darknightlint/corpus/lazyterms")
}
