// Package metricname pins the darknight_* metric namespace to one
// canonical list.
//
// Metric families are stringly-typed: a registration whose name drifts
// from what DESIGN.md documents (or what the Grafana dashboards query)
// fails no test — the series simply appears under a name nobody reads.
// The analyzer treats any function call whose first argument is a
// constant string starting with "darknight_" as a namespace use (this
// deliberately catches both direct obs.Registry registrations and local
// wrappers like resil's counter helper) and reports names that are
// malformed or absent from Canonical. The per-package result is the set
// of names seen, which the driver aggregates so Unregistered can report
// canonical families no code registers anymore — the other direction of
// the same drift.
package metricname

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"darknight/internal/analysis"
)

// Analyzer is the metricname checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "cross-check darknight_* metric family names used in code against the canonical list in internal/analysis/metricname/canonical.go",
	Run:  run,
}

// Prefix is the reserved metric namespace.
const Prefix = "darknight_"

// wellFormed is the Prometheus-compatible shape canonical names take.
var wellFormed = regexp.MustCompile(`^[a-z][a-z0-9_]*[a-z0-9]$`)

// run returns the set of namespace names seen in this package (used by
// Unregistered for the coverage direction).
func run(pass *analysis.Pass) (any, error) {
	seen := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			// Real function calls only: conversions like []byte("...") have
			// a type, not a signature, as their Fun.
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || tv.IsType() {
				return true
			}
			if _, isSig := tv.Type.Underlying().(*types.Signature); !isSig {
				return true
			}
			name, ok := analysis.ConstString(pass.TypesInfo, call.Args[0])
			if !ok || !strings.HasPrefix(name, Prefix) {
				return true
			}
			seen[name] = true
			if !wellFormed.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"malformed metric family name %q: want lowercase snake_case", name)
				return true
			}
			if !Canonical[name] {
				pass.Reportf(call.Args[0].Pos(),
					"unknown metric family %q: not in the canonical list (internal/analysis/metricname/canonical.go); fix the name or add it there",
					name)
			}
			return true
		})
	}
	return seen, nil
}

// Unregistered aggregates per-package results and returns the canonical
// families never seen in any analyzed package, sorted. The driver calls
// this after a whole-tree run; a non-empty result means canonical.go
// documents metrics the code no longer exports.
func Unregistered(perPkg []map[string]bool) []string {
	seen := make(map[string]bool)
	for _, m := range perPkg {
		for k := range m {
			seen[k] = true
		}
	}
	var missing []string
	for k := range Canonical {
		if !seen[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	return missing
}
