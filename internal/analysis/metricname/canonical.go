package metricname

// Canonical is the single source of truth for the darknight_* metric
// namespace. Every family the codebase registers (obs registry, resil
// counters, fleet gauges, the darknight facade) must appear here, and
// everything here must be registered by exactly the code that claims it.
// DESIGN.md and README.md mention metrics by these names; the package
// test cross-checks those documents against this list so prose and code
// cannot drift apart silently.
//
// Adding a metric is a two-line change: register it, list it here. The
// analyzer turns a typo'd or undocumented family into a lint failure
// instead of a dashboard that silently reads zero.
var Canonical = map[string]bool{
	// serve: request lifecycle and batching.
	"darknight_requests_completed_total":          true,
	"darknight_requests_failed_total":             true,
	"darknight_requests_integrity_failures_total": true,
	"darknight_batches_total":                     true,
	"darknight_queue_depth":                       true,
	"darknight_batch_occupancy":                   true,
	"darknight_batch_rows_total":                  true,
	"darknight_request_latency_seconds":           true,
	"darknight_request_latency_hist_seconds":      true,
	"darknight_tenant_requests_total":             true,

	// serve: TEE phase accounting and offload.
	"darknight_tee_phase_seconds_total":   true,
	"darknight_tee_phase_latency_seconds": true,
	"darknight_tee_offloads_total":        true,
	"darknight_offload_flights_total":     true,
	"darknight_fused_block_size":          true,
	"darknight_continuous_admits_total":   true,

	// serve: noise pool.
	"darknight_noisepool_hits_total":   true,
	"darknight_noisepool_misses_total": true,
	"darknight_noisepool_fallbacks":    true,

	// training facade.
	"darknight_train_phase_seconds_total": true,
	"darknight_train_offloads_total":      true,
	"darknight_train_cache_refills_total": true,

	// obs: process and SLO.
	"darknight_build_info":         true,
	"darknight_uptime_seconds":     true,
	"darknight_slo_burn_rate":      true,
	"darknight_slo_breaches_total": true,

	// fleet: device health and tenancy.
	"darknight_fleet_devices":                     true,
	"darknight_fleet_free_devices":                true,
	"darknight_fleet_device_dispatches_total":     true,
	"darknight_fleet_device_faults_total":         true,
	"darknight_fleet_device_stragglers_total":     true,
	"darknight_fleet_quarantine_events_total":     true,
	"darknight_fleet_readmissions_total":          true,
	"darknight_fleet_straggler_events_total":      true,
	"darknight_fleet_speculations_total":          true,
	"darknight_fleet_async_dispatches_total":      true,
	"darknight_fleet_peak_overlap":                true,
	"darknight_fleet_slo_breaches_total":          true,
	"darknight_fleet_flight_latency_seconds":      true,
	"darknight_fleet_tenant_grants_total":         true,
	"darknight_fleet_tenant_device_seconds_total": true,
	"darknight_fleet_tenant_queued":               true,

	// resil: adaptive resilience layer.
	"darknight_resil_deadline_total":          true,
	"darknight_resil_shed_total":              true,
	"darknight_resil_retries_total":           true,
	"darknight_resil_retry_success_total":     true,
	"darknight_resil_retries_exhausted_total": true,
	"darknight_resil_hedges_total":            true,
	"darknight_resil_hedge_wins_total":        true,
	"darknight_resil_hedge_losses_total":      true,
	"darknight_resil_hedge_mismatch_total":    true,
	"darknight_resil_brownout_shifts_total":   true,
	"darknight_resil_brownout_level":          true,
	"darknight_resil_chaos_actions_total":     true,
}
