package metricname_test

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/metricname"
)

func TestCorpus(t *testing.T) {
	atest.Run(t, metricname.Analyzer, "metricname", "darknightlint/corpus/metricname")
}

func TestBlessedCaseStillFires(t *testing.T) {
	atest.MustSuppress(t, metricname.Analyzer, "metricname", "darknightlint/corpus/metricname")
}

// TestUnregistered covers the aggregation direction.
func TestUnregistered(t *testing.T) {
	seen := []map[string]bool{
		{"darknight_requests_completed_total": true},
		{"darknight_fleet_devices": true},
	}
	missing := metricname.Unregistered(seen)
	if len(missing) != len(metricname.Canonical)-2 {
		t.Fatalf("Unregistered returned %d families, want %d", len(missing), len(metricname.Canonical)-2)
	}
	for _, name := range missing {
		if name == "darknight_requests_completed_total" || name == "darknight_fleet_devices" {
			t.Errorf("Unregistered reported a registered family: %s", name)
		}
	}
}

// TestDocsMentionOnlyCanonicalFamilies is the prose half of the
// cross-check: every darknight_* token in DESIGN.md and README.md must
// be a canonical family, so documentation cannot describe metrics the
// code does not export.
func TestDocsMentionOnlyCanonicalFamilies(t *testing.T) {
	root := filepath.Dir(filepath.Dir(filepath.Dir(mustGetwd(t))))
	//lint:ignore metricname this constant is a regexp over the namespace, not a family name
	re := regexp.MustCompile(`darknight_[a-z0-9_]*[a-z0-9]`)
	for _, doc := range []string{"DESIGN.md", "README.md"} {
		data, err := os.ReadFile(filepath.Join(root, doc))
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for _, tok := range re.FindAllString(string(data), -1) {
			if !metricname.Canonical[tok] && !prefixOfCanonical(tok) {
				t.Errorf("%s mentions %s, which is not a canonical metric family", doc, tok)
			}
		}
	}
}

// prefixOfCanonical accepts family-prefix mentions — glob prose like
// darknight_requests_* or `grep darknight_slo` pipelines — which name a
// group of canonical families rather than one.
func prefixOfCanonical(tok string) bool {
	for name := range metricname.Canonical {
		if len(name) > len(tok) && name[:len(tok)] == tok {
			return true
		}
	}
	return false
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}
