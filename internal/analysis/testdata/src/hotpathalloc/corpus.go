// Package corpus exercises hotpathalloc: allocation constructs inside
// //darknight:hotpath functions are findings; the same constructs in
// unannotated functions are not.
package corpus

import (
	"fmt"

	"darknight/internal/field"
)

// hotKernel is annotated: every allocating construct inside it fires.
//
//darknight:hotpath
func hotKernel(dst field.Vec, src field.Vec, n int) {
	buf := make([]uint64, n) // want "make"
	tmp := []int{1, 2, 3}    // want "slice literal"
	m := map[int]int{}       // want "map literal"
	p := new(int)            // want "hot path allocates: new"
	tmp = append(tmp, n)     // want "append may grow"
	fmt.Println("hot", n)    // want "fmt.Println"
	_ = fmt.Sprintf("%d", n) // want "fmt.Sprintf"
	var sink any = n         // assignment boxing is out of scope; call-boundary boxing below
	takesAny(n)              // want "boxed into interface"
	takesAny(sink)           // already an interface: clean
	_, _, _, _ = buf, m, p, sink
}

func takesAny(v any) { _ = v }

// hotClosure: closures spawned by a hot function run on the hot path too.
//
//darknight:hotpath
func hotClosure(vs []field.Vec) func() int {
	return func() int {
		grown := append(vs, nil) // want "append may grow"
		return len(grown)
	}
}

// coldTwin does exactly what hotKernel does without the annotation:
// clean, the analyzer only polices opted-in functions.
func coldTwin(n int) {
	buf := make([]uint64, n)
	tmp := []int{1, 2, 3}
	tmp = append(tmp, n)
	fmt.Println("cold", n)
	_, _ = buf, tmp
}

// hotPooled is the approved shape: pooled scratch in, no allocation.
//
//darknight:hotpath
func hotPooled(dst field.Vec, src field.Vec) {
	scratch := field.GetScratchVec(len(src))
	copy(scratch, src)
	copy(dst, scratch)
	field.PutScratchVec(scratch)
}

// hotBlessed: the result vector must escape to the caller — a deliberate,
// documented once-per-call allocation.
//
//darknight:hotpath
func hotBlessed(n int) field.Vec {
	//lint:ignore hotpathalloc result escapes to the caller; one make per call by design
	out := make(field.Vec, n)
	return out
}
