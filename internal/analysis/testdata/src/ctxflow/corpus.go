// Package corpus exercises ctxflow. The harness loads it under an import
// path ending in internal/serve so the request-path gate opens; the
// companion test loads the same files under a neutral path and expects
// silence.
package corpus

import "context"

func dial(ctx context.Context) error { return ctx.Err() }

// severed is the bug class: a deadline ctx is right there in the
// signature and the call mints a fresh one instead.
func severed(ctx context.Context) error {
	actx := context.Background() // want "severs the request deadline"
	return dial(actx)
}

// severedTODO: TODO is the same mistake with a different name.
func severedTODO(ctx context.Context, n int) error {
	if n > 0 {
		return dial(context.TODO()) // want "severs the request deadline"
	}
	return dial(ctx)
}

// severedInClosure: the closure captures the enclosing ctx, so minting a
// fresh one inside it severs the deadline just the same.
func severedInClosure(ctx context.Context) func() error {
	return func() error {
		return dial(context.Background()) // want "severs the request deadline"
	}
}

// threaded is the correct shape: derive, don't replace.
func threaded(ctx context.Context) error {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	return dial(actx)
}

// goroutineRoot has no ctx parameter: a lifecycle entry point is a
// legitimate place to mint a context. Clean.
func goroutineRoot() error {
	return dial(context.Background())
}

// rootClosure: neither the closure nor its encloser has a ctx parameter.
// Clean.
func rootClosure() func() error {
	return func() error {
		return dial(context.Background())
	}
}

// closureOwnCtx: the literal declares its own ctx parameter; Background
// inside it is flagged even though the encloser has none.
func closureOwnCtx() func(context.Context) error {
	return func(ctx context.Context) error {
		return dial(context.Background()) // want "severs the request deadline"
	}
}

// blessedDetach: a deliberately detached audit write outlives the
// request on purpose and says so.
func blessedDetach(ctx context.Context) error {
	//lint:ignore ctxflow audit write must survive request cancellation by design
	bg := context.Background()
	return dial(bg)
}
