// Package corpus exercises the leasepair analyzer's value-pair rule:
// GPU leases, fleet grants and block flights must be released or handed
// off by the function that acquires them.
package corpus

import (
	"context"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
)

// leakedLease: acquired, used, never released, never escapes.
func leakedLease(ctx context.Context, lm *gpu.LeaseManager) int {
	lease, err := lm.Acquire(ctx, 2) // want "never released"
	if err != nil {
		return 0
	}
	return lease.Size()
}

// leakedGrant: the fleet variant of the same leak.
func leakedGrant(ctx context.Context, m *fleet.Manager) error {
	g, err := m.Acquire(ctx, "tenant-a", 4) // want "never released"
	if err != nil {
		return err
	}
	_ = g.Size()
	return nil
}

// leakedTryAcquire: TryAcquire leaks the same way when the nil check is
// the only thing the caller does with the grant.
func leakedTryAcquire(m *fleet.Manager) bool {
	g, err := m.TryAcquire("tenant-b", 1) // want "never released"
	if err != nil || g == nil {
		return false
	}
	return true
}

// discardedFlight: the result thrown away outright — capacity pinned
// with no handle left to free it.
func discardedFlight(c *gpu.Cluster) {
	_, _ = c.BeginBlock(2) // want "acquired and discarded"
}

// expectFailure: discarding the value while keeping the error is the
// expect-failure idiom — the grant is nil exactly when err is non-nil,
// so there is nothing to release. Clean.
func expectFailure(ctx context.Context, m *fleet.Manager) bool {
	_, err := m.Acquire(ctx, "tenant-z", 9999)
	return err != nil
}

// deferRelease is the canonical clean shape.
func deferRelease(ctx context.Context, lm *gpu.LeaseManager) error {
	lease, err := lm.Acquire(ctx, 1)
	if err != nil {
		return err
	}
	defer lease.Release()
	return nil
}

// directRelease: releasing on the straight-line path also counts.
func directRelease(ctx context.Context, m *fleet.Manager) error {
	g, err := m.Acquire(ctx, "tenant-c", 2)
	if err != nil {
		return err
	}
	g.Release()
	return nil
}

// flightEnded: BeginBlock balanced by End.
func flightEnded(g *fleet.Grant) error {
	bf, err := g.BeginBlock(1)
	if err != nil {
		return err
	}
	defer bf.End()
	return nil
}

// returned: ownership moves to the caller; the acquiring function is off
// the hook.
func returned(ctx context.Context, m *fleet.Manager) (*fleet.Grant, error) {
	return m.Acquire(ctx, "tenant-d", 1)
}

// returnedVar: same, through a variable.
func returnedVar(ctx context.Context, lm *gpu.LeaseManager) (*gpu.Lease, error) {
	lease, err := lm.Acquire(ctx, 1)
	if err != nil {
		return nil, err
	}
	return lease, nil
}

// handedOff: passing the value to another call moves ownership too (the
// serve worker hands grants to settleFlight this way).
func handedOff(ctx context.Context, m *fleet.Manager) error {
	g, err := m.Acquire(ctx, "tenant-e", 2)
	if err != nil {
		return err
	}
	settle(g)
	return nil
}

func settle(g *fleet.Grant) {
	if g != nil {
		g.Release()
	}
}

// storedInStruct: stashing the grant in a structure is an escape — some
// other lifecycle owns it now.
type flight struct {
	grant *fleet.Grant
}

func storedInStruct(ctx context.Context, m *fleet.Manager) (*flight, error) {
	g, err := m.Acquire(ctx, "tenant-f", 1)
	if err != nil {
		return nil, err
	}
	return &flight{grant: g}, nil
}

// releasedInClosure: a deferred closure doing the release is still a
// release (the scan crosses into function literals).
func releasedInClosure(ctx context.Context, lm *gpu.LeaseManager) error {
	lease, err := lm.Acquire(ctx, 1)
	if err != nil {
		return err
	}
	defer func() {
		lease.Release()
	}()
	return nil
}

// blessedLeak: a deliberate hold — the process-lifetime pin — carries a
// suppression with its justification.
func blessedLeak(ctx context.Context, lm *gpu.LeaseManager) {
	//lint:ignore leasepair process-lifetime pin: released by Cluster.Close at shutdown
	lease, _ := lm.Acquire(ctx, 1)
	_ = lease
}
