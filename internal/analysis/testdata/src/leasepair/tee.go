package corpus

import "sync"

// engine mirrors the scheduler's TEE-token shape: a mutex field named
// tee plus the lockTEE re-acquire hook.
type engine struct {
	tee     *sync.Mutex
	onToken func()
}

func (e *engine) lockTEE() {
	e.tee.Lock()
	if e.onToken != nil {
		e.onToken()
	}
}

func (e *engine) wait() {}

// goodWindow is the dispatch-window discipline done right: called
// holding the token, opens the window to overlap the flight, re-acquires
// before returning.
func (e *engine) goodWindow() {
	e.tee.Unlock()
	e.wait()
	e.lockTEE()
}

// guardedWindow: the nil-guarded form (TEE disabled in plaintext mode)
// is the same discipline.
func (e *engine) guardedWindow() {
	if e.tee != nil {
		e.tee.Unlock()
	}
	e.wait()
	if e.tee != nil {
		e.lockTEE()
	}
}

// returnInWindow is the bug class: an early error return added inside
// the open window hands a released token back to a caller that still
// believes it holds it.
func (e *engine) returnInWindow(err error) error {
	e.tee.Unlock()
	if err != nil {
		return err // want "open TEE-token window"
	}
	e.wait()
	e.lockTEE()
	return nil
}

// neverRelocked: the window is opened and the function just ends.
func (e *engine) neverRelocked() {
	e.tee.Unlock() // want "never re-acquired"
	e.wait()
}

// owner locks first: a plain critical section, exempt from the window
// rule — the final Unlock is the balanced release, not a window.
func (e *engine) owner() {
	e.tee.Lock()
	e.wait()
	e.tee.Unlock()
}

// ownerDefer: the defer idiom is likewise exempt.
func (e *engine) ownerDefer() {
	e.tee.Lock()
	defer e.tee.Unlock()
	e.wait()
}

// blessedHandoff: a deliberate token handoff to another goroutine — the
// one legitimate reason to end released — is suppressed with its reason.
func (e *engine) blessedHandoff(done chan struct{}) {
	//lint:ignore leasepair token intentionally handed to the drain goroutine, re-locked in drainLoop
	e.tee.Unlock()
	done <- struct{}{}
}
