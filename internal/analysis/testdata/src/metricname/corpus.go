// Package corpus exercises metricname: constant darknight_* first
// arguments to any real function call are namespace uses and must match
// the canonical list.
package corpus

// register stands in for obs.Registry methods and local wrappers alike —
// the analyzer keys on the constant argument, not the callee.
func register(name, help string) { _, _ = name, help }

// registerCanonical: names from the canonical list are clean.
func registerCanonical() {
	register("darknight_requests_completed_total", "requests finished")
	register("darknight_fleet_devices", "device count")
	register("darknight_resil_shed_total", "requests shed")
}

// registerTypo is the bug class: one character off and the dashboard
// reads zero forever.
func registerTypo() {
	register("darknight_request_completed_total", "typo'd family") // want "unknown metric family"
}

// registerUnknown: a new family that skipped the canonical list.
func registerUnknown() {
	register("darknight_bogus_queue_len", "never canonicalized") // want "unknown metric family"
}

// registerMalformed: uppercase and trailing underscores are not
// Prometheus-compatible shapes.
func registerMalformed() {
	register("darknight_BadName_total", "uppercase")       // want "malformed metric family name"
	register("darknight_trailing_", "dangling underscore") // want "malformed metric family name"
}

// wrapped: the constant survives through a closure-typed wrapper, the
// resil counters idiom.
func wrapped() {
	counter := func(name string, v int) { _, _ = name, v }
	counter("darknight_resil_bogus_total", 1) // want "unknown metric family"
}

// nonConstant: runtime-built names are invisible to the analyzer (the
// wrapper body's variable arg) — no finding, by design.
func nonConstant(suffix string) {
	register("darknight_"+suffix, "dynamic")
}

// conversionNotCall: a type conversion with a matching constant is not a
// namespace use.
func conversionNotCall() []byte {
	return []byte("darknight_requests_completed_total explanatory prose")
}

// blessedExperiment: a deliberately off-list name during a rollout,
// suppressed with its reason.
func blessedExperiment() {
	//lint:ignore metricname staging-only family, promoted to canonical.go before GA
	register("darknight_experimental_decode_ns", "staging probe")
}
