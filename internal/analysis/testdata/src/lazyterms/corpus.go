// Package corpus exercises the lazyterms analyzer: loops that accumulate
// lazy field products with and without a term-budget guard.
package corpus

import (
	"darknight/internal/field"
)

// unguardedLoop is the bug class: every iteration stacks another
// ≤(P-1)² product into acc and nothing ever reduces.
func unguardedLoop(acc []uint64, coeffs []field.Elem, srcs []field.Vec) {
	for j, c := range coeffs {
		field.LazyAXPY(acc, c, srcs[j]) // want "without a MaxLazyTerms guard"
	}
}

// unguardedPair is the two-row variant of the same bug.
func unguardedPair(a0, a1 []uint64, c0, c1 []field.Elem, srcs []field.Vec) {
	for j := range srcs {
		field.LazyAXPY2(a0, a1, c0[j], c1[j], srcs[j]) // want "without a MaxLazyTerms guard"
	}
}

// unguardedNested: the guard must sit in the INNERMOST loop enclosing the
// lazy call; a reduction in the outer loop only runs once per block and
// does not bound the inner accumulation.
func unguardedNested(acc []uint64, coeffs []field.Elem, srcs []field.Vec) {
	for b := 0; b < 4; b++ {
		for j, c := range coeffs {
			field.LazyAXPY(acc, c, srcs[j]) // want "without a MaxLazyTerms guard"
		}
		field.ReduceAcc(acc)
	}
}

// budgetGuarded is the canonical idiom: a field.Budget ticked after every
// lazy call. Clean.
func budgetGuarded(acc []uint64, coeffs []field.Elem, srcs []field.Vec) {
	var terms field.Budget
	for j, c := range coeffs {
		field.LazyAXPY(acc, c, srcs[j])
		terms.Tick1(acc)
	}
}

// pairGuarded: Tick2 blesses lockstep accumulator pairs. Clean.
func pairGuarded(a0, a1 []uint64, c0, c1 []field.Elem, srcs []field.Vec) {
	var terms field.Budget
	for j := range srcs {
		field.LazyAXPY2(a0, a1, c0[j], c1[j], srcs[j])
		terms.Tick2(a0, a1)
	}
}

// openCoded: the pre-Budget spelling — an explicit counter compared
// against field.MaxLazyTerms — remains blessed so older kernels and
// vendored copies do not need rewriting to pass. Clean.
func openCoded(acc []uint64, coeffs []field.Elem, srcs []field.Vec) {
	terms := 0
	for j, c := range coeffs {
		field.LazyAXPY(acc, c, srcs[j])
		terms++
		if terms == field.MaxLazyTerms {
			field.ReduceAcc(acc)
			terms = 0
		}
	}
}

// reduceEveryIteration: reducing unconditionally inside the loop is
// wasteful but safe. Clean.
func reduceEveryIteration(dst field.Vec, acc []uint64, coeffs []field.Elem, srcs []field.Vec) {
	for j, c := range coeffs {
		field.LazyAXPY(acc, c, srcs[j])
		field.ReduceAccInto(dst, acc)
	}
}

// single: a lone lazy call outside any loop cannot exceed the budget.
// Clean.
func single(acc []uint64, c field.Elem, src field.Vec) {
	field.LazyAXPY(acc, c, src)
}

// boundedBlessed: the trip count is provably tiny, so the author takes
// responsibility with a suppression. The analyzer still fires (the
// harness checks the finding exists in suppressed form) but the tree
// stays clean.
func boundedBlessed(acc []uint64, coeffs [3]field.Elem, srcs []field.Vec) {
	for j, c := range coeffs {
		//lint:ignore lazyterms three iterations cannot reach MaxLazyTerms
		field.LazyAXPY(acc, c, srcs[j])
	}
}
