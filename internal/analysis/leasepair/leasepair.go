// Package leasepair flags acquire/release pairs that cannot balance.
//
// Two resource disciplines in the serving stack deadlock the fleet when
// broken:
//
// Value pairs — gpu.LeaseManager.Acquire, fleet.Manager.Acquire /
// TryAcquire / AcquireSlots, and gpu.Cluster.BeginBlock /
// fleet.Grant.BeginBlock hand back a value (Lease, Grant, BlockFlight)
// that pins device capacity until its Release/End method runs. The
// analyzer requires the acquired value to be released in the acquiring
// function (directly or via defer) or to escape it (returned, passed to
// another call, stored into a structure) so ownership demonstrably moves.
// A value that is neither released nor escapes is a capacity leak:
// admission stalls once the slot pool drains, with no error anywhere.
//
// The TEE token — scheduler offload windows run with the enclave token
// held; to overlap GPU flights they Unlock the token, wait, and
// re-acquire with lockTEE(). A function whose first token event is an
// Unlock was therefore CALLED holding the token, and every return
// between that Unlock and the matching re-lock hands a released token
// back to a caller that believes it still holds it — the next Unlock
// panics or, worse, two batches enter the enclave concurrently. The
// analyzer scans token events in source order and reports returns inside
// an open window. Functions whose first event is a Lock own their
// critical section (plain mutex usage) and are exempt.
//
// Neither rule is path-sensitive; the value rule in particular accepts a
// release on any path. It exists to catch the common regression — the
// Release call deleted or never written — not every exotic leak.
package leasepair

import (
	"go/ast"

	"darknight/internal/analysis"
)

// Analyzer is the leasepair checker.
var Analyzer = &analysis.Analyzer{
	Name: "leasepair",
	Doc:  "flag GPU lease / fleet grant / block flight acquisitions never released or escaped, and returns inside an open TEE-token window",
	Run:  run,
}

// acquireRule describes one acquiring method and the name of the release
// method its result must see.
type acquireRule struct {
	pkgSuffix string
	recvType  string
	methods   []string
	release   string
	what      string
}

var acquireRules = []acquireRule{
	{"internal/gpu", "LeaseManager", []string{"Acquire"}, "Release", "GPU lease"},
	{"internal/fleet", "Manager", []string{"Acquire", "TryAcquire", "AcquireSlots"}, "Release", "fleet grant"},
	{"internal/gpu", "Cluster", []string{"BeginBlock"}, "End", "block flight"},
	{"internal/fleet", "Grant", []string{"BeginBlock"}, "End", "block flight"},
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range analysis.FuncBodies(file) {
			checkAcquires(pass, fb.Body)
			checkTEEWindow(pass, fb.Body)
		}
	}
	return nil, nil
}

// allBlank reports whether every left-hand side is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// matchAcquire returns the rule for the call, or nil.
func matchAcquire(pass *analysis.Pass, call *ast.CallExpr) *acquireRule {
	for i := range acquireRules {
		r := &acquireRules[i]
		if analysis.IsMethod(pass.TypesInfo, call, r.pkgSuffix, r.recvType, r.methods...) {
			return r
		}
	}
	return nil
}

// checkAcquires enforces the value-pair rule on one function body.
func checkAcquires(pass *analysis.Pass, body *ast.BlockStmt) {
	// Acquisition sites: assignments whose RHS is a matching call. The
	// acquired value must land in a plain identifier; blank or discarded
	// results are immediate findings.
	type site struct {
		rule *acquireRule
		name *ast.Ident // nil when discarded
		call *ast.CallExpr
	}
	var sites []site
	analysis.InspectOwn(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
					if r := matchAcquire(pass, call); r != nil {
						id, _ := n.Lhs[0].(*ast.Ident)
						if id != nil && id.Name == "_" {
							id = nil
						}
						// `_, err :=` keeps the error while discarding the
						// value: the expect-failure idiom (the value is nil
						// when err is non-nil), not a leak. Only an
						// all-blank discard throws the handle away for real.
						if id == nil && !allBlank(n.Lhs) {
							break
						}
						sites = append(sites, site{r, id, call})
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if r := matchAcquire(pass, call); r != nil {
					sites = append(sites, site{r, nil, call})
				}
			}
		}
		return true
	})
	if len(sites) == 0 {
		return
	}
	for _, s := range sites {
		if s.name == nil {
			pass.Reportf(s.call.Pos(), "%s acquired and discarded: the result's %s method must run to return capacity",
				s.rule.what, s.rule.release)
			continue
		}
		obj := pass.TypesInfo.Defs[s.name]
		if obj == nil {
			// Plain `=` to an existing variable: resolve through Uses.
			obj = pass.TypesInfo.Uses[s.name]
		}
		if obj == nil {
			continue
		}
		if !releasedOrEscapes(pass, body, s.name, s.rule.release) {
			pass.Reportf(s.call.Pos(), "%s %q is never released: call %s.%s (or defer it) on every path, or hand the value off",
				s.rule.what, s.name.Name, s.name.Name, s.rule.release)
		}
	}
}

// releasedOrEscapes scans the whole function (nested literals included —
// deferred closures routinely do the releasing) for a use of the
// acquired variable that either invokes its release method or moves
// ownership elsewhere: appearing as a call argument, in a return
// statement, inside a composite literal, sent on a channel, or assigned
// to some other location.
func releasedOrEscapes(pass *analysis.Pass, body *ast.BlockStmt, def *ast.Ident, release string) bool {
	target := pass.TypesInfo.Defs[def]
	if target == nil {
		target = pass.TypesInfo.Uses[def]
	}
	isTarget := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		o := pass.TypesInfo.Uses[id]
		return o != nil && o == target
	}
	ok := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.Release() / v.End()
			if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel &&
				sel.Sel.Name == release && isTarget(sel.X) {
				ok = true
				return false
			}
			// v as an argument: ownership handed off.
			for _, arg := range n.Args {
				if isTarget(arg) {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isTarget(r) {
					ok = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, isKV := el.(*ast.KeyValueExpr); isKV {
					el = kv.Value
				}
				if isTarget(el) {
					ok = true
					return false
				}
			}
		case *ast.SendStmt:
			if isTarget(n.Value) {
				ok = true
				return false
			}
		case *ast.AssignStmt:
			// v assigned somewhere other than its own definition: stored
			// into a field, map, or another variable that now owns it.
			for i, rhs := range n.Rhs {
				if isTarget(rhs) {
					if i < len(n.Lhs) {
						// Re-binding to itself or discarding to _ moves
						// ownership nowhere.
						if id, isID := n.Lhs[i].(*ast.Ident); isID &&
							(id.Name == "_" || pass.TypesInfo.Defs[id] == target) {
							continue
						}
					}
					ok = true
					return false
				}
			}
		}
		return true
	})
	return ok
}

// --- TEE token windows ---

// teeEvent is one token transition in source order.
type teeEvent struct {
	pos    ast.Node
	unlock bool
}

// checkTEEWindow enforces the dispatch-window discipline: in a function
// whose first token event is an Unlock, no return may sit between an
// Unlock and the next re-lock, and the function must not end released.
func checkTEEWindow(pass *analysis.Pass, body *ast.BlockStmt) {
	var events []teeEvent
	var returns []*ast.ReturnStmt
	analysis.InspectOwn(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock is the balanced owner idiom, not a window.
			return false
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			if kind, isEv := teeEventKind(n); isEv {
				events = append(events, teeEvent{n, kind})
			}
		}
		return true
	})
	if len(events) == 0 || !events[0].unlock {
		// No token traffic, or the function owns its critical section
		// (Lock-first): the plain-mutex rules apply, not the window rule.
		return
	}
	// Walk events and returns merged in source order.
	released := false
	var openAt ast.Node
	ei, ri := 0, 0
	for ei < len(events) || ri < len(returns) {
		if ri >= len(returns) || (ei < len(events) && events[ei].pos.Pos() < returns[ri].Pos()) {
			if events[ei].unlock {
				released, openAt = true, events[ei].pos
			} else {
				released = false
			}
			ei++
			continue
		}
		if released {
			pass.Reportf(returns[ri].Pos(),
				"return inside an open TEE-token window: the token was Unlocked at %s and not re-acquired; the caller still believes it holds the token",
				pass.Fset.Position(openAt.Pos()))
		}
		ri++
	}
	if released {
		pass.Reportf(openAt.Pos(),
			"TEE token Unlocked here is never re-acquired before the function ends; callers of this dispatch window expect the token back")
	}
}

// teeEventKind classifies a call as a token transition: Unlock/Lock on a
// receiver chain ending in a field or variable named tee, or a call to a
// method/function named lockTEE (the engine's annotated re-acquire).
func teeEventKind(call *ast.CallExpr) (unlock, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "lockTEE" {
			return false, true
		}
		return false, false
	}
	switch sel.Sel.Name {
	case "lockTEE":
		return false, true
	case "Lock", "Unlock":
		if recvIsTEE(sel.X) {
			return sel.Sel.Name == "Unlock", true
		}
	}
	return false, false
}

// recvIsTEE reports whether the receiver expression names the TEE token:
// an identifier or terminal selector called "tee".
func recvIsTEE(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "tee"
	case *ast.SelectorExpr:
		return e.Sel.Name == "tee"
	}
	return false
}
