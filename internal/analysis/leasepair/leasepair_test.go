package leasepair_test

import (
	"testing"

	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/leasepair"
)

func TestCorpus(t *testing.T) {
	atest.Run(t, leasepair.Analyzer, "leasepair", "darknightlint/corpus/leasepair")
}

func TestBlessedCasesStillFire(t *testing.T) {
	atest.MustSuppress(t, leasepair.Analyzer, "leasepair", "darknightlint/corpus/leasepair")
}
