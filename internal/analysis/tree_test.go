package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"darknight/internal/analysis"
	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/lazyterms"
	"darknight/internal/analysis/leasepair"
	"darknight/internal/analysis/metricname"
	"darknight/internal/analysis/suite"
)

// TestTreeComesOutClean is the contract the CI lint job enforces: the
// full analyzer suite over the whole module reports zero unsuppressed
// findings, and every canonical metric family is registered somewhere.
// A new finding means either a real bug (fix it) or a deliberate
// exception (suppress it with //lint:ignore and a reason) — never a
// green build with a known violation.
func TestTreeComesOutClean(t *testing.T) {
	pkgs, err := atest.Env(t).Packages()
	if err != nil {
		t.Fatal(err)
	}
	results, err := analysis.Run(pkgs, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range analysis.Active(results) {
		t.Errorf("%s", d)
	}
	for _, name := range metricname.Unregistered(suite.MetricSets(results)) {
		t.Errorf("canonical metric family %s is never registered by any package", name)
	}
}

// TestSeededLazyRegressionIsCaught un-guards the real combine kernels —
// the exact mutation lazyterms exists to stop — and asserts the analyzer
// fires. The mutation strips every Budget tick from a copy of
// internal/field and typechecks the copy as its own package; if this
// test fails, the analyzer has gone blind and the lint gate is
// decorative.
func TestSeededLazyRegressionIsCaught(t *testing.T) {
	env := atest.Env(t)
	srcDir := filepath.Join(env.ModuleDir, "internal", "field")
	dstDir := t.TempDir()
	tickRe := regexp.MustCompile(`terms\.Tick[12]\([^)]*\)`)
	ents, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	mutations := 0
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		if m := tickRe.FindAllString(src, -1); len(m) > 0 {
			mutations += len(m)
			// Keep the Budget variable used so the mutant still
			// typechecks (analysis needs types).
			src = tickRe.ReplaceAllString(src, "_ = terms")
		}
		if err := os.WriteFile(filepath.Join(dstDir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if mutations == 0 {
		t.Fatal("seed mutation found no Budget ticks to strip from internal/field; the kernels changed shape — update this test")
	}
	// The mutant keeps an import path ending in internal/field so the
	// analyzer's package-identity suffix match treats it as the real
	// field package.
	pkg, err := env.LoadDir(dstDir, "darknightmutant/internal/field")
	if err != nil {
		t.Fatalf("typechecking the mutated field package: %v", err)
	}
	diags, err := analysis.RunFiles(pkg, []*analysis.Analyzer{lazyterms.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	active := 0
	for _, d := range diags {
		if !d.Suppressed {
			active++
		}
	}
	if active < mutations {
		t.Errorf("stripped %d Budget ticks but lazyterms reported only %d findings: the analyzer missed an un-guarded lazy loop", mutations, active)
	}
}

// TestSeededLeaseRegressionIsCaught drops the Release from a
// known-balanced corpus function and asserts leasepair notices — the
// second seeded direction (a deleted Release), run against the real
// fleet types.
func TestSeededLeaseRegressionIsCaught(t *testing.T) {
	env := atest.Env(t)
	src, err := os.ReadFile(filepath.Join(atest.CorpusDir(t, "leasepair"), "corpus.go"))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(src), "g.Release()", "_ = g", 1)
	if mutated == string(src) {
		t.Fatal("corpus shape changed: no g.Release() to drop — update this test")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "corpus.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := env.LoadDir(dir, "darknightlint/corpus/leasemutant")
	if err != nil {
		t.Fatalf("typechecking the mutated corpus: %v", err)
	}
	diags, err := analysis.RunFiles(pkg, []*analysis.Analyzer{leasepair.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	// The corpus carries expected findings already; the mutation must add
	// one more (directRelease's grant is now leaked).
	base := 4 // leakedLease, leakedGrant, leakedTryAcquire, discardedFlight
	active := 0
	for _, d := range diags {
		if !d.Suppressed {
			active++
		}
	}
	if active != base+1 {
		t.Errorf("after dropping one Release, leasepair reported %d active findings, want %d", active, base+1)
	}
}
