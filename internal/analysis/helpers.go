package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// FuncObj resolves a call expression's callee to its types.Func (package
// function or method), nil when unresolvable (builtin, conversion,
// function-typed variable).
func FuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsPkgFunc reports whether the call resolves to one of the named
// package-level functions of a package whose import path ends in
// pathSuffix (suffix matching keeps analyzers working on corpus copies
// and vendored paths alike).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pathSuffix string, names ...string) bool {
	f := FuncObj(info, call)
	if f == nil || f.Pkg() == nil || !strings.HasSuffix(f.Pkg().Path(), pathSuffix) {
		return false
	}
	if f.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// IsMethod reports whether the call resolves to a method with one of the
// given names on a named type recvType declared in a package whose path
// ends in pathSuffix.
func IsMethod(info *types.Info, call *ast.CallExpr, pathSuffix, recvType string, names ...string) bool {
	f := FuncObj(info, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != recvType || obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), pathSuffix) {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// ConstString returns the compile-time constant string value of expr, if
// it has one (literals and constant concatenations both qualify).
func ConstString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// UsesConst reports whether the identifier resolves to the named
// package-level constant of a package with the given path suffix.
func UsesConst(info *types.Info, id *ast.Ident, pathSuffix, name string) bool {
	c, ok := info.Uses[id].(*types.Const)
	return ok && c.Name() == name && c.Pkg() != nil && strings.HasSuffix(c.Pkg().Path(), pathSuffix)
}

// PathHasSuffix reports whether the package under analysis matches one of
// the import-path suffixes.
func PathHasSuffix(pkg *types.Package, suffixes ...string) bool {
	for _, s := range suffixes {
		if strings.HasSuffix(pkg.Path(), s) {
			return true
		}
	}
	return false
}

// FuncBodies yields every function body in the file — declarations and
// literals — with its doc comment (nil for literals) and a printable
// name. Literal bodies are yielded separately from their enclosing
// declaration and excluded from it, so per-function analyses do not leak
// across closure boundaries.
type FuncBody struct {
	Name string
	Doc  *ast.CommentGroup
	Node ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt
	Type *ast.FuncType
}

// FuncBodies collects the file's function bodies in source order.
func FuncBodies(file *ast.File) []FuncBody {
	var out []FuncBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncBody{Name: fd.Name.Name, Doc: fd.Doc, Node: fd, Body: fd.Body, Type: fd.Type})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				out = append(out, FuncBody{Name: fd.Name.Name + ".func", Node: fl, Body: fl.Body, Type: fl.Type})
			}
			return true
		})
	}
	return out
}

// InspectOwn walks the function body but does not descend into nested
// function literals (their bodies are analyzed as their own scopes).
func InspectOwn(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
