// Package ctxflow keeps deadline contexts threaded through the request
// path.
//
// The serving stack's latency guarantees flow through context deadlines:
// resil computes per-attempt budgets, serve and sched propagate them into
// fleet acquisition and GPU flights. Writing context.Background() (or
// TODO()) inside that chain severs the deadline — the downstream call
// waits forever while the caller's SLO clock keeps running, which is how
// a 250ms budget turns into a stuck worker.
//
// The analyzer fires only in request-path packages (serve, sched, fleet,
// resil) and only where the mistake is unambiguous: a
// context.Background()/TODO() call inside a function that has a
// context.Context parameter in scope — its own, or one captured from an
// enclosing function. Functions without a ctx parameter (goroutine
// roots, lifecycle managers) are legitimate places to mint a fresh
// context and are not flagged.
package ctxflow

import (
	"go/ast"
	"go/types"

	"darknight/internal/analysis"
)

// Analyzer is the ctxflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() in serve/sched/fleet/resil functions that already have a deadline-carrying ctx parameter in scope",
	Run:  run,
}

// requestPathPkgs are the import-path suffixes where deadlines must flow.
var requestPathPkgs = []string{
	"internal/serve", "internal/sched", "internal/fleet", "internal/resil",
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSuffix(pass.Pkg, requestPathPkgs...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, fd.Body, hasCtxParam(pass, fd.Type))
		}
	}
	return nil, nil
}

// check walks a body; ctxInScope tracks whether a context.Context
// parameter is visible here, recursing into function literals with their
// own parameter lists layered on top (a closure captures the enclosing
// ctx, so scope is inherited, never reset).
func check(pass *analysis.Pass, body *ast.BlockStmt, ctxInScope bool) {
	analysis.InspectOwn(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ctxInScope {
			if analysis.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
				pass.Reportf(call.Pos(),
					"fresh context severs the request deadline: a context.Context parameter is in scope; derive from it (context.WithTimeout/WithCancel) instead")
			}
		}
		return true
	})
	// Recurse into literals, adding their own ctx params to scope.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			check(pass, fl.Body, ctxInScope || hasCtxParam(pass, fl.Type))
			return false
		}
		return true
	})
}

// hasCtxParam reports whether the function type declares a parameter of
// type context.Context.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if named, isNamed := tv.Type.(*types.Named); isNamed {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
