package ctxflow_test

import (
	"testing"

	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/ctxflow"
)

// TestCorpus runs the corpus under a request-path import path (suffix
// internal/serve) where the analyzer is live.
func TestCorpus(t *testing.T) {
	atest.Run(t, ctxflow.Analyzer, "ctxflow", "darknightlint/corpus/ctxflow/internal/serve")
}

// TestSilentOutsideRequestPath pins the package gate: the same corpus
// under a neutral import path produces nothing.
func TestSilentOutsideRequestPath(t *testing.T) {
	atest.RunExpectNone(t, ctxflow.Analyzer, "ctxflow", "darknightlint/corpus/ctxflow")
}

func TestBlessedCaseStillFires(t *testing.T) {
	atest.MustSuppress(t, ctxflow.Analyzer, "ctxflow", "darknightlint/corpus/ctxflow/internal/serve")
}
