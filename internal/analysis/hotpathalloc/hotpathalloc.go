// Package hotpathalloc keeps annotated steady-state kernels
// allocation-free.
//
// Functions marked with a //darknight:hotpath doc-comment line are the
// per-request / per-tile kernels — Combine reductions, im2col packing,
// decode paths — where a single heap allocation per call turns into GC
// pressure that shows up directly as p99 latency. Those functions are
// written against the field scratch pools (GetScratchVec / Arena) and
// must stay that way.
//
// Inside an annotated function (nested closures included) the analyzer
// reports the allocation constructs that routinely sneak back in during
// refactors:
//
//   - map and slice composite literals, and &T{...} pointer literals
//   - make and new
//   - append (growth reallocates; pre-size through the pools instead)
//   - any call into package fmt (formatting allocates, even on the
//     non-error path)
//   - interface boxing: a concrete value passed where an interface is
//     expected, or explicitly converted to an interface type
//
// Deliberate exceptions — a cold error path, a once-per-call result
// vector that must escape to the caller — carry a //lint:ignore
// hotpathalloc comment stating why the allocation is acceptable.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"darknight/internal/analysis"
)

// Analyzer is the hotpathalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "flag allocating constructs (composite literals, make/new, append, fmt, interface boxing) in //darknight:hotpath functions",
	Run:  run,
}

// Annotation is the doc-comment marker that opts a function in.
const Annotation = "//darknight:hotpath"

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, fb := range analysis.FuncBodies(file) {
			if fb.Doc == nil || !annotated(fb.Doc) {
				continue
			}
			// Walk the whole body including closures: a closure spawned by
			// a hot function runs on the same hot path.
			checkHot(pass, fb.Body)
		}
	}
	return nil, nil
}

func annotated(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), Annotation) {
			return true
		}
	}
	return false
}

func checkHot(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := ast.Unparen(n.X).(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(), "hot path allocates: &composite literal escapes to the heap")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n)
		}
		return true
	})
}

// checkCompositeLit flags map and slice literals (backed by the heap when
// they escape, and a resize hazard even when they do not). Plain struct
// and array literals are value construction and stay.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(lit.Pos(), "hot path allocates: map literal")
	case *types.Slice:
		pass.Reportf(lit.Pos(), "hot path allocates: slice literal; take a pooled scratch vector instead")
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins: make / new / append.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "hot path allocates: make; use the field scratch pools or a pre-sized buffer")
			case "new":
				pass.Reportf(call.Pos(), "hot path allocates: new")
			case "append":
				pass.Reportf(call.Pos(), "hot path allocates: append may grow; pre-size the destination")
			}
			return
		}
	}
	f := analysis.FuncObj(info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "hot path allocates: fmt.%s formats through reflection and always allocates", f.Name())
		return
	}
	// Interface boxing at the call boundary: concrete argument, interface
	// parameter.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		// Conversion T(x): boxing when T is an interface and x is not.
		if tv, isConv := info.Types[call.Fun]; isConv && tv.IsType() && len(call.Args) == 1 {
			if boxes(info, tv.Type, call.Args[0]) {
				pass.Reportf(call.Pos(), "hot path allocates: conversion boxes a concrete value into an interface")
			}
		}
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			// f(a, b...) with the slice spread keeps the slice; only the
			// non-spread variadic form boxes element-wise.
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, pt, arg) {
			pass.Reportf(arg.Pos(), "hot path allocates: argument boxed into interface parameter %s", pt)
		}
	}
}

// boxes reports whether passing arg into a parameter of type pt converts
// a concrete value to an interface (heap-boxing it unless tiny).
func boxes(info *types.Info, pt types.Type, arg ast.Expr) bool {
	if pt == nil {
		return false
	}
	if _, isIface := pt.Underlying().(*types.Interface); !isIface {
		return false
	}
	at, ok := info.Types[arg]
	if !ok || at.Type == nil {
		return false
	}
	if at.IsNil() {
		return false
	}
	if _, already := at.Type.Underlying().(*types.Interface); already {
		return false
	}
	return true
}
