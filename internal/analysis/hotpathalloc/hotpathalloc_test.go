package hotpathalloc_test

import (
	"testing"

	"darknight/internal/analysis/atest"
	"darknight/internal/analysis/hotpathalloc"
)

func TestCorpus(t *testing.T) {
	atest.Run(t, hotpathalloc.Analyzer, "hotpathalloc", "darknightlint/corpus/hotpathalloc")
}

func TestBlessedCaseStillFires(t *testing.T) {
	atest.MustSuppress(t, hotpathalloc.Analyzer, "hotpathalloc", "darknightlint/corpus/hotpathalloc")
}
