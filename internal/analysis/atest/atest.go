// Package atest is a miniature analysistest: it runs one analyzer over a
// corpus package under internal/analysis/testdata/src and checks the
// findings against `// want "regex"` expectations written next to the
// offending lines.
//
// Corpus conventions:
//
//   - each analyzer owns a directory testdata/src/<name>/ holding one
//     compilable package (analysis is type-driven, so even the flagged
//     cases must typecheck);
//   - a line expected to produce a finding carries a trailing
//     `// want "regex"` comment (several per line allowed, matched
//     one-to-one in order against the line's findings);
//   - blessed cases are just clean lines — or deliberately flagged lines
//     carrying a //lint:ignore suppression, which the harness checks
//     produce a suppressed (not active) finding.
//
// The corpus imports real module packages (darknight/internal/field,
// gpu, fleet) so identity checks run against the true types, not stand-ins.
package atest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"darknight/internal/analysis"
	"darknight/internal/analysis/load"
)

var (
	envOnce sync.Once
	env     *load.Env
	envErr  error
)

// Env returns the shared loading environment rooted at the module
// directory (one `go list -export` for the whole test binary).
func Env(t *testing.T) *load.Env {
	t.Helper()
	envOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			envErr = err
			return
		}
		env, envErr = load.NewEnv(root)
	})
	if envErr != nil {
		t.Fatalf("atest: building load env: %v", envErr)
	}
	return env
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// CorpusDir returns the absolute path of a corpus package directory.
func CorpusDir(t *testing.T, name string) string {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(root, "internal", "analysis", "testdata", "src", name)
}

// Run loads testdata/src/<subdir> under the given import path, runs the
// analyzer, and diffs findings against the corpus's want expectations.
// The import path matters: analyzers that gate on package path (ctxflow)
// get exercised through it.
func Run(t *testing.T, a *analysis.Analyzer, subdir, importPath string) {
	t.Helper()
	pkg, err := Env(t).LoadDir(CorpusDir(t, subdir), importPath)
	if err != nil {
		t.Fatalf("atest: loading corpus %s: %v", subdir, err)
	}
	diags, err := analysis.RunFiles(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("atest: running %s: %v", a.Name, err)
	}
	check(t, pkg, diags)
}

// wantRe extracts the quoted regexes of a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type lineKey struct {
	file string
	line int
}

// check diffs diagnostics against expectations.
func check(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	// Gather expectations from the raw sources (comment maps would work
	// too, but the files are small and line-oriented reads are simpler to
	// reason about for trailing comments).
	wants := make(map[lineKey][]*regexp.Regexp)
	seen := make(map[string]bool)
	for _, f := range pkg.Files {
		fname := pkg.Fset.Position(f.Pos()).Filename
		if seen[fname] {
			continue
		}
		seen[fname] = true
		data, err := os.ReadFile(fname)
		if err != nil {
			t.Fatal(err)
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			for _, am := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(am[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fname, i+1, am[1], err)
				}
				wants[lineKey{fname, i + 1}] = append(wants[lineKey{fname, i + 1}], re)
			}
		}
	}
	// Active findings must match a want on their line; wants must all be
	// consumed; suppressed findings need no want (that is the point of
	// blessing) but may not co-exist with one.
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		ws := wants[key]
		matched := false
		for i, re := range ws {
			if re.MatchString(d.Message) {
				wants[key] = append(ws[:i], ws[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, re := range ws {
			t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, re)
		}
	}
}

// RunExpectNone loads the corpus under importPath and asserts the
// analyzer reports nothing at all, want comments notwithstanding — used
// to prove path-gated analyzers (ctxflow) stay silent outside their
// packages.
func RunExpectNone(t *testing.T, a *analysis.Analyzer, subdir, importPath string) {
	t.Helper()
	pkg, err := Env(t).LoadDir(CorpusDir(t, subdir), importPath)
	if err != nil {
		t.Fatalf("atest: loading corpus %s: %v", subdir, err)
	}
	diags, err := analysis.RunFiles(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == a.Name {
			t.Errorf("unexpected %s finding under import path %s: %s", a.Name, importPath, d)
		}
	}
}

// MustSuppress asserts that at least one SUPPRESSED finding for the
// analyzer exists in the corpus run — proving a blessed case actually
// trips the check and is silenced by its //lint:ignore, rather than
// never firing at all.
func MustSuppress(t *testing.T, a *analysis.Analyzer, subdir, importPath string) {
	t.Helper()
	pkg, err := Env(t).LoadDir(CorpusDir(t, subdir), importPath)
	if err != nil {
		t.Fatalf("atest: loading corpus %s: %v", subdir, err)
	}
	diags, err := analysis.RunFiles(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Suppressed && d.Analyzer == a.Name {
			return
		}
	}
	t.Errorf("corpus %s: expected at least one suppressed %s finding (a blessed case), found none", subdir, a.Name)
}
