package analysis

import (
	"fmt"

	"darknight/internal/analysis/load"
)

// PackageResult is the outcome of running the analyzer suite on one
// package.
type PackageResult struct {
	Pkg *load.Package
	// Results maps analyzer name to the value its Run returned (for
	// cross-package aggregation, e.g. metricname registration coverage).
	Results map[string]any
	// Diagnostics holds every finding, suppressed ones included (marked).
	Diagnostics []Diagnostic
}

// Run executes every analyzer on every package, applying //lint:ignore
// suppressions. Analyzer errors (not findings) abort the run.
func Run(pkgs []*load.Package, analyzers []*Analyzer) ([]PackageResult, error) {
	out := make([]PackageResult, 0, len(pkgs))
	for _, pkg := range pkgs {
		pr := PackageResult{Pkg: pkg, Results: make(map[string]any)}
		sup, malformed := parseSuppressions(pkg.Fset, pkg.Files)
		pr.Diagnostics = append(pr.Diagnostics, malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
			}
			pr.Results[a.Name] = res
			pr.Diagnostics = append(pr.Diagnostics, pass.diags...)
		}
		pr.Diagnostics = applySuppressions(pr.Diagnostics, sup)
		sortDiags(pr.Diagnostics)
		out = append(out, pr)
	}
	return out, nil
}

// Active filters a result set down to the findings that still demand
// action (unsuppressed).
func Active(results []PackageResult) []Diagnostic {
	var out []Diagnostic
	for _, pr := range results {
		for _, d := range pr.Diagnostics {
			if !d.Suppressed {
				out = append(out, d)
			}
		}
	}
	return out
}

// RunFiles executes the analyzers on one pre-typechecked package (the
// corpus/mutation path) and returns its findings with suppressions
// applied.
func RunFiles(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := Run([]*load.Package{pkg}, analyzers)
	if err != nil {
		return nil, err
	}
	return res[0].Diagnostics, nil
}
