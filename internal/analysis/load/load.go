// Package load typechecks Go packages for darknightlint without
// golang.org/x/tools: package metadata and compiled export data come from
// `go list -export -json`, target packages are parsed and typechecked
// from source with go/types, and every import (stdlib or intra-module)
// resolves through the build cache's export files via go/importer's gc
// lookup hook. The result is a go/packages-shaped view — Fset, syntax
// trees with comments, *types.Package, *types.Info — built entirely from
// the standard library, which is what lets the lint suite run in a
// hermetic build environment.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one typechecked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the `go list -json` fields the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// Env is a reusable loading environment for one module tree: the export
// index built by a single `go list -export -deps` invocation, shared by
// every package and corpus typecheck that follows.
type Env struct {
	ModuleDir string
	exports   map[string]string // import path -> export data file
	pkgs      []listPkg         // module (non-std) packages, dependency order
}

// NewEnv lists the module's packages under dir matching patterns
// (defaults to ./...), compiling export data for them and every
// dependency. Packages that fail to compile surface as errors here —
// analysis needs a type-correct tree.
func NewEnv(dir string, patterns ...string) (*Env, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,Standard,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	env := &Env{ModuleDir: dir, exports: make(map[string]string)}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if p.Incomplete {
			return nil, fmt.Errorf("package %s does not compile; fix the build before linting", p.ImportPath)
		}
		if p.Export != "" {
			env.exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			env.pkgs = append(env.pkgs, p)
		}
	}
	if len(env.pkgs) == 0 {
		return nil, fmt.Errorf("go list %s: no packages", strings.Join(patterns, " "))
	}
	return env, nil
}

// importerFor returns a types.Importer resolving through the export
// index, with optional extra path->file entries (the vet-mode
// PackageFile map layers on top the same way).
func (e *Env) importerFor() types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := e.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", lookup)
}

// newInfo allocates the full types.Info map set analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckFiles typechecks the given parsed files as one package with the
// environment's import resolution. Used by both the package loader and
// the analysistest/seeded-mutation harnesses (which synthesize sources).
func (e *Env) CheckFiles(importPath string, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{Importer: e.importerFor()}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// ParseDir parses every non-test .go file in dir (with comments) into
// fset. Files are parsed in sorted order for deterministic positions.
func ParseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		n := ent.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !ent.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadDir parses and typechecks one directory of sources as a package
// with the given import path — the corpus/mutation entry point; the
// directory does not need to be part of the module build graph, but its
// imports must resolve through the environment's export index.
func (e *Env) LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := ParseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, info, err := e.CheckFiles(importPath, fset, files)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", dir, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Packages typechecks every module package in the environment from
// source, in dependency order. Each package gets its own FileSet (the
// packages are independently analyzable).
func (e *Env) Packages() ([]*Package, error) {
	out := make([]*Package, 0, len(e.pkgs))
	for _, lp := range e.pkgs {
		if len(lp.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, gf := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := e.CheckFiles(lp.ImportPath, fset, files)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath, Dir: lp.Dir,
			Fset: fset, Files: files, Types: pkg, Info: info,
		})
	}
	return out, nil
}
