// Package suite wires the darknightlint analyzers into one list so the
// CLI, the vet unitchecker and the in-repo regression tests run exactly
// the same checks.
package suite

import (
	"darknight/internal/analysis"
	"darknight/internal/analysis/ctxflow"
	"darknight/internal/analysis/hotpathalloc"
	"darknight/internal/analysis/lazyterms"
	"darknight/internal/analysis/leasepair"
	"darknight/internal/analysis/metricname"
)

// All returns the full analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		hotpathalloc.Analyzer,
		lazyterms.Analyzer,
		leasepair.Analyzer,
		metricname.Analyzer,
	}
}

// ByName returns the named analyzers (comma-separated list of names),
// or All() when names is empty. Unknown names return nil.
func ByName(names []string) []*analysis.Analyzer {
	if len(names) == 0 {
		return All()
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}

// MetricSets extracts metricname's per-package seen-name sets from a run
// (for the Unregistered coverage check).
func MetricSets(results []analysis.PackageResult) []map[string]bool {
	var out []map[string]bool
	for _, pr := range results {
		if m, ok := pr.Results[metricname.Analyzer.Name].(map[string]bool); ok {
			out = append(out, m)
		}
	}
	return out
}
