// Package analysis is darknightlint's core: a deliberately small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// contract (Analyzer, Pass, Diagnostic) plus the suppression and
// formatting machinery shared by the standalone CLI, the `go vet
// -vettool` unit-checker mode and the in-repo regression tests.
//
// The repository's correctness rests on invariants the compiler cannot
// see: lazy-reduction accumulators must reduce every field.MaxLazyTerms
// products or the 25-bit prime silently overflows; GPU leases, fleet
// grants and block flights must be released on every return path or
// serving deadlocks; hot paths must stay allocation-free; deadline
// contexts must be threaded, not replaced; and the darknight_* metric
// namespace must not drift from its canonical list. Each analyzer in the
// sibling packages machine-checks one of those invariants at go-vet
// speed, so every future refactor gets them checked mechanically instead
// of by hand-written tests alone.
//
// x/tools is intentionally not imported: the build environment is
// hermetic (stdlib only), and the five analyzers need no facts, no
// cross-analyzer dependencies and no SSA — a Pass with parsed files,
// type information and a Report sink covers them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings, suppression comments
	// (`//lint:ignore <name> <reason>`) and CLI selection.
	Name string
	// Doc is the one-paragraph description shown by `darknightlint -list`.
	Doc string
	// Run executes the analyzer on one package. Findings go through
	// pass.Report*; the returned value (may be nil) is collected by the
	// driver for cross-package checks (metricname uses it).
	Run func(pass *Pass) (any, error)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks findings matched by a //lint:ignore comment; the
	// suppression reason is retained for reporting.
	Suppressed bool
	Reason     string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressKey locates one //lint:ignore comment by file and line.
type suppressKey struct {
	file string
	line int
}

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzers map[string]bool // nil means all ("*")
	reason    string
	used      bool
}

var (
	ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s+(.+)$`)
	// directiveRe gates malformedness checking: only comments that begin
	// with the directive count, so prose mentioning lint:ignore does not.
	directiveRe = regexp.MustCompile(`^//\s*lint:ignore\b`)
)

// parseSuppressions indexes every `//lint:ignore name[,name...] reason`
// comment in the files. A directive suppresses matching findings reported
// on its own line or on the line immediately below it (the conventional
// "comment above the offending statement" placement). The reason is
// mandatory: a bare //lint:ignore is itself reported by the driver.
func parseSuppressions(fset *token.FileSet, files []*ast.File) (map[suppressKey]*suppression, []Diagnostic) {
	out := make(map[suppressKey]*suppression)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !directiveRe.MatchString(text) {
					continue
				}
				pos := fset.Position(c.Pos())
				m := ignoreRe.FindStringSubmatch(text)
				if m == nil {
					malformed = append(malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed //lint:ignore directive: want `//lint:ignore analyzer[,analyzer] reason`",
					})
					continue
				}
				s := &suppression{reason: strings.TrimSpace(m[2])}
				if m[1] != "*" {
					s.analyzers = make(map[string]bool)
					for _, name := range strings.Split(m[1], ",") {
						s.analyzers[name] = true
					}
				}
				out[suppressKey{pos.Filename, pos.Line}] = s
			}
		}
	}
	return out, malformed
}

// matches reports whether the suppression covers the analyzer.
func (s *suppression) matches(analyzer string) bool {
	return s.analyzers == nil || s.analyzers[analyzer]
}

// applySuppressions marks findings covered by a directive on their own
// line or the line above.
func applySuppressions(diags []Diagnostic, sup map[suppressKey]*suppression) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if s, ok := sup[suppressKey{d.Pos.Filename, line}]; ok && s.matches(d.Analyzer) {
				d.Suppressed = true
				d.Reason = s.reason
				s.used = true
				break
			}
		}
	}
	return diags
}

// sortDiags orders findings by file, line, column, analyzer.
func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
