// Package scratch provides the size-classed sync.Pool slice recycler
// shared by the kernel packages: float64 scratch for the tensor kernels,
// field-element and uint64-accumulator scratch for the coding kernels. One
// implementation, three instantiations — a fix to the classing or the Put
// cap-check lands everywhere at once.
package scratch

import (
	"math/bits"
	"sync"
)

// maxClass bounds the pooled power-of-two size classes; larger requests
// are served with one-off allocations and dropped on Put.
const maxClass = 30

// class returns the smallest power-of-two exponent c with 1<<c >= n.
func class(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Pool recycles slices of T in power-of-two size classes. The zero value
// is ready to use; all methods are safe for concurrent use. Buffers are
// NOT zeroed on Get.
type Pool[T any] struct {
	classes [maxClass + 1]sync.Pool
}

// Get returns a length-n slice from the pool (contents undefined). Return
// it with Put when done; n <= 0 yields nil.
func (p *Pool[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := class(n)
	if c > maxClass {
		return make([]T, n)
	}
	if b, _ := p.classes[c].Get().(*[]T); b != nil {
		return (*b)[:n]
	}
	return make([]T, 1<<c)[:n]
}

// Put returns a Get buffer to the pool. Slices whose capacity is not an
// exact size class (not obtained here) are dropped.
func (p *Pool[T]) Put(s []T) {
	c := class(cap(s))
	if cap(s) == 0 || c > maxClass || cap(s) != 1<<c {
		return
	}
	full := s[:cap(s)]
	p.classes[c].Put(&full)
}
