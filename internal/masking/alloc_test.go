package masking

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
	"darknight/internal/par"
)

// TestFusedCodingMatchesRef pins the blocked lazy-reduction coding kernels
// bit-for-bit to the retained seed kernels over F_p: identical noise
// streams in, identical coded vectors, decodes and backward folds out —
// serially and with parallelism forced on.
func TestFusedCodingMatchesRef(t *testing.T) {
	// Restore the fan-out override even if a Fatalf fires mid-loop.
	defer par.SetMaxWorkers(par.SetMaxWorkers(0))
	for _, workers := range []int{1, 4} {
		par.SetMaxWorkers(workers)
		code, err := New(Params{K: 3, M: 2, Redundancy: 1}, rand.New(rand.NewSource(31)))
		if err != nil {
			t.Fatal(err)
		}
		n := 5000
		dataRng := rand.New(rand.NewSource(32))
		inputs := make([]field.Vec, code.K)
		for i := range inputs {
			inputs[i] = field.RandVec(dataRng, n)
		}

		// Same noise stream for both paths: identical seeds, identical draw
		// order (EncodeRef draws rows K..K+M-1 in order, as does Encode).
		refCoded, err := code.EncodeRef(inputs, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		coded, err := code.Encode(inputs, rand.New(rand.NewSource(33)))
		if err != nil {
			t.Fatal(err)
		}
		for j := range coded {
			if !coded[j].Equal(refCoded[j]) {
				t.Fatalf("workers=%d: coded vector %d diverges from reference", workers, j)
			}
		}

		refDec, err := code.DecodeForwardRef(coded)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := code.DecodeForward(coded)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if !dec[i].Equal(refDec[i]) {
				t.Fatalf("workers=%d: decoded vector %d diverges from reference", workers, i)
			}
			if !dec[i].Equal(inputs[i]) {
				t.Fatalf("workers=%d: decode(encode) is not the identity at %d", workers, i)
			}
		}

		refBwd, err := code.DecodeBackwardRef(coded)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := code.DecodeBackward(coded)
		if err != nil {
			t.Fatal(err)
		}
		if !bwd.Equal(refBwd) {
			t.Fatalf("workers=%d: backward fold diverges from reference", workers)
		}
	}
}

// TestSteadyStateAllocationRegression pins the allocation behaviour of the
// steady-state serving loop — noise draw, EncodeWith, DecodeForwardInto on
// caller-owned buffers — at zero allocations per iteration, at least 10x
// below the retained per-op-allocating reference kernels. Width is forced
// to 1 because the measurement target is the TEE loop's own allocations,
// not the transient goroutine spawns of the multicore fan-out.
func TestSteadyStateAllocationRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector deliberately bypasses sync.Pool, so allocation counts are meaningless under -race")
	}
	defer par.SetMaxWorkers(par.SetMaxWorkers(1))
	rng := rand.New(rand.NewSource(41))
	code, err := New(Params{K: 4, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	inputs := make([]field.Vec, code.K)
	for i := range inputs {
		inputs[i] = field.RandVec(rng, n)
	}
	noise := make([]field.Vec, code.M)
	for i := range noise {
		noise[i] = field.NewVec(n)
	}
	coded := make([]field.Vec, code.NumCoded())
	for i := range coded {
		coded[i] = field.NewVec(n)
	}
	decoded := make([]field.Vec, code.K)
	for i := range decoded {
		decoded[i] = field.NewVec(n)
	}

	steady := func() {
		for i := range noise {
			field.RandVecInto(rng, noise[i])
		}
		if err := code.EncodeWith(coded, inputs, noise); err != nil {
			t.Fatal(err)
		}
		if err := code.DecodeForwardInto(decoded, coded); err != nil {
			t.Fatal(err)
		}
	}
	steady() // warm the Code's gather scratch and the accumulator pool

	got := testing.AllocsPerRun(50, steady)
	ref := testing.AllocsPerRun(50, func() {
		c, err := code.EncodeRef(inputs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := code.DecodeForwardRef(c); err != nil {
			t.Fatal(err)
		}
	})

	t.Logf("steady-state allocs/op: %.2f (reference kernels: %.2f)", got, ref)
	if got != 0 {
		t.Fatalf("steady-state encode/decode loop allocates %.2f times per op, want 0", got)
	}
	if ref < 10 {
		t.Fatalf("reference kernels allocate only %.2f times per op; regression baseline is broken", ref)
	}
}

// TestEncodeAllocationRegression pins the convenience Encode path (the
// non-With entry that draws its own noise): only the escaping coded vectors
// and their header may allocate. The M internally drawn noise rows never
// escape, so they ride the Code's reusable scratch exactly like the gather
// scratch under EncodeWith — previously they were M fresh vector
// allocations of garbage per call.
func TestEncodeAllocationRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector inflates allocation counts")
	}
	defer par.SetMaxWorkers(par.SetMaxWorkers(1))
	rng := rand.New(rand.NewSource(43))
	code, err := New(Params{K: 3, M: 2, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := 4096
	inputs := make([]field.Vec, code.K)
	for i := range inputs {
		inputs[i] = field.RandVec(rng, n)
	}
	if _, err := code.Encode(inputs, rng); err != nil {
		t.Fatal(err) // warm the gather and noise scratch
	}
	got := testing.AllocsPerRun(50, func() {
		if _, err := code.Encode(inputs, rng); err != nil {
			t.Fatal(err)
		}
	})
	// One header slice + NumCoded escaping vectors; anything beyond that is
	// the noise-scratch regression coming back.
	limit := float64(code.NumCoded() + 1)
	t.Logf("Encode allocs/op: %.2f (escape budget %.0f)", got, limit)
	if got > limit {
		t.Fatalf("Encode allocates %.2f per call, want <= %.0f (the %d noise rows must reuse scratch)",
			got, limit, code.M)
	}
}
