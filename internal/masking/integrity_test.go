package masking

import (
	"errors"
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// corrupt flips one element of the result vector for GPU g, modelling a
// malicious or faulty accelerator (§4.4 threat).
func corrupt(results []field.Vec, g int) {
	results[g] = results[g].Clone()
	results[g][0] = field.Add(results[g][0], 1)
}

func honestResults(t *testing.T, code *Code, rng *rand.Rand, n, out int) ([]field.Vec, []field.Vec, func(field.Vec) field.Vec) {
	t.Helper()
	f := randLinearMap(rng, n, out)
	inputs := make([]field.Vec, code.K)
	for i := range inputs {
		inputs[i] = field.RandVec(rng, n)
	}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = f(coded[j])
	}
	return results, inputs, f
}

func TestVerifyForwardHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	code, err := New(Params{K: 3, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	results, _, _ := honestResults(t, code, rng, 32, 12)
	if err := code.VerifyForward(results); err != nil {
		t.Fatalf("honest results rejected: %v", err)
	}
}

func TestVerifyForwardDetectsEveryCulprit(t *testing.T) {
	// (K'-1)-security: a single corrupted result at ANY position is
	// detected.
	rng := rand.New(rand.NewSource(2))
	code, err := New(Params{K: 3, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < code.NumCoded(); g++ {
		results, _, _ := honestResults(t, code, rng, 16, 8)
		corrupt(results, g)
		if err := code.VerifyForward(results); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("corruption at GPU %d not detected: %v", g, err)
		}
	}
}

func TestVerifyForwardDetectsManyCulprits(t *testing.T) {
	// Detection must survive up to K'-1 simultaneously corrupted results.
	rng := rand.New(rand.NewSource(3))
	code, err := New(Params{K: 2, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	results, _, _ := honestResults(t, code, rng, 16, 8)
	for g := 0; g < code.NumCoded()-1; g++ {
		corrupt(results, g)
	}
	if err := code.VerifyForward(results); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("mass corruption not detected: %v", err)
	}
}

func TestVerifyForwardRequiresRedundancy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	code, err := New(Params{K: 2, M: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	results, _, _ := honestResults(t, code, rng, 8, 4)
	if err := code.VerifyForward(results); !errors.Is(err, ErrNoRedundancy) {
		t.Fatalf("err = %v, want ErrNoRedundancy", err)
	}
}

func TestAuditForwardIdentifiesSingleCulprit(t *testing.T) {
	// With E = 2 redundant equations a single culprit is attributable.
	rng := rand.New(rand.NewSource(5))
	code, err := New(Params{K: 2, M: 1, Redundancy: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < code.NumCoded(); g++ {
		results, _, _ := honestResults(t, code, rng, 12, 6)
		corrupt(results, g)
		culprits, err := code.AuditForward(results)
		if err != nil {
			t.Fatalf("audit failed for culprit %d: %v", g, err)
		}
		if len(culprits) != 1 || culprits[0] != g {
			t.Fatalf("culprits = %v, want [%d]", culprits, g)
		}
	}
}

func TestAuditForwardHonest(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	code, err := New(Params{K: 2, M: 1, Redundancy: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	results, _, _ := honestResults(t, code, rng, 12, 6)
	culprits, err := code.AuditForward(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(culprits) != 0 {
		t.Fatalf("honest run produced culprits %v", culprits)
	}
}

func TestAuditForwardE1DetectsButCannotAttribute(t *testing.T) {
	// The paper's E = 1 setup detects tampering; attribution needs more
	// redundancy ("TEE may perform additional corrective action ... outside
	// the scope").
	rng := rand.New(rand.NewSource(7))
	code, err := New(Params{K: 2, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	results, _, _ := honestResults(t, code, rng, 12, 6)
	corrupt(results, 1)
	if _, err := code.AuditForward(results); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want ErrIntegrity", err)
	}
}

func TestDecodeFullRecoversNoiseImages(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	code, err := New(Params{K: 2, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n, out = 20, 10
	f := randLinearMap(rng, n, out)
	inputs := []field.Vec{field.RandVec(rng, n), field.RandVec(rng, n)}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = f(coded[j])
	}
	cols := []int{0, 1, 2}
	full, err := code.DecodeFull(results, cols)
	if err != nil {
		t.Fatal(err)
	}
	// First K images are f(x_i); predictions reproduce every equation.
	for i := range inputs {
		if !full[i].Equal(f(inputs[i])) {
			t.Fatalf("decoded image %d wrong", i)
		}
	}
	for j := 0; j < code.NumCoded(); j++ {
		if !code.Predict(full, j).Equal(results[j]) {
			t.Fatalf("prediction for equation %d mismatches honest result", j)
		}
	}
}

func TestVerifyBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	code, err := New(Params{K: 2, M: 1, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n, d = 15, 5
	inputs := []field.Vec{field.RandVec(rng, n), field.RandVec(rng, n)}
	deltas := []field.Vec{field.RandVec(rng, d), field.RandVec(rng, d)}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	makeEqs := func(b *field.Mat, colOffset int) []field.Vec {
		eqs := make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			deltaBar := field.NewVec(d)
			for i := 0; i < code.K; i++ {
				field.AXPY(deltaBar, b.At(j, i), deltas[i])
			}
			eqs[j] = outerProduct(deltaBar, coded[colOffset+j])
		}
		return eqs
	}
	primB := field.NewMat(code.S, code.K)
	for j := 0; j < code.S; j++ {
		copy(primB.Row(j), code.B.Row(j))
	}
	primary := makeEqs(primB, 0)
	secondary := makeEqs(code.SecondaryB(), code.E)

	if err := code.VerifyBackward(primary, secondary); err != nil {
		t.Fatalf("honest backward rejected: %v", err)
	}
	// Secondary decode equals primary decode equals the true gradient.
	want := field.NewVec(d * n)
	for i := 0; i < code.K; i++ {
		field.AXPY(want, 1, outerProduct(deltas[i], inputs[i]))
	}
	got, err := code.DecodeBackwardSecondary(secondary)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("secondary backward decode != true gradient")
	}
	// Corrupt one primary equation: mismatch must be detected.
	primary[0] = primary[0].Clone()
	primary[0][3] = field.Add(primary[0][3], 5)
	if err := code.VerifyBackward(primary, secondary); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted backward not detected: %v", err)
	}
}

func TestSecondaryBNilWithoutRedundancy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	code, _ := New(Params{K: 2, M: 1}, rng)
	if code.SecondaryB() != nil {
		t.Fatal("SecondaryB should be nil for E=0")
	}
	if _, err := code.DecodeBackwardSecondary(nil); !errors.Is(err, ErrNoRedundancy) {
		t.Fatalf("err = %v", err)
	}
}
