package masking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"darknight/internal/field"
)

// TestPropertyForwardDecode is the quick-check version of the central
// invariant: for RANDOM parameter choices and random linear maps, forward
// decode is exact.
func TestPropertyForwardDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(kRaw, mRaw, eRaw uint8, nRaw uint8) bool {
		k := 1 + int(kRaw%5)
		m := 1 + int(mRaw%3)
		e := int(eRaw % 2)
		n := 4 + int(nRaw%40)
		code, err := New(Params{K: k, M: m, Redundancy: e}, rng)
		if err != nil {
			return false
		}
		lin := randLinearMap(rng, n, 1+n/2)
		inputs := make([]field.Vec, k)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			return false
		}
		results := make([]field.Vec, len(coded))
		for j := range coded {
			results[j] = lin(coded[j])
		}
		decoded, err := code.DecodeForward(results)
		if err != nil {
			return false
		}
		for i := range inputs {
			if !decoded[i].Equal(lin(inputs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBackwardDecode quick-checks the Eq 4–6 invariant across
// random shapes and coding parameters.
func TestPropertyBackwardDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	f := func(kRaw, mRaw uint8, nRaw, dRaw uint8) bool {
		k := 1 + int(kRaw%4)
		m := 1 + int(mRaw%3)
		n := 2 + int(nRaw%20)
		d := 2 + int(dRaw%8)
		code, err := New(Params{K: k, M: m}, rng)
		if err != nil {
			return false
		}
		inputs := make([]field.Vec, k)
		deltas := make([]field.Vec, k)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
			deltas[i] = field.RandVec(rng, d)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			return false
		}
		eqs := make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			bar := field.NewVec(d)
			for i := 0; i < k; i++ {
				field.AXPY(bar, code.B.At(j, i), deltas[i])
			}
			eqs[j] = outerProduct(bar, coded[j])
		}
		got, err := code.DecodeBackward(eqs)
		if err != nil {
			return false
		}
		want := field.NewVec(d * n)
		for i := 0; i < k; i++ {
			field.AXPY(want, 1, outerProduct(deltas[i], inputs[i]))
		}
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyIntegrityDetection quick-checks (K'-1)-security: corrupt a
// random non-empty subset of results; VerifyForward must always object.
func TestPropertyIntegrityDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func(kRaw uint8, maskRaw uint16) bool {
		k := 1 + int(kRaw%4)
		code, err := New(Params{K: k, M: 1, Redundancy: 1}, rng)
		if err != nil {
			return false
		}
		lin := randLinearMap(rng, 10, 6)
		inputs := make([]field.Vec, k)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, 10)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			return false
		}
		results := make([]field.Vec, len(coded))
		for j := range coded {
			results[j] = lin(coded[j])
		}
		// Corrupt a non-empty proper subset chosen by the mask (keep at
		// least one honest GPU so detection is in-contract: K'-1 secure).
		total := code.NumCoded()
		mask := int(maskRaw) % (1<<total - 1)
		if mask == 0 {
			mask = 1
		}
		for g := 0; g < total; g++ {
			if mask&(1<<g) != 0 {
				corrupt(results, g)
			}
		}
		return code.VerifyForward(results) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncodingIsLinear confirms Encode is a linear map of the
// inputs given fixed coefficients and noise: encoding x+y equals encoding
// x plus encoding y minus encoding 0 (which isolates the shared noise).
func TestPropertyEncodingIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	code, err := New(Params{K: 2, M: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	// Encode with FIXED noise by seeding identical rngs.
	enc := func(inputs []field.Vec) []field.Vec {
		out, err := code.Encode(inputs, rand.New(rand.NewSource(55)))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	x := []field.Vec{field.RandVec(rng, n), field.RandVec(rng, n)}
	y := []field.Vec{field.RandVec(rng, n), field.RandVec(rng, n)}
	sum := []field.Vec{field.AddVec(x[0], y[0]), field.AddVec(x[1], y[1])}
	zero := []field.Vec{field.NewVec(n), field.NewVec(n)}

	ex, ey, esum, ezero := enc(x), enc(y), enc(sum), enc(zero)
	for j := range esum {
		want := field.SubVec(field.AddVec(ex[j], ey[j]), ezero[j])
		if !esum[j].Equal(want) {
			t.Fatalf("coded vector %d: encode is not affine-linear", j)
		}
	}
}
