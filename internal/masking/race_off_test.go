//go:build !race

package masking

const raceEnabled = false
