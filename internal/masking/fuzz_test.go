package masking

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// FuzzDecodeForwardSubset pins the MDS decode identity under fuzzed
// parameters and presence masks: for any K/M/E the code accepts and any
// subset of at least S present responses, the subset decode must equal
// the full-response decode bit-for-bit. The honest results come from the
// linear map f(x) = 3·x, as in the deterministic subset tests — any
// linear map exercises the identity, and scaling keeps iterations cheap.
func FuzzDecodeForwardSubset(f *testing.F) {
	f.Add(int64(1), 2, 1, 1, 16, uint32(0b1110))
	f.Add(int64(2), 3, 2, 2, 9, uint32(0b0111110))
	f.Add(int64(3), 1, 1, 0, 1, uint32(0b11))
	f.Add(int64(4), 4, 1, 3, 33, uint32(0xff))
	f.Fuzz(func(t *testing.T, seed int64, k, m, e, n int, mask uint32) {
		// Clamp into the supported parameter box; tiny codes cover the
		// interesting subset combinatorics.
		k = clamp(k, 1, 5)
		m = clamp(m, 1, 3)
		e = clamp(e, 0, k+m) // E > S is rejected by Params.Validate
		n = clamp(n, 1, 64)
		rng := rand.New(rand.NewSource(seed))
		code, err := New(Params{K: k, M: m, Redundancy: e}, rng)
		if err != nil {
			t.Fatalf("New(K=%d M=%d E=%d): %v", k, m, e, err)
		}
		inputs := make([]field.Vec, k)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]field.Vec, len(coded))
		for j := range coded {
			results[j] = field.ScaleVec(3, coded[j])
		}
		full, err := code.DecodeForward(results)
		if err != nil {
			t.Fatal(err)
		}
		// Build a presence mask from the fuzz bits, then force validity by
		// turning columns on (low to high) until S are present.
		present := make([]bool, code.NumCoded())
		count := 0
		for j := range present {
			if mask&(1<<uint(j)) != 0 {
				present[j] = true
				count++
			}
		}
		for j := 0; count < code.S; j++ {
			if !present[j] {
				present[j] = true
				count++
			}
		}
		dst := make([]field.Vec, k)
		for i := range dst {
			dst[i] = make(field.Vec, n)
		}
		if err := code.DecodeForwardSubsetInto(dst, results, present); err != nil {
			t.Fatalf("subset decode (present=%v): %v", present, err)
		}
		for i := range dst {
			for x := range dst[i] {
				if dst[i][x] != full[i][x] {
					t.Fatalf("subset decode diverges from full decode at [%d][%d]: %d != %d (present=%v)",
						i, x, dst[i][x], full[i][x], present)
				}
			}
		}
	})
}

// TestValidateRejectsExcessRedundancy pins the E <= S bound the fuzzer
// flushed out: E = 3 with S = 2 used to panic inside New's secondary
// B-row merge (negative row index) because equations in [S, E) belong to
// neither decode window.
func TestValidateRejectsExcessRedundancy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := New(Params{K: 1, M: 1, Redundancy: 3}, rng); err == nil {
		t.Fatal("New accepted E=3 with S=2; the dual-window backward decode cannot cover it")
	}
	if _, err := New(Params{K: 1, M: 1, Redundancy: 2}, rng); err != nil {
		t.Fatalf("New rejected E=2 with S=2 (E=S is the boundary and must work): %v", err)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
