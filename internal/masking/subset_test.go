package masking

import (
	"errors"
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// subsetFixture encodes a random batch and computes the honest per-column
// results under the linear map f(x) = 3·x (any linear map exercises the
// decode identity; scaling keeps the fixture cheap).
func subsetFixture(t *testing.T, p Params, n int, seed int64) (*Code, []field.Vec, []field.Vec) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	code, err := New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]field.Vec, p.K)
	for i := range inputs {
		inputs[i] = field.RandVec(rng, n)
	}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = field.ScaleVec(3, coded[j])
	}
	return code, inputs, results
}

func TestSubsetDecodeBitForBitMatchesFullDecode(t *testing.T) {
	// The MDS property, pinned: decoding from ANY S present responses must
	// reproduce the full-response decode exactly — same field elements, not
	// approximately. This is what licenses the straggler path to return
	// before the slowest device.
	p := Params{K: 3, M: 1, Redundancy: 2}
	code, _, results := subsetFixture(t, p, 64, 11)
	total := code.NumCoded()

	want, err := code.DecodeForward(results)
	if err != nil {
		t.Fatal(err)
	}

	// Every mask leaving at least S present (drop each single column, and
	// each pair where slack allows).
	masks := [][]bool{}
	for drop := 0; drop < total; drop++ {
		m := make([]bool, total)
		for j := range m {
			m[j] = j != drop
		}
		masks = append(masks, m)
	}
	for d1 := 0; d1 < total; d1++ {
		for d2 := d1 + 1; d2 < total; d2++ {
			m := make([]bool, total)
			for j := range m {
				m[j] = j != d1 && j != d2
			}
			masks = append(masks, m)
		}
	}
	for _, mask := range masks {
		dst := make([]field.Vec, code.K)
		for i := range dst {
			dst[i] = field.NewVec(len(results[0]))
		}
		if err := code.DecodeForwardSubsetInto(dst, results, mask); err != nil {
			t.Fatalf("mask %v: %v", mask, err)
		}
		for i := range dst {
			if !dst[i].Equal(want[i]) {
				t.Fatalf("mask %v: decoded input %d differs from full decode", mask, i)
			}
		}
	}
}

func TestSubsetDecodeVerifiesPresentEquations(t *testing.T) {
	// With one column absent (the straggler) and one present column
	// tampered, the redundant present equation must expose the corruption.
	p := Params{K: 2, M: 1, Redundancy: 2}
	code, _, results := subsetFixture(t, p, 32, 12)
	total := code.NumCoded()

	mask := make([]bool, total)
	for j := range mask {
		mask[j] = j != total-1 // last column straggles
	}
	tampered := make([]field.Vec, total)
	for j := range tampered {
		tampered[j] = results[j].Clone()
	}
	tampered[1][0] = field.Add(tampered[1][0], 1)

	dst := make([]field.Vec, code.K)
	for i := range dst {
		dst[i] = field.NewVec(len(results[0]))
	}
	err := code.DecodeForwardSubsetInto(dst, tampered, mask)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered present column not caught: err = %v", err)
	}
}

func TestAuditForwardSubsetAttributesCulprit(t *testing.T) {
	// E=3 with one straggler absent leaves two present redundant checks —
	// enough to attribute one tampered present column.
	p := Params{K: 2, M: 1, Redundancy: 3}
	code, _, results := subsetFixture(t, p, 32, 14)
	total := code.NumCoded()

	mask := make([]bool, total)
	for j := range mask {
		mask[j] = j != total-1 // straggler
	}
	const bad = 2
	tampered := make([]field.Vec, total)
	for j := range tampered {
		tampered[j] = results[j].Clone()
	}
	tampered[bad][0] = field.Add(tampered[bad][0], 1)

	culprits, err := code.AuditForwardSubset(tampered, mask)
	if err != nil {
		t.Fatal(err)
	}
	if len(culprits) != 1 || culprits[0] != bad {
		t.Fatalf("culprits = %v, want [%d]", culprits, bad)
	}

	// With only one present check (two stragglers), the same corruption is
	// detectable but not attributable.
	mask[total-2] = false
	if _, err := code.AuditForwardSubset(tampered, mask); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want unattributable ErrIntegrity", err)
	}
}

func TestSubsetDecodeRejectsTooFewResponses(t *testing.T) {
	p := Params{K: 2, M: 1, Redundancy: 1}
	code, _, results := subsetFixture(t, p, 16, 13)
	mask := make([]bool, code.NumCoded())
	mask[0], mask[1] = true, true // S = 3 needed
	dst := make([]field.Vec, code.K)
	for i := range dst {
		dst[i] = field.NewVec(len(results[0]))
	}
	if err := code.DecodeForwardSubsetInto(dst, results, mask); !errors.Is(err, ErrSubsetTooSmall) {
		t.Fatalf("err = %v, want ErrSubsetTooSmall", err)
	}
}
