package masking

import (
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"darknight/internal/field"
)

// This file implements the offline half of the offline/online split the
// paper sketches for the TEE's coding work: the M uniform noise rows mixed
// into every encode (Eq 1 / Eq 10) do not depend on the data, so they can be
// drawn entirely off the critical path. A NoisePool is a seeded background
// generator that pre-draws per-layer noise sets into a bounded ring; the
// online encode then consumes precomputed material with zero RNG work —
// pure memory traffic — and falls back to inline draws (counted as misses)
// only when the ring runs dry.

// NoiseSet is one pre-drawn bundle of noise material: the M uniform rows of
// a single offloaded layer, all of that layer's input length. The rows are
// reusable ring buffers — the consumer must hand the set back with Recycle
// once EncodeWith has consumed it, after which the refiller overwrites the
// rows with fresh uniform draws.
type NoiseSet struct {
	// Rows are the M noise vectors, ready to pass to EncodeWith.
	Rows []field.Vec
	n    int // row length (the layer's input length)
}

// Len returns the row length of the set.
func (s *NoiseSet) Len() int { return s.n }

// NoisePoolStats counts the pool's online behaviour.
type NoisePoolStats struct {
	// Hits is how many Get calls were served from precomputed material.
	Hits int64
	// Misses is how many Get calls found the ring empty (or out of phase)
	// and left the caller to draw inline.
	Misses int64
	// Refills is how many sets the background generator has drawn.
	Refills int64
}

// HitRate returns Hits / (Hits + Misses), or 0 before the first Get.
func (s NoisePoolStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// NoisePool pre-draws noise sets for a fixed cycle of layer lengths — the
// input lengths of a model's offloaded layers, in offload order — into a
// bounded ring. One background goroutine owns the RNG and draws sets
// strictly in cycle order, so with a single in-order consumer the k-th Get
// returns exactly the k-th drawn set: pooled runs are as reproducible as
// inline ones. Get and Recycle are safe for concurrent use by multiple
// consumers (pipeline lanes sharing one pool); the draw order then depends
// on scheduling, which is fine — decode exactness makes the outputs
// independent of the noise values.
type NoisePool struct {
	m       int
	lengths []int

	mu     sync.Mutex
	cond   *sync.Cond // signals the refiller that a spare slot appeared
	ready  []*NoiseSet
	spare  []*NoiseSet
	closed bool

	rng *rand.Rand // refiller-owned; never touched by consumers

	hits    atomic.Int64
	misses  atomic.Int64
	refills atomic.Int64

	// warnOnce fires the undersized-pool warning on the first miss only:
	// steady-state misses mean the ring cannot keep up with its consumers
	// and every affected encode silently pays an inline RNG pass.
	warnOnce sync.Once

	wg sync.WaitGroup
}

// noisePoolWarn is the warning sink, a variable so tests can intercept it.
var noisePoolWarn = log.Printf

// NewNoisePool starts a background generator pre-drawing sets of m uniform
// rows for the given cycle of row lengths (one entry per offloaded layer,
// in offload order). sets bounds the ring: at most that many sets exist,
// pre-drawn or in flight; <= 0 picks two full cycles. All randomness comes
// from a private RNG seeded with seed. Close must be called to stop the
// generator.
func NewNoisePool(seed int64, m int, lengths []int, sets int) *NoisePool {
	if m < 1 || len(lengths) == 0 {
		return nil
	}
	if sets <= 0 {
		sets = 2 * len(lengths)
	}
	p := &NoisePool{
		m:       m,
		lengths: append([]int(nil), lengths...),
		rng:     rand.New(rand.NewSource(seed)),
	}
	p.cond = sync.NewCond(&p.mu)
	// Pre-size every slot for its position in the cycle so the steady state
	// never reallocates rows: slot j always carries length lengths[j % L].
	p.spare = make([]*NoiseSet, 0, sets)
	for j := 0; j < sets; j++ {
		n := p.lengths[j%len(p.lengths)]
		rows := make([]field.Vec, m)
		for r := range rows {
			rows[r] = field.NewVec(n)
		}
		p.spare = append(p.spare, &NoiseSet{Rows: rows, n: n})
	}
	p.wg.Add(1)
	go p.refill()
	return p
}

// refill is the background generator: it takes a spare set, overwrites its
// rows with fresh uniform draws for the next length in the cycle, and
// appends it to the ready ring, blocking while no spare is available.
func (p *NoisePool) refill() {
	defer p.wg.Done()
	for i := 0; ; i++ {
		n := p.lengths[i%len(p.lengths)]
		p.mu.Lock()
		for len(p.spare) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		set := p.spare[0]
		p.spare = p.spare[1:]
		p.mu.Unlock()

		// Draw outside the lock — this is the offline work the pool exists
		// to hide. The set is owned exclusively by the refiller here.
		if set.n != n {
			// Out-of-phase recycle (a consumer missed mid-cycle): resize.
			for r := range set.Rows {
				if cap(set.Rows[r]) < n {
					set.Rows[r] = field.NewVec(n)
				}
				set.Rows[r] = set.Rows[r][:n]
			}
			set.n = n
		}
		for r := range set.Rows {
			field.RandVecInto(p.rng, set.Rows[r])
		}
		p.refills.Add(1)

		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.ready = append(p.ready, set)
		p.mu.Unlock()
	}
}

// Get returns a pre-drawn noise set of row length n, or nil when none is
// ready (the caller then draws inline; the miss is counted). A returned set
// is exclusively owned by the caller until it hands it back with Recycle.
// Get never blocks — exhaustion degrades to the online path, it does not
// stall the encode.
func (p *NoisePool) Get(n int) *NoiseSet {
	p.mu.Lock()
	// First match wins: a single in-order consumer always matches the head
	// (preserving the deterministic stream), while pipeline lanes whose
	// layer cycles interleave out of phase still find their length further
	// down the ring instead of missing.
	for i, set := range p.ready {
		if set.n == n {
			p.ready = append(p.ready[:i], p.ready[i+1:]...)
			p.mu.Unlock()
			p.hits.Add(1)
			return set
		}
	}
	p.mu.Unlock()
	p.misses.Add(1)
	p.warnOnce.Do(func() {
		noisePoolWarn("masking: noise pool miss (row length %d): generator behind its consumers — "+
			"encode falls back to inline draws; persistent misses mean the pool is undersized (raise sets)", n)
	})
	return nil
}

// Recycle hands a consumed set back to the pool for the refiller to
// overwrite. Call it as soon as EncodeWith returns — the rows must no
// longer be referenced.
func (p *NoisePool) Recycle(set *NoiseSet) {
	if set == nil {
		return
	}
	p.mu.Lock()
	if !p.closed {
		p.spare = append(p.spare, set)
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// Stats returns the pool's hit/miss/refill counters.
func (p *NoisePool) Stats() NoisePoolStats {
	return NoisePoolStats{
		Hits:    p.hits.Load(),
		Misses:  p.misses.Load(),
		Refills: p.refills.Load(),
	}
}

// Close stops the background generator and waits for it to exit. Get calls
// after Close miss; Recycle becomes a no-op. Safe to call more than once.
func (p *NoisePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	p.ready = nil
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
