package masking

import (
	"errors"
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// backwardFixture builds an honest dual-window backward equation set: the S
// primary equations (published B, coded inputs [0,S)) and the S secondary
// equations (SecondaryB, coded inputs [E,S+E)), plus the true gradient.
func backwardFixture(t *testing.T, seed int64, p Params) (code *Code, prim, sec []field.Vec, want field.Vec) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	code, err := New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	const n, d = 13, 4
	inputs := make([]field.Vec, p.K)
	deltas := make([]field.Vec, p.K)
	for i := range inputs {
		inputs[i] = field.RandVec(rng, n)
		deltas[i] = field.RandVec(rng, d)
	}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	makeEqs := func(b *field.Mat, colOffset int) []field.Vec {
		eqs := make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			deltaBar := field.NewVec(d)
			for i := 0; i < code.K; i++ {
				field.AXPY(deltaBar, b.At(j, i), deltas[i])
			}
			eqs[j] = outerProduct(deltaBar, coded[colOffset+j])
		}
		return eqs
	}
	prim = makeEqs(code.B.SubMatrix(0, code.S, 0, code.K), 0)
	if p.Redundancy > 0 {
		sec = makeEqs(code.SecondaryB(), code.E)
	}
	want = field.NewVec(d * n)
	for i := 0; i < code.K; i++ {
		field.AXPY(want, 1, outerProduct(deltas[i], inputs[i]))
	}
	return code, prim, sec, want
}

func allPresent(n int) []bool {
	p := make([]bool, n)
	for i := range p {
		p[i] = true
	}
	return p
}

// TestDecodeBackwardSubsetMatchesFull pins the straggler-tolerant backward
// decode bit-for-bit against the full primary decode, on both windows:
// with stragglers among the primary-exclusive slots the secondary window
// must reproduce DecodeBackward's output exactly (field arithmetic is
// exact, so the redundant decoding is not an approximation).
func TestDecodeBackwardSubsetMatchesFull(t *testing.T) {
	for _, p := range []Params{
		{K: 2, M: 1, Redundancy: 1},
		{K: 3, M: 1, Redundancy: 2},
		{K: 2, M: 2, Redundancy: 2},
	} {
		code, prim, sec, want := backwardFixture(t, 21+int64(p.K+p.Redundancy), p)
		full, err := code.DecodeBackward(prim)
		if err != nil {
			t.Fatal(err)
		}
		if !full.Equal(want) {
			t.Fatal("primary decode != true gradient")
		}

		// Primary window complete: identical to the full decode.
		dst := field.NewVec(len(full))
		if err := code.DecodeBackwardSubsetInto(dst, prim, sec, allPresent(code.S), allPresent(code.S)); err != nil {
			t.Fatal(err)
		}
		if !dst.Equal(full) {
			t.Fatal("subset decode (primary window) != full decode")
		}

		// A primary-exclusive straggler: the secondary window takes over and
		// must be bit-for-bit the full decode.
		primPresent := allPresent(code.S)
		primPresent[0] = false
		dst2 := field.NewVec(len(full))
		if err := code.DecodeBackwardSubsetInto(dst2, prim, sec, primPresent, allPresent(code.S)); err != nil {
			t.Fatal(err)
		}
		if !dst2.Equal(full) {
			t.Fatal("subset decode (secondary window) != full decode (must be bit-for-bit)")
		}

		// One straggler in each window: no complete decode remains.
		secPresent := allPresent(code.S)
		secPresent[code.S-1] = false
		if err := code.DecodeBackwardSubsetInto(dst2, prim, sec, primPresent, secPresent); !errors.Is(err, ErrBackwardSubset) {
			t.Fatalf("expected ErrBackwardSubset, got %v", err)
		}
	}
}

// TestDecodeBackwardSubsetVerifies checks that when both windows complete,
// the spare decoding is spent as verification: a corrupted secondary
// equation is detected, and a corrupted primary equation disagrees with the
// clean secondary window.
func TestDecodeBackwardSubsetVerifies(t *testing.T) {
	code, prim, sec, _ := backwardFixture(t, 31, Params{K: 2, M: 1, Redundancy: 1})
	dst := field.NewVec(len(prim[0]))

	corrupted := append([]field.Vec(nil), sec...)
	corrupted[1] = sec[1].Clone()
	corrupted[1][2] = field.Add(corrupted[1][2], 7)
	if err := code.DecodeBackwardSubsetInto(dst, prim, corrupted, allPresent(code.S), allPresent(code.S)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted secondary window not detected: %v", err)
	}

	badPrim := append([]field.Vec(nil), prim...)
	badPrim[0] = prim[0].Clone()
	badPrim[0][0] = field.Add(badPrim[0][0], 1)
	if err := code.DecodeBackwardSubsetInto(dst, badPrim, sec, allPresent(code.S), allPresent(code.S)); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted primary window not detected: %v", err)
	}

	// With the secondary window missing, the same corruption decodes
	// unverified — the straggler trade the caller opted into.
	secPresent := allPresent(code.S)
	secPresent[0] = false
	if err := code.DecodeBackwardSubsetInto(dst, badPrim, sec, allPresent(code.S), secPresent); err != nil {
		t.Fatalf("primary-only decode should not verify: %v", err)
	}
}

// TestDecodeBackwardSubsetNoRedundancy covers the E = 0 degenerate form.
func TestDecodeBackwardSubsetNoRedundancy(t *testing.T) {
	code, prim, _, want := backwardFixture(t, 41, Params{K: 2, M: 1})
	dst := field.NewVec(len(want))
	if err := code.DecodeBackwardSubsetInto(dst, prim, nil, allPresent(code.S), nil); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(want) {
		t.Fatal("E=0 subset decode != true gradient")
	}
	primPresent := allPresent(code.S)
	primPresent[1] = false
	if err := code.DecodeBackwardSubsetInto(dst, prim, nil, primPresent, nil); !errors.Is(err, ErrBackwardSubset) {
		t.Fatalf("E=0 with a straggler must fail: %v", err)
	}
}
