package masking

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
)

func TestCoalitionSafety(t *testing.T) {
	// Invariant 3: every coalition of size <= M has a full-rank noise
	// block and leaks nothing; size M+1 coalitions leak.
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Params{
		{K: 2, M: 1}, {K: 4, M: 1}, {K: 3, M: 2}, {K: 2, M: 3},
		{K: 4, M: 2, Redundancy: 1},
	} {
		code, err := New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got := code.MaxSafeCoalition(); got != p.M {
			t.Fatalf("%+v: MaxSafeCoalition = %d, want M = %d", p, got, p.M)
		}
	}
}

func TestSingleViewIsSafe(t *testing.T) {
	// "each GPU receives at most one encoded data" — a single view must
	// never leak even for M = 1.
	rng := rand.New(rand.NewSource(2))
	code, err := New(Params{K: 6, M: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < code.NumCoded(); g++ {
		v, err := code.View([]int{g})
		if err != nil {
			t.Fatal(err)
		}
		if v.Leaks() {
			t.Fatalf("single view of GPU %d leaks", g)
		}
		if v.NoiseRank() != 1 {
			t.Fatalf("GPU %d noise rank %d, want 1", g, v.NoiseRank())
		}
	}
}

func TestViewErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	code, _ := New(Params{K: 2, M: 1}, rng)
	if _, err := code.View([]int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := code.View([]int{99}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := code.View([]int{0, 0}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

func TestCodedOutputUniformity(t *testing.T) {
	// Lemma 1 consequence: a coded coordinate is (input + uniform) and so
	// itself uniform over F_p. Encode a FIXED input many times with fresh
	// noise and bucket-test the distribution of one coded coordinate.
	rng := rand.New(rand.NewSource(4))
	const trials = 40000
	const buckets = 8
	counts := make([]int, buckets)
	input := field.Vec{12345} // constant, adversarially simple input
	for i := 0; i < trials; i++ {
		code, err := New(Params{K: 1, M: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		coded, err := code.Encode([]field.Vec{input}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[int(uint64(coded[0][0])*buckets/uint64(field.P))]++
	}
	want := float64(trials) / buckets
	for b, c := range counts {
		dev := float64(c) - want
		if dev < 0 {
			dev = -dev
		}
		if dev > want*0.06 {
			t.Fatalf("bucket %d count %d deviates >6%% from %v — coded data not uniform", b, c, want)
		}
	}
}

func TestColludersCannotReconstruct(t *testing.T) {
	// Concrete attack simulation: M colluders pool their coded vectors and
	// try Gaussian elimination over the noise coefficients. For |I| <= M
	// no combination cancels the noise, so the attack yields nothing; for
	// |I| = M+1 it does (which is why the paper sizes K' >= K+M+1).
	rng := rand.New(rand.NewSource(5))
	p := Params{K: 2, M: 2}
	code, err := New(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	safe, _ := code.View([]int{0, 1})
	if safe.Leaks() {
		t.Fatal("M-sized coalition should be safe")
	}
	unsafe, _ := code.View([]int{0, 1, 2})
	if !unsafe.Leaks() {
		t.Fatal("(M+1)-sized coalition should leak")
	}
}

func TestNoiseBlockFullRankAllSubsets(t *testing.T) {
	// §5: "Since A2 is full-rank, any subset of its columns are also full
	// rank" — verify on the constructed code for all M-subsets.
	rng := rand.New(rand.NewSource(6))
	code, err := New(Params{K: 3, M: 2, Redundancy: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	n := code.NumCoded()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			v, err := code.View([]int{a, b})
			if err != nil {
				t.Fatal(err)
			}
			if v.NoiseRank() != 2 {
				t.Fatalf("noise block of coalition {%d,%d} has rank %d", a, b, v.NoiseRank())
			}
		}
	}
}
