// Package masking implements DarKnight's matrix-masking code (paper §4),
// the primary contribution of the MICRO'21 paper. A virtual batch of K
// private inputs is linearly combined with M uniform noise vectors over
// F_p to produce S = K+M coded inputs (plus E redundant ones for integrity),
// each of which is safe to hand to an untrusted GPU:
//
//	X̄ = [x₁ … x_K, r₁ … r_M] · A,   A ∈ F_p^{S×(S+E)}
//
// Because the heavy DNN operators are bilinear, results computed on coded
// inputs decode exactly:
//
//   - forward  (Eq 1–2):  Ȳ = f(X̄) = f(X_full)·A  ⇒  Y = Ȳ·A⁻¹
//   - backward (Eq 4–6):  Σⱼ γⱼ·g(Σᵢ βⱼᵢ δᵢ, x̄ⱼ) = Σᵢ g(δᵢ, xᵢ)
//     whenever A·Γ·B = [I_K; 0] (the Eq 5/13 condition, written without
//     transposes for our column-code layout)
//
// The package is deliberately agnostic about what the linear map f and the
// bilinear map g are — matmul, convolution, anything bilinear works. The
// scheduler (internal/sched) wires these to real DNN layers.
package masking

import (
	"errors"
	"fmt"
	"math/rand"

	"darknight/internal/field"
)

// Params configures a code instance.
type Params struct {
	// K is the virtual batch size: the number of private inputs combined
	// into each coded input. The paper uses 2–6 depending on SGX memory.
	K int
	// M is the collusion tolerance: the number of independent uniform
	// noise vectors mixed in. Privacy holds against any coalition of up
	// to M GPUs (§4.5). M must be >= 1; M = 1 is the paper's base scheme.
	M int
	// Redundancy E adds E extra coded inputs for integrity verification
	// (§4.4). E = 0 disables verification; E = 1 is the paper's scheme
	// ("one additional linear combination of inputs").
	Redundancy int
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("masking: K = %d, need at least one input", p.K)
	}
	if p.M < 1 {
		return fmt.Errorf("masking: M = %d, privacy requires at least one noise vector", p.M)
	}
	if p.Redundancy < 0 {
		return fmt.Errorf("masking: negative redundancy %d", p.Redundancy)
	}
	// The backward pass decodes through two S-column windows: the primary
	// [0, S) and the secondary [E, S+E). With E > S the equations in
	// [S, E) fall in neither window and have no backward row at all (the
	// B merge in New would index bsec negatively). The paper's scheme is
	// E = 1; anything up to S works, beyond it cannot.
	if p.Redundancy > p.K+p.M {
		return fmt.Errorf("masking: redundancy %d exceeds S = K+M = %d; the dual-window backward decode supports at most E = S",
			p.Redundancy, p.K+p.M)
	}
	return nil
}

// GPUs returns the number of workers the code occupies: S + E = K + M + E.
// This is the paper's K' >= K + M + 1 sizing rule when E = 1.
func (p Params) GPUs() int { return p.K + p.M + p.Redundancy }

// Code is one instantiated masking code: the secret coefficients for a
// single virtual batch. The TEE must keep A, Γ (and the cached inverses)
// inside the enclave; B is safe to publish to GPUs (§4.2: "we do not need
// to protect matrix B in the enclave").
type Code struct {
	K, M, E int
	S       int // K + M

	// A is the S×(S+E) encoding matrix. Column j holds the mixing
	// coefficients of coded input j. Every S-column subset we decode
	// from is invertible by construction.
	A *field.Mat
	// primaryInv is the inverse of A's first S columns, the default
	// decode path.
	primaryInv *field.Mat
	// secondaryInv is the inverse of A's *last* S columns; only present
	// when E >= 1. It provides the second, redundant decoding used for
	// integrity verification.
	secondaryInv *field.Mat

	// Gamma holds the S+E secret decode scalars γ_j for the backward
	// pass; entries beyond the primary subset belong to the secondary
	// decoding.
	Gamma field.Vec
	// B is the (S+E)×K public scaling matrix handed to GPUs: GPU j
	// combines the gradients as Σᵢ B[j,i]·δᵢ before its bilinear op.
	B *field.Mat
	// gammaSec / bSec are the γ and B for the secondary (redundant)
	// decoding, defined over the last S coded inputs.
	gammaSec field.Vec
	bSec     *field.Mat

	// srcs and col are scratch for the fused coding kernels: the source
	// gather and the coefficient-column gather of one matrix-product row.
	// They are reused across Encode/Decode calls — a Code belongs to one
	// TEE execution context and is not safe for concurrent use.
	srcs []field.Vec
	col  field.Vec
	// col2 is the second coefficient-column gather of a row pair: the fused
	// kernels emit two output rows per source pass (field.Combine2).
	col2 field.Vec
	// noiseScratch holds Encode's M internally drawn noise rows. The rows
	// never escape (only the coded combinations do), so like srcs/col they
	// are drawn into reusable scratch rather than allocated per call.
	noiseScratch []field.Vec
}

// gatherScratch returns the (lazily grown) reusable scratch slices sized
// for k coefficient/source entries.
func (c *Code) gatherScratch(k int) ([]field.Vec, field.Vec) {
	if cap(c.srcs) < k {
		c.srcs = make([]field.Vec, k)
		c.col = make(field.Vec, k)
		c.col2 = make(field.Vec, k)
	}
	return c.srcs[:k], c.col[:k]
}

// ErrWrongCount is returned when a decode is offered the wrong number of
// GPU results for the code.
var ErrWrongCount = errors.New("masking: wrong number of coded results")

// ErrShapeMismatch is returned when inputs of differing lengths are encoded
// together; a virtual batch must be shape-uniform.
var ErrShapeMismatch = errors.New("masking: inputs in a virtual batch must have equal length")

// New draws a fresh code for one virtual batch. DarKnight regenerates the
// coefficients for every virtual batch (§4.1); the cost is O(S³) on S ≈ 3–7
// scalar matrices, negligible next to the DNN linear algebra.
func New(p Params, rng *rand.Rand) (*Code, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.K + p.M
	c := &Code{K: p.K, M: p.M, E: p.Redundancy, S: s}

	// Draw the primary S×S block invertible, then append E extra columns
	// such that the trailing S-column window is invertible too.
	for {
		primary, pinv := field.RandInvertible(rng, s)
		ext := field.RandMat(rng, s, p.Redundancy)
		full := field.NewMat(s, s+p.Redundancy)
		for r := 0; r < s; r++ {
			copy(full.Row(r)[:s], primary.Row(r))
			copy(full.Row(r)[s:], ext.Row(r))
		}
		c.A = full
		c.primaryInv = pinv
		if p.Redundancy == 0 {
			break
		}
		sec := full.SubMatrix(0, s, p.Redundancy, s+p.Redundancy)
		sinv, err := sec.Inverse()
		if err != nil {
			continue // astronomically rare; redraw
		}
		c.secondaryInv = sinv
		break
	}
	// The §5 collusion argument needs every M-column subset of the noise
	// block A2 to be full rank. A uniform draw satisfies this with
	// probability ≈ 1 - O(S²/p), but we verify constructively and redraw
	// on the (astronomically rare) failure so the guarantee is absolute.
	if anyLeakOfSize(c, p.M, 0, nil) {
		return New(p, rng)
	}

	// Backward coefficients for the primary subset: A_p·Γ·B = [I_K; 0].
	gamma, b := backwardCoeffs(c.A.SubMatrix(0, s, 0, s), c.primaryInv, p.K, rng)
	c.Gamma = gamma
	c.B = field.NewMat(s+p.Redundancy, p.K)
	for j := 0; j < s; j++ {
		copy(c.B.Row(j), b.Row(j))
	}
	if p.Redundancy > 0 {
		gsec, bsec := backwardCoeffs(c.A.SubMatrix(0, s, p.Redundancy, s+p.Redundancy), c.secondaryInv, p.K, rng)
		c.gammaSec = gsec
		c.bSec = bsec
		// Equations [E, S+E) belong to both decodings; the published B
		// must agree with the primary values there, so the secondary
		// pass recomputes its own B rows only for the tail equations it
		// exclusively owns. To keep both decodings valid with a single
		// published B we instead keep bSec separate and expose it via
		// SecondaryB (the TEE hands each GPU the β row for the decoding
		// it serves).
		for j := s; j < s+p.Redundancy; j++ {
			copy(c.B.Row(j), bsec.Row(j-p.Redundancy))
		}
	}
	return c, nil
}

// backwardCoeffs draws a random invertible diagonal Γ and computes
// B = Γ⁻¹·A⁻¹·P with P = [I_K; 0] ∈ F^{S×K}, so that A·Γ·B = P exactly
// (the Eq 5/13 condition).
func backwardCoeffs(a, ainv *field.Mat, k int, rng *rand.Rand) (field.Vec, *field.Mat) {
	s := a.Rows
	gamma := make(field.Vec, s)
	ginv := make(field.Vec, s)
	for i := range gamma {
		g := field.RandNonZero(rng)
		gamma[i] = g
		ginv[i] = field.MustInv(g)
	}
	// P = [I_K; 0] — take the first K columns of A⁻¹, scale rows by Γ⁻¹.
	b := field.NewMat(s, k)
	for r := 0; r < s; r++ {
		for c := 0; c < k; c++ {
			b.Set(r, c, field.Mul(ginv[r], ainv.At(r, c)))
		}
	}
	return gamma, b
}

// NumCoded returns S+E, the number of coded inputs (and thus GPUs) used.
func (c *Code) NumCoded() int { return c.S + c.E }

// SecondaryB returns the β matrix of the redundant backward decoding (rows
// indexed over coded inputs [E, S+E)), or nil when redundancy is disabled.
func (c *Code) SecondaryB() *field.Mat {
	if c.E == 0 {
		return nil
	}
	return c.bSec.Clone()
}

// checkBatch validates a virtual batch of K same-length inputs and returns
// their common length.
func (c *Code) checkBatch(inputs []field.Vec) (int, error) {
	if len(inputs) != c.K {
		return 0, fmt.Errorf("%w: got %d inputs, code has K=%d", ErrWrongCount, len(inputs), c.K)
	}
	n := len(inputs[0])
	for _, in := range inputs {
		if len(in) != n {
			return 0, ErrShapeMismatch
		}
	}
	return n, nil
}

// Encode produces the S+E coded vectors for a virtual batch of K inputs,
// drawing the M noise vectors internally from rng (Eq 1 / Eq 10).
// All inputs must share a length. Steady-state callers that want the
// allocation-free path draw the noise themselves and use EncodeWith.
func (c *Code) Encode(inputs []field.Vec, rng *rand.Rand) ([]field.Vec, error) {
	n, err := c.checkBatch(inputs)
	if err != nil {
		return nil, err
	}
	if cap(c.noiseScratch) < c.M {
		c.noiseScratch = make([]field.Vec, c.M)
	}
	noise := c.noiseScratch[:c.M]
	for m := range noise {
		if cap(noise[m]) < n {
			noise[m] = field.NewVec(n)
		}
		noise[m] = field.RandVecInto(rng, noise[m][:n])
	}
	coded := make([]field.Vec, c.NumCoded())
	for j := range coded {
		coded[j] = field.NewVec(n)
	}
	if err := c.EncodeWith(coded, inputs, noise); err != nil {
		return nil, err
	}
	return coded, nil
}

// EncodeWith combines the K inputs and M caller-drawn uniform noise rows
// into the S+E caller-owned destination vectors (Eq 1 / Eq 10), each of
// which is overwritten. Splitting the noise draw from the combination keeps
// the combination a pure blocked matrix-matrix product over F_p (parallel,
// lazy-reduced, allocation-free) and keeps all RNG use on the single
// caller goroutine. noise rows must be uniform draws (field.RandVecInto) —
// the privacy proof (Lemma 1) depends on it.
func (c *Code) EncodeWith(dst, inputs, noise []field.Vec) error {
	n, err := c.checkBatch(inputs)
	if err != nil {
		return err
	}
	if len(noise) != c.M {
		return fmt.Errorf("%w: got %d noise rows, code has M=%d", ErrWrongCount, len(noise), c.M)
	}
	for _, r := range noise {
		if len(r) != n {
			return ErrShapeMismatch
		}
	}
	if len(dst) != c.NumCoded() {
		return fmt.Errorf("%w: got %d destinations, code emits %d", ErrWrongCount, len(dst), c.NumCoded())
	}
	for _, d := range dst {
		if len(d) != n {
			return ErrShapeMismatch
		}
	}
	srcs, col := c.gatherScratch(c.S)
	col2 := c.col2[:c.S]
	copy(srcs, inputs)
	copy(srcs[c.K:], noise)
	// Coded column j is one row of the product [X; R]ᵀ·A: gather A's
	// column and fuse all S scale-adds with lazy reduction. Rows go out in
	// pairs — Combine2 streams the shared sources once for both — with a
	// single-row tail when S+E is odd.
	j := 0
	for ; j+1 < len(dst); j += 2 {
		for m := 0; m < c.S; m++ {
			col[m] = c.A.At(m, j)
			col2[m] = c.A.At(m, j+1)
		}
		field.Combine2(dst[j], dst[j+1], col, col2, srcs)
	}
	if j < len(dst) {
		for m := 0; m < c.S; m++ {
			col[m] = c.A.At(m, j)
		}
		field.Combine(dst[j], col, srcs)
	}
	return nil
}

// DecodeForward inverts the linear GPU results back to the per-input
// results (Eq 2): given ȳ_j = f(x̄_j) for the *first S* coded inputs, it
// returns f(x₁) … f(x_K), discarding the noise images f(r) ("that value is
// just dropped"). results may carry all S+E entries; extras are ignored.
func (c *Code) DecodeForward(results []field.Vec) ([]field.Vec, error) {
	return c.decodeWith(results, c.primaryInv, 0)
}

// DecodeForwardInto is DecodeForward writing into K caller-owned vectors,
// each of which is overwritten — the allocation-free serving path.
func (c *Code) DecodeForwardInto(dst []field.Vec, results []field.Vec) error {
	return c.decodeWithInto(dst, results, c.primaryInv, 0)
}

// decodeWith decodes using the inverse of the S-column window starting at
// column offset.
func (c *Code) decodeWith(results []field.Vec, inv *field.Mat, offset int) ([]field.Vec, error) {
	if len(results) < offset+c.S {
		return nil, fmt.Errorf("%w: got %d results, need %d", ErrWrongCount, len(results), offset+c.S)
	}
	n := len(results[offset])
	out := make([]field.Vec, c.K)
	for i := range out {
		out[i] = field.NewVec(n)
	}
	if err := c.decodeWithInto(out, results, inv, offset); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeWithInto decodes into caller-owned vectors using the inverse of the
// S-column window starting at column offset.
func (c *Code) decodeWithInto(dst []field.Vec, results []field.Vec, inv *field.Mat, offset int) error {
	if len(results) < offset+c.S {
		return fmt.Errorf("%w: got %d results, need %d", ErrWrongCount, len(results), offset+c.S)
	}
	if len(dst) != c.K {
		return fmt.Errorf("%w: got %d destinations, decode yields K=%d", ErrWrongCount, len(dst), c.K)
	}
	n := len(results[offset])
	for _, d := range dst {
		if len(d) != n {
			return ErrShapeMismatch
		}
	}
	window := results[offset : offset+c.S]
	for _, r := range window {
		if len(r) != n {
			return ErrShapeMismatch
		}
	}
	_, col := c.gatherScratch(c.S)
	col2 := c.col2[:c.S]
	// y_i = Σ_j inv[j, i] · ȳ_{offset+j}: gather inv's column i, one fused
	// lazy-reduced product row per decoded input, decoding input pairs in a
	// single pass over the shared result window (Combine2).
	i := 0
	for ; i+1 < len(dst); i += 2 {
		for j := 0; j < c.S; j++ {
			col[j] = inv.At(j, i)
			col2[j] = inv.At(j, i+1)
		}
		field.Combine2(dst[i], dst[i+1], col, col2, window)
	}
	if i < len(dst) {
		for j := 0; j < c.S; j++ {
			col[j] = inv.At(j, i)
		}
		field.Combine(dst[i], col, window)
	}
	return nil
}

// DecodeBackward folds the S GPU gradient equations into the exact batch
// gradient Σᵢ g(δᵢ, xᵢ) (Eq 6). eqs[j] must be the bilinear result the
// j-th GPU computed on (Σᵢ B[j,i]·δᵢ, x̄ⱼ) for the primary coded inputs.
// The 1/K batch averaging happens in float space after unquantization.
func (c *Code) DecodeBackward(eqs []field.Vec) (field.Vec, error) {
	if len(eqs) < c.S {
		return nil, fmt.Errorf("%w: got %d equations, need %d", ErrWrongCount, len(eqs), c.S)
	}
	out := field.NewVec(len(eqs[0]))
	if err := c.DecodeBackwardInto(out, eqs); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeBackwardInto is DecodeBackward writing into a caller-owned vector,
// which is overwritten.
func (c *Code) DecodeBackwardInto(dst field.Vec, eqs []field.Vec) error {
	if len(eqs) < c.S {
		return fmt.Errorf("%w: got %d equations, need %d", ErrWrongCount, len(eqs), c.S)
	}
	for _, e := range eqs[:c.S] {
		if len(e) != len(dst) {
			return ErrShapeMismatch
		}
	}
	field.Combine(dst, c.Gamma[:c.S], eqs[:c.S])
	return nil
}
