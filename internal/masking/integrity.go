package masking

import (
	"errors"
	"fmt"

	"darknight/internal/field"
)

// ErrNoRedundancy is returned when integrity operations are requested on a
// code built with Redundancy = 0.
var ErrNoRedundancy = errors.New("masking: code has no redundant equations for integrity checks")

// ErrIntegrity is returned when GPU results fail verification.
var ErrIntegrity = errors.New("masking: integrity violation detected in GPU results")

// subsetInverse returns the inverse of the S×S submatrix of A formed by the
// given column indices, or an error if that subset is singular.
func (c *Code) subsetInverse(cols []int) (*field.Mat, error) {
	if len(cols) != c.S {
		return nil, fmt.Errorf("masking: decode subset needs %d columns, got %d", c.S, len(cols))
	}
	sub := field.NewMat(c.S, c.S)
	for r := 0; r < c.S; r++ {
		for i, col := range cols {
			sub.Set(r, i, c.A.At(r, col))
		}
	}
	return sub.Inverse()
}

// DecodeFull decodes all S underlying images — f(x₁)…f(x_K) followed by
// f(r₁)…f(r_M) — from the coded results at the given column subset. The
// noise images are normally dropped, but integrity auditing uses them to
// re-predict every equation.
func (c *Code) DecodeFull(results []field.Vec, cols []int) ([]field.Vec, error) {
	inv, err := c.subsetInverse(cols)
	if err != nil {
		return nil, err
	}
	for _, col := range cols {
		if col < 0 || col >= len(results) {
			return nil, fmt.Errorf("%w: column %d outside %d results", ErrWrongCount, col, len(results))
		}
	}
	n := len(results[cols[0]])
	srcs := make([]field.Vec, c.S)
	for j, col := range cols {
		srcs[j] = results[col]
	}
	coeff := make(field.Vec, c.S)
	out := make([]field.Vec, c.S)
	for i := 0; i < c.S; i++ {
		y := field.NewVec(n)
		for j := 0; j < c.S; j++ {
			coeff[j] = inv.At(j, i)
		}
		field.Combine(y, coeff, srcs)
		out[i] = y
	}
	return out, nil
}

// Predict recomputes what an honest GPU j must have returned, given the
// full decoded images: ȳ_j = Σ_m A[m,j]·f_m. Linearity makes this exact.
func (c *Code) Predict(full []field.Vec, j int) field.Vec {
	out := field.NewVec(len(full[0]))
	coeff := make(field.Vec, c.S)
	for m := 0; m < c.S; m++ {
		coeff[m] = c.A.At(m, j)
	}
	field.Combine(out, coeff, full[:c.S])
	return out
}

// VerifyForward checks the forward-pass results for tampering by decoding
// twice — once from the primary column window, once from the redundant one
// (§4.4: "computing it redundantly at least twice using at least two sets
// of equations") — and comparing. It returns nil if the decodings agree,
// ErrIntegrity otherwise. Requires Redundancy >= 1.
func (c *Code) VerifyForward(results []field.Vec) error {
	if c.E == 0 {
		return ErrNoRedundancy
	}
	if len(results) < c.NumCoded() {
		return fmt.Errorf("%w: got %d results, need %d", ErrWrongCount, len(results), c.NumCoded())
	}
	prim, err := c.decodeWith(results, c.primaryInv, 0)
	if err != nil {
		return err
	}
	sec, err := c.decodeWith(results, c.secondaryInv, c.E)
	if err != nil {
		return err
	}
	for i := range prim {
		if !prim[i].Equal(sec[i]) {
			return fmt.Errorf("%w: input %d decodes inconsistently", ErrIntegrity, i)
		}
	}
	return nil
}

// AuditForward attempts to identify which GPUs returned corrupted results.
// It searches size-S decode subsets for one whose decoded images re-predict
// all remaining equations except at most E; the mismatching equations are
// the culprits. Identification of t simultaneous culprits needs E > t
// (t+1 redundant equations); with the paper's E = 1, corruption is
// detectable (VerifyForward) but not attributable, and AuditForward returns
// ErrIntegrity without culprits.
//
// On success it returns the (possibly empty) sorted list of faulty GPU
// indices.
func (c *Code) AuditForward(results []field.Vec) ([]int, error) {
	if len(results) < c.NumCoded() {
		return nil, fmt.Errorf("%w: got %d results, need %d", ErrWrongCount, len(results), c.NumCoded())
	}
	all := make([]bool, c.NumCoded())
	for j := range all {
		all[j] = true
	}
	return c.AuditForwardSubset(results, all)
}

// AuditForwardSubset is AuditForward restricted to the present coded
// responses — the straggler-path audit. Only present columns are searched
// as decode subsets and only present columns are cross-checked, so the
// effective redundancy is checks = (present count) - S: attributing t
// simultaneous culprits needs checks > t.
func (c *Code) AuditForwardSubset(results []field.Vec, present []bool) ([]int, error) {
	if c.E == 0 {
		return nil, ErrNoRedundancy
	}
	if len(results) < c.NumCoded() || len(present) != len(results) {
		return nil, fmt.Errorf("%w: got %d results / %d mask entries, code has %d columns",
			ErrWrongCount, len(results), len(present), c.NumCoded())
	}
	var cols []int
	for j := 0; j < c.NumCoded(); j++ {
		if present[j] {
			cols = append(cols, j)
		}
	}
	if len(cols) < c.S {
		return nil, fmt.Errorf("%w: %d responses present, need %d", ErrSubsetTooSmall, len(cols), c.S)
	}
	checks := len(cols) - c.S
	best := []int(nil)
	bestCount := len(cols) + 1
	found := false
	subset := make([]int, c.S)
	try := func(chosen []int) {
		full, err := c.DecodeFull(results, chosen)
		if err != nil {
			return // singular subset; skip
		}
		inSubset := make(map[int]bool, len(chosen))
		for _, col := range chosen {
			inSubset[col] = true
		}
		var mismatches []int
		for _, j := range cols {
			if inSubset[j] {
				continue
			}
			if !c.Predict(full, j).Equal(results[j]) {
				mismatches = append(mismatches, j)
			}
		}
		if len(mismatches) < bestCount {
			bestCount = len(mismatches)
			best = mismatches
			found = true
		}
	}
	var search func(start, depth int)
	search = func(start, depth int) {
		if bestCount == 0 {
			return // perfect subset already found
		}
		if depth == c.S {
			try(subset)
			return
		}
		for i := start; i <= len(cols)-(c.S-depth); i++ {
			subset[depth] = cols[i]
			search(i+1, depth+1)
		}
	}
	search(0, 0)
	if !found {
		return nil, fmt.Errorf("%w: no invertible decode subset", ErrIntegrity)
	}
	// A consistent subset explains all but `bestCount` present equations.
	// Those are attributable culprits only if enough redundancy remains to
	// have cross-checked them.
	if bestCount > checks-1 && bestCount > 0 {
		return nil, fmt.Errorf("%w: corruption detected but not attributable with %d present checks", ErrIntegrity, checks)
	}
	return best, nil
}

// DecodeBackwardSecondary folds the redundant backward equations (computed
// by the GPUs serving coded inputs [E, S+E) with the SecondaryB
// coefficients) into the batch gradient. Comparing it with DecodeBackward's
// output verifies the backward pass.
func (c *Code) DecodeBackwardSecondary(eqs []field.Vec) (field.Vec, error) {
	if c.E == 0 {
		return nil, ErrNoRedundancy
	}
	if len(eqs) < c.S {
		return nil, fmt.Errorf("%w: got %d secondary equations, need %d", ErrWrongCount, len(eqs), c.S)
	}
	for _, e := range eqs[:c.S] {
		if len(e) != len(eqs[0]) {
			return nil, ErrShapeMismatch
		}
	}
	out := field.NewVec(len(eqs[0]))
	field.Combine(out, c.gammaSec[:c.S], eqs[:c.S])
	return out, nil
}

// VerifyBackward compares the primary and secondary backward decodings.
func (c *Code) VerifyBackward(primaryEqs, secondaryEqs []field.Vec) error {
	p, err := c.DecodeBackward(primaryEqs)
	if err != nil {
		return err
	}
	s, err := c.DecodeBackwardSecondary(secondaryEqs)
	if err != nil {
		return err
	}
	if !p.Equal(s) {
		return fmt.Errorf("%w: backward gradient decodes inconsistently", ErrIntegrity)
	}
	return nil
}
