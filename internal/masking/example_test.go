package masking_test

import (
	"fmt"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/masking"
)

// Example walks the paper's core loop once: encode two private inputs with
// one noise vector, apply a linear map per coded input ("on the GPUs"),
// decode exactly.
func Example() {
	rng := rand.New(rand.NewSource(1))
	code, err := masking.New(masking.Params{K: 2, M: 1}, rng)
	if err != nil {
		panic(err)
	}

	// Two private "images" and a public linear operator W.
	x1 := field.Vec{10, 20, 30}
	x2 := field.Vec{7, 7, 7}
	w := field.RandMat(rng, 2, 3)
	apply := func(x field.Vec) field.Vec { return field.MatVec(w, x) }

	coded, err := code.Encode([]field.Vec{x1, x2}, rng)
	if err != nil {
		panic(err)
	}
	// Each of the K+M coded vectors goes to ONE untrusted GPU.
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = apply(coded[j])
	}
	decoded, err := code.DecodeForward(results)
	if err != nil {
		panic(err)
	}
	fmt.Println("exact:", decoded[0].Equal(apply(x1)) && decoded[1].Equal(apply(x2)))
	// Output: exact: true
}

// ExampleCode_VerifyForward shows integrity detection with one redundant
// equation (§4.4).
func ExampleCode_VerifyForward() {
	rng := rand.New(rand.NewSource(2))
	code, err := masking.New(masking.Params{K: 2, M: 1, Redundancy: 1}, rng)
	if err != nil {
		panic(err)
	}
	w := field.RandMat(rng, 2, 3)
	apply := func(x field.Vec) field.Vec { return field.MatVec(w, x) }
	coded, err := code.Encode([]field.Vec{{1, 2, 3}, {4, 5, 6}}, rng)
	if err != nil {
		panic(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = apply(coded[j])
	}
	fmt.Println("honest ok:", code.VerifyForward(results) == nil)

	results[1][0] = field.Add(results[1][0], 1) // a GPU tampers one value
	fmt.Println("tamper detected:", code.VerifyForward(results) != nil)
	// Output:
	// honest ok: true
	// tamper detected: true
}
