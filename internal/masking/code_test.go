package masking

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// randLinearMap returns a random linear map f: F^n -> F^out implemented as
// a matrix, standing in for "one DNN layer's linear operator" (W·x, conv).
func randLinearMap(rng *rand.Rand, n, out int) func(field.Vec) field.Vec {
	w := field.RandMat(rng, out, n)
	return func(x field.Vec) field.Vec { return field.MatVec(w, x) }
}

// randBilinearMap returns a random bilinear map g: F^d × F^n -> F^{d·n}
// (the outer product scaled by a random matrix pattern — here the plain
// outer product, which is the ∇W = δ·xᵀ shape of dense layers).
func outerProduct(d, x field.Vec) field.Vec {
	out := make(field.Vec, len(d)*len(x))
	for i, di := range d {
		for j, xj := range x {
			out[i*len(x)+j] = field.Mul(di, xj)
		}
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{{K: 0, M: 1}, {K: 2, M: 0}, {K: 2, M: 1, Redundancy: -1}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Params %+v should be invalid", p)
		}
	}
	good := Params{K: 4, M: 1, Redundancy: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Params %+v should be valid: %v", good, err)
	}
	if good.GPUs() != 6 {
		t.Errorf("GPUs() = %d, want K+M+E = 6", good.GPUs())
	}
}

func TestForwardDecodeExact(t *testing.T) {
	// Invariant 1 (DESIGN.md): decoding GPU results on coded inputs
	// reproduces f(x_i) exactly in F_p, for a range of K and M.
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Params{
		{K: 1, M: 1}, {K: 2, M: 1}, {K: 4, M: 1}, {K: 6, M: 1},
		{K: 2, M: 2}, {K: 3, M: 3}, {K: 4, M: 2, Redundancy: 1},
	} {
		code, err := New(p, rng)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		const n, outDim = 50, 20
		f := randLinearMap(rng, n, outDim)
		inputs := make([]field.Vec, p.K)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(coded) != p.GPUs() {
			t.Fatalf("%+v: %d coded inputs, want %d", p, len(coded), p.GPUs())
		}
		// Each (honest) GPU applies the linear map to its coded input.
		results := make([]field.Vec, len(coded))
		for j, cx := range coded {
			results[j] = f(cx)
		}
		decoded, err := code.DecodeForward(results)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inputs {
			if !decoded[i].Equal(f(inputs[i])) {
				t.Fatalf("%+v: input %d decoded incorrectly", p, i)
			}
		}
	}
}

func TestBackwardDecodeExact(t *testing.T) {
	// Invariant 2: Σ γ_j·g(Σ_i β_ji δ_i, x̄_j) == Σ_i g(δ_i, x_i) exactly,
	// including the collusion-tolerant variant (Eq 11/13).
	rng := rand.New(rand.NewSource(2))
	for _, p := range []Params{
		{K: 2, M: 1}, {K: 4, M: 1}, {K: 3, M: 2}, {K: 4, M: 3},
	} {
		code, err := New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		const n, d = 30, 8
		inputs := make([]field.Vec, p.K)
		deltas := make([]field.Vec, p.K)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
			deltas[i] = field.RandVec(rng, d)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			t.Fatal(err)
		}
		// GPU j computes Eq_j = g(δ̄_j, x̄_j) with δ̄_j = Σ_i B[j,i]·δ_i.
		eqs := make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			deltaBar := field.NewVec(d)
			for i := 0; i < p.K; i++ {
				field.AXPY(deltaBar, code.B.At(j, i), deltas[i])
			}
			eqs[j] = outerProduct(deltaBar, coded[j])
		}
		got, err := code.DecodeBackward(eqs)
		if err != nil {
			t.Fatal(err)
		}
		want := field.NewVec(d * n)
		for i := 0; i < p.K; i++ {
			field.AXPY(want, 1, outerProduct(deltas[i], inputs[i]))
		}
		if !got.Equal(want) {
			t.Fatalf("%+v: backward decode mismatch", p)
		}
	}
}

func TestEq5Condition(t *testing.T) {
	// Directly verify A_S·Γ·B == [I_K; 0] (Eq 5 / Eq 13 in our layout).
	rng := rand.New(rand.NewSource(3))
	for _, p := range []Params{{K: 3, M: 1}, {K: 4, M: 2}, {K: 2, M: 1, Redundancy: 1}} {
		code, err := New(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		s := code.S
		gamma := field.NewMat(s, s)
		for i := 0; i < s; i++ {
			gamma.Set(i, i, code.Gamma[i])
		}
		aPrim := code.A.SubMatrix(0, s, 0, s)
		bPrim := field.NewMat(s, p.K)
		for j := 0; j < s; j++ {
			copy(bPrim.Row(j), code.B.Row(j))
		}
		prod := field.MatMul(field.MatMul(aPrim, gamma), bPrim)
		for r := 0; r < s; r++ {
			for c := 0; c < p.K; c++ {
				want := field.Elem(0)
				if r == c {
					want = 1
				}
				if prod.At(r, c) != want {
					t.Fatalf("%+v: (AΓB)[%d,%d] = %d, want %d", p, r, c, prod.At(r, c), want)
				}
			}
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	code, err := New(Params{K: 2, M: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong input count.
	if _, err := code.Encode([]field.Vec{field.RandVec(rng, 5)}, rng); err == nil {
		t.Fatal("expected error for wrong input count")
	}
	// Mismatched lengths.
	_, err = code.Encode([]field.Vec{field.RandVec(rng, 5), field.RandVec(rng, 6)}, rng)
	if err == nil {
		t.Fatal("expected ErrShapeMismatch")
	}
	// Too few results to decode.
	if _, err := code.DecodeForward([]field.Vec{field.RandVec(rng, 5)}); err == nil {
		t.Fatal("expected decode error for missing results")
	}
	if _, err := code.DecodeBackward(nil); err == nil {
		t.Fatal("expected backward decode error for missing equations")
	}
}

func TestCodedInputDiffersFromRaw(t *testing.T) {
	// Smoke privacy check: the coded vectors never equal a raw input.
	rng := rand.New(rand.NewSource(5))
	code, err := New(Params{K: 2, M: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []field.Vec{field.RandVec(rng, 100), field.RandVec(rng, 100)}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		t.Fatal(err)
	}
	for j, cx := range coded {
		for i, in := range inputs {
			if cx.Equal(in) {
				t.Fatalf("coded input %d equals raw input %d", j, i)
			}
		}
	}
}

func TestFreshCodePerBatch(t *testing.T) {
	// §4.1: coefficients are regenerated per virtual batch; two draws must
	// produce different A matrices (overwhelming probability).
	rng := rand.New(rand.NewSource(6))
	a, _ := New(Params{K: 3, M: 1}, rng)
	b, _ := New(Params{K: 3, M: 1}, rng)
	if a.A.Equal(b.A) {
		t.Fatal("two code draws produced identical A")
	}
}

func TestDecodeDropsNoiseImage(t *testing.T) {
	// The decoded outputs must not depend on which noise vector was drawn:
	// encode the same inputs twice (different noise), decode, compare.
	rng := rand.New(rand.NewSource(7))
	code, err := New(Params{K: 2, M: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := randLinearMap(rng, 40, 10)
	inputs := []field.Vec{field.RandVec(rng, 40), field.RandVec(rng, 40)}
	var first []field.Vec
	for trial := 0; trial < 2; trial++ {
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			t.Fatal(err)
		}
		results := make([]field.Vec, len(coded))
		for j := range coded {
			results[j] = f(coded[j])
		}
		decoded, err := code.DecodeForward(results)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = decoded
			continue
		}
		for i := range decoded {
			if !decoded[i].Equal(first[i]) {
				t.Fatal("decode depends on the noise draw")
			}
		}
	}
}
