package masking

import (
	"fmt"

	"darknight/internal/field"
)

// This file extends the response-subset decode path to the Eq (4) backward
// coding. Unlike the forward code — MDS over its coded columns, decodable
// from ANY S of the S+E responses — a backward equation bakes its δ
// combination coefficients into the job the GPU ran, so arbitrary column
// subsets cannot be re-decoded after the fact. What the code does offer is
// TWO complete decodings of the same batch gradient: the primary one over
// coded inputs [0, S) with the published B rows, and the redundant one over
// coded inputs [E, S+E) with the SecondaryB rows (the §4.4 redundancy,
// normally spent on verification). A straggler-tolerant backward dispatch
// therefore issues both equation sets and decodes from whichever window
// completes first; stragglers among the E window-exclusive slots on either
// side are tolerated, and when both windows happen to complete the spare
// one is spent as the verification it always was.

// ErrBackwardSubset is returned when neither backward decode window is
// fully present.
var ErrBackwardSubset = fmt.Errorf("%w: no complete backward decode window present", ErrWrongCount)

// DecodeBackwardSubsetInto folds the present backward equations into the
// caller-owned batch gradient dst. prim holds the S primary equations
// (coded inputs [0, S), published-B combinations) and sec the S secondary
// equations (coded inputs [E, S+E), SecondaryB combinations); present masks
// say which actually arrived. The primary window is preferred when complete
// — making the result bit-for-bit DecodeBackwardInto's — and the secondary
// window is used otherwise; because both decodings recover the exact field
// value Σᵢ g(δᵢ, xᵢ) (Eq 5/6 hold for each), the two paths agree
// bit-for-bit on honest equations. When both windows are complete the
// redundant one is compared against the decode and a mismatch returns
// ErrIntegrity.
//
// A code without redundancy (E = 0) has no secondary decoding: pass nil
// sec/secPresent and the call degenerates to a present-check plus
// DecodeBackwardInto.
func (c *Code) DecodeBackwardSubsetInto(dst field.Vec, prim, sec []field.Vec, primPresent, secPresent []bool) error {
	primOK, err := c.windowComplete(prim, primPresent, len(dst))
	if err != nil {
		return err
	}
	secOK := false
	if c.E > 0 {
		secOK, err = c.windowComplete(sec, secPresent, len(dst))
		if err != nil {
			return err
		}
	}
	switch {
	case primOK:
		if err := c.DecodeBackwardInto(dst, prim); err != nil {
			return err
		}
		if secOK {
			check := field.NewVec(len(dst))
			field.Combine(check, c.gammaSec[:c.S], sec[:c.S])
			if !check.Equal(dst) {
				return fmt.Errorf("%w: backward gradient decodes inconsistently across windows", ErrIntegrity)
			}
		}
		return nil
	case secOK:
		// Exact over F_p: Σⱼ γˢⱼ·secⱼ = Σᵢ g(δᵢ, xᵢ) = the primary decode,
		// bit-for-bit (pinned by TestDecodeBackwardSubsetMatchesFull).
		field.Combine(dst, c.gammaSec[:c.S], sec[:c.S])
		return nil
	default:
		return ErrBackwardSubset
	}
}

// windowComplete validates one backward equation window and reports whether
// all S of its equations are present.
func (c *Code) windowComplete(eqs []field.Vec, present []bool, n int) (bool, error) {
	if len(eqs) < c.S || len(present) < c.S {
		return false, fmt.Errorf("%w: got %d equations / %d mask entries, window has %d",
			ErrWrongCount, len(eqs), len(present), c.S)
	}
	for j := 0; j < c.S; j++ {
		if !present[j] {
			return false, nil
		}
		if len(eqs[j]) != n {
			return false, ErrShapeMismatch
		}
	}
	return true, nil
}
