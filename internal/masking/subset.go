package masking

import (
	"fmt"

	"darknight/internal/field"
)

// This file adds the response-subset decode path behind straggler
// mitigation: the code is MDS over its coded columns — the K forward
// results are decodable from ANY S = K+M of the S+E coded responses, not
// just the primary window — so a dispatch does not have to wait for its
// slowest device. The fleet layer returns early with a presence mask and
// the decoder works from whatever arrived, spending every present column
// beyond the first S as a redundant integrity check.

// ErrSubsetTooSmall is returned when fewer than S coded results are present.
var ErrSubsetTooSmall = fmt.Errorf("%w: fewer than S responses present", ErrWrongCount)

// DecodeForwardSubsetInto decodes the K forward results into the
// caller-owned dst vectors from any S present coded responses, using the
// remaining present responses as redundant verification equations.
//
// results must have NumCoded entries, of which only those with present[j]
// true are read; at least S must be present. Every present column beyond
// the decode subset is re-predicted from the decoded images and compared
// (the §4.4 redundant check generalized to arbitrary subsets): a mismatch
// returns ErrIntegrity. Callers wanting verification must therefore supply
// at least S+1 present responses; exactly S present decodes unverified.
//
// Because decoding is exact linear algebra over F_p, the output is
// bit-for-bit identical to DecodeForward on the full response set — the
// straggler path costs no accuracy.
func (c *Code) DecodeForwardSubsetInto(dst []field.Vec, results []field.Vec, present []bool) error {
	if len(results) < c.NumCoded() || len(present) != len(results) {
		return fmt.Errorf("%w: got %d results / %d mask entries, code has %d columns",
			ErrWrongCount, len(results), len(present), c.NumCoded())
	}
	if len(dst) != c.K {
		return fmt.Errorf("%w: got %d destinations, decode yields K=%d", ErrWrongCount, len(dst), c.K)
	}
	cols := make([]int, 0, c.NumCoded())
	for j := 0; j < c.NumCoded(); j++ {
		if present[j] {
			cols = append(cols, j)
		}
	}
	if len(cols) < c.S {
		return fmt.Errorf("%w: %d of %d responses present, need %d", ErrSubsetTooSmall, len(cols), c.NumCoded(), c.S)
	}
	n := len(results[cols[0]])
	for _, j := range cols {
		if len(results[j]) != n {
			return ErrShapeMismatch
		}
	}
	for _, d := range dst {
		if len(d) != n {
			return ErrShapeMismatch
		}
	}

	// Decode all S underlying images (inputs + noise) from the first S
	// present columns; by construction singular S-subsets are astronomically
	// rare, but fall back to rotating one column in from the checks if the
	// leading window happens to be degenerate.
	full, used, err := c.decodeAnySubset(results, cols)
	if err != nil {
		return err
	}

	// Every present column outside the decode subset is a free redundant
	// equation: an honest GPU j must have returned Σ_m A[m,j]·f_m exactly.
	inUsed := make(map[int]bool, len(used))
	for _, j := range used {
		inUsed[j] = true
	}
	for _, j := range cols {
		if inUsed[j] {
			continue
		}
		if !c.Predict(full, j).Equal(results[j]) {
			return fmt.Errorf("%w: present equation %d disagrees with subset decode", ErrIntegrity, j)
		}
	}
	for i := range dst {
		copy(dst[i], full[i])
	}
	return nil
}

// decodeAnySubset decodes the S full images from some invertible S-subset
// of the given present columns, returning the images and the columns used.
func (c *Code) decodeAnySubset(results []field.Vec, cols []int) ([]field.Vec, []int, error) {
	base := make([]int, c.S)
	copy(base, cols[:c.S])
	full, err := c.DecodeFull(results, base)
	if err == nil {
		return full, base, nil
	}
	// Leading window singular: swap each trailing present column into each
	// base slot until an invertible subset appears. The code construction
	// makes even one retry essentially unreachable.
	for _, alt := range cols[c.S:] {
		for slot := 0; slot < c.S; slot++ {
			saved := base[slot]
			base[slot] = alt
			if full, err2 := c.DecodeFull(results, base); err2 == nil {
				return full, base, nil
			}
			base[slot] = saved
		}
	}
	return nil, nil, fmt.Errorf("masking: no invertible decode subset among present responses: %w", err)
}
