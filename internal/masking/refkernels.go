package masking

import (
	"fmt"
	"math/rand"

	"darknight/internal/field"
)

// This file retains the seed coding kernels verbatim: one field.AXPY per
// coefficient (a multiply and a Euclidean reduction per element per term)
// and a fresh output vector per call. They are kept as the readable oracle
// — the blocked lazy-reduction kernels in code.go must stay bit-identical
// to them (see code_test.go) — and as the baseline BenchmarkKernels and the
// allocation-regression test measure the optimized path against.

// EncodeRef is the reference implementation of Encode.
func (c *Code) EncodeRef(inputs []field.Vec, rng *rand.Rand) ([]field.Vec, error) {
	n, err := c.checkBatch(inputs)
	if err != nil {
		return nil, err
	}
	full := make([]field.Vec, c.S)
	copy(full, inputs)
	for m := 0; m < c.M; m++ {
		full[c.K+m] = field.RandVec(rng, n)
	}
	coded := make([]field.Vec, c.NumCoded())
	for j := range coded {
		out := field.NewVec(n)
		for m := 0; m < c.S; m++ {
			if a := c.A.At(m, j); a != 0 {
				field.AXPY(out, a, full[m])
			}
		}
		coded[j] = out
	}
	return coded, nil
}

// DecodeForwardRef is the reference implementation of DecodeForward.
func (c *Code) DecodeForwardRef(results []field.Vec) ([]field.Vec, error) {
	if len(results) < c.S {
		return nil, fmt.Errorf("%w: got %d results, need %d", ErrWrongCount, len(results), c.S)
	}
	n := len(results[0])
	out := make([]field.Vec, c.K)
	for i := 0; i < c.K; i++ {
		y := field.NewVec(n)
		for j := 0; j < c.S; j++ {
			if a := c.primaryInv.At(j, i); a != 0 {
				field.AXPY(y, a, results[j])
			}
		}
		out[i] = y
	}
	return out, nil
}

// DecodeBackwardRef is the reference implementation of DecodeBackward.
func (c *Code) DecodeBackwardRef(eqs []field.Vec) (field.Vec, error) {
	if len(eqs) < c.S {
		return nil, fmt.Errorf("%w: got %d equations, need %d", ErrWrongCount, len(eqs), c.S)
	}
	out := field.NewVec(len(eqs[0]))
	for j := 0; j < c.S; j++ {
		field.AXPY(out, c.Gamma[j], eqs[j])
	}
	return out, nil
}
