//go:build race

package masking

// raceEnabled reports whether the race detector instruments this build;
// allocation-count and wall-clock assertions are skipped under it.
const raceEnabled = true
