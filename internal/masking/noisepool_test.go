package masking

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"darknight/internal/field"
)

// waitReady spins until the pool reports at least n refills (the background
// generator has warmed the ring) or the deadline passes.
func waitReady(t testing.TB, p *NoisePool, n int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Refills < n {
		if time.Now().After(deadline) {
			t.Fatalf("pool never refilled %d sets (stats %+v)", n, p.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNoisePoolDeterministicStream pins the offline/online equivalence: a
// single in-order consumer sees exactly the noise stream an inline drawer
// with the same seed would produce, set after set, across ring wraparound.
func TestNoisePoolDeterministicStream(t *testing.T) {
	lengths := []int{64, 96, 32}
	const m = 2
	p := NewNoisePool(7, m, lengths, 2*len(lengths))
	defer p.Close()

	ref := rand.New(rand.NewSource(7))
	for i := 0; i < 4*len(lengths); i++ { // two full ring generations
		n := lengths[i%len(lengths)]
		var set *NoiseSet
		deadline := time.Now().Add(2 * time.Second)
		for set = p.Get(n); set == nil; set = p.Get(n) {
			if time.Now().After(deadline) {
				t.Fatalf("set %d (len %d) never became ready", i, n)
			}
			time.Sleep(100 * time.Microsecond)
		}
		if len(set.Rows) != m || set.Len() != n {
			t.Fatalf("set %d: got %d rows of %d, want %d of %d", i, len(set.Rows), set.Len(), m, n)
		}
		for r := 0; r < m; r++ {
			want := field.RandVec(ref, n)
			if !set.Rows[r].Equal(want) {
				t.Fatalf("set %d row %d diverges from the inline stream", i, r)
			}
		}
		p.Recycle(set)
	}
}

// TestNoisePoolExhaustionFallsBack drains the ring without recycling and
// checks Get degrades to counted misses instead of blocking.
func TestNoisePoolExhaustionFallsBack(t *testing.T) {
	lengths := []int{128}
	const sets = 3
	p := NewNoisePool(1, 1, lengths, sets)
	defer p.Close()
	waitReady(t, p, sets)

	var held []*NoiseSet
	for i := 0; i < sets; i++ {
		s := p.Get(128)
		if s == nil {
			t.Fatalf("set %d: ring should hold %d sets, got nil", i, sets)
		}
		held = append(held, s)
	}
	// Ring dry, every buffer in flight: the online path must take over.
	if s := p.Get(128); s != nil {
		t.Fatalf("Get on a drained ring returned a set")
	}
	st := p.Stats()
	if st.Hits != sets || st.Misses != 1 {
		t.Fatalf("stats %+v, want %d hits / 1 miss", st, sets)
	}
	if st.HitRate() <= 0.5 {
		t.Fatalf("hit rate %.2f, want > 0.5", st.HitRate())
	}
	// A wrong-length request must miss without consuming the head.
	for _, s := range held {
		p.Recycle(s)
	}
	waitReady(t, p, sets+1)
	if s := p.Get(64); s != nil {
		t.Fatalf("Get(64) on a 128-length ring returned a set")
	}
	if s := p.Get(128); s == nil {
		t.Fatalf("mismatched Get consumed the ring head")
	}
}

// TestNoisePoolCloseDuringRefill closes the pool while the refiller is
// blocked waiting for spare buffers (all sets held by the consumer) and
// while it is actively drawing; Close must not hang or panic either way,
// and post-Close Get/Recycle must be safe no-ops.
func TestNoisePoolCloseDuringRefill(t *testing.T) {
	// Blocked refiller: hold every buffer so the generator parks in Wait.
	p := NewNoisePool(3, 2, []int{4096}, 2)
	waitReady(t, p, 2)
	a, b := p.Get(4096), p.Get(4096)
	if a == nil || b == nil {
		t.Fatalf("warm ring did not yield 2 sets")
	}
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Close hung on a refiller blocked in Wait")
	}
	p.Recycle(a) // recycling into a closed pool is a no-op
	p.Recycle(b)
	if s := p.Get(4096); s != nil {
		t.Fatalf("Get after Close returned a set")
	}

	// Actively drawing refiller: large rows keep it busy mid-draw.
	p2 := NewNoisePool(4, 2, []int{1 << 16}, 4)
	time.Sleep(time.Millisecond)
	closed := make(chan struct{})
	go func() { p2.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatalf("Close hung on an actively drawing refiller")
	}
	p2.Close() // idempotent
}

// TestNoisePoolConcurrentConsumers hammers one pool from several goroutines
// (the pipeline-lane sharing pattern) under -race: every hit must hand out
// an exclusively owned set, and the hit/miss accounting must add up.
func TestNoisePoolConcurrentConsumers(t *testing.T) {
	lengths := []int{256}
	p := NewNoisePool(5, 2, lengths, 8)
	defer p.Close()
	waitReady(t, p, 4)

	const (
		consumers = 4
		rounds    = 200
	)
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sum := uint64(0)
			for i := 0; i < rounds; i++ {
				set := p.Get(256)
				if set == nil {
					continue // fallback path; counted as a miss
				}
				// Touch every element like EncodeWith would, then recycle.
				for _, row := range set.Rows {
					for _, v := range row {
						sum += uint64(v)
					}
				}
				p.Recycle(set)
			}
			_ = sum
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != consumers*rounds {
		t.Fatalf("hits %d + misses %d != %d Gets", st.Hits, st.Misses, consumers*rounds)
	}
	if st.Hits == 0 {
		t.Fatalf("no hits across %d Gets with a live refiller", consumers*rounds)
	}
}

// BenchmarkNoisePool compares the online noise cost the pool removes: an
// inline uniform draw per layer versus consuming a precomputed set (pure
// pointer traffic when the generator keeps up).
func BenchmarkNoisePool(b *testing.B) {
	const n = 4096
	const m = 2
	b.Run("inline-draw", func(b *testing.B) {
		rng := rand.New(rand.NewSource(9))
		rows := make([]field.Vec, m)
		for i := range rows {
			rows[i] = field.NewVec(n)
		}
		b.SetBytes(int64(m * n * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for r := range rows {
				field.RandVecInto(rng, rows[r])
			}
		}
	})
	// The online hit path, measured white-box with the generator decoupled
	// (a consumed set is re-queued as ready instead of recycled for
	// redrawing): this is exactly what a Get hit costs the encode's
	// critical path — a mutex'd pointer swap, no RNG. A closed loop
	// against the live generator would only measure the offline draw rate;
	// the realistic-cadence hit rate is reported by BenchmarkPipeline.
	b.Run("hit-path", func(b *testing.B) {
		p := NewNoisePool(9, m, []int{n}, 16)
		defer p.Close()
		waitReady(b, p, 8)
		b.SetBytes(int64(m * n * 4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			set := p.Get(n)
			if set == nil {
				b.Fatal("warm ring missed")
			}
			p.mu.Lock()
			p.ready = append(p.ready, set)
			p.mu.Unlock()
		}
	})
}

// TestNoisePoolMissWarnsOnce: the first exhaustion miss fires the
// undersized-pool warning exactly once per pool, regardless of how many
// misses follow, and carries the row length that missed.
func TestNoisePoolMissWarnsOnce(t *testing.T) {
	var mu sync.Mutex
	var warnings []string
	orig := noisePoolWarn
	noisePoolWarn = func(format string, args ...any) {
		mu.Lock()
		warnings = append(warnings, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	defer func() { noisePoolWarn = orig }()

	lengths := []int{64}
	p := NewNoisePool(1, 1, lengths, 1)
	defer p.Close()
	waitReady(t, p, 1)

	held := p.Get(64)
	if held == nil {
		t.Fatal("warm ring did not yield a set")
	}
	for i := 0; i < 5; i++ {
		if s := p.Get(64); s != nil {
			t.Fatal("drained ring returned a set")
		}
	}
	if st := p.Stats(); st.Misses != 5 {
		t.Fatalf("misses = %d, want 5", st.Misses)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(warnings) != 1 {
		t.Fatalf("warning fired %d times, want exactly once: %q", len(warnings), warnings)
	}
	if !strings.Contains(warnings[0], "row length 64") || !strings.Contains(warnings[0], "undersized") {
		t.Fatalf("warning text: %q", warnings[0])
	}

	// A second pool warns independently.
	warnings = warnings[:0]
	mu.Unlock()
	p2 := NewNoisePool(2, 1, lengths, 1)
	defer p2.Close()
	waitReady(t, p2, 1)
	h2 := p2.Get(64)
	if h2 == nil {
		t.Fatal("second pool's warm ring did not yield a set")
	}
	p2.Get(64)
	mu.Lock()
	if len(warnings) != 1 {
		t.Fatalf("second pool fired %d warnings, want 1", len(warnings))
	}
}
