package masking

import (
	"fmt"
	"sort"

	"darknight/internal/field"
)

// CoalitionView is what a set of colluding GPUs jointly observes about the
// code: the columns of A for the coded inputs they hold. Splitting it into
// the input block (A1, rows 0..K) and the noise block (A2, rows K..S)
// exposes the structure the §5 privacy argument is about.
type CoalitionView struct {
	GPUs       []int
	InputBlock *field.Mat // K×|I| — coefficients multiplying private inputs
	NoiseBlock *field.Mat // M×|I| — coefficients multiplying noise vectors
}

// View assembles the coalition view for the given coded-input indices.
func (c *Code) View(gpus []int) (*CoalitionView, error) {
	sorted := append([]int(nil), gpus...)
	sort.Ints(sorted)
	for i, g := range sorted {
		if g < 0 || g >= c.NumCoded() {
			return nil, fmt.Errorf("masking: GPU index %d outside [0,%d)", g, c.NumCoded())
		}
		if i > 0 && sorted[i-1] == g {
			return nil, fmt.Errorf("masking: duplicate GPU index %d", g)
		}
	}
	in := field.NewMat(c.K, len(sorted))
	noise := field.NewMat(c.M, len(sorted))
	for col, g := range sorted {
		for r := 0; r < c.K; r++ {
			in.Set(r, col, c.A.At(r, g))
		}
		for r := 0; r < c.M; r++ {
			noise.Set(r, col, c.A.At(c.K+r, g))
		}
	}
	return &CoalitionView{GPUs: sorted, InputBlock: in, NoiseBlock: noise}, nil
}

// Leaks reports whether the coalition can form any linear combination of
// its coded inputs that cancels every noise vector while retaining a
// non-zero input component — the only way matrix masking can leak.
//
// A combination v satisfies: Σ v_j·x̄_j = X·(A1_I·v) + R·(A2_I·v). The noise
// vanishes iff v ∈ ker(A2_I); information leaks iff some such v has
// A1_I·v ≠ 0, which happens iff rank([A1_I; A2_I]) > rank(A2_I). With
// |I| <= M and a full-rank noise block, ker(A2_I) = {0} and the view is
// one-time-pad uniform (paper Lemma 1 + §5 "Colluding GPUs").
func (v *CoalitionView) Leaks() bool {
	stacked := field.VStack(v.InputBlock, v.NoiseBlock)
	return stacked.Rank() > v.NoiseBlock.Rank()
}

// NoiseRank returns the rank of the coalition's noise block A2_I. Privacy
// requires it to equal the coalition size for all coalitions of size <= M.
func (v *CoalitionView) NoiseRank() int { return v.NoiseBlock.Rank() }

// MaxSafeCoalition empirically determines the largest coalition size t such
// that *every* size-t coalition of this code's coded inputs is leak-free.
// For a well-formed code this equals M.
func (c *Code) MaxSafeCoalition() int {
	total := c.NumCoded()
	for size := 1; size <= total; size++ {
		if anyLeakOfSize(c, size, 0, nil) {
			return size - 1
		}
	}
	return total
}

func anyLeakOfSize(c *Code, size, start int, cur []int) bool {
	if len(cur) == size {
		v, err := c.View(cur)
		if err != nil {
			return true // treat malformed as leak; should not happen
		}
		return v.Leaks()
	}
	for i := start; i < c.NumCoded(); i++ {
		if anyLeakOfSize(c, size, i+1, append(cur, i)) {
			return true
		}
	}
	return false
}
