package client

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	mrand "math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
)

// handshake sets up both ends of a session against a simulated platform.
func handshake(t *testing.T) (clientSess, enclaveSess *Session) {
	t.Helper()
	platform, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	m := enclave.Measure([]byte("darknight enclave v1"))
	enclaveKey, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	cs, clientPub, err := Establish(platform, m, enclaveKey.PublicKey(),
		func(ch [16]byte) enclave.Quote { return platform.Attest(m, ch) })
	if err != nil {
		t.Fatal(err)
	}
	es, err := Accept(enclaveKey, clientPub, m)
	if err != nil {
		t.Fatal(err)
	}
	return cs, es
}

func sampleBatch(n int) []dataset.Example {
	rng := mrand.New(mrand.NewSource(1))
	d := dataset.SyntheticCIFAR(rng, n, 4, 1, 6, 6, 0.05)
	return d.Items
}

func TestHandshakeAndBatchRoundTrip(t *testing.T) {
	cs, es := handshake(t)
	batch := sampleBatch(5)
	blob, err := cs.SealBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := es.OpenBatch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range batch {
		if got[i].Label != batch[i].Label {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range batch[i].Image {
			if got[i].Image[j] != batch[i].Image[j] {
				t.Fatalf("pixel (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestAttestationRejectsWrongEnclave(t *testing.T) {
	platform, _ := enclave.NewPlatform()
	good := enclave.Measure([]byte("darknight enclave v1"))
	evil := enclave.Measure([]byte("evil enclave"))
	key, _ := ecdh.X25519().GenerateKey(rand.Reader)
	_, _, err := Establish(platform, good, key.PublicKey(),
		func(ch [16]byte) enclave.Quote { return platform.Attest(evil, ch) })
	if err == nil {
		t.Fatal("wrong measurement accepted")
	}
}

func TestTamperedFrameRejected(t *testing.T) {
	cs, es := handshake(t)
	blob, err := cs.SealBatch(sampleBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := es.OpenBatch(blob); !errors.Is(err, ErrSession) {
		t.Fatalf("tampered frame err = %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	cs, es := handshake(t)
	blob, err := cs.SealBatch(sampleBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.OpenBatch(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := es.OpenBatch(blob); !errors.Is(err, ErrSession) {
		t.Fatalf("replay err = %v", err)
	}
}

func TestSequenceOrdering(t *testing.T) {
	cs, es := handshake(t)
	b1, _ := cs.SealBatch(sampleBatch(1))
	b2, _ := cs.SealBatch(sampleBatch(1))
	// Deliver out of order: b2 then b1.
	if _, err := es.OpenBatch(b2); err != nil {
		t.Fatal(err)
	}
	if _, err := es.OpenBatch(b1); !errors.Is(err, ErrSession) {
		t.Fatalf("reordered frame err = %v", err)
	}
}

func TestWrongKeyFails(t *testing.T) {
	cs, _ := handshake(t)
	_, stranger := handshake(t)
	blob, _ := cs.SealBatch(sampleBatch(1))
	if _, err := stranger.OpenBatch(blob); !errors.Is(err, ErrSession) {
		t.Fatalf("cross-session frame err = %v", err)
	}
}

func TestSealBatchValidation(t *testing.T) {
	cs, _ := handshake(t)
	if _, err := cs.SealBatch(nil); !errors.Is(err, ErrSession) {
		t.Fatal("empty batch accepted")
	}
	ragged := []dataset.Example{
		{Image: []float64{1, 2}}, {Image: []float64{1}},
	}
	if _, err := cs.SealBatch(ragged); !errors.Is(err, ErrSession) {
		t.Fatal("ragged batch accepted")
	}
}

func TestCiphertextHidesPixels(t *testing.T) {
	cs, _ := handshake(t)
	batch := sampleBatch(3)
	blob, err := cs.SealBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	// The serialized plaintext of the first pixel must not appear in the
	// ciphertext (spot check for accidental plaintext framing).
	if len(blob) < 100 {
		t.Fatal("implausibly small ciphertext")
	}
	var zeros int
	for _, b := range blob[8:] {
		if b == 0 {
			zeros++
		}
	}
	// AES-GCM output is pseudorandom; long zero runs would indicate
	// unencrypted structure. Allow generous slack.
	if float64(zeros) > 0.05*float64(len(blob)) {
		t.Fatalf("ciphertext has %d/%d zero bytes — looks structured", zeros, len(blob))
	}
}

func TestSessionFullDuplexInterleaving(t *testing.T) {
	// The two directions use independent counters and nonce direction
	// bytes, so an endpoint may send several frames before opening any
	// response — no alternation requirement, no (key, nonce) reuse.
	cs, es := handshake(t)
	a1, err := cs.SealBatch(sampleBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cs.SealBatch(sampleBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	// The enclave sends before it has opened anything.
	r1, err := es.SealPredictions([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := es.OpenBatch(a1); err != nil {
		t.Fatalf("request 1 rejected: %v", err)
	}
	if _, err := es.OpenBatch(a2); err != nil {
		t.Fatalf("pipelined request 2 rejected: %v", err)
	}
	preds, err := cs.OpenPredictions(r1)
	if err != nil {
		t.Fatalf("response rejected: %v", err)
	}
	if len(preds) != 2 || preds[0] != 1 || preds[1] != 2 {
		t.Fatalf("preds = %v", preds)
	}
}

func TestSessionRejectsReflectedFrame(t *testing.T) {
	// A frame must not authenticate back to its own sender's direction:
	// reflecting the client's sealed request to the client must fail.
	cs, _ := handshake(t)
	blob, err := cs.SealBatch(sampleBatch(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.OpenBatch(blob); err == nil {
		t.Fatal("client accepted its own reflected frame")
	}
}

func TestSessionPredictionsRoundTrip(t *testing.T) {
	cs, es := handshake(t)
	blob, err := es.SealPredictions([]int{3, 0, -1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.OpenPredictions(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 0, -1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pred %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Tampered frame must fail authentication.
	blob2, _ := es.SealPredictions([]int{1})
	blob2[len(blob2)-1] ^= 1
	if _, err := cs.OpenPredictions(blob2); err == nil {
		t.Fatal("tampered prediction frame accepted")
	}
}
