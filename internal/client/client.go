// Package client implements the data-holder side of DarKnight's system
// model (§3, Fig 1, flow step 1): the client verifies the enclave via
// remote attestation, establishes an authenticated-encryption session, and
// ships training/inference batches to the TEE encrypted end-to-end —
// "all the client data is first encrypted before being sent to the TEE".
//
// The cryptography is real (X25519 key agreement + HKDF-less HMAC KDF +
// AES-GCM, all stdlib); the attestation root of trust is the simulated
// platform from internal/enclave.
package client

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
)

// ErrSession is returned for malformed or tampered session traffic.
var ErrSession = errors.New("client: session error")

// Session is one authenticated-encryption channel between a data holder
// and an attested enclave. Both endpoints hold a Session (with the same
// key) after Establish/Accept. The two directions use independent frame
// counters and a direction byte inside the nonce, so client→TEE and
// TEE→client traffic can never collide on a (key, nonce) pair no matter
// how the endpoints interleave.
type Session struct {
	aead cipher.AEAD
	// client marks which end of the channel this Session is (set by
	// Establish, cleared by Accept); it selects the nonce direction byte.
	client bool
	// txSeq/rxSeq count sent and received frames independently.
	txSeq, rxSeq uint64
}

// Nonce direction bytes: byte 8 of the 12-byte GCM nonce.
const (
	dirClientToTEE = 1
	dirTEEToClient = 2
)

func (s *Session) sendDir() byte {
	if s.client {
		return dirClientToTEE
	}
	return dirTEEToClient
}

func (s *Session) recvDir() byte {
	if s.client {
		return dirTEEToClient
	}
	return dirClientToTEE
}

// Establish runs the client-side handshake:
//
//  1. challenge the platform and verify the enclave quote against the
//     expected measurement,
//  2. X25519 key agreement with the enclave's ephemeral public key,
//  3. derive the session key with HMAC-SHA256 over the transcript.
//
// It returns the client session; the enclave side derives the identical
// key from the peer public key (see Accept).
func Establish(platform *enclave.Platform, want enclave.Measurement, enclavePub *ecdh.PublicKey, quoteFor func(challenge [16]byte) enclave.Quote) (*Session, *ecdh.PublicKey, error) {
	var challenge [16]byte
	if _, err := io.ReadFull(rand.Reader, challenge[:]); err != nil {
		return nil, nil, err
	}
	quote := quoteFor(challenge)
	if err := platform.Verify(quote, want, challenge); err != nil {
		return nil, nil, fmt.Errorf("client: attestation rejected: %w", err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	shared, err := priv.ECDH(enclavePub)
	if err != nil {
		return nil, nil, err
	}
	s, err := newSession(shared, want, true)
	if err != nil {
		return nil, nil, err
	}
	return s, priv.PublicKey(), nil
}

// Accept runs the enclave-side key derivation given the client's public
// key (the enclave's long-lived handshake key is priv).
func Accept(priv *ecdh.PrivateKey, clientPub *ecdh.PublicKey, measurement enclave.Measurement) (*Session, error) {
	shared, err := priv.ECDH(clientPub)
	if err != nil {
		return nil, err
	}
	return newSession(shared, measurement, false)
}

func newSession(shared []byte, m enclave.Measurement, client bool) (*Session, error) {
	kdf := hmac.New(sha256.New, shared)
	kdf.Write([]byte("darknight session v1"))
	kdf.Write(m[:])
	key := kdf.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Session{aead: aead, client: client}, nil
}

// seal encrypts one payload frame. The sender's fresh sequence number and
// direction byte are bound into the nonce and the frame header is
// authenticated, so replay, reorder and cross-direction reflection are
// all detected by open.
func (s *Session) seal(plain []byte) []byte {
	s.txSeq++
	nonce := make([]byte, s.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, s.txSeq)
	nonce[8] = s.sendDir()
	out := make([]byte, 8, 8+len(plain)+s.aead.Overhead())
	binary.LittleEndian.PutUint64(out, s.txSeq)
	return s.aead.Seal(out, nonce, plain, out[:8])
}

// open authenticates and decrypts one frame from the peer direction.
// Sequence numbers must be strictly increasing per direction.
func (s *Session) open(blob []byte) ([]byte, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("%w: truncated frame", ErrSession)
	}
	seq := binary.LittleEndian.Uint64(blob[:8])
	if seq <= s.rxSeq {
		return nil, fmt.Errorf("%w: replayed or reordered frame %d (last %d)", ErrSession, seq, s.rxSeq)
	}
	nonce := make([]byte, s.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, seq)
	nonce[8] = s.recvDir()
	plain, err := s.aead.Open(nil, nonce, blob[8:], blob[:8])
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed: %v", ErrSession, err)
	}
	s.rxSeq = seq
	return plain, nil
}

// SealBatch encrypts a labelled batch for transmission to the TEE.
func (s *Session) SealBatch(batch []dataset.Example) ([]byte, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrSession)
	}
	n := len(batch[0].Image)
	for _, ex := range batch {
		if len(ex.Image) != n {
			return nil, fmt.Errorf("%w: ragged batch", ErrSession)
		}
	}
	plain := make([]byte, 8+len(batch)*(4+8*n))
	binary.LittleEndian.PutUint64(plain, uint64(n))
	off := 8
	for _, ex := range batch {
		binary.LittleEndian.PutUint32(plain[off:], uint32(int32(ex.Label)))
		off += 4
		for _, v := range ex.Image {
			binary.LittleEndian.PutUint64(plain[off:], math.Float64bits(v))
			off += 8
		}
	}
	return s.seal(plain), nil
}

// OpenBatch authenticates and decrypts a sealed batch on the enclave side.
func (s *Session) OpenBatch(blob []byte) ([]dataset.Example, error) {
	plain, err := s.open(blob)
	if err != nil {
		return nil, err
	}
	if len(plain) < 8 {
		return nil, fmt.Errorf("%w: truncated payload", ErrSession)
	}
	n := int(binary.LittleEndian.Uint64(plain))
	rec := 4 + 8*n
	if n <= 0 || (len(plain)-8)%rec != 0 {
		return nil, fmt.Errorf("%w: malformed payload", ErrSession)
	}
	count := (len(plain) - 8) / rec
	out := make([]dataset.Example, count)
	off := 8
	for i := range out {
		out[i].Label = int(int32(binary.LittleEndian.Uint32(plain[off:])))
		off += 4
		img := make([]float64, n)
		for j := range img {
			img[j] = math.Float64frombits(binary.LittleEndian.Uint64(plain[off:]))
			off += 8
		}
		out[i].Image = img
	}
	return out, nil
}

// SealPredictions encrypts a per-image prediction vector — the inference
// response frame the TEE returns for a sealed request batch.
func (s *Session) SealPredictions(preds []int) ([]byte, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("%w: empty prediction vector", ErrSession)
	}
	plain := make([]byte, 8+4*len(preds))
	binary.LittleEndian.PutUint64(plain, uint64(len(preds)))
	for i, p := range preds {
		binary.LittleEndian.PutUint32(plain[8+4*i:], uint32(int32(p)))
	}
	return s.seal(plain), nil
}

// OpenPredictions authenticates and decrypts a prediction vector on the
// client side.
func (s *Session) OpenPredictions(blob []byte) ([]int, error) {
	plain, err := s.open(blob)
	if err != nil {
		return nil, err
	}
	if len(plain) < 8 {
		return nil, fmt.Errorf("%w: truncated payload", ErrSession)
	}
	n := int(binary.LittleEndian.Uint64(plain))
	if n <= 0 || len(plain) != 8+4*n {
		return nil, fmt.Errorf("%w: malformed prediction payload", ErrSession)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(binary.LittleEndian.Uint32(plain[8+4*i:])))
	}
	return out, nil
}
