// Package client implements the data-holder side of DarKnight's system
// model (§3, Fig 1, flow step 1): the client verifies the enclave via
// remote attestation, establishes an authenticated-encryption session, and
// ships training/inference batches to the TEE encrypted end-to-end —
// "all the client data is first encrypted before being sent to the TEE".
//
// The cryptography is real (X25519 key agreement + HKDF-less HMAC KDF +
// AES-GCM, all stdlib); the attestation root of trust is the simulated
// platform from internal/enclave.
package client

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
)

// ErrSession is returned for malformed or tampered session traffic.
var ErrSession = errors.New("client: session error")

// Session is one authenticated-encryption channel between a data holder
// and an attested enclave. Both endpoints hold a Session (with the same
// keys) after Establish.
type Session struct {
	aead cipher.AEAD
	seq  uint64
}

// Establish runs the client-side handshake:
//
//  1. challenge the platform and verify the enclave quote against the
//     expected measurement,
//  2. X25519 key agreement with the enclave's ephemeral public key,
//  3. derive the session key with HMAC-SHA256 over the transcript.
//
// It returns the client session; the enclave side derives the identical
// key from the peer public key (see Accept).
func Establish(platform *enclave.Platform, want enclave.Measurement, enclavePub *ecdh.PublicKey, quoteFor func(challenge [16]byte) enclave.Quote) (*Session, *ecdh.PublicKey, error) {
	var challenge [16]byte
	if _, err := io.ReadFull(rand.Reader, challenge[:]); err != nil {
		return nil, nil, err
	}
	quote := quoteFor(challenge)
	if err := platform.Verify(quote, want, challenge); err != nil {
		return nil, nil, fmt.Errorf("client: attestation rejected: %w", err)
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, err
	}
	shared, err := priv.ECDH(enclavePub)
	if err != nil {
		return nil, nil, err
	}
	s, err := newSession(shared, want)
	if err != nil {
		return nil, nil, err
	}
	return s, priv.PublicKey(), nil
}

// Accept runs the enclave-side key derivation given the client's public
// key (the enclave's long-lived handshake key is priv).
func Accept(priv *ecdh.PrivateKey, clientPub *ecdh.PublicKey, measurement enclave.Measurement) (*Session, error) {
	shared, err := priv.ECDH(clientPub)
	if err != nil {
		return nil, err
	}
	return newSession(shared, measurement)
}

func newSession(shared []byte, m enclave.Measurement) (*Session, error) {
	kdf := hmac.New(sha256.New, shared)
	kdf.Write([]byte("darknight session v1"))
	kdf.Write(m[:])
	key := kdf.Sum(nil)
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Session{aead: aead}, nil
}

// SealBatch encrypts a labelled batch for transmission to the TEE. The
// sequence number is bound into the nonce and the header is authenticated,
// so replay and reorder are detected.
func (s *Session) SealBatch(batch []dataset.Example) ([]byte, error) {
	if len(batch) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrSession)
	}
	n := len(batch[0].Image)
	for _, ex := range batch {
		if len(ex.Image) != n {
			return nil, fmt.Errorf("%w: ragged batch", ErrSession)
		}
	}
	plain := make([]byte, 8+len(batch)*(4+8*n))
	binary.LittleEndian.PutUint64(plain, uint64(n))
	off := 8
	for _, ex := range batch {
		binary.LittleEndian.PutUint32(plain[off:], uint32(int32(ex.Label)))
		off += 4
		for _, v := range ex.Image {
			binary.LittleEndian.PutUint64(plain[off:], math.Float64bits(v))
			off += 8
		}
	}
	s.seq++
	nonce := make([]byte, s.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, s.seq)
	out := make([]byte, 8, 8+len(plain)+s.aead.Overhead())
	binary.LittleEndian.PutUint64(out, s.seq)
	return s.aead.Seal(out, nonce, plain, out[:8]), nil
}

// OpenBatch authenticates and decrypts a sealed batch on the enclave side.
// Sequence numbers must be strictly increasing.
func (s *Session) OpenBatch(blob []byte) ([]dataset.Example, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("%w: truncated frame", ErrSession)
	}
	seq := binary.LittleEndian.Uint64(blob[:8])
	if seq <= s.seq {
		return nil, fmt.Errorf("%w: replayed or reordered frame %d (last %d)", ErrSession, seq, s.seq)
	}
	nonce := make([]byte, s.aead.NonceSize())
	binary.LittleEndian.PutUint64(nonce, seq)
	plain, err := s.aead.Open(nil, nonce, blob[8:], blob[:8])
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed: %v", ErrSession, err)
	}
	s.seq = seq
	if len(plain) < 8 {
		return nil, fmt.Errorf("%w: truncated payload", ErrSession)
	}
	n := int(binary.LittleEndian.Uint64(plain))
	rec := 4 + 8*n
	if n <= 0 || (len(plain)-8)%rec != 0 {
		return nil, fmt.Errorf("%w: malformed payload", ErrSession)
	}
	count := (len(plain) - 8) / rec
	out := make([]dataset.Example, count)
	off := 8
	for i := range out {
		out[i].Label = int(int32(binary.LittleEndian.Uint32(plain[off:])))
		off += 4
		img := make([]float64, n)
		for j := range img {
			img[j] = math.Float64frombits(binary.LittleEndian.Uint64(plain[off:]))
			off += 8
		}
		out[i].Image = img
	}
	return out, nil
}
