package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darknight/internal/field"
)

func TestRoundMatchesAlgorithm1(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0}, {0.49, 0}, {0.5, 1}, {0.51, 1},
		{-0.49, 0}, {-0.5, 0}, {-0.51, -1}, // floor-based: -0.5 - floor(-0.5)= 0.5 → up → 0
		{1.5, 2}, {-1.5, -1}, {2.4999, 2}, {-2.4999, -2},
	}
	for _, c := range cases {
		if got := round(c.in); got != c.want {
			t.Errorf("round(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	q := Default()
	f := func(raw int16) bool {
		// Representable grid points: k / 2^l.
		x := float64(raw) / q.Scale()
		got := q.Unquantize(q.Quantize([]float64{x}))[0]
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeError(t *testing.T) {
	q := Default()
	rng := rand.New(rand.NewSource(1))
	maxErr := 1.0 / q.Scale() // one ulp of the fixed-point grid
	for i := 0; i < 10000; i++ {
		x := rng.Float64()*200 - 100
		got := q.Unquantize(q.Quantize([]float64{x}))[0]
		if math.Abs(got-x) > maxErr {
			t.Fatalf("quantize error %v for x=%v exceeds %v", got-x, x, maxErr)
		}
	}
}

func TestNegativeValues(t *testing.T) {
	q := Default()
	xs := []float64{-1, -0.5, -100.25, 3.75, 0}
	got := q.Unquantize(q.Quantize(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("x=%v round-tripped to %v", xs[i], got[i])
		}
	}
}

func TestLinearOpInField(t *testing.T) {
	// End-to-end Algorithm 1 check without masking: quantize w and x,
	// multiply in the field, add a 2^(2l)-scaled bias, unquantize the
	// product, compare to float math.
	q := Default()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		w := make([]float64, n)
		x := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()*2 - 1
			x[i] = rng.Float64()*2 - 1
		}
		b := rng.Float64()*2 - 1

		wq := q.Quantize(w)
		xq := q.Quantize(x)
		bq := q.QuantizeBias([]float64{b})[0]
		acc := field.Dot(wq, xq)
		acc = field.Add(acc, bq)
		got := q.UnquantizeProduct(field.Vec{acc})[0]

		want := b
		for i := range w {
			want += w[i] * x[i]
		}
		// Two rounding layers: n+1 products each off by ≤ (1/2^l)·(|w|+|x|+ulp)
		// — bound loosely.
		tol := float64(n+2) * 3 / q.Scale()
		if math.Abs(got-want) > tol {
			t.Fatalf("trial %d n=%d: got %v want %v (tol %v)", trial, n, got, want, tol)
		}
	}
}

func TestQuantizeBiasScale(t *testing.T) {
	q := Default()
	bq := q.QuantizeBias([]float64{1})[0]
	if field.Lift(bq) != int64(q.Scale()*q.Scale()) {
		t.Fatalf("bias 1 quantized to %d, want %v", field.Lift(bq), q.Scale()*q.Scale())
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{3, -12, 6}
	f := Normalize(xs, 10)
	if f != 12 {
		t.Fatalf("factor = %v, want 12", f)
	}
	if xs[1] != -1 || xs[0] != 0.25 || xs[2] != 0.5 {
		t.Fatalf("normalized = %v", xs)
	}
	// Under the limit: untouched.
	ys := []float64{1, 2, 3}
	if f := Normalize(ys, 10); f != 1 {
		t.Fatalf("factor = %v, want 1", f)
	}
	if ys[2] != 3 {
		t.Fatal("values modified below limit")
	}
	// All-zero vector must not divide by zero.
	zs := []float64{0, 0}
	if f := Normalize(zs, 0.5); f != 1 {
		t.Fatalf("zero-vector factor = %v", f)
	}
}

func TestMaxRepresentable(t *testing.T) {
	q := Default()
	m := q.MaxRepresentable()
	v := q.Quantize([]float64{m})[0]
	if field.Lift(v) < 0 {
		t.Fatal("MaxRepresentable wraps to negative")
	}
	// Past the boundary (but below p/2^l) the centered lift goes negative.
	v2 := q.Quantize([]float64{m * 1.5})[0]
	if field.Lift(v2) >= 0 {
		t.Fatal("1.5× MaxRepresentable should wrap negative under centered lift")
	}
}

func TestBudget(t *testing.T) {
	q := Default()
	// Unit-magnitude operands only leave ~255 terms of headroom in a
	// 25-bit field — exactly the pressure that forces the paper's dynamic
	// normalization for VGG. Normalized (0.1) operands buy two orders.
	b := q.Budget(0.1, 0.1, 5, 1000)
	if !b.Fits() {
		t.Fatalf("1000-length normalized dot should fit: %+v", b)
	}
	unit := q.Budget(1, 1, 5, 1000)
	if unit.Fits() {
		t.Fatalf("1000-length unit dot should overflow: %+v", unit)
	}
	big := q.Budget(8, 8, 5, 100000)
	if big.Fits() {
		t.Fatalf("oversized dot should not fit: %+v", big)
	}
	if b.SafeLength <= 0 {
		t.Fatal("safe length must be positive")
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, l := range []uint{0, 13, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", l)
				}
			}()
			New(l)
		}()
	}
}
