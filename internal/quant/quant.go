// Package quant implements DarKnight's fixed-point quantization (paper §5,
// Algorithm 1). Floating-point tensors are scaled by 2^l (l fractional
// bits), rounded to integers, and mapped into F_p with the centered lift for
// negatives. Linear GPU kernels then run exactly in the field; the TEE
// restores floats by lifting and dividing by 2^(2l) (inputs and weights each
// carry one factor of 2^l, so their products carry 2^(2l); biases are
// pre-scaled by 2^(2l) to line up).
package quant

import (
	"fmt"
	"math"

	"darknight/internal/field"
)

// DefaultFracBits is l = 8, the paper's choice for ResNet, VGG and
// MobileNet.
const DefaultFracBits = 8

// Quantizer converts between float64 tensors and F_p fixed-point vectors.
// The zero value is unusable; construct with New.
type Quantizer struct {
	fracBits uint
	scale    float64 // 2^l
}

// New returns a Quantizer with the given number of fractional bits.
// It panics if l would leave no headroom in the 25-bit field (l in [1, 12]
// keeps single products representable; the paper uses l = 8).
func New(fracBits uint) *Quantizer {
	if fracBits < 1 || fracBits > 12 {
		panic(fmt.Sprintf("quant: fracBits %d out of supported range [1,12]", fracBits))
	}
	return &Quantizer{fracBits: fracBits, scale: math.Ldexp(1, int(fracBits))}
}

// Default returns the paper's l = 8 quantizer.
func Default() *Quantizer { return New(DefaultFracBits) }

// FracBits returns l.
func (q *Quantizer) FracBits() uint { return q.fracBits }

// Scale returns 2^l.
func (q *Quantizer) Scale() float64 { return q.scale }

// round implements Algorithm 1's Round procedure: round half away from
// floor (x - floor(x) < 0.5 rounds down, otherwise up).
func round(x float64) int64 {
	f := math.Floor(x)
	if x-f < 0.5 {
		return int64(f)
	}
	return int64(f) + 1
}

// Quantize maps a float tensor to the field with one 2^l factor:
// Field(Round(x * 2^l)). Used for inputs and weights.
func (q *Quantizer) Quantize(xs []float64) field.Vec {
	return q.QuantizeInto(make(field.Vec, len(xs)), xs)
}

// QuantizeInto is Quantize writing into a caller-owned vector (typically
// arena-backed; see internal/sched), which is overwritten and returned.
func (q *Quantizer) QuantizeInto(dst field.Vec, xs []float64) field.Vec {
	if len(dst) != len(xs) {
		panic(fmt.Sprintf("quant: destination length %d != %d", len(dst), len(xs)))
	}
	for i, x := range xs {
		dst[i] = field.FromInt64(round(x * q.scale))
	}
	return dst
}

// QuantizeBias maps a bias tensor with the double factor 2^(2l)
// (Algorithm 1 line 3), so that b lines up with W·x after one linear layer.
func (q *Quantizer) QuantizeBias(xs []float64) field.Vec {
	out := make(field.Vec, len(xs))
	s := q.scale * q.scale
	for i, x := range xs {
		out[i] = field.FromInt64(round(x * s))
	}
	return out
}

// Unquantize restores floats from a vector carrying a single 2^l factor
// (e.g. a quantized input echoed back).
func (q *Quantizer) Unquantize(v field.Vec) []float64 {
	out := make([]float64, len(v))
	for i, e := range v {
		out[i] = float64(field.Lift(e)) / q.scale
	}
	return out
}

// UnquantizeProduct restores floats from a linear-operation result carrying
// the 2^(2l) factor: Algorithm 1 line 9, Round(Y_q × 2^-l) × 2^-l.
func (q *Quantizer) UnquantizeProduct(v field.Vec) []float64 {
	return q.UnquantizeProductInto(make([]float64, len(v)), v)
}

// UnquantizeProductInto is UnquantizeProduct writing into a caller-owned
// float buffer, which is overwritten and returned.
func (q *Quantizer) UnquantizeProductInto(dst []float64, v field.Vec) []float64 {
	if len(dst) != len(v) {
		panic(fmt.Sprintf("quant: destination length %d != %d", len(dst), len(v)))
	}
	for i, e := range v {
		dst[i] = float64(round(float64(field.Lift(e))/q.scale)) / q.scale
	}
	return dst
}

// MaxRepresentable returns the largest float magnitude whose quantized
// value still lifts correctly (i.e. Round(x·2^l) <= (p-1)/2).
func (q *Quantizer) MaxRepresentable() float64 {
	return float64(field.Half) / q.scale
}

// Normalize scales xs in place by 1/max|x| if the maximum absolute entry
// exceeds limit, returning the factor applied (1 if untouched). This is the
// paper's dynamic normalization for VGG-style models ("we normalize the
// values by dividing them to the maximum absolute entry of the vector").
func Normalize(xs []float64, limit float64) float64 {
	maxAbs := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs <= limit || maxAbs == 0 {
		return 1
	}
	f := maxAbs
	for i := range xs {
		xs[i] /= f
	}
	return f
}

// HeadroomBudget describes how large a coded dot product can grow before it
// wraps mod p and corrupts the real-valued result. DarKnight's field is only
// 25 bits, so the implementation (like the paper's) must keep activations
// normalized; this helper makes the budget auditable.
type HeadroomBudget struct {
	FracBits   uint    // l
	MaxInput   float64 // assumed max |x|
	MaxWeight  float64 // assumed max |w|
	CodeWidth  int     // number of masked inputs combined (K+M(+1))
	DotLength  int     // reduction length of the linear op
	SafeLength int     // max DotLength that cannot wrap
}

// Budget computes the longest reduction that is guaranteed not to exceed
// (p-1)/2 in magnitude for the given operating point.
func (q *Quantizer) Budget(maxInput, maxWeight float64, codeWidth, dotLength int) HeadroomBudget {
	// The masking coefficients α are uniform over F_p, so a coded input
	// coordinate is only meaningful mod p — exact recovery relies on field
	// arithmetic, not magnitude. What must NOT wrap is the *decoded*
	// real-valued result: |Σ w·x| ≤ maxInput·maxWeight·2^(2l)·DotLength.
	perTerm := maxInput * q.scale * maxWeight * q.scale
	safe := int(float64(field.Half) / perTerm)
	return HeadroomBudget{
		FracBits:   q.fracBits,
		MaxInput:   maxInput,
		MaxWeight:  maxWeight,
		CodeWidth:  codeWidth,
		DotLength:  dotLength,
		SafeLength: safe,
	}
}

// Fits reports whether the configured dot length is within the safe budget.
func (b HeadroomBudget) Fits() bool { return b.DotLength <= b.SafeLength }
