package enclave

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// This file models the SGX features the paper leans on for session setup
// (§2.1: remote attestation and the secure channels between client, TEE
// and GPUs). A Quote binds a measurement (code hash) to a challenge; a
// SecureChannel is an authenticated-encryption session derived from a
// shared secret established after attestation. The cryptography is real
// (HMAC-SHA256, AES-GCM via the enclave sealing machinery); the hardware
// root of trust is simulated by a per-process signing key.

// Measurement is the enclave code identity (MRENCLAVE stand-in).
type Measurement [32]byte

// Measure hashes enclave "code" — any byte description of the logic the
// data holder expects to run.
func Measure(code []byte) Measurement { return sha256.Sum256(code) }

// Quote is an attestation statement: measurement + challenge, MACed by the
// platform key.
type Quote struct {
	Measurement Measurement
	Challenge   [16]byte
	MAC         [32]byte
}

// Platform is the simulated hardware root of trust that signs quotes.
type Platform struct{ key [32]byte }

// NewPlatform creates a platform with a fresh signing key.
func NewPlatform() (*Platform, error) {
	p := &Platform{}
	if _, err := io.ReadFull(rand.Reader, p.key[:]); err != nil {
		return nil, err
	}
	return p, nil
}

// Attest produces a quote over the measurement and caller challenge.
func (p *Platform) Attest(m Measurement, challenge [16]byte) Quote {
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write(m[:])
	mac.Write(challenge[:])
	q := Quote{Measurement: m, Challenge: challenge}
	copy(q.MAC[:], mac.Sum(nil))
	return q
}

// ErrAttestation is returned when a quote fails verification.
var ErrAttestation = errors.New("enclave: attestation verification failed")

// Verify checks a quote against an expected measurement and challenge.
// In the simulation the verifier shares the platform key (standing in for
// Intel's attestation service).
func (p *Platform) Verify(q Quote, want Measurement, challenge [16]byte) error {
	if q.Measurement != want {
		return fmt.Errorf("%w: measurement mismatch", ErrAttestation)
	}
	if q.Challenge != challenge {
		return fmt.Errorf("%w: challenge mismatch", ErrAttestation)
	}
	mac := hmac.New(sha256.New, p.key[:])
	mac.Write(q.Measurement[:])
	mac.Write(q.Challenge[:])
	if !hmac.Equal(mac.Sum(nil), q.MAC[:]) {
		return fmt.Errorf("%w: bad MAC", ErrAttestation)
	}
	return nil
}
