package enclave

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestAllocBudget(t *testing.T) {
	e, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(600); err != nil {
		t.Fatal(err)
	}
	if err := e.Alloc(500); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-budget alloc err = %v", err)
	}
	if err := e.Alloc(400); err != nil {
		t.Fatal(err)
	}
	if e.Used() != 1000 {
		t.Fatalf("used = %d", e.Used())
	}
	e.Free(400)
	if !e.Fits(300) {
		t.Fatal("should fit after free")
	}
	if e.Stats().PeakUsage != 1000 {
		t.Fatalf("peak = %d", e.Stats().PeakUsage)
	}
}

func TestFreePanicsOnUnderflow(t *testing.T) {
	e, _ := New(100)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	e.Free(1)
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e, _ := New(DefaultEPCBytes)
	data := []byte("gradient shard payload")
	h, err := e.Seal(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Unseal(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	// Handle is consumed.
	if _, err := e.Unseal(h); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("reuse err = %v", err)
	}
	st := e.Stats()
	if st.SealOps != 1 || st.UnsealOps != 1 || st.SealedBytes != int64(len(data)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSealedDataIsEncrypted(t *testing.T) {
	e, _ := New(DefaultEPCBytes)
	plain := bytes.Repeat([]byte("SECRET01"), 64)
	h, err := e.Seal(plain)
	if err != nil {
		t.Fatal(err)
	}
	// Inspect the untrusted store directly: ciphertext must not contain
	// the plaintext.
	blob := e.untrusted[h]
	if bytes.Contains(blob, []byte("SECRET01")) {
		t.Fatal("plaintext leaked into untrusted memory")
	}
}

func TestTamperDetection(t *testing.T) {
	e, _ := New(DefaultEPCBytes)
	h, err := e.Seal([]byte("weights update"))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.TamperSealed(h); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Unseal(h); err == nil {
		t.Fatal("tampered page unsealed without error")
	}
}

func TestSealFloats(t *testing.T) {
	e, _ := New(DefaultEPCBytes)
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h, err := e.SealFloats(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.UnsealFloats(h)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("float %d: %v != %v", i, got[i], xs[i])
		}
	}
}

func TestNewRejectsBadCapacity(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := New(-5); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestAttestation(t *testing.T) {
	p, err := NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	m := Measure([]byte("darknight enclave v1"))
	var challenge [16]byte
	challenge[0] = 42
	q := p.Attest(m, challenge)
	if err := p.Verify(q, m, challenge); err != nil {
		t.Fatalf("honest quote rejected: %v", err)
	}
	// Wrong measurement.
	other := Measure([]byte("evil enclave"))
	if err := p.Verify(q, other, challenge); !errors.Is(err, ErrAttestation) {
		t.Fatalf("measurement mismatch err = %v", err)
	}
	// Replayed challenge.
	var challenge2 [16]byte
	if err := p.Verify(q, m, challenge2); !errors.Is(err, ErrAttestation) {
		t.Fatalf("challenge mismatch err = %v", err)
	}
	// Forged MAC.
	q2 := q
	q2.MAC[0] ^= 1
	if err := p.Verify(q2, m, challenge); !errors.Is(err, ErrAttestation) {
		t.Fatalf("forged MAC err = %v", err)
	}
}

func TestConcurrentAllocAndSeal(t *testing.T) {
	// The enclave is shared by the trainer's goroutine fan-out; its
	// accounting must be race-free (run with -race in CI).
	e, _ := New(1 << 20)
	done := make(chan error, 16)
	for g := 0; g < 16; g++ {
		go func(g int) {
			for i := 0; i < 50; i++ {
				if err := e.Alloc(128); err != nil {
					done <- err
					return
				}
				h, err := e.Seal([]byte("concurrent payload"))
				if err != nil {
					done <- err
					return
				}
				if _, err := e.Unseal(h); err != nil {
					done <- err
					return
				}
				e.Free(128)
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 16; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if e.Used() != 0 {
		t.Fatalf("leaked %d bytes", e.Used())
	}
	st := e.Stats()
	if st.SealOps != 800 || st.UnsealOps != 800 {
		t.Fatalf("stats = %+v", st)
	}
}
