// Package enclave simulates the Intel SGX trusted execution environment
// DarKnight runs its TEE-side logic in (hardware substitution documented in
// DESIGN.md). It models the properties that shape the paper's design:
//
//   - a hard protected-memory budget (the ~128 MB EPC) that forces virtual
//     batching and ▽W eviction (§6),
//   - AES-GCM sealing for pages evicted to untrusted memory (Algorithm 2's
//     Encrypt/Evict),
//   - paging statistics the performance model converts into time.
//
// It is a *functional* enclave: data inside it is plain memory, but every
// boundary crossing is accounted for and sealed data really is encrypted,
// so tests can assert both behaviour and cost.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// DefaultEPCBytes is the usable enclave page cache of the paper's SGX
// generation: 128 MB raw, ~93 MB usable after metadata.
const DefaultEPCBytes = 93 << 20

// Stats counts boundary-crossing work for the performance model.
type Stats struct {
	SealedBytes   int64 // bytes encrypted and evicted
	UnsealedBytes int64 // bytes reloaded and decrypted
	SealOps       int64
	UnsealOps     int64
	PeakUsage     int64 // high-water protected memory mark
}

// Enclave is a software SGX enclave with a memory budget and a sealing key.
type Enclave struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	stats    Stats
	aead     cipher.AEAD

	// untrusted is the simulated untrusted DRAM the enclave evicts sealed
	// pages into, keyed by handle.
	untrusted map[uint64][]byte
	nextKey   uint64
}

// ErrOutOfMemory is returned when an allocation exceeds the EPC budget —
// the condition that caps virtual batch size (paper Fig 6b: "the execution
// time gets worse due to SGX memory overflow").
var ErrOutOfMemory = errors.New("enclave: EPC budget exceeded")

// ErrBadHandle is returned for unseal requests of unknown pages.
var ErrBadHandle = errors.New("enclave: unknown sealed page handle")

// New creates an enclave with the given protected-memory budget in bytes.
func New(capacity int64) (*Enclave, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("enclave: capacity must be positive, got %d", capacity)
	}
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("enclave: sealing key: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &Enclave{
		capacity:  capacity,
		aead:      aead,
		untrusted: make(map[uint64][]byte),
	}, nil
}

// Capacity returns the EPC budget.
func (e *Enclave) Capacity() int64 { return e.capacity }

// Used returns the currently allocated protected bytes.
func (e *Enclave) Used() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used
}

// Stats returns a snapshot of the boundary-crossing counters.
func (e *Enclave) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Alloc reserves n protected bytes, failing if the budget would overflow.
// Callers model their working set with Alloc/Free pairs; the enclave
// enforces the same hard limit real SGX does.
func (e *Enclave) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative allocation %d", n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.used+n > e.capacity {
		return fmt.Errorf("%w: %d used + %d requested > %d capacity",
			ErrOutOfMemory, e.used, n, e.capacity)
	}
	e.used += n
	if e.used > e.stats.PeakUsage {
		e.stats.PeakUsage = e.used
	}
	return nil
}

// Free releases n protected bytes.
func (e *Enclave) Free(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.used -= n
	if e.used < 0 {
		panic("enclave: double free — used went negative")
	}
}

// Fits reports whether an additional allocation of n bytes would succeed.
func (e *Enclave) Fits(n int64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.used+n <= e.capacity
}

// Seal encrypts data with the enclave's AEAD key and stores the ciphertext
// in untrusted memory, returning an opaque handle (Algorithm 2 lines 9–10:
// Encrypt + Evict). The plaintext never appears in the untrusted store.
func (e *Enclave) Seal(data []byte) (uint64, error) {
	nonce := make([]byte, e.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return 0, err
	}
	ct := e.aead.Seal(nil, nonce, data, nil)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nextKey++
	h := e.nextKey
	e.untrusted[h] = append(nonce, ct...)
	e.stats.SealedBytes += int64(len(data))
	e.stats.SealOps++
	return h, nil
}

// Unseal reloads and decrypts a sealed page (Algorithm 2 line 19). The
// handle is consumed.
func (e *Enclave) Unseal(h uint64) ([]byte, error) {
	e.mu.Lock()
	blob, ok := e.untrusted[h]
	if ok {
		delete(e.untrusted, h)
	}
	e.mu.Unlock()
	if !ok {
		return nil, ErrBadHandle
	}
	ns := e.aead.NonceSize()
	if len(blob) < ns {
		return nil, fmt.Errorf("enclave: sealed blob truncated")
	}
	pt, err := e.aead.Open(nil, blob[:ns], blob[ns:], nil)
	if err != nil {
		return nil, fmt.Errorf("enclave: unseal authentication failed: %w", err)
	}
	e.mu.Lock()
	e.stats.UnsealedBytes += int64(len(pt))
	e.stats.UnsealOps++
	e.mu.Unlock()
	return pt, nil
}

// TamperSealed corrupts a sealed page in untrusted memory — a test hook
// modelling an adversary with DRAM access. Unseal of a tampered page must
// fail authentication.
func (e *Enclave) TamperSealed(h uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	blob, ok := e.untrusted[h]
	if !ok {
		return ErrBadHandle
	}
	blob[len(blob)-1] ^= 0x01
	return nil
}

// SealFloats seals a float64 slice (the ▽W_v shards of Algorithm 2).
func (e *Enclave) SealFloats(xs []float64) (uint64, error) {
	buf := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return e.Seal(buf)
}

// UnsealFloats reverses SealFloats.
func (e *Enclave) UnsealFloats(h uint64) ([]float64, error) {
	buf, err := e.Unseal(h)
	if err != nil {
		return nil, err
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("enclave: sealed float blob has odd length %d", len(buf))
	}
	out := make([]float64, len(buf)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out, nil
}
