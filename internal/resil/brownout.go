package resil

import (
	"fmt"
	"sync"

	"darknight/internal/obs"
)

// BrownoutPolicy configures the degradation controller. The controller
// consumes SLO breach events (obs.SLOTracker.OnBreach) and maps the set of
// currently-burning objectives to a degradation level:
//
//	level = min(MaxLevel, number of distinct breached tenant/window/SLO keys)
//
// Rising breaches escalate, clearing breaches de-escalate, and level 0 is
// full service — edge-triggered both ways, no polling. What each level
// *does* is owned by the serving layer, which subscribes via OnChange and
// actuates its runtime knobs (shorter flush windows → smaller effective
// batches, shallower pipelines, hedging off, tighter shedding). The coded
// geometry (structural K, M, E) is fixed at construction — degradation
// trades latency/padding headroom, never the privacy/integrity operating
// point.
type BrownoutPolicy struct {
	// Enabled turns the controller on.
	Enabled bool
	// MaxLevel caps degradation depth (default 3).
	MaxLevel int
}

func (p BrownoutPolicy) maxLevel() int {
	if p.MaxLevel <= 0 {
		return 3
	}
	return p.MaxLevel
}

// Brownout is the degradation controller. Safe for concurrent use; breach
// callbacks arrive on serving goroutines.
type Brownout struct {
	policy BrownoutPolicy
	rec    *obs.FlightRecorder
	c      *Counters

	mu       sync.Mutex
	burning  map[string]bool
	level    int
	onChange []func(level int)
}

// NewBrownout builds a controller recording transitions into rec (may be
// nil) and counting them in c (may be nil).
func NewBrownout(p BrownoutPolicy, rec *obs.FlightRecorder, c *Counters) *Brownout {
	return &Brownout{policy: p, rec: rec, c: c, burning: make(map[string]bool)}
}

// OnChange subscribes an actuator callback, fired (outside the controller
// lock) on every level transition with the new level. Subscribe before
// traffic starts.
func (b *Brownout) OnChange(fn func(level int)) {
	if b == nil || fn == nil {
		return
	}
	b.mu.Lock()
	b.onChange = append(b.onChange, fn)
	b.mu.Unlock()
}

// Level returns the current degradation level (0 = full service).
func (b *Brownout) Level() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

// Subscribe wires the controller into an SLO tracker's breach feed.
func (b *Brownout) Subscribe(t *obs.SLOTracker) {
	if b == nil || !b.policy.Enabled || t == nil {
		return
	}
	t.OnBreach(b.observe)
}

// observe folds one breach event into the burning set and re-derives the
// level.
func (b *Brownout) observe(br obs.Breach) {
	key := fmt.Sprintf("%s|%s|%s", br.Tenant, br.Window, br.SLO)
	b.mu.Lock()
	if br.Cleared {
		delete(b.burning, key)
	} else {
		b.burning[key] = true
	}
	level := len(b.burning)
	if max := b.policy.maxLevel(); level > max {
		level = max
	}
	old := b.level
	var hooks []func(int)
	if level != old {
		b.level = level
		hooks = append(hooks, b.onChange...)
	}
	b.mu.Unlock()
	if level == old {
		return
	}
	if b.c != nil {
		b.c.BrownoutShifts.Add(1)
		b.c.BrownoutLevel.Store(int64(level))
	}
	if b.rec != nil {
		verb := "degraded"
		if level < old {
			verb = "restored"
		}
		b.rec.Record(obs.Event{Kind: obs.KindBrownout, Subsystem: "resil",
			Device: -1, Slot: -1, Tenant: br.Tenant,
			Detail: fmt.Sprintf("%s: level %d -> %d (%d objectives burning; trigger %s %s over %s, burn %.2f)",
				verb, old, level, len(b.burning), br.Tenant, br.SLO, br.Window, br.Burn)})
	}
	for _, fn := range hooks {
		fn(level)
	}
}
