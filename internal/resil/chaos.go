package resil

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/obs"
)

// Schedule is a deterministic fault script: a named, seeded list of timed
// fault events the chaos runner applies to a fleet of gpu.ChaosDevice
// actuators. All times are integer milliseconds from schedule start, so a
// schedule is a plain JSON artifact that diffs well and replays exactly.
//
// Event kinds:
//
//	crash     device answers garbage from at_ms for duration_ms
//	latency   device gains delay_ms per-job latency for duration_ms
//	tamper    device corrupts results from at_ms for duration_ms
//	flap      device crashes and heals `count` times, one cycle per
//	          period_ms (down the first half, up the second)
//	partition every device in `devices` crashes together for duration_ms
//	          (a network partition as seen from the TEE)
type Schedule struct {
	Name string `json:"name"`
	// Seed is recorded for provenance: schedules generated from a seed
	// note it here so an incident artifact names its generator. The
	// runner itself is fully determined by the event list.
	Seed   int64        `json:"seed,omitempty"`
	Events []ChaosEvent `json:"events"`
}

// ChaosEvent is one scripted fault.
type ChaosEvent struct {
	AtMS       int64  `json:"at_ms"`
	Kind       string `json:"kind"`
	Device     int    `json:"device"`
	Devices    []int  `json:"devices,omitempty"`     // partition only
	DurationMS int64  `json:"duration_ms,omitempty"` // 0 = until schedule end
	DelayMS    int64  `json:"delay_ms,omitempty"`    // latency only
	PeriodMS   int64  `json:"period_ms,omitempty"`   // flap only
	Count      int    `json:"count,omitempty"`       // flap only (default 3)
}

// LoadSchedule reads and validates a schedule file.
func LoadSchedule(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("resil: bad chaos schedule %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("resil: %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the schedule's shape.
func (s *Schedule) Validate() error {
	for i, ev := range s.Events {
		switch ev.Kind {
		case "crash", "tamper":
		case "latency":
			if ev.DelayMS <= 0 {
				return fmt.Errorf("event %d: latency needs delay_ms > 0", i)
			}
		case "flap":
			if ev.PeriodMS <= 0 {
				return fmt.Errorf("event %d: flap needs period_ms > 0", i)
			}
		case "partition":
			if len(ev.Devices) == 0 {
				return fmt.Errorf("event %d: partition needs a devices list", i)
			}
		default:
			return fmt.Errorf("event %d: unknown kind %q", i, ev.Kind)
		}
		if ev.AtMS < 0 {
			return fmt.Errorf("event %d: negative at_ms", i)
		}
	}
	return nil
}

// Duration returns the wall-clock span of the schedule: the latest point
// any event is still acting (heals included).
func (s *Schedule) Duration() time.Duration {
	var end int64
	for _, ev := range s.Events {
		t := ev.AtMS + ev.DurationMS
		if ev.Kind == "flap" {
			n := ev.Count
			if n <= 0 {
				n = 3
			}
			t = ev.AtMS + int64(n)*ev.PeriodMS
		}
		if t > end {
			end = t
		}
	}
	return time.Duration(end) * time.Millisecond
}

// action is one compiled primitive: at offset, apply fn.
type action struct {
	at     time.Duration
	device int
	detail string
	apply  func()
}

// compile lowers the schedule onto the actuators: every event becomes
// timed set/clear primitives. Events naming devices outside the fleet are
// skipped (schedules are reusable across cluster sizes).
func (s *Schedule) compile(devs []*gpu.ChaosDevice) []action {
	var acts []action
	add := func(atMS int64, dev int, detail string, fn func()) {
		if dev < 0 || dev >= len(devs) || devs[dev] == nil {
			return
		}
		acts = append(acts, action{at: time.Duration(atMS) * time.Millisecond,
			device: dev, detail: detail, apply: fn})
	}
	for _, ev := range s.Events {
		ev := ev
		switch ev.Kind {
		case "crash":
			d := devs // capture for closures below
			add(ev.AtMS, ev.Device, "crash", func() { d[ev.Device].SetDown(true) })
			if ev.DurationMS > 0 {
				add(ev.AtMS+ev.DurationMS, ev.Device, "heal", func() { d[ev.Device].SetDown(false) })
			}
		case "latency":
			d := devs
			delay := time.Duration(ev.DelayMS) * time.Millisecond
			add(ev.AtMS, ev.Device, fmt.Sprintf("latency +%v", delay),
				func() { d[ev.Device].SetDelay(delay) })
			if ev.DurationMS > 0 {
				add(ev.AtMS+ev.DurationMS, ev.Device, "latency cleared",
					func() { d[ev.Device].SetDelay(0) })
			}
		case "tamper":
			d := devs
			add(ev.AtMS, ev.Device, "tamper burst", func() { d[ev.Device].SetTamper(true) })
			if ev.DurationMS > 0 {
				add(ev.AtMS+ev.DurationMS, ev.Device, "tamper cleared",
					func() { d[ev.Device].SetTamper(false) })
			}
		case "flap":
			d := devs
			n := ev.Count
			if n <= 0 {
				n = 3
			}
			for i := 0; i < n; i++ {
				at := ev.AtMS + int64(i)*ev.PeriodMS
				add(at, ev.Device, fmt.Sprintf("flap down %d/%d", i+1, n),
					func() { d[ev.Device].SetDown(true) })
				add(at+ev.PeriodMS/2, ev.Device, fmt.Sprintf("flap up %d/%d", i+1, n),
					func() { d[ev.Device].SetDown(false) })
			}
		case "partition":
			d := devs
			for _, dev := range ev.Devices {
				dev := dev
				add(ev.AtMS, dev, "partition", func() { d[dev].SetDown(true) })
				if ev.DurationMS > 0 {
					add(ev.AtMS+ev.DurationMS, dev, "partition healed",
						func() { d[dev].SetDown(false) })
				}
			}
		}
	}
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].at < acts[j].at })
	return acts
}

// Runner plays schedules against a fleet's chaos actuators, recording
// every applied action into the flight recorder and the chaos counter.
type Runner struct {
	devs []*gpu.ChaosDevice
	rec  *obs.FlightRecorder
	c    *Counters
}

// NewRunner builds a runner over the fleet's actuators (index = device
// id; nil entries are devices without a chaos wrapper). rec and c may be
// nil.
func NewRunner(devs []*gpu.ChaosDevice, rec *obs.FlightRecorder, c *Counters) *Runner {
	return &Runner{devs: devs, rec: rec, c: c}
}

// Play applies the schedule in real time, blocking until the last action
// has fired or ctx is done. On ctx cancellation every actuator is reset
// to clean (no fault outlives the run).
func (r *Runner) Play(ctx context.Context, s *Schedule) error {
	acts := s.compile(r.devs)
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	for _, a := range acts {
		wait := a.at - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				r.Reset()
				return ctx.Err()
			}
		} else {
			select {
			case <-ctx.Done():
				r.Reset()
				return ctx.Err()
			default:
			}
		}
		a.apply()
		if r.c != nil {
			r.c.ChaosActions.Add(1)
		}
		if r.rec != nil {
			r.rec.Record(obs.Event{Kind: obs.KindChaos, Subsystem: "resil",
				Device: a.device, Slot: -1,
				Detail: fmt.Sprintf("schedule %q t=%v: gpu %d %s", s.Name, a.at, a.device, a.detail)})
		}
	}
	return nil
}

// Start plays the schedule on a background goroutine; the returned stop
// function cancels it (resetting the actuators) and waits for exit.
func (r *Runner) Start(s *Schedule) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.Play(ctx, s)
	}()
	return func() {
		cancel()
		<-done
	}
}

// Reset returns every actuator to the clean state.
func (r *Runner) Reset() {
	for _, d := range r.devs {
		if d == nil {
			continue
		}
		d.SetDown(false)
		d.SetDelay(0)
		d.SetTamper(false)
	}
}
