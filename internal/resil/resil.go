// Package resil is the cross-layer resilience subsystem of the serving
// stack: deadline budgets, retry with capped exponential backoff, hedged
// dispatch governed by a latency-percentile trigger, queue-depth admission
// control with per-tenant priorities, an SLO-driven brownout degradation
// controller, and a scripted deterministic chaos harness.
//
// The package owns the *policies* and their bookkeeping; the serving stack
// (internal/serve) owns the mechanisms they steer — which gang to acquire,
// when to prune a batch, which flight wins. resil deliberately imports only
// gpu (chaos actuators) and obs (events, metrics, breach feed), so serve
// and sched can both build on it without cycles.
package resil

import (
	"context"
	"errors"
	"time"
)

// Typed client-visible errors. A chaos acceptance run counts only these as
// explained outcomes: anything else a client sees is a harness failure.
var (
	// ErrDeadline reports a request whose end-to-end budget expired before
	// (or during) dispatch. It matches errors.Is(err,
	// context.DeadlineExceeded) so callers using plain context idioms keep
	// working.
	ErrDeadline error = deadlineError{}
	// ErrShed reports a request rejected by admission control before any
	// work was done on it. Clients should back off and retry.
	ErrShed = errors.New("resil: request shed by admission control")
	// ErrRetriesExhausted reports a virtual batch that failed on its
	// original gang and on every permitted retry gang.
	ErrRetriesExhausted = errors.New("resil: retries exhausted")
)

type deadlineError struct{}

func (deadlineError) Error() string { return "resil: deadline budget exhausted" }

// Is makes ErrDeadline satisfy errors.Is(err, context.DeadlineExceeded):
// a budget expiry IS a deadline expiry, just attributed to a phase.
func (deadlineError) Is(target error) bool { return target == context.DeadlineExceeded }

// Config bundles the resilience policies of one server. The zero value
// disables everything and the serving hot path stays at its PR8 cost.
type Config struct {
	Budget   BudgetPolicy
	Retry    RetryPolicy
	Hedge    HedgePolicy
	Shed     ShedPolicy
	Brownout BrownoutPolicy
}

// Enabled reports whether any policy is active.
func (c Config) Enabled() bool {
	return c.Budget.Default > 0 || c.Retry.Max > 0 || c.Hedge.Enabled ||
		c.Shed.MaxQueue > 0 || c.Brownout.Enabled
}

// BudgetPolicy splits a request's end-to-end deadline budget across the
// serving phases: admission + batching may spend at most BatchFraction of
// the budget; the remainder is reserved for gang acquisition, offload and
// decode. The offload layer re-checks the absolute deadline before every
// gang dispatch.
type BudgetPolicy struct {
	// Default is the end-to-end budget applied to requests whose context
	// carries no deadline. 0 leaves such requests unbounded (PR8
	// behavior); a caller deadline always takes precedence when earlier.
	Default time.Duration
	// BatchFraction is the share of the budget a request may spend waiting
	// in the batcher before it must be flushed (padded if necessary).
	// 0 picks DefaultBatchFraction. The rest of the budget covers the
	// dispatch pipeline — so a request is never flushed so late that the
	// offload cannot finish inside its deadline.
	BatchFraction float64
}

// DefaultBatchFraction is the batching share of a deadline budget: half
// the budget may be spent coalescing, half is reserved for the offload.
const DefaultBatchFraction = 0.5

// Enabled reports whether the budget policy changes anything: a default
// budget or an explicit phase split.
func (p BudgetPolicy) Enabled() bool { return p.Default > 0 || p.BatchFraction > 0 }

// batchFraction returns the effective batching share.
func (p BudgetPolicy) batchFraction() float64 {
	if p.BatchFraction <= 0 || p.BatchFraction > 1 {
		return DefaultBatchFraction
	}
	return p.BatchFraction
}

// Deadline resolves a request's absolute end-to-end deadline from its
// context deadline (ok=false when absent) and the policy default. The
// zero time means unbounded.
func (p BudgetPolicy) Deadline(now time.Time, ctxDeadline time.Time, ok bool) time.Time {
	var d time.Time
	if p.Default > 0 {
		d = now.Add(p.Default)
	}
	if ok && (d.IsZero() || ctxDeadline.Before(d)) {
		d = ctxDeadline
	}
	return d
}

// FlushBy bounds how long a request admitted at now with absolute
// deadline d (zero = unbounded) may wait in the batcher: the earlier of
// maxWait and the batch-phase share of the remaining budget.
func (p BudgetPolicy) FlushBy(now time.Time, d time.Time, maxWait time.Duration) time.Time {
	flushBy := now.Add(maxWait)
	if d.IsZero() {
		return flushBy
	}
	budget := d.Sub(now)
	if budget <= 0 {
		return now // already expired: flush (and fail) immediately
	}
	if cut := now.Add(time.Duration(float64(budget) * p.batchFraction())); cut.Before(flushBy) {
		flushBy = cut
	}
	return flushBy
}

// RetryPolicy caps re-dispatch of failed virtual batches onto fresh gangs.
type RetryPolicy struct {
	// Max is the number of re-dispatch attempts after the original (0
	// disables retry).
	Max int
	// Base is the first backoff (default 500µs); each further attempt
	// doubles it, capped at Cap (default 8ms). The quarantine machinery
	// removes attributed culprits from the pool meanwhile, which is what
	// makes the fresh gang actually fresh.
	Base time.Duration
	// Cap bounds the exponential growth.
	Cap time.Duration
}

// Backoff returns the pause before re-dispatch attempt (1-based).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	base := p.Base
	if base <= 0 {
		base = 500 * time.Microsecond
	}
	cap := p.Cap
	if cap <= 0 {
		cap = 8 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// Retryable reports whether a batch failure is worth a fresh gang:
// integrity rejections and transient dispatch errors are; typed resil
// outcomes (deadline, shed) and context cancellation are not — the budget
// is gone either way.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
		errors.Is(err, ErrShed) || errors.Is(err, ErrRetriesExhausted) {
		return false
	}
	return true
}
