package resil

import (
	"sort"
	"sync"
	"time"
)

// HedgePolicy triggers a speculative duplicate flight for a slow virtual
// batch: when the primary gang has not answered within the observed
// latency percentile, the batch is re-encoded and dispatched on a second
// gang, and the first bit-identical answer wins. Hedges only ever use
// spare capacity (non-blocking acquisition) so they cannot starve primary
// traffic.
type HedgePolicy struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile is the batch-latency percentile that arms the hedge timer
	// (default 0.95): a batch slower than this is presumed straggling.
	Quantile float64
	// Min floors the trigger delay so cold starts and tiny samples cannot
	// hedge everything (default 250µs).
	Min time.Duration
	// Warmup is the number of completed batches observed before hedging
	// engages (default 16) — percentiles over fewer samples are noise.
	Warmup int
	// Window bounds the latency reservoir (default 512 most recent
	// batches).
	Window int
}

func (p HedgePolicy) quantile() float64 {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		return 0.95
	}
	return p.Quantile
}

func (p HedgePolicy) min() time.Duration {
	if p.Min <= 0 {
		return 250 * time.Microsecond
	}
	return p.Min
}

func (p HedgePolicy) warmup() int {
	if p.Warmup <= 0 {
		return 16
	}
	return p.Warmup
}

func (p HedgePolicy) window() int {
	if p.Window <= 0 {
		return 512
	}
	return p.Window
}

// HedgeGovernor tracks recent batch dispatch latencies and answers "how
// long should a primary flight run before we hedge it?". Safe for
// concurrent use by all workers; one governor per server so every worker
// benefits from fleet-wide observations.
type HedgeGovernor struct {
	policy HedgePolicy

	mu   sync.Mutex
	ring []time.Duration
	pos  int
	n    int64 // total observations (monotone)

	// cached is the last computed trigger; recomputing the ring quantile
	// (copy + sort of up to Window samples) on every dispatch would tax
	// the clean path, so Delay refreshes it at most once per
	// recomputeEvery observations.
	cached   time.Duration
	cachedAt int64

	// disabled is flipped by the brownout controller: under degradation
	// the duplicate flights are the first capacity to give back.
	disabled bool
}

// NewHedgeGovernor builds a governor for the policy.
func NewHedgeGovernor(p HedgePolicy) *HedgeGovernor {
	return &HedgeGovernor{policy: p, ring: make([]time.Duration, 0, p.window())}
}

// Observe records one completed primary dispatch latency.
func (g *HedgeGovernor) Observe(d time.Duration) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if len(g.ring) < g.policy.window() {
		g.ring = append(g.ring, d)
	} else {
		g.ring[g.pos] = d
		g.pos = (g.pos + 1) % len(g.ring)
	}
	g.n++
	g.mu.Unlock()
}

// SetDisabled lets the brownout controller suspend hedging without
// touching the policy.
func (g *HedgeGovernor) SetDisabled(off bool) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.disabled = off
	g.mu.Unlock()
}

// Delay returns the hedge trigger: how long to let the primary flight run
// before launching the duplicate. ok=false while hedging is disabled,
// unwarmed, or the policy is off — the caller then never hedges.
func (g *HedgeGovernor) Delay() (time.Duration, bool) {
	if g == nil || !g.policy.Enabled {
		return 0, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.disabled || g.n < int64(g.policy.warmup()) {
		return 0, false
	}
	if g.cachedAt == 0 || g.n-g.cachedAt >= recomputeEvery {
		sorted := append([]time.Duration(nil), g.ring...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		idx := int(float64(len(sorted)) * g.policy.quantile())
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		d := sorted[idx]
		if min := g.policy.min(); d < min {
			d = min
		}
		g.cached, g.cachedAt = d, g.n
	}
	return g.cached, true
}

// recomputeEvery is how many new observations invalidate the cached
// trigger. Small enough to track latency regime changes within a couple
// dozen batches, large enough to amortize the ring sort to noise.
const recomputeEvery = 16
