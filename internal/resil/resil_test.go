package resil

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"darknight/internal/obs"
)

func TestBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{Max: 5} // defaults: base 500µs, cap 8ms
	want := []time.Duration{
		500 * time.Microsecond,
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	custom := RetryPolicy{Base: time.Millisecond, Cap: 3 * time.Millisecond}
	if got := custom.Backoff(1); got != time.Millisecond {
		t.Errorf("custom Backoff(1) = %v", got)
	}
	if got := custom.Backoff(3); got != 3*time.Millisecond {
		t.Errorf("custom Backoff(3) = %v, want cap 3ms", got)
	}
	// Base above cap clamps to cap from the first attempt.
	weird := RetryPolicy{Base: 10 * time.Millisecond, Cap: 2 * time.Millisecond}
	if got := weird.Backoff(1); got != 2*time.Millisecond {
		t.Errorf("base>cap Backoff(1) = %v, want 2ms", got)
	}
}

func TestBudgetDeadlineResolution(t *testing.T) {
	now := time.Unix(1000, 0)
	var p BudgetPolicy
	if d := p.Deadline(now, time.Time{}, false); !d.IsZero() {
		t.Errorf("no policy, no ctx: want zero deadline, got %v", d)
	}
	p = BudgetPolicy{Default: 100 * time.Millisecond}
	if d := p.Deadline(now, time.Time{}, false); !d.Equal(now.Add(100 * time.Millisecond)) {
		t.Errorf("default-only deadline = %v", d)
	}
	// Earlier caller deadline wins over the default.
	early := now.Add(10 * time.Millisecond)
	if d := p.Deadline(now, early, true); !d.Equal(early) {
		t.Errorf("earlier ctx deadline should win, got %v", d)
	}
	// Later caller deadline does not loosen the default budget.
	late := now.Add(10 * time.Second)
	if d := p.Deadline(now, late, true); !d.Equal(now.Add(100 * time.Millisecond)) {
		t.Errorf("later ctx deadline should not loosen default, got %v", d)
	}
	// Caller deadline with no default applies as-is.
	if d := (BudgetPolicy{}).Deadline(now, early, true); !d.Equal(early) {
		t.Errorf("ctx-only deadline = %v", d)
	}
}

func TestBudgetFlushBySplit(t *testing.T) {
	now := time.Unix(1000, 0)
	maxWait := 50 * time.Millisecond
	p := BudgetPolicy{Default: 100 * time.Millisecond} // batch share = default 0.5

	// Unbounded request: flushBy is just now+maxWait.
	if got := p.FlushBy(now, time.Time{}, maxWait); !got.Equal(now.Add(maxWait)) {
		t.Errorf("unbounded FlushBy = %v", got)
	}
	// 100ms budget, 0.5 fraction → batch phase may take 50ms; not earlier
	// than maxWait here, so they coincide.
	d := now.Add(100 * time.Millisecond)
	if got := p.FlushBy(now, d, maxWait); !got.Equal(now.Add(50 * time.Millisecond)) {
		t.Errorf("split FlushBy = %v, want now+50ms", got)
	}
	// Tight budget: 20ms budget → 10ms batch share, earlier than maxWait.
	d = now.Add(20 * time.Millisecond)
	if got := p.FlushBy(now, d, maxWait); !got.Equal(now.Add(10 * time.Millisecond)) {
		t.Errorf("tight FlushBy = %v, want now+10ms", got)
	}
	// Custom fraction.
	p2 := BudgetPolicy{BatchFraction: 0.25}
	d = now.Add(40 * time.Millisecond)
	if got := p2.FlushBy(now, d, maxWait); !got.Equal(now.Add(10 * time.Millisecond)) {
		t.Errorf("quarter-fraction FlushBy = %v, want now+10ms", got)
	}
	// Already expired: flush immediately.
	if got := p.FlushBy(now, now.Add(-time.Millisecond), maxWait); !got.Equal(now) {
		t.Errorf("expired FlushBy = %v, want now", got)
	}
}

func TestErrDeadlineMatchesContext(t *testing.T) {
	if !errors.Is(ErrDeadline, context.DeadlineExceeded) {
		t.Fatal("ErrDeadline must match context.DeadlineExceeded")
	}
	wrapped := fmt.Errorf("request: %w", ErrDeadline)
	if !errors.Is(wrapped, context.DeadlineExceeded) {
		t.Fatal("wrapped ErrDeadline must still match context.DeadlineExceeded")
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.DeadlineExceeded, false},
		{context.Canceled, false},
		{ErrDeadline, false},
		{ErrShed, false},
		{ErrRetriesExhausted, false},
		{fmt.Errorf("wrap: %w", ErrRetriesExhausted), false},
		{errors.New("integrity: tampering detected"), true},
		{fmt.Errorf("dispatch: %w", errors.New("transient")), true},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestShedderPrioritiesAndFactor(t *testing.T) {
	// Disabled policy admits everything at any depth.
	off := NewShedder(ShedPolicy{})
	if err := off.Admit("t", 1<<20); err != nil {
		t.Fatalf("disabled shedder rejected: %v", err)
	}
	var nilShed *Shedder
	if err := nilShed.Admit("t", 1<<20); err != nil {
		t.Fatalf("nil shedder rejected: %v", err)
	}

	s := NewShedder(ShedPolicy{
		MaxQueue:   10,
		Priorities: map[string]float64{"bronze": 0.3, "*": 0.6},
	})
	// Gold (unlisted, but "*" present): allowance 6.
	if err := s.Admit("gold", 5); err != nil {
		t.Errorf("gold at depth 5 shed: %v", err)
	}
	if err := s.Admit("gold", 6); !errors.Is(err, ErrShed) {
		t.Errorf("gold at depth 6 admitted, want ErrShed (got %v)", err)
	}
	// Bronze: allowance 3.
	if err := s.Admit("bronze", 2); err != nil {
		t.Errorf("bronze at depth 2 shed: %v", err)
	}
	if err := s.Admit("bronze", 3); !errors.Is(err, ErrShed) {
		t.Errorf("bronze at depth 3 admitted, want ErrShed (got %v)", err)
	}

	// Without "*", unlisted tenants get the full queue.
	full := NewShedder(ShedPolicy{MaxQueue: 10, Priorities: map[string]float64{"bronze": 0.3}})
	if err := full.Admit("gold", 9); err != nil {
		t.Errorf("full-priority tenant at depth 9 shed: %v", err)
	}

	// Brownout tightening halves every allowance.
	s.SetFactor(0.5)
	if err := s.Admit("gold", 3); !errors.Is(err, ErrShed) {
		t.Errorf("tightened gold at depth 3 admitted, want ErrShed (got %v)", err)
	}
	// Floor: even heavily tightened low-priority tenants keep one slot.
	s.SetFactor(0.01)
	if err := s.Admit("bronze", 0); err != nil {
		t.Errorf("floor violated: bronze at empty queue shed: %v", err)
	}
	// Restoring the factor restores the policy as written.
	s.SetFactor(1)
	if err := s.Admit("gold", 5); err != nil {
		t.Errorf("restored gold at depth 5 shed: %v", err)
	}

	counts := s.ShedCounts()
	if counts["gold"] == 0 || counts["bronze"] == 0 {
		t.Errorf("shed counts not recorded: %v", counts)
	}
}

func TestHedgeGovernorWarmupQuantileFloor(t *testing.T) {
	// Policy off: never hedge.
	var nilG *HedgeGovernor
	if _, ok := nilG.Delay(); ok {
		t.Fatal("nil governor offered a hedge delay")
	}
	off := NewHedgeGovernor(HedgePolicy{})
	if _, ok := off.Delay(); ok {
		t.Fatal("disabled policy offered a hedge delay")
	}

	g := NewHedgeGovernor(HedgePolicy{
		Enabled: true, Quantile: 0.9, Min: time.Millisecond, Warmup: 4, Window: 8,
	})
	// Unwarmed: no hedging.
	g.Observe(10 * time.Millisecond)
	if _, ok := g.Delay(); ok {
		t.Fatal("governor hedged before warmup")
	}
	for _, d := range []time.Duration{10, 20, 30, 40, 50, 60, 70} {
		g.Observe(d * time.Millisecond)
	}
	d, ok := g.Delay()
	if !ok {
		t.Fatal("warmed governor refused to hedge")
	}
	// Ring holds {10,10,20,...,70}ms; p90 over 8 samples indexes the top.
	if d < 50*time.Millisecond || d > 70*time.Millisecond {
		t.Errorf("p90 delay = %v, want in [50ms, 70ms]", d)
	}

	// Min floor: all-fast observations still wait at least Min.
	fast := NewHedgeGovernor(HedgePolicy{Enabled: true, Min: time.Millisecond, Warmup: 2, Window: 8})
	fast.Observe(time.Microsecond)
	fast.Observe(time.Microsecond)
	if d, ok := fast.Delay(); !ok || d != time.Millisecond {
		t.Errorf("min floor: got (%v, %v), want (1ms, true)", d, ok)
	}

	// Brownout disable suspends, re-enable resumes.
	g.SetDisabled(true)
	if _, ok := g.Delay(); ok {
		t.Fatal("disabled governor offered a hedge delay")
	}
	g.SetDisabled(false)
	if _, ok := g.Delay(); !ok {
		t.Fatal("re-enabled governor refused to hedge")
	}
}

func breach(tenant string, win time.Duration, slo string, cleared bool) obs.Breach {
	return obs.Breach{Tenant: tenant, Window: win, SLO: slo, Burn: 2.5, Cleared: cleared}
}

func TestBrownoutLevelTransitions(t *testing.T) {
	rec := obs.NewFlightRecorder(64)
	var c Counters
	b := NewBrownout(BrownoutPolicy{Enabled: true, MaxLevel: 2}, rec, &c)

	var levels []int
	b.OnChange(func(l int) { levels = append(levels, l) })

	if b.Level() != 0 {
		t.Fatalf("initial level = %d", b.Level())
	}
	// One burning objective → level 1.
	b.observe(breach("a", time.Second, "latency", false))
	if b.Level() != 1 {
		t.Fatalf("after 1 breach: level = %d, want 1", b.Level())
	}
	// Same key again: edge-triggered, no new transition.
	b.observe(breach("a", time.Second, "latency", false))
	if got := c.BrownoutShifts.Load(); got != 1 {
		t.Fatalf("duplicate breach caused a transition: shifts = %d", got)
	}
	// Distinct keys escalate; MaxLevel caps at 2.
	b.observe(breach("a", 10*time.Second, "latency", false))
	b.observe(breach("b", time.Second, "errors", false))
	if b.Level() != 2 {
		t.Fatalf("level = %d, want capped at 2", b.Level())
	}
	// Clearing back down de-escalates stepwise to 0.
	b.observe(breach("a", time.Second, "latency", true))
	b.observe(breach("a", 10*time.Second, "latency", true))
	if b.Level() != 1 {
		t.Fatalf("after partial clear: level = %d, want 1", b.Level())
	}
	b.observe(breach("b", time.Second, "errors", true))
	if b.Level() != 0 {
		t.Fatalf("after full clear: level = %d, want 0", b.Level())
	}

	want := []int{1, 2, 1, 0}
	if len(levels) != len(want) {
		t.Fatalf("OnChange fired %d times (%v), want %v", len(levels), levels, want)
	}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("OnChange sequence = %v, want %v", levels, want)
		}
	}
	if got := c.BrownoutShifts.Load(); got != 4 {
		t.Errorf("shifts = %d, want 4", got)
	}
	if got := c.BrownoutLevel.Load(); got != 0 {
		t.Errorf("level gauge = %d, want 0", got)
	}

	// Flight recorder saw both directions.
	var degraded, restored bool
	for _, ev := range rec.Dump() {
		if ev.Kind != obs.KindBrownout {
			continue
		}
		if len(ev.Detail) >= 8 && ev.Detail[:8] == "degraded" {
			degraded = true
		}
		if len(ev.Detail) >= 8 && ev.Detail[:8] == "restored" {
			restored = true
		}
	}
	if !degraded || !restored {
		t.Errorf("flight recorder missing transitions: degraded=%v restored=%v", degraded, restored)
	}
}

func TestBrownoutSubscribeDrivenBySLOTracker(t *testing.T) {
	clock := time.Unix(0, 0)
	tr := obs.NewSLOTracker(obs.SLOConfig{
		Objectives: []obs.SLOObjective{{
			Tenant: "*", LatencyTarget: time.Millisecond, LatencyGoal: 0.99, ErrorBudget: 0.01,
		}},
		Windows: []time.Duration{time.Second},
		Now:     func() time.Time { return clock },
	})
	b := NewBrownout(BrownoutPolicy{Enabled: true}, nil, nil)
	b.Subscribe(tr)

	// A burst of slow requests burns the latency budget → breach → level up.
	for i := 0; i < 50; i++ {
		clock = clock.Add(time.Millisecond)
		tr.Observe("t", 10*time.Millisecond, false)
	}
	if b.Level() == 0 {
		t.Fatal("sustained slow traffic did not raise the brownout level")
	}
	// A long clean tail lets the burn fall and the level restore.
	for i := 0; i < 2000; i++ {
		clock = clock.Add(time.Millisecond)
		tr.Observe("t", 10*time.Microsecond, false)
	}
	if b.Level() != 0 {
		t.Fatalf("clean traffic did not restore: level = %d", b.Level())
	}
}

func TestCountersSnapshotAndConfigEnabled(t *testing.T) {
	var c *Counters
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil counters snapshot = %+v", s)
	}
	var real Counters
	real.Retries.Add(3)
	real.Hedges.Add(2)
	s := real.Snapshot()
	if s.Retries != 3 || s.Hedges != 2 {
		t.Errorf("snapshot = %+v", s)
	}

	if (Config{}).Enabled() {
		t.Error("zero Config reports enabled")
	}
	for _, c := range []Config{
		{Budget: BudgetPolicy{Default: time.Second}},
		{Retry: RetryPolicy{Max: 1}},
		{Hedge: HedgePolicy{Enabled: true}},
		{Shed: ShedPolicy{MaxQueue: 4}},
		{Brownout: BrownoutPolicy{Enabled: true}},
	} {
		if !c.Enabled() {
			t.Errorf("Config %+v reports disabled", c)
		}
	}
}
