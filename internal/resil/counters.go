package resil

import (
	"sync/atomic"

	"darknight/internal/obs"
)

// Counters is the resilience layer's shared accounting, exported as the
// darknight_resil_* metric families. All fields are atomics; one Counters
// per server is shared by the admission path, the workers, the brownout
// controller and the chaos runner.
type Counters struct {
	// Deadline counts requests failed on an expired end-to-end budget
	// (typed ErrDeadline) before or instead of dispatch.
	Deadline atomic.Int64
	// Shed counts requests rejected by admission control (typed ErrShed).
	Shed atomic.Int64
	// Retries counts re-dispatches of failed virtual batches onto fresh
	// gangs; RetrySuccess the retries that then completed cleanly;
	// RetriesExhausted the batches that failed every permitted attempt.
	Retries          atomic.Int64
	RetrySuccess     atomic.Int64
	RetriesExhausted atomic.Int64
	// Hedges counts speculative duplicate flights launched; HedgeWins the
	// hedges that answered before the primary; HedgeLosses the hedges the
	// primary beat (their grants still released cleanly); HedgeMismatch
	// cross-verification failures — both flights completed but disagreed
	// (counted, surfaced as an integrity-class failure, never served).
	Hedges        atomic.Int64
	HedgeWins     atomic.Int64
	HedgeLosses   atomic.Int64
	HedgeMismatch atomic.Int64
	// BrownoutShifts counts level transitions; BrownoutLevel is the
	// current level (gauge).
	BrownoutShifts atomic.Int64
	BrownoutLevel  atomic.Int64
	// ChaosActions counts scripted fault-schedule actions applied.
	ChaosActions atomic.Int64
}

// Snapshot is a consistent-enough copy of the counters (each field is
// read atomically; the set is not a single linearization point, which is
// fine for monitoring).
type Snapshot struct {
	Deadline         int64
	Shed             int64
	Retries          int64
	RetrySuccess     int64
	RetriesExhausted int64
	Hedges           int64
	HedgeWins        int64
	HedgeLosses      int64
	HedgeMismatch    int64
	BrownoutShifts   int64
	BrownoutLevel    int64
	ChaosActions     int64
}

// Snapshot reads every counter. Nil-safe (zero snapshot).
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		Deadline:         c.Deadline.Load(),
		Shed:             c.Shed.Load(),
		Retries:          c.Retries.Load(),
		RetrySuccess:     c.RetrySuccess.Load(),
		RetriesExhausted: c.RetriesExhausted.Load(),
		Hedges:           c.Hedges.Load(),
		HedgeWins:        c.HedgeWins.Load(),
		HedgeLosses:      c.HedgeLosses.Load(),
		HedgeMismatch:    c.HedgeMismatch.Load(),
		BrownoutShifts:   c.BrownoutShifts.Load(),
		BrownoutLevel:    c.BrownoutLevel.Load(),
		ChaosActions:     c.ChaosActions.Load(),
	}
}

// Register exports the darknight_resil_* families on a registry.
// Nil-safe on both sides.
func (c *Counters) Register(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	counter := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counter("darknight_resil_deadline_total",
		"Requests failed on an expired end-to-end deadline budget.", &c.Deadline)
	counter("darknight_resil_shed_total",
		"Requests rejected by admission control.", &c.Shed)
	counter("darknight_resil_retries_total",
		"Failed virtual batches re-dispatched onto fresh gangs.", &c.Retries)
	counter("darknight_resil_retry_success_total",
		"Re-dispatched batches that then completed cleanly.", &c.RetrySuccess)
	counter("darknight_resil_retries_exhausted_total",
		"Batches that failed the original dispatch and every permitted retry.", &c.RetriesExhausted)
	counter("darknight_resil_hedges_total",
		"Speculative duplicate flights launched for slow primaries.", &c.Hedges)
	counter("darknight_resil_hedge_wins_total",
		"Hedged flights that answered before their primary.", &c.HedgeWins)
	counter("darknight_resil_hedge_losses_total",
		"Hedged flights the primary beat (cancelled cleanly).", &c.HedgeLosses)
	counter("darknight_resil_hedge_mismatch_total",
		"Hedge cross-verification failures: primary and hedge disagreed.", &c.HedgeMismatch)
	counter("darknight_resil_brownout_shifts_total",
		"Brownout controller level transitions (either direction).", &c.BrownoutShifts)
	r.GaugeFunc("darknight_resil_brownout_level",
		"Current brownout degradation level (0 = full service).",
		func() float64 { return float64(c.BrownoutLevel.Load()) })
	counter("darknight_resil_chaos_actions_total",
		"Scripted chaos-schedule actions applied to the fleet.", &c.ChaosActions)
}
