package resil

import (
	"math"
	"sync"
	"sync/atomic"
)

// ShedPolicy is queue-depth admission control with per-tenant priorities.
// A request is shed — rejected with ErrShed before any work — when its
// tenant's effective queue allowance is already full. High-priority
// tenants keep the full queue; lower priorities are shed progressively
// earlier, so overload degrades bronze traffic before gold.
type ShedPolicy struct {
	// MaxQueue is the admission-queue depth at which priority-1.0 traffic
	// is shed. 0 disables shedding entirely.
	MaxQueue int
	// Priorities maps tenant → share of MaxQueue that tenant may see
	// before being shed, in (0, 1]. Unlisted tenants (and "*" when
	// absent) get 1.0.
	Priorities map[string]float64
}

func (p ShedPolicy) priority(tenant string) float64 {
	if pr, ok := p.Priorities[tenant]; ok && pr > 0 && pr <= 1 {
		return pr
	}
	if pr, ok := p.Priorities["*"]; ok && pr > 0 && pr <= 1 {
		return pr
	}
	return 1
}

// Shedder applies a ShedPolicy, with a runtime tightening factor the
// brownout controller lowers under SLO pressure (1.0 = policy as
// written, 0.5 = every allowance halved). Safe for concurrent use.
type Shedder struct {
	policy ShedPolicy
	// factor holds math.Float64bits of the tightening factor.
	factor atomic.Uint64

	mu   sync.Mutex
	shed map[string]int64
}

// NewShedder builds a shedder (nil policy semantics: MaxQueue 0 never
// sheds, but the shedder still accepts brownout tightening — a tightened
// zero stays zero).
func NewShedder(p ShedPolicy) *Shedder {
	s := &Shedder{policy: p, shed: make(map[string]int64)}
	s.factor.Store(math.Float64bits(1))
	return s
}

// SetFactor installs the brownout tightening factor in (0, 1].
func (s *Shedder) SetFactor(f float64) {
	if s == nil {
		return
	}
	if f <= 0 || f > 1 {
		f = 1
	}
	s.factor.Store(math.Float64bits(f))
}

// Admit decides one admission: nil, or ErrShed when the tenant's
// allowance is full at the given queue depth. Nil-safe (always admits).
func (s *Shedder) Admit(tenant string, depth int) error {
	if s == nil || s.policy.MaxQueue <= 0 {
		return nil
	}
	f := math.Float64frombits(s.factor.Load())
	allow := int(float64(s.policy.MaxQueue) * s.policy.priority(tenant) * f)
	if allow < 1 {
		allow = 1 // never wedge: one slot always admits
	}
	if depth < allow {
		return nil
	}
	s.mu.Lock()
	s.shed[tenant]++
	s.mu.Unlock()
	return ErrShed
}

// ShedCounts returns the per-tenant shed totals.
func (s *Shedder) ShedCounts() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.shed))
	for k, v := range s.shed {
		out[k] = v
	}
	return out
}
