package resil

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/obs"
)

func chaosFleet(n int) []*gpu.ChaosDevice {
	devs := make([]*gpu.ChaosDevice, n)
	for i := range devs {
		devs[i] = gpu.NewChaos(gpu.NewHonest(i))
	}
	return devs
}

func TestScheduleValidate(t *testing.T) {
	bad := []Schedule{
		{Events: []ChaosEvent{{Kind: "meteor", Device: 0}}},
		{Events: []ChaosEvent{{Kind: "latency", Device: 0}}},         // no delay_ms
		{Events: []ChaosEvent{{Kind: "flap", Device: 0}}},            // no period_ms
		{Events: []ChaosEvent{{Kind: "partition"}}},                  // no devices
		{Events: []ChaosEvent{{Kind: "crash", Device: 0, AtMS: -5}}}, // negative time
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d validated", i)
		}
	}
	good := Schedule{Events: []ChaosEvent{
		{Kind: "crash", Device: 0, AtMS: 0, DurationMS: 10},
		{Kind: "latency", Device: 1, DelayMS: 2, DurationMS: 10},
		{Kind: "tamper", Device: 2, DurationMS: 10},
		{Kind: "flap", Device: 3, PeriodMS: 10, Count: 2},
		{Kind: "partition", Devices: []int{4, 5}, DurationMS: 10},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
}

func TestScheduleDuration(t *testing.T) {
	s := Schedule{Events: []ChaosEvent{
		{Kind: "crash", Device: 0, AtMS: 100, DurationMS: 400},
		{Kind: "flap", Device: 1, AtMS: 200, PeriodMS: 300, Count: 3}, // ends at 1100ms
	}}
	if got := s.Duration(); got != 1100*time.Millisecond {
		t.Errorf("Duration = %v, want 1.1s", got)
	}
	if got := (&Schedule{}).Duration(); got != 0 {
		t.Errorf("empty Duration = %v", got)
	}
}

func TestLoadScheduleAndCannedFiles(t *testing.T) {
	// Every canned schedule shipped with the repo must parse and validate.
	root := filepath.Join("..", "..", "testdata", "chaos")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("canned schedules missing: %v", err)
	}
	var n int
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		n++
		s, err := LoadSchedule(filepath.Join(root, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if s.Name == "" {
			t.Errorf("%s: schedule has no name", e.Name())
		}
	}
	if n < 4 {
		t.Errorf("only %d canned schedules found, want at least crash/latency/tamper/flap", n)
	}

	if _, err := LoadSchedule(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("loading a missing file succeeded")
	}
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte("{not json"), 0o644)
	if _, err := LoadSchedule(badPath); err == nil {
		t.Error("loading malformed JSON succeeded")
	}
}

func TestCompileOrderingAndOutOfRangeSkip(t *testing.T) {
	devs := chaosFleet(2)
	s := Schedule{Events: []ChaosEvent{
		{Kind: "crash", Device: 1, AtMS: 300, DurationMS: 100},
		{Kind: "tamper", Device: 0, AtMS: 100, DurationMS: 50},
		{Kind: "crash", Device: 99, AtMS: 0, DurationMS: 10},  // out of range: skipped
		{Kind: "partition", Devices: []int{0, 42}, AtMS: 200}, // 42 skipped, 0 kept
	}}
	acts := s.compile(devs)
	// Expected surviving actions: tamper@100, tamper-clear@150, partition@200,
	// crash@300, heal@400 — sorted by time.
	if len(acts) != 5 {
		t.Fatalf("compiled %d actions, want 5", len(acts))
	}
	for i := 1; i < len(acts); i++ {
		if acts[i].at < acts[i-1].at {
			t.Fatalf("actions out of order: %v after %v", acts[i].at, acts[i-1].at)
		}
	}
	for _, a := range acts {
		if a.device < 0 || a.device >= len(devs) {
			t.Fatalf("compiled action targets out-of-range device %d", a.device)
		}
	}
}

func TestRunnerPlayAppliesAndResetHeals(t *testing.T) {
	devs := chaosFleet(3)
	rec := obs.NewFlightRecorder(64)
	var c Counters
	r := NewRunner(devs, rec, &c)

	// No heal events: faults persist past Play so we can assert them.
	s := &Schedule{Name: "unit", Events: []ChaosEvent{
		{Kind: "crash", Device: 0, AtMS: 0},
		{Kind: "tamper", Device: 1, AtMS: 5},
		{Kind: "latency", Device: 2, AtMS: 10, DelayMS: 1},
	}}
	if err := r.Play(context.Background(), s); err != nil {
		t.Fatalf("Play: %v", err)
	}
	if !devs[0].Down() {
		t.Error("crash action not applied")
	}
	if got := c.ChaosActions.Load(); got != 3 {
		t.Errorf("ChaosActions = %d, want 3", got)
	}
	var chaosEvents int
	for _, ev := range rec.Dump() {
		if ev.Kind == obs.KindChaos {
			chaosEvents++
		}
	}
	if chaosEvents != 3 {
		t.Errorf("flight recorder has %d chaos events, want 3", chaosEvents)
	}

	r.Reset()
	if devs[0].Down() {
		t.Error("Reset did not heal the crashed device")
	}

	// Cancellation mid-schedule resets the actuators.
	ctx, cancel := context.WithCancel(context.Background())
	long := &Schedule{Name: "long", Events: []ChaosEvent{
		{Kind: "crash", Device: 0, AtMS: 0},
		{Kind: "crash", Device: 1, AtMS: 60_000},
	}}
	done := make(chan error, 1)
	go func() { done <- r.Play(ctx, long) }()
	deadline := time.After(5 * time.Second)
	for !devs[0].Down() {
		select {
		case <-deadline:
			t.Fatal("first action never applied")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled Play returned nil")
	}
	if devs[0].Down() {
		t.Error("cancelled Play left a device down")
	}

	// Start/stop wrapper drives the same path.
	stop := r.Start(long)
	stop()
	if devs[0].Down() || devs[1].Down() {
		t.Error("stopped schedule left devices down")
	}
}
