package tensor

import (
	"math/rand"
	"testing"

	"darknight/internal/par"
)

// naiveTransB / naiveTransA are the seed loops, kept as oracles for the
// blocked variants (MatMulRef covers the plain product).

func naiveTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += a.Data[i*k+kk] * b.Data[j*k+kk]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

func naiveTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += a.Data[kk*m+i] * b.Data[kk*n+j]
			}
		}
	}
	return out
}

// TestBlockedKernelsMatchNaive pins the blocked, goroutine-parallel kernels
// to the naive references across odd sizes (non-multiples of every block
// constant) with parallelism forced on, then repeats serially.
func TestBlockedKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sizes := []struct{ m, k, n int }{
		{1, 1, 1}, {2, 3, 4}, {5, blockK + 7, 3}, {17, 129, 33},
		{64, 2*blockK + 5, transBBlockJ + 9}, {3, 7, 2*transBBlockJ + 1},
	}
	// Restore the fan-out override even if a Fatalf fires mid-loop.
	defer par.SetMaxWorkers(par.SetMaxWorkers(0))
	for _, workers := range []int{1, 4} {
		par.SetMaxWorkers(workers)
		for _, sz := range sizes {
			a := New(sz.m, sz.k)
			b := New(sz.k, sz.n)
			a.RandNormal(rng, 1)
			b.RandNormal(rng, 1)
			a.Data[0] = 0 // exercise the zero-skip branch

			if got, want := MatMul(a, b), MatMulRef(a, b); !got.EqualApprox(want, 1e-9) {
				t.Fatalf("MatMul(%v) diverges from MatMulRef (workers=%d)", sz, workers)
			}
			bt := transpose2D(b)
			if got, want := MatMulTransB(a, bt), naiveTransB(a, bt); !got.EqualApprox(want, 1e-9) {
				t.Fatalf("MatMulTransB(%v) diverges from naive (workers=%d)", sz, workers)
			}
			at := transpose2D(a)
			if got, want := MatMulTransA(at, b), naiveTransA(at, b); !got.EqualApprox(want, 1e-9) {
				t.Fatalf("MatMulTransA(%v) diverges from naive (workers=%d)", sz, workers)
			}

			// Into variants overwrite dirty destinations completely.
			dirty := New(sz.m, sz.n)
			dirty.Fill(123)
			if !MatMulInto(dirty, a, b).EqualApprox(MatMulRef(a, b), 1e-9) {
				t.Fatalf("MatMulInto leaves stale data (%v, workers=%d)", sz, workers)
			}

			// Mat-vec paths against one-column matmul.
			x := make([]float64, sz.k)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			want := MatMulRef(a, FromSlice(x, sz.k, 1))
			got := MatVecInto(make([]float64, sz.m), a, x)
			for i := range got {
				if diff := got[i] - want.Data[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("MatVecInto(%v) diverges at %d (workers=%d)", sz, i, workers)
				}
			}
			g := make([]float64, sz.m)
			for i := range g {
				g[i] = rng.NormFloat64()
			}
			wantT := naiveTransA(a, FromSlice(g, sz.m, 1))
			gotT := MatVecTransInto(make([]float64, sz.k), a, g)
			for i := range gotT {
				if diff := gotT[i] - wantT.Data[i]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("MatVecTransInto(%v) diverges at %d (workers=%d)", sz, i, workers)
				}
			}
		}
	}
}

// TestIm2ColIntoReuse verifies a dirty pooled buffer produces the same
// patch matrix as a fresh allocation (padding zeros included).
func TestIm2ColIntoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	p := ConvParams{InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1, InH: 9, InW: 7, Groups: 1}
	in := make([]float64, p.InC*p.InH*p.InW)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	want := Im2Col(in, p)
	buf := GetScratch(want.Size())
	for i := range buf {
		buf[i] = 999 // dirty
	}
	got := Im2ColInto(FromSlice(buf, want.Shape...), in, p)
	if !got.EqualApprox(want, 0) {
		t.Fatal("Im2ColInto on a dirty buffer diverges from Im2Col")
	}
	// Col2ImInto round-trips the adjoint on a dirty destination.
	img := make([]float64, p.InC*p.InH*p.InW)
	for i := range img {
		img[i] = -5
	}
	wantImg := Col2Im(want, p)
	gotImg := Col2ImInto(img, got, p)
	for i := range wantImg {
		if wantImg[i] != gotImg[i] {
			t.Fatalf("Col2ImInto diverges at %d", i)
		}
	}
	PutScratch(buf)
}

// TestZeroWidthMatMul pins the empty-operand edge the seed kernels
// handled: products with a zero dimension return empty tensors, no panic.
func TestZeroWidthMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	if got := MatMul(a, New(2, 0)); got.Size() != 0 || got.Shape[1] != 0 {
		t.Fatalf("1x2 · 2x0 = %v, want empty 1x0", got.Shape)
	}
	if got := MatMulTransA(New(0, 3), New(0, 4)); got.Size() != 12 || got.MaxAbs() != 0 {
		t.Fatalf("0x3ᵀ · 0x4 = %v (max %v), want a 3x4 of zeros", got.Shape, got.MaxAbs())
	}
	if got := MatMulTransB(New(0, 2), New(3, 2)); got.Size() != 0 {
		t.Fatalf("0x2 · 3x2ᵀ has size %d, want 0", got.Size())
	}
	if got := MatVecTransInto(make([]float64, 2), New(0, 2), nil); len(got) != 2 {
		t.Fatal("0-row MatVecTransInto should zero its destination")
	}
}

func TestEqualApproxComparesShapes(t *testing.T) {
	a := FromSlice(make([]float64, 12), 2, 6)
	b := FromSlice(make([]float64, 12), 3, 4)
	if a.EqualApprox(b, 1) {
		t.Fatal("a [2,6] tensor must not equal a [3,4] tensor of identical data")
	}
	if !a.EqualApprox(a.Clone(), 0) {
		t.Fatal("identical tensors must compare equal")
	}
	c := FromSlice(make([]float64, 12), 12)
	if a.EqualApprox(c, 1) || c.EqualApprox(a, 1) {
		t.Fatal("rank-2 and rank-1 tensors must not compare equal")
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	s := GetScratch(100)
	if len(s) != 100 {
		t.Fatalf("GetScratch(100) has length %d", len(s))
	}
	PutScratch(s)
	if GetScratch(0) != nil {
		t.Fatal("GetScratch(0) should be nil")
	}
}
