package tensor

import "darknight/internal/scratch"

// Shared scratch arena for the float64 kernels (internal/scratch pool), so
// the conv hot loop (one patch matrix plus one gradient patch matrix per
// image) recycles buffers instead of materializing fresh ones every call.
// The pool is safe for concurrent use — worker pipelines and the
// gang-dispatch goroutines all draw from the same arena.
var floatPool scratch.Pool[float64]

// GetScratch returns a length-n float64 scratch buffer from the shared
// pool. Contents are NOT zeroed — callers that need zeros must clear it
// (the Into kernels all overwrite or zero their destinations). Return it
// with PutScratch when done.
func GetScratch(n int) []float64 { return floatPool.Get(n) }

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(s []float64) { floatPool.Put(s) }
