package tensor

import "fmt"

// ConvParams describes a 2-D convolution: square-ish kernels with
// independent stride and zero padding, NCHW layout.
type ConvParams struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	InH, InW    int
	Groups      int // 1 for dense conv; InC for depthwise (MobileNet)
}

// OutH returns the output height.
func (p ConvParams) OutH() int { return (p.InH+2*p.Pad-p.KH)/p.Stride + 1 }

// OutW returns the output width.
func (p ConvParams) OutW() int { return (p.InW+2*p.Pad-p.KW)/p.Stride + 1 }

// Validate panics if the configuration is internally inconsistent.
func (p ConvParams) Validate() {
	if p.Groups == 0 {
		panic("tensor: ConvParams.Groups must be >= 1")
	}
	if p.InC%p.Groups != 0 || p.OutC%p.Groups != 0 {
		panic(fmt.Sprintf("tensor: channels %d/%d not divisible by groups %d",
			p.InC, p.OutC, p.Groups))
	}
	if p.OutH() <= 0 || p.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapsed: %+v", p))
	}
}

// Im2Col unrolls input patches into a matrix with one column per output
// pixel and one row per (in-channel, ky, kx) triple, so that convolution
// becomes the bilinear matmul DarKnight's masking relies on ("the most
// computationally intensive operator (such as convolutions) is bilinear").
// in is a single image [C, H, W] flattened.
func Im2Col(in []float64, p ConvParams) *Tensor {
	cpg := p.InC / p.Groups // channels per group
	rows := cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	cols := oh * ow
	out := New(p.Groups, rows, cols)
	for g := 0; g < p.Groups; g++ {
		for c := 0; c < cpg; c++ {
			inC := g*cpg + c
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (c*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * cols
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue // stays zero (padding)
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							out.Data[base+oy*ow+ox] = in[(inC*p.InH+iy)*p.InW+ix]
						}
					}
				}
			}
		}
	}
	return out
}

// Col2Im is the adjoint of Im2Col: it scatters a patch matrix back into an
// image, accumulating overlaps. It is the core of the convolution input
// gradient.
func Col2Im(cols *Tensor, p ConvParams) []float64 {
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	ncols := oh * ow
	out := make([]float64, p.InC*p.InH*p.InW)
	for g := 0; g < p.Groups; g++ {
		for c := 0; c < cpg; c++ {
			inC := g*cpg + c
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (c*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * ncols
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							out[(inC*p.InH+iy)*p.InW+ix] += cols.Data[base+oy*ow+ox]
						}
					}
				}
			}
		}
	}
	return out
}

// Conv2D convolves a single image in [InC, InH, InW] with weights
// w [OutC, InC/Groups, KH, KW] and per-channel bias b (nil for none),
// returning [OutC, OutH, OutW].
func Conv2D(in []float64, w *Tensor, b []float64, p ConvParams) *Tensor {
	p.Validate()
	cols := Im2Col(in, p)
	oh, ow := p.OutH(), p.OutW()
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	npix := oh * ow
	out := New(p.OutC, oh, ow)
	for g := 0; g < p.Groups; g++ {
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		cg := FromSlice(cols.Data[g*rows*npix:(g+1)*rows*npix], rows, npix)
		res := MatMul(wg, cg) // [ocpg, npix]
		copy(out.Data[g*ocpg*npix:(g+1)*ocpg*npix], res.Data)
	}
	if b != nil {
		for oc := 0; oc < p.OutC; oc++ {
			bb := b[oc]
			seg := out.Data[oc*npix : (oc+1)*npix]
			for i := range seg {
				seg[i] += bb
			}
		}
	}
	return out
}

// Conv2DGradInput computes only dL/dIn = Col2Im(Wᵀ·gout). Unlike the full
// backward it does not need the forward input — the input gradient of a
// bilinear op is input-independent, which is what lets DarKnight offload δ
// propagation without any coding (paper §4.2, computation (2)).
func Conv2DGradInput(w *Tensor, gout *Tensor, p ConvParams) []float64 {
	p.Validate()
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	dCols := New(p.Groups, rows, npix)
	for g := 0; g < p.Groups; g++ {
		gg := FromSlice(gout.Data[g*ocpg*npix:(g+1)*ocpg*npix], ocpg, npix)
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		dcg := MatMulTransA(wg, gg)
		copy(dCols.Data[g*rows*npix:(g+1)*rows*npix], dcg.Data)
	}
	return Col2Im(dCols, p)
}

// Conv2DBackward computes the gradients of a convolution given the upstream
// gradient gout [OutC, OutH, OutW]: returns (dIn, dW, dB).
func Conv2DBackward(in []float64, w *Tensor, gout *Tensor, p ConvParams) (dIn []float64, dW *Tensor, dB []float64) {
	p.Validate()
	cols := Im2Col(in, p)
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW

	dW = New(w.Shape...)
	dColsAll := New(p.Groups, rows, npix)
	for g := 0; g < p.Groups; g++ {
		gg := FromSlice(gout.Data[g*ocpg*npix:(g+1)*ocpg*npix], ocpg, npix)
		cg := FromSlice(cols.Data[g*rows*npix:(g+1)*rows*npix], rows, npix)
		// dW_g = gout_g · cols_gᵀ  -> [ocpg, rows]
		dwg := MatMulTransB(gg, cg)
		copy(dW.Data[g*ocpg*rows:(g+1)*ocpg*rows], dwg.Data)
		// dCols_g = W_gᵀ · gout_g -> [rows, npix]
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		dcg := MatMulTransA(wg, gg)
		copy(dColsAll.Data[g*rows*npix:(g+1)*rows*npix], dcg.Data)
	}
	dIn = Col2Im(dColsAll, p)

	dB = make([]float64, p.OutC)
	for oc := 0; oc < p.OutC; oc++ {
		var s float64
		for _, v := range gout.Data[oc*npix : (oc+1)*npix] {
			s += v
		}
		dB[oc] = s
	}
	return dIn, dW, dB
}
