package tensor

import "fmt"

// ConvParams describes a 2-D convolution: square-ish kernels with
// independent stride and zero padding, NCHW layout.
type ConvParams struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	InH, InW    int
	Groups      int // 1 for dense conv; InC for depthwise (MobileNet)
}

// OutH returns the output height.
func (p ConvParams) OutH() int { return (p.InH+2*p.Pad-p.KH)/p.Stride + 1 }

// OutW returns the output width.
func (p ConvParams) OutW() int { return (p.InW+2*p.Pad-p.KW)/p.Stride + 1 }

// Validate panics if the configuration is internally inconsistent.
func (p ConvParams) Validate() {
	if p.Groups == 0 {
		panic("tensor: ConvParams.Groups must be >= 1")
	}
	if p.InC%p.Groups != 0 || p.OutC%p.Groups != 0 {
		panic(fmt.Sprintf("tensor: channels %d/%d not divisible by groups %d",
			p.InC, p.OutC, p.Groups))
	}
	if p.OutH() <= 0 || p.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapsed: %+v", p))
	}
}

// Im2Col unrolls input patches into a matrix with one column per output
// pixel and one row per (in-channel, ky, kx) triple, so that convolution
// becomes the bilinear matmul DarKnight's masking relies on ("the most
// computationally intensive operator (such as convolutions) is bilinear").
// in is a single image [C, H, W] flattened.
func Im2Col(in []float64, p ConvParams) *Tensor {
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	return Im2ColInto(New(p.Groups, rows, p.OutH()*p.OutW()), in, p)
}

// Im2ColInto unrolls patches into the caller-owned [Groups, rows, cols]
// destination (typically a pooled scratch buffer reused per image), which
// is overwritten, padding included. It returns dst.
func Im2ColInto(dst *Tensor, in []float64, p ConvParams) *Tensor {
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	cols := p.OutH() * p.OutW()
	if dst.Size() != p.Groups*rows*cols {
		panic(fmt.Sprintf("tensor: im2col destination %v, want %d elements",
			dst.Shape, p.Groups*rows*cols))
	}
	Im2ColSlices(dst.Data, in, p)
	return dst
}

// Im2ColSlices is the element-type-generic im2col: it unrolls patches of
// in into cols (fully overwritten, padding zeroed) for any scalar type.
// The float kernels here and the F_p kernels in internal/nn share it so
// the stride-1 window math — each output row collapses to one contiguous
// copy with ox clamped so ix = ox·Stride + kx − Pad stays in [0, InW) —
// is single-sourced.
func Im2ColSlices[T any](cols []T, in []T, p ConvParams) {
	var zero T
	cpg := p.InC / p.Groups // channels per group
	rows := cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	for i := range cols {
		cols[i] = zero
	}
	for g := 0; g < p.Groups; g++ {
		for c := 0; c < cpg; c++ {
			inC := g*cpg + c
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (c*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * npix
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue // stays zero (padding)
						}
						if p.Stride == 1 {
							// ix = ox + kx - Pad must lie in [0, InW):
							// the whole row is one contiguous copy.
							oxLo, oxHi := 0, ow
							if d := p.Pad - kx; d > oxLo {
								oxLo = d
							}
							if d := p.InW + p.Pad - kx; d < oxHi {
								oxHi = d
							}
							if oxHi > oxLo {
								src := (inC*p.InH+iy)*p.InW + kx - p.Pad
								copy(cols[base+oy*ow+oxLo:base+oy*ow+oxHi], in[src+oxLo:src+oxHi])
							}
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							cols[base+oy*ow+ox] = in[(inC*p.InH+iy)*p.InW+ix]
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters a patch matrix back into an
// image, accumulating overlaps. It is the core of the convolution input
// gradient.
func Col2Im(cols *Tensor, p ConvParams) []float64 {
	return Col2ImInto(make([]float64, p.InC*p.InH*p.InW), cols, p)
}

// Col2ImInto scatters a patch matrix into the caller-owned image buffer,
// which is zeroed first, and returns it.
func Col2ImInto(out []float64, cols *Tensor, p ConvParams) []float64 {
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	ncols := oh * ow
	if len(out) != p.InC*p.InH*p.InW {
		panic(fmt.Sprintf("tensor: col2im destination %d, want %d elements",
			len(out), p.InC*p.InH*p.InW))
	}
	for i := range out {
		out[i] = 0
	}
	for g := 0; g < p.Groups; g++ {
		for c := 0; c < cpg; c++ {
			inC := g*cpg + c
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (c*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * ncols
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							out[(inC*p.InH+iy)*p.InW+ix] += cols.Data[base+oy*ow+ox]
						}
					}
				}
			}
		}
	}
	return out
}

// Conv2D convolves a single image in [InC, InH, InW] with weights
// w [OutC, InC/Groups, KH, KW] and per-channel bias b (nil for none),
// returning [OutC, OutH, OutW].
func Conv2D(in []float64, w *Tensor, b []float64, p ConvParams) *Tensor {
	p.Validate()
	oh, ow := p.OutH(), p.OutW()
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	npix := oh * ow
	colsBuf := GetScratch(p.Groups * rows * npix)
	defer PutScratch(colsBuf)
	cols := Im2ColInto(FromSlice(colsBuf, p.Groups, rows, npix), in, p)
	out := New(p.OutC, oh, ow)
	for g := 0; g < p.Groups; g++ {
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		cg := FromSlice(cols.Data[g*rows*npix:(g+1)*rows*npix], rows, npix)
		// The output block is written in place — no per-group result copy.
		MatMulInto(FromSlice(out.Data[g*ocpg*npix:(g+1)*ocpg*npix], ocpg, npix), wg, cg)
	}
	if b != nil {
		for oc := 0; oc < p.OutC; oc++ {
			bb := b[oc]
			seg := out.Data[oc*npix : (oc+1)*npix]
			for i := range seg {
				seg[i] += bb
			}
		}
	}
	return out
}

// Conv2DGradInput computes only dL/dIn = Col2Im(Wᵀ·gout). Unlike the full
// backward it does not need the forward input — the input gradient of a
// bilinear op is input-independent, which is what lets DarKnight offload δ
// propagation without any coding (paper §4.2, computation (2)).
func Conv2DGradInput(w *Tensor, gout *Tensor, p ConvParams) []float64 {
	p.Validate()
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	dColsBuf := GetScratch(p.Groups * rows * npix)
	defer PutScratch(dColsBuf)
	dCols := FromSlice(dColsBuf, p.Groups, rows, npix)
	for g := 0; g < p.Groups; g++ {
		gg := FromSlice(gout.Data[g*ocpg*npix:(g+1)*ocpg*npix], ocpg, npix)
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		MatMulTransAInto(FromSlice(dCols.Data[g*rows*npix:(g+1)*rows*npix], rows, npix), wg, gg)
	}
	return Col2Im(dCols, p)
}

// Conv2DBackward computes the gradients of a convolution given the upstream
// gradient gout [OutC, OutH, OutW]: returns (dIn, dW, dB).
func Conv2DBackward(in []float64, w *Tensor, gout *Tensor, p ConvParams) (dIn []float64, dW *Tensor, dB []float64) {
	p.Validate()
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	colsBuf := GetScratch(p.Groups * rows * npix)
	dColsBuf := GetScratch(p.Groups * rows * npix)
	defer PutScratch(colsBuf)
	defer PutScratch(dColsBuf)
	cols := Im2ColInto(FromSlice(colsBuf, p.Groups, rows, npix), in, p)

	dW = New(w.Shape...)
	dColsAll := FromSlice(dColsBuf, p.Groups, rows, npix)
	for g := 0; g < p.Groups; g++ {
		gg := FromSlice(gout.Data[g*ocpg*npix:(g+1)*ocpg*npix], ocpg, npix)
		cg := FromSlice(cols.Data[g*rows*npix:(g+1)*rows*npix], rows, npix)
		// dW_g = gout_g · cols_gᵀ  -> [ocpg, rows], written in place
		MatMulTransBInto(FromSlice(dW.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows), gg, cg)
		// dCols_g = W_gᵀ · gout_g -> [rows, npix], written in place
		wg := FromSlice(w.Data[g*ocpg*rows:(g+1)*ocpg*rows], ocpg, rows)
		MatMulTransAInto(FromSlice(dColsAll.Data[g*rows*npix:(g+1)*rows*npix], rows, npix), wg, gg)
	}
	dIn = Col2Im(dColsAll, p)

	dB = make([]float64, p.OutC)
	for oc := 0; oc < p.OutC; oc++ {
		var s float64
		for _, v := range gout.Data[oc*npix : (oc+1)*npix] {
			s += v
		}
		dB[oc] = s
	}
	return dIn, dW, dB
}
