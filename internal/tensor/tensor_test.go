package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAndSize(t *testing.T) {
	a := New(2, 3, 4)
	if a.Size() != 24 || len(a.Data) != 24 {
		t.Fatalf("size = %d", a.Size())
	}
	s := New() // scalar
	if s.Size() != 1 {
		t.Fatalf("scalar size = %d", s.Size())
	}
}

func TestReshapePreservesData(t *testing.T) {
	a := New(2, 6)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	b := a.Reshape(3, 4)
	b.Data[0] = 99
	if a.Data[0] != 99 {
		t.Fatal("reshape should alias data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size-changing reshape should panic")
		}
	}()
	a.Reshape(5, 5)
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 7)
	b := New(7, 5)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)
	want := MatMul(a, b)

	bt := transpose2D(b)
	got := MatMulTransB(a, bt)
	if !got.EqualApprox(want, 1e-12) {
		t.Fatal("MatMulTransB mismatch")
	}

	at := transpose2D(a)
	got2 := MatMulTransA(at, b)
	if !got2.EqualApprox(want, 1e-12) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func transpose2D(t *Tensor) *Tensor {
	r, c := t.Shape[0], t.Shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.Data[j*r+i] = t.Data[i*c+j]
		}
	}
	return out
}

// referenceConv is a direct nested-loop convolution used as the oracle for
// the im2col implementation.
func referenceConv(in []float64, w *Tensor, b []float64, p ConvParams) []float64 {
	oh, ow := p.OutH(), p.OutW()
	out := make([]float64, p.OutC*oh*ow)
	ocpg := p.OutC / p.Groups
	cpg := p.InC / p.Groups
	for oc := 0; oc < p.OutC; oc++ {
		g := oc / ocpg
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for c := 0; c < cpg; c++ {
					ic := g*cpg + c
					for ky := 0; ky < p.KH; ky++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue
						}
						for kx := 0; kx < p.KW; kx++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							wv := w.Data[((oc*cpg+c)*p.KH+ky)*p.KW+kx]
							s += wv * in[(ic*p.InH+iy)*p.InW+ix]
						}
					}
				}
				if b != nil {
					s += b[oc]
				}
				out[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

func TestConv2DAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	configs := []ConvParams{
		{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 8, InW: 8, Groups: 1},
		{InC: 4, OutC: 6, KH: 3, KW: 3, Stride: 2, Pad: 1, InH: 9, InW: 9, Groups: 1},
		{InC: 2, OutC: 4, KH: 1, KW: 1, Stride: 1, Pad: 0, InH: 5, InW: 5, Groups: 1},
		{InC: 6, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 7, InW: 7, Groups: 6}, // depthwise
		{InC: 4, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 0, InH: 6, InW: 6, Groups: 2}, // grouped
		{InC: 3, OutC: 5, KH: 5, KW: 5, Stride: 3, Pad: 2, InH: 11, InW: 11, Groups: 1},
	}
	for ci, p := range configs {
		in := make([]float64, p.InC*p.InH*p.InW)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		w := New(p.OutC, p.InC/p.Groups, p.KH, p.KW)
		w.RandNormal(rng, 1)
		b := make([]float64, p.OutC)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Conv2D(in, w, b, p)
		want := referenceConv(in, w, b, p)
		for i := range want {
			if math.Abs(got.Data[i]-want[i]) > 1e-9 {
				t.Fatalf("config %d idx %d: %v != %v", ci, i, got.Data[i], want[i])
			}
		}
	}
}

func TestConv2DBackwardNumerically(t *testing.T) {
	// Finite-difference check on all three gradients for a small conv.
	rng := rand.New(rand.NewSource(3))
	p := ConvParams{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 5, InW: 5, Groups: 1}
	in := make([]float64, p.InC*p.InH*p.InW)
	for i := range in {
		in[i] = rng.NormFloat64()
	}
	w := New(p.OutC, p.InC, p.KH, p.KW)
	w.RandNormal(rng, 0.5)
	b := make([]float64, p.OutC)

	// Loss = sum of outputs ⇒ upstream gradient of ones.
	loss := func() float64 {
		out := Conv2D(in, w, b, p)
		var s float64
		for _, v := range out.Data {
			s += v
		}
		return s
	}
	gout := New(p.OutC, p.OutH(), p.OutW())
	gout.Fill(1)
	dIn, dW, dB := Conv2DBackward(in, w, gout, p)

	const eps = 1e-5
	check := func(name string, x []float64, grad []float64, n int) {
		for trial := 0; trial < n; trial++ {
			i := rng.Intn(len(x))
			orig := x[i]
			x[i] = orig + eps
			up := loss()
			x[i] = orig - eps
			down := loss()
			x[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-grad[i]) > 1e-4 {
				t.Fatalf("%s[%d]: numeric %v vs analytic %v", name, i, num, grad[i])
			}
		}
	}
	check("dIn", in, dIn, 10)
	check("dW", w.Data, dW.Data, 10)
	check("dB", b, dB, 3)
}

func TestIm2ColCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint property.
	rng := rand.New(rand.NewSource(4))
	p := ConvParams{InC: 3, OutC: 3, KH: 3, KW: 3, Stride: 2, Pad: 1, InH: 7, InW: 7, Groups: 1}
	x := make([]float64, p.InC*p.InH*p.InW)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	cols := Im2Col(x, p)
	y := New(cols.Shape...)
	y.RandNormal(rng, 1)

	var lhs float64
	for i := range cols.Data {
		lhs += cols.Data[i] * y.Data[i]
	}
	back := Col2Im(y, p)
	var rhs float64
	for i := range x {
		rhs += x[i] * back[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
	}
}

func TestMaxPool(t *testing.T) {
	p := PoolParams{C: 1, InH: 4, InW: 4, K: 2, Stride: 2}
	in := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out, argmax := MaxPool2D(in, p)
	want := []float64{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
	// Backward routes each gradient to the max location.
	din := MaxPool2DBackward([]float64{1, 1, 1, 1}, argmax, p)
	if din[5] != 1 || din[7] != 1 || din[13] != 1 || din[15] != 1 {
		t.Fatalf("din = %v", din)
	}
	var total float64
	for _, v := range din {
		total += v
	}
	if total != 4 {
		t.Fatalf("gradient mass = %v", total)
	}
}

func TestAvgPool(t *testing.T) {
	p := PoolParams{C: 1, InH: 4, InW: 4, K: 2, Stride: 2}
	in := []float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out := AvgPool2D(in, p)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
	din := AvgPool2DBackward([]float64{4, 4, 4, 4}, p)
	for _, v := range din {
		if v != 1 {
			t.Fatalf("din = %v", din)
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(10)
	b := New(10)
	a.RandUniform(rng, 2)
	b.RandUniform(rng, 2)
	orig := a.Clone()
	a.Add(b)
	a.AXPY(-1, b)
	if !a.EqualApprox(orig, 1e-12) {
		t.Fatal("add then subtract changed tensor")
	}
	a.Scale(3)
	a.Scale(1.0 / 3)
	if !a.EqualApprox(orig, 1e-12) {
		t.Fatal("scale round trip failed")
	}
	if orig.MaxAbs() <= 0 {
		t.Fatal("MaxAbs of random tensor should be positive")
	}
}

func TestConv2DGradInputMatchesFullBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, p := range []ConvParams{
		{InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 6, InW: 6, Groups: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1, InH: 8, InW: 8, Groups: 4},
	} {
		in := make([]float64, p.InC*p.InH*p.InW)
		for i := range in {
			in[i] = rng.NormFloat64()
		}
		w := New(p.OutC, p.InC/p.Groups, p.KH, p.KW)
		w.RandNormal(rng, 1)
		gout := New(p.OutC, p.OutH(), p.OutW())
		gout.RandNormal(rng, 1)
		want, _, _ := Conv2DBackward(in, w, gout, p)
		got := Conv2DGradInput(w, gout, p)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("dIn[%d]: %v != %v", i, got[i], want[i])
			}
		}
	}
}
