// Package tensor provides the dense float64 tensor type and the linear
// kernels (matmul, im2col convolution, pooling) that internal/nn builds its
// layers on. It is the from-scratch replacement for the Keras/TF + Intel
// DNNL stack the paper runs inside and outside the enclave.
package tensor

import (
	"fmt"
	"math"
	"math/rand"

	"darknight/internal/par"
)

// Tensor is a dense row-major float64 tensor with an arbitrary shape.
// Feature maps use NCHW order: [batch, channels, height, width].
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, have %d",
			shape, t.Size(), len(data)))
	}
	return t
}

// Size returns the total element count.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of identical size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size", t.Shape, shape))
	}
	return v
}

// Zero resets all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// RandUniform fills t with uniform values in [-a, a).
func (t *Tensor) RandUniform(rng *rand.Rand, a float64) {
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// RandNormal fills t with N(0, std²) values.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) {
	mustSameSize(t, o)
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY performs t += s·o.
func (t *Tensor) AXPY(s float64, o *Tensor) {
	mustSameSize(t, o)
	for i := range t.Data {
		t.Data[i] += s * o.Data[i]
	}
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// EqualApprox reports whether t and o have the same shape and agree
// elementwise within tol. Shapes are compared dimension by dimension, not
// by total size — a [2,6] tensor never equals a [3,4] one, even with
// identical backing data.
func (t *Tensor) EqualApprox(o *Tensor, tol float64) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameSize(a, b *Tensor) {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: size mismatch %v vs %v", a.Shape, b.Shape))
	}
}

// The matmul kernels below are cache-blocked and goroutine-parallel: row
// ranges fan out across cores (internal/par), and the shared (depth) dimension
// is processed in panels of blockK rows of B so each panel stays cache-hot
// across the rows of the output block. Every kernel has an ...Into variant
// writing a caller-owned destination, which is what lets the conv path reuse
// one pooled patch matrix per image instead of allocating per call.

// blockK is the depth-panel height: blockK rows of B (or A for the
// transposed-A product) are streamed repeatedly while they are cache-hot.
const blockK = 256

// transBBlockJ is the B-row tile of the A·Bᵀ product: that many rows of B
// are reused across every output row of a goroutine's range.
const transBBlockJ = 64

// parGrainFlops is roughly how many multiply-adds a chunk must contain to be
// worth a goroutine.
const parGrainFlops = 1 << 16

// rowGrain returns the parallel grain in output rows for a kernel doing
// perRow multiply-adds per row.
func rowGrain(perRow int) int {
	if perRow <= 0 {
		return parGrainFlops
	}
	g := parGrainFlops / perRow
	if g < 1 {
		g = 1
	}
	return g
}

// axpyFloat performs dst += s·v. The reslice both hoists the bounds check
// and keeps zero-width operands (empty v) valid.
func axpyFloat(dst []float64, s float64, v []float64) {
	dst = dst[:len(v)]
	for j, x := range v {
		dst[j] += s * x
	}
}

// dotFloat returns <a, b> with 4-way unrolled accumulation.
func dotFloat(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func checkMatMulDst(dst *Tensor, m, n int) {
	if len(dst.Shape) != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul destination %v, want [%d %d]", dst.Shape, m, n))
	}
}

// MatMul computes C = A·B for 2-D tensors (m×k)·(k×n).
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v · %v", a.Shape, b.Shape))
	}
	return MatMulInto(New(a.Shape[0], b.Shape[1]), a, b)
}

// MatMulInto computes dst = A·B into the caller-owned m×n destination,
// which is overwritten. It returns dst.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v · %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	checkMatMulDst(dst, m, n)
	par.For(m, rowGrain(k*n), func(lo, hi int) {
		out := dst.Data[lo*n : hi*n]
		for i := range out {
			out[i] = 0
		}
		for kk := 0; kk < k; kk += blockK {
			ke := kk + blockK
			if ke > k {
				ke = k
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*k+kk : i*k+ke]
				orow := dst.Data[i*n : (i+1)*n]
				for k2, av := range arow {
					if av == 0 {
						continue
					}
					axpyFloat(orow, av, b.Data[(kk+k2)*n:(kk+k2+1)*n])
				}
			}
		}
	})
	return dst
}

// MatMulRef is the retained naive single-threaded i-k-j matmul, the seed
// kernel. It is the oracle for the blocked/parallel kernels' equivalence
// tests and the baseline BenchmarkKernels measures speedups against.
func MatMulRef(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v · %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes C = A·Bᵀ for (m×k)·(n×k) operands, the layout the
// dense backward pass prefers.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTransB shapes %v · %vᵀ", a.Shape, b.Shape))
	}
	return MatMulTransBInto(New(a.Shape[0], b.Shape[0]), a, b)
}

// MatMulTransBInto computes dst = A·Bᵀ into the caller-owned m×n
// destination, which is overwritten. It returns dst.
func MatMulTransBInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTransB shapes %v · %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	checkMatMulDst(dst, m, n)
	par.For(m, rowGrain(k*n), func(lo, hi int) {
		for jj := 0; jj < n; jj += transBBlockJ {
			je := jj + transBBlockJ
			if je > n {
				je = n
			}
			for i := lo; i < hi; i++ {
				arow := a.Data[i*k : (i+1)*k]
				orow := dst.Data[i*n : (i+1)*n]
				for j := jj; j < je; j++ {
					orow[j] = dotFloat(arow, b.Data[j*k:(j+1)*k])
				}
			}
		}
	})
	return dst
}

// MatMulTransA computes C = Aᵀ·B for (k×m)·(k×n) operands.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTransA shapes %vᵀ · %v", a.Shape, b.Shape))
	}
	return MatMulTransAInto(New(a.Shape[1], b.Shape[1]), a, b)
}

// MatMulTransAInto computes dst = Aᵀ·B into the caller-owned m×n
// destination, which is overwritten. It returns dst.
func MatMulTransAInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTransA shapes %vᵀ · %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	checkMatMulDst(dst, m, n)
	par.For(m, rowGrain(k*n), func(lo, hi int) {
		out := dst.Data[lo*n : hi*n]
		for i := range out {
			out[i] = 0
		}
		for kk := 0; kk < k; kk++ {
			arow := a.Data[kk*m : (kk+1)*m]
			brow := b.Data[kk*n : (kk+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				axpyFloat(dst.Data[i*n:(i+1)*n], av, brow)
			}
		}
	})
	return dst
}

// MatVecInto computes dst = W·x for W m×k and len(x) = k, overwriting the
// caller-owned length-m destination. The dense layers' float forward path.
func MatVecInto(dst []float64, w *Tensor, x []float64) []float64 {
	if len(w.Shape) != 2 || w.Shape[1] != len(x) || w.Shape[0] != len(dst) {
		panic(fmt.Sprintf("tensor: matvec shapes %v · %d -> %d", w.Shape, len(x), len(dst)))
	}
	k := w.Shape[1]
	par.For(len(dst), rowGrain(k), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = dotFloat(w.Data[i*k:(i+1)*k], x)
		}
	})
	return dst
}

// MatVecTransInto computes dst = Wᵀ·g for W m×k and len(g) = m, overwriting
// the caller-owned length-k destination. The dense layers' input-gradient
// path; parallelism splits the output columns so goroutines never share a
// destination element.
func MatVecTransInto(dst []float64, w *Tensor, g []float64) []float64 {
	if len(w.Shape) != 2 || w.Shape[0] != len(g) || w.Shape[1] != len(dst) {
		panic(fmt.Sprintf("tensor: matvecTrans shapes %vᵀ · %d -> %d", w.Shape, len(g), len(dst)))
	}
	k := w.Shape[1]
	par.For(k, rowGrain(len(g)), func(lo, hi int) {
		out := dst[lo:hi]
		for i := range out {
			out[i] = 0
		}
		for i, gv := range g {
			if gv == 0 {
				continue
			}
			axpyFloat(out, gv, w.Data[i*k+lo:i*k+hi])
		}
	})
	return dst
}
