// Package tensor provides the dense float64 tensor type and the linear
// kernels (matmul, im2col convolution, pooling) that internal/nn builds its
// layers on. It is the from-scratch replacement for the Keras/TF + Intel
// DNNL stack the paper runs inside and outside the enclave.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 tensor with an arbitrary shape.
// Feature maps use NCHW order: [batch, channels, height, width].
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) in a tensor of the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, have %d",
			shape, t.Size(), len(data)))
	}
	return t
}

// Size returns the total element count.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view with a new shape of identical size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	v := &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
	if v.Size() != t.Size() {
		panic(fmt.Sprintf("tensor: reshape %v -> %v changes size", t.Shape, shape))
	}
	return v
}

// Zero resets all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// RandUniform fills t with uniform values in [-a, a).
func (t *Tensor) RandUniform(rng *rand.Rand, a float64) {
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// RandNormal fills t with N(0, std²) values.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Add accumulates o into t elementwise.
func (t *Tensor) Add(o *Tensor) {
	mustSameSize(t, o)
	for i := range t.Data {
		t.Data[i] += o.Data[i]
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AXPY performs t += s·o.
func (t *Tensor) AXPY(s float64, o *Tensor) {
	mustSameSize(t, o)
	for i := range t.Data {
		t.Data[i] += s * o.Data[i]
	}
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// EqualApprox reports whether t and o agree elementwise within tol.
func (t *Tensor) EqualApprox(o *Tensor, tol float64) bool {
	if t.Size() != o.Size() {
		return false
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameSize(a, b *Tensor) {
	if a.Size() != b.Size() {
		panic(fmt.Sprintf("tensor: size mismatch %v vs %v", a.Shape, b.Shape))
	}
}

// MatMul computes C = A·B for 2-D tensors (m×k)·(k×n).
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmul shapes %v · %v", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// MatMulTransB computes C = A·Bᵀ for (m×k)·(n×k) operands, the layout the
// dense backward pass prefers.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: matmulTransB shapes %v · %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			out.Data[i*n+j] = s
		}
	}
	return out
}

// MatMulTransA computes C = Aᵀ·B for (k×m)·(k×n) operands.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: matmulTransA shapes %vᵀ · %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for kk := 0; kk < k; kk++ {
		arow := a.Data[kk*m : (kk+1)*m]
		brow := b.Data[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}
