package tensor

import "math"

// PoolParams describes a 2-D max or average pooling window over a single
// [C, H, W] image.
type PoolParams struct {
	C, InH, InW int
	K, Stride   int
}

// OutH returns the pooled height.
func (p PoolParams) OutH() int { return (p.InH-p.K)/p.Stride + 1 }

// OutW returns the pooled width.
func (p PoolParams) OutW() int { return (p.InW-p.K)/p.Stride + 1 }

// MaxPool2D pools in and also returns the argmax indices (into the input
// plane) that the backward pass routes gradients through. MaxPool is one of
// the non-linear ops DarKnight keeps inside the TEE.
func MaxPool2D(in []float64, p PoolParams) (out []float64, argmax []int) {
	oh, ow := p.OutH(), p.OutW()
	out = make([]float64, p.C*oh*ow)
	argmax = make([]int, p.C*oh*ow)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bestIdx := -1
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						idx := (c*p.InH+iy)*p.InW + ix
						if v := in[idx]; v > best {
							best = v
							bestIdx = idx
						}
					}
				}
				o := (c*oh+oy)*ow + ox
				out[o] = best
				argmax[o] = bestIdx
			}
		}
	}
	return out, argmax
}

// MaxPool2DBackward scatters gout through the stored argmax indices.
func MaxPool2DBackward(gout []float64, argmax []int, p PoolParams) []float64 {
	din := make([]float64, p.C*p.InH*p.InW)
	for i, idx := range argmax {
		din[idx] += gout[i]
	}
	return din
}

// AvgPool2D average-pools in (used by ResNet/MobileNet global pooling when
// K equals the spatial extent).
func AvgPool2D(in []float64, p PoolParams) []float64 {
	oh, ow := p.OutH(), p.OutW()
	out := make([]float64, p.C*oh*ow)
	norm := 1.0 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float64
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						s += in[(c*p.InH+iy)*p.InW+ix]
					}
				}
				out[(c*oh+oy)*ow+ox] = s * norm
			}
		}
	}
	return out
}

// AvgPool2DBackward spreads gout uniformly across each pooling window.
func AvgPool2DBackward(gout []float64, p PoolParams) []float64 {
	oh, ow := p.OutH(), p.OutW()
	din := make([]float64, p.C*p.InH*p.InW)
	norm := 1.0 / float64(p.K*p.K)
	for c := 0; c < p.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				g := gout[(c*oh+oy)*ow+ox] * norm
				for ky := 0; ky < p.K; ky++ {
					iy := oy*p.Stride + ky
					for kx := 0; kx < p.K; kx++ {
						ix := ox*p.Stride + kx
						din[(c*p.InH+iy)*p.InW+ix] += g
					}
				}
			}
		}
	}
	return din
}
