package nn

import (
	"fmt"

	"darknight/internal/tensor"
)

// ReLU is the rectifier activation. In DarKnight it is a TEE-resident
// non-linear op (§3: "performing non-linear operations (ReLU, Maxpool)").
type ReLU struct {
	name  string
	shape []int
	mask  []bool
}

// NewReLU constructs a ReLU over the given geometry.
func NewReLU(name string, shape ...int) *ReLU {
	return &ReLU{name: name, shape: append([]int(nil), shape...)}
}

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// OutShape implements Layer.
func (r *ReLU) OutShape() []int { return r.shape }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Stats implements Layer.
func (r *ReLU) Stats() []LayerStat {
	n := prod(r.shape)
	return []LayerStat{{Name: r.name, Class: ClassReLU, MACs: n, InElems: n, OutElems: n}}
}

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	r.mask = make([]bool, x.Size())
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.New(gout.Shape...)
	for i, pass := range r.mask {
		if pass {
			din.Data[i] = gout.Data[i]
		}
	}
	return din
}

// MaxPool is 2-D max pooling, a TEE-resident non-linear op.
type MaxPool struct {
	name   string
	p      tensor.PoolParams
	argmax []int
}

// NewMaxPool constructs a max-pooling layer.
func NewMaxPool(name string, p tensor.PoolParams) *MaxPool {
	return &MaxPool{name: name, p: p}
}

// Name implements Layer.
func (m *MaxPool) Name() string { return m.name }

// OutShape implements Layer.
func (m *MaxPool) OutShape() []int { return []int{m.p.C, m.p.OutH(), m.p.OutW()} }

// Params implements Layer.
func (m *MaxPool) Params() []*Param { return nil }

// Stats implements Layer.
func (m *MaxPool) Stats() []LayerStat {
	out := int64(m.p.C) * int64(m.p.OutH()) * int64(m.p.OutW())
	return []LayerStat{{
		Name: m.name, Class: ClassMaxPool,
		MACs:    out * int64(m.p.K) * int64(m.p.K), // comparisons
		InElems: int64(m.p.C) * int64(m.p.InH) * int64(m.p.InW), OutElems: out,
	}}
}

// Forward implements Layer.
func (m *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, argmax := tensor.MaxPool2D(x.Data, m.p)
	m.argmax = argmax
	return tensor.FromSlice(out, m.p.C, m.p.OutH(), m.p.OutW())
}

// Backward implements Layer.
func (m *MaxPool) Backward(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.MaxPool2DBackward(gout.Data, m.argmax, m.p)
	return tensor.FromSlice(din, m.p.C, m.p.InH, m.p.InW)
}

// AvgPool is 2-D average pooling (global pooling in ResNet/MobileNet heads).
type AvgPool struct {
	name string
	p    tensor.PoolParams
}

// NewAvgPool constructs an average-pooling layer.
func NewAvgPool(name string, p tensor.PoolParams) *AvgPool {
	return &AvgPool{name: name, p: p}
}

// Name implements Layer.
func (a *AvgPool) Name() string { return a.name }

// OutShape implements Layer.
func (a *AvgPool) OutShape() []int { return []int{a.p.C, a.p.OutH(), a.p.OutW()} }

// Params implements Layer.
func (a *AvgPool) Params() []*Param { return nil }

// Stats implements Layer.
func (a *AvgPool) Stats() []LayerStat {
	out := int64(a.p.C) * int64(a.p.OutH()) * int64(a.p.OutW())
	return []LayerStat{{
		Name: a.name, Class: ClassOther,
		MACs:    out * int64(a.p.K) * int64(a.p.K),
		InElems: int64(a.p.C) * int64(a.p.InH) * int64(a.p.InW), OutElems: out,
	}}
}

// Forward implements Layer.
func (a *AvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.AvgPool2D(x.Data, a.p)
	return tensor.FromSlice(out, a.p.C, a.p.OutH(), a.p.OutW())
}

// Backward implements Layer.
func (a *AvgPool) Backward(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.AvgPool2DBackward(gout.Data, a.p)
	return tensor.FromSlice(din, a.p.C, a.p.InH, a.p.InW)
}

// Flatten reshapes [C,H,W] feature maps into a dense-layer vector.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs a flatten layer for the given input geometry.
func NewFlatten(name string, inShape ...int) *Flatten {
	return &Flatten{name: name, inShape: append([]int(nil), inShape...)}
}

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// OutShape implements Layer.
func (f *Flatten) OutShape() []int { return []int{int(prod(f.inShape))} }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Stats implements Layer.
func (f *Flatten) Stats() []LayerStat {
	n := prod(f.inShape)
	return []LayerStat{{Name: f.name, Class: ClassOther, InElems: n, OutElems: n}}
}

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if int64(x.Size()) != prod(f.inShape) {
		panic(fmt.Sprintf("nn: %s input size %d, want %d", f.name, x.Size(), prod(f.inShape)))
	}
	return x.Reshape(x.Size())
}

// Backward implements Layer.
func (f *Flatten) Backward(gout *tensor.Tensor) *tensor.Tensor {
	return gout.Reshape(f.inShape...)
}
