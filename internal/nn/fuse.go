package nn

// This file is the fused-offload compile pass. DarKnight offloads every
// bilinear layer as its own coded gang flight; but when a model stacks
// linear layers back to back — factorized dense operators, bottleneck
// 1×1 convolution chains with no interposed TEE-side nonlinearity — the
// per-layer flights can share one persistent gang conversation. The pass
// runs once per model and groups maximal runs of directly consecutive
// offloadable linear layers into FusedBlocks; the scheduler dispatches
// each block as a single flight (see internal/sched), with the per-layer
// coding math unchanged so outputs stay bit-identical.

// FusedBlock is one maximal run of directly consecutive offloadable
// linear layers inside a Sequential container.
type FusedBlock struct {
	// Seq is the container holding the run.
	Seq *Sequential
	// Start is the child index of the run's first layer within Seq.
	Start int
	// Layers is the run in forward order; always length >= 2.
	Layers []Linear
}

// Depth returns the number of layers fused into the block.
func (b FusedBlock) Depth() int { return len(b.Layers) }

// FusionPlan is the compile pass output: for every Sequential in the
// model, the fused blocks found among its direct children, addressable by
// the child index the run starts at. Containers are identified by
// pointer, so the plan is only valid for the model it was compiled from.
type FusionPlan struct {
	blocks map[*Sequential]map[int]FusedBlock
	all    []FusedBlock
}

// CompileFusion walks the model and groups maximal runs of directly
// consecutive offloadable linear layers (n >= 2) into fused blocks. A
// run breaks at any interposed layer the TEE must evaluate between the
// linear ops — activation, pooling, normalization — and at container
// boundaries: fusion never reaches across a Residual branch join, because
// the add is a TEE-side op on decoded values.
func CompileFusion(m *Model) *FusionPlan {
	p := &FusionPlan{blocks: make(map[*Sequential]map[int]FusedBlock)}
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			p.scan(v)
			for _, c := range v.Layers() {
				walk(c)
			}
		case *Residual:
			walk(v.body)
			if v.skip != nil {
				walk(v.skip)
			}
		}
	}
	walk(m.Stack)
	return p
}

// scan finds the maximal consecutive-linear runs among seq's direct
// children.
func (p *FusionPlan) scan(seq *Sequential) {
	children := seq.Layers()
	i := 0
	for i < len(children) {
		lin, ok := children[i].(Linear)
		if !ok {
			i++
			continue
		}
		run := []Linear{lin}
		j := i + 1
		for j < len(children) {
			next, ok := children[j].(Linear)
			if !ok {
				break
			}
			run = append(run, next)
			j++
		}
		if len(run) >= 2 {
			b := FusedBlock{Seq: seq, Start: i, Layers: run}
			if p.blocks[seq] == nil {
				p.blocks[seq] = make(map[int]FusedBlock)
			}
			p.blocks[seq][i] = b
			p.all = append(p.all, b)
		}
		i = j
	}
}

// BlockAt returns the fused block starting at child index idx of seq, if
// the plan has one.
func (p *FusionPlan) BlockAt(seq *Sequential, idx int) (FusedBlock, bool) {
	if p == nil {
		return FusedBlock{}, false
	}
	b, ok := p.blocks[seq][idx]
	return b, ok
}

// Blocks returns every fused block of the plan in compile order.
func (p *FusionPlan) Blocks() []FusedBlock { return p.all }

// FusedLayers returns the total number of linear layers covered by fused
// blocks.
func (p *FusionPlan) FusedLayers() int {
	n := 0
	for _, b := range p.all {
		n += len(b.Layers)
	}
	return n
}
