package nn

import (
	"math"

	"darknight/internal/tensor"
)

// SoftmaxCrossEntropy computes the fused softmax + cross-entropy loss for a
// single example and the gradient w.r.t. the logits (softmax(x) - onehot).
// It runs in the TEE in DarKnight: the loss touches raw labels.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (loss float64, grad *tensor.Tensor) {
	n := logits.Size()
	if label < 0 || label >= n {
		panic("nn: label out of range")
	}
	// Stable softmax.
	maxv := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	probs := make([]float64, n)
	for i, v := range logits.Data {
		e := math.Exp(v - maxv)
		probs[i] = e
		sum += e
	}
	grad = tensor.New(n)
	for i := range probs {
		probs[i] /= sum
		grad.Data[i] = probs[i]
	}
	grad.Data[label] -= 1
	loss = -math.Log(math.Max(probs[label], 1e-300))
	return loss, grad
}

// Argmax returns the index of the largest logit — the predicted class.
func Argmax(logits *tensor.Tensor) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range logits.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
