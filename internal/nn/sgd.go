package nn

import "darknight/internal/tensor"

// SGD is plain stochastic gradient descent with optional momentum — the
// update rule in the paper's Eq (3): W ← W − η·∇W.
type SGD struct {
	LR       float64
	Momentum float64
	velocity map[*Param]*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies the accumulated gradients (already averaged by the caller)
// to the parameters and clears them.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum != 0 {
			v, ok := s.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape...)
				s.velocity[p] = v
			}
			v.Scale(s.Momentum)
			v.AXPY(1, p.Grad)
			p.W.AXPY(-s.LR, v)
		} else {
			p.W.AXPY(-s.LR, p.Grad)
		}
		p.ZeroGrad()
	}
}
