package nn

import (
	"math"

	"darknight/internal/tensor"
)

// BatchNorm normalizes each channel and applies a learnable affine
// transform. Because this framework processes one example at a time (the
// masking pipeline requires per-input tensors), training-time statistics
// are computed per example over the spatial extent (instance
// normalization) while running estimates accumulate for inference — a
// standard substitution that preserves what matters to DarKnight:
// normalization is a TEE-resident, computation-heavy non-linear op that
// caps the achievable GPU speedup for ResNet/MobileNet (paper §7.1).
type BatchNorm struct {
	name    string
	c, h, w int
	eps     float64
	mom     float64

	gamma, beta *Param

	runMean, runVar []float64

	// forward cache
	lastIn *tensor.Tensor
	mean   []float64
	invStd []float64
	normed []float64
}

// NewBatchNorm constructs a normalization layer over [c, h, w] maps.
func NewBatchNorm(name string, c, h, w int) *BatchNorm {
	g := tensor.New(c)
	g.Fill(1)
	bn := &BatchNorm{
		name: name, c: c, h: h, w: w, eps: 1e-5, mom: 0.1,
		gamma:   &Param{Name: name + ".gamma", W: g, Grad: tensor.New(c)},
		beta:    &Param{Name: name + ".beta", W: tensor.New(c), Grad: tensor.New(c)},
		runMean: make([]float64, c),
		runVar:  make([]float64, c),
	}
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (b *BatchNorm) Name() string { return b.name }

// OutShape implements Layer.
func (b *BatchNorm) OutShape() []int { return []int{b.c, b.h, b.w} }

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Stats implements Layer.
func (b *BatchNorm) Stats() []LayerStat {
	n := int64(b.c) * int64(b.h) * int64(b.w)
	return []LayerStat{{
		Name: b.name, Class: ClassBatchNorm,
		// mean + var + normalize + affine ≈ 4 passes of n MACs each
		MACs:    4 * n,
		InElems: n, OutElems: n, Params: 2 * int64(b.c),
	}}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	plane := b.h * b.w
	out := tensor.New(b.c, b.h, b.w)
	b.lastIn = x
	b.mean = make([]float64, b.c)
	b.invStd = make([]float64, b.c)
	b.normed = make([]float64, x.Size())
	for c := 0; c < b.c; c++ {
		seg := x.Data[c*plane : (c+1)*plane]
		var mean, variance float64
		if train {
			for _, v := range seg {
				mean += v
			}
			mean /= float64(plane)
			for _, v := range seg {
				d := v - mean
				variance += d * d
			}
			variance /= float64(plane)
			b.runMean[c] = (1-b.mom)*b.runMean[c] + b.mom*mean
			b.runVar[c] = (1-b.mom)*b.runVar[c] + b.mom*variance
		} else {
			mean = b.runMean[c]
			variance = b.runVar[c]
		}
		inv := 1 / math.Sqrt(variance+b.eps)
		b.mean[c] = mean
		b.invStd[c] = inv
		g, be := b.gamma.W.Data[c], b.beta.W.Data[c]
		for i, v := range seg {
			n := (v - mean) * inv
			b.normed[c*plane+i] = n
			out.Data[c*plane+i] = g*n + be
		}
	}
	return out
}

// Backward implements Layer (instance-norm gradient over the spatial
// extent, the train-mode statistics above).
func (b *BatchNorm) Backward(gout *tensor.Tensor) *tensor.Tensor {
	plane := b.h * b.w
	din := tensor.New(b.c, b.h, b.w)
	n := float64(plane)
	for c := 0; c < b.c; c++ {
		g := b.gamma.W.Data[c]
		inv := b.invStd[c]
		gseg := gout.Data[c*plane : (c+1)*plane]
		nseg := b.normed[c*plane : (c+1)*plane]

		var sumG, sumGN float64
		for i, gv := range gseg {
			sumG += gv
			sumGN += gv * nseg[i]
			// parameter grads
			b.gamma.Grad.Data[c] += gv * nseg[i]
			b.beta.Grad.Data[c] += gv
		}
		for i, gv := range gseg {
			din.Data[c*plane+i] = g * inv * (gv - sumG/n - nseg[i]*sumGN/n)
		}
	}
	return din
}
