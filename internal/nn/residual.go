package nn

import (
	"fmt"

	"darknight/internal/tensor"
)

// Sequential chains layers; it is itself a Layer, which lets residual
// blocks nest arbitrary bodies.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Layers exposes the children (the masked scheduler walks them).
func (s *Sequential) Layers() []Layer { return s.layers }

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) { s.layers = append(s.layers, layers...) }

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// OutShape implements Layer.
func (s *Sequential) OutShape() []int {
	if len(s.layers) == 0 {
		return nil
	}
	return s.layers[len(s.layers)-1].OutShape()
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Stats implements Layer.
func (s *Sequential) Stats() []LayerStat {
	var out []LayerStat
	for _, l := range s.layers {
		out = append(out, l.Stats()...)
	}
	return out
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(gout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		gout = s.layers[i].Backward(gout)
	}
	return gout
}

// Residual computes body(x) + skip(x), the ResNet/MobileNetV2 building
// block. A nil skip means identity (requires matching shapes).
type Residual struct {
	name string
	body Layer
	skip Layer // nil = identity
}

// NewResidual builds a residual block.
func NewResidual(name string, body, skip Layer) *Residual {
	return &Residual{name: name, body: body, skip: skip}
}

// Body returns the main branch.
func (r *Residual) Body() Layer { return r.body }

// Skip returns the shortcut branch (nil = identity).
func (r *Residual) Skip() Layer { return r.skip }

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// OutShape implements Layer.
func (r *Residual) OutShape() []int { return r.body.OutShape() }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	out := r.body.Params()
	if r.skip != nil {
		out = append(out, r.skip.Params()...)
	}
	return out
}

// Stats implements Layer.
func (r *Residual) Stats() []LayerStat {
	out := r.body.Stats()
	if r.skip != nil {
		out = append(out, r.skip.Stats()...)
	}
	n := prod(r.body.OutShape())
	out = append(out, LayerStat{Name: r.name + ".add", Class: ClassOther, MACs: n, InElems: 2 * n, OutElems: n})
	return out
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := r.body.Forward(x, train)
	var shortcut *tensor.Tensor
	if r.skip != nil {
		shortcut = r.skip.Forward(x, train)
	} else {
		shortcut = x
	}
	if main.Size() != shortcut.Size() {
		panic(fmt.Sprintf("nn: %s residual shape mismatch %v vs %v",
			r.name, main.Shape, shortcut.Shape))
	}
	out := main.Clone()
	out.Add(shortcut)
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(gout *tensor.Tensor) *tensor.Tensor {
	dBody := r.body.Backward(gout)
	var dSkip *tensor.Tensor
	if r.skip != nil {
		dSkip = r.skip.Backward(gout)
	} else {
		dSkip = gout
	}
	out := dBody.Clone()
	out.Add(dSkip)
	return out
}
