package nn

import (
	"fmt"
	"math"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/tensor"
)

// Conv2D is a (optionally grouped/depthwise) 2-D convolution layer.
type Conv2D struct {
	name   string
	p      tensor.ConvParams
	w      *Param
	b      *Param
	lastIn *tensor.Tensor
}

// NewConv2D constructs a convolution with Kaiming-normal init.
func NewConv2D(name string, p tensor.ConvParams, rng *rand.Rand) *Conv2D {
	p.Validate()
	cpg := p.InC / p.Groups
	w := tensor.New(p.OutC, cpg, p.KH, p.KW)
	fanIn := float64(cpg * p.KH * p.KW)
	w.RandNormal(rng, math.Sqrt(2.0/fanIn))
	return &Conv2D{
		name: name, p: p,
		w: &Param{Name: name + ".w", W: w, Grad: tensor.New(p.OutC, cpg, p.KH, p.KW)},
		b: &Param{Name: name + ".b", W: tensor.New(p.OutC), Grad: tensor.New(p.OutC)},
	}
}

// Conv returns the convolution geometry.
func (c *Conv2D) Conv() tensor.ConvParams { return c.p }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape implements Layer.
func (c *Conv2D) OutShape() []int { return []int{c.p.OutC, c.p.OutH(), c.p.OutW()} }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Stats implements Layer.
func (c *Conv2D) Stats() []LayerStat {
	cpg := int64(c.p.InC / c.p.Groups)
	outElems := int64(c.p.OutC) * int64(c.p.OutH()) * int64(c.p.OutW())
	return []LayerStat{{
		Name: c.name, Class: ClassLinear,
		MACs:    outElems * cpg * int64(c.p.KH) * int64(c.p.KW),
		InElems: int64(c.p.InC) * int64(c.p.InH) * int64(c.p.InW), OutElems: outElems,
		Params: int64(c.p.OutC)*cpg*int64(c.p.KH)*int64(c.p.KW) + int64(c.p.OutC),
	}}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size() != c.InLen() {
		panic(fmt.Sprintf("nn: %s input size %d, want %d", c.name, x.Size(), c.InLen()))
	}
	c.lastIn = x
	return tensor.Conv2D(x.Data, c.w.W, c.b.W.Data, c.p)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gout *tensor.Tensor) *tensor.Tensor {
	din, dw, db := tensor.Conv2DBackward(c.lastIn.Data, c.w.W, gout, c.p)
	c.w.Grad.Add(dw)
	for i := range db {
		c.b.Grad.Data[i] += db[i]
	}
	return tensor.FromSlice(din, c.p.InC, c.p.InH, c.p.InW)
}

// BackwardInputOnly implements Linear. It deliberately avoids the cached
// forward input: dIn of a bilinear op depends only on W and gout, which is
// why the masked pipeline can call it for any example without re-priming
// the layer.
func (c *Conv2D) BackwardInputOnly(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.Conv2DGradInput(c.w.W, gout, c.p)
	return tensor.FromSlice(din, c.p.InC, c.p.InH, c.p.InW)
}

// InLen implements Linear.
func (c *Conv2D) InLen() int { return c.p.InC * c.p.InH * c.p.InW }

// OutLen implements Linear.
func (c *Conv2D) OutLen() int { return c.p.OutC * c.p.OutH() * c.p.OutW() }

// WLen implements Linear.
func (c *Conv2D) WLen() int { return c.w.W.Size() }

// WeightData implements Linear.
func (c *Conv2D) WeightData() []float64 { return c.w.W.Data }

// BiasData implements Linear.
func (c *Conv2D) BiasData() []float64 { return c.b.W.Data }

// LinearForwardFloat implements Linear (no bias).
func (c *Conv2D) LinearForwardFloat(x []float64) []float64 {
	return tensor.Conv2D(x, c.w.W, nil, c.p).Data
}

// LinearForwardField implements Linear: the convolution evaluated exactly
// over F_p on quantized weights and (possibly coded) quantized inputs —
// the kernel a DarKnight GPU worker runs.
func (c *Conv2D) LinearForwardField(wq, x field.Vec) field.Vec {
	p := c.p
	cols, rows, npix := fieldIm2Col(x, p)
	ocpg := p.OutC / p.Groups
	out := make(field.Vec, p.OutC*npix)
	for g := 0; g < p.Groups; g++ {
		for oc := 0; oc < ocpg; oc++ {
			wRow := wq[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			oRow := out[(g*ocpg+oc)*npix : (g*ocpg+oc+1)*npix]
			for r := 0; r < rows; r++ {
				wv := wRow[r]
				if wv == 0 {
					continue
				}
				cRow := cols[(g*rows+r)*npix : (g*rows+r+1)*npix]
				for j := 0; j < npix; j++ {
					oRow[j] = field.MulAdd(oRow[j], wv, cRow[j])
				}
			}
		}
	}
	return out
}

// GradWeightsField implements Linear: dW = delta · colsᵀ over F_p, where
// delta is the (scaled, combined) output gradient [OutC×OutH×OutW] and x is
// the (coded) layer input.
func (c *Conv2D) GradWeightsField(delta, x field.Vec) field.Vec {
	p := c.p
	cols, rows, npix := fieldIm2Col(x, p)
	ocpg := p.OutC / p.Groups
	out := make(field.Vec, p.OutC*rows)
	for g := 0; g < p.Groups; g++ {
		for oc := 0; oc < ocpg; oc++ {
			dRow := delta[(g*ocpg+oc)*npix : (g*ocpg+oc+1)*npix]
			oRow := out[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			for r := 0; r < rows; r++ {
				cRow := cols[(g*rows+r)*npix : (g*rows+r+1)*npix]
				oRow[r] = field.Dot(dRow, cRow)
			}
		}
	}
	return out
}

// AddGradW implements Linear.
func (c *Conv2D) AddGradW(dw []float64, s float64) {
	for i, v := range dw {
		c.w.Grad.Data[i] += s * v
	}
}

// AddGradB implements Linear.
func (c *Conv2D) AddGradB(gout *tensor.Tensor, s float64) {
	npix := c.p.OutH() * c.p.OutW()
	for oc := 0; oc < c.p.OutC; oc++ {
		var sum float64
		for _, v := range gout.Data[oc*npix : (oc+1)*npix] {
			sum += v
		}
		c.b.Grad.Data[oc] += s * sum
	}
}

// fieldIm2Col is tensor.Im2Col over F_p: pure data movement, zero padding.
func fieldIm2Col(in field.Vec, p tensor.ConvParams) (cols field.Vec, rows, npix int) {
	cpg := p.InC / p.Groups
	rows = cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	npix = oh * ow
	cols = make(field.Vec, p.Groups*rows*npix)
	for g := 0; g < p.Groups; g++ {
		for ci := 0; ci < cpg; ci++ {
			inC := g*cpg + ci
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (ci*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * npix
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							cols[base+oy*ow+ox] = in[(inC*p.InH+iy)*p.InW+ix]
						}
					}
				}
			}
		}
	}
	return cols, rows, npix
}
