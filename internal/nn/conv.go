package nn

import (
	"fmt"
	"math"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/tensor"
)

// Conv2D is a (optionally grouped/depthwise) 2-D convolution layer.
type Conv2D struct {
	name   string
	p      tensor.ConvParams
	w      *Param
	b      *Param
	lastIn *tensor.Tensor
}

// NewConv2D constructs a convolution with Kaiming-normal init.
func NewConv2D(name string, p tensor.ConvParams, rng *rand.Rand) *Conv2D {
	p.Validate()
	cpg := p.InC / p.Groups
	w := tensor.New(p.OutC, cpg, p.KH, p.KW)
	fanIn := float64(cpg * p.KH * p.KW)
	w.RandNormal(rng, math.Sqrt(2.0/fanIn))
	return &Conv2D{
		name: name, p: p,
		w: &Param{Name: name + ".w", W: w, Grad: tensor.New(p.OutC, cpg, p.KH, p.KW)},
		b: &Param{Name: name + ".b", W: tensor.New(p.OutC), Grad: tensor.New(p.OutC)},
	}
}

// Conv returns the convolution geometry.
func (c *Conv2D) Conv() tensor.ConvParams { return c.p }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// OutShape implements Layer.
func (c *Conv2D) OutShape() []int { return []int{c.p.OutC, c.p.OutH(), c.p.OutW()} }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// Stats implements Layer.
func (c *Conv2D) Stats() []LayerStat {
	cpg := int64(c.p.InC / c.p.Groups)
	outElems := int64(c.p.OutC) * int64(c.p.OutH()) * int64(c.p.OutW())
	return []LayerStat{{
		Name: c.name, Class: ClassLinear,
		MACs:    outElems * cpg * int64(c.p.KH) * int64(c.p.KW),
		InElems: int64(c.p.InC) * int64(c.p.InH) * int64(c.p.InW), OutElems: outElems,
		Params: int64(c.p.OutC)*cpg*int64(c.p.KH)*int64(c.p.KW) + int64(c.p.OutC),
	}}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size() != c.InLen() {
		panic(fmt.Sprintf("nn: %s input size %d, want %d", c.name, x.Size(), c.InLen()))
	}
	c.lastIn = x
	return tensor.Conv2D(x.Data, c.w.W, c.b.W.Data, c.p)
}

// Backward implements Layer.
func (c *Conv2D) Backward(gout *tensor.Tensor) *tensor.Tensor {
	din, dw, db := tensor.Conv2DBackward(c.lastIn.Data, c.w.W, gout, c.p)
	c.w.Grad.Add(dw)
	for i := range db {
		c.b.Grad.Data[i] += db[i]
	}
	return tensor.FromSlice(din, c.p.InC, c.p.InH, c.p.InW)
}

// BackwardInputOnly implements Linear. It deliberately avoids the cached
// forward input: dIn of a bilinear op depends only on W and gout, which is
// why the masked pipeline can call it for any example without re-priming
// the layer.
func (c *Conv2D) BackwardInputOnly(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.Conv2DGradInput(c.w.W, gout, c.p)
	return tensor.FromSlice(din, c.p.InC, c.p.InH, c.p.InW)
}

// InLen implements Linear.
func (c *Conv2D) InLen() int { return c.p.InC * c.p.InH * c.p.InW }

// OutLen implements Linear.
func (c *Conv2D) OutLen() int { return c.p.OutC * c.p.OutH() * c.p.OutW() }

// WLen implements Linear.
func (c *Conv2D) WLen() int { return c.w.W.Size() }

// WeightData implements Linear.
func (c *Conv2D) WeightData() []float64 { return c.w.W.Data }

// BiasData implements Linear.
func (c *Conv2D) BiasData() []float64 { return c.b.W.Data }

// LinearForwardFloat implements Linear (no bias).
func (c *Conv2D) LinearForwardFloat(x []float64) []float64 {
	return tensor.Conv2D(x, c.w.W, nil, c.p).Data
}

// LinearForwardField implements Linear: the convolution evaluated exactly
// over F_p on quantized weights and (possibly coded) quantized inputs —
// the kernel a DarKnight GPU worker runs. Each output row accumulates its
// ≤(P-1)² products in a pooled uint64 row with lazy reduction (one `% P`
// per element per field.MaxLazyTerms terms instead of one per term), and
// the im2col patch matrix comes from the shared scratch pool instead of a
// fresh allocation per dispatch.
//
//darknight:hotpath
func (c *Conv2D) LinearForwardField(wq, x field.Vec) field.Vec {
	p := c.p
	cols, rows, npix := fieldIm2ColPooled(x, p)
	defer field.PutScratchVec(cols)
	acc0 := field.GetScratchAcc(npix)
	acc1 := field.GetScratchAcc(npix)
	defer field.PutScratchAcc(acc0)
	defer field.PutScratchAcc(acc1)
	ocpg := p.OutC / p.Groups
	//lint:ignore hotpathalloc the output vector escapes to the GPU flight; one make per dispatch by design
	out := make(field.Vec, p.OutC*npix)
	for g := 0; g < p.Groups; g++ {
		gcols := cols[g*rows*npix : (g+1)*rows*npix]
		oc := 0
		// Output-row pairs: one pass over the patch matrix feeds two
		// accumulator rows (LazyAXPY2), halving cols traffic.
		for ; oc+2 <= ocpg; oc += 2 {
			w0 := wq[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			w1 := wq[(g*ocpg+oc+1)*rows : (g*ocpg+oc+2)*rows]
			clearAcc(acc0)
			clearAcc(acc1)
			var terms field.Budget
			for r := 0; r < rows; r++ {
				c0, c1 := w0[r], w1[r]
				if c0 == 0 && c1 == 0 {
					continue
				}
				cRow := gcols[r*npix : (r+1)*npix]
				switch {
				case c1 == 0:
					field.LazyAXPY(acc0, c0, cRow)
				case c0 == 0:
					field.LazyAXPY(acc1, c1, cRow)
				default:
					field.LazyAXPY2(acc0, acc1, c0, c1, cRow)
				}
				terms.Tick2(acc0, acc1)
			}
			field.ReduceAccInto(out[(g*ocpg+oc)*npix:(g*ocpg+oc+1)*npix], acc0)
			field.ReduceAccInto(out[(g*ocpg+oc+1)*npix:(g*ocpg+oc+2)*npix], acc1)
		}
		for ; oc < ocpg; oc++ {
			wRow := wq[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			clearAcc(acc0)
			var terms field.Budget
			for r, wv := range wRow {
				if wv == 0 {
					continue
				}
				field.LazyAXPY(acc0, wv, gcols[r*npix:(r+1)*npix])
				terms.Tick1(acc0)
			}
			field.ReduceAccInto(out[(g*ocpg+oc)*npix:(g*ocpg+oc+1)*npix], acc0)
		}
	}
	return out
}

func clearAcc(acc []uint64) {
	for i := range acc {
		acc[i] = 0
	}
}

// LinearForwardFieldRef is the retained seed kernel — one field.MulAdd
// (multiply plus reduction) per element per term and a freshly allocated
// patch matrix per call. It is the oracle the lazy-reduction kernel must
// match bit-for-bit (see field_test.go) and the baseline BenchmarkKernels
// measures the coded forward path against.
func (c *Conv2D) LinearForwardFieldRef(wq, x field.Vec) field.Vec {
	p := c.p
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	npix := p.OutH() * p.OutW()
	cols := fieldIm2ColNaive(x, p)
	ocpg := p.OutC / p.Groups
	out := make(field.Vec, p.OutC*npix)
	for g := 0; g < p.Groups; g++ {
		for oc := 0; oc < ocpg; oc++ {
			wRow := wq[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			oRow := out[(g*ocpg+oc)*npix : (g*ocpg+oc+1)*npix]
			for r := 0; r < rows; r++ {
				wv := wRow[r]
				if wv == 0 {
					continue
				}
				cRow := cols[(g*rows+r)*npix : (g*rows+r+1)*npix]
				for j := 0; j < npix; j++ {
					oRow[j] = field.MulAdd(oRow[j], wv, cRow[j])
				}
			}
		}
	}
	return out
}

// GradWeightsField implements Linear: dW = delta · colsᵀ over F_p, where
// delta is the (scaled, combined) output gradient [OutC×OutH×OutW] and x is
// the (coded) layer input. field.Dot is already lazy-reduced; the patch
// matrix is pooled.
func (c *Conv2D) GradWeightsField(delta, x field.Vec) field.Vec {
	p := c.p
	cols, rows, npix := fieldIm2ColPooled(x, p)
	defer field.PutScratchVec(cols)
	ocpg := p.OutC / p.Groups
	out := make(field.Vec, p.OutC*rows)
	for g := 0; g < p.Groups; g++ {
		for oc := 0; oc < ocpg; oc++ {
			dRow := delta[(g*ocpg+oc)*npix : (g*ocpg+oc+1)*npix]
			oRow := out[(g*ocpg+oc)*rows : (g*ocpg+oc+1)*rows]
			for r := 0; r < rows; r++ {
				cRow := cols[(g*rows+r)*npix : (g*rows+r+1)*npix]
				oRow[r] = field.Dot(dRow, cRow)
			}
		}
	}
	return out
}

// AddGradW implements Linear.
func (c *Conv2D) AddGradW(dw []float64, s float64) {
	for i, v := range dw {
		c.w.Grad.Data[i] += s * v
	}
}

// AddGradB implements Linear.
func (c *Conv2D) AddGradB(gout *tensor.Tensor, s float64) {
	npix := c.p.OutH() * c.p.OutW()
	for oc := 0; oc < c.p.OutC; oc++ {
		var sum float64
		for _, v := range gout.Data[oc*npix : (oc+1)*npix] {
			sum += v
		}
		c.b.Grad.Data[oc] += s * sum
	}
}

// fieldIm2ColNaive is the seed's element-at-a-time im2col with a fresh
// allocation per call, retained solely for LinearForwardFieldRef so the
// reference baseline stays faithful to the pre-PR2 kernel.
func fieldIm2ColNaive(in field.Vec, p tensor.ConvParams) field.Vec {
	cpg := p.InC / p.Groups
	rows := cpg * p.KH * p.KW
	oh, ow := p.OutH(), p.OutW()
	npix := oh * ow
	cols := make(field.Vec, p.Groups*rows*npix)
	for g := 0; g < p.Groups; g++ {
		for ci := 0; ci < cpg; ci++ {
			inC := g*cpg + ci
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row := (ci*p.KH+ky)*p.KW + kx
					base := (g*rows + row) * npix
					for oy := 0; oy < oh; oy++ {
						iy := oy*p.Stride + ky - p.Pad
						if iy < 0 || iy >= p.InH {
							continue
						}
						for ox := 0; ox < ow; ox++ {
							ix := ox*p.Stride + kx - p.Pad
							if ix < 0 || ix >= p.InW {
								continue
							}
							cols[base+oy*ow+ox] = in[(inC*p.InH+iy)*p.InW+ix]
						}
					}
				}
			}
		}
	}
	return cols
}

// fieldIm2ColPooled is fieldIm2ColInto on a pooled scratch buffer; the
// caller must return cols with field.PutScratchVec.
func fieldIm2ColPooled(in field.Vec, p tensor.ConvParams) (cols field.Vec, rows, npix int) {
	cpg := p.InC / p.Groups
	rows = cpg * p.KH * p.KW
	npix = p.OutH() * p.OutW()
	cols = fieldIm2ColInto(field.GetScratchVec(p.Groups*rows*npix), in, p)
	return cols, rows, npix
}

// fieldIm2ColInto is im2col over F_p: pure data movement, zero padding,
// stride-1 rows as contiguous copies. The window math is single-sourced
// in tensor.Im2ColSlices, shared with the float conv path.
func fieldIm2ColInto(cols field.Vec, in field.Vec, p tensor.ConvParams) field.Vec {
	tensor.Im2ColSlices(cols, in, p)
	return cols
}
