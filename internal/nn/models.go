package nn

import (
	"fmt"
	"math/rand"

	"darknight/internal/tensor"
)

// This file builds SCALED, trainable variants of the paper's three training
// models for the accuracy experiments (Fig 4). They keep each network's
// structural signature — VGG's conv/ReLU/maxpool pyramid + FC head,
// ResNet's bottleneck residuals + batch norm, MobileNetV2's inverted
// residuals with depthwise convolutions — at a width/depth a CPU can train
// in seconds (the hardware substitution is documented in DESIGN.md).

// shapeCursor threads geometry through builders.
type shapeCursor struct{ c, h, w int }

// VGG16Scaled builds a VGG-style net: two conv blocks (conv-relu ×2 +
// maxpool) and a two-layer FC head. width scales the channel counts.
func VGG16Scaled(c, h, w, classes, width int, rng *rand.Rand) *Model {
	if width < 1 {
		panic("nn: width must be >= 1")
	}
	cur := shapeCursor{c, h, w}
	seq := NewSequential("vgg16s")
	block := func(stage string, outC int) {
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("%s_conv%d", stage, i+1)
			p := tensor.ConvParams{InC: cur.c, OutC: outC, KH: 3, KW: 3,
				Stride: 1, Pad: 1, InH: cur.h, InW: cur.w, Groups: 1}
			seq.Append(NewConv2D(name, p, rng))
			cur = shapeCursor{outC, p.OutH(), p.OutW()}
			seq.Append(NewReLU(name+"_relu", cur.c, cur.h, cur.w))
		}
		pp := tensor.PoolParams{C: cur.c, InH: cur.h, InW: cur.w, K: 2, Stride: 2}
		seq.Append(NewMaxPool(stage+"_pool", pp))
		cur = shapeCursor{cur.c, pp.OutH(), pp.OutW()}
	}
	block("b1", 4*width)
	block("b2", 8*width)
	flat := cur.c * cur.h * cur.w
	seq.Append(NewFlatten("flatten", cur.c, cur.h, cur.w))
	seq.Append(NewDense("fc1", flat, 16*width, rng))
	seq.Append(NewReLU("fc1_relu", 16*width))
	seq.Append(NewDense("fc2", 16*width, classes, rng))
	return NewModel("VGG16Scaled", []int{c, h, w}, classes, seq)
}

// ResNet50Scaled builds a ResNet-style net: stem conv + BN + ReLU, two
// bottleneck residual stages (with projection shortcuts), global average
// pooling and an FC head.
func ResNet50Scaled(c, h, w, classes, width int, rng *rand.Rand) *Model {
	if width < 1 {
		panic("nn: width must be >= 1")
	}
	cur := shapeCursor{c, h, w}
	seq := NewSequential("resnet50s")
	conv := func(name string, outC, k, stride, pad, groups int) {
		p := tensor.ConvParams{InC: cur.c, OutC: outC, KH: k, KW: k,
			Stride: stride, Pad: pad, InH: cur.h, InW: cur.w, Groups: groups}
		seq.Append(NewConv2D(name, p, rng))
		cur = shapeCursor{outC, p.OutH(), p.OutW()}
	}
	conv("stem", 4*width, 3, 1, 1, 1)
	seq.Append(NewBatchNorm("stem_bn", cur.c, cur.h, cur.w))
	seq.Append(NewReLU("stem_relu", cur.c, cur.h, cur.w))

	bottleneck := func(name string, mid, out, stride int) {
		inCur := cur
		body := NewSequential(name + "_body")
		bcur := cur
		bconv := func(n string, outC, k, s, pad int) {
			p := tensor.ConvParams{InC: bcur.c, OutC: outC, KH: k, KW: k,
				Stride: s, Pad: pad, InH: bcur.h, InW: bcur.w, Groups: 1}
			body.Append(NewConv2D(n, p, rng))
			bcur = shapeCursor{outC, p.OutH(), p.OutW()}
		}
		bconv(name+"_c1", mid, 1, 1, 0)
		body.Append(NewBatchNorm(name+"_bn1", bcur.c, bcur.h, bcur.w))
		body.Append(NewReLU(name+"_r1", bcur.c, bcur.h, bcur.w))
		bconv(name+"_c2", mid, 3, stride, 1)
		body.Append(NewBatchNorm(name+"_bn2", bcur.c, bcur.h, bcur.w))
		body.Append(NewReLU(name+"_r2", bcur.c, bcur.h, bcur.w))
		bconv(name+"_c3", out, 1, 1, 0)
		body.Append(NewBatchNorm(name+"_bn3", bcur.c, bcur.h, bcur.w))

		var skip Layer
		if stride != 1 || inCur.c != out {
			p := tensor.ConvParams{InC: inCur.c, OutC: out, KH: 1, KW: 1,
				Stride: stride, Pad: 0, InH: inCur.h, InW: inCur.w, Groups: 1}
			skip = NewConv2D(name+"_proj", p, rng)
		}
		seq.Append(NewResidual(name, body, skip))
		cur = bcur
		seq.Append(NewReLU(name+"_rout", cur.c, cur.h, cur.w))
	}
	bottleneck("s1_b1", 2*width, 8*width, 1)
	bottleneck("s1_b2", 2*width, 8*width, 1)
	bottleneck("s2_b1", 4*width, 16*width, 2)
	bottleneck("s2_b2", 4*width, 16*width, 1)

	pp := tensor.PoolParams{C: cur.c, InH: cur.h, InW: cur.w, K: cur.h, Stride: 1}
	seq.Append(NewAvgPool("gap", pp))
	cur = shapeCursor{cur.c, 1, 1}
	seq.Append(NewFlatten("flatten", cur.c, 1, 1))
	seq.Append(NewDense("fc", cur.c, classes, rng))
	return NewModel("ResNet50Scaled", []int{c, h, w}, classes, seq)
}

// MobileNetV2Scaled builds a MobileNetV2-style net: stem conv, two
// inverted-residual blocks with depthwise convolutions, head conv, global
// pooling and FC.
func MobileNetV2Scaled(c, h, w, classes, width int, rng *rand.Rand) *Model {
	if width < 1 {
		panic("nn: width must be >= 1")
	}
	cur := shapeCursor{c, h, w}
	seq := NewSequential("mobilenetv2s")
	conv := func(target *Sequential, name string, outC, k, stride, pad, groups int, sc *shapeCursor) {
		p := tensor.ConvParams{InC: sc.c, OutC: outC, KH: k, KW: k,
			Stride: stride, Pad: pad, InH: sc.h, InW: sc.w, Groups: groups}
		target.Append(NewConv2D(name, p, rng))
		*sc = shapeCursor{outC, p.OutH(), p.OutW()}
	}
	conv(seq, "stem", 4*width, 3, 1, 1, 1, &cur)
	seq.Append(NewBatchNorm("stem_bn", cur.c, cur.h, cur.w))
	seq.Append(NewReLU("stem_relu", cur.c, cur.h, cur.w))

	invRes := func(name string, expand, outC, stride int) {
		inCur := cur
		residual := stride == 1 && inCur.c == outC
		body := NewSequential(name + "_body")
		bcur := cur
		mid := inCur.c * expand
		conv(body, name+"_exp", mid, 1, 1, 0, 1, &bcur)
		body.Append(NewBatchNorm(name+"_expbn", bcur.c, bcur.h, bcur.w))
		body.Append(NewReLU(name+"_exprelu", bcur.c, bcur.h, bcur.w))
		conv(body, name+"_dw", mid, 3, stride, 1, mid, &bcur) // depthwise
		body.Append(NewBatchNorm(name+"_dwbn", bcur.c, bcur.h, bcur.w))
		body.Append(NewReLU(name+"_dwrelu", bcur.c, bcur.h, bcur.w))
		conv(body, name+"_proj", outC, 1, 1, 0, 1, &bcur)
		body.Append(NewBatchNorm(name+"_projbn", bcur.c, bcur.h, bcur.w))
		if residual {
			seq.Append(NewResidual(name, body, nil))
		} else {
			seq.Append(body)
		}
		cur = bcur
	}
	invRes("ir1", 2, 4*width, 1)
	invRes("ir2", 2, 8*width, 2)
	conv(seq, "head", 16*width, 1, 1, 0, 1, &cur)
	seq.Append(NewBatchNorm("head_bn", cur.c, cur.h, cur.w))
	seq.Append(NewReLU("head_relu", cur.c, cur.h, cur.w))

	pp := tensor.PoolParams{C: cur.c, InH: cur.h, InW: cur.w, K: cur.h, Stride: 1}
	seq.Append(NewAvgPool("gap", pp))
	seq.Append(NewFlatten("flatten", cur.c, 1, 1))
	seq.Append(NewDense("fc", cur.c, classes, rng))
	return NewModel("MobileNetV2Scaled", []int{c, h, w}, classes, seq)
}

// TinyCNN builds the smallest useful conv net (conv-relu-pool-fc), used by
// fast tests and the quickstart example.
func TinyCNN(c, h, w, classes int, rng *rand.Rand) *Model {
	cur := shapeCursor{c, h, w}
	seq := NewSequential("tiny")
	p := tensor.ConvParams{InC: c, OutC: 6, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: h, InW: w, Groups: 1}
	seq.Append(NewConv2D("conv1", p, rng))
	cur = shapeCursor{6, p.OutH(), p.OutW()}
	seq.Append(NewReLU("relu1", cur.c, cur.h, cur.w))
	pp := tensor.PoolParams{C: cur.c, InH: cur.h, InW: cur.w, K: 2, Stride: 2}
	seq.Append(NewMaxPool("pool1", pp))
	cur = shapeCursor{cur.c, pp.OutH(), pp.OutW()}
	flat := cur.c * cur.h * cur.w
	seq.Append(NewFlatten("flatten", cur.c, cur.h, cur.w))
	seq.Append(NewDense("fc", flat, classes, rng))
	return NewModel("TinyCNN", []int{c, h, w}, classes, seq)
}

// DeepMLP builds a factorized deep MLP: the flattened input feeds two
// stacks of three consecutive Dense layers (a low-rank factorized linear
// operator — W3·W2·W1 evaluated factor by factor), each stack followed by
// one ReLU, and a Dense classifier head. The back-to-back Dense runs make
// it the fusion showcase: the compile pass groups each 3-layer run into
// one FusedBlock, so a forward pass that costs 7 gang flights per-layer
// costs 3 fused (two blocks + the lone head).
func DeepMLP(c, h, w, classes, width int, rng *rand.Rand) *Model {
	if width <= 0 {
		width = 16
	}
	flat := c * h * w
	seq := NewSequential("deepmlp")
	seq.Append(NewFlatten("flatten", c, h, w))
	in := flat
	for s := 1; s <= 2; s++ {
		for f := 1; f <= 3; f++ {
			seq.Append(NewDense(fmt.Sprintf("s%d_fc%d", s, f), in, width, rng))
			in = width
		}
		seq.Append(NewReLU(fmt.Sprintf("s%d_relu", s), width))
	}
	seq.Append(NewDense("head", in, classes, rng))
	return NewModel("DeepMLP", []int{c, h, w}, classes, seq)
}
