// Package nn is a from-scratch CPU deep-learning framework: the substrate
// the paper builds on top of Keras/TF/DNNL/Eigen. It provides the layers,
// losses and optimizer used both by the float reference path (the paper's
// "Raw Data" baseline) and by DarKnight's quantized masked path, plus
// analytic per-layer operation statistics that drive the performance model.
//
// Layers process one example at a time (CHW tensors without a batch
// dimension); batch semantics live in the training loops. Layers cache
// forward state for the following Backward call and are therefore not safe
// for concurrent use — clone the model per goroutine instead.
package nn

import (
	"darknight/internal/field"
	"darknight/internal/tensor"
)

// OpClass buckets layers by the execution category the paper's breakdown
// tables use (Table 1, Table 3): bilinear ops are offloadable to GPUs,
// everything else stays in the TEE.
type OpClass int

const (
	// ClassLinear marks bilinear ops (conv, dense) — GPU-offloadable.
	ClassLinear OpClass = iota
	// ClassReLU marks rectifier activations — TEE-resident.
	ClassReLU
	// ClassMaxPool marks max pooling — TEE-resident.
	ClassMaxPool
	// ClassBatchNorm marks normalization — TEE-resident and expensive
	// (the reason ResNet/MobileNet gain less, §7.1).
	ClassBatchNorm
	// ClassOther marks cheap glue (flatten, avgpool, residual add).
	ClassOther
)

// String names the class for reports.
func (c OpClass) String() string {
	switch c {
	case ClassLinear:
		return "Linear"
	case ClassReLU:
		return "ReLU"
	case ClassMaxPool:
		return "MaxPool"
	case ClassBatchNorm:
		return "BatchNorm"
	default:
		return "Other"
	}
}

// LayerStat is the analytic cost record of one layer at one geometry:
// multiply-accumulates for the forward pass, element counts for
// communication/memory modelling, and parameter count.
type LayerStat struct {
	Name     string
	Class    OpClass
	MACs     int64 // forward multiply-accumulates
	InElems  int64
	OutElems int64
	Params   int64
}

// Param is one learnable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is the single-example building block of a model.
type Layer interface {
	Name() string
	// OutShape returns the layer's output geometry.
	OutShape() []int
	// Forward computes the layer output, caching whatever Backward needs.
	// train toggles training-time behaviour (batch-norm statistics).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the output, accumulates
	// parameter gradients, and returns the gradient w.r.t. the input.
	Backward(gout *tensor.Tensor) *tensor.Tensor
	// Params lists the learnable tensors (empty for stateless layers).
	Params() []*Param
	// Stats returns the analytic cost records (one per primitive op;
	// composite layers return several).
	Stats() []LayerStat
}

// Linear is implemented by the bilinear layers (Dense, Conv2D) whose heavy
// math DarKnight offloads to GPUs on coded data. The field-domain methods
// are *pure*: they take quantized weights and inputs explicitly so that
// simulated GPU workers can run them on coded vectors they were handed,
// exactly as real GPUs would run DNNL/cuBLAS kernels on masked tensors.
type Linear interface {
	Layer
	// InLen/OutLen/WLen are the flat element counts of the linear op.
	InLen() int
	OutLen() int
	WLen() int
	// LinearForwardField computes the pure linear part (NO bias) over
	// F_p: y = <Wq, x>. Bias is added inside the TEE after decoding —
	// adding it per coded input would not survive the linear decode.
	LinearForwardField(wq, x field.Vec) field.Vec
	// GradWeightsField computes the flattened bilinear weight-gradient
	// product <delta, x> over F_p (the Eq_j kernel of the backward pass).
	GradWeightsField(delta, x field.Vec) field.Vec
	// LinearForwardFloat computes the same linear part in float, used by
	// the honest-GPU float fast path and by tests as the oracle.
	LinearForwardFloat(x []float64) []float64
	// BackwardInputOnly returns dL/dx without touching parameter
	// gradients (the masked path obtains dW from the coded decode
	// instead).
	BackwardInputOnly(gout *tensor.Tensor) *tensor.Tensor
	// WeightData exposes the flat weight slice for quantization.
	WeightData() []float64
	// BiasData exposes the flat bias slice (nil if no bias).
	BiasData() []float64
	// AddGradW accumulates a flat dW (same layout as WeightData) into the
	// layer's weight gradient, scaled by s.
	AddGradW(dw []float64, s float64)
	// AddGradB accumulates the bias gradient derived from gout.
	AddGradB(gout *tensor.Tensor, s float64)
}

func prod(shape []int) int64 {
	n := int64(1)
	for _, d := range shape {
		n *= int64(d)
	}
	return n
}
