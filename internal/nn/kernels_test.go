package nn

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
	"darknight/internal/tensor"
)

// TestConvFieldKernelMatchesRef pins the lazy-reduction GPU conv kernel
// bit-for-bit to the retained seed kernel over F_p, including grouped and
// strided/padded geometries, and verifies pooled-buffer reuse is clean.
func TestConvFieldKernelMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	geoms := []tensor.ConvParams{
		{InC: 3, OutC: 8, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 8, InW: 8, Groups: 1},
		{InC: 4, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1, InH: 9, InW: 7, Groups: 4}, // depthwise
		{InC: 6, OutC: 9, KH: 1, KW: 1, Stride: 1, Pad: 0, InH: 5, InW: 5, Groups: 3},
	}
	for _, p := range geoms {
		layer := NewConv2D("c", p, rng)
		wq := field.RandVec(rng, layer.WLen())
		// Run twice per geometry: the second pass reuses pooled scratch.
		for pass := 0; pass < 2; pass++ {
			x := field.RandVec(rng, layer.InLen())
			want := layer.LinearForwardFieldRef(wq, x)
			got := layer.LinearForwardField(wq, x)
			if !got.Equal(want) {
				t.Fatalf("conv field kernel diverges from reference (%+v, pass %d)", p, pass)
			}
			delta := field.RandVec(rng, layer.OutLen())
			gw := layer.GradWeightsField(delta, x)
			gw2 := layer.GradWeightsField(delta, x)
			if !gw.Equal(gw2) {
				t.Fatalf("GradWeightsField is not deterministic under pooled reuse (%+v)", p)
			}
		}
	}
}
