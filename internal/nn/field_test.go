package nn

import (
	"math"
	"math/rand"
	"testing"

	"darknight/internal/field"
	"darknight/internal/quant"
	"darknight/internal/tensor"
)

// TestLinearForwardFieldMatchesFloat confirms that the field-domain GPU
// kernels reproduce the float linear op through quantization — the
// correctness foundation of the whole masked pipeline (Algorithm 1 without
// the masking step).
func TestLinearForwardFieldMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := quant.Default()

	check := func(name string, lin Linear, x []float64) {
		t.Helper()
		wq := q.Quantize(lin.WeightData())
		xq := q.Quantize(x)
		got := q.UnquantizeProduct(lin.LinearForwardField(wq, xq))
		want := lin.LinearForwardFloat(x)
		if len(got) != len(want) {
			t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.05 {
				t.Fatalf("%s[%d]: field %v vs float %v", name, i, got[i], want[i])
			}
		}
	}

	d := NewDense("d", 30, 10, rng)
	x := make([]float64, 30)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	check("dense", d, x)

	p := tensor.ConvParams{InC: 3, OutC: 4, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: 6, InW: 6, Groups: 1}
	c := NewConv2D("c", p, rng)
	xc := make([]float64, 3*6*6)
	for i := range xc {
		xc[i] = rng.Float64() - 0.5
	}
	check("conv", c, xc)

	// Depthwise conv (MobileNet kernel) must also match.
	pd := tensor.ConvParams{InC: 4, OutC: 4, KH: 3, KW: 3, Stride: 2, Pad: 1,
		InH: 8, InW: 8, Groups: 4}
	cd := NewConv2D("cd", pd, rng)
	xd := make([]float64, 4*8*8)
	for i := range xd {
		xd[i] = rng.Float64() - 0.5
	}
	check("depthwise", cd, xd)
}

// TestGradWeightsFieldMatchesFloat checks the backward bilinear kernel
// against the float dW oracle.
func TestGradWeightsFieldMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := quant.Default()

	t.Run("dense", func(t *testing.T) {
		d := NewDense("d", 12, 6, rng)
		x := tensor.New(12)
		x.RandUniform(rng, 0.5)
		delta := tensor.New(6)
		delta.RandUniform(rng, 0.5)

		// Float oracle: run Backward and read the accumulated dW.
		d.Forward(x, true)
		d.w.Grad.Zero()
		d.Backward(delta)
		want := d.w.Grad.Data

		dq := q.Quantize(delta.Data)
		xq := q.Quantize(x.Data)
		got := q.UnquantizeProduct(d.GradWeightsField(dq, xq))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.05 {
				t.Fatalf("dW[%d]: field %v vs float %v", i, got[i], want[i])
			}
		}
	})

	t.Run("conv", func(t *testing.T) {
		p := tensor.ConvParams{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1,
			InH: 5, InW: 5, Groups: 1}
		c := NewConv2D("c", p, rng)
		x := tensor.New(2, 5, 5)
		x.RandUniform(rng, 0.5)
		delta := tensor.New(3, p.OutH(), p.OutW())
		delta.RandUniform(rng, 0.5)

		c.Forward(x, true)
		c.w.Grad.Zero()
		c.b.Grad.Zero()
		c.Backward(delta)
		want := c.w.Grad.Data

		dq := q.Quantize(delta.Data)
		xq := q.Quantize(x.Data)
		got := q.UnquantizeProduct(c.GradWeightsField(dq, xq))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.2 {
				t.Fatalf("dW[%d]: field %v vs float %v", i, got[i], want[i])
			}
		}
	})
}

// TestFieldLinearityOfKernels verifies the property the masking scheme
// depends on: the field kernels are LINEAR in x, i.e.
// f(a·x1 + b·x2) = a·f(x1) + b·f(x2) exactly over F_p.
func TestFieldLinearityOfKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := tensor.ConvParams{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: 5, InW: 5, Groups: 1}
	c := NewConv2D("c", p, rng)
	q := quant.Default()
	wq := q.Quantize(c.WeightData())

	n := c.InLen()
	x1 := field.RandVec(rng, n)
	x2 := field.RandVec(rng, n)
	a := field.Rand(rng)
	b := field.Rand(rng)

	mix := field.AddVec(field.ScaleVec(a, x1), field.ScaleVec(b, x2))
	left := c.LinearForwardField(wq, mix)
	right := field.AddVec(
		field.ScaleVec(a, c.LinearForwardField(wq, x1)),
		field.ScaleVec(b, c.LinearForwardField(wq, x2)))
	if !left.Equal(right) {
		t.Fatal("conv field kernel is not linear over F_p")
	}

	// Bilinearity of the gradient kernel in x (delta fixed).
	delta := field.RandVec(rng, c.OutLen())
	gleft := c.GradWeightsField(delta, mix)
	gright := field.AddVec(
		field.ScaleVec(a, c.GradWeightsField(delta, x1)),
		field.ScaleVec(b, c.GradWeightsField(delta, x2)))
	if !gleft.Equal(gright) {
		t.Fatal("conv gradient kernel is not linear in x over F_p")
	}
}
