package nn

import (
	"math"
	"math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/tensor"
)

// numericGradCheck verifies dLoss/dx for a scalar loss = sum(layer output)
// against central finite differences at sampled coordinates.
func numericGradCheck(t *testing.T, name string, forward func() float64, x []float64, analytic []float64, rng *rand.Rand, samples int, tol float64) {
	t.Helper()
	const eps = 1e-5
	for s := 0; s < samples; s++ {
		i := rng.Intn(len(x))
		orig := x[i]
		x[i] = orig + eps
		up := forward()
		x[i] = orig - eps
		down := forward()
		x[i] = orig
		num := (up - down) / (2 * eps)
		if math.Abs(num-analytic[i]) > tol {
			t.Fatalf("%s grad[%d]: numeric %v vs analytic %v", name, i, num, analytic[i])
		}
	}
}

func sumForward(l Layer, x *tensor.Tensor) float64 {
	out := l.Forward(x, true)
	var s float64
	for _, v := range out.Data {
		s += v
	}
	return s
}

func onesLike(l Layer, x *tensor.Tensor) *tensor.Tensor {
	out := l.Forward(x, true)
	g := tensor.New(out.Shape...)
	g.Fill(1)
	return g
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 7, 5, rng)
	x := tensor.New(7)
	x.RandNormal(rng, 1)
	g := onesLike(d, x)
	din := d.Backward(g)
	numericGradCheck(t, "dense/dx", func() float64 { return sumForward(d, x) },
		x.Data, din.Data, rng, 7, 1e-5)
	numericGradCheck(t, "dense/dw", func() float64 { return sumForward(d, x) },
		d.w.W.Data, d.w.Grad.Data, rng, 10, 1e-5)
	numericGradCheck(t, "dense/db", func() float64 { return sumForward(d, x) },
		d.b.W.Data, d.b.Grad.Data, rng, 5, 1e-5)
}

func TestConvLayerGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := tensor.ConvParams{InC: 2, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: 6, InW: 6, Groups: 1}
	c := NewConv2D("c", p, rng)
	x := tensor.New(2, 6, 6)
	x.RandNormal(rng, 1)
	g := onesLike(c, x)
	din := c.Backward(g)
	numericGradCheck(t, "conv/dx", func() float64 { return sumForward(c, x) },
		x.Data, din.Data, rng, 10, 1e-4)
	numericGradCheck(t, "conv/dw", func() float64 { return sumForward(c, x) },
		c.w.W.Data, c.w.Grad.Data, rng, 10, 1e-4)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewReLU("r", 20)
	x := tensor.New(20)
	x.RandNormal(rng, 1)
	g := onesLike(r, x)
	din := r.Backward(g)
	for i, v := range x.Data {
		want := 0.0
		if v > 0 {
			want = 1
		}
		if din.Data[i] != want {
			t.Fatalf("relu grad[%d] = %v for x = %v", i, din.Data[i], v)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm("bn", 2, 4, 4)
	x := tensor.New(2, 4, 4)
	x.RandNormal(rng, 1)
	// Use a weighted loss so the normalization gradient is non-trivial
	// (sum-loss is invariant to per-channel mean, making dx ≈ 0).
	weights := tensor.New(2, 4, 4)
	weights.RandNormal(rng, 1)
	forward := func() float64 {
		out := bn.Forward(x, true)
		var s float64
		for i, v := range out.Data {
			s += v * weights.Data[i]
		}
		return s
	}
	bn.Forward(x, true)
	din := bn.Backward(weights)
	numericGradCheck(t, "bn/dx", forward, x.Data, din.Data, rng, 10, 1e-4)
	numericGradCheck(t, "bn/dgamma", forward, bn.gamma.W.Data, bn.gamma.Grad.Data, rng, 2, 1e-4)
	numericGradCheck(t, "bn/dbeta", forward, bn.beta.W.Data, bn.beta.Grad.Data, rng, 2, 1e-4)
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	bn := NewBatchNorm("bn", 1, 3, 3)
	x := tensor.New(1, 3, 3)
	x.RandNormal(rng, 2)
	for i := 0; i < 50; i++ {
		bn.Forward(x, true)
	}
	trainOut := bn.Forward(x, true)
	evalOut := bn.Forward(x, false)
	// After converged running stats on a constant input, the two paths
	// agree closely.
	if !trainOut.EqualApprox(evalOut, 1e-2) {
		t.Fatal("running statistics did not converge to batch statistics")
	}
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := tensor.ConvParams{InC: 2, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1,
		InH: 5, InW: 5, Groups: 1}
	body := NewSequential("body", NewConv2D("c1", p, rng), NewReLU("r1", 2, 5, 5))
	res := NewResidual("res", body, nil)
	x := tensor.New(2, 5, 5)
	x.RandNormal(rng, 1)
	g := onesLike(res, x)
	din := res.Backward(g)
	numericGradCheck(t, "residual/dx", func() float64 { return sumForward(res, x) },
		x.Data, din.Data, rng, 10, 1e-4)
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 1, 0.1}, 3)
	loss, grad := SoftmaxCrossEntropy(logits, 0)
	if loss <= 0 || loss > 1 {
		t.Fatalf("loss = %v out of expected range", loss)
	}
	// Gradient sums to zero (softmax minus one-hot).
	var s float64
	for _, v := range grad.Data {
		s += v
	}
	if math.Abs(s) > 1e-12 {
		t.Fatalf("grad sum = %v", s)
	}
	// Numeric check.
	rng := rand.New(rand.NewSource(7))
	forward := func() float64 {
		l, _ := SoftmaxCrossEntropy(logits, 0)
		return l
	}
	numericGradCheck(t, "ce", forward, logits.Data, grad.Data, rng, 3, 1e-5)
}

func TestArgmax(t *testing.T) {
	if Argmax(tensor.FromSlice([]float64{0.1, 3, -2}, 3)) != 1 {
		t.Fatal("argmax wrong")
	}
}

func TestSGDMomentum(t *testing.T) {
	w := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{1}, 1)
	p := &Param{W: w, Grad: g}
	opt := NewSGD(0.1, 0.9)
	opt.Step([]*Param{p})
	if math.Abs(w.Data[0]-0.9) > 1e-12 {
		t.Fatalf("after step 1: %v", w.Data[0])
	}
	if g.Data[0] != 0 {
		t.Fatal("grad not cleared")
	}
	// Second step with same grad: velocity = 0.9*1 + 1 = 1.9.
	g.Data[0] = 1
	opt.Step([]*Param{p})
	if math.Abs(w.Data[0]-(0.9-0.19)) > 1e-12 {
		t.Fatalf("after step 2: %v", w.Data[0])
	}
}

func TestTinyCNNLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	data := dataset.SyntheticCIFAR(rng, 300, 4, 1, 8, 8, 0.05)
	train, test := data.Split(0.8)
	m := TinyCNN(1, 8, 8, 4, rng)
	opt := NewSGD(0.05, 0.9)
	for epoch := 0; epoch < 5; epoch++ {
		train.Shuffle(rng)
		for _, b := range train.Batches(10) {
			m.TrainBatch(b, opt)
		}
	}
	if acc := m.Evaluate(test); acc < 0.9 {
		t.Fatalf("TinyCNN accuracy %.2f < 0.9", acc)
	}
}

func TestScaledModelsBuildAndStep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	builders := []func() *Model{
		func() *Model { return VGG16Scaled(1, 8, 8, 4, 1, rng) },
		func() *Model { return ResNet50Scaled(1, 8, 8, 4, 1, rng) },
		func() *Model { return MobileNetV2Scaled(1, 8, 8, 4, 1, rng) },
	}
	data := dataset.SyntheticCIFAR(rng, 20, 4, 1, 8, 8, 0.05)
	for _, build := range builders {
		m := build()
		if m.ParamCount() == 0 {
			t.Fatalf("%s has no parameters", m.Name)
		}
		out := m.Forward(data.Items[0].Image, false)
		if out.Size() != 4 {
			t.Fatalf("%s output size %d", m.Name, out.Size())
		}
		opt := NewSGD(0.01, 0)
		l1 := m.TrainBatch(data.Items[:10], opt)
		var l2 float64
		for i := 0; i < 10; i++ {
			l2 = m.TrainBatch(data.Items[:10], opt)
		}
		if !(l2 < l1) {
			t.Fatalf("%s loss did not decrease: %v -> %v", m.Name, l1, l2)
		}
		if len(m.LinearLayers()) == 0 {
			t.Fatalf("%s exposes no linear layers", m.Name)
		}
	}
}

func TestModelStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := ResNet50Scaled(1, 8, 8, 4, 1, rng)
	var statParams int64
	for _, s := range m.Stats() {
		statParams += s.Params
	}
	if statParams != m.ParamCount() {
		t.Fatalf("stats params %d != actual %d", statParams, m.ParamCount())
	}
}
