package nn

// This file describes the FULL-SIZE architectures the paper evaluates
// (VGG16, ResNet50, MobileNetV1, MobileNetV2 on ImageNet geometry) as
// analytic per-layer cost records, without materializing weights — VGG16
// alone has 138 M parameters, which the performance model never needs in
// memory. The scaled, trainable counterparts live in models.go.

// Arch is an analytic architecture description: the per-layer cost records
// of a network at a fixed input geometry.
type Arch struct {
	Name   string
	Input  [3]int // C, H, W
	Layers []LayerStat
}

// ClassTotals aggregates cost by op class.
type ClassTotals struct {
	MACs, InElems, OutElems, Params int64
}

// TotalsByClass buckets the per-layer records by op class.
func (a *Arch) TotalsByClass() map[OpClass]ClassTotals {
	out := make(map[OpClass]ClassTotals)
	for _, l := range a.Layers {
		t := out[l.Class]
		t.MACs += l.MACs
		t.InElems += l.InElems
		t.OutElems += l.OutElems
		t.Params += l.Params
		out[l.Class] = t
	}
	return out
}

// TotalMACs returns the forward multiply-accumulate count.
func (a *Arch) TotalMACs() int64 {
	var n int64
	for _, l := range a.Layers {
		n += l.MACs
	}
	return n
}

// TotalParams returns the learnable parameter count.
func (a *Arch) TotalParams() int64 {
	var n int64
	for _, l := range a.Layers {
		n += l.Params
	}
	return n
}

// LargestActivation returns the biggest single-layer output element count —
// the quantity SGX memory pressure scales with.
func (a *Arch) LargestActivation() int64 {
	var m int64
	for _, l := range a.Layers {
		if l.OutElems > m {
			m = l.OutElems
		}
	}
	return m
}

// archBuilder threads a (C, H, W) cursor through stat constructors.
type archBuilder struct {
	a       *Arch
	c, h, w int
}

func newArchBuilder(name string, c, h, w int) *archBuilder {
	return &archBuilder{a: &Arch{Name: name, Input: [3]int{c, h, w}}, c: c, h: h, w: w}
}

func (b *archBuilder) conv(name string, outC, k, stride, pad, groups int) *archBuilder {
	oh := (b.h+2*pad-k)/stride + 1
	ow := (b.w+2*pad-k)/stride + 1
	cpg := int64(b.c / groups)
	out := int64(outC) * int64(oh) * int64(ow)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassLinear,
		MACs:    out * cpg * int64(k) * int64(k),
		InElems: int64(b.c) * int64(b.h) * int64(b.w), OutElems: out,
		Params: int64(outC)*cpg*int64(k)*int64(k) + int64(outC),
	})
	b.c, b.h, b.w = outC, oh, ow
	return b
}

func (b *archBuilder) bn(name string) *archBuilder {
	n := int64(b.c) * int64(b.h) * int64(b.w)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassBatchNorm, MACs: 4 * n, InElems: n, OutElems: n,
		Params: 2 * int64(b.c),
	})
	return b
}

func (b *archBuilder) relu(name string) *archBuilder {
	n := int64(b.c) * int64(b.h) * int64(b.w)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassReLU, MACs: n, InElems: n, OutElems: n,
	})
	return b
}

func (b *archBuilder) maxPool(name string, k, stride int) *archBuilder {
	oh := (b.h-k)/stride + 1
	ow := (b.w-k)/stride + 1
	out := int64(b.c) * int64(oh) * int64(ow)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassMaxPool, MACs: out * int64(k) * int64(k),
		InElems: int64(b.c) * int64(b.h) * int64(b.w), OutElems: out,
	})
	b.h, b.w = oh, ow
	return b
}

func (b *archBuilder) avgPool(name string, k, stride int) *archBuilder {
	oh := (b.h-k)/stride + 1
	ow := (b.w-k)/stride + 1
	out := int64(b.c) * int64(oh) * int64(ow)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassOther, MACs: out * int64(k) * int64(k),
		InElems: int64(b.c) * int64(b.h) * int64(b.w), OutElems: out,
	})
	b.h, b.w = oh, ow
	return b
}

func (b *archBuilder) dense(name string, out int) *archBuilder {
	in := int64(b.c) * int64(b.h) * int64(b.w)
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassLinear,
		MACs:    in * int64(out),
		InElems: in, OutElems: int64(out),
		Params: in*int64(out) + int64(out),
	})
	b.c, b.h, b.w = out, 1, 1
	return b
}

func (b *archBuilder) addResidual(name string, n int64) *archBuilder {
	b.a.Layers = append(b.a.Layers, LayerStat{
		Name: name, Class: ClassOther, MACs: n, InElems: 2 * n, OutElems: n,
	})
	return b
}

// VGG16Arch is the 224×224 ImageNet VGG16 (Simonyan & Zisserman) —
// 138 M parameters, ~15.5 G forward MACs.
func VGG16Arch() *Arch {
	b := newArchBuilder("VGG16", 3, 224, 224)
	block := func(stage string, convs, outC int) {
		for i := 0; i < convs; i++ {
			name := stage + "_conv" + string(rune('1'+i))
			b.conv(name, outC, 3, 1, 1, 1).relu(name + "_relu")
		}
		b.maxPool(stage+"_pool", 2, 2)
	}
	block("b1", 2, 64)
	block("b2", 2, 128)
	block("b3", 3, 256)
	block("b4", 3, 512)
	block("b5", 3, 512)
	b.dense("fc6", 4096).relu("fc6_relu")
	b.dense("fc7", 4096).relu("fc7_relu")
	b.dense("fc8", 1000)
	return b.a
}

// ResNet50Arch is the 224×224 ImageNet ResNet-50 (He et al.) —
// ~25.5 M parameters, ~4.1 G forward MACs.
func ResNet50Arch() *Arch {
	b := newArchBuilder("ResNet50", 3, 224, 224)
	b.conv("stem_conv", 64, 7, 2, 3, 1).bn("stem_bn").relu("stem_relu")
	b.maxPool("stem_pool", 3, 2)
	bottleneck := func(name string, mid, out, stride int, project bool) {
		inC, inH, inW := b.c, b.h, b.w
		b.conv(name+"_c1", mid, 1, 1, 0, 1).bn(name + "_bn1").relu(name + "_r1")
		b.conv(name+"_c2", mid, 3, stride, 1, 1).bn(name + "_bn2").relu(name + "_r2")
		b.conv(name+"_c3", out, 1, 1, 0, 1).bn(name + "_bn3")
		if project {
			// Shortcut projection conv operates on the block input.
			oh := (inH-1)/stride + 1
			ow := (inW-1)/stride + 1
			b.a.Layers = append(b.a.Layers, LayerStat{
				Name: name + "_proj", Class: ClassLinear,
				MACs:     int64(out) * int64(oh) * int64(ow) * int64(inC),
				InElems:  int64(inC) * int64(inH) * int64(inW),
				OutElems: int64(out) * int64(oh) * int64(ow),
				Params:   int64(out)*int64(inC) + int64(out),
			})
			b.bn(name + "_projbn")
		}
		b.addResidual(name+"_add", int64(b.c)*int64(b.h)*int64(b.w))
		b.relu(name + "_rout")
	}
	stage := func(prefix string, blocks, mid, out, stride int) {
		for i := 0; i < blocks; i++ {
			s := 1
			if i == 0 {
				s = stride
			}
			bottleneck(prefix+"_b"+string(rune('1'+i)), mid, out, s, i == 0)
		}
	}
	stage("s1", 3, 64, 256, 1)
	stage("s2", 4, 128, 512, 2)
	stage("s3", 6, 256, 1024, 2)
	stage("s4", 3, 512, 2048, 2)
	b.avgPool("gap", b.h, 1)
	b.dense("fc", 1000)
	return b.a
}

// MobileNetV1Arch is the 224×224 ImageNet MobileNetV1 (Howard et al.) —
// ~4.2 M parameters, ~570 M forward MACs. Used by the inference
// comparison (Fig 6a, which evaluates MobileNetV1 like Slalom does).
func MobileNetV1Arch() *Arch {
	b := newArchBuilder("MobileNetV1", 3, 224, 224)
	b.conv("stem", 32, 3, 2, 1, 1).bn("stem_bn").relu("stem_relu")
	dws := func(name string, outC, stride int) {
		b.conv(name+"_dw", b.c, 3, stride, 1, b.c).bn(name + "_dwbn").relu(name + "_dwrelu")
		b.conv(name+"_pw", outC, 1, 1, 0, 1).bn(name + "_pwbn").relu(name + "_pwrelu")
	}
	dws("d1", 64, 1)
	dws("d2", 128, 2)
	dws("d3", 128, 1)
	dws("d4", 256, 2)
	dws("d5", 256, 1)
	dws("d6", 512, 2)
	for i := 0; i < 5; i++ {
		dws("d7"+string(rune('a'+i)), 512, 1)
	}
	dws("d8", 1024, 2)
	dws("d9", 1024, 1)
	b.avgPool("gap", b.h, 1)
	b.dense("fc", 1000)
	return b.a
}

// MobileNetV2Arch is the 224×224 ImageNet MobileNetV2 (Sandler et al.) —
// ~3.4 M parameters, ~300 M forward MACs; the paper's worst case for GPU
// offload because depthwise separable convs shrink the linear fraction.
func MobileNetV2Arch() *Arch {
	b := newArchBuilder("MobileNetV2", 3, 224, 224)
	b.conv("stem", 32, 3, 2, 1, 1).bn("stem_bn").relu("stem_relu")
	invRes := func(name string, expand, outC, stride int) {
		inC := b.c
		residual := stride == 1 && inC == outC
		mid := inC * expand
		if expand != 1 {
			b.conv(name+"_exp", mid, 1, 1, 0, 1).bn(name + "_expbn").relu(name + "_exprelu")
		}
		b.conv(name+"_dw", mid, 3, stride, 1, mid).bn(name + "_dwbn").relu(name + "_dwrelu")
		b.conv(name+"_proj", outC, 1, 1, 0, 1).bn(name + "_projbn")
		if residual {
			b.addResidual(name+"_add", int64(b.c)*int64(b.h)*int64(b.w))
		}
	}
	type cfg struct{ t, c, n, s int }
	for bi, cf := range []cfg{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	} {
		for i := 0; i < cf.n; i++ {
			s := 1
			if i == 0 {
				s = cf.s
			}
			invRes("ir"+string(rune('1'+bi))+"_"+string(rune('a'+i)), cf.t, cf.c, s)
		}
	}
	b.conv("head", 1280, 1, 1, 0, 1).bn("head_bn").relu("head_relu")
	b.avgPool("gap", b.h, 1)
	b.dense("fc", 1000)
	return b.a
}
