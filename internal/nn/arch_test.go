package nn

import "testing"

func TestVGG16ArchCounts(t *testing.T) {
	a := VGG16Arch()
	// Published: 138.4 M params, ~15.5 G forward MACs.
	params := a.TotalParams()
	if params < 135e6 || params > 142e6 {
		t.Fatalf("VGG16 params = %d, want ≈138M", params)
	}
	totals := a.TotalsByClass()
	macs := totals[ClassLinear].MACs
	if macs < 15.0e9 || macs > 16.0e9 {
		t.Fatalf("VGG16 linear MACs = %d, want ≈15.5G", macs)
	}
	// VGG has no batch norm.
	if totals[ClassBatchNorm].MACs != 0 {
		t.Fatal("VGG16 should have no batch norm")
	}
}

func TestResNet50ArchCounts(t *testing.T) {
	a := ResNet50Arch()
	params := a.TotalParams()
	// Published: 25.6 M params, ~4.1 G MACs.
	if params < 24e6 || params > 27e6 {
		t.Fatalf("ResNet50 params = %d, want ≈25.5M", params)
	}
	macs := a.TotalsByClass()[ClassLinear].MACs
	if macs < 3.6e9 || macs > 4.4e9 {
		t.Fatalf("ResNet50 linear MACs = %d, want ≈4.1G", macs)
	}
	if a.TotalsByClass()[ClassBatchNorm].MACs == 0 {
		t.Fatal("ResNet50 must have batch norm cost")
	}
}

func TestMobileNetV1ArchCounts(t *testing.T) {
	a := MobileNetV1Arch()
	params := a.TotalParams()
	// Published: 4.2 M params, ~569 M MACs.
	if params < 3.8e6 || params > 4.6e6 {
		t.Fatalf("MobileNetV1 params = %d, want ≈4.2M", params)
	}
	macs := a.TotalsByClass()[ClassLinear].MACs
	if macs < 5.0e8 || macs > 6.4e8 {
		t.Fatalf("MobileNetV1 linear MACs = %d, want ≈569M", macs)
	}
}

func TestMobileNetV2ArchCounts(t *testing.T) {
	a := MobileNetV2Arch()
	params := a.TotalParams()
	// Published: 3.4 M params, ~300 M MACs.
	if params < 3.0e6 || params > 3.9e6 {
		t.Fatalf("MobileNetV2 params = %d, want ≈3.4M", params)
	}
	macs := a.TotalsByClass()[ClassLinear].MACs
	if macs < 2.6e8 || macs > 3.6e8 {
		t.Fatalf("MobileNetV2 linear MACs = %d, want ≈300M", macs)
	}
}

func TestLinearFractionOrdering(t *testing.T) {
	// The paper's core observation (Table 3): VGG16 is linear-dominated;
	// MobileNet/ResNet shift time into batch norm and other TEE ops.
	frac := func(a *Arch) float64 {
		tt := a.TotalsByClass()
		var total int64
		for _, v := range tt {
			total += v.MACs
		}
		return float64(tt[ClassLinear].MACs) / float64(total)
	}
	vgg, res, mob := frac(VGG16Arch()), frac(ResNet50Arch()), frac(MobileNetV2Arch())
	if !(vgg > res && vgg > mob) {
		t.Fatalf("linear fractions: vgg %.3f res %.3f mob %.3f — VGG must dominate", vgg, res, mob)
	}
	if vgg < 0.98 {
		t.Fatalf("VGG16 linear fraction %.3f unexpectedly low", vgg)
	}
}

func TestLargestActivation(t *testing.T) {
	a := VGG16Arch()
	// First conv block output: 64×224×224 = 3.2M elements.
	if got := a.LargestActivation(); got != 64*224*224 {
		t.Fatalf("largest activation = %d", got)
	}
}
