package nn

import (
	"darknight/internal/dataset"
	"darknight/internal/tensor"
)

// Model is a trainable network: a layer stack plus bookkeeping. It is the
// unit both training paths operate on — the float reference path here, and
// the quantized masked path in internal/sched.
type Model struct {
	Name    string
	InShape []int
	Classes int
	Stack   *Sequential
}

// NewModel wraps a layer stack.
func NewModel(name string, inShape []int, classes int, stack *Sequential) *Model {
	return &Model{Name: name, InShape: inShape, Classes: classes, Stack: stack}
}

// Params lists all learnable parameters.
func (m *Model) Params() []*Param { return m.Stack.Params() }

// ParamCount returns the total learnable element count.
func (m *Model) ParamCount() int64 {
	var n int64
	for _, p := range m.Params() {
		n += int64(p.W.Size())
	}
	return n
}

// Stats returns the flattened per-layer cost records.
func (m *Model) Stats() []LayerStat { return m.Stack.Stats() }

// Forward runs one example through the network.
func (m *Model) Forward(image []float64, train bool) *tensor.Tensor {
	x := tensor.FromSlice(image, m.InShape...)
	return m.Stack.Forward(x, train)
}

// Loss runs forward + loss for one example.
func (m *Model) Loss(ex dataset.Example, train bool) (float64, *tensor.Tensor) {
	logits := m.Forward(ex.Image, train)
	return SoftmaxCrossEntropy(logits, ex.Label)
}

// TrainBatch runs the float reference training step on one batch:
// per-example forward/backward with gradient accumulation, then a single
// SGD step on the batch-averaged gradients. Returns the mean loss.
func (m *Model) TrainBatch(batch []dataset.Example, opt *SGD) float64 {
	var total float64
	for _, ex := range batch {
		loss, grad := m.Loss(ex, true)
		total += loss
		m.Stack.Backward(grad)
	}
	inv := 1.0 / float64(len(batch))
	for _, p := range m.Params() {
		p.Grad.Scale(inv)
	}
	opt.Step(m.Params())
	return total * inv
}

// Evaluate returns top-1 accuracy on the dataset.
func (m *Model) Evaluate(d *dataset.Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for _, ex := range d.Items {
		logits := m.Forward(ex.Image, false)
		if Argmax(logits) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// LinearLayers returns the model's bilinear layers in forward order — the
// ops DarKnight offloads.
func (m *Model) LinearLayers() []Linear {
	var out []Linear
	var walk func(l Layer)
	walk = func(l Layer) {
		switch v := l.(type) {
		case *Sequential:
			for _, c := range v.Layers() {
				walk(c)
			}
		case *Residual:
			walk(v.body)
			if v.skip != nil {
				walk(v.skip)
			}
		default:
			if lin, ok := l.(Linear); ok {
				out = append(out, lin)
			}
		}
	}
	walk(m.Stack)
	return out
}
