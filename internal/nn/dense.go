package nn

import (
	"fmt"
	"math"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/tensor"
)

// Dense is a fully-connected layer y = W·x + b with W ∈ R^{out×in}.
type Dense struct {
	name    string
	in, out int
	w       *Param
	b       *Param
	lastIn  *tensor.Tensor
}

// NewDense constructs a dense layer with Kaiming-uniform init.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	w := tensor.New(out, in)
	bound := math.Sqrt(6.0 / float64(in))
	w.RandUniform(rng, bound)
	return &Dense{
		name: name, in: in, out: out,
		w: &Param{Name: name + ".w", W: w, Grad: tensor.New(out, in)},
		b: &Param{Name: name + ".b", W: tensor.New(out), Grad: tensor.New(out)},
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// OutShape implements Layer.
func (d *Dense) OutShape() []int { return []int{d.out} }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Stats implements Layer.
func (d *Dense) Stats() []LayerStat {
	return []LayerStat{{
		Name: d.name, Class: ClassLinear,
		MACs:    int64(d.in) * int64(d.out),
		InElems: int64(d.in), OutElems: int64(d.out),
		Params: int64(d.in)*int64(d.out) + int64(d.out),
	}}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Size() != d.in {
		panic(fmt.Sprintf("nn: %s input size %d, want %d", d.name, x.Size(), d.in))
	}
	d.lastIn = x
	y := d.LinearForwardFloat(x.Data)
	for i := range y {
		y[i] += d.b.W.Data[i]
	}
	return tensor.FromSlice(y, d.out)
}

// Backward implements Layer.
func (d *Dense) Backward(gout *tensor.Tensor) *tensor.Tensor {
	// dW += gout ⊗ x, dB += gout.
	for i := 0; i < d.out; i++ {
		g := gout.Data[i]
		if g != 0 {
			row := d.w.Grad.Data[i*d.in : (i+1)*d.in]
			for j, xv := range d.lastIn.Data {
				row[j] += g * xv
			}
		}
		d.b.Grad.Data[i] += g
	}
	return d.BackwardInputOnly(gout)
}

// BackwardInputOnly implements Linear: dX = Wᵀ·gout.
func (d *Dense) BackwardInputOnly(gout *tensor.Tensor) *tensor.Tensor {
	din := tensor.MatVecTransInto(make([]float64, d.in), d.w.W, gout.Data)
	return tensor.FromSlice(din, d.in)
}

// InLen implements Linear.
func (d *Dense) InLen() int { return d.in }

// OutLen implements Linear.
func (d *Dense) OutLen() int { return d.out }

// WLen implements Linear.
func (d *Dense) WLen() int { return d.in * d.out }

// WeightData implements Linear.
func (d *Dense) WeightData() []float64 { return d.w.W.Data }

// BiasData implements Linear.
func (d *Dense) BiasData() []float64 { return d.b.W.Data }

// LinearForwardFloat implements Linear: y = W·x (no bias).
func (d *Dense) LinearForwardFloat(x []float64) []float64 {
	return tensor.MatVecInto(make([]float64, d.out), d.w.W, x)
}

// LinearForwardField implements Linear over F_p.
//
//darknight:hotpath
func (d *Dense) LinearForwardField(wq, x field.Vec) field.Vec {
	//lint:ignore hotpathalloc the output vector escapes to the caller; one make per dispatch by design
	y := make(field.Vec, d.out)
	for i := 0; i < d.out; i++ {
		y[i] = field.Dot(wq[i*d.in:(i+1)*d.in], x)
	}
	return y
}

// GradWeightsField implements Linear: flat outer product delta ⊗ x.
func (d *Dense) GradWeightsField(delta, x field.Vec) field.Vec {
	out := make(field.Vec, d.out*d.in)
	for i, dv := range delta {
		if dv == 0 {
			continue
		}
		row := out[i*d.in : (i+1)*d.in]
		for j, xv := range x {
			row[j] = field.Mul(dv, xv)
		}
	}
	return out
}

// AddGradW implements Linear.
func (d *Dense) AddGradW(dw []float64, s float64) {
	for i, v := range dw {
		d.w.Grad.Data[i] += s * v
	}
}

// AddGradB implements Linear.
func (d *Dense) AddGradB(gout *tensor.Tensor, s float64) {
	for i := 0; i < d.out; i++ {
		d.b.Grad.Data[i] += s * gout.Data[i]
	}
}
