package dataset

import (
	"math/rand"
	"testing"
)

func TestSyntheticCIFARShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := SyntheticCIFAR(rng, 100, 10, 3, 32, 32, 0.1)
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	c, h, w := d.Shape()
	if c != 3 || h != 32 || w != 32 {
		t.Fatalf("shape = %d %d %d", c, h, w)
	}
	for _, ex := range d.Items {
		if len(ex.Image) != 3*32*32 {
			t.Fatalf("image len = %d", len(ex.Image))
		}
		if ex.Label < 0 || ex.Label >= 10 {
			t.Fatalf("label = %d", ex.Label)
		}
	}
}

func TestSyntheticCIFARDeterministic(t *testing.T) {
	a := SyntheticCIFAR(rand.New(rand.NewSource(7)), 10, 4, 1, 8, 8, 0.05)
	b := SyntheticCIFAR(rand.New(rand.NewSource(7)), 10, 4, 1, 8, 8, 0.05)
	for i := range a.Items {
		if a.Items[i].Label != b.Items[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.Items[i].Image {
			if a.Items[i].Image[j] != b.Items[i].Image[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// Nearest-centroid classification on the noiseless patterns should be
	// nearly perfect — the property Fig 4's learnability claim rests on.
	rng := rand.New(rand.NewSource(2))
	d := SyntheticCIFAR(rng, 400, 4, 3, 16, 16, 0.05)
	dim := 3 * 16 * 16
	centroids := make([][]float64, 4)
	counts := make([]int, 4)
	for k := range centroids {
		centroids[k] = make([]float64, dim)
	}
	for _, ex := range d.Items[:200] {
		counts[ex.Label]++
		for j, v := range ex.Image {
			centroids[ex.Label][j] += v
		}
	}
	for k := range centroids {
		if counts[k] == 0 {
			t.Skip("degenerate draw: empty class")
		}
		for j := range centroids[k] {
			centroids[k][j] /= float64(counts[k])
		}
	}
	correct := 0
	for _, ex := range d.Items[200:] {
		best, bestDist := -1, 0.0
		for k := range centroids {
			var dist float64
			for j, v := range ex.Image {
				diff := v - centroids[k][j]
				dist += diff * diff
			}
			if best < 0 || dist < bestDist {
				best, bestDist = k, dist
			}
		}
		if best == ex.Label {
			correct++
		}
	}
	acc := float64(correct) / 200
	if acc < 0.95 {
		t.Fatalf("nearest-centroid accuracy %.2f < 0.95 — classes not separable", acc)
	}
}

func TestSplitAndBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := SyntheticCIFAR(rng, 100, 2, 1, 4, 4, 0.1)
	train, test := d.Split(0.8)
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	b := train.Batches(16)
	if len(b) != 5 {
		t.Fatalf("batches = %d", len(b))
	}
	for _, batch := range b {
		if len(batch) != 16 {
			t.Fatalf("batch size = %d", len(batch))
		}
	}
	// Partial batch dropped.
	if got := len(train.Batches(30)); got != 2 {
		t.Fatalf("batches(30) = %d", got)
	}
}

func TestShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := SyntheticCIFAR(rng, 50, 5, 1, 4, 4, 0)
	labels := make([]int, d.Len())
	for i, ex := range d.Items {
		labels[i] = ex.Label
	}
	d.Shuffle(rng)
	same := true
	for i, ex := range d.Items {
		if ex.Label != labels[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle left order unchanged (astronomically unlikely)")
	}
	if d.Len() != 50 {
		t.Fatal("shuffle changed length")
	}
}

func TestImageNetShape(t *testing.T) {
	c, h, w, classes := ImageNetShape()
	if c != 3 || h != 224 || w != 224 || classes != 1000 {
		t.Fatalf("geometry = %d %d %d %d", c, h, w, classes)
	}
}

func TestRandomImages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := RandomImages(rng, 3, 3, 8, 8)
	if d.Len() != 3 || len(d.Items[0].Image) != 192 {
		t.Fatal("random images malformed")
	}
}
