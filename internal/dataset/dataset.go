// Package dataset provides deterministic synthetic image datasets standing
// in for CIFAR-10 and ImageNet (hardware/data substitution documented in
// DESIGN.md). The accuracy experiments (paper Fig 4) need a *learnable*
// distribution with CIFAR's shape, not the actual images; the performance
// experiments only consume tensor shapes.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Example is a single labelled image in CHW layout.
type Example struct {
	Image []float64 // C*H*W
	Label int
}

// Dataset is an in-memory labelled image set.
type Dataset struct {
	C, H, W int
	Classes int
	Items   []Example
}

// Shape returns the per-image element count.
func (d *Dataset) Shape() (c, h, w int) { return d.C, d.H, d.W }

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Items) }

// SyntheticCIFAR generates n examples shaped like CIFAR-10 (3×32×32, 10
// classes) — or any other geometry — where each class is a distinct smooth
// spatial pattern (class-specific 2-D sinusoid mixed across channels) plus
// Gaussian pixel noise. The classes are linearly well-separated enough for
// small CNNs to learn quickly, which is what the Fig 4 raw-vs-DarKnight
// comparison requires.
func SyntheticCIFAR(rng *rand.Rand, n, classes, c, h, w int, noise float64) *Dataset {
	if classes < 2 {
		panic(fmt.Sprintf("dataset: need >= 2 classes, got %d", classes))
	}
	d := &Dataset{C: c, H: h, W: w, Classes: classes, Items: make([]Example, n)}
	// Per-class pattern parameters, fixed for the dataset's lifetime.
	type pattern struct{ fx, fy, phase, chanShift float64 }
	pats := make([]pattern, classes)
	for k := range pats {
		pats[k] = pattern{
			fx:        1 + float64(k%4),
			fy:        1 + float64((k/4)%4),
			phase:     2 * math.Pi * float64(k) / float64(classes),
			chanShift: float64(k) / float64(classes),
		}
	}
	for i := range d.Items {
		label := rng.Intn(classes)
		p := pats[label]
		img := make([]float64, c*h*w)
		for ch := 0; ch < c; ch++ {
			chw := (p.chanShift + float64(ch)/float64(c)) * math.Pi
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := math.Sin(p.fx*2*math.Pi*float64(x)/float64(w)+p.phase+chw) *
						math.Cos(p.fy*2*math.Pi*float64(y)/float64(h)+p.phase)
					img[(ch*h+y)*w+x] = 0.5*v + noise*rng.NormFloat64()
				}
			}
		}
		d.Items[i] = Example{Image: img, Label: label}
	}
	return d
}

// ImageNetShape returns the canonical ImageNet input geometry used by the
// performance experiments (224×224×3, 1000 classes). No pixel data is
// materialized; op-count workloads only need the geometry.
func ImageNetShape() (c, h, w, classes int) { return 3, 224, 224, 1000 }

// RandomImages generates n unlabelled random images of the given geometry,
// used by throughput-style benchmarks that never look at the labels.
func RandomImages(rng *rand.Rand, n, c, h, w int) *Dataset {
	d := &Dataset{C: c, H: h, W: w, Classes: 1, Items: make([]Example, n)}
	for i := range d.Items {
		img := make([]float64, c*h*w)
		for j := range img {
			img[j] = rng.NormFloat64() * 0.5
		}
		d.Items[i] = Example{Image: img}
	}
	return d
}

// Split partitions the dataset into train/test at the given train fraction.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	cut := int(float64(len(d.Items)) * trainFrac)
	train = &Dataset{C: d.C, H: d.H, W: d.W, Classes: d.Classes, Items: d.Items[:cut]}
	test = &Dataset{C: d.C, H: d.H, W: d.W, Classes: d.Classes, Items: d.Items[cut:]}
	return train, test
}

// Batches cuts the dataset into consecutive batches of size bs (the last
// partial batch is dropped, matching common training practice).
func (d *Dataset) Batches(bs int) [][]Example {
	var out [][]Example
	for i := 0; i+bs <= len(d.Items); i += bs {
		out = append(out, d.Items[i:i+bs])
	}
	return out
}

// Shuffle permutes the examples in place.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Items), func(i, j int) {
		d.Items[i], d.Items[j] = d.Items[j], d.Items[i]
	})
}
