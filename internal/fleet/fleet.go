// Package fleet is the self-healing multi-tenant GPU fleet manager: the
// layer between the serving workers (internal/serve) and the physical
// device simulation (internal/gpu) that owns the device population over
// time. DarKnight's coded dispatch *detects* a tampering GPU through
// redundant decoding; this package acts on the detection so the fault does
// not recur:
//
//   - a health tracker scores every device from per-dispatch outcomes
//     (attributed integrity faults, latency EWMA, straggler counts) and
//     quarantines devices crossing a fault threshold, with probabilistic
//     probation re-admission so transient faults recover (health.go);
//   - a hash registry assigns every device admission a fingerprint, so
//     quarantine events and re-admissions have stable identities
//     (registry.go);
//   - a fair-share gang scheduler replaces raw FIFO lease blocking: named
//     tenants with weights, per-tenant queues, DRF-style share accounting,
//     and preemption-free but starvation-free all-or-none gang admission
//     (this file);
//   - grants dispatch with a straggler-tolerant quorum — the MDS property
//     makes the forward result decodable from any S of the S+E coded
//     responses — and can speculatively re-dispatch a lagging coded share
//     to a spare device (grant.go).
//
// This is the gang/fair-share model of cluster schedulers like NVIDIA's
// KAI, scaled down to one process, with the health machinery DarKnight's
// integrity detection makes possible.
package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/obs"
)

// TenantConfig pre-registers a named tenant with a fair-share weight.
type TenantConfig struct {
	Name string
	// Weight scales the tenant's fair share; a weight-2 tenant is entitled
	// to twice the device time of a weight-1 tenant under contention.
	// <= 0 selects 1.
	Weight float64
}

// Config tunes the fleet manager. The zero value is a sensible operating
// point; fields use 0 = default, negative = disabled where noted.
type Config struct {
	// Tenants pre-registers named tenants with weights. Tenants not listed
	// here are auto-registered at weight 1 on first use.
	Tenants []TenantConfig
	// FaultThreshold quarantines a device when its fault score reaches it.
	// An exactly-attributed integrity fault scores a full threshold
	// (immediate quarantine); unattributed gang-wide suspicion scores
	// SuspectScore. Default 1.0.
	FaultThreshold float64
	// SuspectScore is added to every gang member's fault score when an
	// integrity violation is detected but not attributable (E < 2). A
	// persistent offender accumulates suspicion across differently
	// composed gangs until it crosses the threshold. Default 0.4.
	SuspectScore float64
	// FaultDecay is the fraction of the fault score retained after a clean
	// dispatch, so transient suspicion bleeds off. Default 0.5.
	FaultDecay float64
	// ProbationProbability is the chance, per admission pass, that a
	// quarantined device is re-admitted on probation. Probation devices
	// serve normally but carry half-threshold fault scores — one more
	// attributed fault sends them straight back. Default 0.05; negative
	// disables re-admission (quarantine is then permanent).
	ProbationProbability float64
	// ProbationClean promotes a probation device back to healthy after
	// this many clean dispatches. Default 3.
	ProbationClean int
	// ProbationBackoff is the minimum quarantine dwell time before the
	// first re-admission draw; it doubles with every further quarantine of
	// the same device (capped at 64x), so a persistent offender re-tries at
	// exponentially sparser intervals instead of burning a recovered batch
	// every few milliseconds. Default 100ms.
	ProbationBackoff time.Duration
	// SpeculateAfter re-dispatches the coded share of a device that has
	// not answered within this duration to a borrowed spare device (first
	// response wins). 0 disables speculation. Speculation only engages on
	// quorum dispatches (Grant.ForwardQuorum with quorum < gang size) —
	// in DarKnight terms, when the pipeline runs with StragglerSlack >= 1
	// and Redundancy >= 2.
	SpeculateAfter time.Duration
	// Seed drives the probation re-admission draws, making fleet runs
	// reproducible.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.FaultThreshold == 0 {
		c.FaultThreshold = 1.0
	}
	if c.SuspectScore == 0 {
		c.SuspectScore = 0.4
	}
	if c.FaultDecay == 0 {
		c.FaultDecay = 0.5
	}
	if c.ProbationProbability == 0 {
		c.ProbationProbability = 0.05
	}
	if c.ProbationClean == 0 {
		c.ProbationClean = 3
	}
	if c.ProbationBackoff == 0 {
		c.ProbationBackoff = 100 * time.Millisecond
	}
	return c
}

// tenant is one named traffic source with its own queue and share account.
type tenant struct {
	name   string
	weight float64

	queue         []*waiter // FIFO within the tenant
	inFlight      int       // devices currently granted
	deviceSeconds float64   // lifetime device-time consumed
	grants        int64
}

// dominantShare is the tenant's current allocation normalized by weight —
// the DRF ordering key. Historical consumption breaks ties so bursty
// tenants do not permanently shade steady ones.
func (t *tenant) dominantShare() float64 { return float64(t.inFlight) / t.weight }

func (t *tenant) historicalShare() float64 { return t.deviceSeconds / t.weight }

// waiter is one blocked gang acquisition.
type waiter struct {
	n     int
	seq   int64
	ready chan grantResult
}

// grantResult is what an admission pass delivers to a waiter: a grant, or
// the verdict that the gang can never be satisfied.
type grantResult struct {
	g   *Grant
	err error
}

// ErrFleetShrunk is returned when permanent quarantines (probation
// disabled) have left fewer circulating devices than a gang needs.
var ErrFleetShrunk = fmt.Errorf("fleet: quarantines have permanently shrunk the pool below the gang size")

// Manager owns the device population: admission, health, quarantine and
// fair-share gang scheduling. All methods are safe for concurrent use.
type Manager struct {
	cfg     Config
	cluster *gpu.Cluster
	reg     *Registry

	mu       sync.Mutex
	devs     []*deviceRec
	free     []int // cluster indices free and in circulation
	tenants  map[string]*tenant
	names    []string // registration order, for deterministic iteration
	rng      *rand.Rand
	seq      int64 // waiter arrival counter
	events   []Event
	eventSeq int64

	quarantineEvents int64
	readmissions     int64
	stragglerEvents  int64
	speculations     int64
	asyncDispatches  int64
	peakOverlap      int
	borrowed         int   // devices currently out on speculative loans
	sloBreaches      int64 // SLO burn-rate crossings delivered via SubscribeSLO

	// rec, when non-nil, receives grant/release/quarantine/speculation
	// events (see SetObserver in obs.go).
	rec *obs.FlightRecorder
	// flightHist, when non-nil, receives each device's mean flight
	// latency at grant release (see RegisterMetrics).
	flightHist *obs.HistogramVec
}

// NewManager puts every device of the cluster under fleet management.
func NewManager(cluster *gpu.Cluster, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:     cfg,
		cluster: cluster,
		reg:     NewRegistry(),
		devs:    make([]*deviceRec, cluster.Size()),
		free:    make([]int, 0, cluster.Size()),
		tenants: make(map[string]*tenant),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	for i := 0; i < cluster.Size(); i++ {
		rec := &deviceRec{idx: i, id: cluster.Device(i).ID()}
		rec.fp = m.reg.Register(rec.id, rec.gen)
		m.devs[i] = rec
		m.free = append(m.free, i)
	}
	for _, tc := range cfg.Tenants {
		m.tenantLocked(tc.Name, tc.Weight)
	}
	return m
}

// Cluster returns the managed physical cluster.
func (m *Manager) Cluster() *gpu.Cluster { return m.cluster }

// Registry returns the device identity registry.
func (m *Manager) Registry() *Registry { return m.reg }

// tenantLocked returns (registering if needed) the named tenant.
func (m *Manager) tenantLocked(name string, weight float64) *tenant {
	if t, ok := m.tenants[name]; ok {
		if weight > 0 {
			t.weight = weight
		}
		return t
	}
	if weight <= 0 {
		weight = 1
	}
	t := &tenant{name: name, weight: weight}
	m.tenants[name] = t
	m.names = append(m.names, name)
	return t
}

// Acquire blocks until the named tenant is granted n devices atomically —
// all or none, a gang — under fair-share arbitration, then returns the
// grant. Cancellation of ctx aborts the wait with ctx.Err(). Quarantined
// devices are outside the grantable pool; if quarantines shrink the pool
// below n, Acquire waits for probation re-admission to restore it.
func (m *Manager) Acquire(ctx context.Context, tenantName string, n int) (*Grant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: gang size %d must be positive", n)
	}
	if n > m.cluster.Size() {
		return nil, fmt.Errorf("fleet: gang of %d devices can never fit fleet of %d", n, m.cluster.Size())
	}
	m.mu.Lock()
	t := m.tenantLocked(tenantName, 0)
	m.seq++
	w := &waiter{n: n, seq: m.seq, ready: make(chan grantResult, 1)}
	t.queue = append(t.queue, w)
	m.admitLocked()
	m.mu.Unlock()

	// Uncontended fast path: the admission pass above usually granted
	// synchronously — no timer needed.
	select {
	case r := <-w.ready:
		return r.g, r.err
	default:
	}

	// Blocked waiters re-run admission periodically: releases drive the
	// normal wake path, but when quarantines have shrunk the pool below the
	// gang size nothing ever releases — only a fresh probation draw can
	// restore capacity, and draws happen on admission passes.
	retry := time.NewTicker(probationRetry)
	defer retry.Stop()
	for {
		select {
		case r := <-w.ready:
			return r.g, r.err
		case <-retry.C:
			m.mu.Lock()
			m.admitLocked()
			m.mu.Unlock()
		case <-ctx.Done():
			m.mu.Lock()
			// The grant may have raced the cancellation: if it already
			// landed, take it so it can be returned to the pool.
			var granted *Grant
			select {
			case r := <-w.ready:
				granted = r.g
			default:
				for i, q := range t.queue {
					if q == w {
						t.queue = append(t.queue[:i], t.queue[i+1:]...)
						break
					}
				}
			}
			m.mu.Unlock()
			if granted != nil {
				granted.Release()
			}
			return nil, ctx.Err()
		}
	}
}

// probationRetry is how often a blocked acquisition re-runs the admission
// pass (and thus the probation draw) when no release wakes it.
const probationRetry = 5 * time.Millisecond

// TryAcquire is the non-blocking Acquire: it runs one admission pass and
// returns the gang grant if it was satisfied immediately, or (nil, nil)
// when granting would have to wait. Share order is respected — the attempt
// queues behind earlier waiters and is withdrawn if not served, so
// TryAcquire can never jump the fair-share line. Pipelined workers use it
// to avoid deadlocking on a tight pool: rather than blocking for a second
// gang while holding completed-but-unreleased grants, they retire a batch
// and retry.
func (m *Manager) TryAcquire(tenantName string, n int) (*Grant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: gang size %d must be positive", n)
	}
	if n > m.cluster.Size() {
		return nil, fmt.Errorf("fleet: gang of %d devices can never fit fleet of %d", n, m.cluster.Size())
	}
	m.mu.Lock()
	t := m.tenantLocked(tenantName, 0)
	m.seq++
	w := &waiter{n: n, seq: m.seq, ready: make(chan grantResult, 1)}
	t.queue = append(t.queue, w)
	m.admitLocked()
	var r grantResult
	granted := false
	select {
	case r = <-w.ready:
		granted = true
	default:
		for i, q := range t.queue {
			if q == w {
				t.queue = append(t.queue[:i], t.queue[i+1:]...)
				break
			}
		}
	}
	m.mu.Unlock()
	if !granted {
		return nil, nil
	}
	return r.g, r.err
}

// admitLocked is the fair-share admission pass: it first gives quarantined
// devices their probabilistic probation chance, then repeatedly grants the
// head-of-queue gang of the tenant with the lowest dominant share. Grants
// are preemption-free (never revoked) and admission is in strict share
// order — when the neediest tenant's gang does not fit the free pool yet,
// capacity accrues for it rather than being handed to a better-fitting
// tenant, which is what makes the policy starvation-free even when gang
// sizes differ (a head-of-line bypass would let small-gang tenants keep
// the pool permanently fragmented). Waiters whose gang can never be
// satisfied — permanent quarantines (probation disabled) have shrunk the
// circulating population below the gang size — fail with ErrFleetShrunk
// instead of blocking forever.
func (m *Manager) admitLocked() {
	// Probation draws happen only under demand: re-admission exists to
	// restore capacity someone is waiting for, not to rush a freshly
	// quarantined device back into an idle pool.
	if m.hasWaitersLocked() {
		m.probationLocked()
	}
	if m.cfg.ProbationProbability < 0 {
		m.failImpossibleLocked()
	}
	for {
		var best *tenant
		for _, name := range m.names {
			t := m.tenants[name]
			if len(t.queue) == 0 {
				continue
			}
			if best == nil || lessShare(t, best) {
				best = t
			}
		}
		if best == nil || best.queue[0].n > len(m.free) {
			return
		}
		w := best.queue[0]
		best.queue = best.queue[1:]
		ids := m.pickLocked(w.n)
		best.inFlight += w.n
		best.grants++
		if m.rec != nil {
			m.rec.Record(obs.Event{Kind: obs.KindGrant, Subsystem: "fleet", Device: -1, Slot: -1,
				Tenant: best.name, Detail: fmt.Sprintf("gang of %d, cluster slots %v", w.n, ids)})
		}
		w.ready <- grantResult{g: newGrant(m, best, ids)}
	}
}

// failImpossibleLocked delivers ErrFleetShrunk to every waiter whose gang
// exceeds the circulating (non-quarantined) device population — with
// probation disabled that capacity is never coming back.
func (m *Manager) failImpossibleLocked() {
	circulating := 0
	for _, rec := range m.devs {
		if rec.state != Quarantined {
			circulating++
		}
	}
	for _, name := range m.names {
		t := m.tenants[name]
		kept := t.queue[:0]
		for _, w := range t.queue {
			if w.n > circulating {
				w.ready <- grantResult{err: fmt.Errorf("%w: gang of %d, %d devices circulating", ErrFleetShrunk, w.n, circulating)}
				continue
			}
			kept = append(kept, w)
		}
		t.queue = kept
	}
}

func (m *Manager) hasWaitersLocked() bool {
	for _, t := range m.tenants {
		if len(t.queue) > 0 {
			return true
		}
	}
	return false
}

// lessShare orders tenants for admission: lowest current DRF share first,
// then lowest historical consumption, then earliest waiting request.
func lessShare(a, b *tenant) bool {
	if as, bs := a.dominantShare(), b.dominantShare(); as != bs {
		return as < bs
	}
	if ah, bh := a.historicalShare(), b.historicalShare(); ah != bh {
		return ah < bh
	}
	return a.queue[0].seq < b.queue[0].seq
}

// pickLocked removes and returns n devices from the free pool, best first:
// lowest straggle *rate* (every quorum return brands its slowest member,
// so healthy devices settle near the same modest rate while a chronically
// slow one misses nearly every quorum), then lowest latency EWMA. A
// straggler so slow its responses never land before release has no EWMA at
// all — the rate is what demotes it, letting spares absorb its share of
// the hot path.
func (m *Manager) pickLocked(n int) []int {
	rate := func(d *deviceRec) float64 {
		if d.dispatches == 0 {
			return 0
		}
		return float64(d.stragglers) / float64(d.dispatches)
	}
	sort.Slice(m.free, func(i, j int) bool {
		a, b := m.devs[m.free[i]], m.devs[m.free[j]]
		if ra, rb := rate(a), rate(b); ra != rb {
			return ra < rb
		}
		if a.ewma != b.ewma {
			return a.ewma < b.ewma
		}
		return a.idx < b.idx
	})
	ids := make([]int, n)
	copy(ids, m.free[:n])
	m.free = m.free[n:]
	for _, idx := range ids {
		m.devs[idx].leased = true
	}
	return ids
}

// release returns a grant's devices to the pool, folds its health
// observations into the tracker and charges the tenant's share account.
func (m *Manager) release(g *Grant) {
	elapsed := time.Since(g.start)
	g.mu.Lock()
	faulted := append([]bool(nil), g.faulted...)
	suspect := g.suspect
	latSum := append([]time.Duration(nil), g.latSum...)
	latN := append([]int64(nil), g.latN...)
	straggles := append([]int(nil), g.straggles...)
	specs := g.specCount
	asyncCount := g.asyncCount
	outPeak := g.outPeak
	g.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	g.t.inFlight -= len(g.ids)
	g.t.deviceSeconds += elapsed.Seconds() * float64(len(g.ids))
	if m.rec != nil {
		nf := 0
		for _, f := range faulted {
			if f {
				nf++
			}
		}
		detail := fmt.Sprintf("held %s, %d async dispatches", elapsed.Round(time.Microsecond), asyncCount)
		if nf > 0 {
			detail += fmt.Sprintf(", %d attributed faults", nf)
		}
		if suspect {
			detail += ", gang-wide suspicion"
		}
		m.rec.Record(obs.Event{Kind: obs.KindRelease, Subsystem: "fleet", Device: -1, Slot: -1,
			Tenant: g.t.name, Detail: detail})
	}
	m.speculations += specs
	m.asyncDispatches += asyncCount
	if outPeak > m.peakOverlap {
		m.peakOverlap = outPeak
	}
	for slot, idx := range g.ids {
		rec := m.devs[idx]
		rec.leased = false
		var mean time.Duration
		if latN[slot] > 0 {
			mean = latSum[slot] / time.Duration(latN[slot])
			m.flightHist.Observe(strconv.Itoa(rec.id), mean.Seconds())
		}
		switch {
		case faulted[slot]:
			m.reportFaultLocked(rec, true)
		case suspect:
			m.reportFaultLocked(rec, false)
		default:
			m.reportCleanLocked(rec, mean, straggles[slot])
		}
		if rec.state != Quarantined {
			m.free = append(m.free, idx)
		}
	}
	m.stragglerEventsAdd(straggles)
	m.admitLocked()
}

func (m *Manager) stragglerEventsAdd(straggles []int) {
	for _, s := range straggles {
		m.stragglerEvents += int64(s)
	}
}

// borrowSpare takes one free device out of the pool for a single
// speculative job. Returns false when the pool is empty — speculation is
// strictly best-effort and never waits.
func (m *Manager) borrowSpare() (*deviceRec, gpu.Device, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) == 0 {
		return nil, nil, false
	}
	ids := m.pickLocked(1)
	rec := m.devs[ids[0]]
	m.borrowed++
	return rec, m.cluster.Device(rec.idx), true
}

// returnSpare gives a borrowed device back and credits its latency.
func (m *Manager) returnSpare(rec *deviceRec, lat time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec.leased = false
	m.borrowed--
	m.reportCleanLocked(rec, lat, 0)
	if rec.state != Quarantined {
		m.free = append(m.free, rec.idx)
	}
	m.admitLocked()
}
