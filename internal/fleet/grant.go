package fleet

import (
	"fmt"
	"sync"
	"time"

	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/obs"
)

// Grant is temporary exclusive ownership of a device gang plus the
// fleet-side dispatch machinery. It implements the runtime's Fleet surface
// (Size/ForwardAll/BackwardAll) and the straggler-tolerant ForwardQuorum
// extension, records per-device outcomes (latency, stragglers, faults) and
// folds them into the health tracker on Release.
type Grant struct {
	m     *Manager
	t     *tenant
	ids   []int // cluster indices, slot i serves coded input i
	devs  []gpu.Device
	start time.Time
	once  sync.Once

	mu        sync.Mutex
	latSum    []time.Duration
	latN      []int64
	straggles []int
	faulted   []bool
	suspect   bool
	specCount int64

	// Overlapping-dispatch tracking for the async API: a pipelined engine
	// holds several coded batches in flight on one gang at once, so the
	// grant counts outstanding completion handles (and waits them out on
	// Release before the devices go back to the pool).
	inflight   sync.WaitGroup
	outNow     int   // currently outstanding async dispatches
	outPeak    int   // high-water mark of outNow over the grant's life
	asyncCount int64 // lifetime async dispatches issued

	// results is the reusable wait-all gather buffer; valid between
	// dispatches of the single engine driving this grant.
	results []field.Vec
}

func newGrant(m *Manager, t *tenant, ids []int) *Grant {
	devs := make([]gpu.Device, len(ids))
	for i, idx := range ids {
		devs[i] = m.cluster.Device(idx)
	}
	return &Grant{
		m:         m,
		t:         t,
		ids:       ids,
		devs:      devs,
		start:     time.Now(),
		latSum:    make([]time.Duration, len(ids)),
		latN:      make([]int64, len(ids)),
		straggles: make([]int, len(ids)),
		faulted:   make([]bool, len(ids)),
	}
}

// Size returns the gang size.
func (g *Grant) Size() int { return len(g.ids) }

// DeviceIDs returns the physical device IDs backing the gang slots.
func (g *Grant) DeviceIDs() []int {
	out := make([]int, len(g.devs))
	for i, d := range g.devs {
		out[i] = d.ID()
	}
	return out
}

// Tenant returns the tenant the gang is charged to.
func (g *Grant) Tenant() string { return g.t.name }

// Slots returns the cluster slot indices of the gang in coding order
// (slot i serves coded input i) — the identity the snapshot batch log
// records so replay can re-acquire exactly this gang.
func (g *Grant) Slots() []int { return append([]int(nil), g.ids...) }

// record accumulates one device response latency.
func (g *Grant) record(slot int, lat time.Duration) {
	g.mu.Lock()
	g.latSum[slot] += lat
	g.latN[slot]++
	g.mu.Unlock()
}

// ForwardAll dispatches coded inputs one-per-device and gathers every
// result in slot order — the wait-for-all path, keeping the caller's
// zero-allocation buffers live only until the next dispatch.
func (g *Grant) ForwardAll(key string, kernel gpu.LinearKernel, coded []field.Vec) ([]field.Vec, error) {
	n := len(coded)
	if n > len(g.devs) {
		return nil, fmt.Errorf("fleet: %d coded inputs for gang of %d", n, len(g.devs))
	}
	if cap(g.results) < n {
		g.results = make([]field.Vec, n)
	}
	results := g.results[:n]
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := range coded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.devs[i].LinearForward(gpu.SlotKey(key, i), kernel, coded[i])
			g.record(i, time.Since(t0))
		}(i)
	}
	wg.Wait()
	return results, nil
}

// beginAsync registers one outstanding async dispatch.
func (g *Grant) beginAsync() {
	g.inflight.Add(1)
	g.mu.Lock()
	g.outNow++
	if g.outNow > g.outPeak {
		g.outPeak = g.outNow
	}
	g.asyncCount++
	g.mu.Unlock()
}

// endAsync retires one outstanding async dispatch (its handle completed;
// quorum laggards may still be running on their own time, exactly as on
// the synchronous quorum path).
func (g *Grant) endAsync() {
	g.mu.Lock()
	g.outNow--
	g.mu.Unlock()
	g.inflight.Done()
}

// Outstanding returns the number of async dispatches currently in flight
// on this gang.
func (g *Grant) Outstanding() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.outNow
}

// ForwardAllAsync is ForwardAll returning immediately with a completion
// handle. Unlike the synchronous path it gathers into a per-dispatch
// buffer, so a pipelined caller may hold any number of dispatches
// outstanding on the same gang; Release waits for all of them.
func (g *Grant) ForwardAllAsync(key string, kernel gpu.LinearKernel, coded []field.Vec) *gpu.Pending {
	p := gpu.NewPending()
	n := len(coded)
	if n > len(g.devs) {
		p.Complete(nil, nil, fmt.Errorf("fleet: %d coded inputs for gang of %d", n, len(g.devs)))
		return p
	}
	g.beginAsync()
	results := make([]field.Vec, n)
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := range coded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = g.devs[i].LinearForward(gpu.SlotKey(key, i), kernel, coded[i])
			g.record(i, time.Since(t0))
		}(i)
	}
	go func() {
		wg.Wait()
		g.endAsync()
		p.Complete(results, nil, nil)
	}()
	return p
}

// ForwardQuorumAsync is ForwardQuorum returning immediately with a
// completion handle; the handle completes as soon as the quorum is met
// (laggards and speculative retries keep running past it, as on the
// synchronous path). The caller-side lifetime rules of ForwardQuorum apply
// unchanged: coded inputs and the kernel's captured state must outlive the
// dispatch unboundedly.
func (g *Grant) ForwardQuorumAsync(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) *gpu.Pending {
	p := gpu.NewPending()
	g.beginAsync()
	go func() {
		results, present, err := g.ForwardQuorum(key, kernel, coded, quorum)
		g.endAsync()
		p.Complete(results, present, err)
	}()
	return p
}

// quorumState collects responses for one early-return dispatch. Laggards
// keep delivering into it after the quorum snapshot is taken; the snapshot
// arrays handed to the caller are never mutated again.
type quorumState struct {
	mu      sync.Mutex
	results []field.Vec
	filled  []bool
}

// deliver records a response for a slot; first writer wins. Each fill
// sends one token on arrived.
func (q *quorumState) deliver(slot int, y field.Vec, arrived chan<- int) {
	q.mu.Lock()
	if q.filled[slot] {
		q.mu.Unlock()
		return
	}
	q.filled[slot] = true
	q.results[slot] = y
	q.mu.Unlock()
	arrived <- slot
}

func (q *quorumState) snapshot() ([]field.Vec, []bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]field.Vec, len(q.results))
	present := make([]bool, len(q.filled))
	copy(out, q.results)
	copy(present, q.filled)
	return out, present
}

// ForwardQuorum dispatches all coded inputs but returns as soon as quorum
// responses have arrived — the MDS property lets the decoder proceed
// without the stragglers. Devices that missed the quorum are recorded as
// stragglers (their responses, arriving later, are discarded), and when
// the manager's SpeculateAfter window expires first, a lagging slot's
// coded share is re-dispatched to a borrowed spare device, first response
// winning. The returned slices are immutable snapshots.
//
// The caller must guarantee the coded inputs and the kernel's captured
// state outlive the call unboundedly (laggard kernels finish on their own
// time): internal/sched clones them out of its arena on the quorum path.
func (g *Grant) ForwardQuorum(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) ([]field.Vec, []bool, error) {
	n := len(coded)
	if n > len(g.devs) {
		return nil, nil, fmt.Errorf("fleet: %d coded inputs for gang of %d", n, len(g.devs))
	}
	if quorum <= 0 || quorum >= n {
		results, err := g.ForwardAll(key, kernel, coded)
		if err != nil {
			return nil, nil, err
		}
		present := make([]bool, n)
		for i := range present {
			present[i] = true
		}
		return results, present, nil
	}

	st := &quorumState{results: make([]field.Vec, n), filled: make([]bool, n)}
	arrived := make(chan int, 2*n) // n originals + at most n speculative retries
	t0 := time.Now()
	for i := range coded {
		go func(i int) {
			y := g.devs[i].LinearForward(gpu.SlotKey(key, i), kernel, coded[i])
			g.record(i, time.Since(t0))
			st.deliver(i, y, arrived)
		}(i)
	}
	var spec *time.Timer
	if d := g.m.cfg.SpeculateAfter; d > 0 {
		spec = time.AfterFunc(d, func() { g.speculate(key, kernel, coded, st, arrived) })
	}
	for got := 0; got < quorum; got++ {
		<-arrived
	}
	if spec != nil {
		spec.Stop()
	}
	results, present := st.snapshot()
	g.mu.Lock()
	for i, p := range present {
		if !p {
			g.straggles[i]++
		}
	}
	g.mu.Unlock()
	return results, present, nil
}

// speculate re-dispatches every still-lagging coded share to a borrowed
// spare device. Best-effort: it stops as soon as the spare pool runs dry.
func (g *Grant) speculate(key string, kernel gpu.LinearKernel, coded []field.Vec, st *quorumState, arrived chan<- int) {
	st.mu.Lock()
	var lagging []int
	for i, f := range st.filled {
		if !f {
			lagging = append(lagging, i)
		}
	}
	st.mu.Unlock()
	for _, slot := range lagging {
		rec, dev, ok := g.m.borrowSpare()
		if !ok {
			return
		}
		g.mu.Lock()
		g.specCount++
		g.mu.Unlock()
		g.m.recordEvent(obs.Event{Kind: obs.KindSpeculate, Subsystem: "fleet", Device: dev.ID(), Slot: slot,
			Tenant: g.t.name, Detail: fmt.Sprintf("lagging share re-dispatched to spare after %s", g.m.cfg.SpeculateAfter)})
		go func(slot int, rec *deviceRec, dev gpu.Device) {
			ts := time.Now()
			y := dev.LinearForward(gpu.SlotKey(key, slot)+"#spec", kernel, coded[slot])
			g.m.returnSpare(rec, time.Since(ts))
			st.deliver(slot, y, arrived)
		}(slot, rec, dev)
	}
}

// BackwardAll dispatches the per-device gradient equations against the
// coded inputs the devices stored during forward (wait-for-all). Storage is
// slot-scoped (gpu.SlotKey), so a device that joined the gang after the
// forward pass — or re-entered at a different slot — misses cleanly; all
// such misses fold into one gpu.MissingStoreError the trainer's cache
// refill can act on.
func (g *Grant) BackwardAll(key string, kernel gpu.BilinearKernel, deltas []field.Vec) ([]field.Vec, error) {
	n := len(deltas)
	if n > len(g.devs) {
		return nil, fmt.Errorf("fleet: %d deltas for gang of %d", n, len(g.devs))
	}
	// Per-dispatch gather buffers: backward dispatches overlap across lanes.
	results := make([]field.Vec, n)
	errs := make([]error, n)
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := range deltas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = g.devs[i].GradWeights(gpu.SlotKey(key, i), kernel, deltas[i])
			g.record(i, time.Since(t0))
		}(i)
	}
	wg.Wait()
	if err := gpu.FoldSlotErrors(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// BackwardAllAsync is BackwardAll returning immediately with a completion
// handle, registered against the grant's outstanding-dispatch accounting so
// Release waits it out.
func (g *Grant) BackwardAllAsync(key string, kernel gpu.BilinearKernel, deltas []field.Vec) *gpu.Pending {
	p := gpu.NewPending()
	g.beginAsync()
	go func() {
		results, err := g.BackwardAll(key, kernel, deltas)
		g.endAsync()
		p.Complete(results, nil, err)
	}()
	return p
}

// bwJob tracks one backward equation dispatch of a dual-window quorum.
type bwJob struct {
	slot int // gang slot (and stored-input column)
	sec  bool
	idx  int // index within its window
}

// BackwardQuorum dispatches both backward equation windows — the S primary
// equations onto slots [0, S) and the S secondary (redundant-decoding)
// equations onto slots [e, S+e) — and returns as soon as either window has
// fully answered, leaving laggards to finish on their own time exactly as
// ForwardQuorum does. The outcome's masks tell the decoder
// (masking.DecodeBackwardSubsetInto) which window completed; when both did,
// the spare one is its verification. Slots whose jobs had not answered at
// the snapshot are recorded as stragglers. The caller must guarantee the
// deltas and the kernel's captured state outlive the call unboundedly.
//
// If every still-running window dies on errors instead, the per-slot errors
// fold like BackwardAll's: all-miss failures become a
// gpu.MissingStoreError so the trainer can refill the device-side cache and
// retry.
func (g *Grant) BackwardQuorum(key string, kernel gpu.BilinearKernel, prim, sec []field.Vec, e int) (gpu.BackwardOutcome, error) {
	nP, nS := len(prim), len(sec)
	if nP > len(g.devs) || e+nS > len(g.devs) {
		return gpu.BackwardOutcome{}, fmt.Errorf("fleet: backward windows (%d primary, %d secondary at offset %d) exceed gang of %d",
			nP, nS, e, len(g.devs))
	}
	var jobs []bwJob
	for j := 0; j < nP; j++ {
		jobs = append(jobs, bwJob{slot: j, idx: j})
	}
	for j := 0; j < nS; j++ {
		jobs = append(jobs, bwJob{slot: e + j, sec: true, idx: j})
	}
	var (
		mu       sync.Mutex
		primRes  = make([]field.Vec, nP)
		primOK   = make([]bool, nP)
		secRes   = make([]field.Vec, nS)
		secOK    = make([]bool, nS)
		slotErrs = make([]error, len(g.devs))
		okP, okS int
	)
	arrived := make(chan struct{}, len(jobs))
	t0 := time.Now()
	for _, jb := range jobs {
		go func(jb bwJob) {
			delta := prim[jb.idx]
			if jb.sec {
				delta = sec[jb.idx]
			}
			y, err := g.devs[jb.slot].GradWeights(gpu.SlotKey(key, jb.slot), kernel, delta)
			g.record(jb.slot, time.Since(t0))
			mu.Lock()
			switch {
			case err != nil:
				slotErrs[jb.slot] = err
			case jb.sec:
				secRes[jb.idx], secOK[jb.idx] = y, true
				okS++
			default:
				primRes[jb.idx], primOK[jb.idx] = y, true
				okP++
			}
			mu.Unlock()
			arrived <- struct{}{}
		}(jb)
	}
	for answered := 0; ; {
		<-arrived
		answered++
		mu.Lock()
		windowDone := okP == nP || (nS > 0 && okS == nS)
		if !windowDone && answered < len(jobs) {
			mu.Unlock()
			continue
		}
		// Snapshot under the lock; laggards delivering later mutate only the
		// live arrays, never these.
		out := gpu.BackwardOutcome{
			Prim:        append([]field.Vec(nil), primRes...),
			PrimPresent: append([]bool(nil), primOK...),
			Sec:         append([]field.Vec(nil), secRes...),
			SecPresent:  append([]bool(nil), secOK...),
		}
		errsCopy := append([]error(nil), slotErrs...)
		mu.Unlock()
		if !windowDone {
			// Every job answered and neither window completed: surface the
			// per-slot failures.
			if err := gpu.FoldSlotErrors(errsCopy); err != nil {
				return gpu.BackwardOutcome{}, err
			}
			return gpu.BackwardOutcome{}, fmt.Errorf("fleet: backward quorum incomplete with no device errors (bug)")
		}
		g.mu.Lock()
		for _, jb := range jobs {
			done := out.PrimPresent[jb.idx]
			if jb.sec {
				done = out.SecPresent[jb.idx]
			}
			if !done && errsCopy[jb.slot] == nil {
				g.straggles[jb.slot]++
			}
		}
		g.mu.Unlock()
		return out, nil
	}
}

// BackwardQuorumAsync is BackwardQuorum returning immediately with a
// completion handle, registered with the grant's outstanding-dispatch
// accounting.
func (g *Grant) BackwardQuorumAsync(key string, kernel gpu.BilinearKernel, prim, sec []field.Vec, e int) *gpu.PendingBackward {
	p := gpu.NewPendingBackward()
	g.beginAsync()
	go func() {
		out, err := g.BackwardQuorum(key, kernel, prim, sec, e)
		g.endAsync()
		p.Complete(out, err)
	}()
	return p
}

// ReportFaults marks gang slots attributed as tampering by the redundant
// decoding; on Release each marked device takes a full-threshold fault
// (immediate quarantine).
func (g *Grant) ReportFaults(slots []int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range slots {
		if s >= 0 && s < len(g.faulted) {
			g.faulted[s] = true
		}
	}
}

// ReportSuspect marks the whole gang suspect: an integrity violation was
// detected but could not be attributed (E < 2). Every member's fault score
// rises by SuspectScore on Release; the persistent offender accumulates
// suspicion across differently composed gangs until quarantined.
func (g *Grant) ReportSuspect() {
	g.mu.Lock()
	g.suspect = true
	g.mu.Unlock()
}

// Release returns the gang to the pool, folding the recorded outcomes into
// the health tracker and the tenant's share account. It first waits for
// every outstanding async dispatch handle to complete, so devices never
// re-enter the free pool with a gathering dispatch still aimed at them.
// Safe to call more than once.
func (g *Grant) Release() {
	g.once.Do(func() {
		g.inflight.Wait()
		g.m.release(g)
	})
}
