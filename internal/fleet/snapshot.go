package fleet

import (
	"fmt"
	"time"

	"darknight/internal/obs"
)

// SnapshotInto fills the fleet section of a state snapshot under one
// lock hold, so the capture is internally consistent: the leased-device
// count it reports matches the per-tenant in-flight occupancy plus
// borrowed speculation spares at the same instant.
func (m *Manager) SnapshotInto(fi *obs.FleetInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fi.Config = obs.FleetConfigInfo{
		FaultThreshold:       m.cfg.FaultThreshold,
		SuspectScore:         m.cfg.SuspectScore,
		FaultDecay:           m.cfg.FaultDecay,
		ProbationProbability: m.cfg.ProbationProbability,
		ProbationClean:       m.cfg.ProbationClean,
		ProbationBackoffNs:   int64(m.cfg.ProbationBackoff),
		SpeculateAfterNs:     int64(m.cfg.SpeculateAfter),
		Seed:                 m.cfg.Seed,
		Tenants:              make(map[string]float64, len(m.names)),
	}
	fi.Devices = make([]obs.DeviceInfo, 0, len(m.devs))
	leased := 0
	for _, rec := range m.devs {
		if rec.leased {
			leased++
		}
		fi.Devices = append(fi.Devices, obs.DeviceInfo{
			Index:       rec.idx,
			ID:          rec.id,
			State:       rec.state.String(),
			Leased:      rec.leased,
			FaultScore:  rec.faultScore,
			CleanStreak: rec.cleanStreak,
			EWMANs:      int64(rec.ewma),
			Generation:  rec.gen,
			Dispatches:  rec.dispatches,
			Faults:      rec.faults,
			Stragglers:  rec.stragglers,
			Quarantines: rec.quarantines,
		})
	}
	fi.Tenants = make([]obs.TenantInfo, 0, len(m.names))
	for _, name := range m.names {
		t := m.tenants[name]
		fi.Config.Tenants[name] = t.weight
		fi.Tenants = append(fi.Tenants, obs.TenantInfo{
			Name:          name,
			Weight:        t.weight,
			Queued:        len(t.queue),
			InFlight:      t.inFlight,
			Grants:        t.grants,
			DeviceSeconds: t.deviceSeconds,
		})
	}
	fi.LeasedDevices = leased
	fi.BorrowedSpares = m.borrowed
	fi.QuarantineEvents = m.quarantineEvents
	fi.Readmissions = m.readmissions
	fi.StragglerEvents = m.stragglerEvents
	fi.Speculations = m.speculations
	fi.SLOBreaches = m.sloBreaches
}

// ConfigFromSnapshot rebuilds a fleet configuration from a captured
// fleet section — the replay harness's entry point. Speculation is
// disabled (its timer-driven spare borrowing is additive and
// nondeterministic) and probation re-admission is turned off: replay
// gangs are scripted from the batch log, so probation can only inject
// timing-dependent readmit events, never change which devices serve.
func ConfigFromSnapshot(fc obs.FleetConfigInfo) Config {
	cfg := Config{
		FaultThreshold:       fc.FaultThreshold,
		SuspectScore:         fc.SuspectScore,
		FaultDecay:           fc.FaultDecay,
		ProbationProbability: -1,
		ProbationClean:       fc.ProbationClean,
		ProbationBackoff:     time.Duration(fc.ProbationBackoffNs),
		Seed:                 fc.Seed,
	}
	for name, w := range fc.Tenants {
		cfg.Tenants = append(cfg.Tenants, TenantConfig{Name: name, Weight: w})
	}
	return cfg
}

// AcquireSlots grants the named tenant exactly the given cluster slots,
// bypassing fair-share arbitration and the free-pool health ordering.
// This is the replay harness's API: a captured batch records which slots
// its gang held, and replay must re-run it on the same slots even when a
// live scheduler would now pick differently (e.g. because the snapshot
// shows the device as quarantined — live granted it before the fault
// landed). It fails rather than waits if any slot is already leased.
func (m *Manager) AcquireSlots(tenantName string, slots []int) (*Grant, error) {
	if len(slots) == 0 {
		return nil, fmt.Errorf("fleet: empty slot list")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool, len(slots))
	for _, idx := range slots {
		if idx < 0 || idx >= len(m.devs) {
			return nil, fmt.Errorf("fleet: slot %d outside cluster of %d", idx, len(m.devs))
		}
		if seen[idx] {
			return nil, fmt.Errorf("fleet: slot %d listed twice", idx)
		}
		seen[idx] = true
		if m.devs[idx].leased {
			return nil, fmt.Errorf("fleet: slot %d already leased", idx)
		}
	}
	t := m.tenantLocked(tenantName, 0)
	ids := append([]int(nil), slots...)
	for _, idx := range ids {
		m.removeFreeLocked(idx)
		m.devs[idx].leased = true
	}
	t.inFlight += len(ids)
	t.grants++
	if m.rec != nil {
		m.rec.Record(obs.Event{Kind: obs.KindGrant, Subsystem: "fleet", Device: -1, Slot: -1,
			Tenant: t.name, Detail: fmt.Sprintf("gang of %d, cluster slots %v (replay)", len(ids), ids)})
	}
	return newGrant(m, t, ids), nil
}

// SubscribeSLO wires an SLO tracker's breach hook into the fleet: every
// burn-rate threshold crossing is recorded in the flight recorder and
// counted, making SLO pressure visible next to the quarantine and
// straggler events it usually correlates with. Nil-safe.
func (m *Manager) SubscribeSLO(t *obs.SLOTracker) {
	if m == nil || t == nil {
		return
	}
	t.OnBreach(func(b obs.Breach) {
		m.mu.Lock()
		if !b.Cleared {
			m.sloBreaches++
		}
		rec := m.rec
		m.mu.Unlock()
		state := "breached"
		if b.Cleared {
			state = "cleared"
		}
		rec.Record(obs.Event{Kind: obs.KindSLOBreach, Subsystem: "fleet", Device: -1, Slot: -1,
			Tenant: b.Tenant, Detail: fmt.Sprintf("%s SLO %s over %s: burn %.2f", b.SLO, state, b.Window, b.Burn)})
	})
}
