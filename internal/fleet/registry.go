package fleet

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// Registry is the device identity service: every admission of a physical
// device into the grantable pool — including each probation re-admission —
// gets a fingerprint hashed from (device ID, admission generation), in the
// spirit of hash-lookup registries for service identity. Health history is
// keyed by fingerprint, so a re-admitted device starts a traceably fresh
// record while the event log still ties generations of the same physical
// device together.
type Registry struct {
	mu   sync.Mutex
	byFP map[uint64]Identity
	seq  int64
}

// Identity is one registered device admission.
type Identity struct {
	DeviceID    int
	Generation  int
	Fingerprint uint64
	// Seq is the registration sequence number (monotonic across the
	// registry's lifetime).
	Seq int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byFP: make(map[uint64]Identity)}
}

// Fingerprint hashes a (device, generation) admission to its identity key.
func Fingerprint(deviceID, gen int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "dev:%d/gen:%d", deviceID, gen)
	return h.Sum64()
}

// Register records an admission and returns its fingerprint.
func (r *Registry) Register(deviceID, gen int) uint64 {
	fp := Fingerprint(deviceID, gen)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.byFP[fp] = Identity{DeviceID: deviceID, Generation: gen, Fingerprint: fp, Seq: r.seq}
	return fp
}

// Lookup resolves a fingerprint back to the admission it names.
func (r *Registry) Lookup(fp uint64) (Identity, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id, ok := r.byFP[fp]
	return id, ok
}

// Size returns the number of registered admissions.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byFP)
}
