package fleet

import (
	"strconv"

	"darknight/internal/obs"
)

// SetObserver attaches a flight recorder: grants, releases, quarantine
// transitions and speculative re-dispatches are recorded as they happen.
// Safe to call at any time; a nil recorder detaches.
func (m *Manager) SetObserver(rec *obs.FlightRecorder) {
	m.mu.Lock()
	m.rec = rec
	m.mu.Unlock()
}

// recordEvent emits an event from an unlocked context (the speculation
// path). Locked paths read m.rec directly.
func (m *Manager) recordEvent(ev obs.Event) {
	m.mu.Lock()
	rec := m.rec
	m.mu.Unlock()
	rec.Record(ev)
}

// RegisterMetrics registers the fleet's series into a metrics registry.
// Every series is a scrape-time closure over the manager's existing
// counters — the grant/release hot path is untouched. Call once per
// registry; duplicate registration panics (obs.Registry semantics).
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	lockedInt := func(fn func() int64) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(fn())
		}
	}
	r.CounterFunc("darknight_fleet_quarantine_events_total",
		"Lifetime device quarantine transitions.",
		lockedInt(func() int64 { return m.quarantineEvents }))
	r.CounterFunc("darknight_fleet_readmissions_total",
		"Lifetime probation re-admissions of quarantined devices.",
		lockedInt(func() int64 { return m.readmissions }))
	r.CounterFunc("darknight_fleet_straggler_events_total",
		"Device responses that missed their dispatch quorum.",
		lockedInt(func() int64 { return m.stragglerEvents }))
	r.CounterFunc("darknight_fleet_speculations_total",
		"Coded shares speculatively re-dispatched to spare devices.",
		lockedInt(func() int64 { return m.speculations }))
	r.CounterFunc("darknight_fleet_async_dispatches_total",
		"Completion-handle dispatches issued across released grants.",
		lockedInt(func() int64 { return m.asyncDispatches }))
	r.GaugeFunc("darknight_fleet_peak_overlap",
		"Largest number of overlapping outstanding dispatches on one gang.",
		lockedInt(func() int64 { return int64(m.peakOverlap) }))
	r.GaugeFunc("darknight_fleet_free_devices",
		"Devices currently free and in circulation.",
		lockedInt(func() int64 { return int64(len(m.free)) }))
	r.CounterFunc("darknight_fleet_slo_breaches_total",
		"SLO burn-rate threshold crossings delivered to the fleet.",
		lockedInt(func() int64 { return m.sloBreaches }))
	fh := r.HistogramVec("darknight_fleet_flight_latency_seconds",
		"Mean per-device coded-flight latency of each released grant.",
		"device", obs.LatencyBuckets())
	m.mu.Lock()
	m.flightHist = fh
	m.mu.Unlock()
	r.SampleFunc("darknight_fleet_devices",
		"Device population partitioned by health state.", "gauge",
		func() []obs.Sample {
			m.mu.Lock()
			var h, p, q int
			for _, rec := range m.devs {
				switch rec.state {
				case Healthy:
					h++
				case Probation:
					p++
				case Quarantined:
					q++
				}
			}
			m.mu.Unlock()
			return []obs.Sample{
				{Labels: map[string]string{"state": "healthy"}, Value: float64(h)},
				{Labels: map[string]string{"state": "probation"}, Value: float64(p)},
				{Labels: map[string]string{"state": "quarantined"}, Value: float64(q)},
			}
		})
	r.SampleFunc("darknight_fleet_device_dispatches_total",
		"Per-device lifetime dispatch count.", "counter",
		m.deviceSamples(func(d *deviceRec) float64 { return float64(d.dispatches) }))
	r.SampleFunc("darknight_fleet_device_faults_total",
		"Per-device lifetime integrity-fault count.", "counter",
		m.deviceSamples(func(d *deviceRec) float64 { return float64(d.faults) }))
	r.SampleFunc("darknight_fleet_device_stragglers_total",
		"Per-device lifetime quorum-miss count.", "counter",
		m.deviceSamples(func(d *deviceRec) float64 { return float64(d.stragglers) }))
	r.SampleFunc("darknight_fleet_tenant_grants_total",
		"Per-tenant lifetime gang grants.", "counter",
		m.tenantSamples(func(t *tenant) float64 { return float64(t.grants) }))
	r.SampleFunc("darknight_fleet_tenant_device_seconds_total",
		"Per-tenant lifetime device-time consumed.", "counter",
		m.tenantSamples(func(t *tenant) float64 { return t.deviceSeconds }))
	r.SampleFunc("darknight_fleet_tenant_queued",
		"Per-tenant gang acquisitions currently waiting.", "gauge",
		m.tenantSamples(func(t *tenant) float64 { return float64(len(t.queue)) }))
}

// deviceSamples builds a scrape closure emitting one labeled sample per
// device, ordered by cluster index.
func (m *Manager) deviceSamples(value func(*deviceRec) float64) func() []obs.Sample {
	return func() []obs.Sample {
		m.mu.Lock()
		defer m.mu.Unlock()
		out := make([]obs.Sample, 0, len(m.devs))
		for _, rec := range m.devs {
			out = append(out, obs.Sample{
				Labels: map[string]string{"device": strconv.Itoa(rec.id)},
				Value:  value(rec),
			})
		}
		return out
	}
}

// tenantSamples builds a scrape closure emitting one labeled sample per
// tenant, in registration order.
func (m *Manager) tenantSamples(value func(*tenant) float64) func() []obs.Sample {
	return func() []obs.Sample {
		m.mu.Lock()
		defer m.mu.Unlock()
		out := make([]obs.Sample, 0, len(m.names))
		for _, name := range m.names {
			out = append(out, obs.Sample{
				Labels: map[string]string{"tenant": name},
				Value:  value(m.tenants[name]),
			})
		}
		return out
	}
}
