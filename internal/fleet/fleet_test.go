package fleet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/field"
	"darknight/internal/gpu"
)

func scaleKernel(s field.Elem) gpu.LinearKernel {
	return func(x field.Vec) field.Vec { return field.ScaleVec(s, x) }
}

func codedInputs(n, length int, seed int64) []field.Vec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]field.Vec, n)
	for i := range out {
		out[i] = field.RandVec(rng, length)
	}
	return out
}

func TestAcquireGangAllOrNone(t *testing.T) {
	m := NewManager(gpu.NewHonestCluster(5), Config{})
	g, err := m.Acquire(context.Background(), "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 3 {
		t.Fatalf("gang size %d", g.Size())
	}
	// The 2 remaining devices cannot satisfy a second gang of 3.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Acquire(ctx, "a", 3); err == nil {
		t.Fatal("partial gang handed out")
	}
	st := m.Stats()
	if st.Healthy != 5 {
		t.Fatalf("healthy = %d, want 5", st.Healthy)
	}
	g.Release()
	g.Release() // idempotent
	g2, err := m.Acquire(context.Background(), "a", 5)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
	if _, err := m.Acquire(context.Background(), "a", 6); err == nil {
		t.Fatal("impossible gang accepted")
	}
}

func TestAcquireCancelLeaksNothing(t *testing.T) {
	m := NewManager(gpu.NewHonestCluster(3), Config{})
	hold, err := m.Acquire(context.Background(), "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := m.Acquire(ctx, "b", 1)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	hold.Release()
	full, err := m.Acquire(context.Background(), "a", 3)
	if err != nil {
		t.Fatalf("pool damaged by cancelled waiter: %v", err)
	}
	full.Release()
	if st := m.Stats(); st.Tenants[1].Queued != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st.Tenants)
	}
}

func TestExactFaultQuarantinesImmediately(t *testing.T) {
	m := NewManager(gpu.NewHonestCluster(4), Config{ProbationProbability: -1})
	g, err := m.Acquire(context.Background(), "a", 3)
	if err != nil {
		t.Fatal(err)
	}
	badSlot := 1
	badID := g.DeviceIDs()[badSlot]
	g.ReportFaults([]int{badSlot})
	g.Release()

	st := m.Stats()
	if st.Quarantined != 1 || st.QuarantineEvents != 1 {
		t.Fatalf("quarantined=%d events=%d, want 1/1", st.Quarantined, st.QuarantineEvents)
	}
	for _, d := range st.Devices {
		if d.ID == badID && d.State != Quarantined {
			t.Fatalf("device %d state %v, want quarantined", badID, d.State)
		}
	}
	// The quarantined device never appears in subsequent gangs.
	for i := 0; i < 10; i++ {
		g, err := m.Acquire(context.Background(), "a", 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range g.DeviceIDs() {
			if id == badID {
				t.Fatalf("round %d: quarantined device %d granted", i, badID)
			}
		}
		g.Release()
	}
}

func TestSuspicionAccumulatesAcrossGangs(t *testing.T) {
	// An unattributable fault (E < 2) blames the whole gang a little; the
	// persistent offender crosses the threshold after a few batches.
	m := NewManager(gpu.NewHonestCluster(3), Config{ProbationProbability: -1})
	rounds := 0
	for m.Stats().Quarantined == 0 {
		rounds++
		if rounds > 10 {
			t.Fatal("suspicion never crossed the threshold")
		}
		g, err := m.Acquire(context.Background(), "a", 3)
		if err != nil {
			t.Fatal(err)
		}
		g.ReportSuspect()
		g.Release()
	}
	// Default SuspectScore 0.4 vs threshold 1.0: quarantine on round 3.
	if rounds != 3 {
		t.Fatalf("quarantined after %d suspect rounds, want 3", rounds)
	}
	// All three crossed together (same gang every round).
	if st := m.Stats(); st.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3", st.Quarantined)
	}
}

func TestProbationReadmissionAndRecovery(t *testing.T) {
	// ProbationProbability 1: the quarantined device is re-admitted on the
	// next admission pass, serves ProbationClean clean dispatches, and
	// returns to full health under a fresh fingerprint.
	m := NewManager(gpu.NewHonestCluster(2), Config{ProbationProbability: 1, ProbationClean: 2, ProbationBackoff: time.Millisecond})
	g, err := m.Acquire(context.Background(), "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	g.ReportFaults([]int{0})
	badID := g.DeviceIDs()[0]
	fpBefore := m.Stats().Devices[badID].Fingerprint
	g.Release()
	if st := m.Stats(); st.Quarantined != 1 {
		t.Fatalf("not quarantined: %+v", st)
	}

	// The next full-fleet acquire triggers an admission pass that must
	// re-admit the device (probability 1) to fit the gang.
	for i := 0; i < 3; i++ {
		g, err := m.Acquire(context.Background(), "a", 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.ForwardAll("k", scaleKernel(3), codedInputs(2, 8, 7)); err != nil {
			t.Fatal(err)
		}
		g.Release()
	}
	st := m.Stats()
	if st.Quarantined != 0 || st.OnProbation != 0 || st.Healthy != 2 {
		t.Fatalf("device did not recover: %+v", st)
	}
	if st.Readmissions != 1 {
		t.Fatalf("readmissions = %d, want 1", st.Readmissions)
	}
	var bad DeviceHealth
	for _, d := range st.Devices {
		if d.ID == badID {
			bad = d
		}
	}
	if bad.Generation != 1 || bad.Fingerprint == fpBefore {
		t.Fatalf("re-admission kept the old identity: %+v", bad)
	}
	if _, ok := m.Registry().Lookup(bad.Fingerprint); !ok {
		t.Fatal("new fingerprint not registered")
	}
	if _, ok := m.Registry().Lookup(fpBefore); !ok {
		t.Fatal("old fingerprint lost from registry")
	}
}

func TestProbationFaultReturnsToQuarantine(t *testing.T) {
	m := NewManager(gpu.NewHonestCluster(2), Config{ProbationProbability: 1, ProbationBackoff: time.Millisecond})
	g, _ := m.Acquire(context.Background(), "a", 2)
	g.ReportFaults([]int{0})
	badID := g.DeviceIDs()[0]
	g.Release()

	// Re-admitted on the next acquire; faulting on probation goes straight
	// back (half-threshold head start).
	g2, err := m.Acquire(context.Background(), "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	slot := -1
	for i, id := range g2.DeviceIDs() {
		if id == badID {
			slot = i
		}
	}
	if slot < 0 {
		t.Fatal("probation device not granted")
	}
	g2.ReportFaults([]int{slot})
	g2.Release()
	st := m.Stats()
	if st.Quarantined != 1 || st.QuarantineEvents != 2 {
		t.Fatalf("probation fault not re-quarantined: %+v", st)
	}
}

func TestFairShareFollowsWeights(t *testing.T) {
	// Two tenants at weights 3 and 1 contend for a single-gang fleet with
	// identical closed-loop demand: granted device time must track the
	// weights, not arrival luck.
	m := NewManager(gpu.NewHonestCluster(3), Config{
		Tenants: []TenantConfig{{Name: "gold", Weight: 3}, {Name: "bronze", Weight: 1}},
	})
	// Several clients per tenant keep both queues non-empty, so every
	// admission pass genuinely compares normalized shares (a lone client
	// per tenant degenerates to alternation — at release time only the
	// other tenant is queued).
	var wg sync.WaitGroup
	stop := time.Now().Add(300 * time.Millisecond)
	for _, name := range []string{"gold", "bronze"} {
		for c := 0; c < 3; c++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for time.Now().Before(stop) {
					g, err := m.Acquire(context.Background(), name, 3)
					if err != nil {
						t.Error(err)
						return
					}
					time.Sleep(time.Millisecond)
					g.Release()
				}
			}(name)
		}
	}
	wg.Wait()
	st := m.Stats()
	var gold, bronze TenantUsage
	for _, tu := range st.Tenants {
		switch tu.Name {
		case "gold":
			gold = tu
		case "bronze":
			bronze = tu
		}
	}
	if gold.Grants == 0 || bronze.Grants == 0 {
		t.Fatalf("a tenant starved: gold=%d bronze=%d", gold.Grants, bronze.Grants)
	}
	ratio := gold.DeviceSeconds / bronze.DeviceSeconds
	if ratio < 1.8 || ratio > 5.0 {
		t.Fatalf("device-time ratio %.2f for weights 3:1, want within [1.8, 5.0]", ratio)
	}
	// Normalized shares converge: the policy equalizes device-time/weight.
	shareGap := gold.Share / bronze.Share
	if shareGap < 0.55 || shareGap > 1.8 {
		t.Fatalf("normalized share gap %.2f, want near 1.0", shareGap)
	}
}

func TestQuorumReturnsBeforeStraggler(t *testing.T) {
	const delay = 200 * time.Millisecond
	devs := []gpu.Device{
		gpu.NewHonest(0),
		gpu.NewHonest(1),
		gpu.NewHonest(2),
		gpu.NewSlow(gpu.NewHonest(3), delay),
	}
	m := NewManager(gpu.NewCluster(devs...), Config{})
	g, err := m.Acquire(context.Background(), "a", 4)
	if err != nil {
		t.Fatal(err)
	}
	coded := codedInputs(4, 64, 9)
	start := time.Now()
	results, present, err := g.ForwardQuorum("k", scaleKernel(5), coded, 3)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el >= delay {
		t.Fatalf("quorum dispatch took %v, straggler delay is %v", el, delay)
	}
	got := 0
	for j, p := range present {
		if !p {
			continue
		}
		got++
		if !results[j].Equal(field.ScaleVec(5, coded[j])) {
			t.Fatalf("slot %d: wrong result", j)
		}
	}
	if got < 3 {
		t.Fatalf("%d present, want >= 3", got)
	}
	slowSlot := -1
	for i, id := range g.DeviceIDs() {
		if id == 3 {
			slowSlot = i
		}
	}
	if present[slowSlot] {
		t.Fatal("slow device inside the quorum; straggler path untested")
	}
	g.Release()
	if st := m.Stats(); st.StragglerEvents == 0 {
		t.Fatalf("no straggler recorded: %+v", st)
	}
}

func TestSpeculativeRedispatchFillsLaggingSlot(t *testing.T) {
	// Two slow devices, quorum 4 of 5: the quorum cannot form from fast
	// originals alone, so the speculation window must re-dispatch lagging
	// shares to spare devices and beat the stragglers.
	const delay = 300 * time.Millisecond
	devs := []gpu.Device{
		gpu.NewHonest(0),
		gpu.NewHonest(1),
		gpu.NewHonest(2),
		gpu.NewSlow(gpu.NewHonest(3), delay),
		gpu.NewSlow(gpu.NewHonest(4), delay),
		gpu.NewHonest(5), // spare
		gpu.NewHonest(6), // spare
	}
	m := NewManager(gpu.NewCluster(devs...), Config{SpeculateAfter: 5 * time.Millisecond})
	g, err := m.Acquire(context.Background(), "a", 5)
	if err != nil {
		t.Fatal(err)
	}
	// The fleet hands out the fastest devices first, so the gang of 5 holds
	// both slow devices plus three fast ones; spares 2 remain free.
	slow := 0
	for _, id := range g.DeviceIDs() {
		if id == 3 || id == 4 {
			slow++
		}
	}
	if slow != 2 {
		t.Fatalf("gang holds %d slow devices, want 2 (got %v)", slow, g.DeviceIDs())
	}
	coded := codedInputs(5, 64, 10)
	start := time.Now()
	results, present, err := g.ForwardQuorum("k", scaleKernel(7), coded, 4)
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el >= delay {
		t.Fatalf("speculation did not beat the stragglers: %v >= %v", el, delay)
	}
	got := 0
	for j, p := range present {
		if p {
			got++
			if !results[j].Equal(field.ScaleVec(7, coded[j])) {
				t.Fatalf("slot %d: wrong result", j)
			}
		}
	}
	if got < 4 {
		t.Fatalf("%d present, want >= 4", got)
	}
	g.Release()
	if st := m.Stats(); st.Speculations == 0 {
		t.Fatalf("no speculative re-dispatch recorded: %+v", st)
	}
}

func TestQuarantineShrinksPoolThenProbationRestores(t *testing.T) {
	// Quarantine drops the pool below the gang size; a blocked acquire is
	// satisfied once probation re-admits the device.
	m := NewManager(gpu.NewHonestCluster(3), Config{ProbationProbability: 1, ProbationBackoff: time.Millisecond})
	g, _ := m.Acquire(context.Background(), "a", 3)
	g.ReportFaults([]int{2})
	g.Release() // pool now 2 healthy + 1 quarantined

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	g2, err := m.Acquire(ctx, "a", 3) // needs the probation re-admission
	if err != nil {
		t.Fatalf("acquire after quarantine: %v", err)
	}
	g2.Release()
	if st := m.Stats(); st.Readmissions == 0 {
		t.Fatalf("no re-admission recorded: %+v", st)
	}
}

func TestPermanentQuarantineFailsImpossibleGangs(t *testing.T) {
	// Probation disabled and the pool shrunk below the gang size: a waiter
	// must fail with ErrFleetShrunk instead of blocking forever (a wedged
	// Acquire would deadlock the serving drain).
	m := NewManager(gpu.NewHonestCluster(3), Config{ProbationProbability: -1})
	g, _ := m.Acquire(context.Background(), "a", 3)
	g.ReportFaults([]int{0})
	g.Release() // 2 circulating, 1 permanently quarantined

	done := make(chan error, 1)
	go func() {
		_, err := m.Acquire(context.Background(), "a", 3)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrFleetShrunk) {
			t.Fatalf("err = %v, want ErrFleetShrunk", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("impossible gang blocked forever")
	}
	// Gangs that still fit the shrunken pool keep working.
	g2, err := m.Acquire(context.Background(), "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
}

func TestStrictShareOrderNoHeadOfLineBypass(t *testing.T) {
	// Admission is in strict share order: with the whole pool free, a
	// large-gang tenant that arrived first and holds the minimum share is
	// granted before a small-gang tenant, even while partial capacity
	// could have served the small gang earlier.
	m := NewManager(gpu.NewHonestCluster(4), Config{})
	hold, _ := m.Acquire(context.Background(), "small", 2) // small: share 2/1
	bigReady := make(chan error, 1)
	go func() {
		g, err := m.Acquire(context.Background(), "big", 4) // blocks: only 2 free
		if err == nil {
			g.Release()
		}
		bigReady <- err
	}()
	time.Sleep(5 * time.Millisecond) // let big enqueue (share 0 < small's)
	smallAgain := make(chan error, 1)
	go func() {
		g, err := m.Acquire(context.Background(), "small", 2) // fits the 2 free...
		if err == nil {
			g.Release()
		}
		smallAgain <- err
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-smallAgain:
		t.Fatal("small gang bypassed the lower-share large-gang waiter")
	default:
	}
	hold.Release() // frees 4: big (share 0) goes first, then small
	if err := <-bigReady; err != nil {
		t.Fatal(err)
	}
	if err := <-smallAgain; err != nil {
		t.Fatal(err)
	}
}

func TestRegistryFingerprints(t *testing.T) {
	r := NewRegistry()
	fp0 := r.Register(4, 0)
	fp1 := r.Register(4, 1)
	if fp0 == fp1 {
		t.Fatal("generations share a fingerprint")
	}
	if fp0 != Fingerprint(4, 0) {
		t.Fatal("fingerprint not deterministic")
	}
	id, ok := r.Lookup(fp1)
	if !ok || id.DeviceID != 4 || id.Generation != 1 {
		t.Fatalf("lookup = %+v, %v", id, ok)
	}
	if _, ok := r.Lookup(12345); ok {
		t.Fatal("phantom fingerprint resolved")
	}
	if r.Size() != 2 {
		t.Fatalf("size = %d", r.Size())
	}
}

// TestTryAcquireNonBlocking pins the non-blocking grant path: an immediate
// grant when capacity is free, (nil, nil) — never a wait — when it is not,
// and no line-jumping past an already blocked waiter.
func TestTryAcquireNonBlocking(t *testing.T) {
	m := NewManager(gpu.NewHonestCluster(6), Config{})
	g1, err := m.TryAcquire("a", 4)
	if err != nil || g1 == nil {
		t.Fatalf("free pool TryAcquire: grant %v err %v", g1, err)
	}
	start := time.Now()
	g2, err := m.TryAcquire("a", 4)
	if err != nil || g2 != nil {
		t.Fatalf("tight pool TryAcquire: grant %v err %v, want nil/nil", g2, err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatalf("TryAcquire blocked for %v", time.Since(start))
	}

	// A blocked Acquire of tenant b is first in share order once g1 frees;
	// a subsequent TryAcquire by tenant a must not jump it.
	got := make(chan *Grant, 1)
	go func() {
		g, err := m.Acquire(context.Background(), "b", 4)
		if err != nil {
			t.Errorf("blocked acquire: %v", err)
		}
		got <- g
	}()
	for queued := false; !queued; { // wait until b is queued
		for _, tu := range m.Stats().Tenants {
			if tu.Name == "b" && tu.Queued > 0 {
				queued = true
			}
		}
		time.Sleep(time.Millisecond)
	}
	g1.Release()
	gb := <-got
	if gb == nil {
		t.Fatal("blocked waiter never granted after release")
	}
	//lint:ignore leasepair TryAcquire must fail here; a non-nil grant fails the test before any leak matters
	if g, _ := m.TryAcquire("a", 4); g != nil {
		t.Fatalf("TryAcquire succeeded while tenant b holds the gang")
	}
	gb.Release()
	g3, err := m.TryAcquire("a", 4)
	if err != nil || g3 == nil {
		t.Fatalf("post-release TryAcquire: grant %v err %v", g3, err)
	}
	g3.Release()
}
