package fleet

import (
	"fmt"
	"time"

	"darknight/internal/obs"
)

// State is a device's position in the quarantine state machine:
//
//	Healthy ──fault score ≥ threshold──▶ Quarantined
//	   ▲                                      │
//	   │ ProbationClean clean dispatches      │ probabilistic re-admission
//	   │                                      ▼
//	   └──────────────────────────────── Probation
//	                 (one attributed fault: straight back to Quarantined)
//
// Healthy and Probation devices circulate in the grantable pool;
// Quarantined devices are withdrawn until the probation draw re-admits
// them under a fresh registry fingerprint.
type State int

const (
	Healthy State = iota
	Probation
	Quarantined
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Probation:
		return "probation"
	case Quarantined:
		return "quarantined"
	}
	return "unknown"
}

// ewmaAlpha is the smoothing factor of the per-device latency EWMA.
const ewmaAlpha = 0.25

// deviceRec is the tracker's view of one physical device. All fields are
// guarded by Manager.mu.
type deviceRec struct {
	idx int // cluster index (gang slot source)
	id  int // gpu.Device.ID()
	gen int // admission generation; bumps on re-admission
	fp  uint64

	state         State
	leased        bool
	faultScore    float64
	cleanStreak   int
	ewma          time.Duration
	quarantinedAt time.Time // when the device last entered quarantine

	dispatches  int64
	faults      int64
	stragglers  int64
	quarantines int64
}

// reportCleanLocked folds one clean dispatch outcome into a device's
// health: latency EWMA, straggler count, fault-score decay, and probation
// promotion.
func (m *Manager) reportCleanLocked(rec *deviceRec, mean time.Duration, straggles int) {
	rec.dispatches++
	rec.stragglers += int64(straggles)
	if mean > 0 {
		if rec.ewma == 0 {
			rec.ewma = mean
		} else {
			rec.ewma = time.Duration((1-ewmaAlpha)*float64(rec.ewma) + ewmaAlpha*float64(mean))
		}
	}
	rec.faultScore *= m.cfg.FaultDecay
	rec.cleanStreak++
	if rec.state == Probation && rec.cleanStreak >= m.cfg.ProbationClean {
		m.transitionLocked(rec, Healthy, "probation served clean")
		rec.faultScore = 0
	}
}

// reportFaultLocked charges a device for an integrity violation. exact
// faults (attributed by the redundant decoding) score a full threshold —
// immediate quarantine; unattributed gang-wide suspicion accumulates until
// the threshold is crossed.
func (m *Manager) reportFaultLocked(rec *deviceRec, exact bool) {
	rec.dispatches++
	rec.faults++
	rec.cleanStreak = 0
	if exact {
		rec.faultScore += m.cfg.FaultThreshold
	} else {
		rec.faultScore += m.cfg.SuspectScore
	}
	if rec.faultScore >= m.cfg.FaultThreshold && rec.state != Quarantined {
		reason := "suspicion accumulated past threshold"
		if exact {
			reason = "attributed integrity fault"
		}
		m.transitionLocked(rec, Quarantined, reason)
		rec.quarantines++
		rec.quarantinedAt = time.Now()
		m.quarantineEvents++
		m.removeFreeLocked(rec.idx)
	}
}

// probationLocked gives every quarantined, currently-unleased device its
// probabilistic chance at re-admission. Re-admitted devices return under a
// new registry fingerprint with a half-threshold fault score: one more
// attributed fault sends them straight back.
func (m *Manager) probationLocked() {
	if m.cfg.ProbationProbability < 0 {
		return
	}
	now := time.Now()
	for _, rec := range m.devs {
		if rec.state != Quarantined || rec.leased {
			continue
		}
		// Exponential dwell: each further quarantine of the same device
		// doubles the time before its next re-admission draw (capped).
		shift := rec.quarantines - 1
		if shift > 6 {
			shift = 6
		}
		if now.Sub(rec.quarantinedAt) < m.cfg.ProbationBackoff<<shift {
			continue
		}
		if m.rng.Float64() >= m.cfg.ProbationProbability {
			continue
		}
		rec.gen++
		rec.fp = m.reg.Register(rec.id, rec.gen)
		rec.faultScore = m.cfg.FaultThreshold / 2
		rec.cleanStreak = 0
		m.transitionLocked(rec, Probation, "probabilistic re-admission")
		m.readmissions++
		m.free = append(m.free, rec.idx)
	}
}

// transitionLocked moves a device between states and logs the event.
func (m *Manager) transitionLocked(rec *deviceRec, to State, reason string) {
	from := rec.state
	rec.state = to
	m.eventSeq++
	ev := Event{
		Seq:         m.eventSeq,
		Time:        time.Now(),
		Device:      rec.id,
		Fingerprint: rec.fp,
		From:        from,
		To:          to,
		Reason:      reason,
	}
	if len(m.events) >= maxEvents {
		copy(m.events, m.events[1:])
		m.events[len(m.events)-1] = ev
	} else {
		m.events = append(m.events, ev)
	}
	if m.rec != nil {
		kind := obs.KindQuarantine
		switch to {
		case Probation:
			kind = obs.KindProbation
		case Healthy:
			kind = obs.KindReadmit
		}
		m.rec.Record(obs.Event{Kind: kind, Subsystem: "fleet", Device: rec.id, Slot: -1,
			Detail: fmt.Sprintf("%s→%s: %s (fp %016x)", from, to, reason, rec.fp)})
	}
}

// removeFreeLocked withdraws a device from the free pool if present (it
// may be leased when the fault lands, in which case release skips it).
func (m *Manager) removeFreeLocked(idx int) {
	for i, f := range m.free {
		if f == idx {
			m.free = append(m.free[:i], m.free[i+1:]...)
			return
		}
	}
}

// maxEvents bounds the in-memory quarantine event log.
const maxEvents = 128

// Event is one quarantine state transition.
type Event struct {
	Seq         int64
	Time        time.Time
	Device      int
	Fingerprint uint64
	From, To    State
	Reason      string
}
