package fleet

import (
	"fmt"

	"darknight/internal/gpu"
)

// BeginBlock opens one gang flight carrying a whole fused block on the
// first n slots of the grant. The flight holds exactly one outstanding
// dispatch handle for its whole life — handle bookkeeping is per-flight,
// not per-layer, so a depth-d fused block counts once toward
// Stats.AsyncDispatches and PeakOverlap rather than d times. Per-job
// response latencies still feed the health EWMA individually, and slots
// absent from a quorum snapshot are branded stragglers per layer wait,
// matching the per-layer dispatch path's branding rate.
//
// The caller must End the flight before Release; Release waits out the
// flight's handle like any other outstanding dispatch.
func (g *Grant) BeginBlock(n int) (*gpu.BlockFlight, error) {
	if n > len(g.devs) {
		return nil, fmt.Errorf("fleet: flight of %d slots for gang of %d", n, len(g.devs))
	}
	trips := make([]gpu.DeviceTrip, n)
	for i := 0; i < n; i++ {
		trips[i] = gpu.BeginTrip(g.devs[i])
	}
	g.beginAsync()
	return gpu.NewBlockFlight(trips, gpu.BlockOptions{
		MapKey:  gpu.SlotKey,
		Observe: g.record,
		Straggler: func(slot int) {
			g.mu.Lock()
			g.straggles[slot]++
			g.mu.Unlock()
		},
		OnEnd: g.endAsync,
	}), nil
}
