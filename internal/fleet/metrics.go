package fleet

import (
	"sort"
	"time"
)

// DeviceHealth is one device's health snapshot.
type DeviceHealth struct {
	ID          int
	Fingerprint uint64
	Generation  int
	State       State
	Leased      bool
	FaultScore  float64
	// EWMALatency is the smoothed per-offload response latency.
	EWMALatency time.Duration
	Dispatches  int64
	Faults      int64
	Stragglers  int64
	Quarantines int64
}

// TenantUsage is one tenant's share-account snapshot.
type TenantUsage struct {
	Name   string
	Weight float64
	// Queued is the number of gang acquisitions currently waiting.
	Queued int
	// InFlight is the number of devices currently granted.
	InFlight int
	// Grants is the lifetime gang count.
	Grants int64
	// DeviceSeconds is the lifetime device-time consumed.
	DeviceSeconds float64
	// Share is DeviceSeconds normalized by weight — the quantity the
	// fair-share policy equalizes under contention.
	Share float64
}

// Stats is a consistent snapshot of the fleet state.
type Stats struct {
	// Healthy/OnProbation/Quarantined partition the device population.
	Healthy, OnProbation, Quarantined int
	// QuarantineEvents counts lifetime quarantine transitions;
	// Readmissions counts probation re-admissions.
	QuarantineEvents, Readmissions int64
	// StragglerEvents counts device responses that missed their dispatch
	// quorum; Speculations counts coded shares re-dispatched to spares.
	StragglerEvents, Speculations int64
	// SLOBreaches counts burn-rate threshold crossings delivered to the
	// fleet via SubscribeSLO (rising edges only).
	SLOBreaches int64
	// AsyncDispatches counts completion-handle dispatches issued across all
	// released grants; PeakOverlap is the largest number of overlapping
	// outstanding dispatches any single grant carried — > 1 means a
	// pipelined engine genuinely kept multiple coded batches in flight on
	// one gang.
	AsyncDispatches int64
	PeakOverlap     int
	// Devices holds per-device health, ordered by device ID.
	Devices []DeviceHealth
	// Tenants holds per-tenant usage, ordered by name.
	Tenants []TenantUsage
	// Events is the recent quarantine/probation transition log, oldest
	// first (bounded window).
	Events []Event
}

// Stats returns a consistent snapshot of device health, tenant shares and
// the quarantine event log.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		QuarantineEvents: m.quarantineEvents,
		Readmissions:     m.readmissions,
		StragglerEvents:  m.stragglerEvents,
		Speculations:     m.speculations,
		SLOBreaches:      m.sloBreaches,
		AsyncDispatches:  m.asyncDispatches,
		PeakOverlap:      m.peakOverlap,
		Devices:          make([]DeviceHealth, 0, len(m.devs)),
		Tenants:          make([]TenantUsage, 0, len(m.tenants)),
		Events:           append([]Event(nil), m.events...),
	}
	for _, rec := range m.devs {
		switch rec.state {
		case Healthy:
			s.Healthy++
		case Probation:
			s.OnProbation++
		case Quarantined:
			s.Quarantined++
		}
		s.Devices = append(s.Devices, DeviceHealth{
			ID:          rec.id,
			Fingerprint: rec.fp,
			Generation:  rec.gen,
			State:       rec.state,
			Leased:      rec.leased,
			FaultScore:  rec.faultScore,
			EWMALatency: rec.ewma,
			Dispatches:  rec.dispatches,
			Faults:      rec.faults,
			Stragglers:  rec.stragglers,
			Quarantines: rec.quarantines,
		})
	}
	sort.Slice(s.Devices, func(i, j int) bool { return s.Devices[i].ID < s.Devices[j].ID })
	for _, name := range m.names {
		t := m.tenants[name]
		s.Tenants = append(s.Tenants, TenantUsage{
			Name:          t.name,
			Weight:        t.weight,
			Queued:        len(t.queue),
			InFlight:      t.inFlight,
			Grants:        t.grants,
			DeviceSeconds: t.deviceSeconds,
			Share:         t.historicalShare(),
		})
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Name < s.Tenants[j].Name })
	return s
}
