package gpu

import (
	"darknight/internal/field"

	"sync"
	"time"
)

// DeviceTrip is one persistent dispatch conversation with a device: the
// channel a fused-block flight keeps open so several per-layer kernels ride
// a single round trip. A trip exposes the same job surface as the device,
// but cost-model wrappers account differently: the slow device charges its
// per-dispatch launch latency once per trip rather than once per job —
// the persistent-kernel / graph-launch amortization that makes fusing
// consecutive linear layers into one flight worthwhile. Behavioural
// wrappers (fault injection, collusion capture) keep their per-job
// semantics, so a trip never changes *what* a device computes, only what
// a conversation with it costs.
type DeviceTrip interface {
	// LinearForward is Device.LinearForward within the trip.
	LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec
	// GradWeights is Device.GradWeights within the trip.
	GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error)
}

// BeginTrip opens a persistent dispatch conversation on the device. The
// honest device has no per-dispatch cost to amortize, so its trip is the
// device itself; wrappers layer their own trip semantics on top.
func (d *honest) BeginTrip() DeviceTrip { return d }

// BeginTrip keeps fault injection per-job: a tampering device corrupts the
// same job sequence whether the jobs arrive one flight each or batched in
// a block, so integrity detection sees an identical adversary either way.
func (m *malicious) BeginTrip() DeviceTrip { return &wrapTrip{m} }

// BeginTrip charges the straggler's launch delay once for the whole trip
// (on its first job) instead of once per job: the delay models dispatch
// overhead — kernel launch, transfer setup — which a persistent block
// conversation pays a single time.
func (s *slow) BeginTrip() DeviceTrip {
	return &slowTrip{inner: BeginTrip(s.Device), delay: s.delay}
}

// BeginTrip keeps collusion capture per-job: the coalition observes every
// coded vector it is sent regardless of flight batching.
func (c *colluding) BeginTrip() DeviceTrip { return &wrapTrip{c} }

// tripper is the optional upgrade a device implements to customize its
// trip; devices without it fall back to per-job semantics.
type tripper interface {
	BeginTrip() DeviceTrip
}

// BeginTrip opens a trip on any device: the device's own trip if it
// implements one, else a passthrough with unchanged per-job accounting.
func BeginTrip(d Device) DeviceTrip {
	if t, ok := d.(tripper); ok {
		return t.BeginTrip()
	}
	return &wrapTrip{d}
}

// wrapTrip adapts a Device to the trip surface verbatim (per-job
// semantics preserved).
type wrapTrip struct{ d Device }

func (t *wrapTrip) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	return t.d.LinearForward(key, kernel, x)
}

func (t *wrapTrip) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	return t.d.GradWeights(key, kernel, delta)
}

// slowTrip delays the trip's first job by the device's launch latency and
// lets the rest of the conversation through at full speed.
type slowTrip struct {
	inner DeviceTrip
	delay time.Duration
	once  sync.Once
}

func (t *slowTrip) launch() { t.once.Do(func() { time.Sleep(t.delay) }) }

func (t *slowTrip) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	y := t.inner.LinearForward(key, kernel, x)
	t.launch()
	return y
}

func (t *slowTrip) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	y, err := t.inner.GradWeights(key, kernel, delta)
	t.launch()
	return y, err
}
