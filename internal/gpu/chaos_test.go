package gpu

import (
	"testing"
	"time"

	"darknight/internal/field"
)

func TestChaosDeviceCleanPassThrough(t *testing.T) {
	d := NewChaos(NewHonest(0))
	x := field.Vec{1, 2, 3}
	honest := NewHonest(0).LinearForward("k", scaleKernel(3), x)
	if got := d.LinearForward("k", scaleKernel(3), x); !got.Equal(honest) {
		t.Errorf("clean chaos device altered the result: %v != %v", got, honest)
	}
	if actions, faults := d.ChaosStats(); actions != 0 || faults != 0 {
		t.Errorf("clean device counted actions=%d faults=%d", actions, faults)
	}
}

func TestChaosDeviceDownReturnsGarbageOfRightShape(t *testing.T) {
	d := NewChaos(NewHonest(0))
	x := field.Vec{1, 2, 3, 4}
	honest := NewHonest(0).LinearForward("k", scaleKernel(3), x)

	d.SetDown(true)
	got := d.LinearForward("k", scaleKernel(3), x)
	if len(got) != len(honest) {
		t.Fatalf("down result has wrong shape: %d, want %d", len(got), len(honest))
	}
	if got.Equal(honest) {
		t.Fatal("down device returned the honest result")
	}
	if _, faults := d.ChaosStats(); faults != 1 {
		t.Errorf("faults = %d, want 1", faults)
	}
	// Healing restores honest service — the quarantine re-admission path
	// depends on this.
	d.SetDown(false)
	if got := d.LinearForward("k", scaleKernel(3), x); !got.Equal(honest) {
		t.Error("healed device still corrupting")
	}
}

func TestChaosDeviceTamperCorrupts(t *testing.T) {
	d := NewChaos(NewHonest(0))
	x := field.Vec{5, 6, 7}
	honest := NewHonest(0).LinearForward("k", scaleKernel(2), x)
	d.SetTamper(true)
	if got := d.LinearForward("k", scaleKernel(2), x); got.Equal(honest) {
		t.Fatal("tampering device returned the honest result")
	}
	d.SetTamper(false)
	if got := d.LinearForward("k", scaleKernel(2), x); !got.Equal(honest) {
		t.Error("tamper cleared but result still corrupt")
	}
}

func TestChaosDeviceDelaySlowsJobs(t *testing.T) {
	d := NewChaos(NewHonest(0))
	x := field.Vec{1}
	d.SetDelay(5 * time.Millisecond)
	start := time.Now()
	d.LinearForward("k", scaleKernel(2), x)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Errorf("delayed job finished in %v, want >= 5ms", el)
	}
	d.SetDelay(0)
	start = time.Now()
	d.LinearForward("k2", scaleKernel(2), x)
	if el := time.Since(start); el > 2*time.Millisecond {
		t.Errorf("cleared delay still slow: %v", el)
	}
}

func TestChaosDeviceGradWeights(t *testing.T) {
	d := NewChaos(NewHonest(0))
	x := field.Vec{1, 2}
	d.LinearForward("k", scaleKernel(2), x) // store coded input
	kernel := func(delta, x field.Vec) field.Vec {
		out := make(field.Vec, len(delta))
		for i := range delta {
			out[i] = field.Mul(delta[i], x[i%len(x)])
		}
		return out
	}
	honest, err := d.GradWeights("k", kernel, field.Vec{3, 4})
	if err != nil {
		t.Fatalf("GradWeights: %v", err)
	}
	d.SetDown(true)
	got, err := d.GradWeights("k", kernel, field.Vec{3, 4})
	if err != nil {
		t.Fatalf("down GradWeights must fail fast with garbage, not error: %v", err)
	}
	if got.Equal(honest) {
		t.Error("down device returned honest gradients")
	}
	// A down device must answer even for keys it never stored (the crash
	// wiped it, but the gang fan-out still needs a fast reply).
	if _, err := d.GradWeights("never-stored", kernel, field.Vec{3, 4}); err != nil {
		t.Errorf("down device errored on unknown key: %v", err)
	}
}
