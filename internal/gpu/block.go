package gpu

import (
	"fmt"
	"sync"
	"time"

	"darknight/internal/field"
)

// BlockFlight is one gang flight carrying a whole fused block: a persistent
// conversation with every device of the gang over which the TEE dispatches
// each layer of the block in turn. The flight owns one worker goroutine per
// slot, fed by an unbounded per-slot queue, so the dispatcher never blocks
// on a straggling device — a slot that is still chewing on layer l simply
// accumulates its layer l+1 job and the quorum machinery decodes around it.
// All flight-scoped machinery — goroutine spawns, trip launch latency,
// lease/handle accounting hooks — is paid once per block instead of once
// per layer; the per-layer math (encode, decode, verify) is untouched, which
// is what keeps fused outputs bit-identical to the per-layer path.
//
// Speculative re-dispatch to spare devices is not available inside a block
// flight: a spare joining mid-conversation would have missed the layers
// already shipped. Straggler tolerance inside a block comes from the MDS
// quorum decode alone.
type BlockFlight struct {
	slots []*tripSlot
	opts  BlockOptions
	wg    sync.WaitGroup
	ended bool
}

// BlockOptions customizes a flight's key mapping and accounting hooks; the
// zero value dispatches with raw keys and no observation.
type BlockOptions struct {
	// MapKey rewrites a logical tensor key for one slot's device store.
	// nil keeps the key as-is (the bare-cluster convention; the fleet maps
	// through SlotKey so rotated devices never collide).
	MapKey func(key string, slot int) string
	// Observe, when non-nil, receives each completed job's latency — the
	// fleet's health EWMA feed.
	Observe func(slot int, lat time.Duration)
	// Straggler, when non-nil, is invoked for each slot absent from a
	// quorum snapshot — once per layer wait, matching the per-layer
	// dispatch path's branding rate.
	Straggler func(slot int)
	// OnEnd, when non-nil, runs after every worker has drained and exited —
	// where the fleet closes its per-flight async handle.
	OnEnd func()
}

// tripSlot is one device conversation: a worker goroutine draining an
// unbounded FIFO of jobs so enqueues never block the TEE dispatcher.
type tripSlot struct {
	trip   DeviceTrip
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

func newTripSlot(trip DeviceTrip) *tripSlot {
	s := &tripSlot{trip: trip}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *tripSlot) enqueue(job func()) {
	s.mu.Lock()
	s.queue = append(s.queue, job)
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *tripSlot) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *tripSlot) work() {
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		job()
	}
}

// NewBlockFlight opens a flight over one trip per gang slot.
func NewBlockFlight(trips []DeviceTrip, opts BlockOptions) *BlockFlight {
	f := &BlockFlight{slots: make([]*tripSlot, len(trips)), opts: opts}
	for i, tr := range trips {
		f.slots[i] = newTripSlot(tr)
		f.wg.Add(1)
		go func(s *tripSlot) {
			defer f.wg.Done()
			s.work()
		}(f.slots[i])
	}
	return f
}

// Slots returns the gang width of the flight.
func (f *BlockFlight) Slots() int { return len(f.slots) }

func (f *BlockFlight) key(key string, slot int) string {
	if f.opts.MapKey == nil {
		return key
	}
	return f.opts.MapKey(key, slot)
}

// ForwardLayer ships one layer of the block: slot j computes the kernel on
// coded[j], storing it under the layer key for backward reuse. Returns
// immediately; gather through the LayerPending (Wait for all slots,
// WaitQuorum to decode around stragglers).
func (f *BlockFlight) ForwardLayer(key string, kernel LinearKernel, coded []field.Vec) (*LayerPending, error) {
	if len(coded) != len(f.slots) {
		return nil, fmt.Errorf("gpu: %d coded inputs for flight of %d slots", len(coded), len(f.slots))
	}
	p := newLayerPending(len(f.slots), f.opts.Straggler)
	for j := range f.slots {
		j := j
		s := f.slots[j]
		x := coded[j]
		k := f.key(key, j)
		s.enqueue(func() {
			start := time.Now()
			y := s.trip.LinearForward(k, kernel, x)
			if f.opts.Observe != nil {
				f.opts.Observe(j, time.Since(start))
			}
			p.deliver(j, y, nil)
		})
	}
	return p, nil
}

// GradLayer ships one layer's weight-gradient equations: slot j computes
// the bilinear kernel of deltas[j] against its stored coded input. Cache
// misses surface as per-slot errors on the pending (fold with
// FoldSlotErrors after Wait).
func (f *BlockFlight) GradLayer(key string, kernel BilinearKernel, deltas []field.Vec) (*LayerPending, error) {
	if len(deltas) != len(f.slots) {
		return nil, fmt.Errorf("gpu: %d deltas for flight of %d slots", len(deltas), len(f.slots))
	}
	p := newLayerPending(len(f.slots), f.opts.Straggler)
	for j := range f.slots {
		j := j
		s := f.slots[j]
		d := deltas[j]
		k := f.key(key, j)
		s.enqueue(func() {
			start := time.Now()
			y, err := s.trip.GradWeights(k, kernel, d)
			if f.opts.Observe != nil {
				f.opts.Observe(j, time.Since(start))
			}
			p.deliver(j, y, err)
		})
	}
	return p, nil
}

// End closes every slot queue, waits for the workers to drain, and fires
// the OnEnd hook. Idempotent.
func (f *BlockFlight) End() {
	if f.ended {
		return
	}
	f.ended = true
	for _, s := range f.slots {
		s.close()
	}
	f.wg.Wait()
	if f.opts.OnEnd != nil {
		f.opts.OnEnd()
	}
}

// LayerPending gathers one layer's in-flight results within a block
// flight. Unlike Pending (which completes exactly once with the full
// result set), a LayerPending fills slot by slot so a quorum waiter can
// snapshot as soon as enough slots landed.
type LayerPending struct {
	mu        sync.Mutex
	results   []field.Vec
	errs      []error
	present   []bool
	arrived   chan struct{}
	straggler func(slot int)
}

func newLayerPending(n int, straggler func(slot int)) *LayerPending {
	return &LayerPending{
		results:   make([]field.Vec, n),
		errs:      make([]error, n),
		present:   make([]bool, n),
		arrived:   make(chan struct{}, n),
		straggler: straggler,
	}
}

func (p *LayerPending) deliver(slot int, v field.Vec, err error) {
	p.mu.Lock()
	if !p.present[slot] {
		p.results[slot] = v
		p.errs[slot] = err
		p.present[slot] = true
	}
	p.mu.Unlock()
	p.arrived <- struct{}{}
}

// Wait blocks until every slot has answered and returns results and
// per-slot errors in slot order.
func (p *LayerPending) Wait() ([]field.Vec, []error) {
	for range p.results {
		<-p.arrived
	}
	return p.results, p.errs
}

// WaitQuorum blocks until q slots have answered and returns a snapshot:
// results and a presence mask in slot order. Laggards keep computing and
// land in the flight's accounting, but the snapshot is immutable.
func (p *LayerPending) WaitQuorum(q int) ([]field.Vec, []bool) {
	if q >= len(p.results) {
		res, _ := p.Wait()
		all := make([]bool, len(res))
		for i := range all {
			all[i] = true
		}
		return res, all
	}
	for i := 0; i < q; i++ {
		<-p.arrived
	}
	p.mu.Lock()
	res := append([]field.Vec(nil), p.results...)
	mask := append([]bool(nil), p.present...)
	p.mu.Unlock()
	if p.straggler != nil {
		for slot, ok := range mask {
			if !ok {
				p.straggler(slot)
			}
		}
	}
	return res, mask
}

// BeginBlock opens a block flight over the first n devices of the cluster,
// with the bare-cluster raw-key convention the per-layer dispatch paths
// use.
func (c *Cluster) BeginBlock(n int) (*BlockFlight, error) {
	if n > len(c.devices) {
		return nil, fmt.Errorf("gpu: flight of %d slots for %d devices", n, len(c.devices))
	}
	trips := make([]DeviceTrip, n)
	for i := range trips {
		trips[i] = BeginTrip(c.devices[i])
	}
	return NewBlockFlight(trips, BlockOptions{}), nil
}
