package gpu

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLeaseAllOrNone(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(5))
	ctx := context.Background()

	a, err := lm.Acquire(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3 || lm.Free() != 2 {
		t.Fatalf("gang size %d, free %d", a.Size(), lm.Free())
	}

	// A second gang of 3 cannot be satisfied from the 2 remaining devices:
	// Acquire must hold out for the full gang, not hand over a partial one.
	ctx2, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := lm.Acquire(ctx2, 3); err == nil {
		t.Fatal("partial gang handed out")
	}
	if lm.Free() != 2 {
		t.Fatalf("failed acquire leaked devices: free %d", lm.Free())
	}

	a.Release()
	a.Release() // idempotent
	if lm.Free() != 5 {
		t.Fatalf("release returned %d devices, want 5", lm.Free())
	}
}

func TestLeaseOversizedGang(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(2))
	if _, err := lm.Acquire(context.Background(), 3); err == nil {
		t.Fatal("impossible gang accepted")
	}
}

func TestLeaseContention(t *testing.T) {
	const (
		devices = 6
		gang    = 3
		workers = 8
		rounds  = 25
	)
	lm := NewLeaseManager(NewHonestCluster(devices))

	var mu sync.Mutex
	held := map[int]int{} // physical device ID -> holder
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				l, err := lm.Acquire(context.Background(), gang)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				for _, id := range l.DeviceIDs() {
					if other, busy := held[id]; busy {
						t.Errorf("device %d leased to workers %d and %d at once", id, other, w)
					}
					held[id] = w
				}
				mu.Unlock()
				mu.Lock()
				for _, id := range l.DeviceIDs() {
					delete(held, id)
				}
				mu.Unlock()
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	if lm.Free() != devices {
		t.Fatalf("devices leaked: free %d, want %d", lm.Free(), devices)
	}
	grants, waited := lm.Stats()
	if grants != workers*rounds {
		t.Fatalf("grants = %d, want %d", grants, workers*rounds)
	}
	if waited == 0 {
		t.Log("no acquisition ever blocked (scheduling luck); contention untested this run")
	}
}

func TestLeaseAcquireCancel(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(2))
	l, err := lm.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := lm.Acquire(ctx, 1)
		done <- err
	}()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	l.Release()
}
