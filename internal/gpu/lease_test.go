package gpu

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestLeaseAllOrNone(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(5))
	ctx := context.Background()

	a, err := lm.Acquire(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3 || lm.Free() != 2 {
		t.Fatalf("gang size %d, free %d", a.Size(), lm.Free())
	}

	// A second gang of 3 cannot be satisfied from the 2 remaining devices:
	// Acquire must hold out for the full gang, not hand over a partial one.
	ctx2, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := lm.Acquire(ctx2, 3); err == nil {
		t.Fatal("partial gang handed out")
	}
	if lm.Free() != 2 {
		t.Fatalf("failed acquire leaked devices: free %d", lm.Free())
	}

	a.Release()
	a.Release() // idempotent
	if lm.Free() != 5 {
		t.Fatalf("release returned %d devices, want 5", lm.Free())
	}
}

func TestLeaseOversizedGang(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(2))
	if _, err := lm.Acquire(context.Background(), 3); err == nil {
		t.Fatal("impossible gang accepted")
	}
}

func TestLeaseContention(t *testing.T) {
	const (
		devices = 6
		gang    = 3
		workers = 8
		rounds  = 25
	)
	lm := NewLeaseManager(NewHonestCluster(devices))

	var mu sync.Mutex
	held := map[int]int{} // physical device ID -> holder
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				l, err := lm.Acquire(context.Background(), gang)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				mu.Lock()
				for _, id := range l.DeviceIDs() {
					if other, busy := held[id]; busy {
						t.Errorf("device %d leased to workers %d and %d at once", id, other, w)
					}
					held[id] = w
				}
				mu.Unlock()
				mu.Lock()
				for _, id := range l.DeviceIDs() {
					delete(held, id)
				}
				mu.Unlock()
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	if lm.Free() != devices {
		t.Fatalf("devices leaked: free %d, want %d", lm.Free(), devices)
	}
	st := lm.Stats()
	if st.Grants != workers*rounds {
		t.Fatalf("grants = %d, want %d", st.Grants, workers*rounds)
	}
	if st.Waits == 0 {
		t.Log("no acquisition ever blocked (scheduling luck); contention untested this run")
	} else if st.WaitTime <= 0 {
		t.Fatalf("%d grants blocked but WaitTime = %v", st.Waits, st.WaitTime)
	}
}

func TestLeaseAcquireCancel(t *testing.T) {
	lm := NewLeaseManager(NewHonestCluster(2))
	l, err := lm.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := lm.Acquire(ctx, 1)
		done <- err
	}()
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	l.Release()
}

func TestLeaseCancelWhileBlockedLeaksNothing(t *testing.T) {
	// A gang acquire blocked mid-wait and then cancelled must return
	// ctx.Err() without consuming any devices: the pool stays intact and a
	// follow-up full-gang acquire succeeds immediately.
	const devices = 4
	lm := NewLeaseManager(NewHonestCluster(devices))
	hold, err := lm.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	go func() {
		_, err := lm.Acquire(ctx, 2) // only 1 free: must block
		blocked <- err
	}()
	// Give the acquire time to enter its wait, then wake it spuriously with
	// a partial release so it re-checks (and blocks again) before the
	// cancellation lands.
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-blocked; err != context.Canceled {
		t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
	}
	if free := lm.Free(); free != 1 {
		t.Fatalf("cancelled acquire changed the pool: %d free, want 1", free)
	}
	hold.Release()
	if free := lm.Free(); free != devices {
		t.Fatalf("pool after release: %d free, want %d", free, devices)
	}
	// The whole fleet is still grantable in one gang.
	full, err := lm.Acquire(context.Background(), devices)
	if err != nil {
		t.Fatalf("post-cancel full-fleet acquire: %v", err)
	}
	full.Release()
	if st := lm.Stats(); st.Grants != 2 {
		t.Fatalf("grants = %d, want 2 (cancelled acquire must not count)", st.Grants)
	}
}
