// Package gpu simulates the untrusted accelerator fleet DarKnight offloads
// its coded linear algebra to. Devices execute the *real* field kernels on
// the coded tensors they receive — functionally exactly what a GPU does to
// masked data — while recording traffic for the performance model and
// optionally misbehaving: injecting faults (the integrity threat, §4.4) or
// pooling their received data with co-conspirators (the collusion threat,
// §4.5).
package gpu

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"darknight/internal/field"
)

// LinearKernel is a layer's forward linear op y = <W, x> with weights bound
// (the model is public to GPUs; only inputs are coded).
type LinearKernel func(x field.Vec) field.Vec

// BilinearKernel is a layer's weight-gradient op <delta, x>.
type BilinearKernel func(delta, x field.Vec) field.Vec

// Traffic counts the TEE<->GPU channel usage of one device.
type Traffic struct {
	BytesIn  int64 // coded inputs + gradient operands received
	BytesOut int64 // results returned
	Jobs     int64
}

// Device is one simulated accelerator.
type Device interface {
	// ID returns the device index within the cluster.
	ID() int
	// LinearForward applies the kernel to the coded input and returns the
	// result, also caching the coded input under key for backward reuse
	// (§6 "Encoded Data Storage During Forward Pass").
	LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec
	// GradWeights computes the bilinear gradient equation on a previously
	// stored coded input (by key) and the combined delta it received.
	GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error)
	// Stored returns how many coded inputs the device currently holds —
	// the §6 "Encoded Data Storage" footprint.
	Stored() int
	// Traffic returns the accumulated channel counters.
	Traffic() Traffic
}

// honest is a faithful accelerator.
type honest struct {
	id      int
	mu      sync.Mutex
	store   map[string]field.Vec
	traffic Traffic
}

// NewHonest creates a well-behaved device.
func NewHonest(id int) Device {
	return &honest{id: id, store: make(map[string]field.Vec)}
}

func (d *honest) ID() int { return d.id }

func (d *honest) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	d.mu.Lock()
	// The device stores its own copy, modelling the device-resident tensor
	// left behind by the PCIe transfer. The TEE reuses its coded-input
	// buffers across offloads (arena-backed; see internal/sched), so
	// retaining the caller's slice would alias freely mutated memory.
	d.store[key] = x.Clone()
	d.traffic.BytesIn += int64(len(x)) * 4
	d.traffic.Jobs++
	d.mu.Unlock()
	y := kernel(x)
	d.mu.Lock()
	d.traffic.BytesOut += int64(len(y)) * 4
	d.mu.Unlock()
	return y
}

func (d *honest) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	d.mu.Lock()
	x, ok := d.store[key]
	d.traffic.BytesIn += int64(len(delta)) * 4
	d.traffic.Jobs++
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("gpu %d: %w %q", d.id, ErrNoStored, key)
	}
	y := kernel(delta, x)
	d.mu.Lock()
	d.traffic.BytesOut += int64(len(y)) * 4
	d.mu.Unlock()
	return y, nil
}

func (d *honest) Stored() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.store)
}

func (d *honest) Traffic() Traffic {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.traffic
}

// FaultPolicy decides which jobs a malicious device corrupts. Exactly one
// of EveryNth and Probability should be set; the probabilistic mode draws
// from a policy-private RNG seeded with Seed, so fault-injection runs are
// reproducible — no global randomness is consulted.
type FaultPolicy struct {
	// EveryNth corrupts every n-th job (1 = all jobs). 0 disables.
	EveryNth int
	// Offset delays the first corruption (counting-mode only).
	Offset int
	// Probability corrupts each job independently with this chance,
	// drawn deterministically from a per-policy RNG. 0 disables; when
	// both modes are set, Probability wins.
	Probability float64
	// Seed seeds the probabilistic mode's private RNG. Two devices given
	// the same Seed corrupt the same job sequence.
	Seed int64
}

// malicious wraps an honest device and corrupts selected outputs — the
// dynamic malicious adversary of the threat model.
type malicious struct {
	Device
	policy FaultPolicy
	mu     sync.Mutex
	rng    *rand.Rand // probabilistic mode only; guarded by mu
	count  int
	// Corruptions counts how many results were tampered with.
	corruptions int
}

// NewMalicious wraps a device with a fault policy.
func NewMalicious(inner Device, policy FaultPolicy) Device {
	m := &malicious{Device: inner, policy: policy}
	if policy.Probability > 0 {
		m.rng = rand.New(rand.NewSource(policy.Seed))
	}
	return m
}

func (m *malicious) shouldCorrupt() bool {
	if m.policy.Probability <= 0 && m.policy.EveryNth <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count++
	if m.policy.Probability > 0 {
		if m.rng.Float64() < m.policy.Probability {
			m.corruptions++
			return true
		}
		return false
	}
	if m.count <= m.policy.Offset {
		return false
	}
	if (m.count-m.policy.Offset)%m.policy.EveryNth == 0 {
		m.corruptions++
		return true
	}
	return false
}

func corruptVec(v field.Vec) field.Vec {
	out := v.Clone()
	if len(out) > 0 {
		out[0] = field.Add(out[0], 1)
	}
	return out
}

func (m *malicious) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	y := m.Device.LinearForward(key, kernel, x)
	if m.shouldCorrupt() {
		return corruptVec(y)
	}
	return y
}

func (m *malicious) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	y, err := m.Device.GradWeights(key, kernel, delta)
	if err != nil {
		return nil, err
	}
	if m.shouldCorrupt() {
		return corruptVec(y), nil
	}
	return y, nil
}

// Corruptions reports how many outputs this device tampered with.
func (m *malicious) Corruptions() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.corruptions
}

// slow wraps a device and delays every result by a fixed amount — the
// straggler of distributed-serving folklore: functionally correct, just
// late. The delay is deterministic so straggler experiments reproduce.
type slow struct {
	Device
	delay time.Duration
}

// NewSlow wraps a device so every job takes at least delay longer.
func NewSlow(inner Device, delay time.Duration) Device {
	return &slow{Device: inner, delay: delay}
}

func (s *slow) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	y := s.Device.LinearForward(key, kernel, x)
	time.Sleep(s.delay)
	return y
}

func (s *slow) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	y, err := s.Device.GradWeights(key, kernel, delta)
	time.Sleep(s.delay)
	return y, err
}

// CollusionPool gathers everything a coalition of devices observed, for the
// privacy experiments: each entry is one coded vector a member received.
type CollusionPool struct {
	mu    sync.Mutex
	views map[string][]ObservedVec // key = logical tensor id
}

// ObservedVec is one coalition member's observation.
type ObservedVec struct {
	DeviceID int
	Data     field.Vec
}

// NewCollusionPool creates an empty pool.
func NewCollusionPool() *CollusionPool {
	return &CollusionPool{views: make(map[string][]ObservedVec)}
}

// Observations returns the coalition's recorded views for a tensor id.
func (p *CollusionPool) Observations(key string) []ObservedVec {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ObservedVec(nil), p.views[key]...)
}

// colluding wraps a device, copying every received coded input into the
// shared pool.
type colluding struct {
	Device
	pool *CollusionPool
}

// NewColluding wraps a device so it leaks its inputs to the pool.
func NewColluding(inner Device, pool *CollusionPool) Device {
	return &colluding{Device: inner, pool: pool}
}

func (c *colluding) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	c.pool.mu.Lock()
	c.pool.views[key] = append(c.pool.views[key], ObservedVec{DeviceID: c.ID(), Data: x.Clone()})
	c.pool.mu.Unlock()
	return c.Device.LinearForward(key, kernel, x)
}
