package gpu

import (
	"fmt"
	"sync"

	"darknight/internal/field"
)

// Cluster is the K' accelerator fleet of the system model (§3). Jobs fan
// out to devices concurrently — each coded input goes to exactly one
// device ("each GPU receives at most one encoded data") — and results
// gather in device order.
type Cluster struct {
	devices []Device
}

// NewCluster assembles a cluster from devices.
func NewCluster(devices ...Device) *Cluster {
	return &Cluster{devices: devices}
}

// NewHonestCluster creates n honest devices.
func NewHonestCluster(n int) *Cluster {
	devs := make([]Device, n)
	for i := range devs {
		devs[i] = NewHonest(i)
	}
	return NewCluster(devs...)
}

// Size returns the device count K'.
func (c *Cluster) Size() int { return len(c.devices) }

// Device returns device i.
func (c *Cluster) Device(i int) Device { return c.devices[i] }

// ForwardAll dispatches coded inputs to the first len(coded) devices in
// parallel and returns their results in device order.
func (c *Cluster) ForwardAll(key string, kernel LinearKernel, coded []field.Vec) ([]field.Vec, error) {
	if len(coded) > len(c.devices) {
		return nil, fmt.Errorf("gpu: %d coded inputs for %d devices", len(coded), len(c.devices))
	}
	results := make([]field.Vec, len(coded))
	var wg sync.WaitGroup
	for i := range coded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.devices[i].LinearForward(key, kernel, coded[i])
		}(i)
	}
	wg.Wait()
	return results, nil
}

// BackwardAll dispatches the per-device combined deltas against the coded
// inputs stored during the forward pass, in parallel.
func (c *Cluster) BackwardAll(key string, kernel BilinearKernel, deltas []field.Vec) ([]field.Vec, error) {
	if len(deltas) > len(c.devices) {
		return nil, fmt.Errorf("gpu: %d deltas for %d devices", len(deltas), len(c.devices))
	}
	results := make([]field.Vec, len(deltas))
	errs := make([]error, len(deltas))
	var wg sync.WaitGroup
	for i := range deltas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.devices[i].GradWeights(key, kernel, deltas[i])
		}(i)
	}
	wg.Wait()
	if err := FoldSlotErrors(errs); err != nil {
		return nil, err
	}
	return results, nil
}

// BackwardAllAsync is BackwardAll returning immediately with a completion
// handle, gathering into per-dispatch buffers so a pipelined trainer can
// hold several backward dispatches in flight at once. Cache misses surface
// as a MissingStoreError on the handle.
func (c *Cluster) BackwardAllAsync(key string, kernel BilinearKernel, deltas []field.Vec) *Pending {
	p := NewPending()
	if len(deltas) > len(c.devices) {
		p.Complete(nil, nil, fmt.Errorf("gpu: %d deltas for %d devices", len(deltas), len(c.devices)))
		return p
	}
	results := make([]field.Vec, len(deltas))
	errs := make([]error, len(deltas))
	var wg sync.WaitGroup
	for i := range deltas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.devices[i].GradWeights(key, kernel, deltas[i])
		}(i)
	}
	go func() {
		wg.Wait()
		if err := FoldSlotErrors(errs); err != nil {
			p.Complete(nil, nil, err)
			return
		}
		p.Complete(results, nil, nil)
	}()
	return p
}

// TotalTraffic sums channel counters across devices.
func (c *Cluster) TotalTraffic() Traffic {
	var t Traffic
	for _, d := range c.devices {
		dt := d.Traffic()
		t.BytesIn += dt.BytesIn
		t.BytesOut += dt.BytesOut
		t.Jobs += dt.Jobs
	}
	return t
}
