package gpu

import (
	"math/rand"
	"testing"
	"time"

	"darknight/internal/field"
)

func scaleKernel(s field.Elem) LinearKernel {
	return func(x field.Vec) field.Vec { return field.ScaleVec(s, x) }
}

func dotKernel(delta, x field.Vec) field.Vec {
	return field.Vec{field.Dot(delta, x)}
}

func TestHonestDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewHonest(0)
	x := field.RandVec(rng, 10)
	y := d.LinearForward("l0", scaleKernel(3), x)
	want := field.ScaleVec(3, x)
	if !y.Equal(want) {
		t.Fatal("forward result wrong")
	}
	// Stored coded input is reused for backward.
	delta := field.RandVec(rng, 10)
	g, err := d.GradWeights("l0", dotKernel, delta)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != field.Dot(delta, x) {
		t.Fatal("backward used wrong stored input")
	}
	// Unknown key errors.
	if _, err := d.GradWeights("nope", dotKernel, delta); err == nil {
		t.Fatal("missing key accepted")
	}
	tr := d.Traffic()
	if tr.Jobs != 3 || tr.BytesIn == 0 || tr.BytesOut == 0 {
		t.Fatalf("traffic = %+v", tr)
	}
}

func TestMaliciousDevicePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inner := NewHonest(1)
	dev := NewMalicious(inner, FaultPolicy{EveryNth: 2, Offset: 1})
	x := field.RandVec(rng, 5)
	honest := field.ScaleVec(7, x)
	// Offset=1 skips job 1; thereafter every 2nd job corrupts when the
	// post-offset counter hits a multiple of EveryNth: jobs 3 and 5.
	wantCorrupt := []bool{false, false, true, false, true}
	for i, want := range wantCorrupt {
		y := dev.LinearForward("k", scaleKernel(7), x)
		got := !y.Equal(honest)
		if got != want {
			t.Fatalf("job %d: corrupted=%v, want %v", i+1, got, want)
		}
	}
	if c := dev.(*malicious).Corruptions(); c != 2 {
		t.Fatalf("corruptions = %d", c)
	}
}

func TestMaliciousSeededProbabilityIsDeterministic(t *testing.T) {
	// Two devices with the same seeded probabilistic policy must corrupt the
	// exact same job sequence — fault-injection runs reproduce bit-for-bit.
	rng := rand.New(rand.NewSource(5))
	x := field.RandVec(rng, 6)
	honest := field.ScaleVec(5, x)
	run := func(seed int64) []bool {
		dev := NewMalicious(NewHonest(0), FaultPolicy{Probability: 0.4, Seed: seed})
		out := make([]bool, 40)
		for i := range out {
			out[i] = !dev.LinearForward("k", scaleKernel(5), x).Equal(honest)
		}
		return out
	}
	a, b := run(9), run(9)
	corrupted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
		if a[i] {
			corrupted++
		}
	}
	if corrupted == 0 || corrupted == len(a) {
		t.Fatalf("probability 0.4 corrupted %d/%d jobs; want a strict subset", corrupted, len(a))
	}
	c := run(10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestSlowDeviceIsCorrectJustLate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := field.RandVec(rng, 8)
	dev := NewSlow(NewHonest(0), time.Millisecond)
	start := time.Now()
	y := dev.LinearForward("k", scaleKernel(3), x)
	if time.Since(start) < time.Millisecond {
		t.Fatal("slow device returned early")
	}
	if !y.Equal(field.ScaleVec(3, x)) {
		t.Fatal("slow device corrupted the result")
	}
}

func TestMaliciousDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dev := NewMalicious(NewHonest(0), FaultPolicy{})
	x := field.RandVec(rng, 4)
	if !dev.LinearForward("k", scaleKernel(2), x).Equal(field.ScaleVec(2, x)) {
		t.Fatal("disabled policy still corrupted")
	}
}

func TestColludingRecordsViews(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := NewCollusionPool()
	d0 := NewColluding(NewHonest(0), pool)
	d1 := NewColluding(NewHonest(1), pool)
	x0 := field.RandVec(rng, 6)
	x1 := field.RandVec(rng, 6)
	d0.LinearForward("layer0", scaleKernel(1), x0)
	d1.LinearForward("layer0", scaleKernel(1), x1)
	obs := pool.Observations("layer0")
	if len(obs) != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	if !obs[0].Data.Equal(x0) || !obs[1].Data.Equal(x1) {
		t.Fatal("pool recorded wrong views")
	}
	if len(pool.Observations("other")) != 0 {
		t.Fatal("unexpected observations")
	}
}

func TestClusterParallelDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewHonestCluster(4)
	coded := make([]field.Vec, 4)
	for i := range coded {
		coded[i] = field.RandVec(rng, 100)
	}
	results, err := c.ForwardAll("l1", scaleKernel(5), coded)
	if err != nil {
		t.Fatal(err)
	}
	for i := range coded {
		if !results[i].Equal(field.ScaleVec(5, coded[i])) {
			t.Fatalf("device %d result wrong", i)
		}
	}
	// Backward on the stored inputs.
	deltas := make([]field.Vec, 4)
	for i := range deltas {
		deltas[i] = field.RandVec(rng, 100)
	}
	grads, err := c.BackwardAll("l1", dotKernel, deltas)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grads {
		if grads[i][0] != field.Dot(deltas[i], coded[i]) {
			t.Fatalf("device %d gradient wrong", i)
		}
	}
	if c.TotalTraffic().Jobs != 8 {
		t.Fatalf("traffic jobs = %d", c.TotalTraffic().Jobs)
	}
}

func TestClusterTooManyInputs(t *testing.T) {
	c := NewHonestCluster(2)
	coded := make([]field.Vec, 3)
	for i := range coded {
		coded[i] = field.Vec{1}
	}
	if _, err := c.ForwardAll("k", scaleKernel(1), coded); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if _, err := c.BackwardAll("k", dotKernel, coded); err == nil {
		t.Fatal("oversubscription accepted")
	}
}
