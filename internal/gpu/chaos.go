package gpu

import (
	"sync"
	"sync/atomic"
	"time"

	"darknight/internal/field"
)

// ChaosDevice wraps a device with runtime-switchable fault injection — the
// actuator the scripted chaos harness (internal/resil) drives. Unlike the
// construction-time malicious/slow wrappers, every knob here can flip while
// traffic is in flight, which is what device crashes, latency spikes,
// tamper bursts and flapping look like to the serving stack.
//
// Semantics:
//
//   - SetDelay(d) adds d to every job — the latency-spike / straggler knob.
//   - SetTamper(true) corrupts every result — the tamper-burst knob. The
//     coded decode detects and attributes it exactly like a malicious
//     device.
//   - SetDown(true) models a crashed or partitioned device: jobs return
//     instantly with garbage of the right shape. The caller's coded decode
//     rejects the garbage and attributes the slot, so a down device is
//     handled by the same quarantine + retry machinery as a tamperer —
//     deliberately NOT modelled as a hang, because the gang fan-out waits
//     for every device and an unbounded hang would deadlock the flight.
//     (A real RPC stack would surface a fast transport error here; in the
//     simulated fleet "instant garbage" is the equivalent fail-fast
//     signal.)
//
// All accessors are safe for concurrent use.
type ChaosDevice struct {
	Device
	delay  atomic.Int64 // nanoseconds added per job
	tamper atomic.Bool
	down   atomic.Bool

	mu sync.Mutex
	// actions counts state flips, faults counts jobs answered while
	// down/tampering — the chaos audit trail.
	actions int64
	faults  int64
}

// NewChaos wraps a device with runtime fault injection, initially clean.
func NewChaos(inner Device) *ChaosDevice {
	return &ChaosDevice{Device: inner}
}

// SetDelay sets the added per-job latency (0 restores full speed).
func (c *ChaosDevice) SetDelay(d time.Duration) {
	c.delay.Store(int64(d))
	c.noteAction()
}

// SetTamper switches result corruption on or off.
func (c *ChaosDevice) SetTamper(on bool) {
	c.tamper.Store(on)
	c.noteAction()
}

// SetDown switches the crashed/partitioned state on or off.
func (c *ChaosDevice) SetDown(on bool) {
	c.down.Store(on)
	c.noteAction()
}

// Down reports whether the device is currently in the crashed state.
func (c *ChaosDevice) Down() bool { return c.down.Load() }

func (c *ChaosDevice) noteAction() {
	c.mu.Lock()
	c.actions++
	c.mu.Unlock()
}

func (c *ChaosDevice) noteFault() {
	c.mu.Lock()
	c.faults++
	c.mu.Unlock()
}

// ChaosStats reports (state flips applied, jobs answered while faulty).
func (c *ChaosDevice) ChaosStats() (actions, faults int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.actions, c.faults
}

// garbage returns an all-ones vector of length n: deterministic, cheap,
// and essentially never a valid coded result, so the redundant decode
// flags the slot.
func garbage(n int) field.Vec {
	out := make(field.Vec, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

func (c *ChaosDevice) LinearForward(key string, kernel LinearKernel, x field.Vec) field.Vec {
	y := c.Device.LinearForward(key, kernel, x)
	if c.down.Load() {
		// Fail fast with the right shape: no injected delay, result
		// unrelated to the inputs. (The inner compute supplies the output
		// geometry; its cost is the honest baseline, so "down" is never
		// slower than healthy.)
		c.noteFault()
		return garbage(len(y))
	}
	if d := c.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if c.tamper.Load() {
		c.noteFault()
		return corruptVec(y)
	}
	return y
}

func (c *ChaosDevice) GradWeights(key string, kernel BilinearKernel, delta field.Vec) (field.Vec, error) {
	y, err := c.Device.GradWeights(key, kernel, delta)
	if err != nil {
		if c.down.Load() {
			c.noteFault()
			return garbage(len(delta)), nil
		}
		return nil, err
	}
	if c.down.Load() {
		c.noteFault()
		return garbage(len(y)), nil
	}
	if d := c.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if c.tamper.Load() {
		c.noteFault()
		return corruptVec(y), nil
	}
	return y, nil
}
