package gpu

import (
	"fmt"
	"sync"

	"darknight/internal/field"
)

// Pending is the completion handle of an asynchronous gang dispatch: the
// dispatching layer returns it immediately, the caller parks on Wait (or
// selects on Done) when it actually needs the results. It is what lets a
// pipelined TEE keep encoding and decoding other virtual batches while a
// dispatch is in flight on the devices.
type Pending struct {
	done    chan struct{}
	results []field.Vec
	present []bool
	err     error
}

// NewPending creates an incomplete handle. The dispatching layer completes
// it exactly once with Complete.
func NewPending() *Pending { return &Pending{done: make(chan struct{})} }

// Complete publishes the dispatch outcome and releases every waiter. It
// must be called exactly once, by the dispatching layer only. present is
// nil for wait-for-all dispatches (every slot answered) and a presence mask
// for quorum dispatches; either way the published slices are immutable
// snapshots.
func (p *Pending) Complete(results []field.Vec, present []bool, err error) {
	p.results, p.present, p.err = results, present, err
	close(p.done)
}

// Done returns a channel closed once the results are ready — for callers
// multiplexing several outstanding dispatches in a select.
func (p *Pending) Done() <-chan struct{} { return p.done }

// Wait blocks until the dispatch completes and returns its results, the
// presence mask (nil means every slot answered) and the dispatch error.
// Safe to call from multiple goroutines and more than once.
func (p *Pending) Wait() ([]field.Vec, []bool, error) {
	<-p.done
	return p.results, p.present, p.err
}

// ForwardAllAsync is ForwardAll returning immediately with a completion
// handle: the fan-out runs in the background and the handle completes once
// every device has answered. Concurrent outstanding dispatches are safe —
// each call gathers into its own buffer — which is what a pipelined caller
// relies on to hold several coded batches in flight at once.
func (c *Cluster) ForwardAllAsync(key string, kernel LinearKernel, coded []field.Vec) *Pending {
	p := NewPending()
	if len(coded) > len(c.devices) {
		p.Complete(nil, nil, fmt.Errorf("gpu: %d coded inputs for %d devices", len(coded), len(c.devices)))
		return p
	}
	results := make([]field.Vec, len(coded))
	var wg sync.WaitGroup
	for i := range coded {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.devices[i].LinearForward(key, kernel, coded[i])
		}(i)
	}
	go func() {
		wg.Wait()
		p.Complete(results, nil, nil)
	}()
	return p
}
