package gpu

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// LeaseManager arbitrates exclusive device leases over one physical
// cluster. DarKnight's coded dispatch is a gang workload: one virtual batch
// needs K+M+E devices *simultaneously* (each coded input goes to exactly
// one device), so acquisition is all-or-none — a request either gets its
// full gang atomically or waits. This is the gang-scheduling model of
// cluster schedulers like KAI, scaled down to one process.
//
// Devices are handed out LIFO so a hot serving loop keeps reusing the same
// few devices (warm stores) while the rest of the fleet stays idle for
// other tenants.
type LeaseManager struct {
	cluster *Cluster

	mu   sync.Mutex
	free []int         // indices into cluster, free for leasing
	wake chan struct{} // closed and replaced on every release

	// stats
	grants   int64
	waits    int64         // grants that had to block at least once
	waitTime time.Duration // total time grants spent blocked
}

// LeaseStats reports the lease manager's grant counters.
type LeaseStats struct {
	// Grants is the total number of gangs handed out.
	Grants int64
	// Waits counts grants that had to block at least once before their
	// full gang was free.
	Waits int64
	// WaitTime is the cumulative wall-clock time grants spent blocked in
	// Acquire (acquire-wait duration summed over all blocked grants).
	WaitTime time.Duration
}

// NewLeaseManager puts every device of the cluster under lease management.
func NewLeaseManager(c *Cluster) *LeaseManager {
	free := make([]int, c.Size())
	for i := range free {
		free[i] = i
	}
	return &LeaseManager{cluster: c, free: free, wake: make(chan struct{})}
}

// Cluster returns the managed physical cluster.
func (lm *LeaseManager) Cluster() *Cluster { return lm.cluster }

// Free returns how many devices are currently leasable.
func (lm *LeaseManager) Free() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.free)
}

// InUse returns how many devices are currently leased out.
func (lm *LeaseManager) InUse() int { return lm.cluster.Size() - lm.Free() }

// Stats reports the grant/wait counters and the cumulative acquire-wait
// duration.
func (lm *LeaseManager) Stats() LeaseStats {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return LeaseStats{Grants: lm.grants, Waits: lm.waits, WaitTime: lm.waitTime}
}

// Acquire blocks until n devices are simultaneously free, then leases all
// of them atomically. It never hands out a partial gang. Cancellation of
// ctx aborts the wait with ctx.Err().
func (lm *LeaseManager) Acquire(ctx context.Context, n int) (*Lease, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gpu: lease size %d must be positive", n)
	}
	if n > lm.cluster.Size() {
		return nil, fmt.Errorf("gpu: gang of %d devices can never fit cluster of %d", n, lm.cluster.Size())
	}
	blocked := false
	var blockedAt time.Time
	for {
		lm.mu.Lock()
		if len(lm.free) >= n {
			ids := make([]int, n)
			copy(ids, lm.free[len(lm.free)-n:])
			lm.free = lm.free[:len(lm.free)-n]
			lm.grants++
			if blocked {
				lm.waits++
				lm.waitTime += time.Since(blockedAt)
			}
			lm.mu.Unlock()
			devs := make([]Device, n)
			for i, id := range ids {
				devs[i] = lm.cluster.Device(id)
			}
			return &Lease{lm: lm, ids: ids, gang: NewCluster(devs...)}, nil
		}
		wake := lm.wake
		lm.mu.Unlock()
		if !blocked {
			blocked = true
			blockedAt = time.Now()
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// release returns device indices to the pool and wakes all waiters (each
// re-checks whether its full gang now fits).
func (lm *LeaseManager) release(ids []int) {
	lm.mu.Lock()
	lm.free = append(lm.free, ids...)
	close(lm.wake)
	lm.wake = make(chan struct{})
	lm.mu.Unlock()
}

// Lease is temporary exclusive ownership of a device gang.
type Lease struct {
	lm   *LeaseManager
	ids  []int
	gang *Cluster

	once sync.Once
}

// Cluster returns the leased gang as a dispatchable cluster view. Coded
// input i goes to the i-th leased device; the view is only valid until
// Release.
func (l *Lease) Cluster() *Cluster { return l.gang }

// Size returns the gang size.
func (l *Lease) Size() int { return len(l.ids) }

// DeviceIDs returns the physical device IDs backing the gang.
func (l *Lease) DeviceIDs() []int {
	out := make([]int, len(l.ids))
	for i, id := range l.ids {
		out[i] = l.lm.cluster.Device(id).ID()
	}
	return out
}

// Release returns the gang to the pool. Safe to call more than once.
func (l *Lease) Release() {
	l.once.Do(func() { l.lm.release(l.ids) })
}
