package gpu

import (
	"darknight/internal/field"
)

// BackwardOutcome is the result of a dual-window backward quorum dispatch:
// the primary equation window (gang slots [0, S), published-B delta
// combinations) and the secondary window (gang slots [E, S+E), SecondaryB
// combinations), each with a presence mask. The decoder
// (masking.DecodeBackwardSubsetInto) proceeds from whichever window is
// complete. All four slices are immutable snapshots — laggard equations
// completing after the quorum may not mutate them.
type BackwardOutcome struct {
	Prim        []field.Vec
	Sec         []field.Vec
	PrimPresent []bool
	SecPresent  []bool
}

// PendingBackward is the completion handle of an asynchronous backward
// quorum dispatch, mirroring Pending for the dual-window result shape.
type PendingBackward struct {
	done    chan struct{}
	outcome BackwardOutcome
	err     error
}

// NewPendingBackward creates an incomplete handle. The dispatching layer
// completes it exactly once with Complete.
func NewPendingBackward() *PendingBackward {
	return &PendingBackward{done: make(chan struct{})}
}

// Complete publishes the dispatch outcome and releases every waiter. It
// must be called exactly once, by the dispatching layer only.
func (p *PendingBackward) Complete(o BackwardOutcome, err error) {
	p.outcome, p.err = o, err
	close(p.done)
}

// Done returns a channel closed once the outcome is ready.
func (p *PendingBackward) Done() <-chan struct{} { return p.done }

// Wait blocks until the dispatch completes and returns its outcome. Safe to
// call from multiple goroutines and more than once.
func (p *PendingBackward) Wait() (BackwardOutcome, error) {
	<-p.done
	return p.outcome, p.err
}
