package gpu

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNoStored is the sentinel wrapped by GradWeights when a device holds no
// cached coded forward input under the requested key. The training runtime
// uses it to detect that the device behind a gang slot changed between the
// forward and backward passes (fleet quarantine, probation re-admission,
// spare re-dispatch, or a quorum laggard that never finished storing) and
// to fall back to re-encoding the stored trace instead of failing the batch.
var ErrNoStored = errors.New("gpu: no stored coded input")

// MissingStoreError aggregates a backward dispatch's cache misses: every
// gang slot whose device lacked the stored coded input. It wraps
// ErrNoStored so errors.Is keeps working.
type MissingStoreError struct {
	Slots []int
}

func (e *MissingStoreError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu: no stored coded input on gang slots %v", e.Slots)
	return b.String()
}

func (e *MissingStoreError) Unwrap() error { return ErrNoStored }

// FoldSlotErrors folds per-slot backward errors: if every failure is a
// cache miss it returns a MissingStoreError listing the slots (sorted, so
// callers see deterministic attributions); any other failure wins as-is.
// Gang-level dispatchers (fleet.Grant) share it with Cluster.
func FoldSlotErrors(errs []error) error {
	var missing []int
	for slot, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, ErrNoStored) {
			missing = append(missing, slot)
			continue
		}
		return err
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Ints(missing)
	return &MissingStoreError{Slots: missing}
}

// SlotKey scopes a storage key to one gang slot. Gang-level dispatchers
// (fleet.Grant) store each coded input under its slot-scoped key, so a
// device that lands in a different slot of a later gang — the fleet shuffles
// devices by health — misses cleanly instead of silently serving another
// slot's coded tensor to the backward pass.
func SlotKey(key string, slot int) string { return fmt.Sprintf("%s#s%d", key, slot) }
