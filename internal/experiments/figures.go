package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"darknight/internal/dataset"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/perf"
	"darknight/internal/sched"
)

// ---------------------------------------------------------------- Fig 3

// Figure3Row is one model's aggregation speedup series over K.
type Figure3Row struct {
	Model    string
	Speedups map[int]float64 // K -> speedup over K=1
}

// Figure3 reproduces the virtual-batch aggregation speedup (Algorithm 2)
// for batch size 128, K in {2..5}.
func Figure3() []Figure3Row {
	p, ws := profileAndWorkloads()
	var rows []Figure3Row
	for _, name := range []string{"VGG16", "ResNet50", "MobileNetV2"} {
		r := Figure3Row{Model: name, Speedups: map[int]float64{}}
		for _, k := range []int{2, 3, 4, 5} {
			r.Speedups[k] = perf.AggregationSpeedup(p, ws[name], 1, 0, k, 128)
		}
		rows = append(rows, r)
	}
	return rows
}

// RenderFigure3 formats the Fig 3 series.
func RenderFigure3(rows []Figure3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 3: aggregation speedup vs virtual batch size (batch 128, rel. K=1)")
	fmt.Fprintf(&b, "%-14s %8s %8s %8s %8s\n", "Model", "K=2", "K=3", "K=4", "K=5")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8.2f %8.2f %8.2f %8.2f\n",
			r.Model, r.Speedups[2], r.Speedups[3], r.Speedups[4], r.Speedups[5])
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 4

// Figure4Point is one epoch's accuracy pair.
type Figure4Point struct {
	Epoch             int
	RawAcc, DarKnight float64
}

// Figure4Series is one model's raw-vs-DarKnight accuracy trajectory.
type Figure4Series struct {
	Model  string
	Points []Figure4Point
	// FinalGap is |raw - darknight| at the last epoch (paper: <0.01).
	FinalGap float64
}

// Figure4Config sizes the accuracy experiment. The paper trains the
// full-size nets on CIFAR-10 for 100 epochs; this reproduction trains the
// structurally-faithful scaled variants on synthetic CIFAR (substitution in
// DESIGN.md) — the raw-vs-masked comparison, which is what Fig 4 is about,
// is preserved exactly.
type Figure4Config struct {
	Epochs int
	Train  int // training examples
	Test   int
	Width  int // scaled-model width multiplier
	Seed   int64
	// LR / Momentum drive both optimizers identically.
	LR, Momentum float64
}

// DefaultFigure4Config is sized to run in a couple of minutes.
func DefaultFigure4Config() Figure4Config {
	return Figure4Config{Epochs: 6, Train: 240, Test: 60, Width: 1, Seed: 1,
		LR: 0.01, Momentum: 0.5}
}

// QuickFigure4Config is sized for the benchmark harness.
func QuickFigure4Config() Figure4Config {
	return Figure4Config{Epochs: 4, Train: 160, Test: 48, Width: 1, Seed: 1,
		LR: 0.01, Momentum: 0.5}
}

// Figure4 trains each scaled model twice — float reference ("Raw Data")
// and the full DarKnight masked pipeline — on the same data and records
// test accuracy per epoch.
func Figure4(cfg Figure4Config) ([]Figure4Series, error) {
	// Per-model learning rates (the paper tunes per model too): VGG has
	// no normalization and needs a conservative step; the BN-heavy nets
	// train faster with larger ones.
	builders := []struct {
		name  string
		lrMul float64
		build func(rng *rand.Rand) *nn.Model
	}{
		{"VGG16", 1, func(rng *rand.Rand) *nn.Model { return nn.VGG16Scaled(1, 8, 8, 4, cfg.Width, rng) }},
		{"ResNet50", 2, func(rng *rand.Rand) *nn.Model { return nn.ResNet50Scaled(1, 8, 8, 4, cfg.Width, rng) }},
		{"MobileNetV2", 5, func(rng *rand.Rand) *nn.Model { return nn.MobileNetV2Scaled(1, 8, 8, 4, cfg.Width, rng) }},
	}
	var out []Figure4Series
	for _, bb := range builders {
		data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(cfg.Seed)), cfg.Train+cfg.Test, 4, 1, 8, 8, 0.05)
		train, test := data.Split(float64(cfg.Train) / float64(cfg.Train+cfg.Test))

		raw := bb.build(rand.New(rand.NewSource(cfg.Seed + 7)))
		masked := bb.build(rand.New(rand.NewSource(cfg.Seed + 7))) // identical init
		cluster := gpu.NewHonestCluster(3)
		trainer, err := sched.NewTrainer(sched.Config{VirtualBatch: 2, Seed: cfg.Seed}, masked, cluster, nil)
		if err != nil {
			return nil, err
		}
		optRaw := nn.NewSGD(cfg.LR*bb.lrMul, cfg.Momentum)
		optMasked := nn.NewSGD(cfg.LR*bb.lrMul, cfg.Momentum)

		series := Figure4Series{Model: bb.name}
		for epoch := 1; epoch <= cfg.Epochs; epoch++ {
			shuffler := rand.New(rand.NewSource(cfg.Seed + int64(epoch)))
			train.Shuffle(shuffler)
			for _, batch := range train.Batches(8) {
				raw.TrainBatch(batch, optRaw)
				if _, _, err := trainer.TrainLargeBatch(batch, optMasked, 0); err != nil {
					return nil, err
				}
			}
			pt := Figure4Point{
				Epoch:     epoch,
				RawAcc:    raw.Evaluate(test),
				DarKnight: masked.Evaluate(test),
			}
			series.Points = append(series.Points, pt)
		}
		last := series.Points[len(series.Points)-1]
		series.FinalGap = last.RawAcc - last.DarKnight
		if series.FinalGap < 0 {
			series.FinalGap = -series.FinalGap
		}
		out = append(out, series)
	}
	return out, nil
}

// RenderFigure4 formats the accuracy trajectories.
func RenderFigure4(series []Figure4Series) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 4: training accuracy, Raw Data vs DarKnight (synthetic CIFAR)")
	for _, s := range series {
		fmt.Fprintf(&b, "%s (final |gap| = %.3f)\n", s.Model, s.FinalGap)
		fmt.Fprintf(&b, "  %-6s %10s %10s\n", "epoch", "raw", "darknight")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %-6d %10.3f %10.3f\n", p.Epoch, p.RawAcc, p.DarKnight)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 5

// Figure5Row is one model's training speedup pair.
type Figure5Row struct {
	Model                   string
	NonPipelined, Pipelined float64
}

// Figure5 reproduces the ImageNet training speedup over the SGX baseline
// for the non-pipelined and pipelined designs (K=2, 3 GPUs).
func Figure5() []Figure5Row {
	p, ws := profileAndWorkloads()
	c := perf.Coding{K: 2, M: 1}
	var rows []Figure5Row
	for _, name := range []string{"VGG16", "ResNet50", "MobileNetV2"} {
		w := ws[name]
		base := perf.BaselineSGXTrain(p, w).Total()
		rows = append(rows, Figure5Row{
			Model:        name,
			NonPipelined: base / perf.DarKnightTrain(p, w, c, false).Total(),
			Pipelined:    base / perf.DarKnightTrain(p, w, c, true).Total(),
		})
	}
	return rows
}

// RenderFigure5 formats Fig 5.
func RenderFigure5(rows []Figure5Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 5: ImageNet training speedup over SGX baseline")
	fmt.Fprintf(&b, "%-14s %14s %12s\n", "Model", "Non-Pipelined", "Pipelined")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14.2f %12.2f\n", r.Model, r.NonPipelined, r.Pipelined)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 6a

// Figure6aRow is one model's inference speedup set (relative to SGX-only).
type Figure6aRow struct {
	Model                                                   string
	SGX, Slalom, DarKnight4, SlalomIntegrity, DarKnight3Int float64
}

// Figure6a reproduces the inference comparison for VGG16 and MobileNetV1.
func Figure6a() []Figure6aRow {
	p, ws := profileAndWorkloads()
	var rows []Figure6aRow
	for _, name := range []string{"VGG16", "MobileNetV1"} {
		w := ws[name]
		sgx := perf.SGXInference(p, w)
		rows = append(rows, Figure6aRow{
			Model:           name,
			SGX:             1,
			Slalom:          sgx / perf.SlalomInference(p, w, false),
			DarKnight4:      sgx / perf.DarKnightInference(p, w, perf.Coding{K: 4, M: 1}),
			SlalomIntegrity: sgx / perf.SlalomInference(p, w, true),
			DarKnight3Int:   sgx / perf.DarKnightInference(p, w, perf.Coding{K: 3, M: 1, E: 1}),
		})
	}
	return rows
}

// RenderFigure6a formats Fig 6a.
func RenderFigure6a(rows []Figure6aRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6a: inference speedup relative to SGX baseline")
	fmt.Fprintf(&b, "%-14s %6s %8s %13s %17s %17s\n",
		"Model", "SGX", "Slalom", "DarKnight(4)", "Slalom+Integrity", "DarKnight(3)+Int")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6.1f %8.2f %13.2f %17.2f %17.2f\n",
			r.Model, r.SGX, r.Slalom, r.DarKnight4, r.SlalomIntegrity, r.DarKnight3Int)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 6b

// Figure6bRow is one virtual-batch size's per-op speedups relative to
// DarKnight(1) for VGG16 inference.
type Figure6bRow struct {
	K                                          int
	Unblinding, Blinding, ReLU, MaxPool, Total float64
}

// Figure6b reproduces the per-op virtual-batch scaling.
func Figure6b() []Figure6bRow {
	p, ws := profileAndWorkloads()
	w := ws["VGG16"]
	base := perf.DarKnightInferenceOps(p, w, perf.Coding{K: 1, M: 1})
	var rows []Figure6bRow
	for _, k := range []int{1, 2, 4, 6} {
		o := perf.DarKnightInferenceOps(p, w, perf.Coding{K: k, M: 1})
		rows = append(rows, Figure6bRow{
			K:          k,
			Unblinding: base.Unblinding / o.Unblinding,
			Blinding:   base.Blinding / o.Blinding,
			ReLU:       base.ReLU / o.ReLU,
			MaxPool:    base.MaxPool / o.MaxPool,
			Total:      base.Total / o.Total,
		})
	}
	return rows
}

// RenderFigure6b formats Fig 6b.
func RenderFigure6b(rows []Figure6bRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6b: VGG16 inference op speedup relative to DarKnight(1)")
	fmt.Fprintf(&b, "%-6s %10s %10s %8s %10s %8s\n", "K", "Unblinding", "Blinding", "Relu", "Maxpool", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %10.2f %10.2f %8.2f %10.2f %8.2f\n",
			r.K, r.Unblinding, r.Blinding, r.ReLU, r.MaxPool, r.Total)
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig 7

// Figure7Row is one thread count's relative training latency.
type Figure7Row struct {
	Threads int
	Latency float64 // relative to 1 thread
}

// Figure7 reproduces the SGX multithreading latency blow-up for VGG16.
func Figure7() []Figure7Row {
	p, ws := profileAndWorkloads()
	w := ws["VGG16"]
	base := perf.SGXMultithreadLatency(p, w, 1)
	var rows []Figure7Row
	for t := 1; t <= 4; t++ {
		rows = append(rows, Figure7Row{
			Threads: t,
			Latency: perf.SGXMultithreadLatency(p, w, t) / base,
		})
	}
	return rows
}

// RenderFigure7 formats Fig 7.
func RenderFigure7(rows []Figure7Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: VGG16 SGX training latency vs threads (rel. 1 thread)")
	fmt.Fprintf(&b, "%-8s %10s\n", "Threads", "Latency")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %10.2f\n", r.Threads, r.Latency)
	}
	return b.String()
}
