// Package experiments regenerates every table and figure of the paper's
// evaluation (§6–7). Each function returns typed rows; Render helpers
// produce the printable form used by cmd/experiments and the benchmarks.
// EXPERIMENTS.md records paper-vs-measured for each artifact.
package experiments

import (
	"fmt"
	"strings"

	"darknight/internal/nn"
	"darknight/internal/perf"
)

// profileAndWorkloads is the shared setup: the calibrated hardware profile
// and the four full-size architectures.
func profileAndWorkloads() (perf.Profile, map[string]perf.Workload) {
	p := perf.Default()
	return p, map[string]perf.Workload{
		"VGG16":       perf.NewWorkload(nn.VGG16Arch()),
		"ResNet50":    perf.NewWorkload(nn.ResNet50Arch()),
		"MobileNetV1": perf.NewWorkload(nn.MobileNetV1Arch()),
		"MobileNetV2": perf.NewWorkload(nn.MobileNetV2Arch()),
	}
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one operation class's GPU-over-SGX speedup.
type Table1Row struct {
	Pass                         string // "Forward" or "Backward"
	Linear, MaxPool, ReLU, Total float64
}

// Table1 reproduces Table 1: per-op GPU speedups over SGX for VGG16
// training on ImageNet. Linear ratios come straight from the calibrated
// profile; the totals weight them by VGG16's op mix.
func Table1() []Table1Row {
	p, ws := profileAndWorkloads()
	w := ws["VGG16"]

	linFwd := p.GPUMACsPerSec / p.SGXLinearMACsPerSec
	linBwd := linFwd / p.SGXBwdLinearFactor

	totalSGXFwd := w.LinMACs/p.SGXLinearMACsPerSec + w.NonLinOps/p.SGXElemsPerSec
	gpuElems := p.SGXElemsPerSec * p.GPUReLUFwdSpeedup
	totalGPUFwd := w.LinMACs/p.GPUMACsPerSec + w.NonLinOps/gpuElems

	totalSGXBwd := 2*w.LinMACs/(p.SGXLinearMACsPerSec*p.SGXBwdLinearFactor) +
		w.NonLinOps/p.SGXElemsPerSec
	gpuElemsBwd := p.SGXElemsPerSec * p.GPUReLUBwdSpeedup
	totalGPUBwd := 2*w.LinMACs/p.GPUMACsPerSec + w.NonLinOps/gpuElemsBwd

	return []Table1Row{
		{Pass: "Forward Pass", Linear: linFwd, MaxPool: p.GPUMaxPoolFwdSpeedup,
			ReLU: p.GPUReLUFwdSpeedup, Total: totalSGXFwd / totalGPUFwd},
		{Pass: "Backward Propagation", Linear: linBwd, MaxPool: p.GPUMaxPoolBwdSpeedup,
			ReLU: p.GPUReLUBwdSpeedup, Total: totalSGXBwd / totalGPUBwd},
	}
}

// RenderTable1 formats Table 1.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: GPU speedup over SGX, VGG16/ImageNet training\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %10s %10s\n", "Operations", "Linear", "Maxpool", "Relu", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10.2f %10.2f %10.2f %10.2f\n",
			r.Pass, r.Linear, r.MaxPool, r.ReLU, r.Total)
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 2

// Table2Row mirrors the qualitative capability matrix of Table 2.
type Table2Row struct {
	Method                          string
	Training, Inference             bool
	DP, MPC, HE, TEE                bool
	DataPrivacy, ModelPrivacyClient bool
	ModelPrivacyServer, Integrity   bool
	GPUAcceleration, LargeDNNs      bool
}

// Table2 returns the static comparison matrix (qualitative; reproduced for
// completeness).
func Table2() []Table2Row {
	return []Table2Row{
		{Method: "SecureNN", Training: true, Inference: true, MPC: true, DataPrivacy: true, ModelPrivacyClient: true, ModelPrivacyServer: true, GPUAcceleration: true},
		{Method: "Chiron", Training: true, Inference: true, TEE: true, DataPrivacy: true, ModelPrivacyClient: true, ModelPrivacyServer: true, Integrity: true},
		{Method: "MSP", Training: true, Inference: true, TEE: true, DataPrivacy: true, ModelPrivacyClient: true, ModelPrivacyServer: true, Integrity: true},
		{Method: "Gazelle", Inference: true, HE: true, DataPrivacy: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "MiniONN", Inference: true, MPC: true, HE: true, DataPrivacy: true, ModelPrivacyClient: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "CryptoNets", Inference: true, MPC: true, HE: true, DataPrivacy: true, ModelPrivacyClient: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "Slalom", Inference: true, TEE: true, DataPrivacy: true, ModelPrivacyClient: true, Integrity: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "Origami", Inference: true, TEE: true, DataPrivacy: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "Occlumency", Inference: true, TEE: true, DataPrivacy: true, ModelPrivacyClient: true, ModelPrivacyServer: true, Integrity: true, LargeDNNs: true},
		{Method: "Delphi", Inference: true, MPC: true, HE: true, DataPrivacy: true, ModelPrivacyClient: true, GPUAcceleration: true, LargeDNNs: true},
		{Method: "DarKnight", Training: true, Inference: true, MPC: true, TEE: true, DataPrivacy: true, ModelPrivacyClient: true, Integrity: true, GPUAcceleration: true, LargeDNNs: true},
	}
}

// RenderTable2 formats the capability matrix.
func RenderTable2(rows []Table2Row) string {
	mark := func(v bool) string {
		if v {
			return "+"
		}
		return "-"
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Table 2: capability comparison (+ supported, - unsupported)")
	fmt.Fprintf(&b, "%-12s %5s %5s %3s %3s %3s %3s %5s %6s %6s %5s %4s %6s\n",
		"Method", "Train", "Infer", "DP", "MPC", "HE", "TEE", "Priv", "MP(Cl)", "MP(Sv)", "Integ", "GPU", "Large")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5s %5s %3s %3s %3s %3s %5s %6s %6s %5s %4s %6s\n",
			r.Method, mark(r.Training), mark(r.Inference), mark(r.DP), mark(r.MPC),
			mark(r.HE), mark(r.TEE), mark(r.DataPrivacy), mark(r.ModelPrivacyClient),
			mark(r.ModelPrivacyServer), mark(r.Integrity), mark(r.GPUAcceleration), mark(r.LargeDNNs))
	}
	return b.String()
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one model's training-time breakdown (fractions of total).
type Table3Row struct {
	Model               string
	DarKnight, Baseline perf.Breakdown
}

// Table3 reproduces the ImageNet training-time breakdown for DarKnight
// (K=2, M=1 on 3 GPUs) versus the SGX-only baseline.
func Table3() []Table3Row {
	p, ws := profileAndWorkloads()
	c := perf.Coding{K: 2, M: 1}
	var rows []Table3Row
	for _, name := range []string{"VGG16", "ResNet50", "MobileNetV2"} {
		w := ws[name]
		rows = append(rows, Table3Row{
			Model:     name,
			DarKnight: perf.DarKnightTrain(p, w, c, false).Fractions(),
			Baseline:  perf.BaselineSGXTrain(p, w).Fractions(),
		})
	}
	return rows
}

// RenderTable3 formats the breakdown table.
func RenderTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 3: ImageNet training time breakdown (fraction of total)")
	fmt.Fprintf(&b, "%-18s", "Operation")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s-DK %10s-Base", r.Model[:min(7, len(r.Model))], r.Model[:min(7, len(r.Model))])
	}
	fmt.Fprintln(&b)
	line := func(label string, get func(perf.Breakdown) float64) {
		fmt.Fprintf(&b, "%-18s", label)
		for _, r := range rows {
			fmt.Fprintf(&b, " %13.2f %15.2f", get(r.DarKnight), get(r.Baseline))
		}
		fmt.Fprintln(&b)
	}
	line("Linear", func(x perf.Breakdown) float64 { return x.Linear })
	line("NonLinear", func(x perf.Breakdown) float64 { return x.NonLinear })
	line("Encoding-Decoding", func(x perf.Breakdown) float64 { return x.EncodeDecode })
	line("Communication", func(x perf.Breakdown) float64 { return x.Comm })
	line("Paging", func(x perf.Breakdown) float64 { return x.Paging })
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one model's non-private 3-GPU speedup pair.
type Table4Row struct {
	Model                      string
	OverDarKnight, OverSGXOnly float64
}

// Table4 reproduces the non-private training comparison.
func Table4() []Table4Row {
	p, ws := profileAndWorkloads()
	c := perf.Coding{K: 2, M: 1}
	var rows []Table4Row
	for _, name := range []string{"VGG16", "ResNet50", "MobileNetV2"} {
		w := ws[name]
		gpuTime := perf.NonPrivateGPUTrain(p, w, 3)
		rows = append(rows, Table4Row{
			Model:         name,
			OverDarKnight: perf.DarKnightTrain(p, w, c, false).Total() / gpuTime,
			OverSGXOnly:   perf.BaselineSGXTrain(p, w).Total() / gpuTime,
		})
	}
	return rows
}

// RenderTable4 formats Table 4.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 4: non-private 3-GPU training speedup (ImageNet)")
	fmt.Fprintf(&b, "%-14s %20s %18s\n", "Model", "over DarKnight(3GPU)", "over SGX-only")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %20.2f %18.2f\n", r.Model, r.OverDarKnight, r.OverSGXOnly)
	}
	return b.String()
}
