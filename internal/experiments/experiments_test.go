package experiments

import (
	"strings"
	"testing"
)

func TestTable1Shape(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	fwd, bwd := rows[0], rows[1]
	if fwd.Linear < 120 || fwd.Linear > 135 {
		t.Fatalf("fwd linear %.1f, paper 126.85", fwd.Linear)
	}
	if bwd.Linear < 140 || bwd.Linear > 158 {
		t.Fatalf("bwd linear %.1f, paper 149.13", bwd.Linear)
	}
	if fwd.ReLU != 119.60 || bwd.ReLU != 6.59 {
		t.Fatal("ReLU ratios should match the calibrated Table 1 values")
	}
	if fwd.MaxPool != 11.86 || bwd.MaxPool != 5.47 {
		t.Fatal("MaxPool ratios should match the calibrated Table 1 values")
	}
	// Totals: both near ~120 in the paper; assert order of magnitude.
	if fwd.Total < 30 || fwd.Total > 200 {
		t.Fatalf("fwd total %.1f implausible", fwd.Total)
	}
	if bwd.Total < 30 || bwd.Total > 250 {
		t.Fatalf("bwd total %.1f implausible", bwd.Total)
	}
}

func TestTable2Matrix(t *testing.T) {
	rows := Table2()
	if len(rows) != 11 {
		t.Fatalf("rows = %d, want 11 methods", len(rows))
	}
	var dk *Table2Row
	for i := range rows {
		if rows[i].Method == "DarKnight" {
			dk = &rows[i]
		}
		// Paper Table 2: Slalom cannot train.
		if rows[i].Method == "Slalom" && rows[i].Training {
			t.Fatal("Slalom must not support training")
		}
	}
	if dk == nil {
		t.Fatal("DarKnight row missing")
	}
	if !dk.Training || !dk.Inference || !dk.Integrity || !dk.GPUAcceleration || !dk.LargeDNNs {
		t.Fatalf("DarKnight capabilities wrong: %+v", dk)
	}
}

func TestTable3Fractions(t *testing.T) {
	rows := Table3()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		for name, b := range map[string]float64{
			"darknight": r.DarKnight.Total(), "baseline": r.Baseline.Total(),
		} {
			if b < 0.99 || b > 1.01 {
				t.Fatalf("%s %s fractions sum to %v", r.Model, name, b)
			}
		}
		if r.Baseline.Linear < r.DarKnight.Linear {
			t.Fatalf("%s: baseline should be more linear-dominated", r.Model)
		}
	}
}

func TestTable4Ordering(t *testing.T) {
	rows := Table4()
	for _, r := range rows {
		if r.OverSGXOnly <= r.OverDarKnight {
			t.Fatalf("%s: non-private speedup over SGX (%.1f) must exceed over DarKnight (%.1f)",
				r.Model, r.OverSGXOnly, r.OverDarKnight)
		}
		if r.OverDarKnight < 5 {
			t.Fatalf("%s: over-DarKnight %.1f too small", r.Model, r.OverDarKnight)
		}
	}
}

func TestFigure3Knee(t *testing.T) {
	rows := Figure3()
	for _, r := range rows {
		if !(r.Speedups[4] > r.Speedups[2]) {
			t.Fatalf("%s: K=4 (%.2f) should beat K=2 (%.2f)", r.Model, r.Speedups[4], r.Speedups[2])
		}
	}
	// VGG's K=5 collapses (EPC knee).
	for _, r := range rows {
		if r.Model == "VGG16" && !(r.Speedups[5] < r.Speedups[4]) {
			t.Fatalf("VGG16 K=5 (%.2f) should fall below K=4 (%.2f)", r.Speedups[5], r.Speedups[4])
		}
	}
}

func TestFigure4AccuracyParity(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	series, err := Figure4(QuickFigure4Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("%s: no points", s.Model)
		}
		// The paper reports <0.01 gap after 100 epochs; at this reduced
		// scale (4 epochs, 160 examples) trajectories are noisier, but
		// both paths must be learning comparably.
		if s.FinalGap > 0.3 {
			t.Fatalf("%s: raw-vs-DarKnight accuracy gap %.3f too large", s.Model, s.FinalGap)
		}
	}
}

func TestFigure5Ordering(t *testing.T) {
	rows := Figure5()
	if rows[0].Model != "VGG16" || len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	if !(rows[0].NonPipelined > rows[1].NonPipelined && rows[1].NonPipelined > rows[2].NonPipelined) {
		t.Fatal("speedup ordering VGG > ResNet > MobileNet violated")
	}
	for _, r := range rows {
		if !(r.Pipelined > r.NonPipelined) {
			t.Fatalf("%s: pipelined must beat non-pipelined", r.Model)
		}
	}
}

func TestFigure6aOrdering(t *testing.T) {
	rows := Figure6a()
	for _, r := range rows {
		if !(r.DarKnight4 > 1 && r.Slalom > 1) {
			t.Fatalf("%s: both offload schemes must beat SGX", r.Model)
		}
		if !(r.DarKnight4 > r.Slalom) {
			t.Fatalf("%s: DarKnight(4) (%.2f) should beat Slalom (%.2f)", r.Model, r.DarKnight4, r.Slalom)
		}
		if !(r.SlalomIntegrity < r.Slalom) {
			t.Fatalf("%s: integrity must cost Slalom", r.Model)
		}
		if !(r.DarKnight3Int < r.DarKnight4) {
			t.Fatalf("%s: integrity must cost DarKnight", r.Model)
		}
	}
}

func TestFigure6bKnee(t *testing.T) {
	rows := Figure6b()
	byK := map[int]Figure6bRow{}
	for _, r := range rows {
		byK[r.K] = r
	}
	if byK[1].Total != 1 {
		t.Fatalf("K=1 total should be 1, got %v", byK[1].Total)
	}
	if !(byK[4].Total > byK[2].Total && byK[2].Total > 1) {
		t.Fatalf("total speedup should rise to K=4: %+v", rows)
	}
	if !(byK[6].Total < byK[4].Total) {
		t.Fatal("K=6 must degrade (EPC overflow)")
	}
	if byK[4].ReLU != 1 || byK[4].MaxPool != 1 {
		t.Fatal("ReLU/MaxPool are K-invariant")
	}
}

func TestFigure7Monotone(t *testing.T) {
	rows := Figure7()
	if rows[0].Latency != 1 {
		t.Fatalf("1-thread latency should normalize to 1")
	}
	for i := 1; i < len(rows); i++ {
		if !(rows[i].Latency > rows[i-1].Latency) {
			t.Fatal("latency must grow with threads")
		}
	}
	if rows[3].Latency < 2 {
		t.Fatalf("4-thread latency %.1f too mild (paper ≈6-7x)", rows[3].Latency)
	}
}

func TestRenderers(t *testing.T) {
	// Smoke-test every renderer; they feed cmd/experiments.
	checks := []string{
		RenderTable1(Table1()),
		RenderTable2(Table2()),
		RenderTable3(Table3()),
		RenderTable4(Table4()),
		RenderFigure3(Figure3()),
		RenderFigure5(Figure5()),
		RenderFigure6a(Figure6a()),
		RenderFigure6b(Figure6b()),
		RenderFigure7(Figure7()),
	}
	for i, s := range checks {
		if len(strings.TrimSpace(s)) == 0 {
			t.Fatalf("renderer %d produced empty output", i)
		}
	}
}
