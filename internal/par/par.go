// Package par is the bounded goroutine fan-out shared by the compute
// kernels in internal/tensor, internal/field and internal/masking. It
// exists so every blocked kernel splits work the same way — contiguous
// index ranges, one goroutine per available core, strictly serial when the
// machine (or a test) offers a single worker — and so tests can force a
// specific width to pin down parallel-vs-serial equivalence and allocation
// behaviour.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers overrides the fan-out width; 0 means GOMAXPROCS.
var maxWorkers atomic.Int32

// Workers returns the current fan-out width: the SetMaxWorkers override if
// set, otherwise GOMAXPROCS.
func Workers() int {
	if n := int(maxWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetMaxWorkers overrides the fan-out width and returns the previous
// override (0 if none was set). n <= 0 removes the override. Tests use
// width 1 to pin allocation counts and width > 1 to exercise the parallel
// paths on single-core machines; production code should not call this.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int32(n)))
}

// For runs fn over contiguous subranges covering [0, n). grain is the
// smallest range worth a goroutine (in loop iterations); when n <= grain or
// only one worker is available, fn(0, n) runs on the calling goroutine and
// nothing is spawned — the serial fast path costs no allocation. Otherwise
// the range splits into at most Workers() near-equal chunks and For blocks
// until all complete. fn must not panic across goroutines' shared state;
// ranges never overlap.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Workers()
	if max := (n + grain - 1) / grain; w > max {
		w = max
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	span := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += span {
		hi := lo + span
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
