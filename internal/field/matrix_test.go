package field

import (
	"math/rand"
	"testing"
)

func TestIdentity(t *testing.T) {
	id := Identity(4)
	m := RandMat(rand.New(rand.NewSource(1)), 4, 4)
	if !MatMul(id, m).Equal(m) || !MatMul(m, id).Equal(m) {
		t.Fatal("identity is not an identity under MatMul")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 12; n++ {
		m, inv := RandInvertible(rng, n)
		if !MatMul(m, inv).Equal(Identity(n)) {
			t.Fatalf("n=%d: m·m⁻¹ != I", n)
		}
		if !MatMul(inv, m).Equal(Identity(n)) {
			t.Fatalf("n=%d: m⁻¹·m != I", n)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := NewMat(3, 3) // all zeros
	if _, err := m.Inverse(); err != ErrNotInvertible {
		t.Fatalf("singular inverse err = %v", err)
	}
	// Duplicate rows.
	m = NewMat(2, 2)
	m.Set(0, 0, 3)
	m.Set(0, 1, 5)
	m.Set(1, 0, 3)
	m.Set(1, 1, 5)
	if _, err := m.Inverse(); err != ErrNotInvertible {
		t.Fatalf("rank-1 inverse err = %v", err)
	}
	// Non-square.
	if _, err := NewMat(2, 3).Inverse(); err != ErrNotInvertible {
		t.Fatal("non-square inverse should fail")
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := RandMat(rng, 3, 5)
	tt := m.Transpose().Transpose()
	if !tt.Equal(m) {
		t.Fatal("double transpose != original")
	}
	// (AB)ᵀ = BᵀAᵀ — the identity the decode correctness proof (§4.3) uses.
	a := RandMat(rng, 3, 4)
	b := RandMat(rng, 4, 2)
	left := MatMul(a, b).Transpose()
	right := MatMul(b.Transpose(), a.Transpose())
	if !left.Equal(right) {
		t.Fatal("(AB)ᵀ != BᵀAᵀ")
	}
}

func TestMatVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := RandMat(rng, 6, 4)
	v := RandVec(rng, 4)
	got := MatVec(m, v)
	// Compare against the matrix route.
	col := NewMat(4, 1)
	copy(col.Data, v)
	want := MatMul(m, col)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("row %d: %d != %d", i, got[i], want.At(i, 0))
		}
	}
}

func TestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _ := RandInvertible(rng, 6)
	if r := m.Rank(); r != 6 {
		t.Fatalf("invertible 6x6 rank = %d", r)
	}
	if r := NewMat(4, 7).Rank(); r != 0 {
		t.Fatalf("zero matrix rank = %d", r)
	}
	// Build a rank-2 matrix: two random rows repeated.
	r2 := NewMat(4, 5)
	row1 := RandVec(rng, 5)
	row2 := RandVec(rng, 5)
	copy(r2.Row(0), row1)
	copy(r2.Row(1), row2)
	copy(r2.Row(2), AddVec(row1, row2))
	copy(r2.Row(3), ScaleVec(7, row1))
	if r := r2.Rank(); r != 2 {
		t.Fatalf("constructed rank-2 matrix rank = %d", r)
	}
	// Any M rows of an invertible matrix are full rank — the condition the
	// collusion-tolerance proof requires of A2 (§5).
	for m0 := 1; m0 <= 5; m0++ {
		sub := m.SubMatrix(0, m0, 0, 6)
		if r := sub.Rank(); r != m0 {
			t.Fatalf("submatrix of invertible has rank %d, want %d", r, m0)
		}
	}
}

func TestSubMatrixVStack(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := RandMat(rng, 5, 4)
	top := m.SubMatrix(0, 2, 0, 4)
	bot := m.SubMatrix(2, 5, 0, 4)
	if !VStack(top, bot).Equal(m) {
		t.Fatal("vstack(top, bottom) != original")
	}
}

func TestRandDiagonalInvertible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d, dinv := RandDiagonalInvertible(rng, 5)
	if !MatMul(d, dinv).Equal(Identity(5)) {
		t.Fatal("Γ·Γ⁻¹ != I")
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			if r != c && d.At(r, c) != 0 {
				t.Fatal("off-diagonal entry non-zero")
			}
		}
	}
}

func TestDotLazyReduction(t *testing.T) {
	// Exercise the periodic-reduction path with a long max-value vector.
	n := 3*4096 + 17
	a := make(Vec, n)
	b := make(Vec, n)
	for i := range a {
		a[i] = P - 1
		b[i] = P - 1
	}
	// (p-1)^2 ≡ 1 mod p, so the dot product is n mod p.
	want := Reduce(uint64(n))
	if got := Dot(a, b); got != want {
		t.Fatalf("Dot = %d, want %d", got, want)
	}
}

func TestVecOps(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandVec(rng, 100)
	b := RandVec(rng, 100)
	if !SubVec(AddVec(a, b), b).Equal(a) {
		t.Fatal("(a+b)-b != a")
	}
	s := RandNonZero(rng)
	scaled := ScaleVec(s, a)
	back := ScaleVec(MustInv(s), scaled)
	if !back.Equal(a) {
		t.Fatal("s⁻¹·(s·a) != a")
	}
	dst := b.Clone()
	AXPY(dst, s, a)
	if !dst.Equal(AddVec(b, ScaleVec(s, a))) {
		t.Fatal("AXPY mismatch")
	}
}

func TestLiftVecRoundTrip(t *testing.T) {
	xs := []int64{0, 1, -1, 1000, -1000, 123456, -123456}
	got := LiftVec(FromInt64Vec(xs))
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], xs[i])
		}
	}
}

func TestMatrixInverseOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, ainv := RandInvertible(rng, 5)
	b, binv := RandInvertible(rng, 5)
	left, err := MatMul(a, b).Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if !left.Equal(MatMul(binv, ainv)) {
		t.Fatal("(AB)⁻¹ != B⁻¹A⁻¹")
	}
}
