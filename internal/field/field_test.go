package field

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPIsPrime(t *testing.T) {
	// Trial division is fast enough for a 25-bit modulus and anchors the
	// privacy argument: F_p must actually be a field.
	n := uint64(P)
	if n < 2 {
		t.Fatal("P < 2")
	}
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			t.Fatalf("P = %d is divisible by %d", n, d)
		}
	}
}

func TestPValue(t *testing.T) {
	if P != 33554393 {
		t.Fatalf("P = %d, want 2^25-39 = 33554393", P)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := Reduce(uint64(a)), Reduce(uint64(b))
		return Sub(Add(x, y), y) == x && Add(Sub(x, y), y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeg(t *testing.T) {
	f := func(a uint32) bool {
		x := Reduce(uint64(a))
		return Add(x, Neg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := Reduce(uint64(a)), Reduce(uint64(b)), Reduce(uint64(c))
		return Mul(x, y) == Mul(y, x) && Mul(Mul(x, y), z) == Mul(x, Mul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c uint32) bool {
		x, y, z := Reduce(uint64(a)), Reduce(uint64(b)), Reduce(uint64(c))
		return Mul(x, Add(y, z)) == Add(Mul(x, y), Mul(x, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := RandNonZero(rng)
		inv, err := Inv(x)
		if err != nil {
			t.Fatalf("Inv(%d): %v", x, err)
		}
		if Mul(x, inv) != 1 {
			t.Fatalf("x*Inv(x) = %d for x=%d", Mul(x, inv), x)
		}
	}
	if _, err := Inv(0); err != ErrNotInvertible {
		t.Fatalf("Inv(0) err = %v, want ErrNotInvertible", err)
	}
}

func TestMulAdd(t *testing.T) {
	f := func(acc, a, b uint32) bool {
		x, y, z := Reduce(uint64(acc)), Reduce(uint64(a)), Reduce(uint64(b))
		return MulAdd(x, y, z) == Add(x, Mul(y, z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := RandNonZero(rng)
		// Fermat's little theorem: x^(p-1) = 1.
		if got := Pow(x, uint64(P-1)); got != 1 {
			t.Fatalf("x^(p-1) = %d for x=%d, want 1", got, x)
		}
	}
	if Pow(0, 0) != 1 {
		t.Fatal("0^0 should be 1 by convention")
	}
	if Pow(5, 1) != 5 {
		t.Fatal("x^1 != x")
	}
}

func TestFromInt64Lift(t *testing.T) {
	cases := []int64{0, 1, -1, 42, -42, int64(Half), -int64(Half)}
	for _, c := range cases {
		if got := Lift(FromInt64(c)); got != c {
			t.Errorf("Lift(FromInt64(%d)) = %d", c, got)
		}
	}
	f := func(v int32) bool {
		x := int64(v) % int64(Half)
		return Lift(FromInt64(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandUniformity(t *testing.T) {
	// Coarse bucket χ²-style check: 2^25 values into 16 buckets.
	rng := rand.New(rand.NewSource(3))
	const n = 160000
	const buckets = 16
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[int(uint64(Rand(rng))*buckets/uint64(P))]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		dev := float64(c) - want
		if dev < 0 {
			dev = -dev
		}
		if dev > want*0.05 { // 5% tolerance, generous for n=160k
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestRandNonZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		if RandNonZero(rng) == 0 {
			t.Fatal("RandNonZero returned 0")
		}
	}
}

func TestPowExponentAddition(t *testing.T) {
	// x^(a+b) == x^a · x^b — the group law Fermat-based inversion rests on.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		x := RandNonZero(rng)
		a := uint64(rng.Intn(1 << 20))
		b := uint64(rng.Intn(1 << 20))
		if Pow(x, a+b) != Mul(Pow(x, a), Pow(x, b)) {
			t.Fatalf("group law violated for x=%d a=%d b=%d", x, a, b)
		}
	}
}

func TestInverseOfProduct(t *testing.T) {
	// (ab)⁻¹ == b⁻¹a⁻¹ (scalars commute, but the identity is the one the
	// matrix decode relies on in block form).
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		a, b := RandNonZero(rng), RandNonZero(rng)
		if MustInv(Mul(a, b)) != Mul(MustInv(b), MustInv(a)) {
			t.Fatal("(ab)⁻¹ != b⁻¹a⁻¹")
		}
	}
}
