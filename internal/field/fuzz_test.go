package field_test

import (
	"math/rand"
	"testing"

	"darknight/internal/field"
)

// FuzzCombine pins the lazy-reduction combine kernels to the obvious
// per-element reference: dst[i] = Σ_j c[j]·srcs[j][i] mod p computed with
// one MulAdd (full reduction) per term. Equality must be bit-exact for
// every shape the fuzzer finds — and in particular PAST the term budget,
// where combineRange's internal Budget has fired at least once and the
// result flows through ReduceAcc mid-loop. The seeded corpus crosses
// MaxLazyTerms explicitly with length-1 vectors so the overflow guard is
// exercised on every CI run, not only when the fuzzer stumbles into it.
func FuzzCombine(f *testing.F) {
	f.Add(uint64(1), 8, 3)
	f.Add(uint64(2), 129, 17)
	f.Add(uint64(3), 1, field.MaxLazyTerms+7) // crosses the term budget
	f.Add(uint64(4), 2, field.MaxLazyTerms)   // lands exactly on it
	f.Add(uint64(5), 4096+33, 5)              // straddles a combine block boundary
	f.Fuzz(func(t *testing.T, seed uint64, n, nsrc int) {
		if n < 1 {
			n = 1
		}
		if nsrc < 1 {
			nsrc = 1
		}
		n %= 1 << 13
		if n == 0 {
			n = 1
		}
		nsrc %= field.MaxLazyTerms + 64
		if nsrc == 0 {
			nsrc = 1
		}
		// Keep one iteration's work bounded; shrink the vector, never the
		// source count (the budget crossing is the interesting axis).
		for n > 1 && n*nsrc > 1<<21 {
			n /= 2
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		coeffs := field.RandVec(rng, nsrc)
		c1 := field.RandVec(rng, nsrc)
		srcs := make([]field.Vec, nsrc)
		for j := range srcs {
			srcs[j] = field.RandVec(rng, n)
		}
		// Reference: MulAdd reduces every term, so it cannot overflow.
		want := make(field.Vec, n)
		want1 := make(field.Vec, n)
		for j := range srcs {
			for i, v := range srcs[j] {
				want[i] = field.MulAdd(want[i], coeffs[j], v)
				want1[i] = field.MulAdd(want1[i], c1[j], v)
			}
		}
		dst := make(field.Vec, n)
		field.Combine(dst, coeffs, srcs)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("Combine[%d] = %d, reference %d (seed=%d n=%d nsrc=%d)", i, dst[i], want[i], seed, n, nsrc)
			}
		}
		d0 := make(field.Vec, n)
		d1 := make(field.Vec, n)
		field.Combine2(d0, d1, coeffs, c1, srcs)
		for i := range d0 {
			if d0[i] != want[i] || d1[i] != want1[i] {
				t.Fatalf("Combine2[%d] = (%d,%d), reference (%d,%d) (seed=%d n=%d nsrc=%d)",
					i, d0[i], d1[i], want[i], want1[i], seed, n, nsrc)
			}
		}
	})
}
