package field

import (
	"fmt"
	"sync"

	"darknight/internal/par"
	"darknight/internal/scratch"
)

// This file implements the lazy-reduction kernels behind the coding hot
// path. A product of two reduced elements is at most (P-1)² < 2^50, so a
// uint64 accumulator can absorb MaxLazyTerms = 2^14 such products plus one
// already-reduced carry before it can wrap:
//
//	2^14·(P-1)² + (P-1) < 2^64.
//
// Encode/decode therefore run as blocked matrix-matrix products that
// multiply-add without any modulo and reduce each accumulator exactly once
// per MaxLazyTerms terms — versus the seed kernels' one `% P` per element
// per term. Accumulator blocks are pooled (stored behind pointers so
// Get/Put never boxes) and the column dimension fans out across cores via
// par.For, keeping the steady-state path allocation-free.

// MaxLazyTerms is how many ≤(P-1)² products a uint64 accumulator holding an
// already-reduced value can absorb before it must be reduced again.
const MaxLazyTerms = 1 << 14

// combineBlock is the column-block width of Combine: 4096 uint64
// accumulators (32 KiB) plus one source block stay L1/L2-resident.
const combineBlock = 4096

// combineSpan is the width of one pooled accumulator: TWO column blocks.
// Combine sweeps them as a single wider span (half the per-block loop
// overhead — accumulator zeroing setup, coefficient rescan, pool traffic —
// for the same cache story, since the span still fits L2); Combine2 splits
// them one block per output row so both rows of a pair share a single pass
// over the sources.
const combineSpan = 2 * combineBlock

// combineParGrain is the element count below which Combine stays serial;
// fanning out goroutines for tiny vectors costs more than the modmuls.
// Lifted from 1<<15 by a measured sweep (see EXPERIMENTS.md): one grain of
// serial combine work takes ~370 µs at 1<<16 against single-digit-µs
// goroutine fan-out cost (<1% overhead), where the old 1<<15 grain paid
// ~2–4%.
const combineParGrain = 1 << 16

// accPool recycles Combine's fixed-size accumulator blocks. It is kept
// separate from the general scratch.Pool because the steady-state coding
// loop must be allocation-free: the SAME *[]uint64 round-trips through
// Get/Put (pointer interface conversions never box), whereas scratch.Pool
// builds a fresh slice-header pointer on every Put.
var accPool = sync.Pool{New: func() any {
	b := make([]uint64, combineSpan)
	return &b
}}

// getAcc returns a pooled accumulator of at least n elements.
func getAcc(n int) *[]uint64 {
	p := accPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	return p
}

func putAcc(p *[]uint64) { accPool.Put(p) }

// Budget tracks how many ≤(P-1)² lazy products an accumulator (or a pair
// of accumulators fed in lockstep) has absorbed since its last reduction.
// It is THE canonical guard idiom for lazy-accumulation loops: every loop
// that calls LazyAXPY/LazyAXPY2 must either tick a Budget, test
// MaxLazyTerms directly, or reduce inside the loop — an invariant the
// lazyterms analyzer (internal/analysis/lazyterms) machine-checks, so the
// overflow arithmetic lives here and nowhere else. The zero value is a
// fresh budget.
type Budget int

// Tick1 charges one lazy term against acc's budget, reducing acc and
// resetting the budget when MaxLazyTerms is reached. Call it after every
// LazyAXPY on acc.
//
//darknight:hotpath
func (b *Budget) Tick1(acc []uint64) {
	*b++
	if *b == MaxLazyTerms {
		ReduceAcc(acc)
		*b = 0
	}
}

// Tick2 charges one lazy term against the shared budget of an accumulator
// pair fed in lockstep (LazyAXPY2, or LazyAXPY on either row), reducing
// both and resetting the budget when MaxLazyTerms is reached.
//
//darknight:hotpath
func (b *Budget) Tick2(acc0, acc1 []uint64) {
	*b++
	if *b == MaxLazyTerms {
		ReduceAcc(acc0)
		ReduceAcc(acc1)
		*b = 0
	}
}

// LazyAXPY accumulates acc[i] += s·v[i] without reduction. The caller owns
// the term budget: after MaxLazyTerms calls on the same accumulator (since
// the last ReduceAcc) the sums may wrap. The 4-way slice-advance unroll
// keeps the inner loop free of bounds checks.
//
//darknight:hotpath
func LazyAXPY(acc []uint64, s Elem, v Vec) {
	n := len(v)
	a := acc[:n]
	c := uint64(s)
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := uint64(v[i]), uint64(v[i+1]), uint64(v[i+2]), uint64(v[i+3])
		a[i] += c * x0
		a[i+1] += c * x1
		a[i+2] += c * x2
		a[i+3] += c * x3
	}
	for ; i < n; i++ {
		a[i] += c * uint64(v[i])
	}
}

// LazyAXPY2 accumulates two rows in a single pass over the shared source —
// acc0 += c0·v and acc1 += c1·v — halving source traffic for kernels that
// produce multiple output rows from one patch matrix (the conv GPU
// kernel). Both accumulators share one term budget against MaxLazyTerms.
//
//darknight:hotpath
func LazyAXPY2(acc0, acc1 []uint64, c0, c1 Elem, v Vec) {
	n := len(v)
	a0 := acc0[:n]
	a1 := acc1[:n]
	u0, u1 := uint64(c0), uint64(c1)
	i := 0
	for ; i+4 <= n; i += 4 {
		x0, x1, x2, x3 := uint64(v[i]), uint64(v[i+1]), uint64(v[i+2]), uint64(v[i+3])
		a0[i] += u0 * x0
		a0[i+1] += u0 * x1
		a0[i+2] += u0 * x2
		a0[i+3] += u0 * x3
		a1[i] += u1 * x0
		a1[i+1] += u1 * x1
		a1[i+2] += u1 * x2
		a1[i+3] += u1 * x3
	}
	for ; i < n; i++ {
		x := uint64(v[i])
		a0[i] += u0 * x
		a1[i] += u1 * x
	}
}

// ReduceAcc reduces every accumulator into [0, P), resetting the lazy-term
// budget to MaxLazyTerms.
//
//darknight:hotpath
func ReduceAcc(acc []uint64) {
	for i, v := range acc {
		acc[i] = v % uint64(P)
	}
}

// ReduceAccInto reduces the accumulators into a reduced Vec.
//
//darknight:hotpath
func ReduceAccInto(dst Vec, acc []uint64) {
	acc = acc[:len(dst)]
	for i := range acc {
		dst[i] = Elem(acc[i] % uint64(P))
	}
}

// Combine computes the fused scale-add dst[i] = Σ_j coeffs[j]·srcs[j][i]
// mod p — one output row of the coding matrix product — with blocked lazy
// reduction and parallel column blocks. It is the kernel behind
// Code.EncodeWith, DecodeForwardInto and DecodeBackwardInto. dst may alias
// none of the srcs. It performs no allocation beyond pooled accumulator
// blocks, so steady-state encode/decode loops stay allocation-free.
func Combine(dst Vec, coeffs []Elem, srcs []Vec) {
	if len(coeffs) != len(srcs) {
		panic(fmt.Sprintf("field: combine has %d coefficients for %d sources", len(coeffs), len(srcs)))
	}
	n := len(dst)
	for _, s := range srcs {
		if len(s) != n {
			panic(fmt.Sprintf("field: combine source length %d != %d", len(s), n))
		}
	}
	// The serial fast path is taken without building a closure: a captured
	// func literal heap-allocates, and the steady-state loop must not.
	if n <= combineParGrain || par.Workers() == 1 {
		combineRange(dst, coeffs, srcs, 0, n)
		return
	}
	par.For(n, combineParGrain, func(lo, hi int) {
		combineRange(dst, coeffs, srcs, lo, hi)
	})
}

// combineRange is Combine over the column range [lo, hi), sweeping one
// pooled accumulator — two column blocks wide — at a time.
//
//darknight:hotpath
func combineRange(dst Vec, coeffs []Elem, srcs []Vec, lo, hi int) {
	accp := getAcc(combineSpan)
	acc := *accp
	for b := lo; b < hi; b += combineSpan {
		be := b + combineSpan
		if be > hi {
			be = hi
		}
		blk := acc[:be-b]
		for i := range blk {
			blk[i] = 0
		}
		var terms Budget
		for j, c := range coeffs {
			if c == 0 {
				continue
			}
			LazyAXPY(blk, c, srcs[j][b:be])
			terms.Tick1(blk)
		}
		ReduceAccInto(dst[b:be], blk)
	}
	putAcc(accp)
}

// Combine2 computes TWO output rows of the coding matrix product in one
// pass over the shared sources: dst0 = Σ_j c0[j]·srcs[j] and
// dst1 = Σ_j c1[j]·srcs[j] mod p, via LazyAXPY2 — the sources are streamed
// once instead of twice, which matters because the combine is memory-bound.
// The pooled accumulator's two column blocks serve one row each. Results
// are bit-identical to two Combine calls (the lazy reductions commute with
// the final mod). Destinations may alias none of the sources or each other.
func Combine2(dst0, dst1 Vec, c0, c1 []Elem, srcs []Vec) {
	if len(c0) != len(srcs) || len(c1) != len(srcs) {
		panic(fmt.Sprintf("field: combine2 has %d/%d coefficients for %d sources", len(c0), len(c1), len(srcs)))
	}
	n := len(dst0)
	if len(dst1) != n {
		panic(fmt.Sprintf("field: combine2 destination lengths %d != %d", len(dst0), len(dst1)))
	}
	for _, s := range srcs {
		if len(s) != n {
			panic(fmt.Sprintf("field: combine source length %d != %d", len(s), n))
		}
	}
	if n <= combineParGrain || par.Workers() == 1 {
		combineRange2(dst0, dst1, c0, c1, srcs, 0, n)
		return
	}
	par.For(n, combineParGrain, func(lo, hi int) {
		combineRange2(dst0, dst1, c0, c1, srcs, lo, hi)
	})
}

// combineRange2 is Combine2 over the column range [lo, hi): the pooled
// accumulator's first block carries dst0's columns, the second dst1's.
//
//darknight:hotpath
func combineRange2(dst0, dst1 Vec, c0, c1 []Elem, srcs []Vec, lo, hi int) {
	accp := getAcc(combineSpan)
	acc := *accp
	for b := lo; b < hi; b += combineBlock {
		be := b + combineBlock
		if be > hi {
			be = hi
		}
		w := be - b
		blk0 := acc[:w]
		blk1 := acc[combineBlock : combineBlock+w]
		for i := 0; i < w; i++ {
			blk0[i] = 0
			blk1[i] = 0
		}
		var terms Budget
		for j := range srcs {
			u0, u1 := c0[j], c1[j]
			if u0 == 0 && u1 == 0 {
				continue
			}
			LazyAXPY2(blk0, blk1, u0, u1, srcs[j][b:be])
			terms.Tick2(blk0, blk1)
		}
		ReduceAccInto(dst0[b:be], blk0)
		ReduceAccInto(dst1[b:be], blk1)
	}
	putAcc(accp)
}

// Pooled kernel scratch (internal/scratch size-classed pools). The
// GPU-side field kernels (internal/nn) draw their per-call im2col patch
// matrices and accumulator rows here; pools are safe for the concurrent
// gang-dispatch goroutines. Buffers are NOT zeroed on Get.
var (
	elemPool scratch.Pool[Elem]
	u64Pool  scratch.Pool[uint64]
)

// GetScratchVec returns a pooled, NOT-zeroed Vec of length n. Return it
// with PutScratchVec.
func GetScratchVec(n int) Vec { return elemPool.Get(n) }

// PutScratchVec returns a GetScratchVec buffer to the pool.
func PutScratchVec(v Vec) { elemPool.Put(v) }

// GetScratchAcc returns a pooled, NOT-zeroed uint64 accumulator row of
// length n for lazy-reduction kernels. Return it with PutScratchAcc.
func GetScratchAcc(n int) []uint64 { return u64Pool.Get(n) }

// PutScratchAcc returns a GetScratchAcc buffer to the pool.
func PutScratchAcc(a []uint64) { u64Pool.Put(a) }

// Arena is a bump allocator for field vectors with stable backing arrays:
// Vec hands out zeroed subslices of large blocks, Reset recycles them all
// at once. A steady-state caller that requests the same vector sequence
// every step allocates only on its first pass — afterwards the blocks are
// simply re-sliced, which is what keeps the TEE-side encode→decode loop
// allocation-free. Vectors obtained from an Arena are invalidated by Reset;
// they must not be retained across it (hand long-lived copies out with
// Clone). An Arena is not safe for concurrent use.
type Arena struct {
	blocks []Vec
	block  int // index of the block currently served from
	off    int // next free element in that block
}

// arenaBlock is the minimum size of a backing block.
const arenaBlock = 1 << 16

// Reset recycles every vector handed out since the last Reset.
func (a *Arena) Reset() {
	a.block = 0
	a.off = 0
}

// Vec returns a zeroed vector of length n backed by the arena.
func (a *Arena) Vec(n int) Vec {
	v := a.RawVec(n)
	for i := range v {
		v[i] = 0
	}
	return v
}

// RawVec returns a vector of length n backed by the arena WITHOUT zeroing
// it — the caller must overwrite every element before reading. The
// steady-state offload loop uses it for buffers that QuantizeInto,
// RandVecInto and Combine overwrite unconditionally, saving one full
// memset pass over all coded data per offload.
func (a *Arena) RawVec(n int) Vec {
	for {
		if a.block < len(a.blocks) {
			b := a.blocks[a.block]
			if a.off+n <= len(b) {
				v := b[a.off : a.off+n : a.off+n]
				a.off += n
				return v
			}
			a.block++
			a.off = 0
			continue
		}
		size := arenaBlock
		if size < n {
			size = n
		}
		a.blocks = append(a.blocks, make(Vec, size))
	}
}
