package field

import (
	"fmt"
	"math/rand"
)

// Mat is a dense row-major matrix over F_p. The masking coefficients
// A, B and Γ of DarKnight's coding scheme (paper §4) are all Mat values.
type Mat struct {
	Rows, Cols int
	Data       Vec // len Rows*Cols, row-major
}

// NewMat allocates a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("field: negative matrix dimension %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make(Vec, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// RandMat returns a matrix with i.i.d. uniform entries.
func RandMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := range m.Data {
		m.Data[i] = Rand(rng)
	}
	return m
}

// RandInvertible draws random n×n matrices until one is invertible and
// returns it together with its inverse. Over F_p with p ≈ 2^25 a uniform
// random matrix is singular with probability ≈ 1/p, so this loop virtually
// always succeeds on the first draw. DarKnight regenerates such an A for
// every virtual batch (§4.1: "dynamically generated for each virtual batch").
func RandInvertible(rng *rand.Rand, n int) (m, inv *Mat) {
	for {
		m = RandMat(rng, n, n)
		inv, err := m.Inverse()
		if err == nil {
			return m, inv
		}
	}
}

// RandDiagonalInvertible returns a diagonal matrix with uniformly random
// non-zero diagonal entries (the Γ of Eq (5)) and its inverse.
func RandDiagonalInvertible(rng *rand.Rand, n int) (m, inv *Mat) {
	m = NewMat(n, n)
	inv = NewMat(n, n)
	for i := 0; i < n; i++ {
		d := RandNonZero(rng)
		m.Set(i, i, d)
		inv.Set(i, i, MustInv(d))
	}
	return m, inv
}

// At returns element (r, c).
func (m *Mat) At(r, c int) Elem { return m.Data[r*m.Cols+c] }

// Set stores v at element (r, c).
func (m *Mat) Set(r, c int, v Elem) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a subslice (not a copy).
func (m *Mat) Row(r int) Vec { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Col returns column c as a fresh vector.
func (m *Mat) Col(c int) Vec {
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.At(r, c)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// Equal reports whether m and o have identical shape and entries.
func (m *Mat) Equal(o *Mat) bool {
	return m.Rows == o.Rows && m.Cols == o.Cols && m.Data.Equal(o.Data)
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Set(c, r, m.At(r, c))
		}
	}
	return t
}

// MatMul returns a·b over F_p. Panics on shape mismatch.
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("field: matmul shape mismatch %dx%d · %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				orow[j] = MulAdd(orow[j], aik, brow[j])
			}
		}
	}
	return out
}

// MatVec returns m·v (treating v as a column vector).
func MatVec(m *Mat, v Vec) Vec {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("field: matvec shape mismatch %dx%d · %d",
			m.Rows, m.Cols, len(v)))
	}
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = Dot(m.Row(r), v)
	}
	return out
}

// Inverse returns m⁻¹ computed by Gauss-Jordan elimination over F_p, or
// ErrNotInvertible if m is singular or non-square.
func (m *Mat) Inverse() (*Mat, error) {
	if m.Rows != m.Cols {
		return nil, ErrNotInvertible
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrNotInvertible
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize the pivot row.
		pinv := MustInv(a.At(col, col))
		scaleRow(a, col, pinv)
		scaleRow(inv, col, pinv)
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			nf := Neg(f)
			AXPY(a.Row(r), nf, a.Row(col))
			AXPY(inv.Row(r), nf, inv.Row(col))
		}
	}
	return inv, nil
}

// Rank returns the rank of m over F_p, computed on a scratch copy.
// The privacy property tests use it to confirm that the noise block seen by
// colluding GPUs is always full rank (§5, "Colluding GPUs").
func (m *Mat) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.Cols && rank < a.Rows; col++ {
		pivot := -1
		for r := rank; r < a.Rows; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			swapRows(a, pivot, rank)
		}
		pinv := MustInv(a.At(rank, col))
		scaleRow(a, rank, pinv)
		for r := 0; r < a.Rows; r++ {
			if r == rank {
				continue
			}
			if f := a.At(r, col); f != 0 {
				AXPY(a.Row(r), Neg(f), a.Row(rank))
			}
		}
		rank++
	}
	return rank
}

// SubMatrix returns the block [r0:r1) x [c0:c1) as a fresh matrix.
func (m *Mat) SubMatrix(r0, r1, c0, c1 int) *Mat {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("field: submatrix [%d:%d, %d:%d) out of %dx%d",
			r0, r1, c0, c1, m.Rows, m.Cols))
	}
	out := NewMat(r1-r0, c1-c0)
	for r := r0; r < r1; r++ {
		copy(out.Row(r-r0), m.Row(r)[c0:c1])
	}
	return out
}

// VStack returns the vertical concatenation [a; b].
func VStack(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("field: vstack column mismatch %d != %d", a.Cols, b.Cols))
	}
	out := NewMat(a.Rows+b.Rows, a.Cols)
	copy(out.Data[:len(a.Data)], a.Data)
	copy(out.Data[len(a.Data):], b.Data)
	return out
}

// String renders small matrices for debugging and test failure messages.
func (m *Mat) String() string {
	s := fmt.Sprintf("Mat %dx%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for r := 0; r < m.Rows; r++ {
			s += fmt.Sprintf("\n  %v", m.Row(r))
		}
	}
	return s
}

func swapRows(m *Mat, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

func scaleRow(m *Mat, r int, s Elem) {
	row := m.Row(r)
	for i := range row {
		row[i] = Mul(s, row[i])
	}
}
