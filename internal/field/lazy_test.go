package field

import (
	"math/rand"
	"testing"

	"darknight/internal/par"
)

// combineOracle is the naive per-term AXPY combination the lazy kernel
// must match bit-for-bit.
func combineOracle(coeffs []Elem, srcs []Vec) Vec {
	out := NewVec(len(srcs[0]))
	for j, c := range coeffs {
		if c != 0 {
			AXPY(out, c, srcs[j])
		}
	}
	return out
}

func randSrcs(rng *rand.Rand, k, n int) ([]Elem, []Vec) {
	coeffs := make([]Elem, k)
	srcs := make([]Vec, k)
	for j := range srcs {
		coeffs[j] = Rand(rng)
		srcs[j] = RandVec(rng, n)
	}
	return coeffs, srcs
}

func TestCombineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, tc := range []struct{ k, n int }{
		{1, 1}, {3, 17}, {7, 1000}, {5, combineBlock}, {4, combineBlock + 3}, {6, 3*combineBlock + 511},
	} {
		coeffs, srcs := randSrcs(rng, tc.k, tc.n)
		coeffs[0] = 0 // exercise the zero-coefficient skip
		want := combineOracle(coeffs, srcs)
		got := NewVec(tc.n)
		Combine(got, coeffs, srcs)
		if !got.Equal(want) {
			t.Fatalf("Combine(k=%d, n=%d) diverges from AXPY oracle", tc.k, tc.n)
		}
	}
}

// TestCombineParallelMatchesSerial pins parallel-vs-serial equivalence: the
// fan-out across column blocks must be bit-identical to the single-worker
// path even on a single-core machine (forced width).
func TestCombineParallelMatchesSerial(t *testing.T) {
	defer par.SetMaxWorkers(par.SetMaxWorkers(4))
	rng := rand.New(rand.NewSource(22))
	n := combineParGrain*2 + 37 // large enough to actually split
	coeffs, srcs := randSrcs(rng, 6, n)
	parallel := NewVec(n)
	Combine(parallel, coeffs, srcs)

	par.SetMaxWorkers(1)
	serial := NewVec(n)
	Combine(serial, coeffs, srcs)

	if !parallel.Equal(serial) {
		t.Fatal("parallel Combine diverges from serial Combine")
	}
	if !parallel.Equal(combineOracle(coeffs, srcs)) {
		t.Fatal("parallel Combine diverges from AXPY oracle")
	}
}

// TestCombine2MatchesCombine pins the paired-row kernel bit-for-bit to two
// independent Combine calls (and, transitively, the AXPY oracle), across
// block boundaries, zero coefficients — including rows zero on only one
// side of a pair — and the parallel split.
func TestCombine2MatchesCombine(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, tc := range []struct{ k, n int }{
		{1, 1}, {3, 17}, {7, 1000}, {5, combineBlock}, {4, combineSpan + 3}, {6, 3*combineBlock + 511},
	} {
		c0, srcs := randSrcs(rng, tc.k, tc.n)
		c1 := make([]Elem, tc.k)
		for j := range c1 {
			c1[j] = Rand(rng)
		}
		c0[0] = 0 // zero on one side of the pair only
		if tc.k > 1 {
			c0[1], c1[1] = 0, 0 // zero on both sides: the skip path
		}
		want0, want1 := NewVec(tc.n), NewVec(tc.n)
		Combine(want0, c0, srcs)
		Combine(want1, c1, srcs)
		got0, got1 := NewVec(tc.n), NewVec(tc.n)
		Combine2(got0, got1, c0, c1, srcs)
		if !got0.Equal(want0) || !got1.Equal(want1) {
			t.Fatalf("Combine2(k=%d, n=%d) diverges from Combine", tc.k, tc.n)
		}
	}
}

func TestCombine2ParallelMatchesSerial(t *testing.T) {
	defer par.SetMaxWorkers(par.SetMaxWorkers(4))
	rng := rand.New(rand.NewSource(27))
	n := combineParGrain*2 + 37
	c0, srcs := randSrcs(rng, 6, n)
	c1 := make([]Elem, 6)
	for j := range c1 {
		c1[j] = Rand(rng)
	}
	p0, p1 := NewVec(n), NewVec(n)
	Combine2(p0, p1, c0, c1, srcs)

	par.SetMaxWorkers(1)
	s0, s1 := NewVec(n), NewVec(n)
	Combine2(s0, s1, c0, c1, srcs)

	if !p0.Equal(s0) || !p1.Equal(s1) {
		t.Fatal("parallel Combine2 diverges from serial Combine2")
	}
}

// TestCombineLazyReductionBound drives more than MaxLazyTerms sources
// through one accumulator block so the interleaved reduction actually
// fires; the result must still match the eagerly-reduced oracle.
func TestCombineLazyReductionBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	k := MaxLazyTerms + 5
	n := 4
	coeffs := make([]Elem, k)
	srcs := make([]Vec, k)
	for j := range srcs {
		coeffs[j] = P - 1 // worst-case magnitude products
		v := make(Vec, n)
		for i := range v {
			v[i] = P - 1
		}
		srcs[j] = v
	}
	// A few random rows so the test is not purely the extreme point.
	for j := 0; j < 100; j++ {
		coeffs[rng.Intn(k)] = Rand(rng)
	}
	want := combineOracle(coeffs, srcs)
	got := NewVec(n)
	Combine(got, coeffs, srcs)
	if !got.Equal(want) {
		t.Fatal("Combine wraps past MaxLazyTerms: interleaved reduction is broken")
	}
}

func TestLazyAXPYAndReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n := 257
	acc := make([]uint64, n)
	want := NewVec(n)
	for j := 0; j < 50; j++ {
		s := Rand(rng)
		v := RandVec(rng, n)
		//lint:ignore lazyterms 50 terms is far below MaxLazyTerms; this test exercises the raw kernel deliberately
		LazyAXPY(acc, s, v)
		AXPY(want, s, v)
	}
	got := NewVec(n)
	ReduceAccInto(got, acc)
	if !got.Equal(want) {
		t.Fatal("LazyAXPY+ReduceAccInto diverges from AXPY")
	}
	ReduceAcc(acc)
	for i, v := range acc {
		if Elem(v) != want[i] {
			t.Fatalf("ReduceAcc[%d] = %d, want %d", i, v, want[i])
		}
	}
}

func TestScratchPoolsRoundTrip(t *testing.T) {
	v := GetScratchVec(100)
	if len(v) != 100 {
		t.Fatalf("GetScratchVec(100) has length %d", len(v))
	}
	PutScratchVec(v)
	a := GetScratchAcc(3000)
	if len(a) != 3000 {
		t.Fatalf("GetScratchAcc(3000) has length %d", len(a))
	}
	PutScratchAcc(a)
	if GetScratchVec(0) != nil || GetScratchAcc(0) != nil {
		t.Fatal("zero-length scratch should be nil")
	}
}

func TestInPlaceVecVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a, b := RandVec(rng, 64), RandVec(rng, 64)
	s := RandNonZero(rng)

	if !AddVecInto(make(Vec, 64), a, b).Equal(AddVec(a, b)) {
		t.Fatal("AddVecInto mismatch")
	}
	if !SubVecInto(make(Vec, 64), a, b).Equal(SubVec(a, b)) {
		t.Fatal("SubVecInto mismatch")
	}
	if !ScaleVecInto(make(Vec, 64), s, a).Equal(ScaleVec(s, a)) {
		t.Fatal("ScaleVecInto mismatch")
	}
	// Aliased destination: dst = a.
	alias := a.Clone()
	AddVecInto(alias, alias, b)
	if !alias.Equal(AddVec(a, b)) {
		t.Fatal("aliased AddVecInto mismatch")
	}
	// AXPYInto: dst = y + s·x, including the accumulate alias dst=y.
	want := AddVec(ScaleVec(s, a), b)
	if !AXPYInto(make(Vec, 64), s, a, b).Equal(want) {
		t.Fatal("AXPYInto mismatch")
	}
	acc := b.Clone()
	AXPYInto(acc, s, a, acc)
	if !acc.Equal(want) {
		t.Fatal("aliased AXPYInto mismatch")
	}
}
