// Package field implements arithmetic over the prime field F_p with
// p = 2^25 - 39, the modulus DarKnight uses for its matrix-masking codes
// (paper §5: "we choose l = 8 and p = 2^25 − 39 ... the largest prime with
// 25 bits").
//
// Elements are stored as uint32 values in [0, p). Products of two elements
// fit comfortably in a uint64 (50 bits), so multiplication is a single
// 64-bit multiply followed by one Euclidean reduction. Signed quantities are
// represented with the usual centered lift: values in (p/2, p) stand for
// negatives (see Lift and FromInt64).
package field

import (
	"errors"
	"fmt"
	"math/rand"
)

// P is the field modulus, the largest 25-bit prime: 2^25 - 39.
const P uint32 = 1<<25 - 39

// Half is floor(P/2); values strictly greater than Half are interpreted as
// negative under the centered lift.
const Half uint32 = P / 2

// Elem is a field element. The zero value is the additive identity.
// All functions in this package assume their Elem arguments are already
// reduced (< P); use Reduce or FromInt64 to normalize foreign values.
type Elem = uint32

// Reduce maps an arbitrary uint64 into [0, P).
func Reduce(v uint64) Elem {
	return Elem(v % uint64(P))
}

// FromInt64 maps a signed integer into the field: negative values x become
// p - (|x| mod p), so that Lift(FromInt64(x)) == x whenever |x| <= Half.
func FromInt64(v int64) Elem {
	m := v % int64(P)
	if m < 0 {
		m += int64(P)
	}
	return Elem(m)
}

// Lift returns the centered representative of x in (-P/2, P/2].
// It is the inverse of FromInt64 on that range and is how DarKnight restores
// negative numbers after GPU computation (Algorithm 1: "TEE then subtracts p
// from all the elements larger than p/2").
func Lift(x Elem) int64 {
	if x > Half {
		return int64(x) - int64(P)
	}
	return int64(x)
}

// Add returns a + b mod p.
func Add(a, b Elem) Elem {
	s := a + b // max 2(p-1) < 2^26, no uint32 overflow
	if s >= P {
		s -= P
	}
	return s
}

// Sub returns a - b mod p.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return a + P - b
}

// Neg returns -a mod p.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return P - a
}

// Mul returns a * b mod p.
func Mul(a, b Elem) Elem {
	return Elem(uint64(a) * uint64(b) % uint64(P))
}

// MulAdd returns acc + a*b mod p, the fused op at the heart of every coded
// linear kernel in this repository.
func MulAdd(acc, a, b Elem) Elem {
	return Elem((uint64(acc) + uint64(a)*uint64(b)) % uint64(P))
}

// Pow returns a^e mod p by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	var result Elem = 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// ErrNotInvertible is returned when an inverse of 0 (or of a singular
// matrix) is requested.
var ErrNotInvertible = errors.New("field: element or matrix is not invertible")

// Inv returns the multiplicative inverse a^(p-2) mod p.
// It returns ErrNotInvertible for a == 0.
func Inv(a Elem) (Elem, error) {
	if a == 0 {
		return 0, ErrNotInvertible
	}
	return Pow(a, uint64(P-2)), nil
}

// MustInv is Inv for callers that have already established a != 0.
// It panics on zero, which always indicates a programming error.
func MustInv(a Elem) Elem {
	inv, err := Inv(a)
	if err != nil {
		panic(fmt.Sprintf("field: inverse of zero (%v)", err))
	}
	return inv
}

// Rand returns a uniformly random field element drawn from rng.
// DarKnight's privacy proof (Lemma 1) requires noise that is uniform over
// F_p; rand.Rand's Uint32 composed with rejection sampling delivers exactly
// that.
func Rand(rng *rand.Rand) Elem {
	// Rejection-sample from [0, 2^25) to keep the distribution uniform.
	for {
		v := rng.Uint32() & (1<<25 - 1)
		if v < P {
			return v
		}
	}
}

// RandNonZero returns a uniformly random element of F_p \ {0}.
func RandNonZero(rng *rand.Rand) Elem {
	for {
		if v := Rand(rng); v != 0 {
			return v
		}
	}
}
