package field

import (
	"fmt"
	"math/rand"
)

// Vec is a vector of field elements. DarKnight treats every tensor (image,
// feature map, gradient) that crosses the TEE boundary as a flat Vec over
// F_p after quantization.
type Vec []Elem

// NewVec allocates a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// RandVec returns a vector of n uniformly random field elements. It is the
// noise generator for the masking scheme (the r and r_1..r_M vectors of
// Eq (1) and Eq (10)).
func RandVec(rng *rand.Rand, n int) Vec {
	return RandVecInto(rng, make(Vec, n))
}

// RandVecInto fills v with uniformly random field elements in place and
// returns it — the allocation-free noise draw of the serving loop. The rng
// must be private to the calling goroutine (each pipeline worker owns its
// own seeded RNG; see internal/serve).
func RandVecInto(rng *rand.Rand, v Vec) Vec {
	for i := range v {
		v[i] = Rand(rng)
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// AddVec returns a + b elementwise. Panics if lengths differ: coded inputs
// in a virtual batch must all have identical shape.
func AddVec(a, b Vec) Vec {
	return AddVecInto(make(Vec, len(a)), a, b)
}

// AddVecInto computes dst = a + b elementwise in place and returns dst.
// dst may alias a or b.
func AddVecInto(dst, a, b Vec) Vec {
	checkLen(len(a), len(b))
	checkLen(len(dst), len(a))
	for i := range a {
		dst[i] = Add(a[i], b[i])
	}
	return dst
}

// SubVec returns a - b elementwise.
func SubVec(a, b Vec) Vec {
	return SubVecInto(make(Vec, len(a)), a, b)
}

// SubVecInto computes dst = a - b elementwise in place and returns dst.
// dst may alias a or b.
func SubVecInto(dst, a, b Vec) Vec {
	checkLen(len(a), len(b))
	checkLen(len(dst), len(a))
	for i := range a {
		dst[i] = Sub(a[i], b[i])
	}
	return dst
}

// ScaleVec returns s * v elementwise.
func ScaleVec(s Elem, v Vec) Vec {
	return ScaleVecInto(make(Vec, len(v)), s, v)
}

// ScaleVecInto computes dst = s·v elementwise in place and returns dst.
// dst may alias v.
func ScaleVecInto(dst Vec, s Elem, v Vec) Vec {
	checkLen(len(dst), len(v))
	for i := range v {
		dst[i] = Mul(s, v[i])
	}
	return dst
}

// AXPY performs dst += s*v in place — the reference encode inner loop
// (x̄ accumulates α_{j,i}·x_j one source vector at a time, one reduction
// per element per term). The production coding path uses Combine, which
// fuses all terms with lazy reduction; AXPY remains the readable oracle.
func AXPY(dst Vec, s Elem, v Vec) {
	checkLen(len(dst), len(v))
	for i := range dst {
		dst[i] = MulAdd(dst[i], s, v[i])
	}
}

// AXPYInto computes the fused scale-add dst = y + s·x elementwise in place
// and returns dst. dst may alias x or y, so dst=y gives the classic
// accumulate and dst=x an in-place scale-shift without a scratch vector.
func AXPYInto(dst Vec, s Elem, x, y Vec) Vec {
	checkLen(len(x), len(y))
	checkLen(len(dst), len(x))
	for i := range dst {
		dst[i] = MulAdd(y[i], s, x[i])
	}
	return dst
}

// Dot returns the inner product <a, b> over F_p.
func Dot(a, b Vec) Elem {
	checkLen(len(a), len(b))
	var acc uint64
	for i := range a {
		acc += uint64(a[i]) * uint64(b[i])
		// Lazy reduction: 2^50-bit products accumulate safely for at
		// least 2^13 terms before approaching 2^63; reduce periodically.
		if i&0xFFF == 0xFFF {
			acc %= uint64(P)
		}
	}
	return Elem(acc % uint64(P))
}

// Equal reports whether a and b are identical vectors.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if v[i] != o[i] {
			return false
		}
	}
	return true
}

// LiftVec applies the centered lift to every element, restoring signed
// fixed-point values after decode.
func LiftVec(v Vec) []int64 {
	out := make([]int64, len(v))
	for i, x := range v {
		out[i] = Lift(x)
	}
	return out
}

// FromInt64Vec maps a signed integer slice into the field elementwise.
func FromInt64Vec(xs []int64) Vec {
	out := make(Vec, len(xs))
	for i, x := range xs {
		out[i] = FromInt64(x)
	}
	return out
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("field: length mismatch %d != %d", a, b))
	}
}
