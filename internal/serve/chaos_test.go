package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/obs"
	"darknight/internal/sched"
)

// TestChaosFaultyFleetQuarantinesAndKeepsServing is the CI chaos job: two
// probabilistically tampering devices (seeded, reproducible) inside a
// multi-tenant serving run with recovery enabled. The run must terminate
// (no deadlock under quarantine churn), every request must resolve as
// success or a classified integrity error, the offenders must end up
// quarantined, and the fleet must account every device as returned.
func TestChaosFaultyFleetQuarantinesAndKeepsServing(t *testing.T) {
	const (
		k       = 2
		gang    = k + 1 + 2 // E = 2: culprits are attributable
		workers = 2
		clients = 6
		perEach = 8
	)
	devs := make([]gpu.Device, workers*gang+2)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	// Two seeded probabilistic offenders: reproducible chaos.
	devs[1] = gpu.NewMalicious(devs[1], gpu.FaultPolicy{Probability: 0.5, Seed: 7})
	devs[4] = gpu.NewMalicious(devs[4], gpu.FaultPolicy{Probability: 0.5, Seed: 8})

	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{
		Tenants:              []fleet.TenantConfig{{Name: "gold", Weight: 2}, {Name: "bronze", Weight: 1}},
		ProbationProbability: -1, // deterministic end state: offenders stay out
		Seed:                 9,
	})
	// The chaos run flies with the flight recorder attached; on failure the
	// full event history (grants, integrity verdicts, quarantines) is dumped
	// so the post-mortem starts with the story, not a stack trace.
	ob := obs.New(obs.Options{RecorderSize: 2048, Seed: 9})
	defer func() {
		if t.Failed() {
			t.Logf("flight recorder dump (%d events, %d dropped):\n%s",
				ob.Recorder.Len(), ob.Recorder.Dropped(), obs.FormatEvents(ob.Recorder.Dump()))
		}
	}()
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 2, Seed: 151},
		MaxWait: time.Millisecond,
		Recover: true,
		Obs:     ob,
	}, replicas(workers, 151), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(32, 152)
	var ok, integrity, other int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "gold"
			if c%3 == 2 {
				tenant = "bronze"
			}
			for i := 0; i < perEach; i++ {
				_, err := srv.InferTenant(context.Background(), tenant, imgs[(c*perEach+i)%len(imgs)])
				switch {
				case err == nil:
					atomic.AddInt64(&ok, 1)
				case IsIntegrityError(err):
					atomic.AddInt64(&integrity, 1)
				default:
					atomic.AddInt64(&other, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()

	if other != 0 {
		t.Fatalf("%d requests failed with non-integrity errors", other)
	}
	if total := ok + integrity; total != clients*perEach {
		t.Fatalf("resolved %d of %d requests", total, clients*perEach)
	}
	// Recovery with E=2 absorbs single-culprit batches; only batches where
	// both offenders landed in one gang and corrupted can fail. Most
	// requests must succeed.
	if ok < clients*perEach/2 {
		t.Fatalf("only %d/%d requests succeeded under chaos", ok, clients*perEach)
	}
	st := fm.Stats()
	if st.Quarantined < 2 {
		t.Fatalf("offenders not quarantined: %+v", st)
	}
	for _, d := range st.Devices {
		if d.Leased {
			t.Fatalf("device %d still leased after drain", d.ID)
		}
		if (d.ID == 1 || d.ID == 4) && d.State != fleet.Quarantined {
			t.Fatalf("offender %d ended %v, want quarantined", d.ID, d.State)
		}
	}
	if st.QuarantineEvents < 2 {
		t.Fatalf("quarantine events = %d, want >= 2", st.QuarantineEvents)
	}
	// The recorder saw the same story the fleet stats summarize.
	var quarantines, grants int
	for _, ev := range ob.Recorder.Dump() {
		switch ev.Kind {
		case obs.KindQuarantine:
			quarantines++
		case obs.KindGrant:
			grants++
		}
	}
	if grants == 0 || int64(quarantines)+ob.Recorder.Dropped() < st.QuarantineEvents {
		t.Fatalf("flight recorder missed the chaos: %d grants, %d quarantine events recorded (fleet saw %d)",
			grants, quarantines, st.QuarantineEvents)
	}
}
