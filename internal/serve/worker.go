package serve

import (
	"context"
	"errors"
	"time"

	"darknight/internal/masking"
	"darknight/internal/sched"
)

// workLoop is one serving worker: it owns a forward-only pipeline over a
// private model replica and, for every batch, gang-acquires K+M+E devices
// from the fleet manager — atomically, all or none, under the batch
// tenant's fair-share account — dispatches the coded batch, and fans the
// decoded classes back out to the waiting requests. Padding rows are
// decoded like any other row and dropped.
//
// The worker is also the fleet's sensor: culprit gang slots attributed by
// the redundant decoding (whether the batch failed or recovery absorbed
// the fault) are reported to the grant so the health tracker can
// quarantine the physical device; unattributed violations cast suspicion
// over the whole gang.
func (s *Server) workLoop(inf *sched.Inferencer) {
	defer s.wg.Done()
	gang := inf.Gang()
	for b := range s.batches {
		grant, err := s.fleet.Acquire(context.Background(), b.tenant, gang)
		if err != nil {
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			continue
		}
		before := inf.PhaseStats()
		preds, err := inf.Predict(grant, b.images)
		if culprits := inf.Culprits(); len(culprits) > 0 {
			grant.ReportFaults(culprits)
		} else if err != nil {
			var ie *sched.IntegrityError
			switch {
			case errors.As(err, &ie) && len(ie.Culprits) > 0:
				grant.ReportFaults(ie.Culprits)
			case IsIntegrityError(err):
				grant.ReportSuspect()
			}
		}
		grant.Release()
		s.metrics.phases(inf.PhaseStats().Sub(before))
		now := time.Now()
		if err != nil {
			// One tampered GPU poisons the whole coded batch: every rider
			// sees the integrity error (wrapping masking.ErrIntegrity).
			b.fail(err)
			s.metrics.finished(b, now, err)
			continue
		}
		for i, r := range b.reqs {
			r.done <- result{class: preds[i]}
		}
		s.metrics.finished(b, now, nil)
	}
}

// IsIntegrityError reports whether a per-request serving error was caused
// by tampered GPU results on the request's batch.
func IsIntegrityError(err error) bool { return errors.Is(err, masking.ErrIntegrity) }
