package serve

import (
	"context"
	"errors"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/masking"
	"darknight/internal/obs"
	"darknight/internal/sched"
)

// workLoop is one serving worker: it owns a forward-only pipeline over a
// private model replica and, for every batch, gang-acquires K+M+E devices
// from the fleet manager — atomically, all or none, under the batch
// tenant's fair-share account — dispatches the coded batch, and fans the
// decoded classes back out to the waiting requests. Padding rows are
// decoded like any other row and dropped.
//
// The worker is also the fleet's sensor: culprit gang slots attributed by
// the redundant decoding (whether the batch failed or recovery absorbed
// the fault) are reported to the grant so the health tracker can
// quarantine the physical device; unattributed violations cast suspicion
// over the whole gang.
func (s *Server) workLoop(inf *sched.Inferencer) {
	defer s.wg.Done()
	gang := inf.Gang()
	for b := range s.batches {
		b.sealAdmission() // continuous riders stop here; the rows are ours
		b.seal.End()      // handoff complete: a worker owns the batch now
		bsp := b.leaderSpan().Child("batch")
		if bsp != nil {
			bsp.Annotate("tenant", b.tenant)
			bsp.Annotatef("rows", "%d/%d", len(b.reqs), s.k)
		}
		gsp := bsp.Child("grant")
		grant, err := s.fleet.Acquire(context.Background(), b.tenant, gang)
		gsp.End()
		if err != nil {
			bsp.Annotate("error", err.Error())
			bsp.End()
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			continue
		}
		if bsp != nil {
			bsp.Annotatef("gang", "%v", grant.DeviceIDs())
		}
		before := inf.PhaseStats()
		inf.SetSpan(bsp)
		preds, err := inf.Predict(grant, b.images)
		inf.SetSpan(nil)
		culprits := inf.Culprits()
		// The batch log append precedes the release: a device freed by this
		// grant cannot serve a later batch until the log already holds this
		// one, which keeps per-device log order equal to dispatch order.
		s.logBatch(b, grant.Slots(), preds, culprits, err)
		reportOutcome(grant, culprits, err)
		grant.Release()
		bsp.End()
		s.metrics.phases(inf.PhaseStats().Sub(before))
		now := time.Now()
		if err != nil {
			// One tampered GPU poisons the whole coded batch: every rider
			// sees the integrity error (wrapping masking.ErrIntegrity).
			b.fail(err)
			s.metrics.finished(b, now, err)
			continue
		}
		for i, r := range b.reqs {
			r.done <- result{class: preds[i]}
		}
		s.metrics.finished(b, now, nil)
	}
}

// IsIntegrityError reports whether a per-request serving error was caused
// by tampered GPU results on the request's batch.
func IsIntegrityError(err error) bool { return errors.Is(err, masking.ErrIntegrity) }

// reportOutcome folds one batch's integrity verdict into its grant: exact
// culprits quarantine the offending devices; an unattributable violation
// casts suspicion over the whole gang.
func reportOutcome(grant *fleet.Grant, culprits []int, err error) {
	if len(culprits) > 0 {
		grant.ReportFaults(culprits)
		return
	}
	if err == nil {
		return
	}
	var ie *sched.IntegrityError
	switch {
	case errors.As(err, &ie) && len(ie.Culprits) > 0:
		grant.ReportFaults(ie.Culprits)
	case IsIntegrityError(err):
		grant.ReportSuspect()
	}
}

// pipeFlight is one virtual batch in flight through a worker's pipeline:
// its gang grant and the completion ticket.
type pipeFlight struct {
	b     *vbatch
	grant *fleet.Grant
	tk    *sched.Ticket
	bsp   *obs.Span // the batch span, closed when the flight retires
}

// pipeLoop is the overlapped serving worker: it owns a sched.Pipeline over
// a private model replica and keeps up to Depth virtual batches in flight
// at once, each under its own gang grant — while one batch's coded shares
// are on the devices, the TEE encodes the next batch and decodes the
// previous one. The fault-reporting duties are identical to workLoop's;
// they act on each batch's ticket as it completes.
func (s *Server) pipeLoop(p *sched.Pipeline) {
	defer s.wg.Done()
	gang := p.Gang()
	var q []pipeFlight
	var last sched.PhaseStats

	// completions carries one token per flight whose ticket has completed
	// — a single channel the loop can select on regardless of which of the
	// in-flight batches finishes first, so a fast batch is never parked
	// behind a slow older one (finished clients answered, and the finished
	// gang released, in completion order, not submission order). Capacity
	// Depth bounds the outstanding tokens: one per lane.
	completions := make(chan struct{}, p.Depth())
	watch := func(tk *sched.Ticket) {
		go func() {
			<-tk.Done()
			completions <- struct{}{}
		}()
	}

	finish := func(f pipeFlight) {
		err := f.tk.Wait()
		// Log before release (see workLoop): per-device log order must
		// equal dispatch order for replay to re-run fault schedules.
		s.logBatch(f.b, f.grant.Slots(), f.tk.Classes(), f.tk.Culprits(), err)
		reportOutcome(f.grant, f.tk.Culprits(), err)
		f.grant.Release()
		f.bsp.End()
		// Windowed phase accounting: the pipeline's aggregate counters are
		// monotone, so per-completion deltas sum to the true totals even
		// while other batches are mid-flight.
		cur := p.PhaseStats()
		s.metrics.phases(cur.Sub(last))
		last = cur
		now := time.Now()
		if err != nil {
			f.b.fail(err)
			s.metrics.finished(f.b, now, err)
			return
		}
		preds := f.tk.Classes()
		for i, r := range f.b.reqs {
			r.done <- result{class: preds[i]}
		}
		s.metrics.finished(f.b, now, nil)
	}

	// retireCompleted consumes one already-received completion token:
	// it finds a flight whose ticket is done — one must exist, tokens are
	// only minted for flights in q — and retires it without blocking.
	retireCompleted := func() {
		for i, f := range q {
			select {
			case <-f.tk.Done():
				finish(f)
				q = append(q[:i], q[i+1:]...)
				return
			default:
			}
		}
	}

	// retire blocks for the next completion (whichever flight it is) and
	// retires that flight.
	retire := func() {
		<-completions
		retireCompleted()
	}

	// acquire gets a gang for the next batch without deadlocking on a
	// tight pool: blocking for devices while this worker still holds the
	// gangs of completed-but-unretired batches would wait forever (only
	// this goroutine releases them). So the blocking path is reserved for
	// an empty pipeline; otherwise a failed non-blocking attempt retires
	// the next batch to complete — freeing its gang — and retries,
	// degrading gracefully toward serial execution exactly when the fleet
	// cannot support the overlap.
	acquire := func(tenant string) (*fleet.Grant, error) {
		for {
			if len(q) == 0 {
				return s.fleet.Acquire(context.Background(), tenant, gang)
			}
			grant, err := s.fleet.TryAcquire(tenant, gang)
			if grant != nil || err != nil {
				return grant, err
			}
			retire()
		}
	}

	submit := func(b *vbatch) {
		b.sealAdmission() // continuous riders stop here; the rows are ours
		b.seal.End()      // handoff complete: this worker owns the batch now
		bsp := b.leaderSpan().Child("batch")
		if bsp != nil {
			bsp.Annotate("tenant", b.tenant)
			bsp.Annotatef("rows", "%d/%d", len(b.reqs), s.k)
		}
		gsp := bsp.Child("grant")
		grant, err := acquire(b.tenant)
		gsp.End()
		if err != nil {
			bsp.Annotate("error", err.Error())
			bsp.End()
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			return
		}
		if bsp != nil {
			bsp.Annotatef("gang", "%v", grant.DeviceIDs())
		}
		tk, err := p.SubmitTraced(grant, b.images, bsp)
		if err != nil {
			grant.Release()
			bsp.End()
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			return
		}
		q = append(q, pipeFlight{b: b, grant: grant, tk: tk, bsp: bsp})
		watch(tk)
	}

	for {
		if len(q) == 0 {
			// Nothing in flight: block for traffic.
			b, ok := <-s.batches
			if !ok {
				return
			}
			submit(b)
			continue
		}
		if len(q) >= p.Depth() {
			// Pipeline full: retire the next completion before admitting
			// more.
			retire()
			continue
		}
		// Room in the pipeline: take whichever happens first — another
		// batch to overlap, or any flight's completion.
		select {
		case b, ok := <-s.batches:
			if !ok {
				for len(q) > 0 {
					retire()
				}
				return
			}
			submit(b)
		case <-completions:
			retireCompleted()
		}
	}
}
