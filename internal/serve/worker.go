package serve

import (
	"context"
	"errors"
	"time"

	"darknight/internal/masking"
	"darknight/internal/sched"
)

// workLoop is one serving worker: it owns a forward-only pipeline over a
// private model replica and, for every batch, gang-acquires K+M+E devices
// from the shared lease manager — atomically, all or none — dispatches the
// coded batch, and fans the decoded classes back out to the waiting
// requests. Padding rows are decoded like any other row and dropped.
func (s *Server) workLoop(inf *sched.Inferencer) {
	defer s.wg.Done()
	gang := inf.Gang()
	for b := range s.batches {
		lease, err := s.leases.Acquire(context.Background(), gang)
		if err != nil {
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			continue
		}
		before := inf.PhaseStats()
		preds, err := inf.Predict(lease.Cluster(), b.images)
		lease.Release()
		s.metrics.phases(inf.PhaseStats().Sub(before))
		now := time.Now()
		if err != nil {
			// One tampered GPU poisons the whole coded batch: every rider
			// sees the integrity error (wrapping masking.ErrIntegrity).
			b.fail(err)
			s.metrics.finished(b, now, err)
			continue
		}
		for i, r := range b.reqs {
			r.done <- result{class: preds[i]}
		}
		s.metrics.finished(b, now, nil)
	}
}

// IsIntegrityError reports whether a per-request serving error was caused
// by tampered GPU results on the request's batch.
func IsIntegrityError(err error) bool { return errors.Is(err, masking.ErrIntegrity) }
