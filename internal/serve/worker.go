package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/masking"
	"darknight/internal/obs"
	"darknight/internal/resil"
	"darknight/internal/sched"
)

// workLoop is one serving worker: it owns a forward-only pipeline over a
// private model replica and, for every batch, gang-acquires K+M+E devices
// from the fleet manager — atomically, all or none, under the batch
// tenant's fair-share account — dispatches the coded batch, and fans the
// decoded classes back out to the waiting requests. Padding rows are
// decoded like any other row and dropped.
//
// The worker is also the fleet's sensor: culprit gang slots attributed by
// the redundant decoding (whether the batch failed or recovery absorbed
// the fault) are reported to the grant so the health tracker can
// quarantine the physical device; unattributed violations cast suspicion
// over the whole gang.
//
// With the resilience layer on, the worker additionally prunes
// deadline-expired requests before dispatch, re-dispatches failed batches
// onto fresh gangs with capped backoff, and hedges slow primaries with a
// speculative duplicate flight on hedger (its own engine over its own
// model replica — first answer wins, both gangs always released).
func (s *Server) workLoop(inf, hedger *sched.Inferencer) {
	defer s.wg.Done()
	gang := inf.Gang()
	for b := range s.batches {
		b.sealAdmission() // continuous riders stop here; the rows are ours
		b.seal.End()      // handoff complete: a worker owns the batch now
		if s.pruneExpired(b, time.Now()) == 0 {
			continue // every rider expired; nothing left to dispatch
		}
		bsp := b.leaderSpan().Child("batch")
		if bsp != nil {
			bsp.Annotate("tenant", b.tenant)
			bsp.Annotatef("rows", "%d/%d", len(b.reqs), s.k)
		}
		s.dispatchBatch(inf, hedger, b, bsp, gang)
		bsp.End()
	}
}

// pruneExpired expels requests whose end-to-end deadline has already
// passed: each is answered with the typed resil.ErrDeadline now, and its
// image slot becomes a de-facto pad row (still coded, output dropped), so
// the survivors' row pairing is preserved. Returns the live row count.
func (s *Server) pruneExpired(b *vbatch, now time.Time) int {
	n := len(b.reqs)
	expired := 0
	for i := 0; i < n; {
		r := b.reqs[i]
		if r.deadline.IsZero() || now.Before(r.deadline) {
			i++
			continue
		}
		r.sp.Annotate("outcome", "deadline-before-dispatch")
		r.done <- result{err: resil.ErrDeadline}
		n--
		expired++
		b.reqs[i] = b.reqs[n]
		b.images[i], b.images[n] = b.images[n], b.images[i]
	}
	if expired > 0 {
		b.reqs = b.reqs[:n]
		s.rcount.Deadline.Add(int64(expired))
		s.metrics.deadlineExpired(b.tenant, expired)
		s.recordResil(obs.KindRetry, b.tenant,
			fmt.Sprintf("pruned %d deadline-expired rows before dispatch", expired))
	}
	return n
}

// batchDeadline is the dispatch budget of a batch: the latest deadline
// among its rows — the batch keeps running while any rider can still use
// the answer. One unbounded rider unbounds the batch.
func batchDeadline(b *vbatch) time.Time {
	var d time.Time
	for _, r := range b.reqs {
		if r.deadline.IsZero() {
			return time.Time{}
		}
		if r.deadline.After(d) {
			d = r.deadline
		}
	}
	return d
}

// dispatchBatch drives one sealed batch to completion: dispatch, and — on
// a retryable failure — re-dispatch onto a fresh gang under capped
// exponential backoff while the deadline budget lasts. Exactly one
// Metrics.finished call per batch, whatever the attempt count.
func (s *Server) dispatchBatch(inf, hedger *sched.Inferencer, b *vbatch, bsp *obs.Span, gang int) {
	deadline := batchDeadline(b)
	maxRetry := s.resil.Retry.Max
	for attempt := 0; ; attempt++ {
		delivered, err := s.dispatchAttempt(inf, hedger, b, bsp, gang, deadline)
		if delivered {
			if attempt > 0 {
				s.rcount.RetrySuccess.Add(1)
				s.recordResil(obs.KindRetry, b.tenant,
					fmt.Sprintf("retry %d succeeded", attempt))
			}
			return
		}
		expired := !deadline.IsZero() && !time.Now().Before(deadline)
		if resil.Retryable(err) && attempt < maxRetry && !expired {
			s.rcount.Retries.Add(1)
			s.recordResil(obs.KindRetry, b.tenant,
				fmt.Sprintf("attempt %d failed (%v); re-dispatching on a fresh gang", attempt+1, err))
			backoff := s.resil.Retry.Backoff(attempt + 1)
			if !deadline.IsZero() {
				if left := time.Until(deadline); left < backoff {
					backoff = left
				}
			}
			if backoff > 0 {
				time.Sleep(backoff)
			}
			continue
		}
		// Terminal: classify the failure for the client.
		final := err
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			final = resil.ErrDeadline
			s.rcount.Deadline.Add(int64(len(b.reqs)))
		case resil.Retryable(err) && maxRetry > 0 && attempt >= maxRetry:
			final = fmt.Errorf("%w: %d attempts, last: %v", resil.ErrRetriesExhausted, attempt+1, err)
			s.rcount.RetriesExhausted.Add(1)
		}
		bsp.Annotate("error", final.Error())
		b.fail(final)
		s.metrics.finished(b, time.Now(), final)
		return
	}
}

// flightRes is one gang flight's outcome.
type flightRes struct {
	preds    []int
	culprits []int
	err      error
	lat      time.Duration
}

// runFlight dispatches the batch on one engine/grant pair asynchronously.
// The engine belongs exclusively to this flight until the result is read.
func (s *Server) runFlight(inf *sched.Inferencer, grant *fleet.Grant, b *vbatch,
	sp *obs.Span, deadline time.Time, out chan<- flightRes) {
	go func() {
		inf.SetSpan(sp)
		inf.SetDeadline(deadline)
		t0 := time.Now()
		preds, err := inf.Predict(grant, b.images)
		lat := time.Since(t0)
		inf.SetDeadline(time.Time{})
		inf.SetSpan(nil)
		out <- flightRes{preds: preds,
			culprits: append([]int(nil), inf.Culprits()...), err: err, lat: lat}
	}()
}

// settleFlight does the post-flight bookkeeping for one grant: batch log,
// integrity verdict, release. Log precedes release so per-device log
// order equals dispatch order (the replay invariant).
func (s *Server) settleFlight(b *vbatch, grant *fleet.Grant, res flightRes) {
	s.logBatch(b, grant.Slots(), res.preds, res.culprits, res.err)
	reportOutcome(grant, res.culprits, res.err)
	grant.Release()
}

// dispatchAttempt runs one gang flight for the batch — hedged by a
// speculative duplicate on hedger when the primary outlives the
// latency-percentile trigger — delivers the first clean answer to the
// waiting requests, and only returns once every launched flight has
// completed and released its grant (the engines are single-threaded; the
// next attempt reuses them). delivered reports whether clients were
// answered; err is the primary's failure otherwise.
func (s *Server) dispatchAttempt(inf, hedger *sched.Inferencer, b *vbatch,
	bsp *obs.Span, gang int, deadline time.Time) (delivered bool, err error) {
	actx := context.Background()
	if !deadline.IsZero() {
		var cancel context.CancelFunc
		actx, cancel = context.WithDeadline(actx, deadline)
		defer cancel()
	}
	gsp := bsp.Child("grant")
	grant, err := s.fleet.Acquire(actx, b.tenant, gang)
	gsp.End()
	if err != nil {
		if actx.Err() != nil {
			return false, fmt.Errorf("gang wait outlived the deadline budget: %w", context.DeadlineExceeded)
		}
		return false, err
	}
	if bsp != nil {
		bsp.Annotatef("gang", "%v", grant.DeviceIDs())
	}

	infBefore := inf.PhaseStats()
	primary := make(chan flightRes, 1)
	s.runFlight(inf, grant, b, bsp, deadline, primary)

	// Hedge arm: wait out the trigger; if the primary is still flying,
	// duplicate it on spare capacity (TryAcquire — a hedge never queues
	// against primary traffic and never deadlocks the worker).
	var (
		pres, hres   flightRes
		hgrant       *fleet.Grant
		hedgeCh      chan flightRes
		hsp          *obs.Span
		hedgerBefore sched.PhaseStats
	)
	gotPrimary := false
	if delay, ok := s.hedge.Delay(); ok && hedger != nil {
		timer := time.NewTimer(delay)
		select {
		case pres = <-primary:
			timer.Stop()
			gotPrimary = true
		case <-timer.C:
			if hg, herr := s.fleet.TryAcquire(b.tenant, gang); herr == nil && hg != nil {
				hgrant = hg
				s.rcount.Hedges.Add(1)
				s.recordResil(obs.KindHedge, b.tenant,
					fmt.Sprintf("primary past p%d trigger (%v); duplicate flight on gang %v",
						int(100*hedgeQuantile(s.resil.Hedge)), delay, hg.DeviceIDs()))
				hsp = bsp.Child("hedge")
				hedgerBefore = hedger.PhaseStats()
				hedgeCh = make(chan flightRes, 1)
				s.runFlight(hedger, hgrant, b, hsp, deadline, hedgeCh)
			}
		}
	}

	if hedgeCh == nil {
		// Unhedged path: no trigger, primary answered inside it, or no
		// spare gang was free for the duplicate.
		if !gotPrimary {
			pres = <-primary
		}
		s.hedge.Observe(pres.lat)
		s.settleFlight(b, grant, pres)
		s.metrics.phases(inf.PhaseStats().Sub(infBefore))
		if pres.err != nil {
			return false, pres.err
		}
		s.deliver(b, pres.preds, time.Now())
		return true, nil
	}

	// Both flights are up: first clean answer is delivered immediately;
	// the loser always runs to completion and settles (no lease leaks, no
	// engine reuse while in flight).
	var first, second *flightRes
	firstIsHedge := false
	select {
	case pres = <-primary:
		first = &pres
	case hres = <-hedgeCh:
		first = &hres
		firstIsHedge = true
	}
	if first.err == nil {
		s.deliver(b, first.preds, time.Now())
		delivered = true
	}
	if firstIsHedge {
		hres = *first
		pres = <-primary
		second = &pres
	} else {
		pres = *first
		hres = <-hedgeCh
		second = &hres
	}
	if !delivered && second.err == nil {
		s.deliver(b, second.preds, time.Now())
		delivered = true
	}

	// Cross-verification: when both flights decoded cleanly they must be
	// bit-identical — the decode is exact over F_p, so any divergence
	// means an undetected fault; count it and suspect both gangs.
	if pres.err == nil && hres.err == nil && !equalPreds(pres.preds, hres.preds) {
		s.rcount.HedgeMismatch.Add(1)
		s.recordResil(obs.KindHedge, b.tenant, "cross-verify FAILED: primary and hedge disagree")
		grant.ReportSuspect()
		hgrant.ReportSuspect()
	}
	if firstIsHedge && first.err == nil {
		s.rcount.HedgeWins.Add(1)
		s.recordResil(obs.KindHedge, b.tenant,
			fmt.Sprintf("hedge won by %v", pres.lat-hres.lat))
	} else {
		s.rcount.HedgeLosses.Add(1)
	}
	s.hedge.Observe(pres.lat)
	s.settleFlight(b, grant, pres)
	s.settleFlight(b, hgrant, hres)
	hsp.End()
	s.metrics.phases(inf.PhaseStats().Sub(infBefore))
	s.metrics.phases(hedger.PhaseStats().Sub(hedgerBefore))
	if delivered {
		return true, nil
	}
	return false, pres.err
}

// deliver answers every rider and closes the batch's metrics accounting.
func (s *Server) deliver(b *vbatch, preds []int, now time.Time) {
	for i, r := range b.reqs {
		r.done <- result{class: preds[i]}
	}
	s.metrics.finished(b, now, nil)
}

func equalPreds(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hedgeQuantile surfaces the effective trigger percentile for event text.
func hedgeQuantile(p resil.HedgePolicy) float64 {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		return 0.95
	}
	return p.Quantile
}

// IsIntegrityError reports whether a per-request serving error was caused
// by tampered GPU results on the request's batch.
func IsIntegrityError(err error) bool { return errors.Is(err, masking.ErrIntegrity) }

// reportOutcome folds one batch's integrity verdict into its grant: exact
// culprits quarantine the offending devices; an unattributable violation
// casts suspicion over the whole gang.
func reportOutcome(grant *fleet.Grant, culprits []int, err error) {
	if len(culprits) > 0 {
		grant.ReportFaults(culprits)
		return
	}
	if err == nil {
		return
	}
	var ie *sched.IntegrityError
	switch {
	case errors.As(err, &ie) && len(ie.Culprits) > 0:
		grant.ReportFaults(ie.Culprits)
	case IsIntegrityError(err):
		grant.ReportSuspect()
	}
}

// pipeFlight is one virtual batch in flight through a worker's pipeline:
// its gang grant, the completion ticket, and its retry budget.
type pipeFlight struct {
	b     *vbatch
	grant *fleet.Grant
	tk    *sched.Ticket
	bsp   *obs.Span // the batch span, closed when the flight retires
	// attempt counts re-dispatches of this batch (0 = original flight).
	attempt  int
	deadline time.Time
}

// pipeLoop is the overlapped serving worker: it owns a sched.Pipeline over
// a private model replica and keeps up to Depth virtual batches in flight
// at once, each under its own gang grant — while one batch's coded shares
// are on the devices, the TEE encodes the next batch and decodes the
// previous one. The fault-reporting duties are identical to workLoop's;
// they act on each batch's ticket as it completes. Failed flights with
// retry budget re-enter the pipeline on a fresh gang (non-blocking
// acquisition only — a retry never deadlocks the lanes).
func (s *Server) pipeLoop(p *sched.Pipeline) {
	defer s.wg.Done()
	gang := p.Gang()
	var q []pipeFlight
	var last sched.PhaseStats

	// completions carries one token per flight whose ticket has completed
	// — a single channel the loop can select on regardless of which of the
	// in-flight batches finishes first, so a fast batch is never parked
	// behind a slow older one (finished clients answered, and the finished
	// gang released, in completion order, not submission order). Capacity
	// 2×Depth bounds the outstanding tokens: one per lane plus retry
	// re-submissions minted while their predecessors' tokens are unread.
	completions := make(chan struct{}, 2*p.Depth())
	watch := func(tk *sched.Ticket) {
		go func() {
			<-tk.Done()
			completions <- struct{}{}
		}()
	}

	// resubmit re-enters a failed flight on a fresh gang: non-blocking
	// acquisition (blocking here could deadlock — this goroutine is the
	// only one that releases the other in-flight gangs). Returns false
	// when no gang or no pipeline slot is free; the caller then fails the
	// batch terminally.
	resubmit := func(f pipeFlight, ferr error) bool {
		expired := !f.deadline.IsZero() && !time.Now().Before(f.deadline)
		if !resil.Retryable(ferr) || f.attempt >= s.resil.Retry.Max || expired {
			return false
		}
		grant, err := s.fleet.TryAcquire(f.b.tenant, gang)
		if err != nil || grant == nil {
			return false
		}
		s.rcount.Retries.Add(1)
		s.recordResil(obs.KindRetry, f.b.tenant,
			fmt.Sprintf("pipeline attempt %d failed (%v); re-dispatching", f.attempt+1, ferr))
		if backoff := s.resil.Retry.Backoff(f.attempt + 1); backoff > 0 {
			// Bounded pause (Cap defaults to 8ms): the loop, not the
			// batch, pays it — acceptable for the failure path.
			time.Sleep(backoff)
		}
		tk, err := p.SubmitWithin(grant, f.b.images, f.bsp, f.deadline)
		if err != nil {
			grant.Release()
			return false
		}
		q = append(q, pipeFlight{b: f.b, grant: grant, tk: tk, bsp: f.bsp,
			attempt: f.attempt + 1, deadline: f.deadline})
		watch(tk)
		return true
	}

	finish := func(f pipeFlight) {
		err := f.tk.Wait()
		// Log before release (see workLoop): per-device log order must
		// equal dispatch order for replay to re-run fault schedules.
		s.logBatch(f.b, f.grant.Slots(), f.tk.Classes(), f.tk.Culprits(), err)
		reportOutcome(f.grant, f.tk.Culprits(), err)
		f.grant.Release()
		// Windowed phase accounting: the pipeline's aggregate counters are
		// monotone, so per-completion deltas sum to the true totals even
		// while other batches are mid-flight.
		cur := p.PhaseStats()
		s.metrics.phases(cur.Sub(last))
		last = cur
		now := time.Now()
		if err != nil {
			if resubmit(f, err) {
				return // the batch lives on under a fresh gang
			}
			final := err
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				final = resil.ErrDeadline
				s.rcount.Deadline.Add(int64(len(f.b.reqs)))
			case resil.Retryable(err) && s.resil.Retry.Max > 0 && f.attempt >= s.resil.Retry.Max:
				final = fmt.Errorf("%w: %d attempts, last: %v", resil.ErrRetriesExhausted, f.attempt+1, err)
				s.rcount.RetriesExhausted.Add(1)
			}
			f.bsp.End()
			f.b.fail(final)
			s.metrics.finished(f.b, now, final)
			return
		}
		if f.attempt > 0 {
			s.rcount.RetrySuccess.Add(1)
		}
		f.bsp.End()
		preds := f.tk.Classes()
		for i, r := range f.b.reqs {
			r.done <- result{class: preds[i]}
		}
		s.metrics.finished(f.b, now, nil)
	}

	// retireCompleted consumes one already-received completion token:
	// it finds a flight whose ticket is done — one must exist, tokens are
	// only minted for flights in q — and retires it without blocking. The
	// flight leaves q before finish runs so a retry resubmission can
	// append safely.
	retireCompleted := func() {
		for i, f := range q {
			select {
			case <-f.tk.Done():
				q = append(q[:i], q[i+1:]...)
				finish(f)
				return
			default:
			}
		}
	}

	// retire blocks for the next completion (whichever flight it is) and
	// retires that flight.
	retire := func() {
		<-completions
		retireCompleted()
	}

	// acquire gets a gang for the next batch without deadlocking on a
	// tight pool: blocking for devices while this worker still holds the
	// gangs of completed-but-unretired batches would wait forever (only
	// this goroutine releases them). So the blocking path is reserved for
	// an empty pipeline; otherwise a failed non-blocking attempt retires
	// the next batch to complete — freeing its gang — and retries,
	// degrading gracefully toward serial execution exactly when the fleet
	// cannot support the overlap.
	acquire := func(tenant string, deadline time.Time) (*fleet.Grant, error) {
		for {
			if len(q) == 0 {
				actx := context.Background()
				if !deadline.IsZero() {
					var cancel context.CancelFunc
					actx, cancel = context.WithDeadline(actx, deadline)
					defer cancel()
				}
				return s.fleet.Acquire(actx, tenant, gang)
			}
			grant, err := s.fleet.TryAcquire(tenant, gang)
			if grant != nil || err != nil {
				return grant, err
			}
			retire()
		}
	}

	submit := func(b *vbatch) {
		b.sealAdmission() // continuous riders stop here; the rows are ours
		b.seal.End()      // handoff complete: this worker owns the batch now
		if s.pruneExpired(b, time.Now()) == 0 {
			return
		}
		bsp := b.leaderSpan().Child("batch")
		if bsp != nil {
			bsp.Annotate("tenant", b.tenant)
			bsp.Annotatef("rows", "%d/%d", len(b.reqs), s.k)
		}
		deadline := batchDeadline(b)
		gsp := bsp.Child("grant")
		grant, err := acquire(b.tenant, deadline)
		gsp.End()
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				err = resil.ErrDeadline
				s.rcount.Deadline.Add(int64(len(b.reqs)))
			}
			bsp.Annotate("error", err.Error())
			bsp.End()
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			return
		}
		if bsp != nil {
			bsp.Annotatef("gang", "%v", grant.DeviceIDs())
		}
		tk, err := p.SubmitWithin(grant, b.images, bsp, deadline)
		if err != nil {
			grant.Release()
			bsp.End()
			b.fail(err)
			s.metrics.finished(b, time.Now(), err)
			return
		}
		q = append(q, pipeFlight{b: b, grant: grant, tk: tk, bsp: bsp, deadline: deadline})
		watch(tk)
	}

	for {
		if len(q) == 0 {
			// Nothing in flight: block for traffic.
			b, ok := <-s.batches
			if !ok {
				return
			}
			submit(b)
			continue
		}
		if len(q) >= s.effDepth(p) {
			// Pipeline full (or brownout-capped): retire the next
			// completion before admitting more.
			retire()
			continue
		}
		// Room in the pipeline: take whichever happens first — another
		// batch to overlap, or any flight's completion.
		select {
		case b, ok := <-s.batches:
			if !ok {
				for len(q) > 0 {
					retire()
				}
				return
			}
			submit(b)
		case <-completions:
			retireCompleted()
		}
	}
}
