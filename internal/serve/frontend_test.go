package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/client"
	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

func frontendFixture(t *testing.T) (*Server, *Frontend) {
	t.Helper()
	const k = 2
	fm := fleet.NewManager(gpu.NewHonestCluster(2*(k+1)), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 61},
		MaxWait: 2 * time.Millisecond,
	}, replicas(2, 61), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(srv, []byte("darknight serving enclave v1"))
	if err != nil {
		t.Fatal(err)
	}
	return srv, fe
}

// dial runs the full client handshake against the frontend.
func dial(t *testing.T, fe *Frontend) (clientSess *client.Session, conn *Conn) {
	t.Helper()
	cs, clientPub, err := client.Establish(fe.Platform(), fe.Measurement(), fe.PublicKey(), fe.Quote)
	if err != nil {
		t.Fatal(err)
	}
	conn, err = fe.Accept(clientPub)
	if err != nil {
		t.Fatal(err)
	}
	return cs, conn
}

func TestFrontendEncryptedRoundTrip(t *testing.T) {
	srv, fe := frontendFixture(t)
	defer srv.Close()

	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(61)))
	d := dataset.SyntheticCIFAR(rand.New(rand.NewSource(62)), 6, 4, 1, 8, 8, 0.05)

	// Two independent attested clients submit sealed batches concurrently;
	// predictions are checked after the join (the reference model is a
	// single-threaded nn stack).
	got := make([][]int, 2)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cs, conn := dial(t, fe)
			batch := d.Items[c*3 : c*3+3]
			req := make([]dataset.Example, len(batch))
			for i, ex := range batch {
				req[i] = dataset.Example{Image: ex.Image, Label: -1}
			}
			blob, err := cs.SealBatch(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := conn.HandleSealed(context.Background(), blob)
			if err != nil {
				t.Error(err)
				return
			}
			preds, err := cs.OpenPredictions(resp)
			if err != nil {
				t.Error(err)
				return
			}
			got[c] = preds
		}(c)
	}
	wg.Wait()
	for c := 0; c < 2; c++ {
		if got[c] == nil {
			continue // reported above
		}
		for i, ex := range d.Items[c*3 : c*3+3] {
			if want := nn.Argmax(ref.Forward(ex.Image, false)); got[c][i] != want {
				t.Errorf("client %d row %d: pred %d, float %d", c, i, got[c][i], want)
			}
		}
	}
}

func TestFrontendRejectsReplay(t *testing.T) {
	srv, fe := frontendFixture(t)
	defer srv.Close()

	cs, conn := dial(t, fe)
	d := dataset.SyntheticCIFAR(rand.New(rand.NewSource(63)), 1, 4, 1, 8, 8, 0.05)
	blob, err := cs.SealBatch([]dataset.Example{{Image: d.Items[0].Image, Label: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.HandleSealed(context.Background(), blob); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.HandleSealed(context.Background(), blob); err == nil {
		t.Fatal("replayed frame accepted")
	}
}

func TestFrontendRejectsWrongMeasurement(t *testing.T) {
	srv, fe := frontendFixture(t)
	defer srv.Close()

	// A client expecting a different enclave identity must fail attestation
	// before any image leaves its hands.
	evil := enclave.Measure([]byte("evil serving enclave"))
	_, _, err := client.Establish(fe.Platform(), evil, fe.PublicKey(), fe.Quote)
	if err == nil {
		t.Fatal("attestation against wrong measurement succeeded")
	}
}
