package serve

import (
	"math/rand"
	"time"
)

// vbatch is one virtual batch headed for a worker: exactly K images, the
// first len(reqs) of which are real client rows and the rest uniform-noise
// padding.
type vbatch struct {
	reqs   []*request
	images [][]float64
}

func (b *vbatch) fail(err error) {
	for _, r := range b.reqs {
		r.done <- result{err: err}
	}
}

// batchLoop is the dynamic batcher: it coalesces admitted requests into
// virtual batches of exactly K, flushing early — padded with dummy rows —
// when the earliest batching deadline among the pending requests expires.
// It owns all batching state; no locks needed.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)

	// Dummy rows are drawn fresh per flush: uniform noise, exactly like the
	// M noise rows the masking code mixes in, so a padded batch is
	// indistinguishable from a full one at the GPUs.
	rng := rand.New(rand.NewSource(s.cfg.Sched.Seed + 0x5eed))

	var pending []*request
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	timerSet := false

	flush := func() {
		if len(pending) == 0 {
			return
		}
		if timerSet && !timer.Stop() {
			select { // drain a fire that raced the flush
			case <-timer.C:
			default:
			}
		}
		timerSet = false
		b := &vbatch{reqs: pending, images: make([][]float64, s.k)}
		for i, r := range pending {
			b.images[i] = r.image
		}
		for i := len(pending); i < s.k; i++ {
			dummy := make([]float64, s.imgLen)
			for j := range dummy {
				dummy[j] = rng.Float64()
			}
			b.images[i] = dummy
		}
		s.metrics.queued(-len(pending))
		pending = nil
		s.batches <- b
	}

	rearm := func() {
		if len(pending) == 0 {
			return
		}
		earliest := pending[0].flushBy
		for _, r := range pending[1:] {
			if r.flushBy.Before(earliest) {
				earliest = r.flushBy
			}
		}
		if timerSet && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Until(earliest))
		timerSet = true
	}

	for {
		select {
		case r, ok := <-s.admit:
			if !ok {
				flush() // final partial batch drains on Close
				return
			}
			pending = append(pending, r)
			if len(pending) == s.k {
				flush()
			} else {
				rearm()
			}
		case <-timer.C:
			timerSet = false
			flush()
		}
	}
}
