package serve

import (
	"math/rand"
	"sync"
	"time"

	"darknight/internal/obs"
)

// vbatch is one virtual batch headed for a worker: exactly K images of one
// tenant, the first len(reqs) of which are real client rows and the rest
// uniform-noise padding.
type vbatch struct {
	tenant string
	reqs   []*request
	images [][]float64

	// seal is opened on the leader span at flush time and closed when a
	// worker picks the batch up — the handoff wait between batcher and
	// worker pool. Nil when no rider is sampled.
	seal *obs.Span

	// mu guards reqs/images/sealed between the batcher (continuous rider
	// admission) and the worker that picks the batch up. A batch is sealed
	// at worker pickup — not at flush — which is the continuous-batching
	// window: a flushed-but-unclaimed padded batch can still trade pad rows
	// for late riders.
	mu     sync.Mutex
	sealed bool
}

// admitRider swaps one pad row of a flushed-but-unsealed batch for a late
// request of the same tenant. Returns false once the batch is sealed (a
// worker owns it) or full of real rows; the caller then falls back to the
// pending queue.
func (b *vbatch) admitRider(r *request) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.sealed || len(b.reqs) >= len(b.images) {
		return false
	}
	b.images[len(b.reqs)] = r.image
	b.reqs = append(b.reqs, r)
	r.asp.End() // queueing over: the rider joined an in-flight batch
	r.sp.Annotate("admission", "continuous")
	return true
}

// sealAdmission closes the continuous-admission window: the worker that
// picked the batch up owns its rows from here on. The mutex pairs with
// admitRider, so rows admitted before the seal are visible to the worker.
func (b *vbatch) sealAdmission() {
	b.mu.Lock()
	b.sealed = true
	b.mu.Unlock()
}

// leaderSpan returns the root span of the batch's first sampled rider —
// the one trace that carries the batch subtree (annotating every sampled
// rider would double-count the shared work). Nil when none is sampled.
func (b *vbatch) leaderSpan() *obs.Span {
	for _, r := range b.reqs {
		if r.sp != nil {
			return r.sp
		}
	}
	return nil
}

func (b *vbatch) fail(err error) {
	for _, r := range b.reqs {
		r.done <- result{err: err}
	}
}

// batchLoop is the dynamic batcher: it coalesces admitted requests into
// per-tenant virtual batches of exactly K — tenants are never coded
// together, so each batch maps to one fair-share account — flushing a
// tenant early, padded with dummy rows, when the earliest batching
// deadline among its pending requests expires. It owns all batching state;
// no locks needed.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer close(s.batches)

	// Dummy rows are drawn fresh per flush: uniform noise, exactly like the
	// M noise rows the masking code mixes in, so a padded batch is
	// indistinguishable from a full one at the GPUs.
	rng := rand.New(rand.NewSource(s.cfg.Sched.Seed + 0x5eed))

	pending := map[string][]*request{}
	// open tracks each tenant's most recent padded batch that may still be
	// waiting for a worker: the continuous-batching admission targets
	// (Config.Continuous). Entries are dropped lazily when an admission
	// finds the batch sealed or full.
	open := map[string]*vbatch{}
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	timerSet := false

	stopTimer := func() {
		if timerSet && !timer.Stop() {
			select { // drain a fire that raced the flush
			case <-timer.C:
			default:
			}
		}
		timerSet = false
	}

	flush := func(tenant string) {
		reqs := pending[tenant]
		if len(reqs) == 0 {
			return
		}
		delete(pending, tenant)
		b := &vbatch{tenant: tenant, reqs: reqs, images: make([][]float64, s.k)}
		for i, r := range reqs {
			b.images[i] = r.image
			r.asp.End() // queueing over: the request is leaving the batcher
		}
		b.seal = b.leaderSpan().Child("seal")
		if b.seal != nil {
			b.seal.Annotatef("rows", "%d/%d", len(reqs), s.k)
		}
		for i := len(reqs); i < s.k; i++ {
			dummy := make([]float64, s.imgLen)
			for j := range dummy {
				dummy[j] = rng.Float64()
			}
			b.images[i] = dummy
		}
		s.metrics.queued(-len(reqs))
		s.batches <- b
		if s.cfg.Continuous && len(reqs) < s.k {
			open[tenant] = b
		}
	}

	// flushDue flushes every tenant whose earliest deadline has passed.
	flushDue := func(now time.Time) {
		for tenant, reqs := range pending {
			due := false
			for _, r := range reqs {
				if !now.Before(r.flushBy) {
					due = true
					break
				}
			}
			if due {
				flush(tenant)
			}
		}
	}

	// rearm points the timer at the earliest deadline across all tenants.
	rearm := func() {
		stopTimer()
		var earliest time.Time
		for _, reqs := range pending {
			for _, r := range reqs {
				if earliest.IsZero() || r.flushBy.Before(earliest) {
					earliest = r.flushBy
				}
			}
		}
		if earliest.IsZero() {
			return
		}
		timer.Reset(time.Until(earliest))
		timerSet = true
	}

	for {
		select {
		case r, ok := <-s.admit:
			if !ok {
				for tenant := range pending {
					flush(tenant) // final partial batches drain on Close
				}
				return
			}
			// Continuous batching: before queueing for a fresh batch, try to
			// ride the tenant's last padded batch if no worker has sealed it
			// yet — the rider replaces a pad row at the next block boundary
			// instead of waiting out a whole new batch.
			if b, ok := open[r.tenant]; ok {
				if b.admitRider(r) {
					s.metrics.queued(-1)
					s.metrics.continuousAdmit()
					rearm()
					continue
				}
				delete(open, r.tenant) // sealed or full: no longer a target
			}
			pending[r.tenant] = append(pending[r.tenant], r)
			if len(pending[r.tenant]) == s.k {
				stopTimer()
				flush(r.tenant)
			}
			rearm()
		case <-timer.C:
			timerSet = false
			flushDue(time.Now())
			rearm()
		}
	}
}
