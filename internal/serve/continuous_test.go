package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// TestContinuousBatchingAdmitsRiders drives saturating traffic through a
// one-worker server whose batcher flushes immediately (negative MaxWait:
// every batch leaves the batcher padded) onto slow devices, with continuous
// batching on. Flushed batches queue behind the busy worker, so late
// requests must ride them in place of pad rows — raising occupancy without
// delaying anyone — and every rider's answer must still match the float
// reference. The admission window closes at worker pickup; the -race CI
// run exercises the seal against concurrent admits.
func TestContinuousBatchingAdmitsRiders(t *testing.T) {
	const (
		k        = 4
		requests = 32
	)
	models := replicas(1, 19)
	devs := make([]gpu.Device, k+1)
	for i := range devs {
		devs[i] = gpu.NewSlow(gpu.NewHonest(i), 2*time.Millisecond)
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
	srv, err := New(Config{
		Sched:      sched.Config{VirtualBatch: k, Seed: 19},
		MaxWait:    -time.Nanosecond,
		Continuous: true,
	}, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(requests, 20)
	preds := make([]int, requests)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Ramped arrival: later requests land while earlier padded
			// batches are still queued behind the slow worker — the rider
			// window the test is about. An all-at-once burst can coalesce
			// into full batches before any pad exists to replace.
			time.Sleep(time.Duration(i) * 300 * time.Microsecond)
			p, err := srv.Infer(context.Background(), imgs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			preds[i] = p
		}(i)
	}
	wg.Wait()
	snap := srv.Metrics()
	srv.Close()

	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(19)))
	for i, img := range imgs {
		if want := nn.Argmax(ref.Forward(img, false)); preds[i] != want {
			t.Errorf("image %d: served %d, float %d", i, preds[i], want)
		}
	}
	if snap.Completed != requests || snap.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", snap.Completed, snap.Failed, requests)
	}
	// Batches flush underfilled (negative MaxWait) and queue behind the
	// slow one-worker pipeline, so at least some of them must have picked
	// up riders before pickup.
	if snap.ContinuousAdmits == 0 {
		t.Fatalf("no continuous admissions under saturating immediate-flush load: %+v", snap)
	}
}

// TestContinuousDisabledNeverAdmits pins the default: with Continuous off,
// the same immediate-flush workload completes with zero rider admissions —
// every batch serves exactly its flush row.
func TestContinuousDisabledNeverAdmits(t *testing.T) {
	const k = 4
	models := replicas(1, 23)
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 23},
		MaxWait: -time.Nanosecond,
	}, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	imgs := sampleImages(8, 24)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	snap := srv.Metrics()
	srv.Close()
	if snap.ContinuousAdmits != 0 {
		t.Fatalf("%d continuous admissions with Continuous off", snap.ContinuousAdmits)
	}
}
