package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// replicas builds n weight-identical TinyCNN models (one per worker).
func replicas(n int, seed int64) []*nn.Model {
	out := make([]*nn.Model, n)
	for i := range out {
		out[i] = nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(seed)))
	}
	return out
}

func sampleImages(n int, seed int64) [][]float64 {
	d := dataset.SyntheticCIFAR(rand.New(rand.NewSource(seed)), n, 4, 1, 8, 8, 0.05)
	imgs := make([][]float64, n)
	for i := range imgs {
		imgs[i] = d.Items[i].Image
	}
	return imgs
}

func TestServeCoalescesAndMatchesFloat(t *testing.T) {
	const (
		k        = 4
		workers  = 2
		requests = 64
	)
	models := replicas(workers, 7)
	fm := fleet.NewManager(gpu.NewHonestCluster(workers*(k+1)), fleet.Config{}) // two full gangs
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 7},
		MaxWait: 100 * time.Millisecond,
	}, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(requests, 8)
	preds := make([]int, requests)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := srv.Infer(context.Background(), imgs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			preds[i] = p
		}(i)
	}
	wg.Wait()
	srv.Close()

	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(7)))
	for i, img := range imgs {
		if want := nn.Argmax(ref.Forward(img, false)); preds[i] != want {
			t.Errorf("image %d: served %d, float %d", i, preds[i], want)
		}
	}

	snap := srv.Metrics()
	if snap.Completed != requests || snap.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", snap.Completed, snap.Failed, requests)
	}
	if snap.RealRows != requests {
		t.Fatalf("real rows %d, want %d", snap.RealRows, requests)
	}
	// 64 concurrent requests against K=4 batching must coalesce: far fewer
	// batches than requests, well-filled on average.
	if snap.Batches >= requests {
		t.Fatalf("no coalescing: %d batches for %d requests", snap.Batches, requests)
	}
	if snap.Occupancy < 0.5 {
		t.Fatalf("mean batch occupancy %.2f, want >= 0.5 under saturating load", snap.Occupancy)
	}
	if snap.Throughput <= 0 || snap.P50 <= 0 || snap.P99 < snap.P50 {
		t.Fatalf("implausible latency/throughput snapshot: %+v", snap)
	}
}

func TestDeadlineExpiryPadsPartialBatch(t *testing.T) {
	const k = 4
	models := replicas(1, 11)
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 11},
		MaxWait: 5 * time.Millisecond,
	}, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A single request with no peers: only the deadline flush (with 3
	// uniform-noise dummy rows) can ever complete it.
	img := sampleImages(1, 12)[0]
	p, err := srv.Infer(context.Background(), img)
	if err != nil {
		t.Fatal(err)
	}
	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(11)))
	if want := nn.Argmax(ref.Forward(img, false)); p != want {
		t.Fatalf("padded-batch prediction %d, float %d", p, want)
	}
	snap := srv.Metrics()
	if snap.Batches != 1 || snap.PaddedRows != k-1 || snap.RealRows != 1 {
		t.Fatalf("batches=%d padded=%d real=%d, want 1/%d/1",
			snap.Batches, snap.PaddedRows, snap.RealRows, k-1)
	}
}

func TestGangLeaseContention(t *testing.T) {
	// Three workers contend for a cluster holding exactly ONE gang: leases
	// serialize the dispatches, and nothing deadlocks or leaks devices.
	const (
		k        = 2
		gang     = k + 1 // M = 1, E = 0
		workers  = 3
		requests = 30
	)
	models := replicas(workers, 21)
	fm := fleet.NewManager(gpu.NewHonestCluster(gang), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 21},
		MaxWait: time.Millisecond,
	}, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(requests, 22)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()

	for _, d := range fm.Stats().Devices {
		if d.Leased {
			t.Fatalf("leaked device %d still leased after drain", d.ID)
		}
	}
	if snap := srv.Metrics(); snap.Completed != requests {
		t.Fatalf("completed %d, want %d", snap.Completed, requests)
	}
}

func TestMaliciousGPUSurfacesAsRequestError(t *testing.T) {
	// One always-tampering device inside the only gang: with E=1 the
	// redundant decoding catches it and every rider of the poisoned batch
	// gets an integrity error.
	const k = 2
	devs := []gpu.Device{
		gpu.NewHonest(0),
		gpu.NewMalicious(gpu.NewHonest(1), gpu.FaultPolicy{EveryNth: 1}),
		gpu.NewHonest(2),
		gpu.NewHonest(3),
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 1, Seed: 31},
		MaxWait: time.Millisecond,
	}, replicas(1, 31), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(8, 32)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Infer(context.Background(), imgs[i])
			if err == nil {
				t.Errorf("request %d: tampering went undetected", i)
			} else if !IsIntegrityError(err) {
				t.Errorf("request %d: error %v does not wrap ErrIntegrity", i, err)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()

	snap := srv.Metrics()
	if snap.Failed != int64(len(imgs)) || snap.Integrity != int64(len(imgs)) {
		t.Fatalf("failed=%d integrity=%d, want %d/%d",
			snap.Failed, snap.Integrity, len(imgs), len(imgs))
	}
}

func TestWorkerCodingSeedsDiffer(t *testing.T) {
	// Workers must not share an RNG stream: identical seeds would emit
	// identical masking noise for different clients' batches.
	fm := fleet.NewManager(gpu.NewHonestCluster(9), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: 2, Seed: 71},
		MaxWait: time.Millisecond,
	}, replicas(3, 71), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	seen := map[int64]bool{}
	for _, w := range srv.workers {
		seed := w.Config().Seed
		if seen[seed] {
			t.Fatalf("two workers share coding seed %d", seed)
		}
		seen[seed] = true
	}
}

func TestInferValidation(t *testing.T) {
	const k = 2
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 41},
		MaxWait: time.Millisecond,
	}, replicas(1, 41), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := srv.Infer(context.Background(), make([]float64, 5)); err == nil {
		t.Fatal("wrong-size image accepted")
	}

	// A canceled context aborts the wait.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Infer(ctx, make([]float64, 64)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Infer(context.Background(), make([]float64, 64)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCloseDrainsAdmittedRequests(t *testing.T) {
	// Requests sitting in the queue when Close lands are flushed (padded),
	// not dropped.
	const k = 4
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 51},
		MaxWait: time.Hour, // only Close can flush the partial batch
	}, replicas(1, 51), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	img := sampleImages(1, 52)[0]
	done := make(chan error, 1)
	go func() {
		_, err := srv.Infer(context.Background(), img)
		done <- err
	}()
	// Wait until the request is admitted, then close.
	for srv.Metrics().QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("drained request failed: %v", err)
	}
}
