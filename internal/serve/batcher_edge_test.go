package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/sched"
)

// TestMaxWaitZeroFlushesSingletonBatches: MaxWait <= 0 means a request
// never waits for peers — every batch carries exactly one real row plus
// K-1 dummy rows (the unbatched baseline).
func TestMaxWaitZeroFlushesSingletonBatches(t *testing.T) {
	const (
		k        = 3
		requests = 5
	)
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 121},
		MaxWait: -time.Nanosecond,
	}, replicas(1, 121), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(requests, 122)
	for i, img := range imgs {
		if _, err := srv.Infer(context.Background(), img); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	snap := srv.Metrics()
	if snap.Batches != requests {
		t.Fatalf("batches = %d, want %d singletons", snap.Batches, requests)
	}
	if snap.PaddedRows != int64(requests*(k-1)) || snap.RealRows != requests {
		t.Fatalf("padded=%d real=%d, want %d/%d", snap.PaddedRows, snap.RealRows, requests*(k-1), requests)
	}
}

// TestExpiredContextAtAdmission: a request whose context is already past
// its deadline must resolve promptly — either rejected with the context
// error or (if it won the race into a batch) completed — and must not leak
// queue depth.
func TestExpiredContextAtAdmission(t *testing.T) {
	const k = 4
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 131},
		MaxWait: time.Hour, // only the request's own deadline can flush early
	}, replicas(1, 131), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	img := sampleImages(1, 132)[0]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := srv.Infer(ctx, img)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want nil or DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired-context request hung")
	}
	// An expired flushBy means the batcher (if the request got in) flushes
	// immediately; either way the queue gauge must return to zero.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d", srv.Metrics().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}
	// The server remains fully serviceable: a follow-up request is admitted
	// (MaxWait is an hour, so only the Close drain can flush it) and
	// completes when the server drains.
	follow := make(chan error, 1)
	go func() {
		_, err := srv.Infer(context.Background(), img)
		follow <- err
	}()
	deadline = time.Now().Add(5 * time.Second)
	for srv.Metrics().QueueDepth == 0 {
		if time.Now().After(deadline) {
			t.Fatal("follow-up request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-follow; err != nil {
		t.Fatalf("follow-up request: %v", err)
	}
}

// TestQueueFullCancelledContext: with the worker wedged (its gang held
// externally), the pipeline backs up until the admission queue is full; a
// request arriving with a cancelled context must bail out with ctx.Err()
// without corrupting the queue gauge, and the backlog must drain cleanly
// once the gang frees up.
func TestQueueFullCancelledContext(t *testing.T) {
	const (
		k     = 2
		gang  = k + 1
		depth = 2
	)
	fm := fleet.NewManager(gpu.NewHonestCluster(gang), fleet.Config{})
	srv, err := New(Config{
		Sched:      sched.Config{VirtualBatch: k, Seed: 141},
		MaxWait:    time.Millisecond,
		QueueDepth: depth,
	}, replicas(1, 141), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the worker: hold the only gang so its Acquire blocks.
	hold, err := fm.Acquire(context.Background(), "external", gang)
	if err != nil {
		t.Fatal(err)
	}

	// Back the pipeline up: 1 batch stuck at the worker, 1 in the batch
	// channel, 1 blocking the batcher's send, then `depth` requests filling
	// the admission queue. 2 requests per batch (K=2, MaxWait pairs them).
	const backlog = 2*3 + depth
	imgs := sampleImages(backlog+1, 142)
	var wg sync.WaitGroup
	results := make([]error, backlog)
	for i := 0; i < backlog; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Infer(context.Background(), imgs[i])
			results[i] = err
		}(i)
	}
	// Wait until the admission queue is actually full.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Metrics().QueueDepth < depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", srv.Metrics().QueueDepth)
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Infer(ctx, imgs[backlog]); err != context.Canceled {
		t.Fatalf("queue-full cancelled request: err = %v, want context.Canceled", err)
	}

	// Free the gang: the whole backlog must drain.
	hold.Release()
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("backlogged request %d: %v", i, err)
		}
	}
	srv.Close()
	snap := srv.Metrics()
	if snap.Completed != backlog || snap.QueueDepth != 0 {
		t.Fatalf("completed=%d depth=%d, want %d/0", snap.Completed, snap.QueueDepth, backlog)
	}
}
