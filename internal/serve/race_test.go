package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// TestConcurrentPaddedServingNoSharedRNG is the per-worker RNG audit as a
// test: many workers dispatch concurrently (each with its own seeded engine
// RNG drawing coding coefficients and noise rows) while the batcher's
// private RNG pads every batch with dummy rows (MaxWait ~0 forces padding
// on essentially every flush). Run under -race, any RNG shared across
// those goroutines fails the build's race job.
func TestConcurrentPaddedServingNoSharedRNG(t *testing.T) {
	const workers = 4
	models := make([]*nn.Model, workers)
	for i := range models {
		models[i] = nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(91)))
	}
	cfg := Config{
		Sched:   sched.Config{VirtualBatch: 3, Seed: 5},
		MaxWait: 100 * time.Microsecond, // frequent padded flushes
	}
	gang := cfg.Sched.VirtualBatch + 1 // K + M, E = 0
	fm := fleet.NewManager(gpu.NewHonestCluster(gang*workers), fleet.Config{})
	srv, err := New(cfg, models, fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	img := make([]float64, 64)
	var wg sync.WaitGroup
	for c := 0; c < 2*workers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := srv.Infer(context.Background(), img); err != nil {
					t.Errorf("infer: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	m := srv.Metrics()
	if m.Completed != int64(2*workers*6) {
		t.Fatalf("completed %d of %d requests", m.Completed, 2*workers*6)
	}
	if m.Phases.Offloads == 0 || m.Phases.Encode <= 0 || m.Phases.Dispatch <= 0 || m.Phases.Decode <= 0 {
		t.Fatalf("phase breakdown not populated: %+v", m.Phases)
	}
}
