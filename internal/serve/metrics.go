package serve

import (
	"math"
	"sort"
	"sync"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/masking"
	"darknight/internal/obs"
	"darknight/internal/resil"
	"darknight/internal/sched"
)

// latWindow bounds the latency sample reservoir: quantiles are computed
// over the most recent latWindow completed requests.
const latWindow = 4096

// Metrics accumulates serving counters. All methods are safe for
// concurrent use.
type Metrics struct {
	mu    sync.Mutex
	k     int
	start time.Time

	completed int64
	failed    int64
	integrity int64
	batches   int64
	realRows  int64
	padRows   int64
	depth     int
	// continuous counts requests admitted into an already-flushed batch in
	// place of a pad row (continuous batching).
	continuous int64

	lat    []time.Duration // ring buffer of recent request latencies
	latIdx int

	// phase accumulates the TEE-side encode/dispatch/decode breakdown
	// across all workers' offloads.
	phase sched.PhaseStats

	// tenants accumulates per-tenant request outcomes.
	tenants map[string]*tenantCounts

	// latHist/phaseHist/slo are set once before serving starts (nil when
	// observability is off): per-tenant end-to-end latency histograms,
	// per-phase TEE-side histograms, and the SLO burn-rate tracker.
	latHist   *obs.HistogramVec
	phaseHist *obs.HistogramVec
	slo       *obs.SLOTracker
}

// tenantCounts is one tenant's request accounting.
type tenantCounts struct {
	completed int64
	failed    int64
	batches   int64
	realRows  int64
}

func newMetrics(k int) *Metrics {
	return &Metrics{k: k, start: time.Now(), tenants: make(map[string]*tenantCounts)}
}

// tenantLocked returns (creating if needed) a tenant's counters.
func (m *Metrics) tenantLocked(name string) *tenantCounts {
	tc, ok := m.tenants[name]
	if !ok {
		tc = &tenantCounts{}
		m.tenants[name] = tc
	}
	return tc
}

// queued adjusts the queue-depth gauge (admitted but not yet dispatched).
func (m *Metrics) queued(delta int) {
	m.mu.Lock()
	m.depth += delta
	m.mu.Unlock()
}

// continuousAdmit counts one continuous-batching rider admission.
func (m *Metrics) continuousAdmit() {
	m.mu.Lock()
	m.continuous++
	m.mu.Unlock()
}

// queueDepth reads the queue-depth gauge — the admission controller's
// shedding signal.
func (m *Metrics) queueDepth() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.depth
}

// deadlineExpired accounts n requests of a tenant pruned from a batch
// because their end-to-end budget expired before dispatch. They never
// reach finished (they leave the batch), so the failure counters move
// here.
func (m *Metrics) deadlineExpired(tenant string, n int) {
	m.mu.Lock()
	m.failed += int64(n)
	m.tenantLocked(tenant).failed += int64(n)
	m.mu.Unlock()
}

// phases folds one batch's TEE-side phase deltas into the totals and the
// per-phase latency histograms.
func (m *Metrics) phases(d sched.PhaseStats) {
	m.mu.Lock()
	m.phase.Encode += d.Encode
	m.phase.Dispatch += d.Dispatch
	m.phase.Decode += d.Decode
	m.phase.Wall += d.Wall
	m.phase.Offloads += d.Offloads
	m.phase.Flights += d.Flights
	m.phase.FusedBlocks += d.FusedBlocks
	m.phase.FusedLayers += d.FusedLayers
	m.mu.Unlock()
	if m.phaseHist != nil {
		m.phaseHist.Observe("encode", d.Encode.Seconds())
		m.phaseHist.Observe("dispatch", d.Dispatch.Seconds())
		m.phaseHist.Observe("decode", d.Decode.Seconds())
	}
}

// finished records one dispatched batch outcome at time now.
func (m *Metrics) finished(b *vbatch, now time.Time, err error) {
	m.mu.Lock()
	m.batches++
	m.realRows += int64(len(b.reqs))
	m.padRows += int64(m.k - len(b.reqs))
	tc := m.tenantLocked(b.tenant)
	tc.batches++
	tc.realRows += int64(len(b.reqs))
	failed := err != nil
	if failed {
		m.failed += int64(len(b.reqs))
		tc.failed += int64(len(b.reqs))
		if IsIntegrityError(err) {
			m.integrity += int64(len(b.reqs))
		}
	} else {
		m.completed += int64(len(b.reqs))
		tc.completed += int64(len(b.reqs))
		for _, r := range b.reqs {
			l := now.Sub(r.enqueued)
			if len(m.lat) < latWindow {
				m.lat = append(m.lat, l)
			} else {
				m.lat[m.latIdx] = l
				m.latIdx = (m.latIdx + 1) % latWindow
			}
		}
	}
	m.mu.Unlock()
	// Histogram and SLO recording happen outside the counter lock: both
	// are internally synchronized, and a scrape must never block the
	// completion path on m.mu longer than the counters need.
	for _, r := range b.reqs {
		l := now.Sub(r.enqueued)
		m.latHist.Observe(b.tenant, l.Seconds())
		m.slo.Observe(b.tenant, l, failed)
	}
}

// quantile returns the nearest-rank q-quantile of a sorted sample. Unlike
// the old `sorted[len*99/100]` indexing it is exact for partially filled
// windows: one sample answers every quantile with itself, two samples put
// P50 on the lower one, and P99 only leaves the maximum once more than 100
// samples have arrived.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(float64(len(sorted))*q)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// quantiles returns the P50/P99 latency over the recent completion window
// (zeros before the first completion) — the scrape-time read the metrics
// registry exports.
func (m *Metrics) quantiles() (p50, p99 time.Duration) {
	m.mu.Lock()
	sorted := append([]time.Duration(nil), m.lat...)
	m.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantile(sorted, 0.50), quantile(sorted, 0.99)
}

// Snapshot is a consistent copy of the serving counters.
type Snapshot struct {
	Completed  int64 // requests answered successfully
	Failed     int64 // requests answered with an error
	Integrity  int64 // failed requests caused by tampered GPU results
	Batches    int64 // virtual batches dispatched
	RealRows   int64 // client rows across all batches
	PaddedRows int64 // dummy rows across all batches
	QueueDepth int   // admitted requests not yet dispatched
	// ContinuousAdmits counts requests that rode an already-flushed batch
	// in place of a pad row (continuous batching, Config.Continuous).
	ContinuousAdmits int64

	// Occupancy is the mean fraction of real rows per dispatched batch
	// (1.0 = every batch full, 1/K = pure one-at-a-time traffic).
	Occupancy float64
	// Throughput is completed requests per second since server start.
	Throughput float64
	// P50/P99 are latency quantiles over the recent completion window.
	P50, P99 time.Duration

	// Phases is the cumulative TEE-side encode/dispatch/decode latency
	// breakdown across all workers — where the coded hot path spends its
	// time. Phases.Offloads counts the bilinear-layer dispatches measured;
	// Phases.Wall is the workers' busy wall-clock.
	Phases sched.PhaseStats
	// Overlap is (Encode+Dispatch+Decode)/Wall — 1.0 means the stages ran
	// strictly in sequence, values above 1 mean the pipelined engine kept
	// the TEE and the devices busy simultaneously.
	Overlap float64
	// NoisePool aggregates the workers' offline noise generators: Hits are
	// encodes served from precomputed material, Misses fell back to inline
	// draws. Zero when serving runs the serial engine.
	NoisePool masking.NoisePoolStats

	// Tenants is the per-tenant request accounting, ordered by name.
	Tenants []TenantSnapshot

	// Fleet is the device health / quarantine / fair-share snapshot
	// (populated by Server.Metrics).
	Fleet fleet.Stats

	// Resil is the resilience accounting — sheds, deadline expiries,
	// retries, hedges, brownout level (populated by Server.Metrics).
	Resil resil.Snapshot
}

// TenantSnapshot is one tenant's serving counters.
type TenantSnapshot struct {
	Name      string
	Completed int64
	Failed    int64
	Batches   int64
	RealRows  int64
	// Occupancy is the tenant's mean fraction of real rows per batch.
	Occupancy float64
}

// Snapshot returns the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Completed:        m.completed,
		Failed:           m.failed,
		Integrity:        m.integrity,
		Batches:          m.batches,
		RealRows:         m.realRows,
		PaddedRows:       m.padRows,
		QueueDepth:       m.depth,
		ContinuousAdmits: m.continuous,
		Phases:           m.phase,
		Overlap:          m.phase.Overlap(),
	}
	if m.batches > 0 {
		s.Occupancy = float64(m.realRows) / float64(m.batches*int64(m.k))
	}
	if el := time.Since(m.start).Seconds(); el > 0 {
		s.Throughput = float64(m.completed) / el
	}
	if len(m.lat) > 0 {
		sorted := append([]time.Duration(nil), m.lat...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.P50 = quantile(sorted, 0.50)
		s.P99 = quantile(sorted, 0.99)
	}
	for name, tc := range m.tenants {
		ts := TenantSnapshot{
			Name:      name,
			Completed: tc.completed,
			Failed:    tc.failed,
			Batches:   tc.batches,
			RealRows:  tc.realRows,
		}
		if tc.batches > 0 {
			ts.Occupancy = float64(tc.realRows) / float64(tc.batches*int64(m.k))
		}
		s.Tenants = append(s.Tenants, ts)
	}
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Name < s.Tenants[j].Name })
	return s
}

// snapshotInto fills the serve occupancy fields of a state snapshot
// under one lock hold.
func (m *Metrics) snapshotInto(si *obs.ServingInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	si.QueueDepth = m.depth
	si.BatchesCompleted = m.batches
	si.Completed = m.completed
	si.Failed = m.failed
	si.IntegrityEvents = m.integrity
	si.ContinuousAdmits = m.continuous
}
