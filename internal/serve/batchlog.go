package serve

import (
	"sync"

	"darknight/internal/obs"
)

// DefaultBatchLog is the completed-batch ring capacity used when
// observability is attached and Config.BatchLog is zero.
const DefaultBatchLog = 256

// batchLog is a bounded ring of completed-batch records — the raw
// material of snapshot-to-replay. Each record carries everything that
// determined the batch's outputs: the sealed coded inputs (all K rows,
// dummy pads included, because quantization scales are data-dependent
// over the whole batch), the exact gang slots granted, and the decoded
// verdict. Records are appended at batch completion, which for any
// single device is its dispatch order (a device is exclusively leased,
// and the log append happens before its grant releases), so a replay in
// log order re-runs every device's job sequence faithfully.
type batchLog struct {
	mu  sync.Mutex
	buf []obs.BatchRecord
	pos int
	cap int
	seq int64
}

func newBatchLog(size int) *batchLog {
	if size <= 0 {
		size = DefaultBatchLog
	}
	return &batchLog{buf: make([]obs.BatchRecord, 0, size), cap: size}
}

// add appends one record, stamping its completion sequence. Nil-safe.
func (l *batchLog) add(rec obs.BatchRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	rec.Seq = l.seq
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, rec)
	} else {
		l.buf[l.pos] = rec
		l.pos = (l.pos + 1) % l.cap
	}
	l.mu.Unlock()
}

// dump returns the retained records oldest-first plus the count of
// records the ring has evicted (0 means the log is complete since server
// start — the precondition for event-sequence replay assertions).
func (l *batchLog) dump() ([]obs.BatchRecord, int64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]obs.BatchRecord, 0, len(l.buf))
	out = append(out, l.buf[l.pos:]...)
	out = append(out, l.buf[:l.pos]...)
	return out, l.seq - int64(len(l.buf))
}

// logBatch records one completed batch into the log (no-op when the log
// is not attached). Called before the batch's grant releases, so per
// device the log order equals the dispatch order.
func (s *Server) logBatch(b *vbatch, slots []int, preds, culprits []int, err error) {
	if s.batchlog == nil {
		return
	}
	images := make([][]float64, len(b.images))
	for i, row := range b.images {
		images[i] = append([]float64(nil), row...)
	}
	rec := obs.BatchRecord{
		Tenant:   b.tenant,
		RealRows: len(b.reqs),
		Gang:     slots,
		Images:   images,
	}
	if len(culprits) > 0 {
		rec.Culprits = append([]int(nil), culprits...)
	}
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.Classes = append([]int(nil), preds...)
	}
	s.batchlog.add(rec)
}
