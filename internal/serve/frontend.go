package serve

import (
	"context"
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"sync"

	"darknight/internal/client"
	"darknight/internal/enclave"
)

// Frontend is the encrypted edge of the service: the system-model flow
// step 1 ("all the client data is first encrypted before being sent to the
// TEE"). Data holders attest the enclave, establish an AEAD session
// (internal/client) and ship sealed image batches; the frontend opens them
// inside the TEE boundary, fans the rows into the admission queue as
// independent requests, and seals the predicted classes back.
type Frontend struct {
	srv         *Server
	platform    *enclave.Platform
	measurement enclave.Measurement
	key         *ecdh.PrivateKey
}

// NewFrontend stands up the attestable edge for a server. The platform is
// the simulated hardware root of trust clients verify quotes against.
func NewFrontend(srv *Server, measuredCode []byte) (*Frontend, error) {
	platform, err := enclave.NewPlatform()
	if err != nil {
		return nil, err
	}
	key, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Frontend{
		srv:         srv,
		platform:    platform,
		measurement: enclave.Measure(measuredCode),
		key:         key,
	}, nil
}

// Platform returns the root of trust clients verify against.
func (f *Frontend) Platform() *enclave.Platform { return f.platform }

// Measurement returns the enclave identity clients must expect.
func (f *Frontend) Measurement() enclave.Measurement { return f.measurement }

// PublicKey returns the enclave's handshake public key.
func (f *Frontend) PublicKey() *ecdh.PublicKey { return f.key.PublicKey() }

// Quote answers an attestation challenge.
func (f *Frontend) Quote(challenge [16]byte) enclave.Quote {
	return f.platform.Attest(f.measurement, challenge)
}

// Accept completes the enclave side of a client handshake, returning the
// per-client connection.
func (f *Frontend) Accept(clientPub *ecdh.PublicKey) (*Conn, error) {
	sess, err := client.Accept(f.key, clientPub, f.measurement)
	if err != nil {
		return nil, err
	}
	return &Conn{f: f, sess: sess}, nil
}

// Conn is one attested client connection. The underlying AEAD session is
// sequential (request/response alternation), so Conn serializes frame
// handling; distinct clients get distinct Conns and proceed concurrently.
type Conn struct {
	f    *Frontend
	sess *client.Session
	mu   sync.Mutex
}

// HandleSealed opens one sealed image batch, serves every row through the
// admission queue concurrently (rows from one client frame ride in
// whatever virtual batches the batcher forms, alongside other clients'
// rows), and returns the sealed prediction vector. Labels in the request
// frame are ignored — inference clients send -1.
func (c *Conn) HandleSealed(ctx context.Context, blob []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	batch, err := c.sess.OpenBatch(blob)
	if err != nil {
		return nil, err
	}
	preds := make([]int, len(batch))
	errs := make([]error, len(batch))
	var wg sync.WaitGroup
	for i, ex := range batch {
		wg.Add(1)
		go func(i int, img []float64) {
			defer wg.Done()
			preds[i], errs[i] = c.f.srv.Infer(ctx, img)
		}(i, ex.Image)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("serve: row %d: %w", i, err)
		}
	}
	return c.sess.SealPredictions(preds)
}
