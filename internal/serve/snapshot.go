package serve

import (
	"time"

	"darknight/internal/obs"
	"darknight/internal/sched"
)

// CaptureSnapshot assembles the serving layers' sections of a state
// snapshot: coding geometry, serve occupancy, the fleet's health and
// lane state (captured under the fleet lock, so its grant counts and
// lease flags are mutually consistent), the completed-batch log and the
// flight-recorder window. The model and cluster sections are the
// facade's to fill — serve has no knowledge of device composition.
// Requires an attached observability stack (Config.Obs != nil).
func (s *Server) CaptureSnapshot() *obs.Snapshot {
	var sc sched.Config
	if len(s.workers) > 0 {
		sc = s.workers[0].Config()
	} else {
		sc = s.pipes[0].Config()
	}
	snap := &obs.Snapshot{Version: obs.SnapshotVersion, CapturedAt: time.Now()}
	snap.Sched = obs.SchedInfo{
		K:              sc.VirtualBatch,
		Collusion:      sc.Collusion,
		Redundancy:     sc.Redundancy,
		StragglerSlack: sc.StragglerSlack,
		FuseBlocks:     sc.FuseBlocks,
		FracBits:       sc.FracBits,
		NormLimit:      sc.NormLimit,
		Seed:           sc.Seed,
	}
	snap.Serving = obs.ServingInfo{
		Workers:       len(s.workers) + len(s.pipes),
		PipelineDepth: s.cfg.PipelineDepth,
		Continuous:    s.cfg.Continuous,
		Recover:       s.cfg.Recover,
		QueueDepthCfg: cap(s.admit),
		MaxWaitNs:     int64(s.cfg.MaxWait),
	}
	s.metrics.snapshotInto(&snap.Serving)
	s.fleet.SnapshotInto(&snap.Fleet)
	snap.Batches, snap.BatchesDropped = s.batchlog.dump()
	snap.Events = s.obs.Recorder.Dump()
	if len(snap.Events) > 0 {
		// Derived from the same dump rather than a second recorder read,
		// so the dropped count is consistent with the window it describes.
		snap.EventsDropped = snap.Events[0].Seq - 1
	}
	return snap
}

// SLO returns the tracker built from Config.SLO (nil when observability
// is off or no objectives were configured).
func (s *Server) SLO() *obs.SLOTracker { return s.metrics.slo }
