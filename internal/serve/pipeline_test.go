package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// pipelinedServer stands up a PipelineDepth-2 server over `gangs` full
// gangs of devices (optionally all slowed by delay) and returns it with
// its fleet manager.
func pipelinedServer(t *testing.T, workers, k, e, gangs int, delay time.Duration, extra func(*Config)) *Server {
	t.Helper()
	gang := k + 1 + e
	devs := make([]gpu.Device, gangs*gang)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if delay > 0 {
			devs[i] = gpu.NewSlow(devs[i], delay)
		}
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
	cfg := Config{
		Sched:         sched.Config{VirtualBatch: k, Redundancy: e, Seed: 7},
		MaxWait:       time.Millisecond,
		PipelineDepth: 2,
	}
	if extra != nil {
		extra(&cfg)
	}
	srv, err := New(cfg, replicas(workers, 7), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestPipelinedServingMatchesFloat drives concurrent traffic through a
// pipelined server and checks every answer against the plaintext float
// reference — the serving-level restatement of the bit-identical
// equivalence the sched tests pin — plus the pipeline-specific metrics:
// busy wall-clock recorded, noise served from the precompute pool.
func TestPipelinedServingMatchesFloat(t *testing.T) {
	const (
		k        = 4
		requests = 64
	)
	srv := pipelinedServer(t, 2, k, 0, 4, 0, nil)
	imgs := sampleImages(requests, 8)
	preds := make([]int, requests)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := srv.Infer(context.Background(), imgs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			preds[i] = p
		}(i)
	}
	wg.Wait()
	snap := srv.Metrics()
	srv.Close()

	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(7)))
	for i, img := range imgs {
		if want := nn.Argmax(ref.Forward(img, false)); preds[i] != want {
			t.Errorf("image %d: served %d, float %d", i, preds[i], want)
		}
	}
	if snap.Completed != requests || snap.Failed != 0 {
		t.Fatalf("completed %d failed %d, want %d/0", snap.Completed, snap.Failed, requests)
	}
	if snap.Phases.Wall == 0 {
		t.Fatalf("pipelined serving recorded no busy wall-clock: %+v", snap.Phases)
	}
	if snap.NoisePool.Hits == 0 {
		t.Fatalf("noise pool never hit: %+v", snap.NoisePool)
	}
	t.Logf("overlap %.2f, pool hit rate %.2f (%d hits / %d misses)",
		snap.Overlap, snap.NoisePool.HitRate(), snap.NoisePool.Hits, snap.NoisePool.Misses)
}

// TestPipelinedServingQuarantinesCulprit checks the fault-sensor duties
// survive the move to tickets: a persistently tampering device poisons a
// batch, the E=2 redundancy attributes it through the pipelined decode,
// recovery masks the fault from clients, and the fleet quarantines the
// culprit.
func TestPipelinedServingQuarantinesCulprit(t *testing.T) {
	const (
		k        = 2
		e        = 2
		requests = 48
	)
	gang := k + 1 + e
	devs := make([]gpu.Device, 2*gang)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	devs[1] = gpu.NewMalicious(devs[1], gpu.FaultPolicy{EveryNth: 1})
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{ProbationProbability: -1})
	srv, err := New(Config{
		Sched:         sched.Config{VirtualBatch: k, Redundancy: e, Seed: 7},
		MaxWait:       time.Millisecond,
		PipelineDepth: 2,
		Recover:       true,
	}, replicas(1, 7), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	imgs := sampleImages(requests, 9)
	var wg sync.WaitGroup
	var failed sync.Map
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
				failed.Store(i, err)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Fleet().Stats()
	srv.Close()

	failed.Range(func(key, value any) bool {
		t.Errorf("request %v failed despite recovery: %v", key, value)
		return true
	})
	if st.Quarantined == 0 {
		t.Fatalf("tampering device never quarantined: %+v", st)
	}
	for _, d := range st.Devices {
		if d.ID == 1 && d.State.String() != "quarantined" {
			t.Fatalf("device 1 is %s, want quarantined", d.State)
		}
	}
}

// TestPipelinedServingOverlapsUnderLatency welds per-dispatch device
// latency into every gang and checks the pipelined server actually
// overlaps: with depth 2 and two gangs per worker, the measured overlap
// ratio must clear 1 (phase time accumulated faster than the wall moved).
func TestPipelinedServingOverlapsUnderLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const (
		k        = 2
		requests = 32
	)
	srv := pipelinedServer(t, 1, k, 0, 2, time.Millisecond, func(c *Config) {
		c.MaxWait = 500 * time.Microsecond
	})
	imgs := sampleImages(requests, 10)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < requests; i += 8 {
				if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
					t.Errorf("request %d: %v", i, err)
				}
			}
		}(c)
	}
	wg.Wait()
	snap := srv.Metrics()
	srv.Close()
	if snap.Overlap <= 1.0 {
		t.Fatalf("overlap ratio %.2f, want > 1 with 1ms device latency and depth 2", snap.Overlap)
	}
	t.Logf("overlap ratio %.2f over %d offloads (dispatch %v of wall %v)",
		snap.Overlap, snap.Phases.Offloads, snap.Phases.Dispatch, snap.Phases.Wall)
}
