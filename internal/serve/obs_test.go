package serve

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/obs"
	"darknight/internal/sched"
)

// validateTraces asserts every retained trace is a well-formed tree —
// request→admit on all, and on each batch leader seal + batch →
// grant/offload → encode/dispatch/decode with the right parents and
// annotations, every span ended — and returns (leader count, count of
// offloads whose dispatch carries the quorum annotation).
func validateTraces(t *testing.T, traces []*obs.Span) (leaders, quorums int) {
	t.Helper()
	for _, root := range traces {
		if root.Name() != "request" {
			t.Fatalf("root span named %q", root.Name())
		}
		root.Walk(func(sp *obs.Span) {
			if !sp.Ended() {
				t.Fatalf("span %q left open in a completed trace", sp.Name())
			}
		})
		admit := root.Find("admit")
		if admit == nil || admit.Parent() != root {
			t.Fatalf("admit span missing or misparented:\n%s", root.RenderString())
		}
		batch := root.Find("batch")
		if batch == nil {
			continue // rider on another leader's batch: request+admit only
		}
		leaders++
		if batch.Parent() != root {
			t.Fatalf("batch parented to %q", batch.Parent().Name())
		}
		if seal := root.Find("seal"); seal == nil || seal.Parent() != root {
			t.Fatalf("leader trace missing seal:\n%s", root.RenderString())
		}
		for _, key := range []string{"tenant", "rows", "gang", "lane"} {
			if batch.Attr(key) == "" {
				t.Fatalf("batch span missing %q annotation:\n%s", key, root.RenderString())
			}
		}
		if g := batch.Find("grant"); g == nil || g.Parent() != batch {
			t.Fatalf("grant span missing under batch:\n%s", root.RenderString())
		}
		offloads := batch.FindAll("offload")
		if len(offloads) == 0 {
			t.Fatalf("no offload spans under batch:\n%s", root.RenderString())
		}
		for _, off := range offloads {
			if off.Parent() != batch {
				t.Fatalf("offload parented to %q", off.Parent().Name())
			}
			for _, phase := range []string{"encode", "dispatch", "decode"} {
				ph := off.Find(phase)
				if ph == nil || ph.Parent() != off {
					t.Fatalf("offload missing %s child:\n%s", phase, root.RenderString())
				}
			}
			if off.Find("dispatch").Attr("quorum") != "" {
				quorums++
			}
		}
	}
	if leaders == 0 {
		t.Fatal("no trace carries a batch subtree")
	}
	return leaders, quorums
}

// tracedRun drives requests concurrently through a pipelined traced
// server and returns the observability bundle for inspection. Run under
// -race this proves the span handoff across client → batcher → worker →
// lane goroutines is clean.
func tracedRun(t *testing.T, devs []gpu.Device, scfg sched.Config, recover bool, requests int) *obs.Observability {
	t.Helper()
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{ProbationProbability: -1})
	ob := obs.New(obs.Options{TraceSample: 1, TraceKeep: 2 * requests, RecorderSize: 512, Seed: 5})
	srv, err := New(Config{
		Sched:         scfg,
		MaxWait:       time.Millisecond,
		PipelineDepth: 2,
		Recover:       recover,
		Obs:           ob,
	}, replicas(1, scfg.Seed), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	imgs := sampleImages(requests, scfg.Seed+1)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()

	traces := ob.Tracer.Recent()
	if len(traces) == 0 {
		t.Fatal("no traces retained at 100% sampling")
	}
	_, sampled, completed := ob.Tracer.Counts()
	if sampled != int64(requests) || completed != int64(requests) {
		t.Fatalf("sampled %d / completed %d traces, want %d", sampled, completed, requests)
	}
	return ob
}

// TestTracePropagationQuorum: pipelined depth-2 serving with a
// deterministic straggler and StragglerSlack 1 — every span tree is
// complete and correctly parented, and the early quorum decode shows up
// as dispatch-span annotations.
func TestTracePropagationQuorum(t *testing.T) {
	const (
		k        = 2
		e        = 2
		requests = 24
	)
	gang := k + 1 + e
	devs := make([]gpu.Device, 2*gang)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	devs[3] = gpu.NewSlow(devs[3], 10*time.Millisecond)

	ob := tracedRun(t, devs,
		sched.Config{VirtualBatch: k, Redundancy: e, StragglerSlack: 1, Seed: 5},
		false, requests)

	_, quorums := validateTraces(t, ob.Tracer.Recent())
	if quorums == 0 {
		t.Fatal("no dispatch span carries the quorum annotation despite StragglerSlack=1")
	}
	kinds := map[string]bool{}
	for _, ev := range ob.Recorder.Dump() {
		kinds[ev.Kind] = true
	}
	if !kinds[obs.KindGrant] || !kinds[obs.KindRelease] {
		t.Fatalf("flight recorder missing grant/release events (saw %v)", kinds)
	}
}

// TestTracePropagationMidFlightQuarantine: a persistent tamperer inside a
// pipelined traced run — recovery masks the fault, the device is
// quarantined mid-flight, and the traces stay well formed while the
// flight recorder captures the grant→integrity→quarantine story.
func TestTracePropagationMidFlightQuarantine(t *testing.T) {
	const (
		k        = 2
		e        = 2
		requests = 24
	)
	gang := k + 1 + e
	devs := make([]gpu.Device, 2*gang+1)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	devs[1] = gpu.NewMalicious(devs[1], gpu.FaultPolicy{EveryNth: 1})

	ob := tracedRun(t, devs,
		sched.Config{VirtualBatch: k, Redundancy: e, Seed: 7},
		true, requests)

	validateTraces(t, ob.Tracer.Recent())
	kinds := map[string]bool{}
	quarantined := false
	for _, ev := range ob.Recorder.Dump() {
		kinds[ev.Kind] = true
		if ev.Kind == obs.KindQuarantine && ev.Device == 1 {
			quarantined = true
		}
	}
	for _, want := range []string{obs.KindGrant, obs.KindRelease, obs.KindIntegrity, obs.KindQuarantine} {
		if !kinds[want] {
			t.Fatalf("flight recorder missing %q events (saw %v)", want, kinds)
		}
	}
	if !quarantined {
		t.Fatal("no quarantine event attributed to the tampering device")
	}
}

// TestServeMetricsRegistryScrape: the registry's Prometheus exposition
// must parse and agree with the serving snapshot.
func TestServeMetricsRegistryScrape(t *testing.T) {
	const (
		k        = 4
		requests = 32
	)
	fm := fleet.NewManager(gpu.NewHonestCluster(2*(k+1)), fleet.Config{})
	ob := obs.New(obs.Options{Seed: 1})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 3},
		MaxWait: 5 * time.Millisecond,
		Obs:     ob,
	}, replicas(2, 3), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	imgs := sampleImages(requests, 4)
	var wg sync.WaitGroup
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.InferTenant(context.Background(), "gold", imgs[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	snap := srv.Metrics()
	var b strings.Builder
	if err := ob.Registry.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	parsed, err := obs.ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, b.String())
	}
	if got := parsed["darknight_requests_completed_total"]; got != float64(snap.Completed) {
		t.Fatalf("completed_total = %v, snapshot %d", got, snap.Completed)
	}
	if got := parsed["darknight_batches_total"]; got != float64(snap.Batches) {
		t.Fatalf("batches_total = %v, snapshot %d", got, snap.Batches)
	}
	if got := parsed[`darknight_batch_rows_total{kind="real"}`]; got != float64(snap.RealRows) {
		t.Fatalf("real rows = %v, snapshot %d", got, snap.RealRows)
	}
	if got := parsed[`darknight_tenant_requests_total{outcome="completed",tenant="gold"}`]; got != float64(snap.Completed) {
		t.Fatalf("tenant completed = %v, snapshot %d", got, snap.Completed)
	}
	if got := parsed[`darknight_fleet_devices{state="healthy"}`]; got != float64(2*(k+1)) {
		t.Fatalf("healthy devices = %v, want %d", got, 2*(k+1))
	}
	if parsed[`darknight_request_latency_seconds{quantile="0.99"}`] <= 0 {
		t.Fatal("p99 latency not exported")
	}
}

// TestQuantilePartialWindow pins the nearest-rank quantile on small
// samples: before the fix, P99 over a two-element window indexed
// sorted[1*99/100] = sorted[0] (the minimum) and P50 overshot the median.
func TestQuantilePartialWindow(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	cases := []struct {
		sorted   []time.Duration
		p50, p99 time.Duration
	}{
		{nil, 0, 0},
		{[]time.Duration{ms(10)}, ms(10), ms(10)},
		{[]time.Duration{ms(10), ms(20)}, ms(10), ms(20)},
		{[]time.Duration{ms(10), ms(20), ms(30)}, ms(20), ms(30)},
	}
	for _, c := range cases {
		if got := quantile(c.sorted, 0.50); got != c.p50 {
			t.Errorf("p50 of %v = %v, want %v", c.sorted, got, c.p50)
		}
		if got := quantile(c.sorted, 0.99); got != c.p99 {
			t.Errorf("p99 of %v = %v, want %v", c.sorted, got, c.p99)
		}
	}
	// 1..100: the nearest-rank P99 is the 99th value, not the maximum.
	seq := make([]time.Duration, 100)
	for i := range seq {
		seq[i] = ms(i + 1)
	}
	if got := quantile(seq, 0.99); got != ms(99) {
		t.Errorf("p99 of 1..100 = %v, want 99ms", got)
	}
	if got := quantile(seq, 0.50); got != ms(50) {
		t.Errorf("p50 of 1..100 = %v, want 50ms", got)
	}

	// The Metrics wrapper sees the same values through the ring.
	m := newMetrics(2)
	m.lat = []time.Duration{ms(30), ms(10)}
	p50, p99 := m.quantiles()
	if p50 != ms(10) || p99 != ms(30) {
		t.Fatalf("Metrics.quantiles = %v/%v, want 10ms/30ms", p50, p99)
	}
}
