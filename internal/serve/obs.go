package serve

import (
	"darknight/internal/masking"
	"darknight/internal/obs"
)

// registerMetrics registers the serving series into the registry. Every
// series is a scrape-time closure over the Metrics counters — nothing is
// added to the request hot path. The fleet's series register separately
// (fleet.Manager.RegisterMetrics); together they are the /metrics surface.
func (s *Server) registerMetrics(r *obs.Registry) {
	m := s.metrics
	lockedInt := func(fn func() int64) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(fn())
		}
	}
	r.CounterFunc("darknight_requests_completed_total",
		"Requests answered successfully.",
		lockedInt(func() int64 { return m.completed }))
	r.CounterFunc("darknight_requests_failed_total",
		"Requests answered with an error.",
		lockedInt(func() int64 { return m.failed }))
	r.CounterFunc("darknight_requests_integrity_failures_total",
		"Failed requests caused by tampered GPU results.",
		lockedInt(func() int64 { return m.integrity }))
	r.CounterFunc("darknight_batches_total",
		"Virtual batches dispatched.",
		lockedInt(func() int64 { return m.batches }))
	r.GaugeFunc("darknight_queue_depth",
		"Admitted requests not yet dispatched.",
		lockedInt(func() int64 { return int64(m.depth) }))
	r.GaugeFunc("darknight_batch_occupancy",
		"Mean fraction of real rows per dispatched batch.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.batches == 0 {
				return 0
			}
			return float64(m.realRows) / float64(m.batches*int64(m.k))
		})
	r.SampleFunc("darknight_batch_rows_total",
		"Rows dispatched across all batches, by kind.", "counter",
		func() []obs.Sample {
			m.mu.Lock()
			rr, pr := m.realRows, m.padRows
			m.mu.Unlock()
			return []obs.Sample{
				{Labels: map[string]string{"kind": "real"}, Value: float64(rr)},
				{Labels: map[string]string{"kind": "padded"}, Value: float64(pr)},
			}
		})
	r.SampleFunc("darknight_request_latency_seconds",
		"Request latency quantiles over the recent completion window.", "gauge",
		func() []obs.Sample {
			p50, p99 := m.quantiles()
			return []obs.Sample{
				{Labels: map[string]string{"quantile": "0.5"}, Value: p50.Seconds()},
				{Labels: map[string]string{"quantile": "0.99"}, Value: p99.Seconds()},
			}
		})
	r.SampleFunc("darknight_tee_phase_seconds_total",
		"Cumulative TEE-side time by phase across all workers' offloads.", "counter",
		func() []obs.Sample {
			m.mu.Lock()
			ph := m.phase
			m.mu.Unlock()
			return []obs.Sample{
				{Labels: map[string]string{"phase": "encode"}, Value: ph.Encode.Seconds()},
				{Labels: map[string]string{"phase": "dispatch"}, Value: ph.Dispatch.Seconds()},
				{Labels: map[string]string{"phase": "decode"}, Value: ph.Decode.Seconds()},
				{Labels: map[string]string{"phase": "wall"}, Value: ph.Wall.Seconds()},
			}
		})
	r.CounterFunc("darknight_tee_offloads_total",
		"Bilinear-layer offload dispatches measured by the phase breakdown.",
		lockedInt(func() int64 { return m.phase.Offloads }))
	r.CounterFunc("darknight_offload_flights_total",
		"Gang flights dispatched (a fused block carries several offloads per flight).",
		lockedInt(func() int64 { return m.phase.Flights }))
	r.SampleFunc("darknight_fused_block_size",
		"Fused-block flight accounting: flights, the layers they carried, and the mean fused depth.", "gauge",
		func() []obs.Sample {
			m.mu.Lock()
			blocks, layers := m.phase.FusedBlocks, m.phase.FusedLayers
			m.mu.Unlock()
			mean := 0.0
			if blocks > 0 {
				mean = float64(layers) / float64(blocks)
			}
			return []obs.Sample{
				{Labels: map[string]string{"stat": "blocks"}, Value: float64(blocks)},
				{Labels: map[string]string{"stat": "layers"}, Value: float64(layers)},
				{Labels: map[string]string{"stat": "mean_depth"}, Value: mean},
			}
		})
	r.CounterFunc("darknight_continuous_admits_total",
		"Requests admitted into an already-flushed batch in place of a pad row.",
		lockedInt(func() int64 { return m.continuous }))
	r.CounterFunc("darknight_noisepool_hits_total",
		"Encodes served from precomputed noise material.",
		func() float64 { return float64(s.poolStats().Hits) })
	r.CounterFunc("darknight_noisepool_misses_total",
		"Encodes that found the noise ring empty and drew inline.",
		func() float64 { return float64(s.poolStats().Misses) })
	r.GaugeFunc("darknight_noisepool_fallbacks",
		"Current count of inline-RNG fallbacks — nonzero and growing means the pool is undersized.",
		func() float64 { return float64(s.poolStats().Misses) })
	// Live histogram instruments (not scrape-time closures): the hot path
	// pays one atomic bucket increment plus a short ring append per
	// observation — the cost the PR 8 overhead gate bounds by pairing
	// against Config.NoHistograms (nil vecs are inert).
	if !s.cfg.NoHistograms {
		m.latHist = r.HistogramVec("darknight_request_latency_hist_seconds",
			"Per-tenant end-to-end request latency (log buckets, exact ring quantiles).",
			"tenant", obs.LatencyBuckets())
		m.phaseHist = r.HistogramVec("darknight_tee_phase_latency_seconds",
			"Per-batch TEE-side time by phase (encode/dispatch/decode).",
			"phase", obs.LatencyBuckets())
	}
	r.SampleFunc("darknight_tenant_requests_total",
		"Per-tenant request outcomes.", "counter",
		func() []obs.Sample {
			m.mu.Lock()
			defer m.mu.Unlock()
			out := make([]obs.Sample, 0, 2*len(m.tenants))
			for name, tc := range m.tenants {
				out = append(out,
					obs.Sample{Labels: map[string]string{"tenant": name, "outcome": "completed"}, Value: float64(tc.completed)},
					obs.Sample{Labels: map[string]string{"tenant": name, "outcome": "failed"}, Value: float64(tc.failed)},
				)
			}
			return out
		})
}

// poolStats aggregates the workers' noise-pool counters (pipeline mode
// only; serial workers run without pools).
func (s *Server) poolStats() masking.NoisePoolStats {
	var st masking.NoisePoolStats
	for _, p := range s.pipes {
		ps := p.PoolStats()
		st.Hits += ps.Hits
		st.Misses += ps.Misses
		st.Refills += ps.Refills
	}
	return st
}
