package serve

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/resil"
	"darknight/internal/sched"
)

// TestExpiredContextNeverDispatched: a request whose deadline has already
// passed must fail promptly with context.DeadlineExceeded and never reach
// a gang.
func TestExpiredContextNeverDispatched(t *testing.T) {
	const k = 4
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 11},
		MaxWait: 500 * time.Millisecond,
	}, replicas(1, 11), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The deadline is comfortably after admission but far before MaxWait:
	// the row is admitted, then expires waiting for K-1 peers. The batcher
	// flushes it at the deadline and the worker must prune, not dispatch.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = srv.Infer(ctx, sampleImages(1, 12)[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request returned %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 250*time.Millisecond {
		t.Errorf("expired request took %v, want prompt failure", el)
	}

	// The worker must prune the expired row instead of dispatching it.
	deadline := time.After(3 * time.Second)
	for srv.ResilCounters().Deadline.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("pruned-deadline counter never moved")
		default:
			time.Sleep(2 * time.Millisecond)
		}
	}
	if got := srv.Metrics().Completed; got != 0 {
		t.Errorf("expired request was dispatched and completed (%d)", got)
	}
}

// TestBudgetBoundsBatchWait: with a default deadline budget, a lone
// request must not sit out the full MaxWait — the batch phase gets only
// its budget share.
func TestBudgetBoundsBatchWait(t *testing.T) {
	const k = 4
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 13},
		MaxWait: 2 * time.Second,
		Resil:   resil.Config{Budget: resil.BudgetPolicy{Default: 100 * time.Millisecond}},
	}, replicas(1, 13), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	start := time.Now()
	_, err = srv.Infer(context.Background(), sampleImages(1, 14)[0])
	el := time.Since(start)
	// Either the padded batch made it inside the budget or it was failed
	// with the typed deadline error — both honor the budget; waiting the
	// full 2s MaxWait does not.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("budgeted request returned %v", err)
	}
	if el > time.Second {
		t.Errorf("budgeted request took %v, budget was 100ms", el)
	}
}

// TestShedTypedError: once the admission queue reaches the tenant's
// allowance, further requests fail fast with resil.ErrShed.
func TestShedTypedError(t *testing.T) {
	const k = 4
	fm := fleet.NewManager(gpu.NewHonestCluster(k+1), fleet.Config{})
	srv, err := New(Config{
		Sched:      sched.Config{VirtualBatch: k, Seed: 17},
		QueueDepth: 16,
		MaxWait:    400 * time.Millisecond,
		Resil:      resil.Config{Shed: resil.ShedPolicy{MaxQueue: 2}},
	}, replicas(1, 17), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(3, 18)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// These park in the batcher waiting for peers; errors (none
			// expected) are irrelevant to the shed assertion.
			srv.Infer(context.Background(), imgs[i])
		}(i)
	}
	// Wait until both requests are visibly queued.
	deadline := time.After(3 * time.Second)
	for srv.metrics.queueDepth() < 2 {
		select {
		case <-deadline:
			t.Fatal("queue depth never reached 2")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	_, err = srv.Infer(context.Background(), imgs[2])
	if !errors.Is(err, resil.ErrShed) {
		t.Fatalf("overloaded request returned %v, want ErrShed", err)
	}
	if got := srv.ResilCounters().Shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	wg.Wait()
	srv.Close()
}

// tamperedFleet builds a manager over gang+spares honest devices with one
// always-tampering device, instant quarantine, no probation.
func tamperedFleet(gang, spares, bad int) *fleet.Manager {
	devs := make([]gpu.Device, gang+spares)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	return fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{ProbationProbability: -1})
}

// TestRetryRecoversTamperedBatch: without Recover a tampered batch is a
// client-visible integrity error — unless retry re-dispatches it onto a
// fresh gang after the culprit is quarantined. The client must see a clean
// answer and the counters must show the retry.
func TestRetryRecoversTamperedBatch(t *testing.T) {
	const (
		k    = 2
		gang = k + 1 + 2 // M=1, E=2: exact attribution on the first batch
		bad  = 1
	)
	fm := tamperedFleet(gang, 2, bad)
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 2, Seed: 19},
		MaxWait: time.Millisecond,
		Resil:   resil.Config{Retry: resil.RetryPolicy{Max: 2}},
	}, replicas(1, 19), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(8, 20)
	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(19)))
	for i, img := range imgs {
		got, err := srv.Infer(context.Background(), img)
		if err != nil {
			t.Fatalf("request %d failed despite retry: %v", i, err)
		}
		if want := nn.Argmax(ref.Forward(img, false)); got != want {
			t.Errorf("request %d: retried answer %d, float %d", i, got, want)
		}
	}

	rc := srv.ResilCounters()
	if rc.Retries.Load() == 0 || rc.RetrySuccess.Load() == 0 {
		t.Errorf("retry counters: retries=%d success=%d, want both > 0",
			rc.Retries.Load(), rc.RetrySuccess.Load())
	}
	if got := fm.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
	snap := srv.Metrics()
	if snap.Failed != 0 {
		t.Errorf("client-visible failures = %d, want 0", snap.Failed)
	}
}

// TestPipelineRetryRecovers exercises the overlapped engine's resubmission
// path: a tampered in-flight batch is re-encoded onto a fresh gang.
func TestPipelineRetryRecovers(t *testing.T) {
	const (
		k    = 2
		gang = k + 1 + 2
		bad  = 2
	)
	fm := tamperedFleet(gang, gang+2, bad) // enough spares for two overlapped gangs
	srv, err := New(Config{
		Sched:         sched.Config{VirtualBatch: k, Redundancy: 2, Seed: 23},
		MaxWait:       time.Millisecond,
		PipelineDepth: 2,
		Resil:         resil.Config{Retry: resil.RetryPolicy{Max: 2}},
	}, replicas(1, 23), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(12, 24)
	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(23)))
	var wg sync.WaitGroup
	errs := make([]error, len(imgs))
	preds := make([]int, len(imgs))
	for i := range imgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			preds[i], errs[i] = srv.Infer(context.Background(), imgs[i])
		}(i)
	}
	wg.Wait()
	for i := range imgs {
		if errs[i] != nil {
			t.Fatalf("pipelined request %d failed despite retry: %v", i, errs[i])
		}
		if want := nn.Argmax(ref.Forward(imgs[i], false)); preds[i] != want {
			t.Errorf("pipelined request %d: %d, float %d", i, preds[i], want)
		}
	}
	rc := srv.ResilCounters()
	if rc.Retries.Load() == 0 {
		t.Error("pipeline retry counter never moved")
	}
	if got := fm.Stats().Quarantined; got != 1 {
		t.Errorf("quarantined = %d, want 1", got)
	}
}

// TestHedgeBitIdentityNoLeaks forces aggressive hedging and checks the
// three hedging invariants: every answer is bit-identical to the float
// reference (cross-verification never trips), the counters reconcile, and
// neither gang leases nor goroutines leak once the load drains.
func TestHedgeBitIdentityNoLeaks(t *testing.T) {
	const (
		k        = 2
		gangSize = k + 1
		requests = 48
	)
	baseline := runtime.NumGoroutine()

	fm := fleet.NewManager(gpu.NewHonestCluster(2*gangSize), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 29},
		MaxWait: time.Millisecond,
		Resil: resil.Config{Hedge: resil.HedgePolicy{
			Enabled: true, Quantile: 0.01, Min: time.Nanosecond, Warmup: 1,
		}},
		HedgeModels: replicas(1, 29),
	}, replicas(1, 29), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(requests, 30)
	ref := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(29)))
	for i, img := range imgs {
		got, err := srv.Infer(context.Background(), img)
		if err != nil {
			t.Fatalf("hedged request %d: %v", i, err)
		}
		if want := nn.Argmax(ref.Forward(img, false)); got != want {
			t.Errorf("hedged request %d: %d, float %d", i, got, want)
		}
	}

	// The client is answered before the losing flight settles, so wait for
	// the worker to finish classifying the final hedge before asserting.
	rc := srv.ResilCounters()
	settleBy := time.After(5 * time.Second)
	for rc.HedgeWins.Load()+rc.HedgeLosses.Load() != rc.Hedges.Load() {
		select {
		case <-settleBy:
			t.Fatalf("hedge accounting never settled: %d hedges, %d wins + %d losses",
				rc.Hedges.Load(), rc.HedgeWins.Load(), rc.HedgeLosses.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if rc.Hedges.Load() == 0 {
		t.Fatal("aggressive hedge policy never hedged")
	}
	if rc.HedgeMismatch.Load() != 0 {
		t.Fatalf("hedge cross-verification tripped %d times on an honest fleet",
			rc.HedgeMismatch.Load())
	}

	// No leaked leases: once the flights settle, both full gangs must be
	// acquirable (brief retry: the last settle releases just after the
	// counters move).
	var grants []*fleet.Grant
	leaseBy := time.After(5 * time.Second)
	for len(grants) < 2 {
		g, err := fm.TryAcquire("leakcheck", gangSize)
		if err != nil {
			t.Fatalf("gang acquisition failed: %v", err)
		}
		if g != nil {
			grants = append(grants, g)
			continue
		}
		select {
		case <-leaseBy:
			t.Fatalf("only %d of 2 gangs acquirable after drain — leaked lease", len(grants))
		default:
			time.Sleep(time.Millisecond)
		}
	}
	for _, g := range grants {
		g.Release()
	}

	// No leaked goroutines: after Close the count returns to the baseline
	// (slack for runtime helpers and test plumbing).
	srv.Close()
	deadline := time.After(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+5 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("goroutines leaked: %d now vs %d baseline", runtime.NumGoroutine(), baseline)
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestBrownoutActuators drives the level transitions directly and checks
// each actuator: flush window, shed factor, hedge gate, pipeline depth.
func TestBrownoutActuators(t *testing.T) {
	const k = 2
	fm := fleet.NewManager(gpu.NewHonestCluster(2*(k+1)), fleet.Config{})
	srv, err := New(Config{
		Sched:         sched.Config{VirtualBatch: k, Seed: 31},
		MaxWait:       100 * time.Millisecond,
		PipelineDepth: 4,
		Resil: resil.Config{
			Shed: resil.ShedPolicy{MaxQueue: 8},
		},
	}, replicas(1, 31), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if got := srv.effMaxWait(); got != 100*time.Millisecond {
		t.Fatalf("clean effMaxWait = %v", got)
	}
	srv.applyBrownout(1)
	if got := srv.effMaxWait(); got != 50*time.Millisecond {
		t.Errorf("level-1 effMaxWait = %v, want 50ms", got)
	}
	srv.applyBrownout(3)
	if got := srv.effMaxWait(); got != 25*time.Millisecond {
		t.Errorf("level-3 effMaxWait = %v, want 25ms", got)
	}
	if got := srv.depthLimit.Load(); got != 1 {
		t.Errorf("level-3 depth limit = %d, want 1", got)
	}
	srv.applyBrownout(0)
	if got := srv.effMaxWait(); got != 100*time.Millisecond {
		t.Errorf("restored effMaxWait = %v", got)
	}
	if got := srv.depthLimit.Load(); got != 0 {
		t.Errorf("restored depth limit = %d", got)
	}
}

// TestResilConfigRejections: invalid resilience configurations fail at
// construction, not at serving time.
func TestResilConfigRejections(t *testing.T) {
	const k = 2
	mk := func(cfg Config) error {
		fm := fleet.NewManager(gpu.NewHonestCluster(2*(k+1)), fleet.Config{})
		cfg.Sched = sched.Config{VirtualBatch: k, Seed: 37}
		srv, err := New(cfg, replicas(1, 37), fm, nil)
		if err == nil {
			srv.Close()
		}
		return err
	}
	if err := mk(Config{
		PipelineDepth: 2,
		Resil:         resil.Config{Hedge: resil.HedgePolicy{Enabled: true}},
		HedgeModels:   replicas(1, 37),
	}); err == nil {
		t.Error("hedging with a pipelined engine was accepted")
	}
	if err := mk(Config{
		Resil: resil.Config{Hedge: resil.HedgePolicy{Enabled: true}},
	}); err == nil {
		t.Error("hedging without hedge models was accepted")
	}
	if err := mk(Config{
		Resil: resil.Config{Brownout: resil.BrownoutPolicy{Enabled: true}},
	}); err == nil {
		t.Error("brownout without SLO objectives was accepted")
	}
}
