// Package serve turns the DarKnight pipeline into a concurrent
// private-inference service. The paper's TEE *must* code K inputs together
// before every GPU offload (§3.1), which makes dynamic batching the natural
// serving primitive rather than an optimization: independent clients'
// requests are coalesced into virtual batches of exactly K, and when a
// request's deadline expires before K real rows arrive, the batch is padded
// with uniform-noise dummy rows — privacy-neutral, since the masking code
// mixes every row with uniform noise anyway and dummy outputs are simply
// dropped.
//
// The moving parts:
//
//   - an admission queue (Server.Infer / Server.InferTenant) accepting
//     single-image requests with deadlines, tagged with a tenant;
//   - a dynamic batcher goroutine coalescing them into per-tenant virtual
//     batches (tenants are never coded together: each batch is charged to
//     one fair-share account);
//   - a worker pool where each worker owns a forward-only pipeline
//     (sched.Inferencer) over a private model replica and gang-acquires
//     K+M+E devices per batch from the shared fleet.Manager — all-or-none
//     under fair-share arbitration;
//   - the fleet layer: device health tracking, quarantine of tampering
//     GPUs (attributed via the redundant decoding), straggler-tolerant
//     quorum dispatch and speculative re-dispatch (internal/fleet);
//   - metrics: throughput, latency quantiles, queue depth, occupancy,
//     per-tenant usage and the fleet health snapshot.
//
// Integrity faults (a tampering GPU caught by the redundant decoding)
// surface as per-request errors wrapping masking.ErrIntegrity — unless
// Recover is enabled (Redundancy >= 2), in which case the batch is decoded
// from the clean equations and only the culprit device pays.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/fleet"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/resil"
	"darknight/internal/sched"
)

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrBadImage is returned when a request's image does not match the model
// input geometry.
var ErrBadImage = errors.New("serve: image does not match model input shape")

// DefaultTenant is the tenant requests are charged to when the caller does
// not name one.
const DefaultTenant = "default"

// Config tunes the serving layer. The privacy/integrity operating point
// lives in Sched; fleet health/fairness knobs live on the fleet.Manager.
type Config struct {
	// Sched is the pipeline operating point (K, M, E, quantization,
	// straggler slack, seed). VirtualBatch must be >= 1.
	Sched sched.Config
	// QueueDepth bounds the admission queue; Infer blocks (or honors its
	// context) when the queue is full. 0 picks 4·K.
	QueueDepth int
	// MaxWait bounds how long an admitted request may wait for K-1 peers
	// before the batcher flushes a padded partial batch. A request context
	// with an earlier deadline shortens the wait for its batch. <= 0
	// flushes immediately (every batch carries exactly one real row).
	MaxWait time.Duration
	// Recover enables audit-and-recover on integrity violations: tampered
	// batches are decoded from the clean equations instead of failing, and
	// the attributed culprit is quarantined. Requires Sched.Redundancy >= 2.
	Recover bool
	// PipelineDepth >= 2 switches every worker to the overlapped execution
	// engine: up to that many virtual batches ride the
	// encode→dispatch→decode stages at once (each under its own gang
	// grant), with noise pre-drawn by a background pool, so the TEE and the
	// GPUs stay busy simultaneously. <= 1 keeps the serial engine. Outputs
	// are bit-identical either way (exact decoding over F_p).
	PipelineDepth int
	// Continuous enables continuous batching: a flushed padded batch that
	// no worker has picked up yet keeps accepting same-tenant riders in
	// place of its pad rows — the batch seals at worker pickup, not at
	// flush. Strictly fewer pad rows under load at identical privacy (a
	// rider replaces a dummy row before anything is encoded; the batch
	// still carries exactly K rows of one tenant).
	Continuous bool
	// Obs, when non-nil, attaches the observability stack: sampled request
	// traces (admit→seal→batch→offload span trees), serving/fleet/noise-pool
	// series registered into Obs.Registry, latency histograms, the
	// completed-batch log behind CaptureSnapshot, and fleet/sched events
	// recorded into Obs.Recorder. One Observability per server — series
	// registration panics on duplicates. Nil keeps the hot path at its
	// untraced cost.
	Obs *obs.Observability
	// SLO configures per-tenant objectives evaluated by an obs.SLOTracker
	// (burn-rate gauges, breach events into the fleet). Only active when
	// Obs is attached; with no objectives the tracker is not built.
	SLO obs.SLOConfig
	// BatchLog bounds the completed-batch ring behind CaptureSnapshot
	// (0 = DefaultBatchLog). Only kept when Obs is attached.
	BatchLog int
	// NoHistograms suppresses the live latency histogram instruments while
	// keeping every scrape-time series — the A/B knob the histogram
	// overhead gate pairs against. Production configurations leave it off.
	NoHistograms bool
	// Resil configures the resilience layer: deadline budgets, retry onto
	// fresh gangs, hedged dispatch, admission control and the brownout
	// degradation controller. The zero value disables all of it and the
	// hot path stays at its previous cost.
	Resil resil.Config
	// HedgeModels supplies one extra private model replica per worker for
	// hedged dispatch (engines cache forward state, so a hedge flight
	// cannot share the primary's model). Required, with len >=
	// len(models), when Resil.Hedge.Enabled; weights and geometry must
	// match the worker models.
	HedgeModels []*nn.Model
}

// result is what a worker delivers back to one waiting request.
type result struct {
	class int
	err   error
}

// request is one admitted inference job.
type request struct {
	tenant   string
	image    []float64
	enqueued time.Time
	flushBy  time.Time // batching deadline: enqueued+MaxWait or budget share
	// deadline is the absolute end-to-end deadline (caller context
	// deadline, or the budget default); zero = unbounded. A request whose
	// deadline passes before dispatch is failed with resil.ErrDeadline
	// instead of riding a gang it can no longer use.
	deadline time.Time
	done     chan result

	// sp is the request's sampled root span (nil when unsampled — every
	// span operation then no-ops); asp is its "admit" child, open from
	// enqueue until the batcher flushes the request into a virtual batch.
	sp, asp *obs.Span
}

// Server is a concurrent private-inference service over one managed GPU
// fleet.
type Server struct {
	cfg    Config
	k      int
	imgLen int
	fleet  *fleet.Manager
	// Exactly one of workers/pipes is populated: serial engines below
	// PipelineDepth 2, overlapped pipelines at and above it.
	workers []*sched.Inferencer
	pipes   []*sched.Pipeline

	admit    chan *request
	batches  chan *vbatch
	metrics  *Metrics
	obs      *obs.Observability
	batchlog *batchLog

	// Resilience layer (PR9). rcount/shedder always exist (nil-safe and
	// cheap); hedgers/hedge/brown only when the matching policy is on.
	resil   resil.Config
	rcount  *resil.Counters
	shedder *resil.Shedder
	hedge   *resil.HedgeGovernor
	brown   *resil.Brownout
	// hedgers are the workers' hedge engines, index-aligned with workers
	// (serial mode only).
	hedgers []*sched.Inferencer
	// flushFactor (Float64bits) scales MaxWait and depthLimit caps the
	// effective pipeline depth — the brownout actuators.
	flushFactor atomic.Uint64
	depthLimit  atomic.Int32

	gate closeGate
	wg   sync.WaitGroup
}

// New assembles and starts a server over a managed fleet. models supplies
// one private replica per worker (nn layers cache forward state, so
// replicas are not shared); all replicas must have identical input geometry
// and should carry identical weights. The enclave may be nil or shared —
// its accounting is thread-safe, modelling one EPC budget shared by the
// TEE threads.
func New(cfg Config, models []*nn.Model, fm *fleet.Manager, encl *enclave.Enclave) (*Server, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("serve: need at least one worker model")
	}
	if cfg.Recover && cfg.Sched.Redundancy < 2 {
		return nil, fmt.Errorf("serve: Recover needs Redundancy >= 2, have %d", cfg.Sched.Redundancy)
	}
	var (
		workers []*sched.Inferencer
		pipes   []*sched.Pipeline
		gang, k int
	)
	for i, m := range models {
		// Each worker draws its own coding randomness: reusing one RNG
		// stream across workers would emit identical noise vectors and
		// coefficients for different clients' batches at the same step,
		// letting an observer of two gangs cancel the masking noise.
		// (Pipeline lanes stride further apart internally.)
		wcfg := cfg.Sched
		wcfg.Seed += int64(i)
		if cfg.PipelineDepth >= 2 {
			p, err := sched.NewPipeline(wcfg, m, encl, fmt.Sprintf("w%d/", i), cfg.PipelineDepth)
			if err != nil {
				return nil, err
			}
			if cfg.Recover {
				if err := p.EnableRecovery(); err != nil {
					p.Close()
					return nil, err
				}
			}
			pipes = append(pipes, p)
			gang, k = p.Gang(), p.Config().VirtualBatch
			continue
		}
		inf, err := sched.NewInferencer(wcfg, m, encl, fmt.Sprintf("w%d/", i))
		if err != nil {
			return nil, err
		}
		if cfg.Recover {
			if err := inf.EnableRecovery(); err != nil {
				return nil, err
			}
		}
		workers = append(workers, inf)
		gang, k = inf.Gang(), inf.Config().VirtualBatch
	}
	if gang > fm.Cluster().Size() {
		closePipes(pipes)
		return nil, fmt.Errorf("serve: gang of K+M+E = %d devices exceeds fleet of %d",
			gang, fm.Cluster().Size())
	}
	shape := models[0].InShape
	imgLen := 1
	for _, d := range shape {
		imgLen *= d
	}
	for _, m := range models[1:] {
		if fmt.Sprint(m.InShape) != fmt.Sprint(shape) {
			closePipes(pipes)
			return nil, fmt.Errorf("serve: worker models disagree on input shape")
		}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 4 * k
	}
	s := &Server{
		cfg:     cfg,
		k:       k,
		imgLen:  imgLen,
		fleet:   fm,
		workers: workers,
		pipes:   pipes,
		admit:   make(chan *request, depth),
		batches: make(chan *vbatch, len(models)),
		metrics: newMetrics(k),
		obs:     cfg.Obs,
		resil:   cfg.Resil,
		rcount:  &resil.Counters{},
		shedder: resil.NewShedder(cfg.Resil.Shed),
	}
	s.flushFactor.Store(math.Float64bits(1))
	if cfg.Resil.Hedge.Enabled {
		if cfg.PipelineDepth >= 2 {
			closePipes(pipes)
			return nil, fmt.Errorf("serve: hedged dispatch needs serial workers (PipelineDepth <= 1); pipelined lanes already overlap flights")
		}
		if len(cfg.HedgeModels) < len(models) {
			return nil, fmt.Errorf("serve: hedging needs one hedge model replica per worker, have %d for %d workers",
				len(cfg.HedgeModels), len(models))
		}
		s.hedge = resil.NewHedgeGovernor(cfg.Resil.Hedge)
		for i := range models {
			// Hedge engines draw from a disjoint seed range: a hedge
			// flight re-encodes the same rows, and reusing the primary's
			// noise stream would hand a gang-spanning observer two coded
			// views under correlated masks.
			wcfg := cfg.Sched
			wcfg.Seed += int64(1000 + i)
			h, err := sched.NewInferencer(wcfg, cfg.HedgeModels[i], encl, fmt.Sprintf("h%d/", i))
			if err != nil {
				return nil, err
			}
			if cfg.Recover {
				if err := h.EnableRecovery(); err != nil {
					return nil, err
				}
			}
			s.hedgers = append(s.hedgers, h)
		}
	}
	if s.obs != nil {
		// Wire the observability stack: the fleet and every engine record
		// into the shared flight recorder, and the serving + fleet counters
		// become scrape-time series in the registry.
		fm.SetObserver(s.obs.Recorder)
		for _, inf := range workers {
			inf.SetObserver(s.obs.Recorder)
		}
		for _, h := range s.hedgers {
			h.SetObserver(s.obs.Recorder)
		}
		for _, p := range pipes {
			p.SetObserver(s.obs.Recorder)
		}
		s.registerMetrics(s.obs.Reg())
		fm.RegisterMetrics(s.obs.Reg())
		s.rcount.Register(s.obs.Reg())
		s.batchlog = newBatchLog(cfg.BatchLog)
		if len(cfg.SLO.Objectives) > 0 {
			s.metrics.slo = obs.NewSLOTracker(cfg.SLO)
			s.metrics.slo.Register(s.obs.Reg())
			fm.SubscribeSLO(s.metrics.slo)
		}
	}
	if cfg.Resil.Brownout.Enabled {
		var rec *obs.FlightRecorder
		if s.obs != nil {
			rec = s.obs.Recorder
		}
		s.brown = resil.NewBrownout(cfg.Resil.Brownout, rec, s.rcount)
		s.brown.OnChange(s.applyBrownout)
		if s.metrics.slo == nil {
			// Brownout consumes SLO breach events; without objectives the
			// controller would never engage. Build the tracker even when
			// the caller attached no registry (nil-safe everywhere).
			if len(cfg.SLO.Objectives) == 0 {
				return nil, fmt.Errorf("serve: brownout needs SLO objectives to consume (Config.SLO)")
			}
			s.metrics.slo = obs.NewSLOTracker(cfg.SLO)
			fm.SubscribeSLO(s.metrics.slo)
		}
		s.brown.Subscribe(s.metrics.slo)
	}
	s.wg.Add(1)
	go s.batchLoop()
	for i, inf := range workers {
		s.wg.Add(1)
		var hedger *sched.Inferencer
		if i < len(s.hedgers) {
			hedger = s.hedgers[i]
		}
		go s.workLoop(inf, hedger)
	}
	for _, p := range pipes {
		s.wg.Add(1)
		go s.pipeLoop(p)
	}
	return s, nil
}

// closePipes stops the background noise generators of partially built
// pipelines on a construction error path.
func closePipes(pipes []*sched.Pipeline) {
	for _, p := range pipes {
		p.Close()
	}
}

// K returns the virtual batch size requests are coalesced into.
func (s *Server) K() int { return s.k }

// Fleet returns the fleet manager the server dispatches through.
func (s *Server) Fleet() *fleet.Manager { return s.fleet }

// Metrics returns a consistent snapshot of the serving counters, including
// the fleet health snapshot and (in pipeline mode) the noise-pool
// counters.
func (s *Server) Metrics() Snapshot {
	snap := s.metrics.Snapshot()
	snap.Fleet = s.fleet.Stats()
	snap.NoisePool = s.poolStats()
	snap.Resil = s.rcount.Snapshot()
	if s.brown != nil {
		snap.Resil.BrownoutLevel = int64(s.brown.Level())
	}
	return snap
}

// Observability returns the stack attached via Config.Obs (nil when
// observability is off).
func (s *Server) Observability() *obs.Observability { return s.obs }

// Infer privately classifies one image for the default tenant.
func (s *Server) Infer(ctx context.Context, image []float64) (int, error) {
	return s.InferTenant(ctx, DefaultTenant, image)
}

// InferTenant privately classifies one image on behalf of a named tenant.
// It blocks until the request is batched, dispatched and decoded, or until
// ctx is done. The image never leaves the TEE uncoded; it is only ever
// batched with rows of the same tenant, and the batch's device time is
// charged to the tenant's fair-share account. An integrity violation on
// the request's batch is reported as an error wrapping masking.ErrIntegrity
// (unless recovery absorbs it).
func (s *Server) InferTenant(ctx context.Context, tenant string, image []float64) (int, error) {
	if len(image) != s.imgLen {
		return 0, fmt.Errorf("%w: got %d elements, model wants %d", ErrBadImage, len(image), s.imgLen)
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	if !s.gate.enter() {
		return 0, ErrClosed
	}
	// Admission control: shed before any work when the tenant's queue
	// allowance is full (typed resil.ErrShed; the client never blocks).
	if err := s.shedder.Admit(tenant, s.metrics.queueDepth()); err != nil {
		s.gate.leave()
		s.rcount.Shed.Add(1)
		s.recordResil(obs.KindShed, tenant, "admission queue allowance full")
		return 0, err
	}
	now := time.Now()
	// Deadline budget: the caller's context deadline (or the configured
	// default) is the absolute end-to-end bound; the batching phase may
	// spend at most its budget share waiting for peers.
	cd, hasCD := ctx.Deadline()
	deadline := s.resil.Budget.Deadline(now, cd, hasCD)
	maxWait := s.effMaxWait()
	var flushBy time.Time
	if s.resil.Budget.Enabled() {
		flushBy = s.resil.Budget.FlushBy(now, deadline, maxWait)
	} else {
		// Legacy split: the whole remaining budget may be spent batching.
		flushBy = now.Add(maxWait)
		if hasCD && cd.Before(flushBy) {
			flushBy = cd
		}
	}
	r := &request{tenant: tenant, image: image, enqueued: now, flushBy: flushBy,
		deadline: deadline, done: make(chan result, 1)}
	// Sampled tracing: the root span covers the request end to end; the
	// "admit" child covers queueing until the batcher flushes it. A nil
	// span (tracing off, or the sampling draw declined) no-ops throughout.
	r.sp = s.obs.StartTrace("request")
	r.sp.Annotate("tenant", tenant)
	r.asp = r.sp.Child("admit")
	// The gauge moves before the send: the batcher may flush (and
	// decrement) the moment the request lands, so counting afterwards
	// could read negative.
	s.metrics.queued(1)
	select {
	case s.admit <- r:
		s.gate.leave()
	case <-ctx.Done():
		s.metrics.queued(-1)
		s.gate.leave()
		r.sp.Annotate("outcome", "cancelled-in-admit")
		r.sp.End()
		return 0, ctx.Err()
	}
	select {
	case res := <-r.done:
		r.sp.End()
		if res.err != nil {
			return 0, res.err
		}
		return res.class, nil
	case <-ctx.Done():
		// The batch may still complete; its result is discarded.
		r.sp.Annotate("outcome", "cancelled-in-flight")
		r.sp.End()
		return 0, ctx.Err()
	}
}

// Close drains the service: admitted requests are still dispatched (final
// partial batches are padded and flushed), then workers exit and the
// background noise generators stop. Infer calls after Close fail with
// ErrClosed. Close blocks until the drain completes.
func (s *Server) Close() {
	if !s.gate.close() {
		return // already closed
	}
	close(s.admit)
	s.wg.Wait()
	closePipes(s.pipes)
	for _, inf := range s.workers {
		inf.Close()
	}
	for _, h := range s.hedgers {
		h.Close()
	}
}

// ResilCounters exposes the resilience accounting (always non-nil).
func (s *Server) ResilCounters() *resil.Counters { return s.rcount }

// BrownoutLevel returns the current degradation level (0 when the
// controller is off or at full service).
func (s *Server) BrownoutLevel() int { return s.brown.Level() }

// effMaxWait is the brownout-scaled batching window: at degradation the
// flush window shrinks, so batches seal with fewer real rows (a smaller
// effective K) and per-request latency drops at the cost of padding.
func (s *Server) effMaxWait() time.Duration {
	f := math.Float64frombits(s.flushFactor.Load())
	if f >= 1 || f <= 0 {
		return s.cfg.MaxWait
	}
	return time.Duration(float64(s.cfg.MaxWait) * f)
}

// effDepth is the brownout-capped pipeline depth.
func (s *Server) effDepth(p *sched.Pipeline) int {
	d := p.Depth()
	if lim := int(s.depthLimit.Load()); lim > 0 && lim < d {
		d = lim
	}
	return d
}

// applyBrownout is the degradation actuator, invoked by the controller on
// every level transition. The structural coding point (K, M, E) is fixed
// — instead the actuators trade serving headroom: shorter flush windows
// (smaller effective batches → lower latency, more padding), hedging off
// (duplicate flights are the first capacity returned), tighter admission
// allowances, and a shallower effective pipeline.
func (s *Server) applyBrownout(level int) {
	flushF, shedF := 1.0, 1.0
	var depthLim int32
	hedgeOff := false
	switch {
	case level <= 0:
	case level == 1:
		flushF, hedgeOff = 0.5, true
	case level == 2:
		flushF, shedF, hedgeOff = 0.5, 0.5, true
		if d := s.cfg.PipelineDepth; d >= 2 {
			depthLim = int32((d + 1) / 2)
		}
	default:
		flushF, shedF, hedgeOff, depthLim = 0.25, 0.25, true, 1
	}
	s.flushFactor.Store(math.Float64bits(flushF))
	s.shedder.SetFactor(shedF)
	s.hedge.SetDisabled(hedgeOff)
	s.depthLimit.Store(depthLim)
}

// recordResil emits one resilience event into the flight recorder (no-op
// without observability).
func (s *Server) recordResil(kind, tenant, detail string) {
	if s.obs == nil {
		return
	}
	s.obs.Recorder.Record(obs.Event{Kind: kind, Subsystem: "resil",
		Device: -1, Slot: -1, Tenant: tenant, Detail: detail})
}

// closeGate lets Close wait out in-flight admissions before closing the
// admit channel, so Infer never sends on a closed channel.
type closeGate struct {
	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup
}

func (g *closeGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.inflight.Add(1)
	return true
}

func (g *closeGate) leave() { g.inflight.Done() }

// close marks the gate closed and waits for entered admissions to leave.
// Returns false if the gate was already closed.
func (g *closeGate) close() bool {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return false
	}
	g.closed = true
	g.mu.Unlock()
	g.inflight.Wait()
	return true
}
