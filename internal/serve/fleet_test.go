package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

func argmaxOf(m *nn.Model, img []float64) int { return nn.Argmax(m.Forward(img, false)) }

// TestQuarantineMaliciousDeviceThenServeClean is the fleet acceptance
// criterion: a serving run with one persistently malicious device must
// quarantine it within a bounded number of batches and thereafter complete
// requests with zero further integrity errors.
func TestQuarantineMaliciousDeviceThenServeClean(t *testing.T) {
	const (
		k    = 2
		gang = k + 1 + 2 // M=1, E=2: attribution budget
		bad  = 3
	)
	devs := make([]gpu.Device, gang+2) // two spares keep the pool viable post-quarantine
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{ProbationProbability: -1})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 2, Seed: 81},
		MaxWait: time.Millisecond,
	}, replicas(1, 81), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(20, 82)

	// Phase 1: drive batches until the tampering device is quarantined.
	// E=2 attributes the culprit on the very first poisoned batch, so the
	// bound is tight: one failed batch.
	integrityErrs := 0
	quarantinedAfter := -1
	for i := 0; i < 5; i++ {
		_, err := srv.Infer(context.Background(), imgs[i])
		if err != nil {
			if !IsIntegrityError(err) {
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			integrityErrs++
		}
		if fm.Stats().Quarantined == 1 {
			quarantinedAfter = i
			break
		}
	}
	if quarantinedAfter != 0 {
		t.Fatalf("malicious device not quarantined on the first poisoned batch (after=%d, integrity errs=%d)",
			quarantinedAfter, integrityErrs)
	}
	st := fm.Stats()
	if st.Devices[bad].State != fleet.Quarantined || st.Devices[bad].Faults == 0 {
		t.Fatalf("device %d health: %+v", bad, st.Devices[bad])
	}

	// Phase 2: the service continues at full integrity — every subsequent
	// request succeeds and the quarantined device never serves again.
	for i := 5; i < len(imgs); i++ {
		if _, err := srv.Infer(context.Background(), imgs[i]); err != nil {
			t.Fatalf("post-quarantine request %d failed: %v", i, err)
		}
	}
	snap := srv.Metrics()
	if got := snap.Integrity; int(got) != integrityErrs*1 {
		t.Fatalf("new integrity errors after quarantine: %d total, %d before", got, integrityErrs)
	}
	after := fm.Stats()
	if after.Devices[bad].Dispatches != st.Devices[bad].Dispatches {
		t.Fatalf("quarantined device dispatched again: %d -> %d",
			st.Devices[bad].Dispatches, after.Devices[bad].Dispatches)
	}
}

// TestRecoveryMasksFaultAndQuarantines: with Recover enabled the poisoned
// batch itself succeeds (decoded from the clean equations) and the culprit
// is still quarantined — zero client-visible integrity errors end to end.
func TestRecoveryMasksFaultAndQuarantines(t *testing.T) {
	const (
		k   = 2
		bad = 2
	)
	devs := make([]gpu.Device, (k+1+2)+1)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{ProbationProbability: -1})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 2, Seed: 91},
		MaxWait: time.Millisecond,
		Recover: true,
	}, replicas(1, 91), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(12, 92)
	for i, img := range imgs {
		if _, err := srv.Infer(context.Background(), img); err != nil {
			t.Fatalf("request %d: %v (recovery should absorb the fault)", i, err)
		}
	}
	snap := srv.Metrics()
	if snap.Failed != 0 || snap.Integrity != 0 {
		t.Fatalf("failed=%d integrity=%d, want 0/0 under recovery", snap.Failed, snap.Integrity)
	}
	st := fm.Stats()
	if st.Quarantined != 1 || st.Devices[bad].State != fleet.Quarantined {
		t.Fatalf("culprit not quarantined: %+v", st.Devices[bad])
	}
	if st.QuarantineEvents != 1 {
		t.Fatalf("quarantine events = %d, want 1", st.QuarantineEvents)
	}
}

// TestRecoverNeedsRedundancyBudget pins the constructor validation.
func TestRecoverNeedsRedundancyBudget(t *testing.T) {
	fm := fleet.NewManager(gpu.NewHonestCluster(4), fleet.Config{})
	_, err := New(Config{
		Sched:   sched.Config{VirtualBatch: 2, Redundancy: 1, Seed: 1},
		Recover: true,
	}, replicas(1, 1), fm, nil)
	if err == nil {
		t.Fatal("Recover accepted with E=1")
	}
}

// TestTenantsBatchSeparatelyAndAreAccounted: rows of different tenants are
// never coded together, and both serving metrics and fleet share accounts
// see the split.
func TestTenantsBatchSeparatelyAndAreAccounted(t *testing.T) {
	const k = 2
	fm := fleet.NewManager(gpu.NewHonestCluster(2*(k+1)), fleet.Config{
		Tenants: []fleet.TenantConfig{{Name: "gold", Weight: 3}, {Name: "bronze", Weight: 1}},
	})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Seed: 101},
		MaxWait: 20 * time.Millisecond,
	}, replicas(2, 101), fm, nil)
	if err != nil {
		t.Fatal(err)
	}

	imgs := sampleImages(12, 102)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "gold"
			if i%2 == 1 {
				tenant = "bronze"
			}
			if _, err := srv.InferTenant(context.Background(), tenant, imgs[i]); err != nil {
				t.Errorf("request %d (%s): %v", i, tenant, err)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()

	snap := srv.Metrics()
	if len(snap.Tenants) != 2 {
		t.Fatalf("tenant snapshots: %+v", snap.Tenants)
	}
	var total int64
	for _, ts := range snap.Tenants {
		if ts.Completed != 6 || ts.Failed != 0 {
			t.Fatalf("tenant %s: completed=%d failed=%d, want 6/0", ts.Name, ts.Completed, ts.Failed)
		}
		// Tenants batch separately: each tenant's rows fit its own batches.
		if ts.RealRows != 6 {
			t.Fatalf("tenant %s: real rows %d", ts.Name, ts.RealRows)
		}
		total += ts.Completed
	}
	if total != snap.Completed {
		t.Fatalf("tenant completions %d != total %d", total, snap.Completed)
	}
	for _, tu := range snap.Fleet.Tenants {
		if tu.Name == "gold" || tu.Name == "bronze" {
			if tu.Grants == 0 || tu.DeviceSeconds <= 0 {
				t.Fatalf("tenant %s unaccounted in fleet: %+v", tu.Name, tu)
			}
		}
	}
}

// TestServeStragglerQuorumMatchesReference: a deterministic slow device in
// the gang, StragglerSlack 1 and E=2 — the decode proceeds from the first
// S+1 responses, predictions match the float reference, and the fleet
// records the stragglers.
func TestServeStragglerQuorumMatchesReference(t *testing.T) {
	const (
		k     = 2
		gang  = k + 1 + 2
		delay = 30 * time.Millisecond
	)
	devs := make([]gpu.Device, gang)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == gang-1 {
			devs[i] = gpu.NewSlow(devs[i], delay)
		}
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
	srv, err := New(Config{
		Sched:   sched.Config{VirtualBatch: k, Redundancy: 2, StragglerSlack: 1, Seed: 111},
		MaxWait: time.Millisecond,
	}, replicas(1, 111), fm, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	imgs := sampleImages(6, 112)
	ref := replicas(1, 111)[0]
	start := time.Now()
	for i, img := range imgs {
		p, err := srv.Infer(context.Background(), img)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if want := argmaxOf(ref, img); p != want {
			t.Fatalf("request %d: straggler-path prediction %d, reference %d", i, p, want)
		}
	}
	// 6 singleton batches × 3 offload layers × 30ms would dominate without
	// the quorum; the sanity bound is loose to survive slow CI.
	if el := time.Since(start); el > 4*delay*time.Duration(len(imgs)) {
		t.Logf("note: serving took %v; quorum benefit not measurable here", el)
	}
	if st := fm.Stats(); st.StragglerEvents == 0 {
		t.Fatalf("no stragglers recorded: %+v", st)
	}
}
