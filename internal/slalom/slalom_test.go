package slalom

import (
	"math"
	"math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/nn"
)

func TestSlalomInferenceMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), 20, 4, 1, 8, 8, 0.05)
	e := New(model, false, 3)
	for _, ex := range data.Items {
		got, err := e.Infer(ex.Image)
		if err != nil {
			t.Fatal(err)
		}
		want := nn.Argmax(model.Forward(ex.Image, false))
		if got != want {
			t.Fatalf("slalom pred %d, float pred %d", got, want)
		}
	}
	if e.Stats().GPUJobs == 0 || e.Stats().UnblindBytes == 0 {
		t.Fatalf("stats = %+v", e.Stats())
	}
}

func TestSlalomWithIntegrity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(5)), 5, 4, 1, 8, 8, 0.05)
	e := New(model, true, 6)
	for _, ex := range data.Items {
		if _, err := e.Infer(ex.Image); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().IntegrityChecks == 0 {
		t.Fatal("no integrity checks recorded")
	}
}

// TestSlalomCannotTrain demonstrates the paper's §7.2 argument: after a
// weight update, Slalom's precomputed unblinding factors decode garbage.
// DarKnight exists because of this failure mode.
func TestSlalomCannotTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	e := New(model, false, 8)
	lin := model.LinearLayers()[0]

	x := make([]float64, lin.InLen())
	for i := range x {
		x[i] = rng.Float64()*0.5 - 0.25
	}
	// Fresh factors decode correctly.
	before := e.StaleDecode(0, lin, x)
	want := lin.LinearForwardFloat(x)
	for i := range want {
		if math.Abs(before[i]-want[i]) > 0.05 {
			t.Fatalf("fresh decode wrong at %d: %v vs %v", i, before[i], want[i])
		}
	}

	// "Train": apply a weight update, as every SGD step does.
	wd := lin.WeightData()
	for i := range wd {
		wd[i] += 0.1
	}

	// Stale factors now decode the WRONG result — and not by a rounding
	// margin: the error is the full W_delta·r term, which is uniform
	// field noise.
	after := e.StaleDecode(0, lin, x)
	wantNew := lin.LinearForwardFloat(x)
	var worst float64
	for i := range wantNew {
		if d := math.Abs(after[i] - wantNew[i]); d > worst {
			worst = d
		}
	}
	if worst < 1 {
		t.Fatalf("stale decode unexpectedly accurate (worst err %v) — Slalom would be trainable", worst)
	}

	// Re-precomputing (W·r inside SGX every batch) fixes decoding but is
	// exactly the cost §7.2 says defeats the offload.
	e.Precompute()
	fixed := e.StaleDecode(0, lin, x)
	for i := range wantNew {
		if math.Abs(fixed[i]-wantNew[i]) > 0.05 {
			t.Fatalf("re-precomputed decode wrong at %d", i)
		}
	}
}

func TestSlalomResidualModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := nn.ResNet50Scaled(1, 8, 8, 4, 1, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(10)), 5, 4, 1, 8, 8, 0.05)
	e := New(model, false, 11)
	for _, ex := range data.Items {
		got, err := e.Infer(ex.Image)
		if err != nil {
			t.Fatal(err)
		}
		want := nn.Argmax(model.Forward(ex.Image, false))
		if got != want {
			t.Fatalf("slalom pred %d, float pred %d", got, want)
		}
	}
}
