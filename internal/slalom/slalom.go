// Package slalom implements the Slalom baseline (Tramèr & Boneh, ICLR'18)
// the paper compares against in §7.2: TEE-GPU inference where the enclave
// blinds each linear layer's input with an additive stream-cipher noise r,
// the GPU computes W·(x+r), and the enclave unblinds by subtracting the
// PRECOMPUTED W·r. The precomputation is exactly why Slalom cannot train:
// the unblinding factors bake in W, and W changes every batch. The test
// suite demonstrates that failure mode explicitly.
package slalom

import (
	"errors"
	"fmt"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/nn"
	"darknight/internal/quant"
	"darknight/internal/tensor"
)

// Engine is a Slalom inference session for one model. Blinding factors r
// and unblinding factors W·r are precomputed per linear layer (Slalom
// stores them encrypted outside the enclave; we keep the byte accounting
// in Stats).
type Engine struct {
	model *nn.Model
	q     *quant.Quantizer
	rng   *rand.Rand

	layers    []nn.Linear
	blinds    []field.Vec // r per linear layer
	unblinds  []field.Vec // W·r per linear layer (precomputed!)
	wq        []field.Vec // quantized weights as of precomputation
	verify    bool
	stats     Stats
	normLimit float64
}

// Stats counts Slalom's data movement for the performance comparison.
type Stats struct {
	PrecomputeOps   int64 // field MACs spent on W·r
	UnblindBytes    int64 // precomputed factors streamed back into the TEE
	GPUJobs         int64
	IntegrityChecks int64
}

// ErrIntegrity is returned when Freivalds verification rejects a result.
var ErrIntegrity = errors.New("slalom: integrity check failed")

// New precomputes blinding state for the model's current weights.
func New(model *nn.Model, verify bool, seed int64) *Engine {
	e := &Engine{
		model:     model,
		q:         quant.Default(),
		rng:       rand.New(rand.NewSource(seed)),
		verify:    verify,
		normLimit: 1.0,
	}
	e.Precompute()
	return e
}

// Precompute draws fresh r for every linear layer and computes W·r with
// the CURRENT weights. Slalom does this offline before inference.
func (e *Engine) Precompute() {
	e.layers = e.model.LinearLayers()
	e.blinds = make([]field.Vec, len(e.layers))
	e.unblinds = make([]field.Vec, len(e.layers))
	e.wq = make([]field.Vec, len(e.layers))
	for i, lin := range e.layers {
		r := field.RandVec(e.rng, lin.InLen())
		e.blinds[i] = r
		wq := e.q.Quantize(lin.WeightData())
		e.wq[i] = wq
		e.unblinds[i] = lin.LinearForwardField(wq, r)
		e.stats.PrecomputeOps += int64(lin.InLen()) * int64(lin.OutLen())
	}
}

// Infer classifies one image. Each linear layer runs "on the GPU" over the
// blinded input; non-linear layers run in the TEE.
func (e *Engine) Infer(image []float64) (int, error) {
	logits, err := e.forward(image)
	if err != nil {
		return 0, err
	}
	return nn.Argmax(logits), nil
}

func (e *Engine) forward(image []float64) (*tensor.Tensor, error) {
	x := tensor.FromSlice(image, e.model.InShape...)
	linIdx := 0
	var walk func(layer nn.Layer, x *tensor.Tensor) (*tensor.Tensor, error)
	walk = func(layer nn.Layer, x *tensor.Tensor) (*tensor.Tensor, error) {
		switch v := layer.(type) {
		case *nn.Sequential:
			var err error
			for _, child := range v.Layers() {
				x, err = walk(child, x)
				if err != nil {
					return nil, err
				}
			}
			return x, nil
		case *nn.Residual:
			body, err := walk(v.Body(), x)
			if err != nil {
				return nil, err
			}
			skip := x
			if v.Skip() != nil {
				skip, err = walk(v.Skip(), x)
				if err != nil {
					return nil, err
				}
			}
			out := body.Clone()
			out.Add(skip)
			return out, nil
		default:
			if lin, ok := layer.(nn.Linear); ok {
				out, err := e.linearBlinded(linIdx, lin, x)
				linIdx++
				return out, err
			}
			return layer.Forward(x, false), nil
		}
	}
	return walk(e.model.Stack, x)
}

// linearBlinded runs one linear layer through the blind/offload/unblind
// cycle. The blinded input (x+r) is a one-time pad over F_p, the same
// privacy argument DarKnight generalizes.
func (e *Engine) linearBlinded(idx int, lin nn.Linear, x *tensor.Tensor) (*tensor.Tensor, error) {
	if idx >= len(e.layers) {
		return nil, fmt.Errorf("slalom: linear layer %d beyond precomputed state", idx)
	}
	// TEE: normalize, quantize, blind.
	f := x.MaxAbs() / e.normLimit
	if f < 1 {
		f = 1
	}
	scaled := make([]float64, x.Size())
	for i, v := range x.Data {
		scaled[i] = v / f
	}
	xq := e.q.Quantize(scaled)
	blinded := field.AddVec(xq, e.blinds[idx])

	// GPU: W·(x+r) in the field.
	gout := lin.LinearForwardField(e.wq[idx], blinded)
	e.stats.GPUJobs++

	// Optional Freivalds-style verification: re-check the GPU result on a
	// random projection. Honest kernel here; the check costs show up in
	// the perf model.
	if e.verify {
		e.stats.IntegrityChecks++
		if !e.freivaldsOK(lin, blinded, gout) {
			return nil, ErrIntegrity
		}
	}

	// TEE: unblind with the precomputed W·r, restore floats, add bias.
	e.stats.UnblindBytes += int64(len(e.unblinds[idx])) * 4
	clean := field.SubVec(gout, e.unblinds[idx])
	y := e.q.UnquantizeProduct(clean)
	for i := range y {
		y[i] *= f
	}
	bias := lin.BiasData()
	outShape := lin.OutShape()
	addBiasSlalom(y, bias, outShape)
	return tensor.FromSlice(y, outShape...), nil
}

// freivaldsOK probabilistically verifies gout == W·blinded by comparing a
// random linear projection of both sides (one extra matvec instead of a
// full recompute — Freivalds' algorithm).
func (e *Engine) freivaldsOK(lin nn.Linear, blinded, gout field.Vec) bool {
	// Project with a random +/-1-ish field vector s: check s·gout ==
	// (sᵀW)·blinded. We only have the kernel, not W's layout, so evaluate
	// both sides with one extra kernel call on a random input instead:
	// kernel linearity gives kernel(blinded + s) - kernel(s) == gout for
	// honest results.
	s := field.RandVec(e.rng, len(blinded))
	lhs := lin.LinearForwardField(e.wq[indexOf(e.layers, lin)], field.AddVec(blinded, s))
	rhs := lin.LinearForwardField(e.wq[indexOf(e.layers, lin)], s)
	diff := field.SubVec(lhs, rhs)
	return diff.Equal(gout)
}

func indexOf(layers []nn.Linear, l nn.Linear) int {
	for i, x := range layers {
		if x == l {
			return i
		}
	}
	return -1
}

// Stats returns the accumulated counters.
func (e *Engine) Stats() Stats { return e.stats }

// Unblind exposes the raw unblinding machinery so tests can demonstrate
// the §7.2 failure: after a weight update, decoding with STALE factors
// produces garbage. It computes W_new·(x+r) − (W_old·r) for layer idx.
func (e *Engine) StaleDecode(idx int, lin nn.Linear, x []float64) []float64 {
	xq := e.q.Quantize(x)
	blinded := field.AddVec(xq, e.blinds[idx])
	wqNew := e.q.Quantize(lin.WeightData()) // CURRENT weights
	gout := lin.LinearForwardField(wqNew, blinded)
	clean := field.SubVec(gout, e.unblinds[idx]) // STALE W_old·r
	return e.q.UnquantizeProduct(clean)
}

func addBiasSlalom(y []float64, bias []float64, outShape []int) {
	if bias == nil {
		return
	}
	if len(bias) == len(y) {
		for i := range y {
			y[i] += bias[i]
		}
		return
	}
	plane := len(y) / len(bias)
	for c := range bias {
		b := bias[c]
		seg := y[c*plane : (c+1)*plane]
		for i := range seg {
			seg[i] += b
		}
	}
}
