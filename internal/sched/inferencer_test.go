package sched

import (
	"errors"
	"math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/nn"
)

func TestInferencerMatchesTrainerPredict(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Seed: 5}
	tr, model, data := tinySetup(t, cfg, 3, nil)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	want, err := tr.Predict(images)
	if err != nil {
		t.Fatal(err)
	}

	inf, err := NewInferencer(cfg, model, nil, "inf/")
	if err != nil {
		t.Fatal(err)
	}
	got, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: inferencer %d, trainer %d", i, got[i], want[i])
		}
	}
}

// The fleet is a per-call binding: the same Inferencer must serve
// correctly across disjoint device gangs, as a serving worker does across
// successive leases.
func TestInferencerAcrossFleets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "inf/")
	if err != nil {
		t.Fatal(err)
	}
	a, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("image %d: %d on fleet A, %d on fleet B", i, a[i], b[i])
		}
	}
}

// Inference never reads the device-side coded-input cache back, so
// successive dispatches must reuse storage keys — a serving loop may run
// indefinitely and device memory has to stay bounded.
func TestInferencerDeviceStorageBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "w0/")
	if err != nil {
		t.Fatal(err)
	}
	cluster := gpu.NewHonestCluster(3)
	if _, err := inf.Predict(cluster, images); err != nil {
		t.Fatal(err)
	}
	after1 := cluster.Device(0).Stored()
	if after1 == 0 {
		t.Fatal("no coded inputs stored after a dispatch")
	}
	for i := 0; i < 5; i++ {
		if _, err := inf.Predict(cluster, images); err != nil {
			t.Fatal(err)
		}
	}
	if after6 := cluster.Device(0).Stored(); after6 != after1 {
		t.Fatalf("device storage grew from %d to %d entries across inference steps", after1, after6)
	}
}

// quorumDropFleet is a QuorumFleet whose slowest device never makes the
// quorum: it computes every response but reports the last column absent,
// exercising the engine's subset-decode path.
type quorumDropFleet struct {
	*gpu.Cluster
	quorumCalls int
}

func (f *quorumDropFleet) ForwardQuorum(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) ([]field.Vec, []bool, error) {
	f.quorumCalls++
	results, err := f.Cluster.ForwardAll(key, kernel, coded)
	if err != nil {
		return nil, nil, err
	}
	present := make([]bool, len(results))
	for j := range present {
		present[j] = j < quorum
	}
	for j := quorum; j < len(results); j++ {
		results[j] = nil // the straggler's response never arrived
	}
	return results, present, nil
}

func TestInferencerStragglerSubsetDecodeMatchesFull(t *testing.T) {
	// With StragglerSlack and E=2, predictions decoded from a permanently
	// missing response must equal the full-fleet decode exactly.
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	full, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 2, Seed: 5}, model, nil, "a/")
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Predict(gpu.NewHonestCluster(5), images)
	if err != nil {
		t.Fatal(err)
	}

	modelB := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
	inf, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 2, StragglerSlack: 1, Seed: 5}, modelB, nil, "a/")
	if err != nil {
		t.Fatal(err)
	}
	fleet := &quorumDropFleet{Cluster: gpu.NewHonestCluster(5)}
	got, err := inf.Predict(fleet, images)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.quorumCalls == 0 {
		t.Fatal("quorum path never engaged")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: straggler path %d, full path %d", i, got[i], want[i])
		}
	}
}

func TestInferencerSlackClampedWithoutRedundancyBudget(t *testing.T) {
	// StragglerSlack with E <= 1 must clamp to zero: the one redundant
	// equation is reserved for verification, so the quorum path never
	// engages and dispatch waits for every device.
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 1, StragglerSlack: 3, Seed: 5}, model, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	fleet := &quorumDropFleet{Cluster: gpu.NewHonestCluster(4)}
	if _, err := inf.Predict(fleet, images); err != nil {
		t.Fatal(err)
	}
	if fleet.quorumCalls != 0 {
		t.Fatalf("quorum path engaged %d times with E=1; want clamp to full dispatch", fleet.quorumCalls)
	}
}

func TestInferencerRecoveryAttributesCulprit(t *testing.T) {
	// E=2 + recovery: a persistently tampering device is identified per
	// batch (Culprits) while predictions stay correct.
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	ref, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 2, Seed: 5}, model, nil, "r/")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(gpu.NewHonestCluster(5), images)
	if err != nil {
		t.Fatal(err)
	}

	modelB := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
	inf, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 2, Seed: 5}, modelB, nil, "r/")
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.EnableRecovery(); err != nil {
		t.Fatal(err)
	}
	const bad = 3
	devs := make([]gpu.Device, 5)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	got, err := inf.Predict(gpu.NewCluster(devs...), images)
	if err != nil {
		t.Fatalf("recovery should mask the fault: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: recovered %d, clean %d", i, got[i], want[i])
		}
	}
	culprits := inf.Culprits()
	if len(culprits) != 1 || culprits[0] != bad {
		t.Fatalf("culprits = %v, want [%d]", culprits, bad)
	}
	if st := inf.Recovery(); st.Violations == 0 || st.Recovered != st.Violations {
		t.Fatalf("recovery stats = %+v", st)
	}

	// EnableRecovery without the redundancy budget must refuse.
	weak, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 1, Seed: 5}, modelB, nil, "w/")
	if err != nil {
		t.Fatal(err)
	}
	if err := weak.EnableRecovery(); err == nil {
		t.Fatal("recovery accepted with E=1")
	}
}

// maliciousQuorumFleet drops the last response AND tampers a chosen slot,
// exercising recovery on the subset-decode path.
type maliciousQuorumFleet struct {
	*gpu.Cluster
}

func (f *maliciousQuorumFleet) ForwardQuorum(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) ([]field.Vec, []bool, error) {
	results, err := f.Cluster.ForwardAll(key, kernel, coded)
	if err != nil {
		return nil, nil, err
	}
	present := make([]bool, len(results))
	for j := range present {
		present[j] = j < quorum
	}
	for j := quorum; j < len(results); j++ {
		results[j] = nil
	}
	return results, present, nil
}

func TestInferencerRecoveryComposesWithStragglerSlack(t *testing.T) {
	// E=3, slack=1: the dispatch proceeds without the slowest response AND
	// one present device tampers. Two present redundant equations remain,
	// so recovery must attribute the culprit and decode from the clean
	// present subset — the two fault-tolerance mechanisms compose.
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	ref, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 3, Seed: 5}, model, nil, "r/")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Predict(gpu.NewHonestCluster(6), images)
	if err != nil {
		t.Fatal(err)
	}

	modelB := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
	inf, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 3, StragglerSlack: 1, Seed: 5}, modelB, nil, "r/")
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.EnableRecovery(); err != nil {
		t.Fatal(err)
	}
	const bad = 1
	devs := make([]gpu.Device, 6)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	fleet := &maliciousQuorumFleet{Cluster: gpu.NewCluster(devs...)}
	got, err := inf.Predict(fleet, images)
	if err != nil {
		t.Fatalf("recovery on the quorum path should absorb the fault: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: recovered-quorum %d, clean %d", i, got[i], want[i])
		}
	}
	culprits := inf.Culprits()
	if len(culprits) != 1 || culprits[0] != bad {
		t.Fatalf("culprits = %v, want [%d]", culprits, bad)
	}
}

func TestInferencerQuorumAttributesWithoutRecovery(t *testing.T) {
	// Same setup without recovery: the subset-path error must carry the
	// attributed culprit so the fleet can still quarantine it.
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Redundancy: 3, StragglerSlack: 1, Seed: 5}, model, nil, "q/")
	if err != nil {
		t.Fatal(err)
	}
	const bad = 2
	devs := make([]gpu.Device, 6)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if i == bad {
			devs[i] = gpu.NewMalicious(devs[i], gpu.FaultPolicy{EveryNth: 1})
		}
	}
	fleet := &maliciousQuorumFleet{Cluster: gpu.NewCluster(devs...)}
	_, err = inf.Predict(fleet, images)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *IntegrityError", err)
	}
	if len(ie.Culprits) != 1 || ie.Culprits[0] != bad {
		t.Fatalf("culprits = %v, want [%d]", ie.Culprits, bad)
	}
}

func TestInferencerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)

	if _, err := NewInferencer(Config{VirtualBatch: 0}, model, nil, ""); err == nil {
		t.Fatal("K=0 accepted")
	}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := inf.Gang(); got != 3 {
		t.Fatalf("gang = %d, want 3 (K=2, M=1, E=0)", got)
	}
	// Wrong image count.
	if _, err := inf.Predict(gpu.NewHonestCluster(3), [][]float64{data.Items[0].Image}); err == nil {
		t.Fatal("wrong image count accepted")
	}
	// Undersized fleet: the gang cannot fit.
	if _, err := inf.Predict(gpu.NewHonestCluster(2), [][]float64{data.Items[0].Image, data.Items[1].Image}); err == nil {
		t.Fatal("undersized fleet accepted")
	}
}
