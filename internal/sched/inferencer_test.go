package sched

import (
	"math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/gpu"
	"darknight/internal/nn"
)

func TestInferencerMatchesTrainerPredict(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Seed: 5}
	tr, model, data := tinySetup(t, cfg, 3, nil)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	want, err := tr.Predict(images)
	if err != nil {
		t.Fatal(err)
	}

	inf, err := NewInferencer(cfg, model, nil, "inf/")
	if err != nil {
		t.Fatal(err)
	}
	got, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("image %d: inferencer %d, trainer %d", i, got[i], want[i])
		}
	}
}

// The fleet is a per-call binding: the same Inferencer must serve
// correctly across disjoint device gangs, as a serving worker does across
// successive leases.
func TestInferencerAcrossFleets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "inf/")
	if err != nil {
		t.Fatal(err)
	}
	a, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	b, err := inf.Predict(gpu.NewHonestCluster(3), images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("image %d: %d on fleet A, %d on fleet B", i, a[i], b[i])
		}
	}
}

// Inference never reads the device-side coded-input cache back, so
// successive dispatches must reuse storage keys — a serving loop may run
// indefinitely and device memory has to stay bounded.
func TestInferencerDeviceStorageBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "w0/")
	if err != nil {
		t.Fatal(err)
	}
	cluster := gpu.NewHonestCluster(3)
	if _, err := inf.Predict(cluster, images); err != nil {
		t.Fatal(err)
	}
	after1 := cluster.Device(0).Stored()
	if after1 == 0 {
		t.Fatal("no coded inputs stored after a dispatch")
	}
	for i := 0; i < 5; i++ {
		if _, err := inf.Predict(cluster, images); err != nil {
			t.Fatal(err)
		}
	}
	if after6 := cluster.Device(0).Stored(); after6 != after1 {
		t.Fatalf("device storage grew from %d to %d entries across inference steps", after1, after6)
	}
}

func TestInferencerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 4, 4, 1, 8, 8, 0.05)

	if _, err := NewInferencer(Config{VirtualBatch: 0}, model, nil, ""); err == nil {
		t.Fatal("K=0 accepted")
	}

	inf, err := NewInferencer(Config{VirtualBatch: 2, Seed: 5}, model, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := inf.Gang(); got != 3 {
		t.Fatalf("gang = %d, want 3 (K=2, M=1, E=0)", got)
	}
	// Wrong image count.
	if _, err := inf.Predict(gpu.NewHonestCluster(3), [][]float64{data.Items[0].Image}); err == nil {
		t.Fatal("wrong image count accepted")
	}
	// Undersized fleet: the gang cannot fit.
	if _, err := inf.Predict(gpu.NewHonestCluster(2), [][]float64{data.Items[0].Image, data.Items[1].Image}); err == nil {
		t.Fatal("undersized fleet accepted")
	}
}
