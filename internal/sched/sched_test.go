package sched

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/gpu"
	"darknight/internal/nn"
)

func tinySetup(t *testing.T, cfg Config, clusterSize int, devWrap func(int, gpu.Device) gpu.Device) (*Trainer, *nn.Model, *dataset.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	devs := make([]gpu.Device, clusterSize)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
		if devWrap != nil {
			devs[i] = devWrap(i, devs[i])
		}
	}
	cluster := gpu.NewCluster(devs...)
	tr, err := NewTrainer(cfg, model, cluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), 240, 4, 1, 8, 8, 0.05)
	return tr, model, data
}

func TestConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	cluster := gpu.NewHonestCluster(3)
	// K=4, M=1 needs 5 GPUs; only 3 present.
	if _, err := NewTrainer(Config{VirtualBatch: 4}, model, cluster, nil); err == nil {
		t.Fatal("undersized cluster accepted")
	}
	// K=2, M=1 fits exactly in 3.
	if _, err := NewTrainer(Config{VirtualBatch: 2}, model, cluster, nil); err != nil {
		t.Fatal(err)
	}
	// Invalid K.
	if _, err := NewTrainer(Config{VirtualBatch: 0}, model, cluster, nil); err == nil {
		t.Fatal("K=0 accepted")
	}
}

func TestMaskedForwardMatchesFloat(t *testing.T) {
	// The masked pipeline must produce (near-)identical logits to the
	// plain float forward: masking decodes exactly; only quantization
	// rounding remains.
	tr, model, data := tinySetup(t, Config{VirtualBatch: 2, Seed: 3}, 3, nil)
	images := [][]float64{data.Items[0].Image, data.Items[1].Image}
	preds, err := tr.Predict(images)
	if err != nil {
		t.Fatal(err)
	}
	for i, img := range images {
		logits := model.Forward(img, false)
		if got, want := preds[i], nn.Argmax(logits); got != want {
			t.Fatalf("image %d: masked pred %d, float pred %d", i, got, want)
		}
	}
}

func TestMaskedGradientsMatchFloat(t *testing.T) {
	// Train one virtual batch with the masked pipeline and compare the
	// accumulated gradients against the float reference on an identical
	// twin model.
	cfg := Config{VirtualBatch: 2, Seed: 9}
	tr, model, data := tinySetup(t, cfg, 3, nil)
	twin := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42))) // same init seed
	batch := data.Items[:2]

	if _, err := tr.TrainVirtualBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Float reference: accumulate summed grads on the twin.
	for _, ex := range batch {
		_, g := nn.SoftmaxCrossEntropy(twin.Forward(ex.Image, true), ex.Label)
		twin.Stack.Backward(g)
	}

	mp, fp := model.Params(), twin.Params()
	if len(mp) != len(fp) {
		t.Fatal("param count mismatch")
	}
	for pi := range mp {
		scale := fp[pi].Grad.MaxAbs()
		tol := 0.05 + 0.05*scale
		for i := range mp[pi].Grad.Data {
			diff := math.Abs(mp[pi].Grad.Data[i] - fp[pi].Grad.Data[i])
			if diff > tol {
				t.Fatalf("param %s grad[%d]: masked %v vs float %v (tol %v)",
					mp[pi].Name, i, mp[pi].Grad.Data[i], fp[pi].Grad.Data[i], tol)
			}
		}
	}
}

func TestDarKnightTrainingLearns(t *testing.T) {
	// End-to-end: the full masked pipeline (quantization + masking +
	// coded backward + Algorithm 2 aggregation) trains TinyCNN to high
	// accuracy — the Fig 4 "no accuracy degradation" claim in miniature.
	tr, model, data := tinySetup(t, Config{VirtualBatch: 2, Seed: 5}, 3, nil)
	train, test := data.Split(0.8)
	opt := nn.NewSGD(0.05, 0.9)
	for epoch := 0; epoch < 4; epoch++ {
		train.Shuffle(rand.New(rand.NewSource(int64(epoch))))
		for _, b := range train.Batches(8) {
			if _, _, err := tr.TrainLargeBatch(b, opt, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	if acc := model.Evaluate(test); acc < 0.85 {
		t.Fatalf("masked training accuracy %.2f < 0.85", acc)
	}
}

func TestResidualModelMaskedTraining(t *testing.T) {
	// The recursive walker must handle residual blocks (ResNet path).
	rng := rand.New(rand.NewSource(11))
	model := nn.ResNet50Scaled(1, 8, 8, 4, 1, rng)
	cluster := gpu.NewHonestCluster(3)
	tr, err := NewTrainer(Config{VirtualBatch: 2, Seed: 1}, model, cluster, nil)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), 8, 4, 1, 8, 8, 0.05)
	opt := nn.NewSGD(0.01, 0)
	l1, _, err := tr.TrainLargeBatch(data.Items[:4], opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	var l2 float64
	for i := 0; i < 6; i++ {
		l2, _, err = tr.TrainLargeBatch(data.Items[:4], opt, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(l2 < l1) {
		t.Fatalf("residual masked training loss did not decrease: %v -> %v", l1, l2)
	}
}

func TestIntegrityDetectsMaliciousGPU(t *testing.T) {
	// One malicious GPU corrupting every job; with Redundancy=1 the
	// trainer must refuse the results.
	cfg := Config{VirtualBatch: 2, Redundancy: 1, Seed: 13}
	tr, _, data := tinySetup(t, cfg, 4, func(i int, d gpu.Device) gpu.Device {
		if i == 1 {
			return gpu.NewMalicious(d, gpu.FaultPolicy{EveryNth: 1})
		}
		return d
	})
	_, err := tr.TrainVirtualBatch(data.Items[:2])
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want integrity violation", err)
	}
}

func TestIntegrityPassesHonestCluster(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Redundancy: 1, Seed: 13}
	tr, _, data := tinySetup(t, cfg, 4, nil)
	if _, err := tr.TrainVirtualBatch(data.Items[:2]); err != nil {
		t.Fatalf("honest cluster rejected: %v", err)
	}
}

func TestPredictWithIntegrity(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Redundancy: 1, Seed: 13}
	tr, _, data := tinySetup(t, cfg, 4, func(i int, d gpu.Device) gpu.Device {
		if i == 3 {
			return gpu.NewMalicious(d, gpu.FaultPolicy{EveryNth: 1})
		}
		return d
	})
	_, err := tr.Predict([][]float64{data.Items[0].Image, data.Items[1].Image})
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("err = %v, want integrity violation", err)
	}
}

func TestColludingGPUsSeeOnlyCodedData(t *testing.T) {
	// Wire a collusion pool on one device (M=1 tolerance) and confirm it
	// observed only coded vectors, never a raw quantized input.
	pool := gpu.NewCollusionPool()
	cfg := Config{VirtualBatch: 2, Seed: 17}
	tr, _, data := tinySetup(t, cfg, 3, func(i int, d gpu.Device) gpu.Device {
		if i == 0 {
			return gpu.NewColluding(d, pool)
		}
		return d
	})
	if _, err := tr.TrainVirtualBatch(data.Items[:2]); err != nil {
		t.Fatal(err)
	}
	obs := pool.Observations("step1/lin1")
	if len(obs) == 0 {
		t.Fatal("collusion pool recorded nothing")
	}
	// The observed coded input must not equal either raw quantized image.
	q := tr.q
	for _, o := range obs {
		for i := 0; i < 2; i++ {
			raw := q.Quantize(data.Items[i].Image)
			if len(raw) == len(o.Data) && o.Data.Equal(raw) {
				t.Fatal("colluder observed a raw input")
			}
		}
	}
}

func TestEnclaveMemoryLimitBlocksOversizedBatch(t *testing.T) {
	// A tiny enclave cannot hold the virtual batch working set — the
	// condition that bounds K in the paper (§6, Fig 6b).
	rng := rand.New(rand.NewSource(19))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	cluster := gpu.NewHonestCluster(3)
	encl, err := enclave.New(128) // 128 bytes: absurdly small
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(Config{VirtualBatch: 2, Seed: 1}, model, cluster, encl)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), 2, 4, 1, 8, 8, 0.05)
	if _, err := tr.TrainVirtualBatch(data.Items[:2]); !errors.Is(err, enclave.ErrOutOfMemory) {
		t.Fatalf("err = %v, want enclave OOM", err)
	}
}

func TestTrainLargeBatchAggregation(t *testing.T) {
	// Algorithm 2 with a real enclave: virtual-batch gradients are sealed
	// and reloaded; stats reflect the shard structure.
	rng := rand.New(rand.NewSource(23))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	cluster := gpu.NewHonestCluster(3)
	encl, err := enclave.New(enclave.DefaultEPCBytes)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(Config{VirtualBatch: 2, Seed: 1}, model, cluster, encl)
	if err != nil {
		t.Fatal(err)
	}
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), 8, 4, 1, 8, 8, 0.05)
	opt := nn.NewSGD(0.01, 0)
	_, stats, err := tr.TrainLargeBatch(data.Items[:8], opt, 100)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualBatches != 4 {
		t.Fatalf("virtual batches = %d, want 4", stats.VirtualBatches)
	}
	if stats.Shards < 2 {
		t.Fatalf("shards = %d, want >= 2 with 100-element shards", stats.Shards)
	}
	if stats.SealedBytes == 0 {
		t.Fatal("no sealed bytes recorded")
	}
	est := encl.Stats()
	if est.SealOps == 0 || est.UnsealOps != est.SealOps {
		t.Fatalf("enclave stats = %+v", est)
	}
}

func TestTrainLargeBatchErrors(t *testing.T) {
	tr, _, data := tinySetup(t, Config{VirtualBatch: 4, Seed: 1}, 6, nil)
	opt := nn.NewSGD(0.01, 0)
	if _, _, err := tr.TrainLargeBatch(data.Items[:2], opt, 0); err == nil {
		t.Fatal("batch smaller than K accepted")
	}
	if _, err := tr.TrainVirtualBatch(data.Items[:3]); err == nil {
		t.Fatal("wrong virtual batch size accepted")
	}
	if _, err := tr.Predict([][]float64{data.Items[0].Image}); err == nil {
		t.Fatal("wrong predict batch size accepted")
	}
}

func TestRecoveryFromMaliciousGPU(t *testing.T) {
	// With Redundancy=2 and recovery enabled, training proceeds THROUGH a
	// tampering GPU: the culprit is identified and clean equations decode
	// the true results (the paper's "corrective action" future work).
	cfg := Config{VirtualBatch: 2, Redundancy: 2, Seed: 29}
	tr, model, data := tinySetup(t, cfg, 5, func(i int, d gpu.Device) gpu.Device {
		if i == 2 {
			return gpu.NewMalicious(d, gpu.FaultPolicy{EveryNth: 1})
		}
		return d
	})
	if err := tr.EnableRecovery(); err != nil {
		t.Fatal(err)
	}
	// Train a few batches despite constant tampering.
	opt := nn.NewSGD(0.05, 0.9)
	for i := 0; i+8 <= 48; i += 8 {
		if _, _, err := tr.TrainLargeBatch(data.Items[i:i+8], opt, 0); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	st := tr.Recovery()
	if st.Violations == 0 || st.Recovered != st.Violations {
		t.Fatalf("recovery stats = %+v", st)
	}
	if len(st.BlamedGPUs) != 1 || st.BlamedGPUs[0] != 2 {
		t.Fatalf("blamed = %v, want [2]", st.BlamedGPUs)
	}
	// And the model still learns: compare against the honest twin path.
	if acc := model.Evaluate(data); acc < 0.5 {
		t.Fatalf("recovered training accuracy %.2f too low", acc)
	}
}

func TestRecoveryMatchesHonestDecode(t *testing.T) {
	// Recovered outputs must be IDENTICAL to what an honest cluster
	// produces: the decode is exact, not approximate.
	seedData := dataset.SyntheticCIFAR(rand.New(rand.NewSource(31)), 2, 4, 1, 8, 8, 0.05)
	images := [][]float64{seedData.Items[0].Image, seedData.Items[1].Image}

	cfgHonest := Config{VirtualBatch: 2, Redundancy: 2, Seed: 33}
	trHonest, _, _ := tinySetup(t, cfgHonest, 5, nil)
	honest, err := trHonest.Predict(images)
	if err != nil {
		t.Fatal(err)
	}

	trBad, _, _ := tinySetup(t, cfgHonest, 5, func(i int, d gpu.Device) gpu.Device {
		if i == 0 {
			return gpu.NewMalicious(d, gpu.FaultPolicy{EveryNth: 1})
		}
		return d
	})
	if err := trBad.EnableRecovery(); err != nil {
		t.Fatal(err)
	}
	recovered, err := trBad.Predict(images)
	if err != nil {
		t.Fatal(err)
	}
	for i := range honest {
		if honest[i] != recovered[i] {
			t.Fatalf("prediction %d: honest %d vs recovered %d", i, honest[i], recovered[i])
		}
	}
}

func TestEnableRecoveryRequiresRedundancy2(t *testing.T) {
	tr, _, _ := tinySetup(t, Config{VirtualBatch: 2, Redundancy: 1, Seed: 1}, 4, nil)
	if err := tr.EnableRecovery(); err == nil {
		t.Fatal("recovery with E=1 accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	// Same seed and same data produce identical trained weights — the
	// whole pipeline (coefficient draws, noise, coding) is reproducible.
	run := func() []float64 {
		tr, model, data := tinySetup(t, Config{VirtualBatch: 2, Seed: 77}, 3, nil)
		opt := nn.NewSGD(0.05, 0.9)
		for i := 0; i+8 <= 24; i += 8 {
			if _, _, err := tr.TrainLargeBatch(data.Items[i:i+8], opt, 0); err != nil {
				t.Fatal(err)
			}
		}
		var out []float64
		for _, p := range model.Params() {
			out = append(out, p.W.Data...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("weight %d differs across identical seeded runs", i)
		}
	}
}

func TestMaskedVGGAndMobileNetTraining(t *testing.T) {
	// The walker must handle the two remaining model families end to end.
	for _, build := range []func(*rand.Rand) *nn.Model{
		func(r *rand.Rand) *nn.Model { return nn.VGG16Scaled(1, 8, 8, 4, 1, r) },
		func(r *rand.Rand) *nn.Model { return nn.MobileNetV2Scaled(1, 8, 8, 4, 1, r) },
	} {
		model := build(rand.New(rand.NewSource(13)))
		cluster := gpu.NewHonestCluster(3)
		tr, err := NewTrainer(Config{VirtualBatch: 2, Seed: 1}, model, cluster, nil)
		if err != nil {
			t.Fatal(err)
		}
		data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), 4, 4, 1, 8, 8, 0.05)
		opt := nn.NewSGD(0.01, 0)
		if _, _, err := tr.TrainLargeBatch(data.Items, opt, 0); err != nil {
			t.Fatalf("%s: %v", model.Name, err)
		}
	}
}
