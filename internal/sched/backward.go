package sched

import (
	"errors"
	"fmt"
	"time"

	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/tensor"
)

// This file is the backward half of the TEE-side engine: the reverse model
// walk, the Eq (4–6) gradient offload, and the resilience machinery around
// it (straggler-tolerant dual-window dispatch, device-cache refill). It is
// shared by the serial Trainer and the pipelined TrainPipeline lanes —
// exactly as the forward walk in engine.go is shared by Inferencer,
// Pipeline and the trainers.

// backwardLayer reverses forwardLayer, returning per-example input grads.
func (e *engine) backwardLayer(code *masking.Code, tr *trace, grads []*tensor.Tensor) ([]*tensor.Tensor, error) {
	switch v := tr.layer.(type) {
	case *nn.Sequential:
		cur := grads
		var err error
		for i := len(tr.children) - 1; i >= 0; i-- {
			// A trace marked blockLen=d closes a fused run of d bilinear
			// layers: offload their gradient equations through one block
			// flight. The dual-window straggler-tolerant backward needs the
			// per-layer dispatch (block flights carry the primary window
			// only), so a quorum-configured backward walks layer by layer.
			if d := tr.children[i].blockLen; d > 1 {
				if bf, fused := e.blockFleet(); fused && !e.backwardQuorum(code) {
					cur, err = e.offloadBackwardBlock(code, bf, tr.children[i-d+1:i+1], cur)
					if err != nil {
						return nil, err
					}
					i -= d - 1
					continue
				}
			}
			cur, err = e.backwardLayer(code, tr.children[i], cur)
			if err != nil {
				return nil, err
			}
		}
		return cur, nil
	case *nn.Residual:
		dBody, err := e.backwardLayer(code, tr.children[0], grads)
		if err != nil {
			return nil, err
		}
		dSkip := grads
		if v.Skip() != nil {
			dSkip, err = e.backwardLayer(code, tr.children[1], grads)
			if err != nil {
				return nil, err
			}
		}
		out := make([]*tensor.Tensor, len(grads))
		for i := range out {
			o := dBody[i].Clone()
			o.Add(dSkip[i])
			out[i] = o
		}
		return out, nil
	default:
		if lin, ok := tr.layer.(nn.Linear); ok {
			return e.offloadBackward(code, tr, lin, grads)
		}
		out := make([]*tensor.Tensor, len(grads))
		for i := range grads {
			// Re-prime the layer's single-forward cache for THIS example
			// before its backward. The prime+backward pair runs without a
			// token release in between, so pipelined lanes clobbering the
			// shared layer's cache between offloads cannot corrupt it.
			tr.layer.Forward(tr.inputs[i], true)
			out[i] = tr.layer.Backward(grads[i])
		}
		return out, nil
	}
}

// offloadBackward recovers the summed weight gradient of one bilinear
// layer from the coded equations (Eq 4–6) and propagates input gradients.
func (e *engine) offloadBackward(code *masking.Code, tr *trace, lin nn.Linear, grads []*tensor.Tensor) ([]*tensor.Tensor, error) {
	k := e.cfg.VirtualBatch
	osp := e.sp.Child("offload-backward")
	if osp != nil {
		osp.Annotate("key", tr.key)
		defer osp.End()
	}
	esp := osp.Child("encode")
	t0 := time.Now()

	// Bias gradient: TEE-side, cheap, uses only the public δ.
	for i := 0; i < k; i++ {
		lin.AddGradB(grads[i], 1)
	}

	// Shared normalization so the decoded SUM can be unscaled exactly.
	fd := sharedNormFactor(grads, e.cfg.NormLimit)
	fx := sharedNormFactor(tr.inputs, e.cfg.NormLimit)

	quantDeltas := make([]field.Vec, k)
	scratch := make([]float64, lin.OutLen())
	for i := 0; i < k; i++ {
		for j, v := range grads[i].Data {
			scratch[j] = v / fd
		}
		quantDeltas[i] = e.q.Quantize(scratch)
	}

	// Each GPU j computes Eq_j on (Σ_i β_ji·δ_i, x̄_j). The combination
	// happens GPU-side in the paper; B and δ are public either way. Row j
	// of B is exactly the K combination coefficients — one fused
	// lazy-reduced combine per equation. These escape to laggard kernels on
	// the quorum path, so they are deliberately fresh allocations.
	deltaBars := make([]field.Vec, code.S)
	for j := 0; j < code.S; j++ {
		bar := make(field.Vec, lin.OutLen())
		field.Combine(bar, code.B.Row(j), quantDeltas)
		deltaBars[j] = bar
	}
	// Straggler tolerance dispatches the redundant decoding's window too
	// (SecondaryB rows over coded inputs [E, S+E)), so the decode can
	// proceed from whichever window completes first.
	bqf, isQuorum := e.fleet.(BackwardQuorumFleet)
	useQuorum := isQuorum && e.cfg.StragglerSlack > 0 && code.E >= 1
	var secBars []field.Vec
	if useQuorum {
		bsec := code.SecondaryB()
		secBars = make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			bar := make(field.Vec, lin.OutLen())
			field.Combine(bar, bsec.Row(j), quantDeltas)
			secBars[j] = bar
		}
	}
	kernel := func(delta, x field.Vec) field.Vec { return lin.GradWeightsField(delta, x) }
	e.phases.Encode += time.Since(t0)
	esp.End()

	sum, err := e.dispatchBackward(code, tr, osp, kernel, deltaBars, secBars, bqf, useQuorum, lin.WLen(), fx)
	if err != nil {
		return nil, err
	}

	t2 := time.Now()
	dw := e.q.UnquantizeProduct(sum)
	// The coded inputs carried 1/fx, the deltas 1/fd: undo both. The
	// quantization scales 2^(2l) are already removed by UnquantizeProduct.
	rescale := fd * fx
	for j := range dw {
		dw[j] *= rescale
	}
	lin.AddGradW(dw, 1)

	// Input gradient: input-independent linear op, offloadable without
	// coding (paper §4.2, computation (2)); computed here functionally.
	out := make([]*tensor.Tensor, k)
	for i := 0; i < k; i++ {
		out[i] = lin.BackwardInputOnly(grads[i])
	}
	e.phases.Decode += time.Since(t2)
	e.phases.Offloads++
	return out, nil
}

// dispatchBackward runs one layer's backward gang dispatch and decode,
// mirroring offloadForward's token discipline: a pipelined engine releases
// the TEE token for exactly the GPU flight. A cache miss — the fleet's
// devices no longer hold this trace's coded forward inputs (quarantine
// replacement, slot reshuffle, or a quorum laggard that never stored) —
// triggers one refillStores pass and a retry.
func (e *engine) dispatchBackward(code *masking.Code, tr *trace, osp *obs.Span, kernel gpu.BilinearKernel, prim, sec []field.Vec,
	bqf BackwardQuorumFleet, useQuorum bool, wlen int, fx float64) (field.Vec, error) {
	refilled := false
	for {
		dsp := osp.Child("dispatch")
		t1 := time.Now()
		var (
			eqs     []field.Vec
			outcome gpu.BackwardOutcome
			err     error
		)
		switch {
		case useQuorum && e.tee != nil:
			var pend *gpu.PendingBackward
			if abq, ok := e.fleet.(AsyncBackwardQuorumFleet); ok {
				pend = abq.BackwardQuorumAsync(tr.key, kernel, prim, sec, code.E)
			}
			e.tee.Unlock()
			if pend != nil {
				outcome, err = pend.Wait()
			} else {
				outcome, err = bqf.BackwardQuorum(tr.key, kernel, prim, sec, code.E)
			}
			flight := time.Since(t1)
			e.lockTEE()
			e.phases.Dispatch += flight
		case useQuorum:
			outcome, err = bqf.BackwardQuorum(tr.key, kernel, prim, sec, code.E)
			e.phases.Dispatch += time.Since(t1)
		case e.tee != nil:
			var pend *gpu.Pending
			if ab, ok := e.fleet.(AsyncBackwardFleet); ok {
				pend = ab.BackwardAllAsync(tr.key, kernel, prim)
			}
			e.tee.Unlock()
			if pend != nil {
				eqs, _, err = pend.Wait()
			} else {
				eqs, err = e.fleet.BackwardAll(tr.key, kernel, prim)
			}
			flight := time.Since(t1)
			e.lockTEE()
			e.phases.Dispatch += flight
		default:
			eqs, err = e.fleet.BackwardAll(tr.key, kernel, prim)
			e.phases.Dispatch += time.Since(t1)
		}
		dsp.End()
		e.phases.Flights++
		if err != nil {
			if errors.Is(err, gpu.ErrNoStored) && !refilled {
				osp.Annotate("refill", tr.key)
				if rerr := e.refillStores(code, tr, fx); rerr != nil {
					return nil, fmt.Errorf("sched: backward cache refill for %q: %w", tr.key, rerr)
				}
				refilled = true
				continue
			}
			return nil, err
		}

		csp := osp.Child("decode")
		t2 := time.Now()
		sum := field.NewVec(wlen)
		if useQuorum {
			err = code.DecodeBackwardSubsetInto(sum, outcome.Prim, outcome.Sec, outcome.PrimPresent, outcome.SecPresent)
		} else {
			err = code.DecodeBackwardInto(sum, eqs)
		}
		e.phases.Decode += time.Since(t2)
		csp.End()
		if err != nil {
			return nil, err
		}
		return sum, nil
	}
}

// refillStores re-creates the device-side coded-input cache for one
// layer's backward pass: the trace's stored inputs are re-quantized with
// the forward normalization and re-encoded with the noise rows captured
// during forward — bit-identical coded vectors, so a quorum laggard's
// original store racing the refill is benign — then re-stored on the
// current fleet's slots with an identity-kernel dispatch (the store is the
// point; the echoed results are discarded).
func (e *engine) refillStores(code *masking.Code, tr *trace, fx float64) error {
	if len(tr.noise) == 0 {
		return fmt.Errorf("sched: trace %q carries no captured noise (forward ran in inference mode?)", tr.key)
	}
	n := tr.inputs[0].Size()
	quantIn := make([]field.Vec, e.cfg.VirtualBatch)
	scratch := make([]float64, n)
	for i, x := range tr.inputs {
		for j, v := range x.Data {
			scratch[j] = v / fx
		}
		quantIn[i] = e.q.Quantize(scratch)
	}
	coded := make([]field.Vec, code.NumCoded())
	for j := range coded {
		coded[j] = field.NewVec(n)
	}
	if err := code.EncodeWith(coded, quantIn, tr.noise); err != nil {
		return err
	}
	e.refills++
	e.rec.Record(obs.Event{
		Kind: obs.KindRefill, Subsystem: "sched", Device: -1, Slot: -1,
		Detail: fmt.Sprintf("re-created device stores for %q", tr.key),
	})
	identity := func(x field.Vec) field.Vec { return x }
	e.phases.Flights++
	_, err := e.fleet.ForwardAll(tr.key, identity, coded)
	return err
}
