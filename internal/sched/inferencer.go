package sched

import (
	"fmt"

	"darknight/internal/enclave"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/tensor"
)

// Inferencer is the forward-only half of the runtime: one masked inference
// pipeline carrying no optimizer state and no backward machinery. It exists
// so serving workers can each own a pipeline (with a private model replica)
// and dispatch onto whatever device gang they currently hold — the fleet is
// a per-call argument rather than a construction-time binding.
//
// An Inferencer is NOT safe for concurrent use: like the TEE execution
// context it models, it runs one virtual batch at a time. Run one
// Inferencer per worker goroutine, each with its own model replica (nn
// layers cache forward state; see package nn).
type Inferencer struct {
	eng engine
}

// NewInferencer wires a forward-only pipeline around a model replica. The
// enclave may be nil (memory accounting skipped) or shared across workers —
// enclave accounting is thread-safe, modelling one EPC budget serving many
// TEE threads. keyspace must be unique among pipelines sharing physical
// devices so their GPU-side coded-tensor storage cannot alias.
func NewInferencer(cfg Config, model *nn.Model, encl *enclave.Enclave, keyspace string) (*Inferencer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.maskParams().Validate(); err != nil {
		return nil, err
	}
	eng := newEngine(cfg, model, nil, encl, keyspace)
	// Forward-only: nothing reads the device-side coded-input cache back,
	// so successive dispatches reuse keys (bounded device storage).
	eng.reuseKeys = true
	return &Inferencer{eng: eng}, nil
}

// Config returns the effective configuration.
func (inf *Inferencer) Config() Config { return inf.eng.cfg }

// EnableRecovery turns on audit-and-recover for forward offloads: instead
// of failing the batch, a tampered dispatch is re-decoded from the clean
// equations and the culprit slots are recorded (readable via Culprits).
// Requires Redundancy >= 2 — attribution needs a second redundant equation.
func (inf *Inferencer) EnableRecovery() error {
	if inf.eng.cfg.Redundancy < 2 {
		return fmt.Errorf("sched: recovery needs Redundancy >= 2, have %d", inf.eng.cfg.Redundancy)
	}
	inf.eng.recover = true
	return nil
}

// Recovery returns the accumulated recovery statistics.
func (inf *Inferencer) Recovery() RecoveryStats { return inf.eng.recovery }

// Culprits returns the gang slots attributed as tampering during the most
// recent Forward/Predict call (empty when the batch was clean). The fleet
// layer maps slots to physical devices for quarantine; meaningful even
// when recovery hid the fault from the caller.
func (inf *Inferencer) Culprits() []int { return inf.eng.stepCulprits }

// Gang returns the number of devices one dispatch occupies: K+M+E.
func (inf *Inferencer) Gang() int { return inf.eng.cfg.maskParams().GPUs() }

// PhaseStats returns the pipeline's cumulative encode/dispatch/decode
// latency breakdown. Callers window measurements with PhaseStats.Sub.
func (inf *Inferencer) PhaseStats() PhaseStats { return inf.eng.phases }

// Forward runs the masked forward pass for exactly K images on the given
// fleet and returns the per-image logits. The fleet must offer at least
// K+M+E devices (a gang lease view or a whole cluster).
func (inf *Inferencer) Forward(fleet Fleet, images [][]float64) ([]*tensor.Tensor, error) {
	e := &inf.eng
	k := e.cfg.VirtualBatch
	if len(images) != k {
		return nil, fmt.Errorf("sched: inference needs exactly %d images, got %d", k, len(images))
	}
	if need := inf.Gang(); fleet.Size() < need {
		return nil, fmt.Errorf("sched: gang of %d devices required, fleet has %d", need, fleet.Size())
	}
	e.fleet = fleet
	defer func() { e.fleet = nil }()
	e.beginStep()
	code, err := masking.New(e.cfg.maskParams(), e.rng)
	if err != nil {
		return nil, err
	}
	xs := make([]*tensor.Tensor, k)
	for i := range images {
		xs[i] = tensor.FromSlice(images[i], e.model.InShape...)
	}
	logits, _, err := e.forwardLayer(code, e.model.Stack, xs, false)
	return logits, err
}

// Predict classifies exactly K images on the given fleet.
func (inf *Inferencer) Predict(fleet Fleet, images [][]float64) ([]int, error) {
	logits, err := inf.Forward(fleet, images)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(logits))
	for i := range logits {
		out[i] = nn.Argmax(logits[i])
	}
	return out, nil
}
