package sched

import (
	"fmt"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/tensor"
)

// Inferencer is the forward-only half of the runtime: one masked inference
// pipeline carrying no optimizer state and no backward machinery. It exists
// so serving workers can each own a pipeline (with a private model replica)
// and dispatch onto whatever device gang they currently hold — the fleet is
// a per-call argument rather than a construction-time binding.
//
// An Inferencer is NOT safe for concurrent use: like the TEE execution
// context it models, it runs one virtual batch at a time. Run one
// Inferencer per worker goroutine, each with its own model replica (nn
// layers cache forward state; see package nn).
type Inferencer struct {
	eng engine
	// lens caches the offloaded layers' input lengths in offload order —
	// the noise-pool sizing information.
	lens []int
}

// NewInferencer wires a forward-only pipeline around a model replica. The
// enclave may be nil (memory accounting skipped) or shared across workers —
// enclave accounting is thread-safe, modelling one EPC budget serving many
// TEE threads. keyspace must be unique among pipelines sharing physical
// devices so their GPU-side coded-tensor storage cannot alias.
func NewInferencer(cfg Config, model *nn.Model, encl *enclave.Enclave, keyspace string) (*Inferencer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.maskParams().Validate(); err != nil {
		return nil, err
	}
	eng := newEngine(cfg, model, nil, encl, keyspace)
	// Forward-only: nothing reads the device-side coded-input cache back,
	// so successive dispatches reuse keys (bounded device storage).
	eng.reuseKeys = true
	return &Inferencer{eng: eng, lens: offloadLens(model.Stack)}, nil
}

// offloadLens walks a layer tree in forward order and returns the input
// length of every offloaded (bilinear) layer — the per-layer noise-vector
// lengths a NoisePool pre-draws, in exactly the order the engine consumes
// them.
func offloadLens(layer nn.Layer) []int {
	var lens []int
	var walk func(nn.Layer)
	walk = func(l nn.Layer) {
		switch v := l.(type) {
		case *nn.Sequential:
			for _, child := range v.Layers() {
				walk(child)
			}
		case *nn.Residual:
			walk(v.Body())
			if v.Skip() != nil {
				walk(v.Skip())
			}
		default:
			if lin, ok := l.(nn.Linear); ok {
				lens = append(lens, lin.InLen())
			}
		}
	}
	walk(layer)
	return lens
}

// Config returns the effective configuration.
func (inf *Inferencer) Config() Config { return inf.eng.cfg }

// EnableRecovery turns on audit-and-recover for forward offloads: instead
// of failing the batch, a tampered dispatch is re-decoded from the clean
// equations and the culprit slots are recorded (readable via Culprits).
// Requires Redundancy >= 2 — attribution needs a second redundant equation.
func (inf *Inferencer) EnableRecovery() error {
	if inf.eng.cfg.Redundancy < 2 {
		return fmt.Errorf("sched: recovery needs Redundancy >= 2, have %d", inf.eng.cfg.Redundancy)
	}
	inf.eng.recover = true
	return nil
}

// Recovery returns the accumulated recovery statistics.
func (inf *Inferencer) Recovery() RecoveryStats { return inf.eng.recovery }

// Culprits returns the gang slots attributed as tampering during the most
// recent Forward/Predict call (empty when the batch was clean). The fleet
// layer maps slots to physical devices for quarantine; meaningful even
// when recovery hid the fault from the caller.
func (inf *Inferencer) Culprits() []int { return inf.eng.stepCulprits }

// Gang returns the number of devices one dispatch occupies: K+M+E.
func (inf *Inferencer) Gang() int { return inf.eng.cfg.maskParams().GPUs() }

// SetSpan installs the trace span the next Forward/Predict call hangs its
// offload encode/dispatch/decode children from. Like the Inferencer
// itself, not safe for concurrent use; a nil span (the default) traces
// nothing at no cost. The span stays installed until replaced — callers
// pass nil after the batch to avoid cross-batch attribution.
func (inf *Inferencer) SetSpan(sp *obs.Span) { inf.eng.sp = sp }

// SetObserver attaches a flight recorder: cache refills and integrity
// verdicts are recorded as they happen. Call before traffic starts.
func (inf *Inferencer) SetObserver(rec *obs.FlightRecorder) { inf.eng.rec = rec }

// SetDeadline installs the absolute deadline of the next Forward/Predict
// call: the engine re-checks it before every gang dispatch, failing the
// batch with an error matching context.DeadlineExceeded rather than
// occupying devices it cannot use in time. The zero time (the default)
// disables the check. Like SetSpan, not safe for concurrent use and the
// deadline stays installed until replaced.
func (inf *Inferencer) SetDeadline(t time.Time) { inf.eng.deadline = t }

// PhaseStats returns the pipeline's cumulative encode/dispatch/decode
// latency breakdown (plus Wall, the summed per-batch forward wall-clock).
// Callers window measurements with PhaseStats.Sub.
func (inf *Inferencer) PhaseStats() PhaseStats { return inf.eng.phases }

// EnableNoisePool attaches a seeded background noise generator sized for
// the model's offloaded layers: encodes consume pre-drawn material instead
// of paying an inline RNG pass per layer, falling back (counted) when the
// generator is behind. sets <= 0 picks two full layer cycles. Call Close
// to stop the generator.
func (inf *Inferencer) EnableNoisePool(sets int) {
	if inf.eng.pool != nil || len(inf.lens) == 0 {
		return
	}
	// The pool seed is offset from the engine seed so the offline stream is
	// not a replay of the inline one.
	inf.eng.pool = masking.NewNoisePool(inf.eng.cfg.Seed+0x0ff1e, inf.eng.cfg.Collusion, inf.lens, sets)
}

// PoolStats returns the noise pool's hit/miss counters (zero value when no
// pool is attached).
func (inf *Inferencer) PoolStats() masking.NoisePoolStats {
	if inf.eng.pool == nil {
		return masking.NoisePoolStats{}
	}
	return inf.eng.pool.Stats()
}

// Close stops the background noise generator, if one was enabled. The
// Inferencer remains usable (encodes draw inline).
func (inf *Inferencer) Close() {
	if inf.eng.pool != nil {
		inf.eng.pool.Close()
		inf.eng.pool = nil
	}
}

// Forward runs the masked forward pass for exactly K images on the given
// fleet and returns the per-image logits. The fleet must offer at least
// K+M+E devices (a gang lease view or a whole cluster).
func (inf *Inferencer) Forward(fleet Fleet, images [][]float64) ([]*tensor.Tensor, error) {
	e := &inf.eng
	k := e.cfg.VirtualBatch
	if len(images) != k {
		return nil, fmt.Errorf("sched: inference needs exactly %d images, got %d", k, len(images))
	}
	if need := inf.Gang(); fleet.Size() < need {
		return nil, fmt.Errorf("sched: gang of %d devices required, fleet has %d", need, fleet.Size())
	}
	e.fleet = fleet
	defer func() { e.fleet = nil }()
	t0 := time.Now()
	defer func() { e.phases.Wall += time.Since(t0) }()
	e.beginStep()
	code, err := masking.New(e.cfg.maskParams(), e.rng)
	if err != nil {
		return nil, err
	}
	xs := make([]*tensor.Tensor, k)
	for i := range images {
		xs[i] = tensor.FromSlice(images[i], e.model.InShape...)
	}
	logits, _, err := e.forwardLayer(code, e.model.Stack, xs, false)
	return logits, err
}

// Predict classifies exactly K images on the given fleet.
func (inf *Inferencer) Predict(fleet Fleet, images [][]float64) ([]int, error) {
	logits, err := inf.Forward(fleet, images)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(logits))
	for i := range logits {
		out[i] = nn.Argmax(logits[i])
	}
	return out, nil
}
