package sched

import (
	"errors"
	"fmt"
	"time"

	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/tensor"
)

// This file is the fused-block dispatch path: runs of directly consecutive
// bilinear layers (nn.CompileFusion) ride ONE persistent gang flight
// instead of one flight per layer. The per-layer coding math is reused
// verbatim — every layer boundary still decodes, verifies, restores
// floats, adds the bias and re-encodes, because the interior requantization
// is data-dependent (the dynamic normalization factor of layer l+1's input
// is a function of layer l's decoded output) and chaining products in the
// field would overflow the 25-bit prime. What a block flight amortizes is
// everything *around* the math: the lease/handle bookkeeping, the
// goroutine fan-out and gather machinery, and — on devices that model a
// per-dispatch launch latency — the launch cost itself, paid once per trip
// (gpu.DeviceTrip) instead of once per layer. Outputs are bit-identical to
// the per-layer path by construction; TestFusedBlockMatchesPerLayer pins
// it.

// offloadForwardBlock runs one fused block's layers through a single gang
// flight, returning the block's outputs and one trace per layer (the last
// trace carries blockLen so the backward walk re-fuses the run).
func (e *engine) offloadForwardBlock(code *masking.Code, bf BlockFleet, blk nn.FusedBlock, xs []*tensor.Tensor, train bool) ([]*tensor.Tensor, []*trace, error) {
	if err := e.checkDeadline(); err != nil {
		return nil, nil, err
	}
	depth := blk.Depth()
	bsp := e.sp.Child("offload-block")
	if bsp != nil {
		bsp.Annotatef("depth", "%d", depth)
		defer bsp.End()
	}
	flight, err := bf.BeginBlock(code.NumCoded())
	if err != nil {
		return nil, nil, err
	}
	defer flight.End()
	e.phases.Flights++
	e.phases.FusedBlocks++
	e.phases.FusedLayers += int64(depth)

	// Same quorum gate as offloadForward: straggler-tolerant gather only on
	// fleets that support quorum dispatch, so a fused run decodes exactly
	// the subsets the per-layer path would have.
	_, isQuorum := e.fleet.(QuorumFleet)
	slack := e.effectiveSlack()
	useQuorum := isQuorum && slack > 0

	traces := make([]*trace, depth)
	cur := xs
	for d := 0; d < depth; d++ {
		lin := blk.Layers[d]
		e.linSeq++
		tr := &trace{layer: lin, inputs: append([]*tensor.Tensor(nil), cur...)}
		if e.reuseKeys {
			tr.key = fmt.Sprintf("%slin%d", e.keyspace, e.linSeq)
		} else {
			tr.key = fmt.Sprintf("%sstep%d/lin%d", e.keyspace, e.stepSeq, e.linSeq)
		}
		traces[d] = tr

		osp := bsp.Child("offload")
		if osp != nil {
			osp.Annotate("key", tr.key)
		}
		esp := osp.Child("encode")
		t0 := time.Now()
		enc, eerr := e.encodeForward(code, tr, lin, cur, train, useQuorum)
		if eerr != nil {
			osp.End()
			return nil, nil, eerr
		}
		wq := enc.wq
		e.phases.Encode += time.Since(t0)
		esp.End()

		dsp := osp.Child("dispatch")
		if dsp != nil && useQuorum {
			dsp.Annotatef("quorum", "%d/%d", code.NumCoded()-slack, code.NumCoded())
		}
		t1 := time.Now()
		kernel := func(x field.Vec) field.Vec { return lin.LinearForwardField(wq, x) }
		pend, perr := flight.ForwardLayer(tr.key, kernel, enc.coded)
		if perr != nil {
			e.freeEnclave(enc.workset)
			dsp.End()
			osp.End()
			return nil, nil, perr
		}
		// Token discipline mirrors offloadForward: a pipelined engine
		// releases the TEE token for exactly the gather wait, so sibling
		// lanes encode/decode their batches while this block's layer is in
		// device flight.
		var (
			results []field.Vec
			present []bool
		)
		if e.tee != nil {
			e.tee.Unlock()
		}
		if useQuorum {
			results, present = pend.WaitQuorum(code.NumCoded() - slack)
		} else {
			results, _ = pend.Wait()
		}
		flightTime := time.Since(t1)
		if e.tee != nil {
			e.lockTEE()
		}
		e.phases.Dispatch += flightTime
		dsp.End()

		csp := osp.Child("decode")
		t2 := time.Now()
		decoded, derr := e.decodeForward(code, csp, results, present)
		if derr != nil {
			e.freeEnclave(enc.workset)
			osp.End()
			return nil, nil, derr
		}
		outs := e.restoreForward(lin, decoded, enc.fx*enc.fw)
		e.phases.Decode += time.Since(t2)
		e.phases.Offloads++
		e.freeEnclave(enc.workset)
		csp.End()
		osp.End()
		cur = outs
	}
	traces[depth-1].blockLen = depth
	return cur, traces, nil
}

// bwdBlockLayer is one layer's TEE-prepared backward state inside a fused
// block: the public combined delta equations and the unscaling factors the
// decode needs.
type bwdBlockLayer struct {
	tr        *trace
	lin       nn.Linear
	deltaBars []field.Vec
	kernel    gpu.BilinearKernel
	fd, fx    float64
}

// backwardQuorum reports whether the backward dispatch would use the
// dual-window straggler-tolerant path. Block flights carry the primary
// window only, so a quorum-configured backward falls back entirely to the
// per-layer dispatch (which handles both windows) — gate parity with
// offloadBackward's useQuorum.
func (e *engine) backwardQuorum(code *masking.Code) bool {
	_, ok := e.fleet.(BackwardQuorumFleet)
	return ok && e.cfg.StragglerSlack > 0 && code.E >= 1
}

// offloadBackwardBlock runs one fused block's gradient offloads through a
// single gang flight over the S primary-equation slots. trs is the block's
// forward traces in forward order; grads is the gradient flowing into the
// block's LAST layer. Returns the per-example input gradients below the
// block's first layer.
//
// The TEE stage walks the block last layer first — bias gradients, delta
// quantization, the public Eq (4) combinations, and the input-gradient
// chain to the layer below — before anything is dispatched; the device
// stage then ships every layer's equations down the open flight, and the
// decode stage folds each layer's gathered equations with the secret γ
// exactly as the per-layer path does.
func (e *engine) offloadBackwardBlock(code *masking.Code, bf BlockFleet, trs []*trace, grads []*tensor.Tensor) ([]*tensor.Tensor, error) {
	depth := len(trs)
	k := e.cfg.VirtualBatch
	bsp := e.sp.Child("offload-backward-block")
	if bsp != nil {
		bsp.Annotatef("depth", "%d", depth)
		defer bsp.End()
	}

	t0 := time.Now()
	layers := make([]bwdBlockLayer, depth)
	cur := grads
	for d := depth - 1; d >= 0; d-- {
		tr := trs[d]
		lin, ok := tr.layer.(nn.Linear)
		if !ok {
			return nil, fmt.Errorf("sched: fused block trace %q is not a bilinear layer", tr.key)
		}
		for i := 0; i < k; i++ {
			lin.AddGradB(cur[i], 1)
		}
		fd := sharedNormFactor(cur, e.cfg.NormLimit)
		fx := sharedNormFactor(tr.inputs, e.cfg.NormLimit)
		quantDeltas := make([]field.Vec, k)
		scratch := make([]float64, lin.OutLen())
		for i := 0; i < k; i++ {
			for j, v := range cur[i].Data {
				scratch[j] = v / fd
			}
			quantDeltas[i] = e.q.Quantize(scratch)
		}
		// Row j of B is the K combination coefficients of equation j. Fresh
		// allocations: the equations escape to the flight's slot workers.
		deltaBars := make([]field.Vec, code.S)
		for j := 0; j < code.S; j++ {
			bar := make(field.Vec, lin.OutLen())
			field.Combine(bar, code.B.Row(j), quantDeltas)
			deltaBars[j] = bar
		}
		layers[d] = bwdBlockLayer{
			tr: tr, lin: lin, deltaBars: deltaBars,
			kernel: func(delta, x field.Vec) field.Vec { return lin.GradWeightsField(delta, x) },
			fd:     fd, fx: fx,
		}
		next := make([]*tensor.Tensor, k)
		for i := 0; i < k; i++ {
			next[i] = lin.BackwardInputOnly(cur[i])
		}
		cur = next
	}
	e.phases.Encode += time.Since(t0)

	flight, err := bf.BeginBlock(code.S)
	if err != nil {
		return nil, err
	}
	defer flight.End()
	e.phases.Flights++
	e.phases.FusedBlocks++
	e.phases.FusedLayers += int64(depth)

	// Ship every layer's equations immediately — slot queues are unbounded,
	// so the whole block is in flight before the first gather.
	pends := make([]*gpu.LayerPending, depth)
	for d := depth - 1; d >= 0; d-- {
		p, perr := flight.GradLayer(layers[d].tr.key, layers[d].kernel, layers[d].deltaBars)
		if perr != nil {
			return nil, perr
		}
		pends[d] = p
	}

	for d := depth - 1; d >= 0; d-- {
		l := layers[d]
		eqs, errs := e.waitGrad(pends[d])
		if werr := foldSlotErrors(errs); werr != nil {
			if !errors.Is(werr, gpu.ErrNoStored) {
				return nil, werr
			}
			// Mid-block cache miss: a device lost this layer's coded forward
			// input (quarantine replacement, slot reshuffle). Re-create all
			// S+E stores from the trace — refillStores is its own
			// identity-kernel flight, bit-identical to the forward encode —
			// then re-ship the layer's equations down the still-open block
			// flight.
			bsp.Annotate("refill", l.tr.key)
			if rerr := e.refillStores(code, l.tr, l.fx); rerr != nil {
				return nil, fmt.Errorf("sched: backward cache refill for %q: %w", l.tr.key, rerr)
			}
			p, perr := flight.GradLayer(l.tr.key, l.kernel, l.deltaBars)
			if perr != nil {
				return nil, perr
			}
			eqs, errs = e.waitGrad(p)
			if werr := foldSlotErrors(errs); werr != nil {
				return nil, werr
			}
		}
		t2 := time.Now()
		sum := field.NewVec(l.lin.WLen())
		if derr := code.DecodeBackwardInto(sum, eqs); derr != nil {
			return nil, derr
		}
		dw := e.q.UnquantizeProduct(sum)
		rescale := l.fd * l.fx
		for j := range dw {
			dw[j] *= rescale
		}
		l.lin.AddGradW(dw, 1)
		e.phases.Decode += time.Since(t2)
		e.phases.Offloads++
	}
	return cur, nil
}

// waitGrad gathers one layer's gradient equations with offloadForward's
// token discipline: the TEE token is released for exactly the wait.
func (e *engine) waitGrad(p *gpu.LayerPending) ([]field.Vec, []error) {
	t1 := time.Now()
	if e.tee != nil {
		e.tee.Unlock()
	}
	eqs, errs := p.Wait()
	flightTime := time.Since(t1)
	if e.tee != nil {
		e.lockTEE()
	}
	e.phases.Dispatch += flightTime
	return eqs, errs
}

// foldSlotErrors folds a flight gather's per-slot errors into one:
// ErrNoStored wins (it is recoverable — the caller refills), else the
// first error in slot order.
func foldSlotErrors(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, gpu.ErrNoStored) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}
