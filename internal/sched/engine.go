package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/quant"
	"darknight/internal/tensor"
)

// PhaseStats is the cumulative TEE-side latency breakdown of the coded hot
// path, split at the trust boundary: Encode covers quantization, the noise
// draw and the coded combine; Dispatch covers the concurrent K+M+E gang
// fan-out and gather; Decode covers verification, the inverse combine and
// float restoration. One PhaseStats accumulates per pipeline (engine);
// serving aggregates them across workers into its metrics.
type PhaseStats struct {
	Encode   time.Duration
	Dispatch time.Duration
	Decode   time.Duration
	// Wall is the pipeline's busy wall-clock: the elapsed time during which
	// at least one virtual batch was somewhere between submission and
	// completion. On the serial engine it is simply the summed per-batch
	// forward time, so Encode+Dispatch+Decode ≈ Wall; on the pipelined
	// engine overlapped batches accumulate phase time faster than the clock
	// moves, and (Encode+Dispatch+Decode)/Wall is the overlap ratio —
	// 1.0 means no overlap, 2.0 means two stages were kept busy throughout.
	Wall     time.Duration
	Offloads int64 // bilinear layer dispatches timed
	// Flights counts gang flights: dispatches that paid the full
	// lease/fan-out/gather machinery. On the per-layer path every offload
	// is its own flight, so Flights tracks Offloads; a fused block carries
	// several offloads per flight, which is exactly the reduction the
	// fused path exists to buy.
	Flights int64
	// FusedBlocks counts fused-block flights; FusedLayers counts the
	// bilinear layers they carried (FusedLayers/FusedBlocks is the mean
	// fused block depth).
	FusedBlocks int64
	FusedLayers int64
}

// Sub returns the phase deltas s - o (for windowed measurements).
func (s PhaseStats) Sub(o PhaseStats) PhaseStats {
	return PhaseStats{
		Encode:      s.Encode - o.Encode,
		Dispatch:    s.Dispatch - o.Dispatch,
		Decode:      s.Decode - o.Decode,
		Wall:        s.Wall - o.Wall,
		Offloads:    s.Offloads - o.Offloads,
		Flights:     s.Flights - o.Flights,
		FusedBlocks: s.FusedBlocks - o.FusedBlocks,
		FusedLayers: s.FusedLayers - o.FusedLayers,
	}
}

// Overlap returns the overlap ratio (Encode+Dispatch+Decode)/Wall, or 0
// when no wall time has been recorded.
func (s PhaseStats) Overlap() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Encode+s.Dispatch+s.Decode) / float64(s.Wall)
}

// Fleet is the accelerator surface the runtime dispatches coded jobs to.
// *gpu.Cluster is the canonical implementation; serving workers substitute
// a gang-leased subset view so one physical fleet can back many concurrent
// pipelines.
type Fleet interface {
	// Size returns the number of devices available for fan-out.
	Size() int
	// ForwardAll dispatches coded inputs one-per-device and gathers results
	// in device order.
	ForwardAll(key string, kernel gpu.LinearKernel, coded []field.Vec) ([]field.Vec, error)
	// BackwardAll dispatches combined deltas against the coded inputs the
	// devices stored during forward.
	BackwardAll(key string, kernel gpu.BilinearKernel, deltas []field.Vec) ([]field.Vec, error)
}

// QuorumFleet is an optional Fleet extension for straggler-tolerant
// dispatch: ForwardQuorum returns once `quorum` of the coded responses
// have arrived, along with a presence mask saying which. Implementations
// must guarantee the returned results and mask are immutable snapshots —
// laggard devices completing later may not mutate them.
type QuorumFleet interface {
	Fleet
	ForwardQuorum(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) ([]field.Vec, []bool, error)
}

// AsyncFleet is an optional Fleet extension for pipelined execution:
// ForwardAllAsync returns a completion handle immediately, so the TEE can
// encode and decode other virtual batches while this dispatch is in
// flight. Implementations must tolerate multiple outstanding dispatches on
// the same fleet (per-dispatch gather buffers). *gpu.Cluster and
// *fleet.Grant both implement it.
type AsyncFleet interface {
	Fleet
	ForwardAllAsync(key string, kernel gpu.LinearKernel, coded []field.Vec) *gpu.Pending
}

// AsyncQuorumFleet combines straggler tolerance with pipelining: the
// handle completes once the quorum is met, while laggards (and speculative
// retries) keep running past it.
type AsyncQuorumFleet interface {
	QuorumFleet
	ForwardQuorumAsync(key string, kernel gpu.LinearKernel, coded []field.Vec, quorum int) *gpu.Pending
}

// AsyncBackwardFleet is the backward counterpart of AsyncFleet: the handle
// completes once every gradient equation has been gathered, so a pipelined
// trainer can encode/decode other virtual batches during the backward GPU
// flight. *gpu.Cluster and *fleet.Grant both implement it.
type AsyncBackwardFleet interface {
	Fleet
	BackwardAllAsync(key string, kernel gpu.BilinearKernel, deltas []field.Vec) *gpu.Pending
}

// BackwardQuorumFleet is the straggler-tolerant backward extension: the
// fleet dispatches both backward equation windows — the S primary equations
// on slots [0, S) and the S redundant-decoding equations on slots [e, S+e)
// — and returns as soon as either window has fully answered. Unlike the
// forward code, the backward coding is not MDS over arbitrary column
// subsets (each equation bakes its δ combination in), so tolerance is
// window-granular: stragglers among either side's E window-exclusive slots
// are absorbed, and a completed spare window doubles as verification.
type BackwardQuorumFleet interface {
	Fleet
	BackwardQuorum(key string, kernel gpu.BilinearKernel, prim, sec []field.Vec, e int) (gpu.BackwardOutcome, error)
}

// AsyncBackwardQuorumFleet combines backward straggler tolerance with
// pipelining.
type AsyncBackwardQuorumFleet interface {
	BackwardQuorumFleet
	BackwardQuorumAsync(key string, kernel gpu.BilinearKernel, prim, sec []field.Vec, e int) *gpu.PendingBackward
}

// BlockFleet is the optional Fleet extension for fused-block offload:
// BeginBlock opens one persistent gang flight over n slots, and the
// engine dispatches every layer of a fused block through it — paying the
// flight machinery (lease handles, goroutine fan-out, per-dispatch device
// launch latency) once per block instead of once per layer. *gpu.Cluster
// and *fleet.Grant both implement it.
type BlockFleet interface {
	Fleet
	BeginBlock(n int) (*gpu.BlockFlight, error)
}

// IntegrityError is an integrity violation with (when the redundancy
// budget allows attribution) the coded columns — equivalently the gang
// device slots — that returned tampered results. It wraps
// masking.ErrIntegrity so existing errors.Is checks keep working; fleet
// layers use Culprits to quarantine the offending physical devices.
type IntegrityError struct {
	// Culprits are the faulty gang slots (coded column indices), empty
	// when the corruption was detected but not attributable (E < 2).
	Culprits []int
	// Err is the underlying masking verification error.
	Err error
}

func (e *IntegrityError) Error() string {
	if len(e.Culprits) > 0 {
		return fmt.Sprintf("sched: tampered results from gang slots %v: %v", e.Culprits, e.Err)
	}
	return e.Err.Error()
}

func (e *IntegrityError) Unwrap() error { return e.Err }

// engine is the TEE-side forward core shared by Trainer and Inferencer: it
// walks the model, keeps non-linear layers enclave-resident, and runs the
// quantize → encode → fan-out → verify → decode → restore flow for every
// bilinear layer. It owns no optimizer state; training-only logic lives on
// Trainer.
//
// An engine is single-threaded by design — it mirrors one TEE execution
// context. Concurrency is achieved by running one engine per worker, each
// against its own model replica (nn layers cache forward state and are not
// safe for sharing across goroutines).
type engine struct {
	cfg   Config
	model *nn.Model
	fleet Fleet
	encl  *enclave.Enclave
	q     *quant.Quantizer
	rng   *rand.Rand

	// keyspace prefixes GPU-side storage keys so coded tensors from
	// different pipelines sharing one physical fleet cannot alias.
	keyspace string
	// reuseKeys drops the step counter from storage keys. Training needs
	// per-step keys (backward reads the stored coded inputs), but a
	// forward-only pipeline never reads them back — reusing keys lets each
	// dispatch overwrite the last one so long-running serving does not
	// grow device storage without bound.
	reuseKeys bool
	// stepSeq names coded tensors uniquely across steps so GPU-side
	// storage from different steps cannot alias.
	stepSeq int
	// linSeq numbers linear layers within a step.
	linSeq int

	// tee, when non-nil, is the shared TEE execution token of a pipelined
	// runtime: the engine holds it for all enclave-side work and releases
	// it only while a dispatch is in GPU flight, which is exactly the
	// window another lane's engine uses to decode its previous batch or
	// encode its next one. nil on the serial path (no token juggling).
	tee *sync.Mutex
	// onToken, when non-nil, runs after every TEE token acquisition. A
	// training lane uses it to re-install its private gradient sinks into
	// the shared model — another lane may have swapped in its own while
	// this engine's dispatch was in flight.
	onToken func()
	// pool, when non-nil, supplies pre-drawn noise sets so the encode
	// consumes precomputed material with zero online RNG; exhaustion falls
	// back to inline draws from rng (counted by the pool).
	pool *masking.NoisePool
	// plan, when non-nil, is the fused-offload compile pass output:
	// maximal runs of consecutive bilinear layers the forward walk
	// dispatches as single block flights (Config.FuseBlocks). The
	// per-layer coding math is unchanged inside a block, so fused outputs
	// are bit-identical to the per-layer path.
	plan *nn.FusionPlan

	// sp, when non-nil, is the trace span of the virtual batch currently
	// executing on this engine: every offload hangs an
	// encode/dispatch/decode child tree off it. Installed per batch by the
	// owning Inferencer/Pipeline/TrainPipeline; the untraced case is a nil
	// pointer, which the obs spans treat as a free no-op.
	sp *obs.Span
	// rec, when non-nil, receives flight-recorder events from the engine:
	// backward cache-miss refills and integrity verdicts.
	rec *obs.FlightRecorder

	// deadline, when non-zero, is the absolute end-to-end deadline of the
	// batch currently on this engine: checked before every gang dispatch
	// (per-layer and fused-block), so an expired batch stops occupying
	// devices at the next layer boundary instead of running to
	// completion. Installed per batch (SetDeadline / SubmitWithin);
	// cleared with the span.
	deadline time.Time

	// recover enables audit-and-recover on integrity violations
	// (EnableRecovery; needs Redundancy >= 2).
	recover  bool
	recovery RecoveryStats
	// refills counts backward cache-miss recoveries: dispatches whose
	// device-side coded-input cache had to be re-created from the trace
	// (device replaced, reshuffled or still lagging since forward).
	refills int64
	// stepCulprits accumulates the gang slots attributed as tampering
	// during the current step (reset by beginStep) — the fleet layer reads
	// them after a dispatch to quarantine the physical devices behind the
	// slots, even when recovery masked the fault from the caller.
	stepCulprits []int

	// Steady-state scratch. The engine is single-threaded, so one arena and
	// one set of reusable buffers serve every offload: after the first pass
	// over the model, the coding data path (quantized inputs, noise, coded
	// vectors, quantized weights, decoded results) allocates nothing.
	// Small per-offload allocations remain by design: the escaping output
	// tensors, the kernel closure, and the per-batch masking.New (S×S
	// scalar matrices, negligible next to the vectors).
	arena    field.Arena
	fscratch []float64   // normalized-float staging, grown to the largest layer
	quantIn  []field.Vec // K reusable header slots
	noise    []field.Vec // M slots
	coded    []field.Vec // S+E slots
	decoded  []field.Vec // K slots
	phases   PhaseStats
}

// slots returns *buf resized (without reallocation when possible) to k
// header slots.
func slots(buf *[]field.Vec, k int) []field.Vec {
	if cap(*buf) < k {
		*buf = make([]field.Vec, k)
	}
	return (*buf)[:k]
}

func newEngine(cfg Config, model *nn.Model, fleet Fleet, encl *enclave.Enclave, keyspace string) engine {
	e := engine{
		cfg:      cfg,
		model:    model,
		fleet:    fleet,
		encl:     encl,
		q:        quant.New(cfg.FracBits),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		keyspace: keyspace,
	}
	if cfg.FuseBlocks {
		e.plan = nn.CompileFusion(model)
	}
	return e
}

// blockFleet returns the fleet's block-flight surface when fusion is
// compiled in and the current fleet supports it; otherwise the engine
// stays on the per-layer dispatch path.
func (e *engine) blockFleet() (BlockFleet, bool) {
	if e.plan == nil {
		return nil, false
	}
	bf, ok := e.fleet.(BlockFleet)
	return bf, ok
}

// lockTEE acquires the shared TEE execution token and runs the engine's
// reacquisition hook, so every enclave-side section starts with the lane's
// state (gradient sinks) installed in the shared model.
func (e *engine) lockTEE() {
	e.tee.Lock()
	if e.onToken != nil {
		e.onToken()
	}
}

// beginStep opens a fresh key namespace for one virtual batch.
func (e *engine) beginStep() {
	e.stepSeq++
	e.linSeq = 0
	e.stepCulprits = e.stepCulprits[:0]
}

// storesVolatile reports whether the fleet's device-side coded-input
// stores can disappear or reshuffle between a batch's forward and backward
// passes. A bare *gpu.Cluster binds slot i to device i for its lifetime,
// so its stores are stable and a training forward can skip capturing the
// refill noise (no per-offload clone on the serial hot path); every other
// fleet — gang grants whose devices are re-picked per batch, wrappers that
// swap delegates — is assumed volatile.
func (e *engine) storesVolatile() bool {
	_, stable := e.fleet.(*gpu.Cluster)
	return !stable
}

// effectiveSlack bounds the configured straggler slack so at least one
// redundant equation always remains for verification.
func (e *engine) effectiveSlack() int {
	s := e.cfg.StragglerSlack
	if max := e.cfg.Redundancy - 1; s > max {
		s = max
	}
	if s < 0 {
		s = 0
	}
	return s
}

// forwardLayer recursively runs one layer for all K examples.
func (e *engine) forwardLayer(code *masking.Code, layer nn.Layer, xs []*tensor.Tensor, train bool) ([]*tensor.Tensor, *trace, error) {
	tr := &trace{layer: layer, inputs: append([]*tensor.Tensor(nil), xs...)}
	switch v := layer.(type) {
	case *nn.Sequential:
		cur := xs
		children := v.Layers()
		for i := 0; i < len(children); i++ {
			if blk, ok := e.plan.BlockAt(v, i); ok {
				if bf, fused := e.blockFleet(); fused {
					outs, childTrs, err := e.offloadForwardBlock(code, bf, blk, cur, train)
					if err != nil {
						return nil, nil, err
					}
					tr.children = append(tr.children, childTrs...)
					cur = outs
					i += blk.Depth() - 1
					continue
				}
			}
			out, childTr, err := e.forwardLayer(code, children[i], cur, train)
			if err != nil {
				return nil, nil, err
			}
			tr.children = append(tr.children, childTr)
			cur = out
		}
		return cur, tr, nil
	case *nn.Residual:
		body, bodyTr, err := e.forwardLayer(code, v.Body(), xs, train)
		if err != nil {
			return nil, nil, err
		}
		tr.children = append(tr.children, bodyTr)
		skip := xs
		if v.Skip() != nil {
			var skipTr *trace
			skip, skipTr, err = e.forwardLayer(code, v.Skip(), xs, train)
			if err != nil {
				return nil, nil, err
			}
			tr.children = append(tr.children, skipTr)
		}
		outs := make([]*tensor.Tensor, len(xs))
		for i := range outs {
			o := body[i].Clone()
			o.Add(skip[i])
			outs[i] = o
		}
		return outs, tr, nil
	default:
		if lin, ok := layer.(nn.Linear); ok {
			e.linSeq++
			if e.reuseKeys {
				tr.key = fmt.Sprintf("%slin%d", e.keyspace, e.linSeq)
			} else {
				tr.key = fmt.Sprintf("%sstep%d/lin%d", e.keyspace, e.stepSeq, e.linSeq)
			}
			outs, err := e.offloadForward(code, tr, lin, xs, train)
			return outs, tr, err
		}
		// TEE-resident non-linear layer: per-example forward.
		outs := make([]*tensor.Tensor, len(xs))
		for i := range xs {
			outs[i] = layer.Forward(xs[i], train)
		}
		return outs, tr, nil
	}
}

// offloadForward quantizes, encodes, fans out, verifies, decodes and
// restores one bilinear layer's outputs for the K current activations. All
// TEE-side intermediates live in the engine's arena (reset per offload), so
// the steady-state loop allocates only the escaping output tensors. In
// training mode the noise rows are additionally captured into the trace so
// a backward cache miss can re-create the device-side coded inputs
// bit-identically (see refillStores).
// checkDeadline gates a gang dispatch on the batch's deadline budget: an
// expired batch fails here — before encoding or occupying devices — with
// an error matching context.DeadlineExceeded. Zero deadline never fails.
func (e *engine) checkDeadline() error {
	if e.deadline.IsZero() || time.Now().Before(e.deadline) {
		return nil
	}
	return fmt.Errorf("sched: batch deadline passed before dispatch: %w", context.DeadlineExceeded)
}

func (e *engine) offloadForward(code *masking.Code, tr *trace, lin nn.Linear, xs []*tensor.Tensor, train bool) ([]*tensor.Tensor, error) {
	if err := e.checkDeadline(); err != nil {
		return nil, err
	}
	key := tr.key
	osp := e.sp.Child("offload")
	if osp != nil {
		osp.Annotate("key", key)
		// Ending the offload span also ends any phase child left open by an
		// error return, so the trace stays well formed on failures.
		defer osp.End()
	}
	esp := osp.Child("encode")
	t0 := time.Now()
	qf, isQuorum := e.fleet.(QuorumFleet)
	slack := e.effectiveSlack()
	useQuorum := isQuorum && slack > 0
	enc, err := e.encodeForward(code, tr, lin, xs, train, useQuorum)
	if err != nil {
		return nil, err
	}
	defer e.freeEnclave(enc.workset)
	wq, coded := enc.wq, enc.coded
	e.phases.Encode += time.Since(t0)
	esp.End()

	// Gang dispatch: the fleet fans the S+E coded inputs out to its devices
	// concurrently (one goroutine per device) and gathers in device order.
	// A pipelined engine (e.tee != nil) releases the TEE token for the
	// flight so sibling lanes can encode/decode their batches meanwhile;
	// the arena stays untouched until this lane's next offload, so the
	// coded inputs and wq the kernel references outlive the flight exactly
	// as on the serial path. The token-reacquisition wait after the flight
	// is deliberately untimed — it is overlap, not work.
	dsp := osp.Child("dispatch")
	if dsp != nil && useQuorum {
		dsp.Annotatef("quorum", "%d/%d", code.NumCoded()-slack, code.NumCoded())
	}
	t1 := time.Now()
	kernel := func(x field.Vec) field.Vec { return lin.LinearForwardField(wq, x) }
	var (
		results []field.Vec
		present []bool
	)
	switch {
	case useQuorum && e.tee != nil:
		var pend *gpu.Pending
		if aq, ok := e.fleet.(AsyncQuorumFleet); ok {
			pend = aq.ForwardQuorumAsync(key, kernel, coded, code.NumCoded()-slack)
		}
		e.tee.Unlock()
		if pend != nil {
			results, present, err = pend.Wait()
		} else {
			results, present, err = qf.ForwardQuorum(key, kernel, coded, code.NumCoded()-slack)
		}
		flight := time.Since(t1)
		e.lockTEE()
		e.phases.Dispatch += flight
	case useQuorum:
		results, present, err = qf.ForwardQuorum(key, kernel, coded, code.NumCoded()-slack)
		e.phases.Dispatch += time.Since(t1)
	case e.tee != nil:
		var pend *gpu.Pending
		if af, ok := e.fleet.(AsyncFleet); ok {
			pend = af.ForwardAllAsync(key, kernel, coded)
		}
		e.tee.Unlock()
		if pend != nil {
			results, _, err = pend.Wait()
		} else {
			// Fleet without an async surface: the blocking call itself runs
			// token-free. Such fleets must tolerate concurrent ForwardAll
			// calls (per-call gather buffers) — *gpu.Cluster does.
			results, err = e.fleet.ForwardAll(key, kernel, coded)
		}
		flight := time.Since(t1)
		e.lockTEE()
		e.phases.Dispatch += flight
	default:
		results, err = e.fleet.ForwardAll(key, kernel, coded)
		e.phases.Dispatch += time.Since(t1)
	}
	dsp.End()
	e.phases.Flights++
	if err != nil {
		return nil, err
	}

	csp := osp.Child("decode")
	t2 := time.Now()
	decoded, err := e.decodeForward(code, csp, results, present)
	if err != nil {
		return nil, err
	}
	outs := e.restoreForward(lin, decoded, enc.fx*enc.fw)
	e.phases.Decode += time.Since(t2)
	e.phases.Offloads++
	csp.End()
	return outs, nil
}

// fwdEnc is the encode-stage output of one bilinear layer's forward
// offload: everything the dispatch and decode stages need.
type fwdEnc struct {
	wq      field.Vec
	coded   []field.Vec
	fx, fw  float64
	workset int64
}

// encodeForward runs the encode stage of one bilinear layer's offload:
// dynamic normalization, quantization into the field, the enclave
// working-set charge, the noise draw and the coded combine. Shared
// verbatim by the per-layer path and the fused-block path, which is what
// pins their coded vectors bit-for-bit to each other. The caller owns
// freeing the returned workset (already freed on error).
func (e *engine) encodeForward(code *masking.Code, tr *trace, lin nn.Linear, xs []*tensor.Tensor, train, cloneForQuorum bool) (fwdEnc, error) {
	k := e.cfg.VirtualBatch
	// Shared dynamic normalization factor across the virtual batch so the
	// backward decode (a sum across inputs) can be unscaled exactly.
	fx := sharedNormFactor(xs, e.cfg.NormLimit)
	fw := 1.0
	if m := maxAbs(lin.WeightData()); m > e.cfg.NormLimit {
		fw = m / e.cfg.NormLimit
	}

	// TEE: quantize into the field.
	e.arena.Reset()
	n := lin.InLen()
	scratch := e.floats(n)
	quantIn := slots(&e.quantIn, k)
	for i := 0; i < k; i++ {
		for j, v := range xs[i].Data {
			scratch[j] = v / fx
		}
		quantIn[i] = e.q.QuantizeInto(e.arena.RawVec(n), scratch)
	}
	wq := e.quantizeWeights(lin.WeightData(), fw)

	// Enclave working set: K inputs + S+E coded vectors of InLen u32.
	workset := int64(lin.InLen()) * int64(k+code.NumCoded()) * 4
	if err := e.allocEnclave(workset); err != nil {
		return fwdEnc{}, err
	}

	// Noise rows: the offline path consumes a pre-drawn set from the noise
	// pool (zero online RNG — pure pointer traffic); exhaustion falls back
	// to inline draws from the engine's RNG, which belongs to this single
	// TEE context, so EncodeWith's combine can fan out freely either way.
	noise := slots(&e.noise, code.M)
	var pset *masking.NoiseSet
	if e.pool != nil {
		pset = e.pool.Get(n)
	}
	if pset != nil {
		copy(noise, pset.Rows)
	} else {
		if e.pool != nil && e.rec != nil {
			e.rec.Record(obs.Event{Kind: obs.KindNoisePool, Subsystem: "sched", Device: -1, Slot: -1,
				Detail: fmt.Sprintf("pool empty for row length %d, inline fallback", n)})
		}
		for m := range noise {
			noise[m] = field.RandVecInto(e.rng, e.arena.RawVec(n))
		}
	}
	coded := slots(&e.coded, code.NumCoded())
	for j := range coded {
		coded[j] = e.arena.RawVec(n)
	}
	encErr := code.EncodeWith(coded, quantIn, noise)
	if train && e.storesVolatile() {
		// The backward pass may need to re-create the device-side coded
		// inputs (cache refill after a fleet reshuffle): capture the noise
		// rows — the only non-recomputable encode ingredient — before the
		// pool or the arena reclaims them.
		tr.noise = make([]field.Vec, len(noise))
		for m := range noise {
			tr.noise[m] = noise[m].Clone()
		}
	}
	// The noise is folded into the coded vectors now; hand the set straight
	// back so the background generator can overwrite it.
	if pset != nil {
		e.pool.Recycle(pset)
	}
	if encErr != nil {
		e.freeEnclave(workset)
		return fwdEnc{}, encErr
	}

	// Straggler-tolerant dispatch returns before the slowest devices
	// answer. A laggard's kernel then runs concurrently with the TEE's
	// next offload, so everything it references — the coded inputs and the
	// quantized weights captured by the kernel closure — must outlive this
	// arena generation: clone them out of the arena. The default
	// wait-for-all path keeps the zero-allocation arena buffers.
	if cloneForQuorum {
		wq = wq.Clone()
		cl := make([]field.Vec, len(coded))
		for j := range coded {
			cl[j] = coded[j].Clone()
		}
		coded = cl // fresh header array too: e.coded is rewritten next offload
	}
	return fwdEnc{wq: wq, coded: coded, fx: fx, fw: fw, workset: workset}, nil
}

// decodeForward runs the decode stage of one bilinear layer's offload:
// straggler-subset decode, integrity verification, audit-and-recover, or
// the plain inverse combine. present == nil means every response arrived.
// Shared verbatim by the per-layer and fused-block paths.
func (e *engine) decodeForward(code *masking.Code, csp *obs.Span, results []field.Vec, present []bool) ([]field.Vec, error) {
	k := e.cfg.VirtualBatch
	missing := 0
	for _, p := range present {
		if !p {
			missing++
		}
	}
	if csp != nil && missing > 0 {
		csp.Annotatef("stragglers", "%d", missing)
	}
	var decoded []field.Vec
	switch {
	case missing > 0:
		// Subset path: decode from the responses that arrived, spending the
		// present redundancy as verification. Exact over F_p — bit-for-bit
		// the full decode (pinned by masking's subset tests).
		decoded = slots(&e.decoded, k)
		outLen := 0
		for j, p := range present {
			if p {
				outLen = len(results[j])
				break
			}
		}
		for i := range decoded {
			decoded[i] = e.arena.RawVec(outLen)
		}
		if serr := code.DecodeForwardSubsetInto(decoded, results, present); serr != nil {
			if !errors.Is(serr, masking.ErrIntegrity) {
				return nil, serr
			}
			// Tampering among the present responses: recover from the clean
			// present equations when enabled (needs slack < E-1 so at least
			// two present checks remain for attribution), or at least
			// attribute the culprits in the error.
			if e.recover {
				rec, rerr := e.recoverForwardSubset(code, results, present)
				if rerr != nil {
					return nil, rerr
				}
				decoded = rec
			} else {
				return nil, e.attributedSubsetError(code, results, present, serr)
			}
		}
	case e.cfg.Redundancy > 0:
		if verr := code.VerifyForward(results); verr != nil {
			if !e.recover {
				return nil, e.attributedError(code, results, verr)
			}
			rec, rerr := e.recoverForward(code, results)
			if rerr != nil {
				return nil, rerr
			}
			decoded = rec
		}
	}
	if decoded == nil {
		decoded = slots(&e.decoded, k)
		outLen := len(results[0])
		for i := range decoded {
			decoded[i] = e.arena.RawVec(outLen)
		}
		if err := code.DecodeForwardInto(decoded, results); err != nil {
			return nil, err
		}
	}
	return decoded, nil
}

// restoreForward runs the restore stage: floats back from the field, undo
// normalization, add the TEE-side bias. Outputs escape to the caller as
// layer activations, so they are deliberately fresh allocations, not
// arena memory.
func (e *engine) restoreForward(lin nn.Linear, decoded []field.Vec, rescale float64) []*tensor.Tensor {
	k := e.cfg.VirtualBatch
	bias := lin.BiasData()
	outShape := lin.OutShape()
	outs := make([]*tensor.Tensor, k)
	for i := 0; i < k; i++ {
		y := e.q.UnquantizeProduct(decoded[i])
		for j := range y {
			y[j] *= rescale
		}
		addBias(y, bias, outShape)
		outs[i] = tensor.FromSlice(y, outShape...)
	}
	return outs
}

// recordIntegrity files one integrity verdict into the flight recorder
// and onto the current batch's span.
func (e *engine) recordIntegrity(culprits []int, recovered bool) {
	if e.rec == nil && e.sp == nil {
		return
	}
	detail := "unattributed (whole gang suspect)"
	if len(culprits) > 0 {
		detail = fmt.Sprintf("culprit slots %v", culprits)
	}
	if recovered {
		detail += ", recovered from clean equations"
	}
	e.rec.Record(obs.Event{
		Kind: obs.KindIntegrity, Subsystem: "sched", Device: -1, Slot: -1,
		Detail: detail,
	})
	e.sp.Annotate("integrity", detail)
}

// attributedError wraps a verification failure, attributing culprit gang
// slots when the redundancy budget allows it (E >= 2); with the paper's
// E = 1 the corruption is detectable but not attributable and the error
// carries no culprits.
func (e *engine) attributedError(code *masking.Code, results []field.Vec, verr error) error {
	if code.E >= 2 {
		if culprits, aerr := code.AuditForward(results); aerr == nil && len(culprits) > 0 {
			e.stepCulprits = mergeSorted(e.stepCulprits, culprits)
			e.recordIntegrity(culprits, false)
			return &IntegrityError{Culprits: culprits, Err: verr}
		}
	}
	e.recordIntegrity(nil, false)
	return &IntegrityError{Err: verr}
}

// attributedSubsetError is attributedError over a partial response set:
// the audit runs on the present columns only, so attribution needs at
// least two present redundant equations (slack <= E-2).
func (e *engine) attributedSubsetError(code *masking.Code, results []field.Vec, present []bool, verr error) error {
	if culprits, aerr := code.AuditForwardSubset(results, present); aerr == nil && len(culprits) > 0 {
		e.stepCulprits = mergeSorted(e.stepCulprits, culprits)
		e.recordIntegrity(culprits, false)
		return &IntegrityError{Culprits: culprits, Err: verr}
	}
	e.recordIntegrity(nil, false)
	return &IntegrityError{Err: verr}
}

// floats returns the persistent normalized-float staging buffer, grown to
// at least n.
func (e *engine) floats(n int) []float64 {
	if cap(e.fscratch) < n {
		e.fscratch = make([]float64, n)
	}
	return e.fscratch[:n]
}

// quantizeWeights stages the (optionally normalized) weights into an
// arena-backed field vector. The result is only referenced by the dispatch
// kernel closure, which completes before the next arena reset.
func (e *engine) quantizeWeights(w []float64, fw float64) field.Vec {
	wq := e.arena.RawVec(len(w))
	if fw == 1 {
		return e.q.QuantizeInto(wq, w)
	}
	scaled := e.floats(len(w))
	for i, v := range w {
		scaled[i] = v / fw
	}
	return e.q.QuantizeInto(wq, scaled)
}

func (e *engine) allocEnclave(n int64) error {
	if e.encl == nil {
		return nil
	}
	if err := e.encl.Alloc(n); err != nil {
		return fmt.Errorf("sched: virtual batch K=%d does not fit in enclave: %w",
			e.cfg.VirtualBatch, err)
	}
	return nil
}

func (e *engine) freeEnclave(n int64) {
	if e.encl != nil {
		e.encl.Free(n)
	}
}
