package sched

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/tensor"
)

// pipeModel builds the shared test model: small enough to keep the
// property sweep fast, deep enough to exercise several offloads per batch.
func pipeModel() *nn.Model {
	return nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(5)))
}

// pipeBatches draws r deterministic virtual batches of k images each.
func pipeBatches(k, r, imgLen int) [][][]float64 {
	rng := rand.New(rand.NewSource(6))
	out := make([][][]float64, r)
	for b := range out {
		out[b] = make([][]float64, k)
		for i := range out[b] {
			img := make([]float64, imgLen)
			for j := range img {
				img[j] = rng.Float64()
			}
			out[b][i] = img
		}
	}
	return out
}

func sameLogits(t *testing.T, tag string, batch int, a, b []*tensor.Tensor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s batch %d: %d vs %d logit tensors", tag, batch, len(a), len(b))
	}
	for i := range a {
		if len(a[i].Data) != len(b[i].Data) {
			t.Fatalf("%s batch %d image %d: logit lengths differ", tag, batch, i)
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				t.Fatalf("%s batch %d image %d logit %d: %v != %v (outputs must be bit-identical)",
					tag, batch, i, j, a[i].Data[j], b[i].Data[j])
			}
		}
	}
}

// TestPipelineMatchesSerial is the equivalence property test: across
// K/E/slack operating points — including the quorum/straggler path with a
// deterministically slow device welded into the gang — the pipelined
// engine's logits are bit-for-bit the serial engine's on the same virtual
// batches. Decode exactness over F_p makes outputs independent of noise
// and coefficient draws, so overlap cannot change a single bit.
func TestPipelineMatchesSerial(t *testing.T) {
	combos := []struct {
		name           string
		k, m, e, slack int
		slow           bool
		depth, batches int
	}{
		{name: "K2-M1-E0", k: 2, m: 1, e: 0, depth: 2, batches: 5},
		{name: "K3-M1-E1", k: 3, m: 1, e: 1, depth: 2, batches: 4},
		{name: "K2-M2-E1", k: 2, m: 2, e: 1, depth: 3, batches: 6},
		{name: "K2-M1-E2-slack1", k: 2, m: 1, e: 2, slack: 1, slow: true, depth: 2, batches: 4},
		{name: "K3-M2-E2-slack1", k: 3, m: 2, e: 2, slack: 1, slow: true, depth: 2, batches: 3},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{VirtualBatch: c.k, Collusion: c.m, Redundancy: c.e, StragglerSlack: c.slack, Seed: 1}
			gang := c.k + c.m + c.e
			devs := make([]gpu.Device, gang)
			for i := range devs {
				devs[i] = gpu.NewHonest(i)
			}
			if c.slow {
				// One straggler in every gang forces the subset decode path.
				devs[gang-1] = gpu.NewSlow(devs[gang-1], 2*time.Millisecond)
			}
			fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
			model := pipeModel()
			batches := pipeBatches(c.k, c.batches, 64)

			// Serial reference: one grant, batches one at a time.
			inf, err := NewInferencer(cfg, model, nil, "ser/")
			if err != nil {
				t.Fatal(err)
			}
			grant, err := fm.Acquire(context.Background(), "serial", gang)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]*tensor.Tensor, len(batches))
			for b, images := range batches {
				logits, err := inf.Forward(grant, images)
				if err != nil {
					t.Fatalf("serial batch %d: %v", b, err)
				}
				want[b] = logits
			}
			grant.Release()

			// Pipelined: all batches submitted through one shared grant —
			// overlapping dispatches on the same gang.
			pipe, err := NewPipeline(cfg, model, nil, "pipe/", c.depth)
			if err != nil {
				t.Fatal(err)
			}
			defer pipe.Close()
			pgrant, err := fm.Acquire(context.Background(), "pipe", gang)
			if err != nil {
				t.Fatal(err)
			}
			tickets := make([]*Ticket, len(batches))
			for b, images := range batches {
				tk, err := pipe.Submit(pgrant, images)
				if err != nil {
					t.Fatalf("submit batch %d: %v", b, err)
				}
				tickets[b] = tk
			}
			for b, tk := range tickets {
				if err := tk.Wait(); err != nil {
					t.Fatalf("pipelined batch %d: %v", b, err)
				}
				sameLogits(t, c.name, b, want[b], tk.Logits())
			}
			pgrant.Release()

			ps := pipe.PhaseStats()
			if ps.Offloads == 0 || ps.Wall == 0 {
				t.Fatalf("pipeline recorded no work: %+v", ps)
			}
			if c.slow {
				if st := fm.Stats(); st.StragglerEvents == 0 {
					t.Fatalf("slow-device combo never exercised the quorum path (straggler events = 0)")
				}
			}
		})
	}
}

// TestSerialNoisePoolMatchesInline pins the offline/online noise split on
// the serial engine: an Inferencer consuming precomputed pool material
// produces bit-identical logits to one drawing noise inline, and actually
// hits the pool.
func TestSerialNoisePoolMatchesInline(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Collusion: 1, Redundancy: 1, Seed: 3}
	cluster := gpu.NewHonestCluster(cfg.VirtualBatch + cfg.Collusion + cfg.Redundancy)
	model := pipeModel()
	batches := pipeBatches(cfg.VirtualBatch, 6, 64)

	plain, err := NewInferencer(cfg, model, nil, "plain/")
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewInferencer(cfg, model, nil, "pooled/")
	if err != nil {
		t.Fatal(err)
	}
	pooled.EnableNoisePool(0)
	defer pooled.Close()

	for b, images := range batches {
		a, err := plain.Forward(cluster, images)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := pooled.Forward(cluster, images)
		if err != nil {
			t.Fatal(err)
		}
		sameLogits(t, "pool-vs-inline", b, a, bb)
	}
	st := pooled.PoolStats()
	if st.Hits == 0 {
		t.Fatalf("pooled inferencer never consumed precomputed noise: %+v", st)
	}
	t.Logf("pool stats: %+v (hit rate %.2f)", st, st.HitRate())
}

// TestPipelineSubmitValidation covers the pipeline's refusal paths.
func TestPipelineSubmitValidation(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Seed: 1}
	model := pipeModel()
	if _, err := NewPipeline(cfg, model, nil, "v/", 1); err == nil {
		t.Fatal("depth 1 pipeline must be rejected")
	}
	pipe, err := NewPipeline(cfg, model, nil, "v/", 2)
	if err != nil {
		t.Fatal(err)
	}
	cluster := gpu.NewHonestCluster(pipe.Gang())
	if _, err := pipe.Submit(cluster, make([][]float64, 1)); err == nil {
		t.Fatal("wrong batch size must be rejected")
	}
	small := gpu.NewHonestCluster(pipe.Gang() - 1)
	if _, err := pipe.Submit(small, pipeBatches(2, 1, 64)[0]); err == nil {
		t.Fatal("undersized fleet must be rejected")
	}
	pipe.Close()
	if _, err := pipe.Submit(cluster, pipeBatches(2, 1, 64)[0]); err == nil {
		t.Fatal("submit after Close must be rejected")
	}
	pipe.Close() // idempotent
}

// TestPipelineOverlapsOutstandingDispatches checks the fleet-visible
// signature of pipelining: with per-dispatch device latency, one grant
// carries more than one outstanding dispatch at a time, and the grant's
// async accounting reaches the manager's stats.
func TestPipelineOverlapsOutstandingDispatches(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	cfg := Config{VirtualBatch: 2, Seed: 1}
	gang := cfg.VirtualBatch + 1
	devs := make([]gpu.Device, gang)
	for i := range devs {
		devs[i] = gpu.NewSlow(gpu.NewHonest(i), time.Millisecond)
	}
	fm := fleet.NewManager(gpu.NewCluster(devs...), fleet.Config{})
	model := pipeModel()
	pipe, err := NewPipeline(cfg, model, nil, "ov/", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	grant, err := fm.Acquire(context.Background(), "t", gang)
	if err != nil {
		t.Fatal(err)
	}
	batches := pipeBatches(cfg.VirtualBatch, 8, 64)
	var tickets []*Ticket
	for _, images := range batches {
		tk, err := pipe.Submit(grant, images)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	grant.Release()
	st := fm.Stats()
	if st.AsyncDispatches == 0 {
		t.Fatalf("no async dispatches recorded: %+v", st)
	}
	if st.PeakOverlap < 2 {
		t.Fatalf("peak overlap %d, want >= 2 (dispatches never overlapped on the gang)", st.PeakOverlap)
	}
	ps := pipe.PhaseStats()
	if ps.Overlap() <= 1.0 {
		t.Logf("note: overlap ratio %.2f (can dip on loaded runners)", ps.Overlap())
	}
}
