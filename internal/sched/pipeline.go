package sched

import (
	"fmt"
	"sync"
	"time"

	"darknight/internal/enclave"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/tensor"
)

// Pipeline is the overlapped-execution mode of the forward runtime: up to
// Depth virtual batches ride the encode→dispatch→decode stages at once, so
// the TEE and the GPU gang stay busy simultaneously instead of taking
// turns. While batch i is in GPU flight, the TEE decodes batch i−1 and
// encodes batch i+1.
//
// Mechanically, each in-flight batch owns a lane: a full engine with its
// own arena, scratch buffers and RNG (the double-buffered arenas), all
// lanes sharing one model replica and one TEE execution token. A lane
// holds the token for every enclave-side step and releases it exactly for
// the duration of a dispatch's GPU flight (see engine.offloadForward), so
// TEE work remains strictly serialized — one enclave context, bit-for-bit
// the serial schedule per batch — while device time overlaps across lanes.
// Because the decode is exact linear algebra over F_p, a batch's outputs
// depend only on its own inputs and the weights, never on the noise values
// or coefficient draws: pipelined predictions are bit-identical to the
// serial engine's (pinned by TestPipelineMatchesSerial).
//
// Noise is pre-drawn offline: the Pipeline owns a seeded masking.NoisePool
// sized for the model's offloaded layers, shared by all lanes, so the
// online encode consumes precomputed material with zero RNG work and falls
// back (counted) only when the generator is behind.
type Pipeline struct {
	cfg   Config
	model *nn.Model
	depth int

	tee   sync.Mutex   // the single TEE execution token
	lanes chan *engine // free lanes; capacity == depth bounds the pipeline
	all   []*engine    // every lane, for configuration fan-out
	pool  *masking.NoisePool

	mu        sync.Mutex
	phases    PhaseStats // folded lane deltas + busy wall-clock
	active    int        // batches currently in flight
	busySince time.Time  // start of the current busy interval
	closed    bool
}

// NewPipeline wires a pipelined forward runtime of the given depth (>= 2;
// 2 is classic double buffering) around one shared model replica. The
// enclave may be nil or shared; each in-flight batch accounts its own
// working set, so peak enclave usage grows with depth — exactly the memory
// cost the paper's K-vs-EPC tradeoff describes. keyspace must be unique
// among runtimes sharing physical devices; lanes suffix it so their
// device-side storage never aliases.
//
// Fleets passed to Submit must tolerate overlapping dispatches:
// *gpu.Cluster and *fleet.Grant both do (the AsyncFleet surface).
func NewPipeline(cfg Config, model *nn.Model, encl *enclave.Enclave, keyspace string, depth int) (*Pipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.maskParams().Validate(); err != nil {
		return nil, err
	}
	if depth < 2 {
		return nil, fmt.Errorf("sched: pipeline depth %d, need >= 2 (use Inferencer for serial execution)", depth)
	}
	p := &Pipeline{
		cfg:   cfg,
		model: model,
		depth: depth,
		lanes: make(chan *engine, depth),
		all:   make([]*engine, 0, depth),
	}
	lens := offloadLens(model.Stack)
	if len(lens) > 0 {
		// One cycle of pre-drawn sets per lane plus one of prefetch keeps
		// the generator ahead of the consumers in steady state.
		p.pool = masking.NewNoisePool(cfg.Seed+0x0ff1e, cfg.Collusion, lens, (depth+1)*len(lens))
	}
	for i := 0; i < depth; i++ {
		lcfg := cfg
		// Distinct RNG streams per lane: two lanes must never emit the same
		// noise/coefficients for different clients' batches (the same
		// argument as per-worker seeds in internal/serve).
		lcfg.Seed = cfg.Seed + int64(i)*0x9e37
		eng := newEngine(lcfg, model, nil, encl, fmt.Sprintf("%sp%d/", keyspace, i))
		eng.reuseKeys = true
		eng.tee = &p.tee
		eng.pool = p.pool
		lane := &eng
		p.all = append(p.all, lane)
		p.lanes <- lane
	}
	return p, nil
}

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Depth returns the number of batches the pipeline can hold in flight.
func (p *Pipeline) Depth() int { return p.depth }

// Gang returns the number of devices one dispatch occupies: K+M+E.
func (p *Pipeline) Gang() int { return p.cfg.maskParams().GPUs() }

// EnableRecovery turns on audit-and-recover on every lane (see
// Inferencer.EnableRecovery). Requires Redundancy >= 2.
func (p *Pipeline) EnableRecovery() error {
	if p.cfg.Redundancy < 2 {
		return fmt.Errorf("sched: recovery needs Redundancy >= 2, have %d", p.cfg.Redundancy)
	}
	for _, lane := range p.all {
		lane.recover = true
	}
	return nil
}

// SetObserver attaches a flight recorder to every lane: cache refills and
// integrity verdicts are recorded as they happen. Call before Submit
// traffic starts.
func (p *Pipeline) SetObserver(rec *obs.FlightRecorder) {
	for _, lane := range p.all {
		lane.rec = rec
	}
}

// PhaseStats returns the aggregated encode/dispatch/decode breakdown
// across all lanes plus the pipeline's busy wall-clock; Overlap() on the
// result is the headline overlap ratio.
func (p *Pipeline) PhaseStats() PhaseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.phases
	if p.active > 0 {
		s.Wall += time.Since(p.busySince)
	}
	return s
}

// PoolStats returns the shared noise pool's hit/miss counters.
func (p *Pipeline) PoolStats() masking.NoisePoolStats {
	if p.pool == nil {
		return masking.NoisePoolStats{}
	}
	return p.pool.Stats()
}

// Close stops the background noise generator. In-flight batches finish;
// further Submits fail. Safe to call more than once.
func (p *Pipeline) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already && p.pool != nil {
		p.pool.Close()
	}
}

// Ticket is the completion handle of one submitted virtual batch.
type Ticket struct {
	done     chan struct{}
	logits   []*tensor.Tensor
	classes  []int
	culprits []int
	err      error
}

// Done returns a channel closed when the batch has fully decoded — for
// callers multiplexing several tickets in a select.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the batch completes and returns its error.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

// Classes returns the predicted class per image. Valid after Wait/Done.
func (t *Ticket) Classes() []int {
	<-t.done
	return t.classes
}

// Logits returns the per-image logits. Valid after Wait/Done.
func (t *Ticket) Logits() []*tensor.Tensor {
	<-t.done
	return t.logits
}

// Culprits returns the gang slots attributed as tampering while this batch
// was processed (empty when clean). Valid after Wait/Done.
func (t *Ticket) Culprits() []int {
	<-t.done
	return t.culprits
}

// Submit enters one virtual batch of exactly K images into the pipeline on
// the given fleet and returns its completion ticket. Submit blocks only
// while all Depth lanes are busy — that backpressure is what bounds the
// pipeline. Batches may complete out of submission order; each ticket is
// independent.
//
// Callers pipelining over a shared physical fleet typically pass a
// separate gang (e.g. a fleet.Grant) per Submit so the flights genuinely
// overlap; passing the same fleet for every Submit is correct too, as long
// as it tolerates concurrent dispatches.
func (p *Pipeline) Submit(fleet Fleet, images [][]float64) (*Ticket, error) {
	return p.SubmitTraced(fleet, images, nil)
}

// SubmitTraced is Submit with a trace span: the batch's offload
// encode/dispatch/decode children hang off sp, annotated with the lane
// that carried it. A nil sp is exactly Submit.
func (p *Pipeline) SubmitTraced(fleet Fleet, images [][]float64, sp *obs.Span) (*Ticket, error) {
	return p.SubmitWithin(fleet, images, sp, time.Time{})
}

// SubmitWithin is SubmitTraced with a deadline budget: the lane re-checks
// the absolute deadline before every gang dispatch and fails the batch
// with an error matching context.DeadlineExceeded once it passes. The
// zero time is exactly SubmitTraced.
func (p *Pipeline) SubmitWithin(fleet Fleet, images [][]float64, sp *obs.Span, deadline time.Time) (*Ticket, error) {
	k := p.cfg.VirtualBatch
	if len(images) != k {
		return nil, fmt.Errorf("sched: inference needs exactly %d images, got %d", k, len(images))
	}
	if need := p.Gang(); fleet.Size() < need {
		return nil, fmt.Errorf("sched: gang of %d devices required, fleet has %d", need, fleet.Size())
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("sched: pipeline closed")
	}
	p.mu.Unlock()
	lane := <-p.lanes
	p.noteStart()
	if sp != nil {
		for i, l := range p.all {
			if l == lane {
				sp.Annotatef("lane", "%d", i)
				break
			}
		}
	}
	t := &Ticket{done: make(chan struct{})}
	go p.run(lane, fleet, images, sp, deadline, t)
	return t, nil
}

// Predict is the synchronous convenience wrapper: Submit then Wait.
func (p *Pipeline) Predict(fleet Fleet, images [][]float64) ([]int, error) {
	t, err := p.Submit(fleet, images)
	if err != nil {
		return nil, err
	}
	if err := t.Wait(); err != nil {
		return nil, err
	}
	return t.Classes(), nil
}

// run drives one batch down a lane: lane-private setup without the token,
// then the forward walk under the TEE token (released by the engine during
// each GPU flight).
func (p *Pipeline) run(lane *engine, fleet Fleet, images [][]float64, sp *obs.Span, deadline time.Time, t *Ticket) {
	lane.fleet = fleet
	lane.sp = sp
	lane.deadline = deadline
	lane.beginStep()
	code, err := masking.New(lane.cfg.maskParams(), lane.rng)
	var logits []*tensor.Tensor
	if err == nil {
		k := lane.cfg.VirtualBatch
		xs := make([]*tensor.Tensor, k)
		for i := range images {
			xs[i] = tensor.FromSlice(images[i], p.model.InShape...)
		}
		ph0 := lane.phases
		p.tee.Lock()
		logits, _, err = lane.forwardLayer(code, p.model.Stack, xs, false)
		t.culprits = append([]int(nil), lane.stepCulprits...)
		p.tee.Unlock()
		p.addPhases(lane.phases.Sub(ph0))
	}
	lane.fleet = nil
	// Cleared before the lane re-enters the free channel: the next batch's
	// Submit may install its own span (and deadline) immediately.
	lane.sp = nil
	lane.deadline = time.Time{}
	if err == nil {
		t.logits = logits
		t.classes = make([]int, len(logits))
		for i := range logits {
			t.classes[i] = nn.Argmax(logits[i])
		}
	}
	t.err = err
	p.lanes <- lane
	p.noteEnd()
	close(t.done)
}

// noteStart/noteEnd maintain the busy wall-clock: the union of intervals
// during which at least one batch is in flight. The phase sums divided by
// this wall time is the overlap ratio.
func (p *Pipeline) noteStart() {
	p.mu.Lock()
	if p.active == 0 {
		p.busySince = time.Now()
	}
	p.active++
	p.mu.Unlock()
}

func (p *Pipeline) noteEnd() {
	p.mu.Lock()
	p.active--
	if p.active == 0 {
		p.phases.Wall += time.Since(p.busySince)
	}
	p.mu.Unlock()
}

// addPhases folds one completed batch's lane-side phase delta into the
// aggregate (Wall excluded — busy-interval accounting owns it).
func (p *Pipeline) addPhases(d PhaseStats) {
	p.mu.Lock()
	p.phases.Encode += d.Encode
	p.phases.Dispatch += d.Dispatch
	p.phases.Decode += d.Decode
	p.phases.Offloads += d.Offloads
	p.phases.Flights += d.Flights
	p.phases.FusedBlocks += d.FusedBlocks
	p.phases.FusedLayers += d.FusedLayers
	p.mu.Unlock()
}
