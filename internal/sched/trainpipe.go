package sched

import (
	"fmt"
	"sync"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/tensor"
)

// GangSource supplies one device gang per in-flight virtual batch of a
// pipelined training run. The trivial SingleFleetSource reuses one shared
// fleet; fleet-managed deployments (the darknight facade) back it with
// per-batch fleet.Manager grants so each flight owns its own healthy gang
// and integrity verdicts feed quarantine.
type GangSource interface {
	// Acquire blocks until a gang-sized Fleet is available. It must be safe
	// for concurrent use with Release (releases happen on lane goroutines).
	Acquire() (Fleet, error)
	// Release returns a gang after its batch completed. culprits are the
	// gang slots attributed as tampering while the batch ran and err is the
	// batch's terminal error (nil on success) — fleet-managed sources fold
	// both into device health before recycling the devices.
	Release(f Fleet, culprits []int, err error)
}

// SingleFleetSource is the trivial GangSource: every virtual batch
// dispatches on the same shared fleet — typically a whole *gpu.Cluster,
// which tolerates overlapping dispatches via per-call gather buffers.
type SingleFleetSource struct{ F Fleet }

// Acquire implements GangSource.
func (s SingleFleetSource) Acquire() (Fleet, error) { return s.F, nil }

// Release implements GangSource.
func (s SingleFleetSource) Release(Fleet, []int, error) {}

// trainTicket is the completion handle of one virtual batch riding the
// training pipeline: its mean loss, the sealed Algorithm-2 gradient shard
// handles, and the integrity verdict.
type trainTicket struct {
	done        chan struct{}
	loss        float64
	handles     []uint64
	sealedBytes int64
	culprits    []int
	err         error
}

// TrainPipeline is the overlapped-execution mode of the training runtime:
// up to Depth virtual batches ride the encode→dispatch→decode stages of
// BOTH passes at once, so while batch i's coded shares (forward or
// backward) are on the devices, the TEE decodes batch i−1 and encodes
// batch i+1. It mirrors Pipeline's lane design — each in-flight batch owns
// a lane (a full engine with private arena, scratch and RNG), all lanes
// sharing one model replica and one TEE execution token — and adds the
// training-specific machinery on top:
//
//   - data-parallel gradient isolation: every lane owns a private set of
//     gradient accumulators and re-installs them into the shared model's
//     params at every token acquisition (engine.onToken), so concurrent
//     lanes never interleave writes into one ▽W. TEE work remains strictly
//     serialized under the token — one enclave context, bit-for-bit the
//     serial schedule per batch;
//   - Algorithm-2 aggregation: each lane seals its finished ▽W_v shard-wise
//     to untrusted memory, and TrainLargeBatch aggregates the sealed shards
//     in virtual-batch order — fixing the float summation order — so the
//     final weights are bit-identical to the serial Trainer's (pinned by
//     TestTrainPipelineMatchesSerial);
//   - fleet-backed dispatch: each in-flight batch runs on its own gang from
//     a GangSource, with integrity culprits reported back on release, and
//     the backward pass inherits the engine's straggler-tolerant
//     dual-window quorum and cache-refill fallback.
//
// Noise is pre-drawn offline by a shared masking.NoisePool, exactly as on
// the inference pipeline.
type TrainPipeline struct {
	cfg   Config
	model *nn.Model
	depth int

	tee   sync.Mutex      // the single TEE execution token
	lanes chan *trainLane // free lanes; capacity == depth bounds the pipeline
	all   []*trainLane
	pool  *masking.NoisePool

	params     []*nn.Param
	origGrads  []*tensor.Tensor // the model's own accumulators, restored after aggregation
	totalElems int

	runMu sync.Mutex // one TrainLargeBatch at a time
	store *gradStore // seals per-virtual-batch gradient shards (Algorithm 2)

	mu        sync.Mutex
	phases    PhaseStats
	active    int
	busySince time.Time
	closed    bool

	// tracer, when non-nil, samples per-virtual-batch trace spans: each
	// sampled batch yields a root with its forward/backward offload trees,
	// annotated with the carrying lane.
	tracer *obs.Tracer
}

// trainLane is one in-flight batch's execution context: a full engine plus
// the lane-private gradient accumulators it installs while holding the TEE
// token.
type trainLane struct {
	engine
	grads []*tensor.Tensor // one per model param, params order
}

// NewTrainPipeline wires a pipelined training runtime of the given depth
// (>= 2) around one shared model replica. The enclave may be nil or shared;
// each in-flight batch accounts its own working set and seals its own
// gradient shards, so peak enclave usage grows with depth. keyspace must be
// unique among runtimes sharing physical devices.
//
// The model must not be trained or evaluated through any other path while
// a TrainLargeBatch is running — the lanes temporarily redirect its
// gradient accumulators.
func NewTrainPipeline(cfg Config, model *nn.Model, encl *enclave.Enclave, keyspace string, depth int) (*TrainPipeline, error) {
	cfg = cfg.withDefaults()
	if err := cfg.maskParams().Validate(); err != nil {
		return nil, err
	}
	if depth < 2 {
		return nil, fmt.Errorf("sched: train pipeline depth %d, need >= 2 (use Trainer for serial execution)", depth)
	}
	p := &TrainPipeline{
		cfg:    cfg,
		model:  model,
		depth:  depth,
		lanes:  make(chan *trainLane, depth),
		all:    make([]*trainLane, 0, depth),
		params: model.Params(),
		store:  newGradStore(encl),
	}
	for _, prm := range p.params {
		p.origGrads = append(p.origGrads, prm.Grad)
		p.totalElems += prm.W.Size()
	}
	lens := offloadLens(model.Stack)
	if len(lens) > 0 {
		// Forward and backward both consume no pool sets beyond the forward
		// encode, so the inference pipeline's sizing rule carries over: one
		// cycle per lane plus one of prefetch.
		p.pool = masking.NewNoisePool(cfg.Seed+0x0ff1e, cfg.Collusion, lens, (depth+1)*len(lens))
	}
	for i := 0; i < depth; i++ {
		lcfg := cfg
		// Distinct RNG streams per lane: coding coefficients and fallback
		// noise draws must differ across lanes (decode exactness makes the
		// outputs independent of them, but privacy demands fresh draws).
		lcfg.Seed = cfg.Seed + int64(i)*0x9e37
		eng := newEngine(lcfg, model, nil, encl, fmt.Sprintf("%st%d/", keyspace, i))
		eng.tee = &p.tee
		eng.pool = p.pool
		lane := &trainLane{engine: eng}
		for _, prm := range p.params {
			g := prm.Grad.Clone()
			g.Zero()
			lane.grads = append(lane.grads, g)
		}
		// Every token acquisition re-installs this lane's gradient sinks:
		// another lane may have swapped in its own during this lane's GPU
		// flight.
		lane.onToken = func() {
			for i, prm := range p.params {
				prm.Grad = lane.grads[i]
			}
		}
		p.all = append(p.all, lane)
		p.lanes <- lane
	}
	return p, nil
}

// Config returns the effective configuration.
func (p *TrainPipeline) Config() Config { return p.cfg }

// Depth returns the number of batches the pipeline can hold in flight.
func (p *TrainPipeline) Depth() int { return p.depth }

// Gang returns the number of devices one dispatch occupies: K+M+E.
func (p *TrainPipeline) Gang() int { return p.cfg.maskParams().GPUs() }

// EnableRecovery turns on audit-and-recover on every lane (see
// Trainer.EnableRecovery). Requires Redundancy >= 2.
func (p *TrainPipeline) EnableRecovery() error {
	if p.cfg.Redundancy < 2 {
		return fmt.Errorf("sched: recovery needs Redundancy >= 2, have %d", p.cfg.Redundancy)
	}
	for _, lane := range p.all {
		lane.recover = true
	}
	return nil
}

// SetObserver attaches a flight recorder to every lane: backward cache
// refills and integrity verdicts are recorded as they happen. Call
// before training traffic starts.
func (p *TrainPipeline) SetObserver(rec *obs.FlightRecorder) {
	for _, lane := range p.all {
		lane.rec = rec
	}
}

// SetTracer attaches a sampling tracer: each sampled virtual batch
// produces a "train.vbatch" root span carrying the batch's
// forward/backward offload trees. Call before training traffic starts.
func (p *TrainPipeline) SetTracer(tr *obs.Tracer) { p.tracer = tr }

// PhaseStats returns the aggregated encode/dispatch/decode breakdown
// across all lanes (forward and backward offloads) plus the pipeline's
// busy wall-clock; Overlap() on the result is the training overlap ratio.
func (p *TrainPipeline) PhaseStats() PhaseStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.phases
	if p.active > 0 {
		s.Wall += time.Since(p.busySince)
	}
	return s
}

// PoolStats returns the shared noise pool's hit/miss counters.
func (p *TrainPipeline) PoolStats() masking.NoisePoolStats {
	if p.pool == nil {
		return masking.NoisePoolStats{}
	}
	return p.pool.Stats()
}

// CacheRefills sums the lanes' backward cache-miss recoveries.
func (p *TrainPipeline) CacheRefills() int64 {
	var n int64
	for _, lane := range p.all {
		n += lane.refills
	}
	return n
}

// Close stops the background noise generator. Safe to call more than once.
func (p *TrainPipeline) Close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already && p.pool != nil {
		p.pool.Close()
	}
}

// TrainLargeBatch trains on len(batch) examples exactly as
// Trainer.TrainLargeBatch does — floor(N/K) virtual batches, per-batch ▽W
// sealed shard-wise, one aggregated SGD step — but data-parallel: up to
// Depth virtual batches are in flight at once, each on its own gang from
// the GangSource. Aggregation runs in virtual-batch order regardless of
// completion order, so the updated weights are bit-identical to the serial
// trainer's. Tail examples beyond the last full virtual batch are dropped
// and counted in AggregationStats.DroppedExamples.
func (p *TrainPipeline) TrainLargeBatch(src GangSource, batch []dataset.Example, opt *nn.SGD, shardElems int) (float64, AggregationStats, error) {
	k := p.cfg.VirtualBatch
	var stats AggregationStats
	if len(batch) < k {
		return 0, stats, fmt.Errorf("sched: large batch %d smaller than virtual batch %d", len(batch), k)
	}
	p.runMu.Lock()
	defer p.runMu.Unlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return 0, stats, fmt.Errorf("sched: train pipeline closed")
	}
	if shardElems <= 0 {
		shardElems = p.totalElems
	}
	numVB := len(batch) / k
	stats.DroppedExamples = len(batch) - numVB*k

	tickets := make([]*trainTicket, 0, numVB)
	var submitErr error
	for v := 0; v < numVB; v++ {
		f, err := src.Acquire()
		if err != nil {
			submitErr = err
			break
		}
		tickets = append(tickets, p.submit(f, src, batch[v*k:(v+1)*k], shardElems))
	}

	// Gather in virtual-batch order: summing losses and (below) gradients
	// in submission order fixes the float accumulation order, making the
	// result independent of which lane finished first.
	var totalLoss float64
	var firstErr error
	allHandles := make([][]uint64, 0, numVB)
	for _, tk := range tickets {
		<-tk.done
		if tk.err != nil && firstErr == nil {
			firstErr = tk.err
		}
		totalLoss += tk.loss
		allHandles = append(allHandles, tk.handles)
		stats.SealedBytes += tk.sealedBytes
		stats.Shards = len(tk.handles)
	}
	if firstErr == nil {
		firstErr = submitErr
	}
	if firstErr != nil {
		// Drain the successful batches' sealed shards — handles are
		// consume-on-unseal, so abandoning them would strand ciphertexts in
		// untrusted memory for the process lifetime.
		p.store.discard(allHandles)
		return 0, stats, firstErr
	}
	stats.VirtualBatches = numVB

	// UpdateAggregation (Algorithm 2 lines 14–21), shared with the serial
	// trainer: virtual-batch-order summation, so the aggregate is
	// bit-identical however the lanes interleaved.
	agg, err := p.store.aggregate(allHandles, shardElems, p.totalElems, stats.Shards)
	if err != nil {
		return 0, stats, err
	}

	// All lanes are idle now: restore the model's own gradient accumulators
	// and apply the averaged aggregate exactly as the serial path does.
	for i, prm := range p.params {
		prm.Grad = p.origGrads[i]
	}
	applyAggregate(p.params, agg, 1.0/float64(numVB*k), opt)
	return totalLoss / float64(numVB), stats, nil
}

// submit enters one virtual batch into the pipeline on the given gang,
// blocking only while all Depth lanes are busy.
func (p *TrainPipeline) submit(f Fleet, src GangSource, examples []dataset.Example, shardElems int) *trainTicket {
	t := &trainTicket{done: make(chan struct{})}
	if need := p.Gang(); f.Size() < need {
		t.err = fmt.Errorf("sched: gang of %d devices required, fleet has %d", need, f.Size())
		src.Release(f, nil, t.err)
		close(t.done)
		return t
	}
	lane := <-p.lanes
	p.noteStart()
	go p.run(lane, f, src, examples, shardElems, t)
	return t
}

// run drives one virtual batch down a lane: the full masked
// forward+backward under the TEE token (released by the engine during every
// GPU flight), then shard-wise sealing of the lane's ▽W before the lane is
// recycled.
func (p *TrainPipeline) run(lane *trainLane, f Fleet, src GangSource, examples []dataset.Example, shardElems int, t *trainTicket) {
	lane.fleet = f
	sp := p.tracer.Start("train.vbatch")
	if sp != nil {
		for i, l := range p.all {
			if l == lane {
				sp.Annotatef("lane", "%d", i)
				break
			}
		}
	}
	lane.sp = sp
	lane.beginStep()
	code, err := masking.New(lane.cfg.maskParams(), lane.rng)
	if err == nil {
		k := lane.cfg.VirtualBatch
		xs := make([]*tensor.Tensor, k)
		for i := range examples {
			xs[i] = tensor.FromSlice(examples[i].Image, p.model.InShape...)
		}
		// The lane's accumulators are touched only while it holds the token,
		// except here: no other goroutine references them while the lane is
		// off-duty.
		for _, g := range lane.grads {
			g.Zero()
		}
		ph0 := lane.phases
		lane.lockTEE()
		var logits []*tensor.Tensor
		var tr *trace
		logits, tr, err = lane.forwardLayer(code, p.model.Stack, xs, true)
		if err == nil {
			grads := make([]*tensor.Tensor, k)
			var total float64
			for i := range logits {
				loss, g := nn.SoftmaxCrossEntropy(logits[i], examples[i].Label)
				total += loss
				grads[i] = g
			}
			t.loss = total / float64(k)
			_, err = lane.backwardLayer(code, tr, grads)
		}
		t.culprits = append([]int(nil), lane.stepCulprits...)
		p.tee.Unlock()
		p.addPhases(lane.phases.Sub(ph0))
	}
	lane.fleet = nil
	// Cleared before the lane re-enters the free channel; ending the root
	// files the completed trace with the tracer.
	lane.sp = nil
	sp.End()
	if err == nil {
		// Seal this virtual batch's ▽W shard-wise (Algorithm 2 lines 9–10)
		// before the lane — and with it these accumulators — is recycled.
		t.handles, t.sealedBytes, err = p.sealGrads(lane, shardElems)
	}
	t.err = err
	src.Release(f, t.culprits, err)
	p.lanes <- lane
	p.noteEnd()
	close(t.done)
}

// sealGrads flattens a lane's accumulators (params order) and seals them
// shard-wise to untrusted memory (Algorithm 2 lines 9–10, shared store
// with the serial trainer).
func (p *TrainPipeline) sealGrads(lane *trainLane, shardElems int) ([]uint64, int64, error) {
	flat := make([]float64, 0, p.totalElems)
	for _, g := range lane.grads {
		flat = append(flat, g.Data...)
	}
	return p.store.sealShards(flat, shardElems)
}

// noteStart/noteEnd maintain the busy wall-clock: the union of intervals
// during which at least one batch is in flight.
func (p *TrainPipeline) noteStart() {
	p.mu.Lock()
	if p.active == 0 {
		p.busySince = time.Now()
	}
	p.active++
	p.mu.Unlock()
}

func (p *TrainPipeline) noteEnd() {
	p.mu.Lock()
	p.active--
	if p.active == 0 {
		p.phases.Wall += time.Since(p.busySince)
	}
	p.mu.Unlock()
}

// addPhases folds one completed batch's lane-side phase delta into the
// aggregate (Wall excluded — busy-interval accounting owns it).
func (p *TrainPipeline) addPhases(d PhaseStats) {
	p.mu.Lock()
	p.phases.Encode += d.Encode
	p.phases.Dispatch += d.Dispatch
	p.phases.Decode += d.Decode
	p.phases.Offloads += d.Offloads
	p.phases.Flights += d.Flights
	p.phases.FusedBlocks += d.FusedBlocks
	p.phases.FusedLayers += d.FusedLayers
	p.mu.Unlock()
}
