package sched

import (
	"fmt"
	"sync"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/nn"
)

// This file implements Algorithm 2: large-batch weight aggregation. The
// TEE computes ▽W at virtual-batch granularity, seals each ▽W_v and evicts
// it to untrusted memory (real SGX cannot hold all of them in the EPC),
// then reloads, decrypts and aggregates them shard-wise before a single
// weight update. Exposing only the large-batch aggregate also shrinks the
// gradient-leakage side channel the paper cites (§6). The sealing store
// and the aggregation loop are shared by the serial Trainer and the
// pipelined TrainPipeline — the bit-identity guarantee between the two
// depends on them summing in exactly the same order.

// AggregationStats reports what Algorithm 2 did for one large batch.
type AggregationStats struct {
	VirtualBatches int
	SealedBytes    int64
	Shards         int
	// DroppedExamples counts the tail examples beyond the last full virtual
	// batch, which the coded path cannot process: DarKnight codes exactly K
	// inputs per dispatch (the paper's K-granularity constraint — a partial
	// batch would need padding rows, which training gradients cannot
	// silently carry the way inference dummy rows do). Callers that care
	// should size batches as multiples of K, or surface this count.
	DroppedExamples int
}

// gradStore seals virtual-batch gradient shards to untrusted memory —
// enclave-backed, with an in-memory fallback when no enclave is attached
// (tests). Handles are consume-on-unseal; discard drains abandoned shards
// so a failed large batch does not strand sealed ciphertexts forever.
// Safe for concurrent use (pipelined lanes seal concurrently).
type gradStore struct {
	encl  *enclave.Enclave
	mu    sync.Mutex
	plain map[uint64][]float64
	next  uint64
}

func newGradStore(encl *enclave.Enclave) *gradStore {
	return &gradStore{encl: encl, plain: make(map[uint64][]float64)}
}

func (s *gradStore) seal(vals []float64) (uint64, error) {
	if s.encl != nil {
		return s.encl.SealFloats(vals)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	s.plain[s.next] = append([]float64(nil), vals...)
	return s.next, nil
}

func (s *gradStore) unseal(h uint64) ([]float64, error) {
	if s.encl != nil {
		return s.encl.UnsealFloats(h)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	vals, ok := s.plain[h]
	if !ok {
		return nil, fmt.Errorf("sched: unknown gradient shard handle %d", h)
	}
	delete(s.plain, h)
	return vals, nil
}

// discard consumes and drops every handle — the error-path cleanup.
func (s *gradStore) discard(handleSets [][]uint64) {
	for _, hs := range handleSets {
		for _, h := range hs {
			_, _ = s.unseal(h)
		}
	}
}

// sealShards seals one virtual batch's flattened ▽W shard-wise (Algorithm
// 2 lines 9–10), returning the handles and the sealed byte count.
func (s *gradStore) sealShards(flat []float64, shardElems int) ([]uint64, int64, error) {
	var handles []uint64
	var sealed int64
	for off := 0; off < len(flat); off += shardElems {
		end := off + shardElems
		if end > len(flat) {
			end = len(flat)
		}
		h, err := s.seal(flat[off:end])
		if err != nil {
			s.discard([][]uint64{handles})
			return nil, 0, err
		}
		handles = append(handles, h)
		sealed += int64(end-off) * 8
	}
	return handles, sealed, nil
}

// aggregate is UpdateAggregation (Algorithm 2 lines 14–21): it reloads
// every virtual batch's sealed shards and accumulates them into one flat
// gradient — shard-outer, virtual-batch-inner, so the float summation
// order is identical however the shards were produced. On error the
// remaining handles are discarded.
func (s *gradStore) aggregate(handles [][]uint64, shardElems, totalElems, shards int) ([]float64, error) {
	agg := make([]float64, totalElems)
	for shard := 0; shard < shards; shard++ {
		off := shard * shardElems
		for _, vbHandles := range handles {
			vals, err := s.unseal(vbHandles[shard])
			if err != nil {
				// Drain everything: re-unsealing an already-consumed handle
				// errors harmlessly, and the rest must not strand.
				s.discard(handles)
				return nil, err
			}
			for i, v := range vals {
				agg[off+i] += v
			}
		}
	}
	return agg, nil
}

// applyAggregate writes the averaged flat gradient into the params'
// accumulators and applies one optimizer step — the single weight update
// closing Algorithm 2.
func applyAggregate(params []*nn.Param, agg []float64, inv float64, opt *nn.SGD) {
	cursor := 0
	for _, p := range params {
		n := p.W.Size()
		copy(p.Grad.Data, agg[cursor:cursor+n])
		p.Grad.Scale(inv)
		cursor += n
	}
	opt.Step(params)
}

// TrainLargeBatch trains on len(batch) examples: it processes them as
// floor(N/K) virtual batches, sealing each virtual batch's summed ▽W to
// untrusted memory, then aggregates and applies one SGD step. Examples
// beyond the last full virtual batch are dropped and reported in
// AggregationStats.DroppedExamples. shardElems is the aggregation shard
// granularity in elements (<=0 picks a single shard); opt applies the
// final update.
func (t *Trainer) TrainLargeBatch(batch []dataset.Example, opt *nn.SGD, shardElems int) (float64, AggregationStats, error) {
	k := t.cfg.VirtualBatch
	var stats AggregationStats
	if len(batch) < k {
		return 0, stats, fmt.Errorf("sched: large batch %d smaller than virtual batch %d", len(batch), k)
	}
	stats.DroppedExamples = len(batch) % k
	params := t.model.Params()

	// Flatten gradient layout once.
	totalElems := 0
	for _, p := range params {
		totalElems += p.W.Size()
	}
	if shardElems <= 0 {
		shardElems = totalElems
	}

	var handles [][]uint64 // per virtual batch, per shard
	var totalLoss float64
	numVB := 0
	for start := 0; start+k <= len(batch); start += k {
		for _, p := range params {
			p.ZeroGrad()
		}
		loss, err := t.TrainVirtualBatch(batch[start : start+k])
		if err != nil {
			t.store.discard(handles)
			return 0, stats, err
		}
		totalLoss += loss
		numVB++

		// Collect ▽W_v and seal it shard-wise (Algorithm 2 lines 9–10).
		flat := make([]float64, 0, totalElems)
		for _, p := range params {
			flat = append(flat, p.Grad.Data...)
		}
		vbHandles, sealed, err := t.store.sealShards(flat, shardElems)
		if err != nil {
			t.store.discard(handles)
			return 0, stats, err
		}
		handles = append(handles, vbHandles)
		stats.SealedBytes += sealed
		stats.Shards = len(vbHandles)
	}
	stats.VirtualBatches = numVB

	agg, err := t.store.aggregate(handles, shardElems, totalElems, stats.Shards)
	if err != nil {
		return 0, stats, err
	}

	// Average over the examples actually processed and apply.
	applyAggregate(params, agg, 1.0/float64(numVB*k), opt)
	return totalLoss / float64(numVB), stats, nil
}
