package sched

import (
	"fmt"

	"darknight/internal/dataset"
	"darknight/internal/nn"
)

// This file implements Algorithm 2: large-batch weight aggregation. The
// TEE computes ▽W at virtual-batch granularity, seals each ▽W_v and evicts
// it to untrusted memory (real SGX cannot hold all of them in the EPC),
// then reloads, decrypts and aggregates them shard-wise before a single
// weight update. Exposing only the large-batch aggregate also shrinks the
// gradient-leakage side channel the paper cites (§6).

// AggregationStats reports what Algorithm 2 did for one large batch.
type AggregationStats struct {
	VirtualBatches int
	SealedBytes    int64
	Shards         int
}

// TrainLargeBatch trains on len(batch) examples: it processes them as
// ceil(N/K) virtual batches, sealing each virtual batch's summed ▽W to
// untrusted memory, then aggregates and applies one SGD step. Examples
// beyond the last full virtual batch are dropped (as Batches() does).
// shardElems is the aggregation shard granularity in elements (<=0 picks a
// single shard); opt applies the final update.
func (t *Trainer) TrainLargeBatch(batch []dataset.Example, opt *nn.SGD, shardElems int) (float64, AggregationStats, error) {
	k := t.cfg.VirtualBatch
	var stats AggregationStats
	if len(batch) < k {
		return 0, stats, fmt.Errorf("sched: large batch %d smaller than virtual batch %d", len(batch), k)
	}
	params := t.model.Params()

	// Flatten gradient layout once.
	totalElems := 0
	for _, p := range params {
		totalElems += p.W.Size()
	}
	if shardElems <= 0 {
		shardElems = totalElems
	}

	var handles [][]uint64 // per virtual batch, per shard
	var totalLoss float64
	numVB := 0
	for start := 0; start+k <= len(batch); start += k {
		for _, p := range params {
			p.ZeroGrad()
		}
		loss, err := t.TrainVirtualBatch(batch[start : start+k])
		if err != nil {
			return 0, stats, err
		}
		totalLoss += loss
		numVB++

		// Collect ▽W_v and seal it shard-wise (Algorithm 2 lines 9–10).
		flat := make([]float64, 0, totalElems)
		for _, p := range params {
			flat = append(flat, p.Grad.Data...)
		}
		var vbHandles []uint64
		for off := 0; off < len(flat); off += shardElems {
			end := off + shardElems
			if end > len(flat) {
				end = len(flat)
			}
			h, err := t.sealShard(flat[off:end])
			if err != nil {
				return 0, stats, err
			}
			vbHandles = append(vbHandles, h)
			stats.SealedBytes += int64(end-off) * 8
		}
		handles = append(handles, vbHandles)
		stats.Shards = len(vbHandles)
	}
	stats.VirtualBatches = numVB

	// UpdateAggregation (Algorithm 2 lines 14–21): reload shard-wise,
	// decrypt, accumulate.
	agg := make([]float64, totalElems)
	for shard := 0; shard < stats.Shards; shard++ {
		off := shard * shardElems
		for _, vbHandles := range handles {
			vals, err := t.unsealShard(vbHandles[shard])
			if err != nil {
				return 0, stats, err
			}
			for i, v := range vals {
				agg[off+i] += v
			}
		}
	}

	// Average over the examples actually processed and apply.
	inv := 1.0 / float64(numVB*k)
	cursor := 0
	for _, p := range params {
		n := p.W.Size()
		copy(p.Grad.Data, agg[cursor:cursor+n])
		p.Grad.Scale(inv)
		cursor += n
	}
	opt.Step(params)
	return totalLoss / float64(numVB), stats, nil
}

// sealShard encrypts a gradient shard into untrusted memory; without an
// enclave it falls back to in-memory pass-through (tests).
func (t *Trainer) sealShard(vals []float64) (uint64, error) {
	if t.encl == nil {
		t.plainStore = append(t.plainStore, append([]float64(nil), vals...))
		return uint64(len(t.plainStore) - 1), nil
	}
	return t.encl.SealFloats(vals)
}

func (t *Trainer) unsealShard(h uint64) ([]float64, error) {
	if t.encl == nil {
		return t.plainStore[h], nil
	}
	return t.encl.UnsealFloats(h)
}
