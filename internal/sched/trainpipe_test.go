package sched

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/field"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
)

// trainData draws a deterministic synthetic training set.
func trainData(n int) []dataset.Example {
	d := dataset.SyntheticCIFAR(rand.New(rand.NewSource(7)), n, 4, 1, 8, 8, 0.05)
	return d.Items
}

// sameWeights asserts two models' parameters are bit-for-bit identical.
func sameWeights(t *testing.T, tag string, a, b *nn.Model) {
	t.Helper()
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		t.Fatalf("%s: param count %d vs %d", tag, len(ap), len(bp))
	}
	for pi := range ap {
		for i := range ap[pi].W.Data {
			if ap[pi].W.Data[i] != bp[pi].W.Data[i] {
				t.Fatalf("%s: param %s weight[%d]: %v != %v (weights must be bit-identical)",
					tag, ap[pi].Name, i, ap[pi].W.Data[i], bp[pi].W.Data[i])
			}
		}
	}
}

// managerSource backs a TrainPipeline with per-batch fleet.Manager gang
// grants — the fleet-backed training dispatch path.
type managerSource struct {
	m    *fleet.Manager
	gang int
}

func (s *managerSource) Acquire() (Fleet, error) {
	return s.m.Acquire(context.Background(), "train", s.gang)
}

func (s *managerSource) Release(f Fleet, culprits []int, err error) {
	g := f.(*fleet.Grant)
	if len(culprits) > 0 {
		g.ReportFaults(culprits)
	}
	g.Release()
}

// TestTrainPipelineMatchesSerial is the tentpole equivalence gate: across
// K/E/slack operating points — including straggler-tolerant backward via a
// deterministically slow device, on both the shared-cluster and the
// fleet-managed gang source — the pipelined TrainLargeBatch must leave the
// model with weights bit-identical to the serial Trainer's, and report the
// same losses. Decode exactness over F_p plus virtual-batch-order
// aggregation makes overlap invisible to the result.
func TestTrainPipelineMatchesSerial(t *testing.T) {
	combos := []struct {
		name           string
		k, m, e, slack int
		slowSlot       int // -1 = no slow device
		depth          int
		fleetManaged   bool
		shardElems     int
	}{
		{name: "K2-M1-E0-cluster", k: 2, m: 1, e: 0, slowSlot: -1, depth: 2},
		{name: "K3-M1-E1-fleet", k: 3, m: 1, e: 1, slowSlot: -1, depth: 2, fleetManaged: true, shardElems: 64},
		{name: "K2-M1-E2-slack1-slow-first", k: 2, m: 1, e: 2, slack: 1, slowSlot: 0, depth: 2, fleetManaged: true},
		{name: "K2-M1-E2-slack1-slow-last", k: 2, m: 1, e: 2, slack: 1, slowSlot: 4, depth: 3, fleetManaged: true, shardElems: 100},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{VirtualBatch: c.k, Collusion: c.m, Redundancy: c.e, StragglerSlack: c.slack, Seed: 1}
			gang := c.k + c.m + c.e
			build := func() ([]gpu.Device, *gpu.Cluster) {
				devs := make([]gpu.Device, gang)
				for i := range devs {
					devs[i] = gpu.NewHonest(i)
					if i == c.slowSlot {
						devs[i] = gpu.NewSlow(devs[i], time.Millisecond)
					}
				}
				return devs, gpu.NewCluster(devs...)
			}
			batch := trainData(6 * c.k)
			opt := func() *nn.SGD { return nn.NewSGD(0.05, 0.9) }

			// Serial reference.
			serialModel := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
			_, serialCluster := build()
			trn, err := NewTrainer(cfg, serialModel, serialCluster, nil)
			if err != nil {
				t.Fatal(err)
			}
			sOpt := opt()
			var serialLosses []float64
			for step := 0; step < 2; step++ {
				loss, _, err := trn.TrainLargeBatch(batch, sOpt, c.shardElems)
				if err != nil {
					t.Fatal(err)
				}
				serialLosses = append(serialLosses, loss)
			}

			// Pipelined run on an identically initialized model.
			pipeModel := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
			_, pipeCluster := build()
			pipe, err := NewTrainPipeline(cfg, pipeModel, nil, "tp/", c.depth)
			if err != nil {
				t.Fatal(err)
			}
			defer pipe.Close()
			var src GangSource
			var fm *fleet.Manager
			if c.fleetManaged {
				fm = fleet.NewManager(pipeCluster, fleet.Config{})
				src = &managerSource{m: fm, gang: gang}
			} else {
				src = SingleFleetSource{F: pipeCluster}
			}
			pOpt := opt()
			for step := 0; step < 2; step++ {
				loss, stats, err := pipe.TrainLargeBatch(src, batch, pOpt, c.shardElems)
				if err != nil {
					t.Fatal(err)
				}
				if loss != serialLosses[step] {
					t.Fatalf("step %d: pipelined loss %v != serial %v", step, loss, serialLosses[step])
				}
				if stats.VirtualBatches != 6 {
					t.Fatalf("step %d: %d virtual batches, want 6", step, stats.VirtualBatches)
				}
			}
			sameWeights(t, c.name, serialModel, pipeModel)

			ps := pipe.PhaseStats()
			if ps.Offloads == 0 || ps.Wall == 0 {
				t.Fatalf("train pipeline recorded no work: %+v", ps)
			}
			if c.slack > 0 && c.slowSlot >= 0 {
				// The slow device is window-exclusive on every pick order, so
				// the dual-window backward quorum must have left straggler
				// marks — proof the tolerant path (not wait-for-all) ran.
				if st := fm.Stats(); st.StragglerEvents == 0 {
					t.Fatalf("slack combo never exercised the quorum paths: %+v", st)
				}
			}
		})
	}
}

// phaseSwapFleet delegates forward dispatches to the forward fleet for the
// first nForward calls, then switches every dispatch (including the cache
// refill's identity re-store) to the backward fleet — simulating a gang
// whose devices were replaced between a batch's forward and backward
// passes.
type phaseSwapFleet struct {
	fw, bw   Fleet
	nForward int
	calls    int
	swap     func() // invoked once, at the switch point
}

func (f *phaseSwapFleet) current() Fleet {
	if f.calls <= f.nForward {
		return f.fw
	}
	if f.swap != nil {
		f.swap()
		f.swap = nil
	}
	return f.bw
}

func (f *phaseSwapFleet) Size() int { return f.fw.Size() }

func (f *phaseSwapFleet) ForwardAll(key string, kernel gpu.LinearKernel, coded []field.Vec) ([]field.Vec, error) {
	f.calls++
	return f.current().ForwardAll(key, kernel, coded)
}

func (f *phaseSwapFleet) BackwardAll(key string, kernel gpu.BilinearKernel, deltas []field.Vec) ([]field.Vec, error) {
	f.calls++
	return f.current().BackwardAll(key, kernel, deltas)
}

// TestBackwardCacheMissRefill quarantines a device between the forward and
// backward passes: the replacement gang misses the cached coded inputs (and
// surviving devices may sit at different slots — the silent-garbage case
// the slot-scoped keys turn into a clean miss), the engine re-encodes the
// trace and re-stores it, and the training step completes with weights
// bit-identical to an undisturbed run.
func TestBackwardCacheMissRefill(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Collusion: 1, Redundancy: 0, Seed: 3}
	const gang = 3
	batch := trainData(cfg.VirtualBatch)

	// Control: undisturbed serial run.
	control := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
	ctrlTrainer, err := NewTrainer(cfg, control, gpu.NewHonestCluster(gang), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrlOpt := nn.NewSGD(0.05, 0.9)
	ctrlLoss, _, err := ctrlTrainer.TrainLargeBatch(batch, ctrlOpt, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Disturbed: a 5-device fleet, gang of 3; after the forward pass the
	// first grant is released with slot 1 reported faulty (quarantine), and
	// the backward runs on a fresh grant.
	model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
	fm := fleet.NewManager(gpu.NewHonestCluster(gang+2), fleet.Config{ProbationProbability: -1})
	g1, err := fm.Acquire(context.Background(), "train", gang)
	if err != nil {
		t.Fatal(err)
	}
	sw := &phaseSwapFleet{fw: g1, nForward: 2} // TinyCNN has 2 linear layers
	sw.swap = func() {
		g1.ReportFaults([]int{1})
		g1.Release()
		g2, err := fm.Acquire(context.Background(), "train", gang)
		if err != nil {
			t.Fatal(err)
		}
		sw.bw = g2
	}
	sw.bw = nil // installed by swap

	pipe, err := NewTrainPipeline(cfg, model, nil, "miss/", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	opt := nn.NewSGD(0.05, 0.9)
	loss, _, err := pipe.TrainLargeBatch(SingleFleetSource{F: sw}, batch, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.bw != nil {
		if g, ok := sw.bw.(*fleet.Grant); ok {
			g.Release()
		}
	}
	if loss != ctrlLoss {
		t.Fatalf("disturbed loss %v != control %v", loss, ctrlLoss)
	}
	if pipe.CacheRefills() == 0 {
		t.Fatal("backward ran without a cache refill — the quarantine scenario was not exercised")
	}
	sameWeights(t, "cache-miss-refill", control, model)
	if st := fm.Stats(); st.QuarantineEvents == 0 {
		t.Fatalf("no quarantine recorded: %+v", st)
	}
}

// TestTrainerPhaseWallAccounting is the satellite regression test: the
// serial Trainer must accumulate Wall (it previously never did, so
// Overlap() silently reported 0 on the training path) and time both the
// forward and backward offloads.
func TestTrainerPhaseWallAccounting(t *testing.T) {
	tr, _, data := tinySetup(t, Config{VirtualBatch: 2, Seed: 5}, 3, nil)
	if _, err := tr.TrainVirtualBatch(data.Items[:2]); err != nil {
		t.Fatal(err)
	}
	ps := tr.PhaseStats()
	if ps.Wall <= 0 {
		t.Fatalf("Trainer recorded no Wall time: %+v", ps)
	}
	// TinyCNN: 2 forward + 2 backward offloads per virtual batch.
	if ps.Offloads != 4 {
		t.Fatalf("offloads = %d, want 4 (forward + backward)", ps.Offloads)
	}
	if ps.Dispatch <= 0 || ps.Encode <= 0 {
		t.Fatalf("phase breakdown not accumulated: %+v", ps)
	}
	if ov := ps.Overlap(); ov <= 0 {
		t.Fatalf("Overlap() = %v on a trainer that did work", ov)
	}
}

// TestTrainLargeBatchDropsTail pins the satellite: tail examples beyond
// the last full virtual batch are dropped and now visibly reported, on
// both the serial and the pipelined path.
func TestTrainLargeBatchDropsTail(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Seed: 2}
	batch := trainData(7)

	tr, _, _ := tinySetup(t, cfg, 3, nil)
	_, stats, err := tr.TrainLargeBatch(batch, nn.NewSGD(0.01, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.VirtualBatches != 3 || stats.DroppedExamples != 1 {
		t.Fatalf("serial stats = %+v, want 3 virtual batches / 1 dropped", stats)
	}

	model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(1)))
	pipe, err := NewTrainPipeline(cfg, model, nil, "drop/", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	_, pstats, err := pipe.TrainLargeBatch(SingleFleetSource{F: gpu.NewHonestCluster(3)}, batch, nn.NewSGD(0.01, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pstats.VirtualBatches != 3 || pstats.DroppedExamples != 1 {
		t.Fatalf("pipelined stats = %+v, want 3 virtual batches / 1 dropped", pstats)
	}
}

// TestAlgorithm2ShardEquivalence pins Algorithm 2's invariance to the
// shard granularity: single-shard and small-shard aggregation produce
// bit-identical weights and losses, serial and pipelined alike, and the
// sealed-eviction path under a real enclave changes nothing.
func TestAlgorithm2ShardEquivalence(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Seed: 11}
	batch := trainData(8)
	type run struct {
		name       string
		shardElems int
		encl       bool
		pipelined  bool
	}
	runs := []run{
		{name: "serial-single-shard", shardElems: 0},
		{name: "serial-97-elem-shards", shardElems: 97},
		{name: "serial-enclave", shardElems: 64, encl: true},
		{name: "pipelined-single-shard", shardElems: 0, pipelined: true},
		{name: "pipelined-33-elem-shards", shardElems: 33, pipelined: true},
		{name: "pipelined-enclave", shardElems: 64, encl: true, pipelined: true},
	}
	var refModel *nn.Model
	var refLoss float64
	for i, r := range runs {
		model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(42)))
		var encl *enclave.Enclave
		if r.encl {
			var err error
			encl, err = enclave.New(enclave.DefaultEPCBytes)
			if err != nil {
				t.Fatal(err)
			}
		}
		opt := nn.NewSGD(0.05, 0.9)
		var loss float64
		var err error
		if r.pipelined {
			var pipe *TrainPipeline
			pipe, err = NewTrainPipeline(cfg, model, encl, "a2/"+r.name, 2)
			if err != nil {
				t.Fatal(err)
			}
			loss, _, err = pipe.TrainLargeBatch(SingleFleetSource{F: gpu.NewHonestCluster(3)}, batch, opt, r.shardElems)
			pipe.Close()
		} else {
			var trn *Trainer
			trn, err = NewTrainer(cfg, model, gpu.NewHonestCluster(3), encl)
			if err != nil {
				t.Fatal(err)
			}
			loss, _, err = trn.TrainLargeBatch(batch, opt, r.shardElems)
		}
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if r.encl && encl.Stats().SealOps == 0 {
			t.Fatalf("%s: enclave sealing never engaged", r.name)
		}
		if i == 0 {
			refModel, refLoss = model, loss
			continue
		}
		if loss != refLoss {
			t.Fatalf("%s: loss %v != reference %v", r.name, loss, refLoss)
		}
		sameWeights(t, r.name, refModel, model)
	}
}

// TestTrainPipelineValidation covers the refusal paths.
func TestTrainPipelineValidation(t *testing.T) {
	model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(1)))
	if _, err := NewTrainPipeline(Config{VirtualBatch: 2, Seed: 1}, model, nil, "v/", 1); err == nil {
		t.Fatal("depth 1 train pipeline must be rejected")
	}
	pipe, err := NewTrainPipeline(Config{VirtualBatch: 2, Seed: 1}, model, nil, "v/", 2)
	if err != nil {
		t.Fatal(err)
	}
	src := SingleFleetSource{F: gpu.NewHonestCluster(3)}
	if _, _, err := pipe.TrainLargeBatch(src, trainData(1), nn.NewSGD(0.1, 0), 0); err == nil {
		t.Fatal("batch smaller than K must be rejected")
	}
	small := SingleFleetSource{F: gpu.NewHonestCluster(2)}
	if _, _, err := pipe.TrainLargeBatch(small, trainData(4), nn.NewSGD(0.1, 0), 0); err == nil {
		t.Fatal("undersized fleet must be rejected")
	}
	if err := pipe.EnableRecovery(); err == nil {
		t.Fatal("EnableRecovery without Redundancy >= 2 must be rejected")
	}
	pipe.Close()
	if _, _, err := pipe.TrainLargeBatch(src, trainData(4), nn.NewSGD(0.1, 0), 0); err == nil {
		t.Fatal("TrainLargeBatch after Close must be rejected")
	}
	pipe.Close() // idempotent
}
